module medshare

go 1.24
