package medshare

import (
	"context"
	"testing"
	"time"
)

// TestLightReaderScenario drives the headline light-client claim: more
// than a thousand light readers against a single serving full peer,
// every read proof-verified, with concurrent finalized writes racing
// the reads — and zero verification failures.
func TestLightReaderScenario(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	cfg := LightReaderConfig{}
	if testing.Short() || raceDetectorOn {
		// The thousand-reader swarm is CPU-bound on proof verification;
		// under the race detector's slowdown it blows the per-request
		// timeouts without exercising anything new. A smaller swarm keeps
		// the interleavings while staying within budget.
		cfg.Readers = 64
	}
	sc, err := NewLightReaderScenario(ctx, cfg)
	if err != nil {
		t.Fatalf("scenario setup: %v", err)
	}
	defer sc.Network.Stop()

	report, err := sc.Run(ctx)
	if err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	if !testing.Short() && !raceDetectorOn && report.Readers < 1000 {
		t.Fatalf("scenario ran %d readers, want >= 1000", report.Readers)
	}
	if report.VerifyFailures != 0 {
		t.Fatalf("verification failures: %d", report.VerifyFailures)
	}
	if report.RowsVerified == 0 {
		t.Fatalf("no rows were proof-verified")
	}
	if report.Writes == 0 {
		t.Fatalf("no concurrent writes were finalized")
	}
	if report.ServingStats.LightRowsServed == 0 {
		t.Fatalf("serving peer recorded no light row requests: %+v", report.ServingStats)
	}
	if report.ServingStats.HeadersServed == 0 {
		t.Fatalf("serving peer recorded no header requests: %+v", report.ServingStats)
	}
	t.Logf("readers=%d reads=%d writes=%d rowsVerified=%d cacheHits=%d staleRetries=%d wireBytes=%d meanStateBytes=%d",
		report.Readers, report.Reads, report.Writes, report.RowsVerified,
		report.CacheHits, report.StaleRetries, report.WireBytes, report.MeanStateBytes)
}
