package medshare

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"medshare/internal/api"
	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/loadgen"
	"medshare/internal/workload"
)

// ---------------------------------------------------------------------
// E17 — serving edge under open-loop load: RPS and tail latency across
// the share lifecycle. E1–E16 measure the protocol's internal costs
// (lens math, cascade hops, block batching); E17 measures what a client
// actually experiences against the HTTP serving edge: proof-carrying
// reads riding the marshaled-view and membership-proof caches, and
// writes riding the HTTP coalescer into group commits. The generator is
// open-loop — arrivals follow a fixed schedule and every request's
// latency clock starts at its SCHEDULED arrival — so a slow server
// cannot silence its own tail by applying backpressure (coordinated
// omission). Sweeping the arrival rate exposes where p99/p999 leave the
// floor while median reads stay cache-flat.

// ServingConfig sizes a serving scenario. Zero values pick defaults.
type ServingConfig struct {
	// Shares is how many independent shares the hub serves (default 8).
	Shares int
	// Records is the row count of each share's view (default 64).
	Records int
	// BlockInterval paces fallback block production (default 10ms).
	BlockInterval time.Duration
	// GroupCommitWindow enables demand-driven production on the node
	// (default 1ms).
	GroupCommitWindow time.Duration
	// CoalesceWindow is the HTTP write coalescer's accumulation window
	// (default 2ms).
	CoalesceWindow time.Duration
}

func (c *ServingConfig) defaults() {
	if c.Shares <= 0 {
		c.Shares = 8
	}
	if c.Records <= 0 {
		c.Records = 64
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = 10 * time.Millisecond
	}
	if c.GroupCommitWindow <= 0 {
		c.GroupCommitWindow = time.Millisecond
	}
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = 2 * time.Millisecond
	}
}

// ServingScenario is a complete serving-edge fixture: a hub peer with
// Shares registered shares (one projected column each, a counterparty
// attached to every one), the HTTP API served on a real TCP listener,
// and a client aimed at it. Both RunE17Serving and `loadr -selfhost`
// build on it.
type ServingScenario struct {
	Net     *Network
	Hub     *core.Peer
	Partner *core.Peer
	API     *api.Server
	Client  *api.Client
	URL     string
	// Shares holds the registered share IDs; Op round-robins over them.
	Shares  []string
	Records int

	hs  *http.Server
	lis net.Listener
}

// NewServingScenario builds and starts the fixture. Call Stop when
// done.
func NewServingScenario(ctx context.Context, cfg ServingConfig) (*ServingScenario, error) {
	cfg.defaults()
	nw, err := NewNetwork(NetworkConfig{
		BlockInterval:     cfg.BlockInterval,
		GroupCommitWindow: cfg.GroupCommitWindow,
	})
	if err != nil {
		return nil, err
	}
	sc := &ServingScenario{Net: nw, Records: cfg.Records}
	fail := func(err error) (*ServingScenario, error) {
		sc.Stop()
		return nil, err
	}
	if sc.Hub, err = nw.NewPeer("hub", 0); err != nil {
		return fail(err)
	}
	if sc.Partner, err = nw.NewPeer("partner", 0); err != nil {
		return fail(err)
	}
	// Hub and counterparty start from the same synthetic source, so
	// every attach's locally derived view matches the registered root.
	src := workload.GenerateManyShares("T", cfg.Shares, cfg.Records, 1)
	sc.Hub.DB().PutTable(src)
	sc.Partner.DB().PutTable(workload.GenerateManyShares("T", cfg.Shares, cfg.Records, 1))
	for i := 0; i < cfg.Shares; i++ {
		col := workload.ManyShareCol(i)
		id := fmt.Sprintf("S%02d", i)
		err = sc.Hub.RegisterShare(ctx, core.RegisterShareArgs{
			ID: id, SourceTable: "T", Lens: bx.Project(id+"h", []string{"k", col}, nil), ViewName: id + "h",
			Peers:     []identity.Address{sc.Hub.Address(), sc.Partner.Address()},
			WritePerm: map[string][]identity.Address{col: {sc.Hub.Address()}},
		})
		if err != nil {
			return fail(err)
		}
		if err = sc.Partner.AttachShare(id, "T", bx.Project(id+"p", []string{"k", col}, nil), id+"p"); err != nil {
			return fail(err)
		}
		sc.Shares = append(sc.Shares, id)
	}
	if sc.API, err = api.New(api.Config{Peer: sc.Hub, Node: nw.Node(0), CoalesceWindow: cfg.CoalesceWindow}); err != nil {
		return fail(err)
	}
	if sc.lis, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
		return fail(err)
	}
	sc.hs = &http.Server{Handler: sc.API.Handler()}
	go sc.hs.Serve(sc.lis) //nolint:errcheck // Serve returns ErrServerClosed on Stop
	sc.URL = "http://" + sc.lis.Addr().String()
	sc.Client = &api.Client{BaseURL: sc.URL, HTTPClient: &http.Client{
		// One keep-alive pool sized past the worker count so connection
		// setup never pollutes the measured tail.
		Transport: &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512},
	}}
	return sc, nil
}

// Stop tears the fixture down.
func (sc *ServingScenario) Stop() {
	if sc.hs != nil {
		sc.hs.Close()
	}
	if sc.Net != nil {
		sc.Net.Stop()
	}
}

// Warm runs one write and one read against every share: the writes
// exercise the full propose path once (and are waited to finality so
// the measured run never opens against a pending update), the reads
// fill the marshaled-view cache.
func (sc *ServingScenario) Warm(ctx context.Context) error {
	for i, id := range sc.Shares {
		res, err := sc.Client.Update(ctx, id, []api.RowOp{{
			Op: "set", Key: []any{float64(0)},
			Set: map[string]any{workload.ManyShareCol(i): "warm"},
		}})
		if err != nil {
			return fmt.Errorf("warm write %s: %w", id, err)
		}
		if !res.NoChange {
			if err := sc.Hub.WaitFinal(ctx, id, res.Seq); err != nil {
				return fmt.Errorf("warm finality %s: %w", id, err)
			}
		}
		if _, err := sc.Client.Rows(ctx, id); err != nil {
			return fmt.Errorf("warm read %s: %w", id, err)
		}
	}
	return nil
}

// Op returns the mixed read/write operation for an open-loop run: a
// readFrac slice of arrivals read (alternating whole-view fetches with
// proof-carrying single-row fetches that are verified client-side), the
// rest write one cell through the coalescer. Shares and row keys
// round-robin by arrival index, so consecutive writes land on different
// shares and never race one share's pending window.
func (sc *ServingScenario) Op(readFrac float64) loadgen.Op {
	n := len(sc.Shares)
	return func(ctx context.Context, seq int) loadgen.Result {
		id := sc.Shares[seq%n]
		// A multiplicative hash spreads the read/write decision evenly
		// through the schedule without a racy RNG.
		u := float64(uint32(seq)*2654435761%1_000_000) / 1e6
		if u < readFrac {
			if seq%2 == 0 {
				_, err := sc.Client.Rows(ctx, id)
				return loadgen.Result{Err: err, Kind: "read"}
			}
			key := fmt.Sprint(seq % sc.Records)
			res, err := sc.Client.Row(ctx, id, []string{key}, true)
			if err == nil {
				ok, verr := api.VerifyRow(res)
				if verr != nil {
					err = verr
				} else if !ok {
					err = fmt.Errorf("proof for %s key %s failed against root %s", id, key, res.Root)
				}
			}
			return loadgen.Result{Err: err, Kind: "read"}
		}
		_, err := sc.Client.Update(ctx, id, []api.RowOp{{
			Op: "set", Key: []any{float64(seq % sc.Records)},
			Set: map[string]any{workload.ManyShareCol(seq % n): fmt.Sprintf("w-%d", seq)},
		}})
		return loadgen.Result{Err: err, Kind: "write"}
	}
}

// E17Result reports one open-loop run at a given offered arrival rate.
type E17Result struct {
	// Rate is the offered arrival rate, requests/s (sweep config).
	Rate float64
	// Seconds is the measured run length (config echo).
	Seconds float64
	// ReadFrac is the fraction of arrivals that read (config echo).
	ReadFrac float64
	// Shares is how many shares the hub serves (config echo).
	Shares int
	// Offered and Completed count scheduled arrivals and operations
	// that ran; an overloaded server shows Completed << Offered.
	Offered   int
	Completed int
	// ErrorRate is failed operations / completed.
	ErrorRate float64
	// ReadsPerSec and WritesPerSec are successful operations per second
	// of elapsed run time.
	ReadsPerSec  float64
	WritesPerSec float64
	// Read latency percentiles, measured open-loop from each request's
	// scheduled arrival (coordinated-omission safe). Reads are
	// cache-served, so the median should sit near the HTTP floor.
	ReadP50  time.Duration
	ReadP99  time.Duration
	ReadP999 time.Duration
	// Write latency percentiles: edit admitted on-chain (request
	// commit), finalization cascading asynchronously.
	WriteP50  time.Duration
	WriteP99  time.Duration
	WriteP999 time.Duration
	// MeanCoalesced is HTTP write requests per coalescer flush.
	MeanCoalesced float64
}

// RunE17Serving drives the serving scenario with an open-loop arrival
// schedule at `rate` requests/s for `duration`, `readFrac` of arrivals
// reading.
func RunE17Serving(ctx context.Context, rate float64, duration time.Duration, readFrac float64) (E17Result, error) {
	out := E17Result{Rate: rate, Seconds: duration.Seconds(), ReadFrac: readFrac}
	sc, err := NewServingScenario(ctx, ServingConfig{})
	if err != nil {
		return out, err
	}
	defer sc.Stop()
	out.Shares = len(sc.Shares)
	if err := sc.Warm(ctx); err != nil {
		return out, err
	}

	b0, w0 := sc.API.CoalesceStats()
	st := loadgen.Run(ctx, loadgen.Plan{Rate: rate, Duration: duration, Workers: 64}, sc.Op(readFrac))
	b1, w1 := sc.API.CoalesceStats()

	out.Offered = st.Offered
	out.Completed = st.Completed
	out.ErrorRate = st.ErrorRate
	el := st.Elapsed.Seconds()
	if r, ok := st.Kinds["read"]; ok && el > 0 {
		out.ReadsPerSec = float64(r.Completed-r.Errors) / el
		out.ReadP50, out.ReadP99, out.ReadP999 = r.Latency.P50, r.Latency.P99, r.Latency.P999
	}
	if w, ok := st.Kinds["write"]; ok && el > 0 {
		out.WritesPerSec = float64(w.Completed-w.Errors) / el
		out.WriteP50, out.WriteP99, out.WriteP999 = w.Latency.P50, w.Latency.P99, w.Latency.P999
	}
	if db := b1 - b0; db > 0 {
		out.MeanCoalesced = float64(w1-w0) / float64(db)
	}
	return out, nil
}
