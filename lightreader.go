package medshare

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"medshare/internal/core"
	"medshare/internal/light"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// LightReaderConfig tunes the light-reader scenario: a swarm of
// header-only light clients reading one share's view through a single
// serving full peer, while the sharing peers keep writing — the
// read-scaling counterpart of the serving-edge load harness, with every
// read proof-verified and every write stressing the clients' cache
// invalidation. Zero values select the defaults noted per field.
type LightReaderConfig struct {
	// Readers is the number of light clients (0 → 1050 — above the
	// thousand-readers-per-full-peer design point).
	Readers int
	// Records is the synthetic record count behind the share (0 → 64).
	Records int
	// ReadsPerReader is how many distinct keys each reader verifies
	// before the write phase (0 → 2).
	ReadsPerReader int
	// Writes is the number of finalized updates driven through the
	// share concurrently with the reads (0 → 6).
	Writes int
	// Concurrency bounds how many readers run at once (0 → 64).
	Concurrency int
	// Seed drives the workload generator.
	Seed int64
	// BlockInterval is the chain's block period (0 → 2ms).
	BlockInterval time.Duration
}

func (c LightReaderConfig) withDefaults() LightReaderConfig {
	if c.Readers <= 0 {
		c.Readers = 1050
	}
	if c.Records <= 0 {
		c.Records = 64
	}
	if c.ReadsPerReader <= 0 {
		c.ReadsPerReader = 2
	}
	if c.Writes <= 0 {
		c.Writes = 6
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 64
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = 2 * time.Millisecond
	}
	return c
}

// LightReaderReport aggregates a light-reader run: reader-side verified
// work and failures, and the serving peer's view of the traffic.
type LightReaderReport struct {
	// Readers is the number of light clients that ran; Reads the total
	// verified reads they performed.
	Readers int
	Reads   int
	// Writes is the number of updates finalized during the read phase.
	Writes int
	// VerifyFailures sums every client's verification failures — the
	// acceptance criterion is zero.
	VerifyFailures uint64
	// RowsVerified, CacheHits and StaleRetries aggregate the clients'
	// proof work (StaleRetries > 0 means reads raced writes and the
	// re-prove path actually ran).
	RowsVerified uint64
	CacheHits    uint64
	StaleRetries uint64
	// WireBytes is the total light-protocol bytes moved by all clients.
	WireBytes uint64
	// MeanStateBytes is the mean per-reader retained state (headers +
	// share metadata + cached rows) at the end of the run.
	MeanStateBytes int
	// ServingStats is the serving peer's counter snapshot (the
	// HeadersServed / LightHeadsServed / LightRowsServed axis).
	ServingStats core.Stats
}

// LightReaderScenario is the Fig. 1 topology plus a swarm of light
// clients attached to the doctor's serving edge.
type LightReaderScenario struct {
	*Fig1Scenario
	Clients []*light.Client
	cfg     LightReaderConfig
}

// NewLightReaderScenario builds the Fig. 1 stakeholders on a two-node
// network (block gossip must flow so light clients are invalidated by
// subscription, not polling), drives one initial update so the share
// has a finalized payload to verify against, and attaches the reader
// swarm — every client subscribed to the patient/doctor share and
// served by the doctor alone.
func NewLightReaderScenario(ctx context.Context, cfg LightReaderConfig) (*LightReaderScenario, error) {
	cfg = cfg.withDefaults()
	nw, err := NewNetwork(NetworkConfig{
		Nodes:         2,
		BlockInterval: cfg.BlockInterval,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	fig, err := PopulateFig1(ctx, nw, cfg.Records, cfg.Seed)
	if err != nil {
		nw.Stop()
		return nil, err
	}
	sc := &LightReaderScenario{Fig1Scenario: fig, cfg: cfg}
	// A share at seq 0 has no finalized payload hash on-chain, so there
	// is nothing a verified read could anchor to; drive the first update
	// through before any reader attaches.
	if err := sc.write(ctx, 0); err != nil {
		nw.Stop()
		return nil, err
	}
	for i := 0; i < cfg.Readers; i++ {
		c, err := nw.NewLightClient(fmt.Sprintf("reader-%d", i), "Doctor")
		if err != nil {
			nw.Stop()
			return nil, err
		}
		c.Subscribe(sc.ShareD13)
		sc.Clients = append(sc.Clients, c)
	}
	return sc, nil
}

// write drives one finalized dosage update through the D13&D31 share.
func (sc *LightReaderScenario) write(ctx context.Context, i int) error {
	return driveDosageWrite(ctx, sc.Fig1Scenario, sc.cfg.Records, i)
}

// driveDosageWrite pushes one finalized dosage update through the
// doctor's D3 source — the canonical "the share moved" event the light
// clients must survive: edit, propose, and wait for finality on every
// affected share.
func driveDosageWrite(ctx context.Context, fig *Fig1Scenario, records, i int) error {
	key := int64(188 + i%records)
	err := fig.Doctor.UpdateSource("D3", func(t *reldb.Table) error {
		return t.Update(reldb.Row{reldb.I(key)}, map[string]reldb.Value{
			workload.ColDosage: reldb.S(fmt.Sprintf("light dosage %d", i)),
		})
	})
	if err != nil {
		return err
	}
	results, err := fig.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		return err
	}
	for _, r := range results {
		if err := fig.Doctor.WaitFinal(ctx, r.ShareID, r.Seq); err != nil {
			return err
		}
	}
	return nil
}

// Run drives the swarm: every reader header-syncs and proof-verifies
// ReadsPerReader distinct keys while the doctor keeps finalizing
// updates, then — after the last write — a sample of readers is polled
// until gossip-driven invalidation makes their verified reads reflect
// the final on-chain version. Any verification failure anywhere fails
// the run.
func (sc *LightReaderScenario) Run(ctx context.Context) (*LightReaderReport, error) {
	cfg := sc.cfg
	report := &LightReaderReport{Readers: len(sc.Clients)}
	keyAt := func(i int) reldb.Row { return reldb.Row{reldb.I(int64(188 + i%cfg.Records))} }

	// Writer: sequential finalized updates racing the read swarm.
	writeErr := make(chan error, 1)
	var writesDone atomic.Uint32
	go func() {
		defer close(writeErr)
		for i := 1; i <= cfg.Writes; i++ {
			if err := sc.write(ctx, i); err != nil {
				writeErr <- fmt.Errorf("write %d: %w", i, err)
				return
			}
			writesDone.Add(1)
		}
	}()

	// Reader pool.
	var reads atomic.Uint64
	sem := make(chan struct{}, cfg.Concurrency)
	readErrs := make(chan error, len(sc.Clients))
	var wg sync.WaitGroup
	for i, c := range sc.Clients {
		wg.Add(1)
		go func(i int, c *light.Client) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, err := c.SyncHeaders(ctx); err != nil {
				readErrs <- fmt.Errorf("reader %d header sync: %w", i, err)
				return
			}
			for r := 0; r < cfg.ReadsPerReader; r++ {
				if _, err := c.Read(ctx, sc.ShareD13, keyAt(i+r)); err != nil {
					readErrs <- fmt.Errorf("reader %d read %d: %w", i, r, err)
					return
				}
				reads.Add(1)
			}
		}(i, c)
	}
	wg.Wait()
	close(readErrs)
	for err := range readErrs {
		return report, err
	}
	if err := <-writeErr; err != nil {
		return report, err
	}
	report.Writes = int(writesDone.Load())

	// Freshness: the last write touched keyAt(cfg.Writes). A sample of
	// readers must converge to its final value through gossip-driven
	// invalidation alone — a stale cached row surviving the version
	// advance would stick forever and fail the deadline.
	finalKey := keyAt(cfg.Writes)
	wantVal := fmt.Sprintf("light dosage %d", cfg.Writes)
	dosageIdx := -1
	sample := len(sc.Clients)
	if sample > 8 {
		sample = 8
	}
	for i := 0; i < sample; i++ {
		c := sc.Clients[i*len(sc.Clients)/sample]
		deadline := time.Now().Add(5 * time.Second)
		for {
			row, err := c.Read(ctx, sc.ShareD13, finalKey)
			if err != nil {
				return report, fmt.Errorf("freshness read: %w", err)
			}
			reads.Add(1)
			if dosageIdx < 0 {
				view, verr := sc.Doctor.View(sc.ShareD13)
				if verr != nil {
					return report, verr
				}
				dosageIdx = view.Schema().ColumnIndex(workload.ColDosage)
			}
			if got, _ := row[dosageIdx].Str(); got == wantVal {
				break
			}
			if time.Now().After(deadline) {
				return report, fmt.Errorf("light reader never observed the final write (cache invalidation failed)")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	report.Reads = int(reads.Load())
	var stateBytes int
	for _, c := range sc.Clients {
		st := c.Stats()
		report.VerifyFailures += st.VerifyFailures
		report.RowsVerified += st.RowsVerified
		report.CacheHits += st.CacheHits
		report.StaleRetries += st.StaleRetries
		report.WireBytes += st.WireBytes
		stateBytes += c.StateBytes()
	}
	if len(sc.Clients) > 0 {
		report.MeanStateBytes = stateBytes / len(sc.Clients)
	}
	report.ServingStats = sc.Doctor.Stats()
	if report.VerifyFailures > 0 {
		return report, fmt.Errorf("light readers recorded %d verification failures", report.VerifyFailures)
	}
	return report, nil
}
