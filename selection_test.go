package medshare

import (
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/reldb"
)

// TestSelectionShare exercises horizontal fine-graining end to end: a
// doctor shares with patient 188 only that patient's row (selection),
// projected to the dosage columns (composition) — the other patients'
// rows are invisible to the share and untouched by its updates.
func TestSelectionShare(t *testing.T) {
	ctx := testCtx(t)
	nw, err := NewNetwork(fastNet())
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()

	doctor, err := nw.NewPeer("Doctor", 0)
	if err != nil {
		t.Fatal(err)
	}
	patient, err := nw.NewPeer("Patient188", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Doctor holds many patients.
	full := GenerateRecords("D3", 20, 5)
	doctor.DB().PutTable(full)

	// Patient 188 holds only its own slice.
	ownRow, ok := full.Get(reldb.Row{reldb.I(188)})
	if !ok {
		t.Fatal("row 188 missing")
	}
	patSchema, err := full.Schema().Project("mine", []string{ColPatientID, ColMedication, ColDosage}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mine := reldb.MustNewTable(patSchema)
	idx := full.Schema()
	mine.MustInsert(reldb.Row{ownRow[idx.ColumnIndex(ColPatientID)], ownRow[idx.ColumnIndex(ColMedication)], ownRow[idx.ColumnIndex(ColDosage)]})
	patient.DB().PutTable(mine)

	// Doctor's lens: select row 188, then project the agreed columns.
	shareCols := []string{ColPatientID, ColMedication, ColDosage}
	doctorLens := bx.Compose(
		bx.Select("only188", reldb.Eq(ColPatientID, reldb.I(188))),
		bx.Project("docV", shareCols, nil),
	)
	// Patient's source is already just its row; a plain projection works.
	patientLens := bx.Project("patV", shareCols, nil)

	err = doctor.RegisterShare(ctx, core.RegisterShareArgs{
		ID: "row188", SourceTable: "D3", Lens: doctorLens, ViewName: "docV",
		Peers: []identity.Address{doctor.Address(), patient.Address()},
		WritePerm: map[string][]identity.Address{
			ColDosage:     {doctor.Address()},
			ColMedication: {doctor.Address()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := patient.AttachShare("row188", "mine", patientLens, "patV"); err != nil {
		t.Fatal(err)
	}

	// The share exposes exactly one row.
	v, err := doctor.View("row188")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 {
		t.Fatalf("share rows = %d, want 1", v.Len())
	}

	// Doctor changes patient 188's dosage — propagates.
	err = doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{ColDosage: reldb.S("selection-dose")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := doctor.SyncShares(ctx, "D3")
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 {
		t.Fatalf("props = %+v", props)
	}
	if err := doctor.WaitFinal(ctx, "row188", props[0].Seq); err != nil {
		t.Fatal(err)
	}
	got, _ := patient.Source("mine")
	val := mustValue(t, got, reldb.Row{reldb.I(188)}, ColDosage)
	if s, _ := val.Str(); s != "selection-dose" {
		t.Fatalf("patient dosage = %q", s)
	}

	// Changing a DIFFERENT patient's dosage does not touch the share.
	err = doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(189)},
			map[string]reldb.Value{ColDosage: reldb.S("other-dose")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err = doctor.SyncShares(ctx, "D3")
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 0 {
		t.Fatalf("unrelated row change proposed %+v", props)
	}
}

// TestNetworkConfigValidation covers the facade bootstrap paths.
func TestNetworkConfigValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{Consensus: "quantum"}); err == nil {
		t.Fatal("unknown consensus accepted")
	}
	nw, err := NewNetwork(NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	if nw.Nodes() != 1 {
		t.Fatalf("default nodes = %d", nw.Nodes())
	}
	if _, err := nw.NewPeer("x", 9); err == nil {
		t.Fatal("out-of-range node index accepted")
	}
}

// TestPoWScenario runs the Fig. 5 single hop under proof-of-work
// consensus (the paper's Section II-A setting).
func TestPoWScenario(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, NetworkConfig{
		Consensus:     ConsensusPoW,
		PoWDifficulty: 4,
		BlockInterval: 2 * time.Millisecond,
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	err = sc.Researcher.UpdateSource("D2", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.S("Ibuprofen")},
			map[string]reldb.Value{ColMechanism: reldb.S("MeA1-pow")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := sc.Researcher.SyncShares(ctx, "D2")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Researcher.WaitFinal(ctx, ShareIDD23, props[0].Seq); err != nil {
		t.Fatal(err)
	}
	d3, _ := sc.Doctor.Source("D3")
	got := mustValue(t, d3, reldb.Row{reldb.I(188)}, ColMechanism)
	if s, _ := got.Str(); s != "MeA1-pow" {
		t.Fatalf("mechanism = %q", s)
	}
}
