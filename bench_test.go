package medshare

// Benchmarks regenerating every experiment of DESIGN.md §4 (one per
// figure/claim of the paper — the paper has no numeric tables, so these
// are the evaluation artifacts). Run all of them with
//
//	go test -bench=. -benchmem
//
// and see cmd/benchrunner for the full parameter sweeps behind
// EXPERIMENTS.md. Domain metrics are attached with b.ReportMetric; the
// ns/op of protocol benches is dominated by configured block intervals,
// so the custom metrics are the meaningful output.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

func benchCtx(b *testing.B) context.Context {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	b.Cleanup(cancel)
	return ctx
}

// BenchmarkE1_Fig1_ViewDerivation measures deriving all seven Fig. 1
// tables from the full records.
func BenchmarkE1_Fig1_ViewDerivation(b *testing.B) {
	for _, records := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE1ViewDerivation(records, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.PerView.Microseconds()), "µs/view")
			}
		})
	}
}

// BenchmarkE2_Fig2_Bootstrap measures bringing up the whole architecture.
func BenchmarkE2_Fig2_Bootstrap(b *testing.B) {
	ctx := benchCtx(b)
	for _, nodes := range []int{1, 3} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE2Bootstrap(ctx, nodes, 50)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Bootstrap.Seconds()*1000, "ms/bootstrap")
			}
		})
	}
}

// BenchmarkE3_Fig3_ContractOps measures the metadata contract operations
// of Fig. 3 in isolation.
func BenchmarkE3_Fig3_ContractOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunE3ContractOps(64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.RegisterPerOp.Microseconds()), "µs/register")
		b.ReportMetric(float64(res.AllowedPerOp.Microseconds()), "µs/update-allowed")
		b.ReportMetric(float64(res.DeniedPerOp.Microseconds()), "µs/update-denied")
		b.ReportMetric(float64(res.AckPerOp.Microseconds()), "µs/ack")
	}
}

// BenchmarkE4_Fig4_CRUD measures the end-to-end entry-level CRUD
// protocol of Fig. 4.
func BenchmarkE4_Fig4_CRUD(b *testing.B) {
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := RunE4CRUD(ctx, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Create.Seconds()*1000, "ms/create")
		b.ReportMetric(res.Read.Seconds()*1e6, "µs/read")
		b.ReportMetric(res.Update.Seconds()*1000, "ms/update")
		b.ReportMetric(res.Delete.Seconds()*1000, "ms/delete")
	}
}

// BenchmarkE5_Fig5_Cascade measures the 11-step update workflow of
// Fig. 5 (single hop and the full automatic cascade).
func BenchmarkE5_Fig5_Cascade(b *testing.B) {
	ctx := benchCtx(b)
	for _, records := range []int{10, 100} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE5Cascade(ctx, records, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SingleHop.Seconds()*1000, "ms/single-hop")
				b.ReportMetric(res.FullCascade.Seconds()*1000, "ms/cascade")
			}
		})
	}
}

// BenchmarkE6_Throughput_BlockInterval measures finalized updates per
// modeled second across block intervals (Section IV-1).
func BenchmarkE6_Throughput_BlockInterval(b *testing.B) {
	ctx := benchCtx(b)
	for _, interval := range []time.Duration{100 * time.Millisecond, 1 * time.Second, 12 * time.Second} {
		for _, batch := range []int{1, 32} {
			b.Run(fmt.Sprintf("interval=%v/batch=%d", interval, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunE6Throughput(ctx, ConsensusPoA, interval, batch, 3, 1000)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.RowsPerSecModeled, "rows/modeled-s")
					b.ReportMetric(res.UpdatesPerSecModeled, "updates/modeled-s")
				}
			})
		}
	}
}

// BenchmarkE7_ConflictRule measures the serialization cost of the
// one-update-at-a-time rule under contention.
func BenchmarkE7_ConflictRule(b *testing.B) {
	ctx := benchCtx(b)
	for _, m := range []int{2, 4} {
		b.Run(fmt.Sprintf("updaters=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE7ConflictRule(ctx, m)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ContendedMakespan.Seconds()*1000, "ms/contended")
				b.ReportMetric(res.IndependentMakespan.Seconds()*1000, "ms/independent")
				b.ReportMetric(res.SerializationFactor, "serialization-x")
			}
		})
	}
}

// BenchmarkE8_Baseline_FullRecord measures exposure and transfer sizes
// of fine-grained views versus full-record sharing (Section V).
func BenchmarkE8_Baseline_FullRecord(b *testing.B) {
	for _, records := range []int{100, 1000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := RunE8Baseline(records, 1)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Peer == "Researcher" {
						b.ReportMetric(r.ExposureRatio, "exposure-reduction-x")
						b.ReportMetric(r.TransferFullRecord/r.TransferFineGrained, "transfer-reduction-x")
					}
				}
			}
		})
	}
}

// BenchmarkE9_BX_GetPut measures raw lens cost (get and put).
func BenchmarkE9_BX_Get(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			lens := LensD31()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lens.Get(full); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_BX_Put measures the backward transformation.
func BenchmarkE9_BX_Put(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			lens := LensD31()
			view, err := lens.Get(full)
			if err != nil {
				b.Fatal(err)
			}
			keys := view.RowsCanonical()
			if err := view.Update(view.KeyValues(keys[0]),
				map[string]reldb.Value{workload.ColDosage: reldb.S("bench")}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lens.Put(full, view); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_BX_PutDelta measures the delta path: a one-row view edit
// propagated as a changeset instead of a full put, the hot path of the
// Fig. 5 cascade after this repo's copy-on-write overhaul.
func BenchmarkE9_BX_PutDelta(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			lens := LensD31()
			view, err := lens.Get(full)
			if err != nil {
				b.Fatal(err)
			}
			edited := view.Clone()
			keys := edited.RowsCanonical()
			if err := edited.Update(edited.KeyValues(keys[0]),
				map[string]reldb.Value{workload.ColDosage: reldb.S("bench")}); err != nil {
				b.Fatal(err)
			}
			cs, err := view.Diff(edited)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bx.PutDelta(lens, full, edited, cs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReldb_Rows guards the copy-on-write contract: reading all rows
// of a 1000-row table allocates only the header slice, never row data.
func BenchmarkReldb_Rows(b *testing.B) {
	full := workload.Generate("full", 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := full.Rows(); len(rows) != 1000 {
			b.Fatal("short read")
		}
	}
}

// BenchmarkReldb_Clone measures the O(1)-row-data snapshot that every
// peer takes on each share operation.
func BenchmarkReldb_Clone(b *testing.B) {
	full := workload.Generate("full", 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := full.Clone(); c.Len() != 1000 {
			b.Fatal("bad clone")
		}
	}
}

// BenchmarkReldb_HashIncremental measures Hash() after a one-row update
// on an already-hashed 1000-row table — the convergence check both
// replicas run after every update, now O(changed rows) instead of O(n).
func BenchmarkReldb_HashIncremental(b *testing.B) {
	full := workload.Generate("full", 1000, 1)
	full.Hash() // build the digest cache once
	keys := full.RowsCanonical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := full.Update(full.KeyValues(keys[i%len(keys)]),
			map[string]reldb.Value{workload.ColDosage: reldb.S(fmt.Sprintf("d%d", i))}); err != nil {
			b.Fatal(err)
		}
		_ = full.Hash()
	}
}

// BenchmarkE9_BX_CompositionDepth measures lens cost vs composition depth.
func BenchmarkE9_BX_CompositionDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE9BX(500, depth, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Get.Microseconds()), "µs/get")
				b.ReportMetric(float64(res.Put.Microseconds()), "µs/put")
			}
		})
	}
}

// BenchmarkE10_Audit measures ledger history reconstruction and
// integrity verification.
func BenchmarkE10_Audit(b *testing.B) {
	ctx := benchCtx(b)
	for _, updates := range []int{8, 32} {
		b.Run(fmt.Sprintf("updates=%d", updates), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE10Audit(ctx, updates)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.HistoryTime.Seconds()*1000, "ms/history")
				b.ReportMetric(res.IntegrityOK.Seconds()*1000, "ms/verify")
			}
		})
	}
}
