package medshare

// Benchmarks regenerating every experiment of DESIGN.md §4 (one per
// figure/claim of the paper — the paper has no numeric tables, so these
// are the evaluation artifacts). Run all of them with
//
//	go test -bench=. -benchmem
//
// and see cmd/benchrunner for the full parameter sweeps behind
// EXPERIMENTS.md. Domain metrics are attached with b.ReportMetric; the
// ns/op of protocol benches is dominated by configured block intervals,
// so the custom metrics are the meaningful output.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

func benchCtx(b *testing.B) context.Context {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	b.Cleanup(cancel)
	return ctx
}

// BenchmarkE1_Fig1_ViewDerivation measures deriving all seven Fig. 1
// tables from the full records.
func BenchmarkE1_Fig1_ViewDerivation(b *testing.B) {
	for _, records := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE1ViewDerivation(records, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.PerView.Microseconds()), "µs/view")
			}
		})
	}
}

// BenchmarkE2_Fig2_Bootstrap measures bringing up the whole architecture.
func BenchmarkE2_Fig2_Bootstrap(b *testing.B) {
	ctx := benchCtx(b)
	for _, nodes := range []int{1, 3} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE2Bootstrap(ctx, nodes, 50)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Bootstrap.Seconds()*1000, "ms/bootstrap")
			}
		})
	}
}

// BenchmarkE3_Fig3_ContractOps measures the metadata contract operations
// of Fig. 3 in isolation.
func BenchmarkE3_Fig3_ContractOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunE3ContractOps(64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.RegisterPerOp.Microseconds()), "µs/register")
		b.ReportMetric(float64(res.AllowedPerOp.Microseconds()), "µs/update-allowed")
		b.ReportMetric(float64(res.DeniedPerOp.Microseconds()), "µs/update-denied")
		b.ReportMetric(float64(res.AckPerOp.Microseconds()), "µs/ack")
	}
}

// BenchmarkE4_Fig4_CRUD measures the end-to-end entry-level CRUD
// protocol of Fig. 4.
func BenchmarkE4_Fig4_CRUD(b *testing.B) {
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := RunE4CRUD(ctx, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Create.Seconds()*1000, "ms/create")
		b.ReportMetric(res.Read.Seconds()*1e6, "µs/read")
		b.ReportMetric(res.Update.Seconds()*1000, "ms/update")
		b.ReportMetric(res.Delete.Seconds()*1000, "ms/delete")
	}
}

// BenchmarkE5_Fig5_Cascade measures the 11-step update workflow of
// Fig. 5 (single hop and the full automatic cascade).
func BenchmarkE5_Fig5_Cascade(b *testing.B) {
	ctx := benchCtx(b)
	for _, records := range []int{10, 100} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE5Cascade(ctx, records, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SingleHop.Seconds()*1000, "ms/single-hop")
				b.ReportMetric(res.FullCascade.Seconds()*1000, "ms/cascade")
			}
		})
	}
}

// BenchmarkE6_Throughput_BlockInterval measures finalized updates per
// modeled second across block intervals (Section IV-1).
func BenchmarkE6_Throughput_BlockInterval(b *testing.B) {
	ctx := benchCtx(b)
	for _, interval := range []time.Duration{100 * time.Millisecond, 1 * time.Second, 12 * time.Second} {
		for _, batch := range []int{1, 32} {
			b.Run(fmt.Sprintf("interval=%v/batch=%d", interval, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunE6Throughput(ctx, ConsensusPoA, interval, batch, 3, 1000)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.RowsPerSecModeled, "rows/modeled-s")
					b.ReportMetric(res.UpdatesPerSecModeled, "updates/modeled-s")
				}
			})
		}
	}
}

// BenchmarkE7_ConflictRule measures the serialization cost of the
// one-update-at-a-time rule under contention.
func BenchmarkE7_ConflictRule(b *testing.B) {
	ctx := benchCtx(b)
	for _, m := range []int{2, 4} {
		b.Run(fmt.Sprintf("updaters=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE7ConflictRule(ctx, m)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ContendedMakespan.Seconds()*1000, "ms/contended")
				b.ReportMetric(res.IndependentMakespan.Seconds()*1000, "ms/independent")
				b.ReportMetric(res.SerializationFactor, "serialization-x")
			}
		})
	}
}

// BenchmarkE8_Baseline_FullRecord measures exposure and transfer sizes
// of fine-grained views versus full-record sharing (Section V).
func BenchmarkE8_Baseline_FullRecord(b *testing.B) {
	for _, records := range []int{100, 1000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := RunE8Baseline(records, 1)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Peer == "Researcher" {
						b.ReportMetric(r.ExposureRatio, "exposure-reduction-x")
						b.ReportMetric(r.TransferFullRecord/r.TransferFineGrained, "transfer-reduction-x")
					}
				}
			}
		})
	}
}

// BenchmarkE9_BX_GetPut measures raw lens cost (get and put).
func BenchmarkE9_BX_Get(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			lens := LensD31()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lens.Get(full); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_BX_Put measures the backward transformation.
func BenchmarkE9_BX_Put(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			lens := LensD31()
			view, err := lens.Get(full)
			if err != nil {
				b.Fatal(err)
			}
			keys := view.RowsCanonical()
			if err := view.Update(view.KeyValues(keys[0]),
				map[string]reldb.Value{workload.ColDosage: reldb.S("bench")}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lens.Put(full, view); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPutDeltaOneRow is the shared harness of the E9 delta benches: a
// one-row edit of col on the lens's view of an n-row source, propagated
// as a changeset. The first PutDelta outside the timed region warms
// whatever the lens warms (secondary view-key index, compose memo,
// reference index), so the loop measures the steady state a cascade
// pays per update.
func benchPutDeltaOneRow(b *testing.B, src *reldb.Table, lens bx.Lens, col string) {
	b.Helper()
	view, err := lens.Get(src)
	if err != nil {
		b.Fatal(err)
	}
	edited := view.Clone()
	keys := edited.RowsCanonical()
	if err := edited.Update(edited.KeyValues(keys[0]),
		map[string]reldb.Value{col: reldb.S("bench")}); err != nil {
		b.Fatal(err)
	}
	cs, err := view.Diff(edited)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := bx.PutDelta(lens, src, edited, cs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bx.PutDelta(lens, src, edited, cs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_BX_PutDelta measures the delta path: a one-row view edit
// propagated as a changeset instead of a full put, the hot path of the
// Fig. 5 cascade.
func BenchmarkE9_BX_PutDelta(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			benchPutDeltaOneRow(b, workload.Generate("full", rows, 1), LensD31(), workload.ColDosage)
		})
	}
}

// BenchmarkReldb_Rows guards the copy-on-write contract: reading all rows
// of a 1000-row table allocates only the header slice, never row data.
func BenchmarkReldb_Rows(b *testing.B) {
	full := workload.Generate("full", 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := full.Rows(); len(rows) != 1000 {
			b.Fatal("short read")
		}
	}
}

// BenchmarkReldb_Clone measures the O(1)-row-data snapshot that every
// peer takes on each share operation.
func BenchmarkReldb_Clone(b *testing.B) {
	full := workload.Generate("full", 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := full.Clone(); c.Len() != 1000 {
			b.Fatal("bad clone")
		}
	}
}

// BenchmarkReldb_HashIncremental measures Hash() after a one-row update
// on an already-hashed 1000-row table — the convergence check both
// replicas run after every update, now O(changed rows) instead of O(n).
func BenchmarkReldb_HashIncremental(b *testing.B) {
	full := workload.Generate("full", 1000, 1)
	full.Hash() // build the digest cache once
	keys := full.RowsCanonical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := full.Update(full.KeyValues(keys[i%len(keys)]),
			map[string]reldb.Value{workload.ColDosage: reldb.S(fmt.Sprintf("d%d", i))}); err != nil {
			b.Fatal(err)
		}
		_ = full.Hash()
	}
}

// BenchmarkStore_PutDeltaScaling is the acceptance benchmark for the
// persistent row storage: the steady-state cost of a one-row delta put
// must be flat in table size (1k vs 100k within ~2x), because no step on
// the delta path copies or scans the whole table anymore.
func BenchmarkStore_PutDeltaScaling(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			lens := LensD31()
			view, err := lens.Get(full)
			if err != nil {
				b.Fatal(err)
			}
			edited := view.Clone()
			keys := edited.RowsCanonical()
			if err := edited.Update(edited.KeyValues(keys[0]),
				map[string]reldb.Value{workload.ColDosage: reldb.S("bench")}); err != nil {
				b.Fatal(err)
			}
			cs, err := view.Diff(edited)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bx.PutDelta(lens, full, edited, cs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStore_CommitScaling measures the database commit of a one-row
// update on an already-hashed table across sizes: snapshot clone,
// path-copied mutation, incremental digest maintenance, atomic publish —
// O(log n), flat for practical sizes.
func BenchmarkStore_CommitScaling(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			full.Hash()
			db := reldb.NewDatabase("bench")
			db.PutTable(full)
			keys := full.RowsCanonical()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.WithTable("full", func(t *reldb.Table) error {
					return t.Update(full.KeyValues(keys[i%len(keys)]),
						map[string]reldb.Value{workload.ColDosage: reldb.S("c")})
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStore_ViewDiffScaling measures the structural one-row diff
// (the ProposeUpdate/UpdateView pattern): pointer-equal subtrees are
// pruned, so cost tracks the edit, not the table.
func BenchmarkStore_ViewDiffScaling(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			edited := full.Clone()
			keys := full.RowsCanonical()
			if err := edited.Update(full.KeyValues(keys[rows/2]),
				map[string]reldb.Value{workload.ColDosage: reldb.S("d")}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs, err := full.Diff(edited)
				if err != nil || cs.Size() != 1 {
					b.Fatalf("cs=%d err=%v", cs.Size(), err)
				}
			}
		})
	}
}

// mutexDB reproduces the pre-lock-free reldb.Database — one RWMutex in
// front of a live table map, peer snapshots taken under the write lock
// (the old snapshotTable went through WithTable) — so the concurrency
// benchmarks can quantify the win over that baseline on the same harness.
type mutexDB struct {
	mu     sync.RWMutex
	tables map[string]*reldb.Table
}

func newMutexDB() *mutexDB { return &mutexDB{tables: make(map[string]*reldb.Table)} }

func (d *mutexDB) put(t *reldb.Table) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tables[t.Name()] = t
}

func (d *mutexDB) snapshot(name string) *reldb.Table {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tables[name].Clone()
}

func (d *mutexDB) withTable(name string, fn func(*reldb.Table) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fn(d.tables[name])
}

func (d *mutexDB) deepSnapshot() map[string]*reldb.Table {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]*reldb.Table, len(d.tables))
	for n, t := range d.tables {
		out[n] = t.Clone()
	}
	return out
}

// benchTables is the many-shares peer's database shape: one wide source
// plus one materialized view per share.
func benchTables(shares, rows int) []*reldb.Table {
	src := workload.GenerateManyShares("T", shares, rows, 1)
	out := []*reldb.Table{src}
	for i := 0; i < shares; i++ {
		lens := bx.Project(fmt.Sprintf("V%d", i), []string{"k", workload.ManyShareCol(i)}, nil)
		v, err := lens.Get(src)
		if err != nil {
			panic(err)
		}
		out = append(out, v)
	}
	return out
}

// BenchmarkDB_ConcurrentReaders measures the snapshot-read path every
// fetch handler and share operation takes, under parallel load across
// the views of a 64-share peer. Run with -cpu=1,4 to see the scaling;
// the globalmutex baseline serializes all readers behind one lock while
// the lock-free path is one atomic load plus an O(1) COW clone.
func BenchmarkDB_ConcurrentReaders(b *testing.B) {
	const shares, rows = 64, 256
	tables := benchTables(shares, rows)
	key := reldb.Row{reldb.I(7)}

	b.Run("lockfree", func(b *testing.B) {
		db := reldb.NewDatabase("bench")
		for _, t := range tables {
			db.PutTable(t)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				name := fmt.Sprintf("V%d", i%shares)
				i++
				t, err := db.Table(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := t.Get(key); !ok {
					b.Fatal("missing row")
				}
			}
		})
	})
	b.Run("globalmutex", func(b *testing.B) {
		db := newMutexDB()
		for _, t := range tables {
			db.put(t)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				name := fmt.Sprintf("V%d", i%shares)
				i++
				t := db.snapshot(name)
				if _, ok := t.Get(key); !ok {
					b.Fatal("missing row")
				}
			}
		})
	})
}

// BenchmarkDB_ReadersUnderWriter is the same read path while one writer
// goroutine continuously commits to a table the readers never touch —
// per-table commits leave the read path untouched, a global lock stalls
// every reader behind every commit.
func BenchmarkDB_ReadersUnderWriter(b *testing.B) {
	const shares, rows = 64, 256
	tables := benchTables(shares, rows)
	key := reldb.Row{reldb.I(7)}

	b.Run("lockfree", func(b *testing.B) {
		db := reldb.NewDatabase("bench")
		for _, t := range tables {
			db.PutTable(t)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				j++
				_ = db.WithTable("T", func(t *reldb.Table) error {
					return t.Update(reldb.Row{reldb.I(int64(j % rows))},
						map[string]reldb.Value{workload.ManyShareCol(0): reldb.S(fmt.Sprintf("w%d", j))})
				})
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				name := fmt.Sprintf("V%d", 1+i%(shares-1))
				i++
				t, err := db.Table(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := t.Get(key); !ok {
					b.Fatal("missing row")
				}
			}
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
	b.Run("globalmutex", func(b *testing.B) {
		db := newMutexDB()
		for _, t := range tables {
			db.put(t)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				j++
				_ = db.withTable("T", func(t *reldb.Table) error {
					return t.Update(reldb.Row{reldb.I(int64(j % rows))},
						map[string]reldb.Value{workload.ManyShareCol(0): reldb.S(fmt.Sprintf("w%d", j))})
				})
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				name := fmt.Sprintf("V%d", 1+i%(shares-1))
				i++
				t := db.snapshot(name)
				if _, ok := t.Get(key); !ok {
					b.Fatal("missing row")
				}
			}
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// BenchmarkDB_SnapshotManyTables measures Database.Snapshot on a
// 64-share peer: now an O(#tables) pointer copy, against the old
// deep-clone-under-RLock construction.
func BenchmarkDB_SnapshotManyTables(b *testing.B) {
	const shares, rows = 64, 256
	tables := benchTables(shares, rows)

	b.Run("lockfree", func(b *testing.B) {
		db := reldb.NewDatabase("bench")
		for _, t := range tables {
			db.PutTable(t)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s := db.Snapshot(); s == nil {
				b.Fatal("nil snapshot")
			}
		}
	})
	b.Run("globalmutex", func(b *testing.B) {
		db := newMutexDB()
		for _, t := range tables {
			db.put(t)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s := db.deepSnapshot(); len(s) == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
}

// BenchmarkE9_BX_PutDeltaRekeyed measures the delta path through a
// re-keyed projection (the paper's D23/D32: view keyed on medication,
// source keyed on patient): O(changed rows) through the source's
// secondary view-key index, warmed the way a live share is warm after
// its first delta.
func BenchmarkE9_BX_PutDeltaRekeyed(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			benchPutDeltaOneRow(b, workload.Generate("full", rows, 1), LensD32(), workload.ColMechanism)
		})
	}
}

// BenchmarkE9_BX_PutDeltaCompose measures the delta path through a
// composed lens (Select ∘ Project): the intermediate view comes from the
// lens's hash-keyed memo, warmed like a steady cascade.
func BenchmarkE9_BX_PutDeltaCompose(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			full.Hash() // warm the memo key's hash state
			lens := bx.Compose(
				bx.Select("sel", reldb.True()),
				bx.Project("proj", workload.ShareD13Cols, nil),
			)
			benchPutDeltaOneRow(b, full, lens, workload.ColDosage)
		})
	}
}

// BenchmarkJoinDelta measures a one-row view edit embedded through
// JoinLens's native PutDelta (per-changed-row re-join against the
// reference's prefix-scan index) — the last lens on the update path
// that used to pay an O(table) full put + diff.
func BenchmarkJoinDelta(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			rx, err := full.Project("RX", workload.PrescriptionCols, nil)
			if err != nil {
				b.Fatal(err)
			}
			lens := bx.Join("RXF", workload.Formulary("formulary", 1))
			benchPutDeltaOneRow(b, rx, lens, workload.ColDosage)
		})
	}
}

// BenchmarkBuilder_TableRebuild measures rebuilding an n-row table from
// a canonical scan through the transient TableBuilder — the bulk path
// under every out-of-shape lens rebuild — against the per-row insert
// baseline it replaces.
func BenchmarkBuilder_TableRebuild(b *testing.B) {
	for _, rows := range []int{1000, 10000} {
		full := workload.Generate("full", rows, 1)
		all := full.RowsCanonical()
		schema := full.Schema()
		b.Run(fmt.Sprintf("builder/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bld, err := reldb.NewTableBuilder(schema)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range all {
					if err := bld.Append(r); err != nil {
						b.Fatal(err)
					}
				}
				if bld.Table().Len() != rows {
					b.Fatal("short build")
				}
			}
		})
		b.Run(fmt.Sprintf("insert/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := reldb.MustNewTable(schema)
				for _, r := range all {
					if err := t.InsertOwned(r); err != nil {
						b.Fatal(err)
					}
				}
				if t.Len() != rows {
					b.Fatal("short build")
				}
			}
		})
	}
}

// BenchmarkBuilder_LensRebuild measures the whole-view lens paths (the
// O(n)-by-nature operations, once per proposal): get and put of a
// D31-style projection, now rebuilt on the source's tree shape with
// unchanged rows' subtrees shared.
func BenchmarkBuilder_LensRebuild(b *testing.B) {
	for _, rows := range []int{1000, 10000} {
		full := workload.Generate("full", rows, 1)
		lens := LensD31()
		view, err := lens.Get(full)
		if err != nil {
			b.Fatal(err)
		}
		edited := view.Clone()
		keys := view.RowsCanonical()
		if err := edited.Update(view.KeyValues(keys[0]),
			map[string]reldb.Value{workload.ColDosage: reldb.S("bench")}); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("get/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lens.Get(full); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("put/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lens.Put(full, edited); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11_ManyShares drives one full many-shares fan-out round
// (edit → SyncShares over every pairwise share → finality) through a
// real network, with the peer's concurrent fan-out pool.
func BenchmarkE11_ManyShares(b *testing.B) {
	ctx := benchCtx(b)
	for _, workers := range []int{-1, 16} {
		name := "parallel"
		if workers < 0 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				makespan, _, err := RunE11Round(ctx, 16, 64, workers, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(makespan.Seconds()*1000, "ms/round")
			}
		})
	}
}

// BenchmarkE9_BX_CompositionDepth measures lens cost vs composition depth.
func BenchmarkE9_BX_CompositionDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE9BX(500, depth, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Get.Microseconds()), "µs/get")
				b.ReportMetric(float64(res.Put.Microseconds()), "µs/put")
			}
		})
	}
}

// BenchmarkE10_Audit measures ledger history reconstruction and
// integrity verification.
func BenchmarkE10_Audit(b *testing.B) {
	ctx := benchCtx(b)
	for _, updates := range []int{8, 32} {
		b.Run(fmt.Sprintf("updates=%d", updates), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunE10Audit(ctx, updates)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.HistoryTime.Seconds()*1000, "ms/history")
				b.ReportMetric(res.IntegrityOK.Seconds()*1000, "ms/verify")
			}
		})
	}
}

// BenchmarkMerkle_RootUpdateScaling is the acceptance benchmark for the
// Merkle row tree: the root refresh after a one-row edit of an
// already-hashed table must be flat in table size (1k vs 100k within
// ~2x) — a path re-hash, never an O(n) rebuild.
func BenchmarkMerkle_RootUpdateScaling(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			full := workload.Generate("full", rows, 1)
			full.Hash() // steady state: digest cache warm
			keys := full.RowsCanonical()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := full.Clone()
				if err := t.Update(full.KeyValues(keys[i%len(keys)]),
					map[string]reldb.Value{workload.ColDosage: reldb.S(fmt.Sprintf("m%d", i))}); err != nil {
					b.Fatal(err)
				}
				_ = t.Hash()
			}
		})
	}
}

// BenchmarkMerkle_Prove and BenchmarkMerkle_Verify measure one
// membership-proof round on a 10k-row table (O(log n) each).
func BenchmarkMerkle_Prove(b *testing.B) {
	full := workload.Generate("full", 10000, 1)
	full.Hash()
	keys := full.RowsCanonical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := full.ProveRow(full.KeyValues(keys[i%len(keys)])); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkle_Verify(b *testing.B) {
	full := workload.Generate("full", 10000, 1)
	root := full.RowsRoot()
	keys := full.RowsCanonical()
	row, proof, err := full.ProveRow(full.KeyValues(keys[5000]))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !reldb.VerifyRowProof(root, row, proof) {
			b.Fatal("proof rejected")
		}
	}
}

// BenchmarkMerkle_AntiEntropy measures a full structural sync round trip
// (wire-encoded both ways) for a 16-row scattered divergence on a
// 10k-row view, reporting the bytes moved against the full payload.
func BenchmarkMerkle_AntiEntropy(b *testing.B) {
	full := workload.Generate("full", 10000, 1)
	full.Hash()
	keys := full.RowsCanonical()
	stale := full.Clone()
	for j := 0; j < 16; j++ {
		if err := stale.Update(full.KeyValues(keys[j*613]),
			map[string]reldb.Value{workload.ColDosage: reldb.S("stale")}); err != nil {
			b.Fatal(err)
		}
	}
	fullRaw, err := reldb.MarshalTable(full)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var stats core.SyncStats
	for i := 0; i < b.N; i++ {
		out, s, err := core.SimulateStructuralSync(full, stale)
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() != full.Len() {
			b.Fatal("sync diverged")
		}
		stats = s
	}
	b.ReportMetric(float64(stats.BytesSent+stats.BytesReceived), "B/sync")
	b.ReportMetric(float64(len(fullRaw)), "B/full")
}
