package medshare

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"medshare/internal/chain"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/reldb"
	"medshare/internal/statedb"
	"medshare/internal/workload"
)

// This file implements the experiment drivers E1-E10 of DESIGN.md §4, one
// per figure/claim of the paper. bench_test.go wraps them as testing.B
// benchmarks; cmd/benchrunner sweeps their parameters and prints the
// tables recorded in EXPERIMENTS.md.

// ---------------------------------------------------------------------
// E1 — Fig. 1 data distribution: derive every table of the figure from
// the full records via lenses and verify pairwise consistency.

// E1Result reports view-derivation cost for one record count.
type E1Result struct {
	Records      int
	Views        int
	DeriveAll    time.Duration // all 7 derived tables
	PerView      time.Duration
	GetPerRecord time.Duration
}

// RunE1ViewDerivation derives D1, D2, D3 from the full records and
// D13/D31/D23/D32 from those, checks the replicas agree, and reports
// timings.
func RunE1ViewDerivation(records int, seed int64) (E1Result, error) {
	full := workload.Generate("full", records, seed)

	start := time.Now()
	d1, err := full.Project("D1", workload.PatientCols, nil)
	if err != nil {
		return E1Result{}, err
	}
	d2, err := full.Project("D2", workload.ResearcherCols, []string{workload.ColMedication})
	if err != nil {
		return E1Result{}, err
	}
	d3, err := full.Project("D3", workload.DoctorCols, nil)
	if err != nil {
		return E1Result{}, err
	}
	d13, err := LensD13().Get(d1)
	if err != nil {
		return E1Result{}, err
	}
	d31, err := LensD31().Get(d3)
	if err != nil {
		return E1Result{}, err
	}
	d23, err := LensD23().Get(d2)
	if err != nil {
		return E1Result{}, err
	}
	d32, err := LensD32().Get(d3)
	if err != nil {
		return E1Result{}, err
	}
	elapsed := time.Since(start)

	if d13.Hash() != d31.Hash() {
		return E1Result{}, fmt.Errorf("E1: D13 and D31 disagree")
	}
	if d23.Hash() != d32.Hash() {
		return E1Result{}, fmt.Errorf("E1: D23 and D32 disagree")
	}
	res := E1Result{
		Records:   records,
		Views:     7,
		DeriveAll: elapsed,
		PerView:   elapsed / 7,
	}
	if records > 0 {
		res.GetPerRecord = elapsed / time.Duration(7*records)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// E2 — Fig. 2 architecture bring-up: peers, nodes, shares.

// E2Result reports bootstrap cost.
type E2Result struct {
	Nodes     int
	Records   int
	Bootstrap time.Duration
}

// RunE2Bootstrap boots a network, populates the Fig. 1 scenario, and
// tears it down.
func RunE2Bootstrap(ctx context.Context, nodes, records int) (E2Result, error) {
	start := time.Now()
	sc, err := NewFig1Scenario(ctx, NetworkConfig{
		Nodes:         nodes,
		BlockInterval: 2 * time.Millisecond,
	}, records, 1)
	if err != nil {
		return E2Result{}, err
	}
	elapsed := time.Since(start)
	sc.Stop()
	return E2Result{Nodes: nodes, Records: records, Bootstrap: elapsed}, nil
}

// ---------------------------------------------------------------------
// E3 — Fig. 3 metadata contract: per-operation latency through the
// deterministic contract runtime (no chain in the loop, isolating pure
// contract cost).

// E3Result reports contract operation latencies.
type E3Result struct {
	Shares         int
	RegisterPerOp  time.Duration
	AllowedPerOp   time.Duration
	DeniedPerOp    time.Duration
	AckPerOp       time.Duration
	SetPermPerOp   time.Duration
	StateRootPerOp time.Duration
}

// RunE3ContractOps executes n of each sharereg operation.
func RunE3ContractOps(n int) (E3Result, error) {
	reg := contract.NewRegistry(sharereg.New())
	store := statedb.NewStore()
	doctor := identity.MustNew("doctor")
	patient := identity.MustNew("patient")

	exec := func(from *identity.Identity, fn string, arg []byte, height uint64) (contract.Receipt, error) {
		tx := &chain.Tx{Contract: sharereg.ContractName, Fn: fn, Args: [][]byte{arg}, Nonce: height}
		tx.Sign(from)
		rcpt := contract.Execute(reg, store, tx, height, int64(height))
		if rcpt.OK {
			store.Commit(rcpt.Writes, statedb.Version{Height: height})
		}
		return rcpt, nil
	}
	regArg := func(i int) []byte {
		raw, _ := jsonMarshal(sharereg.RegisterArgs{
			ID:        fmt.Sprintf("share-%d", i),
			Peers:     []identity.Address{doctor.Address(), patient.Address()},
			Authority: doctor.Address(),
			Columns:   []string{"dosage", "clinical"},
			WritePerm: map[string][]identity.Address{
				"dosage":   {doctor.Address()},
				"clinical": {doctor.Address(), patient.Address()},
			},
		})
		return raw
	}

	var out E3Result
	out.Shares = n
	h := uint64(1)

	start := time.Now()
	for i := 0; i < n; i++ {
		if rcpt, _ := exec(doctor, sharereg.FnRegister, regArg(i), h); !rcpt.OK {
			return out, fmt.Errorf("E3 register: %s", rcpt.Err)
		}
		h++
	}
	out.RegisterPerOp = time.Since(start) / time.Duration(n)

	upd := func(i int, col string, seq uint64) []byte {
		raw, _ := jsonMarshal(sharereg.UpdateArgs{
			ShareID: fmt.Sprintf("share-%d", i), Cols: []string{col},
			PayloadHash: "h", Kind: "update", BaseSeq: seq,
		})
		return raw
	}

	start = time.Now()
	for i := 0; i < n; i++ {
		if rcpt, _ := exec(doctor, sharereg.FnRequestUpdate, upd(i, "dosage", 0), h); !rcpt.OK {
			return out, fmt.Errorf("E3 allowed update: %s", rcpt.Err)
		}
		h++
	}
	out.AllowedPerOp = time.Since(start) / time.Duration(n)

	start = time.Now()
	for i := 0; i < n; i++ {
		// Patient lacks dosage permission: the denial path.
		if rcpt, _ := exec(patient, sharereg.FnRequestUpdate, upd(i, "dosage", 1), h); rcpt.OK {
			return out, fmt.Errorf("E3 denied update unexpectedly allowed")
		}
		h++
	}
	out.DeniedPerOp = time.Since(start) / time.Duration(n)

	start = time.Now()
	for i := 0; i < n; i++ {
		raw, _ := jsonMarshal(sharereg.AckArgs{ShareID: fmt.Sprintf("share-%d", i), Seq: 1})
		if rcpt, _ := exec(patient, sharereg.FnAckUpdate, raw, h); !rcpt.OK {
			return out, fmt.Errorf("E3 ack: %s", rcpt.Err)
		}
		h++
	}
	out.AckPerOp = time.Since(start) / time.Duration(n)

	start = time.Now()
	for i := 0; i < n; i++ {
		raw, _ := jsonMarshal(sharereg.PermissionArgs{
			ShareID: fmt.Sprintf("share-%d", i), Column: "dosage",
			Writers: []identity.Address{doctor.Address(), patient.Address()},
		})
		if rcpt, _ := exec(doctor, sharereg.FnSetPermission, raw, h); !rcpt.OK {
			return out, fmt.Errorf("E3 set_permission: %s", rcpt.Err)
		}
		h++
	}
	out.SetPermPerOp = time.Since(start) / time.Duration(n)

	start = time.Now()
	const rootReps = 16
	for i := 0; i < rootReps; i++ {
		_ = store.Root()
	}
	out.StateRootPerOp = time.Since(start) / rootReps
	return out, nil
}

// ---------------------------------------------------------------------
// E4 — Fig. 4 CRUD protocol: end-to-end latency of entry-level
// operations through the full pipeline (contract + consensus + data
// channel + BX).

// E4Result reports CRUD latencies.
type E4Result struct {
	Ops    int
	Create time.Duration
	Read   time.Duration
	Update time.Duration
	Delete time.Duration
}

// RunE4CRUD performs n of each entry-level operation on the Fig. 1
// scenario (doctor-side, propagating to the patient).
func RunE4CRUD(ctx context.Context, n int) (E4Result, error) {
	sc, err := NewFig1Scenario(ctx, NetworkConfig{BlockInterval: 2 * time.Millisecond}, 10, 1)
	if err != nil {
		return E4Result{}, err
	}
	defer sc.Stop()
	out := E4Result{Ops: n}

	// Create: insert a fresh patient row, wait until finalized. The new
	// row reuses a medication already present in D3 (with its exact
	// mechanism, preserving a1 -> a5), so the creation flows through the
	// patient share only — creating a brand-new *medication* would
	// additionally require the researcher's mechanism permission.
	med, mech, err := existingMedication(sc)
	if err != nil {
		return out, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		pid := int64(1000 + i)
		err := sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
			return tbl.Insert(reldb.Row{
				reldb.I(pid), reldb.S(med), reldb.S("CliD-new"),
				reldb.S("one tablet daily"), reldb.S(mech),
			})
		})
		if err != nil {
			return out, err
		}
		if err := syncAndWait(ctx, sc.Doctor, "D3"); err != nil {
			return out, fmt.Errorf("E4 create: %w", err)
		}
	}
	out.Create = time.Since(start) / time.Duration(n)

	// Read: query the local replica (Fig. 4: reads are local).
	start = time.Now()
	for i := 0; i < n; i++ {
		v, err := sc.Patient.View(ShareIDD13)
		if err != nil {
			return out, err
		}
		if _, ok := v.Get(reldb.Row{reldb.I(int64(1000 + i))}); !ok {
			return out, fmt.Errorf("E4 read: created row missing")
		}
	}
	out.Read = time.Since(start) / time.Duration(n)

	// Update: change the dosage of an existing row.
	start = time.Now()
	for i := 0; i < n; i++ {
		pid := int64(1000 + i)
		err := sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
			return tbl.Update(reldb.Row{reldb.I(pid)},
				map[string]reldb.Value{workload.ColDosage: reldb.S(fmt.Sprintf("dose-%d", i))})
		})
		if err != nil {
			return out, err
		}
		if err := syncAndWait(ctx, sc.Doctor, "D3"); err != nil {
			return out, fmt.Errorf("E4 update: %w", err)
		}
	}
	out.Update = time.Since(start) / time.Duration(n)

	// Delete: remove the created rows.
	start = time.Now()
	for i := 0; i < n; i++ {
		pid := int64(1000 + i)
		err := sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
			return tbl.Delete(reldb.Row{reldb.I(pid)})
		})
		if err != nil {
			return out, err
		}
		if err := syncAndWait(ctx, sc.Doctor, "D3"); err != nil {
			return out, fmt.Errorf("E4 delete: %w", err)
		}
	}
	out.Delete = time.Since(start) / time.Duration(n)
	return out, nil
}

// existingMedication returns a medication present in the doctor's D3 and
// its recorded mechanism, keeping the a1 -> a5 dependency intact.
func existingMedication(sc *Fig1Scenario) (med, mech string, err error) {
	d3, err := sc.Doctor.Source("D3")
	if err != nil {
		return "", "", err
	}
	rows := d3.RowsCanonical()
	if len(rows) == 0 {
		return "", "", fmt.Errorf("empty D3")
	}
	med, _ = rows[0][1].Str()
	mech, _ = rows[0][4].Str()
	return med, mech, nil
}

// syncAndWait proposes on every affected share and waits for full finalization.
func syncAndWait(ctx context.Context, p *core.Peer, source string) error {
	props, err := p.SyncShares(ctx, source)
	if err != nil {
		return err
	}
	for _, pr := range props {
		if err := p.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// E5 — Fig. 5 workflow: propagation latency of the 11-step cascade.

// E5Result reports the cascade latencies.
type E5Result struct {
	Records int
	// SingleHop is steps 1-5: researcher edit visible in doctor's D3.
	SingleHop time.Duration
	// FullCascade is steps 1-11 driven by a medication rename: doctor
	// put + automatic overlap cascade to the patient and researcher.
	FullCascade time.Duration
}

// RunE5Cascade measures both hops on a fresh scenario with the given
// record count.
func RunE5Cascade(ctx context.Context, records int, seed int64) (E5Result, error) {
	sc, err := NewFig1Scenario(ctx, NetworkConfig{BlockInterval: 2 * time.Millisecond}, records, seed)
	if err != nil {
		return E5Result{}, err
	}
	defer sc.Stop()
	out := E5Result{Records: records}

	// Pick a medication present in both D2 and D3.
	d2, err := sc.Researcher.Source("D2")
	if err != nil {
		return out, err
	}
	rows := d2.RowsCanonical()
	if len(rows) == 0 {
		return out, fmt.Errorf("E5: empty D2")
	}
	med, _ := rows[0][0].Str()

	// Steps 1-5: mechanism update, researcher -> doctor.
	start := time.Now()
	err = sc.Researcher.UpdateSource("D2", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.S(med)},
			map[string]reldb.Value{workload.ColMechanism: reldb.S("MeA-e5")})
	})
	if err != nil {
		return out, err
	}
	props, err := sc.Researcher.SyncShares(ctx, "D2")
	if err != nil {
		return out, err
	}
	if len(props) != 1 {
		return out, fmt.Errorf("E5: expected 1 proposal, got %d", len(props))
	}
	if err := sc.Researcher.WaitFinal(ctx, props[0].ShareID, props[0].Seq); err != nil {
		return out, err
	}
	out.SingleHop = time.Since(start)

	// Steps 1-11: the doctor renames the medication; the change cascades
	// to both the patient (D13) and the researcher (D23).
	start = time.Now()
	renamed := med + "-gen2"
	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		for _, r := range tbl.Rows() {
			if m, _ := r[1].Str(); m == med {
				if err := tbl.Update(tbl.KeyValues(r),
					map[string]reldb.Value{workload.ColMedication: reldb.S(renamed)}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	props, err = sc.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		return out, err
	}
	for _, pr := range props {
		if err := sc.Doctor.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
			return out, err
		}
	}
	// Confirm the rename landed on both far ends.
	deadline := time.Now().Add(30 * time.Second)
	for {
		d2after, err := sc.Researcher.Source("D2")
		if err != nil {
			return out, err
		}
		if d2after.Has(reldb.Row{reldb.S(renamed)}) {
			break
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("E5: cascade did not reach the researcher")
		}
		time.Sleep(time.Millisecond)
	}
	out.FullCascade = time.Since(start)
	return out, nil
}

// jsonMarshal is a tiny alias keeping experiment code terse.
func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }
