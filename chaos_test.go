package medshare

import (
	"context"
	"encoding/hex"
	"testing"
	"time"

	"medshare/internal/contract/sharereg"
	"medshare/internal/core"
	"medshare/internal/store"
)

// runChaos executes the full chaos suite — lossy update storm, three-way
// partition, doctor crash-restart mid-cascade — with a fixed seed and
// asserts the acceptance criteria: every finalized update lands, the
// fabric really did drop a meaningful share of traffic, recovery used
// the retry/repair machinery (never a manual resync), and every replica
// ends at the on-chain Merkle root.
func runChaos(t *testing.T, transport string, groupCommit bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	sc, err := NewChaosScenario(ctx, ChaosConfig{
		Seed:          42,
		DataTransport: transport,
		GroupCommit:   groupCommit,
	})
	if err != nil {
		t.Fatalf("NewChaosScenario: %v", err)
	}
	defer sc.Network.Stop()

	report, err := sc.Run(ctx)
	if err != nil {
		t.Fatalf("chaos run: %v (report %+v)", err, report)
	}

	if report.Updates < 9 { // 6 storm + 2 partitioned + crash-restart phases
		t.Fatalf("expected at least 9 finalized updates, got %d", report.Updates)
	}
	c := report.Counters
	if c.Requests == 0 {
		t.Fatalf("no data-channel requests observed: %+v", c)
	}
	lost := c.RequestsLost + c.RequestsHung + c.Blocked
	if lost == 0 {
		t.Fatalf("fabric injected no request faults: %+v", c)
	}
	t.Logf("report: updates=%d elapsed=%v converge=%v", report.Updates, report.Elapsed, report.ConvergeAfterHeal)
	t.Logf("fabric: %+v", c)

	var retries, heals uint64
	for name, st := range report.PeerStats {
		t.Logf("stats[%s]: %+v", name, st)
		retries += st.RPCRetries
		heals += st.RepairHeals
	}
	if retries == 0 {
		t.Fatal("no RPC retries recorded — the fault schedule did not exercise the backoff path")
	}
	if heals == 0 {
		t.Fatal("no repair heals recorded — convergence did not go through the self-healing loop")
	}

	if groupCommit {
		// The batched commit path must actually have been driven: the
		// doctor's multi-share proposals (phase 2 renames both shares)
		// ride group commits.
		var commits, txs uint64
		for _, st := range report.PeerStats {
			commits += st.BatchCommits
			txs += st.BatchTxs
		}
		if commits == 0 || txs <= commits {
			t.Fatalf("group commit unused under chaos: BatchCommits=%d BatchTxs=%d", commits, txs)
		}
		// Per-share sequence order survives batching under faults: every
		// history stream (per share and entry kind) advances strictly.
		type stream struct{ share, kind string }
		for name, p := range map[string]interface{ History() []core.HistoryEntry }{
			"Patient": sc.Patient, "Doctor": sc.Doctor, "Researcher": sc.Researcher,
		} {
			last := make(map[stream]uint64)
			for _, e := range p.History() {
				if e.Seq == 0 {
					continue
				}
				k := stream{e.ShareID, e.Kind}
				if e.Seq <= last[k] {
					t.Fatalf("%s history out of order on %s/%s: seq %d after %d",
						name, e.ShareID, e.Kind, e.Seq, last[k])
				}
				last[k] = e.Seq
			}
		}
	}
}

func TestChaosConvergenceMemnet(t *testing.T) {
	runChaos(t, DataTransportMem, false)
}

// TestChaosConvergenceGroupCommit is the batched-commit chaos variant:
// the same fault schedule (request loss, three-way partition, doctor
// crash-restart) with demand-driven group commit on the chain, asserting
// per-share sequence order and convergence to the on-chain Merkle root.
func TestChaosConvergenceGroupCommit(t *testing.T) {
	runChaos(t, DataTransportMem, true)
}

func TestChaosConvergenceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP chaos suite skipped in -short mode")
	}
	runChaos(t, DataTransportTCP, false)
}

// TestChaosConvergenceDurable runs the full chaos suite with every peer
// backed by a durable store, then treats each peer's filesystem clone as
// a kill -9 image: reopening it must yield, for every share the peer
// held, a Merkle-verified view whose hash equals the on-chain payload
// hash at the on-chain sequence. This closes the loop between the
// self-healing convergence criterion (live replicas match the chain)
// and the durability criterion (a crashed replica's recovered state
// matches the chain too).
func TestChaosConvergenceDurable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	sc, err := NewChaosScenario(ctx, ChaosConfig{Seed: 42, Durable: true})
	if err != nil {
		t.Fatalf("NewChaosScenario: %v", err)
	}
	defer sc.Network.Stop()

	report, err := sc.Run(ctx)
	if err != nil {
		t.Fatalf("chaos run: %v (report %+v)", err, report)
	}
	t.Logf("report: updates=%d elapsed=%v converge=%v", report.Updates, report.Elapsed, report.ConvergeAfterHeal)

	// The on-chain truth, captured while the network is still up.
	wantMeta := map[string]*sharereg.Meta{}
	for _, id := range []string{sc.ShareD13, sc.ShareD23} {
		m, err := sc.Doctor.Meta(id)
		if err != nil {
			t.Fatalf("meta %s: %v", id, err)
		}
		if m.LastPayloadHash == "" {
			t.Fatalf("share %s never updated", id)
		}
		wantMeta[id] = m
	}

	for _, name := range []string{"Doctor", "Patient", "Researcher"} {
		fs := sc.Network.PeerFS(name)
		if fs == nil {
			t.Fatalf("%s has no durable filesystem", name)
		}
		// Clone without stopping anything: a byte-exact kill -9 image of
		// the converged peer.
		st, err := store.Open(store.Options{FS: fs.Clone()})
		if err != nil {
			t.Fatalf("%s: reopen kill -9 image: %v", name, err)
		}
		shares := st.Shares()
		if len(shares) == 0 {
			t.Fatalf("%s: recovered store holds no shares", name)
		}
		for id, sm := range shares {
			if sm.View == "" {
				continue // tombstone
			}
			want, ok := wantMeta[id]
			if !ok {
				t.Fatalf("%s: recovered unknown share %s", name, id)
			}
			view, err := st.LoadTable(sm.View)
			if err != nil {
				t.Fatalf("%s/%s: recovered view fails verification: %v", name, id, err)
			}
			if sm.Seq != want.Seq {
				t.Fatalf("%s/%s: recovered at seq %d, chain at %d", name, id, sm.Seq, want.Seq)
			}
			h := view.Hash()
			if got := hex.EncodeToString(h[:]); got != want.LastPayloadHash {
				t.Fatalf("%s/%s: recovered view hash %s != on-chain %s", name, id, got[:12], want.LastPayloadHash[:12])
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("%s: close recovered store: %v", name, err)
		}
		t.Logf("%s: recovered %d shares from kill -9 image, all at the on-chain root", name, len(shares))
	}
}
