//go:build !race

package medshare

// raceDetectorOn reports whether this test binary was built with the
// race detector, whose 5–20x slowdown on CPU-bound work invalidates
// wall-clock performance ratios.
const raceDetectorOn = false
