package medshare

import (
	"testing"
	"time"
)

// Smoke tests for the experiment drivers: each must run end to end at a
// small scale and produce sane values. The full sweeps live in
// cmd/benchrunner; these tests keep the drivers honest under `go test`.

func TestRunE1(t *testing.T) {
	r, err := RunE1ViewDerivation(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Views != 7 || r.DeriveAll <= 0 || r.PerView <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunE2(t *testing.T) {
	r, err := RunE2Bootstrap(testCtx(t), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bootstrap <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunE3(t *testing.T) {
	r, err := RunE3ContractOps(16)
	if err != nil {
		t.Fatal(err)
	}
	if r.RegisterPerOp <= 0 || r.AllowedPerOp <= 0 || r.DeniedPerOp <= 0 || r.AckPerOp <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunE4(t *testing.T) {
	r, err := RunE4CRUD(testCtx(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reads are local and must be orders of magnitude cheaper than the
	// chain-gated mutations.
	if r.Read*100 > r.Update {
		t.Fatalf("read %v not much cheaper than update %v", r.Read, r.Update)
	}
}

func TestRunE5(t *testing.T) {
	r, err := RunE5Cascade(testCtx(t), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleHop <= 0 || r.FullCascade <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunE6ShapeHolds(t *testing.T) {
	ctx := testCtx(t)
	slow, err := RunE6Throughput(ctx, ConsensusPoA, 1*time.Second, 4, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunE6Throughput(ctx, ConsensusPoA, 100*time.Millisecond, 4, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// The paper-relevant shape: shorter intervals give proportionally
	// more update cycles per modeled second.
	if fast.UpdatesPerSecModeled <= slow.UpdatesPerSecModeled {
		t.Fatalf("fast %v <= slow %v", fast.UpdatesPerSecModeled, slow.UpdatesPerSecModeled)
	}
	// Each cycle costs exactly two blocks (request + ack).
	if slow.BlocksUsed != uint64(2*slow.Rounds) {
		t.Fatalf("blocks = %d, want %d", slow.BlocksUsed, 2*slow.Rounds)
	}
}

func TestRunE7ShapeHolds(t *testing.T) {
	r, err := RunE7ConflictRule(testCtx(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.ContendedMakespan <= 0 || r.IndependentMakespan <= 0 {
		t.Fatalf("result = %+v", r)
	}
	// Contention must cost at least as much as independence.
	if r.ContendedMakespan < r.IndependentMakespan {
		t.Fatalf("contended %v < independent %v", r.ContendedMakespan, r.IndependentMakespan)
	}
}

func TestRunE8ShapeHolds(t *testing.T) {
	small, err := RunE8Baseline(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunE8Baseline(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	byPeer := func(rs []E8Result, peer string) E8Result {
		for _, r := range rs {
			if r.Peer == peer {
				return r
			}
		}
		t.Fatalf("peer %s missing", peer)
		return E8Result{}
	}
	// The researcher's exposure reduction grows with record count (its
	// medication-keyed view deduplicates); the patient's stays flat.
	rs, rb := byPeer(small, "Researcher"), byPeer(big, "Researcher")
	if rb.ExposureRatio <= rs.ExposureRatio {
		t.Fatalf("researcher reduction did not grow: %v -> %v", rs.ExposureRatio, rb.ExposureRatio)
	}
	ps, pb := byPeer(small, "Patient"), byPeer(big, "Patient")
	if pb.ExposureRatio > ps.ExposureRatio*1.5 {
		t.Fatalf("patient reduction unexpectedly grew: %v -> %v", ps.ExposureRatio, pb.ExposureRatio)
	}
	// Changeset transfer is far below full-view transfer.
	if rb.TransferChangeset*2 > rb.TransferFineGrained {
		t.Fatalf("changeset %v not much smaller than view %v", rb.TransferChangeset, rb.TransferFineGrained)
	}
}

func TestRunE9(t *testing.T) {
	r1, err := RunE9BX(200, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := RunE9BX(200, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Get <= 0 || r1.Put <= 0 {
		t.Fatalf("result = %+v", r1)
	}
	// Deeper compositions cost more. Wall-clock comparisons of sub-ms
	// measurements can invert under a GC pause or scheduler blip, so an
	// inversion is re-measured once before failing.
	if r3.Put < r1.Put {
		r1b, err1 := RunE9BX(200, 1, 1)
		r3b, err3 := RunE9BX(200, 3, 1)
		if err1 != nil || err3 != nil {
			t.Fatalf("remeasure: %v, %v", err1, err3)
		}
		if r3b.Put < r1b.Put {
			t.Fatalf("depth-3 put %v cheaper than depth-1 %v (twice)", r3b.Put, r1b.Put)
		}
	}
}

func TestRunE10(t *testing.T) {
	r, err := RunE10Audit(testCtx(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	// register(2) + per update (request + ack) = 2 + 2k records for this
	// share plus the second share's registration.
	if r.HistoryCount < 2*r.Updates {
		t.Fatalf("history %d too small for %d updates", r.HistoryCount, r.Updates)
	}
}

func TestRunE14(t *testing.T) {
	r, err := RunE14BuilderRebuild(10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.GetRebuild <= 0 || r.PutRebuild <= 0 || r.JoinGet <= 0 ||
		r.JoinDeltaPut <= 0 || r.ProjectDeltaPut <= 0 {
		t.Fatalf("result = %+v", r)
	}
	// The join delta must stay within a small constant of the projection
	// delta (the 100k acceptance bound is 3x; allow 4x here for µs-scale
	// scheduler noise, re-measuring once before failing) — and orders of
	// magnitude under the whole-view put it replaces.
	ok := func(r E14Result) bool {
		return r.JoinDeltaPut < 4*r.ProjectDeltaPut && 20*r.JoinDeltaPut < r.PutRebuild
	}
	if !ok(r) {
		r2, err := RunE14BuilderRebuild(10000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok(r2) {
			t.Fatalf("join delta not O(changed rows): join %v vs project %v (put rebuild %v), twice",
				r2.JoinDeltaPut, r2.ProjectDeltaPut, r2.PutRebuild)
		}
	}
}

// TestRunE16 is the write-side scaling acceptance gate: batched group
// commit must sustain at least 10x the one-update-per-block throughput
// at equal-or-better p50 latency. Both runs are re-measured once before
// failing (shared-hardware load storms inflate wall-clock metrics).
// Under the race detector the batch work is CPU-bound on instrumented
// code, so the wall-clock ratio is asserted only loosely there — the
// full gate runs in the plain test and benchrunner CI stages.
func TestRunE16(t *testing.T) {
	measure := func() (base, batched E16Result, err error) {
		base, err = RunE16Saturation(testCtx(t), 1, 4, false)
		if err != nil {
			return
		}
		// Batch 8 sits well left of the single-core knee (~32), so the
		// p50 bound has real margin; larger batches trade latency for
		// throughput and flap on loaded hardware.
		batched, err = RunE16Saturation(testCtx(t), 8, 4, true)
		return
	}
	ok := func(base, batched E16Result) bool {
		if raceDetectorOn {
			return batched.UpdatesPerSec > base.UpdatesPerSec
		}
		return batched.UpdatesPerSec >= 10*base.UpdatesPerSec &&
			batched.P50Time <= base.P50Time
	}
	base, batched, err := measure()
	if err != nil {
		t.Fatal(err)
	}
	if batched.MeanBatch < 8 {
		t.Fatalf("group commit not batching: mean batch %.1f", batched.MeanBatch)
	}
	if !ok(base, batched) {
		base, batched, err = measure()
		if err != nil {
			t.Fatal(err)
		}
		if !ok(base, batched) {
			t.Fatalf("batched %0.f/s p50 %v vs baseline %0.f/s p50 %v: want >=10x at equal-or-better p50, twice",
				batched.UpdatesPerSec, batched.P50Time, base.UpdatesPerSec, base.P50Time)
		}
	}
}

func TestRunE15(t *testing.T) {
	r, err := RunE15Chaos(testCtx(t), 0.35, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Updates < 9 || r.ConvergeTime <= 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.RequestsLost == 0 && r.RequestsBlocked == 0 {
		t.Fatalf("no faults injected: %+v", r)
	}
	if r.RPCRetries == 0 || r.RepairHeals == 0 {
		t.Fatalf("recovery machinery unused: %+v", r)
	}
}

// TestRunE17 smoke-drives the serving edge under a short open-loop
// run: the scenario must serve reads and admit writes with a near-zero
// error rate, and the proof-carrying reads must verify (the Op fails
// them otherwise, which would show up as errors here). Re-measured once
// before failing — on shared hardware a load storm can starve the
// scheduler enough to time out requests.
func TestRunE17(t *testing.T) {
	measure := func() (E17Result, error) {
		return RunE17Serving(testCtx(t), 80, 1500*time.Millisecond, 0.9)
	}
	ok := func(r E17Result) bool {
		return r.ErrorRate <= 0.02 && r.ReadsPerSec > 0 && r.WritesPerSec > 0 &&
			r.ReadP50 > 0 && r.WriteP50 > 0 && r.ReadP50 <= r.ReadP999
	}
	r, err := measure()
	if err != nil {
		t.Fatal(err)
	}
	if !ok(r) {
		r, err = measure()
		if err != nil {
			t.Fatal(err)
		}
		if !ok(r) {
			t.Fatalf("result = %+v", r)
		}
	}
	if r.Offered == 0 || r.Completed == 0 {
		t.Fatalf("nothing ran: %+v", r)
	}
}
