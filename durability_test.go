package medshare

import (
	"context"
	"encoding/hex"
	"testing"
	"time"

	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/reldb"
	"medshare/internal/store"
	"medshare/internal/workload"
)

// TestShareCrashSweepAndResync is the share-level half of the crash
// sweep: a subscriber replica runs over the crash-point injection
// filesystem while a real share commit history goes through it, then
// every injected crash offset is walked and each survivor image must
// recover share state that is verified (Merkle-checked view, never
// ahead of the chain, byte-identical to the on-chain payload hash when
// the sequences match) or detectably stale/corrupt. Finally one stale
// survivor is actually healed: the subscriber restarts from it with the
// same identity, the restore path accepts the stale replica, and the
// existing data-sync machinery catches it up to the on-chain root.
func TestShareCrashSweepAndResync(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	nw, err := NewNetwork(NetworkConfig{BlockInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()

	owner, err := nw.NewPeer("Owner", 0)
	if err != nil {
		t.Fatal(err)
	}
	subID := identity.FromSeed("Subscriber", "subscriber-crash-seed")
	ffs := store.NewFaultFS()
	fstore, err := store.Open(store.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := nw.NewPeerWithOptions("Subscriber", nw.Nodes()-1, PeerOptions{
		Identity: subID,
		Store:    fstore,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The Fig. 1 patient share, owner playing the doctor.
	full := workload.Generate("full", 8, 7)
	d3, err := full.Project("D3", workload.DoctorCols, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := full.Project("D1", workload.PatientCols, nil)
	if err != nil {
		t.Fatal(err)
	}
	owner.DB().PutTable(d3)
	sub.DB().PutTable(d1)

	const shareID = "CRASH&SWEEP"
	err = owner.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          shareID,
		SourceTable: "D3",
		Lens:        LensD31(),
		ViewName:    "D31",
		Peers:       []identity.Address{sub.Address(), owner.Address()},
		WritePerm: map[string][]identity.Address{
			workload.ColDosage:   {owner.Address()},
			workload.ColClinical: {sub.Address(), owner.Address()},
		},
		Authority: owner.Address(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.WaitForShare(ctx, shareID); err != nil {
		t.Fatal(err)
	}
	if err := sub.AttachShare(shareID, "D1", LensD13(), "D13"); err != nil {
		t.Fatal(err)
	}

	// The commit history: five finalized dosage updates, each one a
	// replica commit (and hence a store commit) on the subscriber.
	for i := 0; i < 5; i++ {
		dose := reldb.S(time.Duration(i).String() + "-dose")
		err := owner.UpdateSource("D3", func(tb *reldb.Table) error {
			return tb.Update(reldb.Row{reldb.I(int64(188 + i))}, map[string]reldb.Value{
				workload.ColDosage: dose,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		results, err := owner.SyncShares(ctx, "D3")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if err := owner.WaitFinal(ctx, r.ShareID, r.Seq); err != nil {
				t.Fatal(err)
			}
		}
	}
	meta, err := owner.Meta(shareID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LastPayloadHash == "" {
		t.Fatal("share never updated")
	}

	// Sweep: every write boundary and a stride of interior offsets under
	// the torn model, every sync point under drop-unsynced, a stride of
	// bit flips. Each survivor must verify or be detectably behind.
	total := ffs.TotalBytes()
	stride := total/64 + 1
	var verified, stale, detected int
	var staleImage *store.MemFS
	probe := func(off int64, mode store.CrashMode, label string) {
		t.Helper()
		img := ffs.SurvivorAt(off, mode)
		st, err := store.Open(store.Options{FS: img})
		if err != nil {
			detected++
			return
		}
		defer st.Close()
		for id, sm := range st.Shares() {
			if sm.View == "" {
				continue // tombstone
			}
			if id != shareID {
				t.Fatalf("%s@%d: recovered unknown share %s", label, off, id)
			}
			view, err := st.LoadTable(sm.View)
			if err != nil {
				detected++ // Merkle verification caught the damage
				continue
			}
			if sm.Seq > meta.Seq {
				t.Fatalf("%s@%d: recovered seq %d ahead of chain seq %d", label, off, sm.Seq, meta.Seq)
			}
			if sm.Seq == meta.Seq {
				h := view.Hash()
				if got := hex.EncodeToString(h[:]); got != meta.LastPayloadHash {
					t.Fatalf("%s@%d: recovered view at chain seq %d does not hash to the on-chain root", label, off, sm.Seq)
				}
				verified++
			} else {
				stale++ // behind the chain: the resync path's job
				if staleImage == nil && mode == store.CrashTorn {
					staleImage = img
				}
			}
		}
	}
	for _, off := range ffs.WriteBoundaries() {
		probe(off, store.CrashTorn, "torn")
	}
	for off := int64(0); off <= total; off += stride {
		probe(off, store.CrashTorn, "torn")
	}
	for _, off := range ffs.SyncPoints() {
		probe(off, store.CrashDropUnsynced, "drop-unsynced")
	}
	for off := int64(0); off < total; off += stride {
		probe(off, store.CrashBitFlip, "bitflip")
	}
	t.Logf("share sweep: %d verified, %d stale (resyncable), %d detected over %d journal bytes",
		verified, stale, detected, total)
	if verified == 0 {
		t.Fatal("no survivor recovered the converged view")
	}
	if stale == 0 {
		t.Fatal("no survivor was stale — the sweep never hit mid-history")
	}

	// Heal one stale survivor through the real machinery: restart the
	// subscriber from the kill -9 image with the same identity; the
	// restore path accepts the stale replica and resync catches it up.
	sub.Stop()
	recovered, err := store.Open(store.Options{FS: staleImage})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	sm := recovered.Shares()[shareID]
	if sm.Seq >= meta.Seq {
		t.Fatalf("stale image is not stale (seq %d vs chain %d)", sm.Seq, meta.Seq)
	}
	sub2, err := nw.NewPeerWithOptions("Subscriber-reborn", nw.Nodes()-1, PeerOptions{
		Identity: subID,
		Store:    recovered,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub2.AttachShare(shareID, "D1", LensD13(), "D13"); err != nil {
		t.Fatalf("restore from stale image: %v", err)
	}
	info, err := sub2.ShareInfo(shareID)
	if err != nil {
		t.Fatal(err)
	}
	if info.AppliedSeq != sm.Seq {
		t.Fatalf("restored at seq %d, image held %d", info.AppliedSeq, sm.Seq)
	}
	if err := sub2.Resync(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		view, err := sub2.View(shareID)
		if err == nil {
			h := view.Hash()
			if hex.EncodeToString(h[:]) == meta.LastPayloadHash {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restored subscriber never resynced to the on-chain root")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("stale survivor (seq %d) healed to on-chain seq %d by resync", sm.Seq, meta.Seq)
}
