package medshare

import (
	"fmt"
	"time"

	"medshare/internal/bx"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// ---------------------------------------------------------------------
// E12 — storage scaling: the persistent (structurally shared) row
// storage's core promise is that the steady-state cost of a one-row
// update cycle is O(log n) in table size — flat for practical sizes —
// with no hidden O(n) step anywhere on the delta path. This experiment
// measures each stage of that path (view diff, delta put, database
// commit, convergence hash) across 1k/10k/100k-row tables, plus the full
// put for contrast (the one deliberately O(n) operation left).

// E12Result reports the steady-state per-delta costs at one table size.
type E12Result struct {
	Rows int
	// ViewDiff is oldView.Diff(edited) for a one-row edit — structural,
	// prunes shared subtrees.
	ViewDiff time.Duration
	// DeltaPut is the lens PutDelta embedding the one-row changeset into
	// the source.
	DeltaPut time.Duration
	// Commit is the database commit of a one-row source update on an
	// already-hashed table: snapshot clone, path-copied mutation,
	// incremental digest maintenance, atomic publish.
	Commit time.Duration
	// HashAfterDelta is the convergence hash of the updated source
	// (incremental: O(1) after the delta's digest maintenance).
	HashAfterDelta time.Duration
	// FullPut is the whole-view lens put at this size — the O(n)
	// contrast line showing what every update used to cost.
	FullPut time.Duration
}

// RunE12StorageScaling measures the steady-state one-row update cycle at
// the given table size.
func RunE12StorageScaling(rows int, seed int64) (E12Result, error) {
	full := workload.Generate("full", rows, seed)
	full.Hash() // replicas are hashed in steady state
	lens := LensD31()
	view, err := lens.Get(full)
	if err != nil {
		return E12Result{}, err
	}

	reps := 64
	if rows >= 100000 {
		reps = 32
	}
	// Each stage is timed as the best of several blocks of reps — the
	// robust microbenchmark estimator: a GC pause or scheduler
	// preemption inflates one block, not the minimum.
	const blocks = 5
	bestOf := func(stage func() error) (time.Duration, error) {
		best := time.Duration(1<<63 - 1)
		for b := 0; b < blocks; b++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := stage(); err != nil {
					return 0, err
				}
			}
			if d := time.Since(start) / time.Duration(reps); d < best {
				best = d
			}
		}
		return best, nil
	}

	// Stage 1: diff a one-row view edit against its base. A fresh clone
	// per rep keeps the measured diff honest (base vs 1-edit derivative).
	keys := view.RowsCanonical()
	var cs reldb.Changeset
	i := 0
	diffTime, err := bestOf(func() error {
		i++
		edited := view.Clone()
		if err := edited.Update(view.KeyValues(keys[i%len(keys)]),
			map[string]reldb.Value{workload.ColDosage: reldb.S(fmt.Sprintf("e12-%d", i))}); err != nil {
			return err
		}
		cs, err = view.Diff(edited)
		return err
	})
	if err != nil {
		return E12Result{}, err
	}

	// Stage 2: the delta put (steady state: warm once first).
	edited := view.Clone()
	if err := edited.Update(view.KeyValues(keys[0]),
		map[string]reldb.Value{workload.ColDosage: reldb.S("e12")}); err != nil {
		return E12Result{}, err
	}
	cs, err = view.Diff(edited)
	if err != nil {
		return E12Result{}, err
	}
	if _, _, err := bx.PutDelta(lens, full, edited, cs); err != nil {
		return E12Result{}, err
	}
	var newSrc *reldb.Table
	deltaTime, err := bestOf(func() error {
		newSrc, _, err = bx.PutDelta(lens, full, edited, cs)
		return err
	})
	if err != nil {
		return E12Result{}, err
	}

	// Stage 3: the database commit of a one-row source mutation.
	db := reldb.NewDatabase("e12")
	db.PutTable(full)
	srcKeys := full.RowsCanonical()
	i = 0
	commitTime, err := bestOf(func() error {
		i++
		return db.WithTable("full", func(t *reldb.Table) error {
			return t.Update(full.KeyValues(srcKeys[i%len(srcKeys)]),
				map[string]reldb.Value{workload.ColDosage: reldb.S(fmt.Sprintf("c%d", i))})
		})
	})
	if err != nil {
		return E12Result{}, err
	}

	// Stage 4: the convergence hash after a delta.
	hashTime, err := bestOf(func() error {
		_ = newSrc.Hash()
		return nil
	})
	if err != nil {
		return E12Result{}, err
	}

	// Contrast: the full put at this size (single block; it is the slow
	// O(n) line and only there for scale).
	fullReps := 8
	if rows >= 100000 {
		fullReps = 2
	}
	start := time.Now()
	for i := 0; i < fullReps; i++ {
		if _, err := lens.Put(full, edited); err != nil {
			return E12Result{}, err
		}
	}
	fullTime := time.Since(start) / time.Duration(fullReps)

	return E12Result{
		Rows:           rows,
		ViewDiff:       diffTime,
		DeltaPut:       deltaTime,
		Commit:         commitTime,
		HashAfterDelta: hashTime,
		FullPut:        fullTime,
	}, nil
}
