// Package medshare is a from-scratch Go implementation of the
// architecture in "Blockchain-based Bidirectional Updates on Fine-grained
// Medical Data" (Li, Cao, Hu, Yoshikawa; ICDE 2019 workshops): stakeholders
// keep full medical records in local relational databases, share
// fine-grained views pairwise, synchronize source and views with
// well-behaved bidirectional transformations (asymmetric lenses), and gate
// every update through a permissioned blockchain whose smart contract
// holds the share metadata — sharing peers, per-attribute write
// permissions, update sequencing, and the all-peers-acknowledged rule.
//
// The package re-exports the user-facing API of the internal modules:
//
//   - relational engine: Schema, Table, Database, Value, predicates;
//   - lenses: Project, Select, Rename, Compose, with GetPut/PutGet law
//     checkers;
//   - network bootstrap: NewNetwork wires blockchain nodes (PoW or PoA),
//     the in-memory data channel, and peers in one process;
//   - sharing layer: Peer, RegisterShare/AttachShare, ProposeUpdate,
//     UpdateView, SetPermission, Resync;
//   - audit: Auditor replays the ledger into a tamper-evident history.
//
// See examples/quickstart for the smallest complete program.
package medshare

import (
	"medshare/internal/audit"
	"medshare/internal/bx"
	"medshare/internal/chain"
	"medshare/internal/contract"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// Relational engine types.
type (
	// Value is a typed scalar (string, int, float, bool, time, or NULL).
	Value = reldb.Value
	// Row is an ordered tuple of values.
	Row = reldb.Row
	// Column describes one attribute of a table.
	Column = reldb.Column
	// Schema describes a table: name, ordered columns, primary key.
	Schema = reldb.Schema
	// Table is an in-memory relation with a primary-key index.
	Table = reldb.Table
	// Database is a named collection of tables; each peer owns one.
	Database = reldb.Database
	// Predicate is a serializable row condition for selection lenses.
	Predicate = reldb.Predicate
	// Changeset is the keyed difference between two table versions.
	Changeset = reldb.Changeset
	// Kind enumerates value types.
	Kind = reldb.Kind
)

// Value constructors and kinds.
var (
	// S, I, F, B, T, Null construct values.
	S    = reldb.S
	I    = reldb.I
	F    = reldb.F
	B    = reldb.B
	T    = reldb.T
	Null = reldb.Null

	// NewTable and NewDatabase construct storage.
	NewTable    = reldb.NewTable
	NewDatabase = reldb.NewDatabase

	// FormatTable renders a table as an aligned text grid.
	FormatTable = reldb.Format

	// Predicate combinators.
	PredTrue   = reldb.True
	PredEq     = reldb.Eq
	PredCmp    = reldb.Cmp
	PredAnd    = reldb.And
	PredOr     = reldb.Or
	PredNot    = reldb.Not
	PredIsNull = reldb.IsNull
)

// Value kinds.
const (
	KindNull   = reldb.KindNull
	KindString = reldb.KindString
	KindInt    = reldb.KindInt
	KindFloat  = reldb.KindFloat
	KindBool   = reldb.KindBool
	KindTime   = reldb.KindTime
)

// Comparison operators for PredCmp.
const (
	OpEq = reldb.OpEq
	OpNe = reldb.OpNe
	OpLt = reldb.OpLt
	OpLe = reldb.OpLe
	OpGt = reldb.OpGt
	OpGe = reldb.OpGe
)

// Lens types and combinators (bidirectional transformations).
type (
	// Lens is an asymmetric lens between a source table and a view.
	Lens = bx.Lens
	// LensSpec is the serializable description registered on-chain.
	LensSpec = bx.Spec
)

var (
	// ProjectLens shares a subset of columns (vertical fine-graining).
	ProjectLens = bx.Project
	// SelectLens shares a subset of rows (horizontal fine-graining).
	SelectLens = bx.Select
	// RenameLens renames shared attributes.
	RenameLens = bx.Rename
	// JoinLens enriches the view with read-only reference data.
	JoinLens = bx.Join
	// ComposeLens chains lenses left-to-right.
	ComposeLens = bx.Compose
	// ParseLensSpec rebuilds a lens from its on-chain spec.
	ParseLensSpec = bx.ParseSpec

	// CheckGetPut, CheckPutGet, CheckWellBehaved verify the round-tripping
	// laws on concrete data.
	CheckGetPut      = bx.CheckGetPut
	CheckPutGet      = bx.CheckPutGet
	CheckWellBehaved = bx.CheckWellBehaved
	// LensOverlaps reports whether an update through one lens can affect
	// another lens's view over the same source (Fig. 5 step 6).
	LensOverlaps = bx.Overlaps
)

// Lens edit policies.
const (
	// PolicyForbid rejects structural (insert/delete) view edits.
	PolicyForbid = bx.PolicyForbid
	// PolicyApply propagates structural view edits into the source.
	PolicyApply = bx.PolicyApply
)

// Identity and sharing types.
type (
	// Identity is an ed25519 key pair naming a stakeholder.
	Identity = identity.Identity
	// Address is a stakeholder's on-chain principal.
	Address = identity.Address
	// Peer is one stakeholder: local database, shares, lenses, and the
	// blockchain connection.
	Peer = core.Peer
	// PeerConfig configures a Peer.
	PeerConfig = core.Config
	// ShareInfo is a snapshot of a peer's local share binding.
	ShareInfo = core.ShareInfo
	// RegisterShareArgs describes a new share.
	RegisterShareArgs = core.RegisterShareArgs
	// ProposalResult reports an admitted update.
	ProposalResult = core.ProposalResult
	// Directory maps addresses to data-channel endpoints.
	Directory = core.Directory
	// HistoryEntry is a locally observed share event.
	HistoryEntry = core.HistoryEntry
)

var (
	// NewIdentity generates a named key pair.
	NewIdentity = identity.New
	// NewPeer constructs a Peer from a PeerConfig.
	NewPeer = core.NewPeer
	// NewDirectory creates an endpoint directory.
	NewDirectory = core.NewDirectory
)

// Sharing-layer sentinel errors.
var (
	ErrNoChanges     = core.ErrNoChanges
	ErrTxFailed      = core.ErrTxFailed
	ErrUnknownShare  = core.ErrUnknownShare
	ErrPayloadHash   = core.ErrPayloadHash
	ErrNotAuthorized = core.ErrNotAuthorized
	ErrPutViolation  = bx.ErrPutViolation
	ErrLawViolation  = bx.ErrLawViolation
)

// Blockchain and audit types.
type (
	// Node is a blockchain node.
	Node = node.Node
	// NodeConfig configures a Node.
	NodeConfig = node.Config
	// Block is a sealed block.
	Block = chain.Block
	// Tx is a signed contract invocation.
	Tx = chain.Tx
	// ContractEvent is a committed contract event.
	ContractEvent = contract.Event
	// Auditor replays the ledger into verifiable history.
	Auditor = audit.Auditor
	// AuditRecord is one ledger-derived history entry.
	AuditRecord = audit.Record
)

// NewAuditor creates an auditor over a node's chain and contracts.
func NewAuditor(n *Node) *Auditor {
	return audit.New(n.Store(), n.Registry())
}

// Workload helpers (Fig. 1 schema and synthetic data).
var (
	// FullSchema is the seven-attribute medical record schema of Fig. 1.
	FullSchema = workload.FullSchema
	// GenerateRecords builds n deterministic synthetic records.
	GenerateRecords = workload.Generate
	// Fig1Records reproduces the exact two-row table of Fig. 1.
	Fig1Records = workload.Fig1Data
)

// Fig. 1 attribute names.
const (
	ColPatientID  = workload.ColPatientID
	ColMedication = workload.ColMedication
	ColClinical   = workload.ColClinical
	ColAddress    = workload.ColAddress
	ColDosage     = workload.ColDosage
	ColMechanism  = workload.ColMechanism
	ColMode       = workload.ColMode
)
