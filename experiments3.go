package medshare

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// ---------------------------------------------------------------------
// E11 — many-shares peer: one hub stakeholder with a pairwise share per
// counterparty (the multi-institution fan-out FHIRChain and SPChain treat
// as the realistic deployment shape). The experiment measures one full
// fan-out round — a local edit touching every share, proposed on all of
// them, through to on-chain finality — with the peer's concurrent share
// processing on and off, plus the snapshot-read throughput the hub
// sustains for concurrent readers while the storm is in flight.

// E11Result reports one many-shares configuration.
type E11Result struct {
	Shares  int
	Records int
	Readers int
	// SeqMakespan is the round's wall time with sequential fan-out (the
	// pre-concurrency behavior, FanoutWorkers < 0).
	SeqMakespan time.Duration
	// ParMakespan is the round's wall time with the concurrent fan-out
	// pool.
	ParMakespan time.Duration
	// SpeedupX is SeqMakespan / ParMakespan.
	SpeedupX float64
	// ReadsPerSec is the hub's sustained View-snapshot rate from Readers
	// concurrent readers, measured in a dedicated window after the round
	// (so the round's makespan and the read rate don't perturb each other
	// on small machines).
	ReadsPerSec float64
}

// RunE11ManyShares measures both fan-out modes at the given scale.
func RunE11ManyShares(ctx context.Context, shares, records int) (E11Result, error) {
	out := E11Result{Shares: shares, Records: records, Readers: 4}

	seq, _, err := RunE11Round(ctx, shares, records, -1, 0)
	if err != nil {
		return out, fmt.Errorf("E11 sequential: %w", err)
	}
	out.SeqMakespan = seq

	par, reads, err := RunE11Round(ctx, shares, records, 16, out.Readers)
	if err != nil {
		return out, fmt.Errorf("E11 parallel: %w", err)
	}
	out.ParMakespan = par
	out.ReadsPerSec = reads
	if par > 0 {
		out.SpeedupX = float64(seq) / float64(par)
	}
	return out, nil
}

// RunE11Round builds a fresh network with one hub and `shares`
// counterparties, registers all pairwise shares, performs one fan-out
// round (edit every column, SyncShares, wait for finality on every
// share), and returns its makespan. With readers > 0, that many
// goroutines then hammer hub.View for a fixed window and the sustained
// snapshot-read rate is returned alongside.
func RunE11Round(ctx context.Context, shares, records, workers, readers int) (time.Duration, float64, error) {
	nw, err := NewNetwork(NetworkConfig{BlockInterval: 2 * time.Millisecond})
	if err != nil {
		return 0, 0, err
	}
	defer nw.Stop()

	hub, err := nw.NewPeerWithOptions("hub", 0, PeerOptions{FanoutWorkers: workers})
	if err != nil {
		return 0, 0, err
	}
	hub.DB().PutTable(workload.GenerateManyShares("T", shares, records, 1))

	shareIDs := make([]string, shares)
	for i := 0; i < shares; i++ {
		partner, err := nw.NewPeer(fmt.Sprintf("partner-%d", i), 0)
		if err != nil {
			return 0, 0, err
		}
		col := workload.ManyShareCol(i)
		id := fmt.Sprintf("S%02d", i)
		shareIDs[i] = id
		hubLens := bx.Project(id+"h", []string{"k", col}, nil)
		// The counterparty's local source holds just its slice of the
		// record, derived once from the hub's initial data.
		src, err := hub.Source("T")
		if err != nil {
			return 0, 0, err
		}
		pview, err := bx.Project("T", []string{"k", col}, nil).Get(src)
		if err != nil {
			return 0, 0, err
		}
		partner.DB().PutTable(pview)
		err = hub.RegisterShare(ctx, core.RegisterShareArgs{
			ID: id, SourceTable: "T", Lens: hubLens, ViewName: id + "h",
			Peers:     []identity.Address{hub.Address(), partner.Address()},
			WritePerm: map[string][]identity.Address{col: {hub.Address()}},
		})
		if err != nil {
			return 0, 0, err
		}
		if err := partner.AttachShare(id, "T", bx.Project(id+"p", []string{"k", col}, nil), id+"p"); err != nil {
			return 0, 0, err
		}
	}

	// One fan-out round: edit every share's column on one row, propose on
	// every share, and wait for all of them to finalize.
	start := time.Now()
	err = hub.UpdateSource("T", func(tbl *reldb.Table) error {
		set := make(map[string]reldb.Value, shares)
		for i := 0; i < shares; i++ {
			set[workload.ManyShareCol(i)] = reldb.S(fmt.Sprintf("round-%d", i))
		}
		return tbl.Update(reldb.Row{reldb.I(0)}, set)
	})
	if err != nil {
		return 0, 0, err
	}
	props, err := hub.SyncShares(ctx, "T")
	if err != nil {
		return 0, 0, err
	}
	if len(props) != shares {
		return 0, 0, fmt.Errorf("E11: proposed %d of %d shares", len(props), shares)
	}
	for _, pr := range props {
		if err := hub.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
			return 0, 0, err
		}
	}
	makespan := time.Since(start)

	// Dedicated concurrent-reader window: lock-free snapshot reads over
	// the hub's materialized views.
	readsPerSec := 0.0
	if readers > 0 {
		const window = 100 * time.Millisecond
		var (
			readCount atomic.Int64
			stop      = make(chan struct{})
			wg        sync.WaitGroup
		)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := hub.View(shareIDs[(r+i)%len(shareIDs)]); err == nil {
						readCount.Add(1)
					}
				}
			}(r)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		readsPerSec = float64(readCount.Load()) / window.Seconds()
	}
	return makespan, readsPerSec, nil
}
