package main

// The trust-minimized subcommands:
//
//	medsharectl verify -api http://127.0.0.1:8344 -id S -key 188
//	    fetch one row with its Merkle membership proof, verify the proof,
//	    recompute the table hash the proof commits to, and check it
//	    against the share's on-chain payload hash — prints the verdict
//	    and the proven root
//
//	medsharectl light -api ... -network medshare-demo \
//	    -participants 'Doctor=s1@...,Patient=s2@...,Researcher=s3@...' \
//	    -id S -key 188
//	    run a real light client over the HTTP serving edge: derive the
//	    PoA authority set locally from the participant seeds, sync and
//	    verify the header chain from the locally computed genesis, then
//	    proof-verify the row against a header — nothing the server says
//	    is trusted unverified
//
// Both exit non-zero on any verification failure.

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"medshare/internal/api"
	"medshare/internal/consensus"
	"medshare/internal/identity"
	"medshare/internal/light"
	"medshare/internal/reldb"
)

// parseKeyTuple converts a comma-separated key into a typed row with
// the shell convention: integer-looking parts become ints, everything
// else strings. (Typed keys matter to a light client: the proven row's
// key columns are compared byte-for-byte against the request.)
func parseKeyTuple(raw string) reldb.Row {
	parts := strings.Split(raw, ",")
	key := make(reldb.Row, len(parts))
	for i, p := range parts {
		var n int64
		if _, err := fmt.Sscanf(p, "%d", &n); err == nil && fmt.Sprint(n) == p {
			key[i] = reldb.I(n)
		} else {
			key[i] = reldb.S(p)
		}
	}
	return key
}

func verifyCmd(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	addr, id := apiFlags(fs)
	key := fs.String("key", "", "row key (comma-separated tuple)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *key == "" {
		return fmt.Errorf("-id and -key are required")
	}
	c, ctx, cancel := apiClient(*addr)
	defer cancel()
	res, err := c.Row(ctx, *id, strings.Split(*key, ","), true)
	if err != nil {
		return err
	}
	ok, err := api.VerifyRow(res)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("membership proof FAILED against root %s", res.Root)
	}
	payload, err := api.VerifyRowPayload(res)
	if err != nil {
		return err
	}
	st, err := c.Share(ctx, *id)
	if err != nil {
		return err
	}
	for i, v := range res.Row {
		if i > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(v.String())
	}
	fmt.Println()
	fmt.Printf("membership proof: OK (root %s)\n", res.Root)
	fmt.Printf("table hash:       %s (seq %d, %d rows)\n", payload, res.Seq, res.Rows)
	switch {
	case st.PayloadHash == "":
		fmt.Println("on-chain binding: share has no finalized payload hash yet")
	case st.PayloadHash == payload && st.ChainSeq == res.Seq:
		fmt.Printf("on-chain binding: OK (chain seq %d commits to this hash)\n", st.ChainSeq)
	case st.ChainSeq != res.Seq:
		return fmt.Errorf("on-chain binding STALE: proof at seq %d, chain at seq %d", res.Seq, st.ChainSeq)
	default:
		return fmt.Errorf("on-chain binding FAILED: chain records %s at seq %d", st.PayloadHash, st.ChainSeq)
	}
	return nil
}

func lightCmd(args []string) error {
	fs := flag.NewFlagSet("light", flag.ExitOnError)
	addr, id := apiFlags(fs)
	key := fs.String("key", "", "row key (comma-separated tuple)")
	network := fs.String("network", "medshare-demo", "network name (genesis seed; must match the daemons)")
	parts := fs.String("participants", "", "all participants as name=seed[@host:port], comma separated, in daemon order (PoA authority set)")
	timeout := fs.Duration("timeout", 60*time.Second, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *key == "" || *parts == "" {
		return fmt.Errorf("-id, -key and -participants are required")
	}
	// The authority set is derived locally from the participant seeds —
	// the strict round-robin PoA verifier is the trust root, the server
	// only supplies data. Order must match the daemons'.
	var authorities []identity.Address
	for _, part := range strings.Split(*parts, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("bad participant %q (want name=seed[@host:port])", part)
		}
		seed := rest
		if at := strings.LastIndexByte(rest, '@'); at >= 0 {
			seed = rest[:at]
		}
		authorities = append(authorities, identity.FromSeed(name, seed).Address())
	}
	if len(authorities) == 0 {
		return fmt.Errorf("no participants parsed from %q", *parts)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client, err := light.New(light.Config{
		Network: *network,
		Verify:  consensus.NewPoA(true, authorities...).VerifyHeader,
		Source:  &api.LightSource{BaseURL: *addr},
	})
	if err != nil {
		return err
	}
	client.Subscribe(*id)
	if _, err := client.SyncHeaders(ctx); err != nil {
		return fmt.Errorf("header sync: %w", err)
	}
	row, err := client.Read(ctx, *id, parseKeyTuple(*key))
	if err != nil {
		return fmt.Errorf("verified read: %w", err)
	}
	for i, v := range row {
		if i > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(v.String())
	}
	fmt.Println()
	st := client.Stats()
	fmt.Printf("verified: %d header(s) + share head + row proof, %d wire bytes, %d bytes retained\n",
		st.Height+1, st.WireBytes, client.StateBytes())
	if st.VerifyFailures != 0 {
		return fmt.Errorf("light client recorded %d verification failures", st.VerifyFailures)
	}
	return nil
}
