package main

// The API subcommands drive a medshared process's serving edge
// (medshared -api host:port) end to end:
//
//	medsharectl register -api http://127.0.0.1:8344 -id S -source T -view V \
//	    -cols k,v -peers addr1,addr2 [-writers col=addr1+addr2,...]
//	medsharectl attach   -api ... -id S -source T -view V [-cols k,v]
//	medsharectl fetch    -api ... -id S [-key 3 [-proof]]
//	medsharectl update   -api ... -id S -key 3 -set col=val[,col=val]
//	medsharectl update   -api ... -id S -delete -key 3
//	medsharectl audit    -api ... -id S

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"strings"
	"time"

	"medshare/internal/api"
	"medshare/internal/bx"
	"medshare/internal/reldb"
)

func apiFlags(fs *flag.FlagSet) (addr, id *string) {
	addr = fs.String("api", "http://127.0.0.1:8344", "API base URL of a medshared -api process")
	id = fs.String("id", "", "share ID")
	return
}

func apiClient(addr string) (*api.Client, context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	return &api.Client{BaseURL: addr}, ctx, cancel
}

func projectSpec(view, cols string) (json.RawMessage, error) {
	if cols == "" {
		return nil, nil
	}
	return bx.Spec{
		Op:       bx.OpProject,
		ViewName: view,
		Cols:     strings.Split(cols, ","),
		OnDelete: bx.PolicyApply,
		OnInsert: bx.PolicyApply,
	}.Marshal()
}

func register(args []string) error {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	addr, id := apiFlags(fs)
	source := fs.String("source", "", "local source table")
	view := fs.String("view", "", "local view name")
	cols := fs.String("cols", "", "shared columns, comma separated (project lens)")
	peers := fs.String("peers", "", "all sharing peers' hex addresses, comma separated")
	writers := fs.String("writers", "", "write permissions as col=addr+addr,... (default: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *source == "" || *view == "" || *cols == "" || *peers == "" {
		return fmt.Errorf("-id, -source, -view, -cols and -peers are required")
	}
	spec, err := projectSpec(*view, *cols)
	if err != nil {
		return err
	}
	req := api.RegisterRequest{
		ID:          *id,
		SourceTable: *source,
		ViewName:    *view,
		LensSpec:    spec,
		Peers:       strings.Split(*peers, ","),
	}
	if *writers != "" {
		req.WritePerm = map[string][]string{}
		for _, ent := range strings.Split(*writers, ",") {
			col, addrs, ok := strings.Cut(ent, "=")
			if !ok {
				return fmt.Errorf("bad -writers entry %q (want col=addr+addr)", ent)
			}
			req.WritePerm[col] = strings.Split(addrs, "+")
		}
	}
	c, ctx, cancel := apiClient(*addr)
	defer cancel()
	st, err := c.Register(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("registered %s (view %s, chain seq %d)\n", st.ID, st.ViewName, st.ChainSeq)
	return nil
}

func attach(args []string) error {
	fs := flag.NewFlagSet("attach", flag.ExitOnError)
	addr, id := apiFlags(fs)
	source := fs.String("source", "", "local source table")
	view := fs.String("view", "", "local view name")
	cols := fs.String("cols", "", "shared columns (empty = reuse the on-chain lens spec)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *source == "" || *view == "" {
		return fmt.Errorf("-id, -source and -view are required")
	}
	spec, err := projectSpec(*view, *cols)
	if err != nil {
		return err
	}
	c, ctx, cancel := apiClient(*addr)
	defer cancel()
	st, err := c.Attach(ctx, *id, api.AttachRequest{SourceTable: *source, ViewName: *view, LensSpec: spec})
	if err != nil {
		return err
	}
	fmt.Printf("attached %s (view %s, applied seq %d)\n", st.ID, st.ViewName, st.AppliedSeq)
	return nil
}

func fetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	addr, id := apiFlags(fs)
	key := fs.String("key", "", "fetch one row by key (comma-separated tuple); empty = whole view")
	proof := fs.Bool("proof", false, "request and verify a Merkle membership proof")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	c, ctx, cancel := apiClient(*addr)
	defer cancel()
	if *key == "" {
		view, err := c.Rows(ctx, *id)
		if err != nil {
			return err
		}
		fmt.Print(reldb.Format(view))
		return nil
	}
	res, err := c.Row(ctx, *id, strings.Split(*key, ","), *proof)
	if err != nil {
		return err
	}
	for i, v := range res.Row {
		if i > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(v.String())
	}
	fmt.Printf("\n(seq %d)\n", res.Seq)
	if *proof {
		ok, err := api.VerifyRow(res)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("membership proof FAILED against root %s", res.Root)
		}
		fmt.Printf("proof verified against root %s\n", res.Root)
	}
	return nil
}

func update(args []string) error {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	addr, id := apiFlags(fs)
	key := fs.String("key", "", "row key (comma-separated tuple)")
	set := fs.String("set", "", "column updates as col=val[,col=val] (values sent as strings)")
	del := fs.Bool("delete", false, "delete the row instead of updating it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *key == "" {
		return fmt.Errorf("-id and -key are required")
	}
	keyVals := make([]any, 0, 2)
	for _, p := range strings.Split(*key, ",") {
		keyVals = append(keyVals, keyScalar(p))
	}
	var op api.RowOp
	switch {
	case *del:
		op = api.RowOp{Op: "delete", Key: keyVals}
	case *set != "":
		op = api.RowOp{Op: "set", Key: keyVals, Set: map[string]any{}}
		for _, ent := range strings.Split(*set, ",") {
			col, val, ok := strings.Cut(ent, "=")
			if !ok {
				return fmt.Errorf("bad -set entry %q (want col=val)", ent)
			}
			op.Set[col] = val
		}
	default:
		return fmt.Errorf("one of -set or -delete is required")
	}
	c, ctx, cancel := apiClient(*addr)
	defer cancel()
	res, err := c.Update(ctx, *id, []api.RowOp{op})
	if err != nil {
		return err
	}
	if res.NoChange {
		fmt.Println("no change")
		return nil
	}
	fmt.Printf("finalizing as seq %d (cols %v, coalesced with %d request(s))\n", res.Seq, res.Cols, res.Coalesced)
	return nil
}

// keyScalar sends integer-looking key parts as numbers so int-keyed
// schemas coerce; everything else goes as a string.
func keyScalar(s string) any {
	var i int64
	if _, err := fmt.Sscanf(s, "%d", &i); err == nil && fmt.Sprint(i) == s {
		return float64(i)
	}
	return s
}

func auditCmd(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	addr, id := apiFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	c, ctx, cancel := apiClient(*addr)
	defer cancel()
	recs, err := c.Audit(ctx, *id)
	if err != nil {
		return err
	}
	for _, r := range recs {
		status := "ok"
		if !r.OK {
			status = "DENIED: " + r.Err
		}
		fmt.Printf("h%-4d %s %-16s seq %-3d from %s cols %v %s\n",
			r.Height, r.Time.Format("15:04:05"), r.Fn, r.Seq, r.From[:12], r.Cols, status)
	}
	return nil
}
