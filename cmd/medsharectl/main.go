// Command medsharectl is the companion utility for cmd/medshared:
//
//	medsharectl keygen -name Doctor -seed s1
//	    print the deterministic address for a participant seed
//
//	medsharectl demo [-base-port 7001]
//	    print ready-to-run medshared command lines for the three-process
//	    Fig. 1 demo (Doctor, Patient, Researcher over TCP)
//
//	medsharectl gen -records 100 -out full.json
//	    write a synthetic full-records table (Fig. 1 schema) as JSON
//
//	medsharectl inspect -in table.json
//	    pretty-print a table JSON file
package main

import (
	"flag"
	"fmt"
	"os"

	"medshare/internal/identity"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = keygen(os.Args[2:])
	case "demo":
		err = demo(os.Args[2:])
	case "gen":
		err = gen(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "register":
		err = register(os.Args[2:])
	case "attach":
		err = attach(os.Args[2:])
	case "fetch":
		err = fetch(os.Args[2:])
	case "update":
		err = update(os.Args[2:])
	case "audit":
		err = auditCmd(os.Args[2:])
	case "verify":
		err = verifyCmd(os.Args[2:])
	case "light":
		err = lightCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "medsharectl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: medsharectl {keygen|demo|gen|inspect|register|attach|fetch|update|audit|verify|light} [flags]")
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	name := fs.String("name", "peer", "participant name")
	seed := fs.String("seed", "", "identity seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seed == "" {
		return fmt.Errorf("-seed is required")
	}
	id := identity.FromSeed(*name, *seed)
	fmt.Printf("name:    %s\nseed:    %s\naddress: %s\n", *name, *seed, id.Address())
	return nil
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	basePort := fs.Int("base-port", 7001, "first TCP port")
	records := fs.Int("records", 0, "synthetic record count (0 = exact Fig. 1 rows)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	roles := []string{"Doctor", "Patient", "Researcher"}
	participants := ""
	for i, r := range roles {
		if i > 0 {
			participants += ","
		}
		participants += fmt.Sprintf("%s=seed-%s@127.0.0.1:%d", r, r, *basePort+i)
	}
	fmt.Println("# run each line in its own terminal:")
	for i, r := range roles {
		fmt.Printf("go run ./cmd/medshared -name %s -listen 127.0.0.1:%d -records %d -fig1 \\\n  -participants '%s'\n",
			r, *basePort+i, *records, participants)
		_ = i
	}
	fmt.Println(`#
# then:
#   Doctor>     register-fig1
#   Patient>    attach-fig1
#   Researcher> attach-fig1
#   Researcher> set D2 Ibuprofen mechanism_of_action MeA1-revised
#   Researcher> sync D2
#   Doctor>     show D3        # the revision arrived
#   Doctor>     set D3 188 dosage "two-tablets"   (quotes not supported; use dashes)
#   Doctor>     sync D3
#   Patient>    show D1        # the dosage arrived`)
	return nil
}

func gen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	records := fs.Int("records", 100, "record count")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "full.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tbl := workload.Generate("full", *records, *seed)
	raw, err := reldb.MarshalTable(tbl)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", *records, *out)
	return nil
}

func inspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "table JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	tbl, err := reldb.UnmarshalTable(raw)
	if err != nil {
		return err
	}
	fmt.Print(reldb.Format(tbl))
	return nil
}
