// Command benchrunner regenerates every experiment table of
// EXPERIMENTS.md: the full parameter sweeps behind the paper's figures
// and claims (DESIGN.md §4). Output is plain aligned text, one table per
// experiment.
//
//	go run ./cmd/benchrunner            # full sweeps (a few minutes)
//	go run ./cmd/benchrunner -quick     # reduced sweeps (tens of seconds)
//	go run ./cmd/benchrunner -only E6   # a single experiment
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"text/tabwriter"
	"time"

	"medshare"
)

var (
	quick        = flag.Bool("quick", false, "reduced parameter sweeps")
	only         = flag.String("only", "", "run only the named experiment (E1..E19)")
	baseline     = flag.String("baseline", "BENCH_baseline.json", "write machine-readable results to this file (empty disables)")
	compare      = flag.String("compare", "", "diff this run against a committed baseline JSON and exit non-zero on regressions")
	threshold    = flag.Float64("threshold", 0.25, "relative regression threshold for -compare (0.25 = 25% worse)")
	cpuThreshold = flag.Float64("cpu-threshold", 0.5, "regression threshold for CPU-bound metrics after calibration normalization (see -compare); ignored when either baseline lacks a calibration")
	cpus         = flag.Int("cpu", 0, "set GOMAXPROCS for the whole run (0 = leave as is); use 1/2/4 to record scaling curves")
	noiseFloor   = flag.Float64("floor", 25000, "ignore duration regressions whose absolute increase is below this many nanoseconds (micro-metrics are scheduling noise on shared CI hardware; a genuine O(n) reappearance dwarfs the floor)")
)

// baselineData collects every experiment's structured results so the run
// can be committed as BENCH_baseline.json — later PRs diff against it to
// track the performance trajectory (durations are nanoseconds).
var baselineData = map[string]any{}

func main() {
	flag.Parse()
	if *cpus > 0 {
		runtime.GOMAXPROCS(*cpus)
	}
	// Pin the GC pacing: the allocation-heavy data-plane sweeps (lens
	// rebuilds allocate a few hundred KB per op) otherwise measure
	// 2-3x slower in a small-heap process than after earlier sweeps
	// grew the heap — a full run and a -quick gate run would disagree
	// systematically. A fixed, generous target makes the measurement
	// environment reproducible across sweep selections and machines.
	debug.SetGCPercent(400)
	// Calibrate before the sweeps so the measurement sees an idle
	// process; the score keys CPU-bound metric normalization in -compare.
	cpuCalibration = calibrateCPU()
	fmt.Printf("cpu calibration: %v/pass (GOMAXPROCS=%d)\n",
		time.Duration(cpuCalibration).Round(time.Microsecond), runtime.GOMAXPROCS(0))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()

	experiments := []struct {
		id  string
		run func(context.Context) error
	}{
		{"E1", runE1}, {"E2", runE2}, {"E3", runE3}, {"E4", runE4},
		{"E5", runE5}, {"E6", runE6}, {"E7", runE7}, {"E8", runE8},
		{"E9", runE9}, {"E10", runE10}, {"E11", runE11}, {"E12", runE12},
		{"E13", runE13}, {"E14", runE14}, {"E15", runE15}, {"E16", runE16},
		{"E17", runE17}, {"E18", runE18}, {"E19", runE19},
	}
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		// Start every experiment from the same GC state: without the
		// forced collection, an experiment following a 100k-row sweep
		// inherits a huge heap target and measures allocation-heavy
		// paths 2x faster than the same experiment in a -quick run —
		// the full baseline and the quick gate would disagree
		// systematically.
		runtime.GC()
		// Re-calibrate immediately before each experiment: on shared
		// hardware the machine's effective speed drifts *within* a run
		// (noisy neighbors, frequency states), so the gate normalizes
		// each experiment by the calibration pair closest to its own
		// measurement window, not by one process-start snapshot.
		experimentCal[e.id] = calibrateCPU()
		if err := e.run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
	}
	// A partial run (-only) would clobber the committed full baseline
	// with a one-experiment file; require an explicit -baseline there.
	baselineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "baseline" {
			baselineSet = true
		}
	})
	if *baseline != "" && (*only == "" || baselineSet) {
		if err := writeBaseline(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *baseline)
	}
	if *compare != "" {
		regressions, flagged, err := compareAgainst(*compare, *threshold, *cpuThreshold, *noiseFloor)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		if regressions > 0 {
			// Independent re-measurement of exactly the flagged
			// experiments (same convention as the experiment tests:
			// re-measure once before failing): shared hardware suffers
			// multi-second load storms that inflate arbitrary wall-clock
			// metrics without slowing the calibration loop, and a real
			// regression — code, not weather — reproduces.
			fmt.Printf("\nre-measuring %d flagged experiment(s) once\n", len(flagged))
			for _, e := range experiments {
				if !flagged[e.id] {
					continue
				}
				runtime.GC()
				experimentCal[e.id] = calibrateCPU()
				if err := e.run(ctx); err != nil {
					fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
					os.Exit(1)
				}
			}
			regressions, _, err = compareAgainst(*compare, *threshold, *cpuThreshold, *noiseFloor)
			if err != nil {
				fmt.Fprintf(os.Stderr, "compare: %v\n", err)
				os.Exit(1)
			}
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "\n%d benchmark(s) regressed beyond %.0f%% against %s (after re-measurement)\n",
				regressions, *threshold*100, *compare)
			os.Exit(1)
		}
		fmt.Printf("\nno regressions beyond %.0f%% against %s\n", *threshold*100, *compare)
	}
}

func writeBaseline(path string) error {
	out := map[string]any{
		"generated":               time.Now().UTC().Format(time.RFC3339),
		"goVersion":               runtime.Version(),
		"quick":                   *quick,
		"durations":               "nanoseconds",
		"gomaxprocs":              runtime.GOMAXPROCS(0),
		"cpuCalibrationNs":        cpuCalibration,
		"experimentCalibrationNs": experimentCal,
		"experiments":             baselineData,
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// cpuCalibration is this run's calibration score: nanoseconds for one
// pass of a fixed, allocation-light, single-threaded workload (SHA-256
// chaining — the same primitive that dominates the data plane's row
// digests). The bench gate divides CPU-bound durations by the ratio of
// the two machines' scores before comparing, so the threshold measures
// code, not hardware.
var cpuCalibration int64

// experimentCal records a fresh calibration score taken right before
// each experiment; the gate prefers these pairwise over the process-
// start score so within-run machine drift normalizes out too.
var experimentCal = map[string]int64{}

// calibrationSink defeats dead-code elimination of the calibration loop.
var calibrationSink [32]byte

func calibrateCPU() int64 {
	var seed [32]byte
	best := int64(1<<63 - 1)
	for pass := 0; pass < 5; pass++ {
		start := time.Now()
		for i := 0; i < 50000; i++ {
			seed = sha256.Sum256(seed[:])
		}
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	calibrationSink = seed
	return best
}

func table(title string, header string, rows func(w *tabwriter.Writer)) {
	fmt.Printf("\n=== %s ===\n", title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, header)
	rows(w)
	w.Flush()
}

func runE1(context.Context) error {
	sizes := []int{10, 100, 1000, 10000}
	if *quick {
		sizes = []int{10, 100, 1000}
	}
	var results []medshare.E1Result
	for _, n := range sizes {
		r, err := medshare.RunE1ViewDerivation(n, 1)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E1"] = results
	table("E1 — Fig. 1 view derivation (7 views per run)",
		"records\tderive all\tper view\tper record", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%v\t%v\t%v\n", r.Records,
					r.DeriveAll.Round(time.Microsecond), r.PerView.Round(time.Microsecond),
					r.GetPerRecord.Round(time.Nanosecond))
			}
		})
	return nil
}

func runE2(ctx context.Context) error {
	type cfg struct{ nodes, records int }
	cfgs := []cfg{{1, 10}, {1, 100}, {3, 10}, {3, 100}, {5, 100}}
	if *quick {
		cfgs = []cfg{{1, 10}, {3, 10}}
	}
	var results []medshare.E2Result
	for _, c := range cfgs {
		r, err := medshare.RunE2Bootstrap(ctx, c.nodes, c.records)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E2"] = results
	table("E2 — Fig. 2 architecture bring-up (3 peers, 2 shares)",
		"nodes\trecords\tbootstrap", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%d\t%v\n", r.Nodes, r.Records, r.Bootstrap.Round(time.Millisecond))
			}
		})
	return nil
}

func runE3(context.Context) error {
	n := 256
	if *quick {
		n = 64
	}
	// Best of three full passes, field-wise: the per-op metrics are
	// tens of µs and a single noisy-neighbor window otherwise inflates
	// the whole batch past the gate threshold.
	var r medshare.E3Result
	for pass := 0; pass < 3; pass++ {
		p, err := medshare.RunE3ContractOps(n)
		if err != nil {
			return err
		}
		if pass == 0 {
			r = p
			continue
		}
		minD := func(a, b time.Duration) time.Duration {
			if b < a {
				return b
			}
			return a
		}
		r.RegisterPerOp = minD(r.RegisterPerOp, p.RegisterPerOp)
		r.AllowedPerOp = minD(r.AllowedPerOp, p.AllowedPerOp)
		r.DeniedPerOp = minD(r.DeniedPerOp, p.DeniedPerOp)
		r.AckPerOp = minD(r.AckPerOp, p.AckPerOp)
		r.SetPermPerOp = minD(r.SetPermPerOp, p.SetPermPerOp)
		r.StateRootPerOp = minD(r.StateRootPerOp, p.StateRootPerOp)
	}
	baselineData["E3"] = r
	table(fmt.Sprintf("E3 — Fig. 3 metadata contract operations (n=%d each)", n),
		"operation\tlatency/op", func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "register share\t%v\n", r.RegisterPerOp.Round(time.Microsecond))
			fmt.Fprintf(w, "request_update (allowed)\t%v\n", r.AllowedPerOp.Round(time.Microsecond))
			fmt.Fprintf(w, "request_update (denied)\t%v\n", r.DeniedPerOp.Round(time.Microsecond))
			fmt.Fprintf(w, "ack_update\t%v\n", r.AckPerOp.Round(time.Microsecond))
			fmt.Fprintf(w, "set_permission\t%v\n", r.SetPermPerOp.Round(time.Microsecond))
			fmt.Fprintf(w, "state root (%d shares)\t%v\n", r.Shares, r.StateRootPerOp.Round(time.Microsecond))
		})
	return nil
}

func runE4(ctx context.Context) error {
	n := 8
	if *quick {
		n = 3
	}
	r, err := medshare.RunE4CRUD(ctx, n)
	if err != nil {
		return err
	}
	baselineData["E4"] = r
	table(fmt.Sprintf("E4 — Fig. 4 CRUD protocol, end to end (n=%d each, 2ms blocks)", n),
		"operation\tlatency/op\tnote", func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "create entry\t%v\tcontract + ack + 2×put\n", r.Create.Round(time.Microsecond))
			fmt.Fprintf(w, "read entry\t%v\tlocal database only\n", r.Read.Round(time.Microsecond))
			fmt.Fprintf(w, "update entry\t%v\tcontract + ack + put\n", r.Update.Round(time.Microsecond))
			fmt.Fprintf(w, "delete entry\t%v\tcontract + ack + put\n", r.Delete.Round(time.Microsecond))
		})
	return nil
}

func runE5(ctx context.Context) error {
	sizes := []int{10, 100, 1000}
	if *quick {
		sizes = []int{10, 100}
	}
	var results []medshare.E5Result
	for _, n := range sizes {
		r, err := medshare.RunE5Cascade(ctx, n, 1)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E5"] = results
	table("E5 — Fig. 5 workflow latency (2ms blocks)",
		"records\tsingle hop (steps 1-5)\tfull cascade (steps 1-11)", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%v\t%v\n", r.Records,
					r.SingleHop.Round(time.Millisecond), r.FullCascade.Round(time.Millisecond))
			}
		})
	return nil
}

func runE6(ctx context.Context) error {
	intervals := []time.Duration{100 * time.Millisecond, 1 * time.Second, 4 * time.Second, 12 * time.Second}
	batches := []int{1, 10, 100}
	rounds := 4
	if *quick {
		intervals = []time.Duration{1 * time.Second, 12 * time.Second}
		batches = []int{1, 100}
		rounds = 2
	}
	var results []medshare.E6Result
	for _, iv := range intervals {
		for _, b := range batches {
			r, err := medshare.RunE6Throughput(ctx, medshare.ConsensusPoA, iv, b, rounds, 1000)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	}
	// Ablation: PoW at one point.
	powRes, err := medshare.RunE6Throughput(ctx, medshare.ConsensusPoW, 1*time.Second, 10, rounds, 1000)
	if err != nil {
		return err
	}
	results = append(results, powRes)
	baselineData["E6"] = results
	table("E6 — §IV-1 throughput vs block interval and batching (modeled time; ×1000 compressed clock)",
		"consensus\tinterval\tbatch\trows/s\tupdate cycles/s\tblocks used", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%s\t%v\t%d\t%.2f\t%.3f\t%d\n",
					r.Consensus, r.BlockInterval, r.BatchSize,
					r.RowsPerSecModeled, r.UpdatesPerSecModeled, r.BlocksUsed)
			}
		})
	return nil
}

func runE7(ctx context.Context) error {
	ms := []int{2, 4, 8}
	if *quick {
		ms = []int{2, 4}
	}
	var results []medshare.E7Result
	for _, m := range ms {
		r, err := medshare.RunE7ConflictRule(ctx, m)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E7"] = results
	table("E7 — conflict rule: one m+1-peer share vs m independent shares (2ms blocks)",
		"updaters\tcontended makespan\tindependent makespan\tserialization ×", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%v\t%v\t%.1f\n", r.Updaters,
					r.ContendedMakespan.Round(time.Millisecond),
					r.IndependentMakespan.Round(time.Millisecond),
					r.SerializationFactor)
			}
		})
	return nil
}

func runE8(context.Context) error {
	sizes := []int{100, 1000, 10000}
	if *quick {
		sizes = []int{100, 1000}
	}
	var results []medshare.E8Result
	for _, n := range sizes {
		rows, err := medshare.RunE8Baseline(n, 1)
		if err != nil {
			return err
		}
		results = append(results, rows...)
	}
	baselineData["E8"] = results
	table("E8 — fine-grained views vs full-record sharing (§V baseline)",
		"records\tpeer\texposed bytes (full)\texposed bytes (view)\treduction ×\tunrelated attrs\ttransfer full\ttransfer view\ttransfer changeset", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%s\t%.0f\t%.0f\t%.1f\t%d of %d\t%.0f\t%.0f\t%.0f\n",
					r.Records, r.Peer, r.FullRecordBytes, r.FineGrainedBytes, r.ExposureRatio,
					r.AttrsUnrelated, r.AttrsFull,
					r.TransferFullRecord, r.TransferFineGrained, r.TransferChangeset)
			}
		})
	return nil
}

func runE9(context.Context) error {
	type pt struct{ rows, depth int }
	pts := []pt{{100, 1}, {1000, 1}, {10000, 1}, {1000, 2}, {1000, 3}, {1000, 4}}
	if *quick {
		pts = []pt{{100, 1}, {1000, 1}, {1000, 3}}
	}
	var results []medshare.E9Result
	for _, p := range pts {
		r, err := medshare.RunE9BX(p.rows, p.depth, 1)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E9"] = results
	table("E9 — BX lens cost (get/put, D13-style projection)",
		"rows\tcomposition depth\tget\tput", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%d\t%v\t%v\n", r.Rows, r.Depth,
					r.Get.Round(time.Microsecond), r.Put.Round(time.Microsecond))
			}
		})
	return nil
}

func runE11(ctx context.Context) error {
	type cfg struct{ shares, records int }
	cfgs := []cfg{{16, 64}, {64, 64}}
	if *quick {
		cfgs = []cfg{{16, 64}}
	}
	var results []medshare.E11Result
	for _, c := range cfgs {
		r, err := medshare.RunE11ManyShares(ctx, c.shares, c.records)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E11"] = results
	table("E11 — many-shares peer: one fan-out round to finality (2ms blocks)",
		"shares\trecords\tsequential\tparallel\tspeedup ×\treads/s (4 readers)", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%.2f\t%.0f\n", r.Shares, r.Records,
					r.SeqMakespan.Round(time.Millisecond), r.ParMakespan.Round(time.Millisecond),
					r.SpeedupX, r.ReadsPerSec)
			}
		})
	return nil
}

func runE12(context.Context) error {
	sizes := []int{1000, 10000, 100000}
	if *quick {
		sizes = []int{1000, 10000}
	}
	var results []medshare.E12Result
	for _, n := range sizes {
		r, err := medshare.RunE12StorageScaling(n, 1)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E12"] = results
	table("E12 — storage scaling: steady-state one-row update cycle vs table size (persistent row storage)",
		"rows\tview diff\tdelta put\tcommit\thash\tfull put (O(n) contrast)", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%v\t%v\n", r.Rows,
					r.ViewDiff.Round(100*time.Nanosecond), r.DeltaPut.Round(100*time.Nanosecond),
					r.Commit.Round(100*time.Nanosecond), r.HashAfterDelta.Round(100*time.Nanosecond),
					r.FullPut.Round(time.Microsecond))
			}
		})
	return nil
}

func runE13(context.Context) error {
	sizes := []int{1000, 10000, 100000}
	if *quick {
		sizes = []int{1000, 10000}
	}
	var results []medshare.E13Result
	for _, n := range sizes {
		r, err := medshare.RunE13Merkle(n, 1)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E13"] = results
	table("E13 — Merkle row tree: root update, membership proofs, anti-entropy transfer vs table size",
		"rows\tcold root\troot update (1 row)\tprove\tverify\tsteps\tsync 16 scattered\tsync 16 contiguous\tfull payload", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%v\t%d\t%d B\t%d B\t%d B\n", r.Rows,
					r.ColdRoot.Round(time.Microsecond), r.RootUpdate.Round(100*time.Nanosecond),
					r.Prove.Round(100*time.Nanosecond), r.Verify.Round(100*time.Nanosecond),
					r.ProofSteps, r.SyncScatteredBytes, r.SyncContiguousBytes, r.FullBytes)
			}
		})
	return nil
}

func runE14(context.Context) error {
	sizes := []int{1000, 10000, 100000}
	if *quick {
		sizes = []int{1000, 10000}
	}
	var results []medshare.E14Result
	for _, n := range sizes {
		r, err := medshare.RunE14BuilderRebuild(n, 1)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E14"] = results
	table("E14 — transient-builder rebuilds and the native join delta vs table size",
		"rows\tget rebuild\tput rebuild\tjoin get\tjoin delta (1 row)\tproject delta (1 row)\tjoin/project ×", func(w *tabwriter.Writer) {
			for _, r := range results {
				ratio := float64(r.JoinDeltaPut) / float64(r.ProjectDeltaPut)
				fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%v\t%v\t%.2f\n", r.Rows,
					r.GetRebuild.Round(time.Microsecond), r.PutRebuild.Round(time.Microsecond),
					r.JoinGet.Round(time.Microsecond),
					r.JoinDeltaPut.Round(100*time.Nanosecond), r.ProjectDeltaPut.Round(100*time.Nanosecond),
					ratio)
			}
		})
	return nil
}

func runE10(ctx context.Context) error {
	ks := []int{8, 32, 128}
	if *quick {
		ks = []int{8, 32}
	}
	var results []medshare.E10Result
	for _, k := range ks {
		r, err := medshare.RunE10Audit(ctx, k)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E10"] = results
	table("E10 — audit: ledger history reconstruction and integrity verification",
		"finalized updates\tblocks\thistory records\thistory time\tintegrity time", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%d\t%d\t%v\t%v\n", r.Updates, r.Blocks, r.HistoryCount,
					r.HistoryTime.Round(time.Microsecond), r.IntegrityOK.Round(time.Microsecond))
			}
		})
	return nil
}

func runE15(ctx context.Context) error {
	rates := []float64{0.15, 0.35, 0.5}
	if *quick {
		rates = []float64{0.35}
	}
	var results []medshare.E15Result
	for _, dr := range rates {
		r, err := medshare.RunE15Chaos(ctx, dr, 42)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E15"] = results
	table("E15 — convergence under faults: chaos suite (storm + partition + crash-restart) vs request loss",
		"drop rate\tupdates\tconverge after heal\treq lost\treq blocked\trpc retries\tresyncs\trepair heals", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%.2f\t%d\t%v\t%d\t%d\t%d\t%d\t%d\n", r.DropRate,
					r.Updates, r.ConvergeTime.Round(10*time.Microsecond),
					r.RequestsLost, r.RequestsBlocked, r.RPCRetries, r.ResyncsFired, r.RepairHeals)
			}
		})
	return nil
}

func runE16(ctx context.Context) error {
	batches := []int{8, 16, 32, 64}
	rounds := 6
	if *quick {
		batches = []int{16}
		rounds = 4
	}
	// Row one is the one-update-per-block baseline: a single share,
	// interval-paced production, no accumulation window.
	base, err := medshare.RunE16Saturation(ctx, 1, rounds, false)
	if err != nil {
		return err
	}
	results := []medshare.E16Result{base}
	for _, b := range batches {
		r, err := medshare.RunE16Saturation(ctx, b, rounds, true)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E16"] = results
	table("E16 — write-side saturation: group commit (batched) vs one-update-per-block (batch 1)",
		"batch\trounds\tupdates/s\tp50 latency\tmean batch\tblocks\tvs baseline", func(w *tabwriter.Writer) {
			for _, r := range results {
				speedup := 1.0
				if base.UpdatesPerSec > 0 {
					speedup = r.UpdatesPerSec / base.UpdatesPerSec
				}
				fmt.Fprintf(w, "%d\t%d\t%.0f\t%v\t%.1f\t%d\t%.1fx\n", r.BatchSize, r.Rounds,
					r.UpdatesPerSec, r.P50Time.Round(10*time.Microsecond), r.MeanBatch, r.BlocksUsed, speedup)
			}
		})
	return nil
}

func runE17(ctx context.Context) error {
	rates := []float64{100, 250, 500}
	duration := 3 * time.Second
	if *quick {
		rates = []float64{150}
		duration = 1500 * time.Millisecond
	}
	// 90% reads mirrors a records-serving clinic hub: views are read
	// constantly, cells change occasionally.
	const readFrac = 0.9
	results := make([]medshare.E17Result, 0, len(rates))
	for _, rate := range rates {
		r, err := medshare.RunE17Serving(ctx, rate, duration, readFrac)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E17"] = results
	table("E17 — serving edge under open-loop load: RPS and tail latency (90% reads)",
		"rate\toffered\terr%\treads/s\tread p50\tread p99\tread p999\twrites/s\twrite p50\twrite p99\twrite p999", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%.0f\t%d\t%.2f\t%.0f\t%v\t%v\t%v\t%.0f\t%v\t%v\t%v\n",
					r.Rate, r.Offered, 100*r.ErrorRate,
					r.ReadsPerSec, r.ReadP50.Round(10*time.Microsecond), r.ReadP99.Round(10*time.Microsecond), r.ReadP999.Round(10*time.Microsecond),
					r.WritesPerSec, r.WriteP50.Round(10*time.Microsecond), r.WriteP99.Round(10*time.Microsecond), r.WriteP999.Round(10*time.Microsecond))
			}
		})
	return nil
}

func runE19(ctx context.Context) error {
	sizes := []int{1000, 10000, 100000}
	if *quick {
		sizes = []int{1000, 10000}
	}
	var results []medshare.E19Result
	for _, n := range sizes {
		r, err := medshare.RunE19LightReader(ctx, n, 1)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E19"] = results
	table("E19 — light-client reader cost vs full replication, as the view grows",
		"rows\tfull replica bytes\tlight state bytes\tlight bootstrap bytes\tlight wire/read\tcold read\tcached read", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%v\t%v\n",
					r.Rows, r.FullReplicaBytes, r.LightStateBytes, r.LightBootstrapBytes,
					r.LightWirePerRead,
					r.LightColdRead.Round(time.Microsecond), r.LightCachedRead.Round(time.Microsecond))
			}
		})
	return nil
}

func runE18(ctx context.Context) error {
	type point struct{ rows, depth int }
	points := []point{
		{256, 16}, {256, 64}, {1024, 16}, {1024, 64}, {4096, 16}, {4096, 64},
	}
	if *quick {
		points = []point{{1024, 16}}
	}
	var results []medshare.E18Result
	for _, p := range points {
		r, err := medshare.RunE18Recovery(p.rows, p.depth, 7)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	baselineData["E18"] = results
	table("E18 — cold-start recovery: open (scan) + load (Merkle verify) vs view size and commit depth",
		"rows\tdepth\tlog bytes\tsegs\tbytes/commit\topen\tscanned\tload\tfetched", func(w *tabwriter.Writer) {
			for _, r := range results {
				fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\t%v\t%d\t%v\t%d\n",
					r.Rows, r.Depth, r.LogBytes, r.Segments, r.BytesPerCommit,
					r.OpenTime.Round(time.Microsecond), r.ScannedBytes,
					r.LoadTime.Round(time.Microsecond), r.FetchedBytes)
			}
		})
	return nil
}
