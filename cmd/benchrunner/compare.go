package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The bench-regression gate: -compare diffs the run that just finished
// against a committed BENCH_baseline.json and fails (non-zero exit) when
// a metric got worse by more than -threshold. Result-array elements are
// keyed by their configuration fields (records, nodes, shares, ...), not
// their position, so a -quick run compares correctly against a full-sweep
// baseline: sweep points absent from either side are skipped.

// configFields identify a sweep point inside an experiment's result
// slice. They are matched by (exported Go) field name.
var configFields = map[string]bool{
	"Records": true, "Nodes": true, "Rows": true, "Depth": true,
	"Updaters": true, "Shares": true, "Readers": true, "BatchSize": true,
	"Consensus": true, "BlockInterval": true, "Peer": true, "Updates": true,
}

// higherBetter metrics improve upward (throughputs, reduction ratios).
var higherBetter = []string{"PerSec", "Speedup", "Ratio"}

// lowerBetter metrics improve downward (latencies, makespans, sizes).
// Everything else (counts, configuration echoes) is ignored.
var lowerBetter = []string{
	"Makespan", "Time", "PerOp", "Bootstrap", "DeriveAll", "PerView",
	"PerRecord", "SingleHop", "FullCascade", "Get", "Put", "Create",
	"Read", "Update", "Delete", "Bytes", "Transfer", "IntegrityOK",
}

// direction returns +1 for higher-better, -1 for lower-better, 0 for
// ignored metrics. The metric name is the leaf field name of the
// flattened key.
func direction(key string) int {
	leaf := key
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		leaf = key[i+1:]
	}
	if configFields[leaf] || strings.Contains(leaf, "Count") || leaf == "Blocks" || leaf == "BlocksUsed" {
		return 0
	}
	for _, s := range higherBetter {
		if strings.Contains(leaf, s) {
			return +1
		}
	}
	for _, s := range lowerBetter {
		if strings.Contains(leaf, s) {
			return -1
		}
	}
	return 0
}

// elementKey renders a result object's sweep-point identity, e.g.
// "Nodes=3,Records=10". Empty when the object carries no config fields.
func elementKey(obj map[string]any) string {
	var parts []string
	for name, v := range obj {
		if !configFields[name] {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%v", name, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// flatten walks a decoded JSON value and collects numeric leaves under
// "/"-joined keys, keying array elements by elementKey when possible.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			flatten(prefix+"/"+k, sub, out)
		}
	case []any:
		for i, sub := range x {
			key := fmt.Sprintf("%s/%d", prefix, i)
			if obj, ok := sub.(map[string]any); ok {
				if ek := elementKey(obj); ek != "" {
					key = prefix + "[" + ek + "]"
				}
			}
			flatten(key, sub, out)
		}
	case float64:
		out[prefix] = x
	}
}

// flattenExperiments normalizes either a full baseline file (with its
// "experiments" envelope) or the in-memory result map into flat metrics.
func flattenExperiments(v any) map[string]float64 {
	out := make(map[string]float64)
	if m, ok := v.(map[string]any); ok {
		if exp, ok := m["experiments"]; ok {
			v = exp
		}
	}
	flatten("", v, out)
	return out
}

// compareAgainst diffs the current run (baselineData) against the
// committed baseline at path and reports the number of regressions
// beyond the threshold.
func compareAgainst(path string, threshold float64) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var oldDoc any
	if err := json.Unmarshal(raw, &oldDoc); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	// Round-trip the in-memory results through JSON so both sides have
	// identical generic shapes.
	curRaw, err := json.Marshal(baselineData)
	if err != nil {
		return 0, err
	}
	var curDoc any
	if err := json.Unmarshal(curRaw, &curDoc); err != nil {
		return 0, err
	}
	oldFlat := flattenExperiments(oldDoc)
	curFlat := flattenExperiments(curDoc)

	keys := make([]string, 0, len(curFlat))
	for k := range curFlat {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Printf("\n=== regression gate (threshold %.0f%%, baseline %s) ===\n", threshold*100, path)
	regressions, compared := 0, 0
	for _, k := range keys {
		dir := direction(k)
		if dir == 0 {
			continue
		}
		oldV, ok := oldFlat[k]
		if !ok || oldV == 0 {
			continue // new metric or absent sweep point: nothing to gate
		}
		newV := curFlat[k]
		compared++
		var ratio float64
		if dir < 0 {
			ratio = newV/oldV - 1 // positive = slower/bigger = worse
		} else {
			ratio = oldV/newV - 1 // positive = lower throughput = worse
		}
		if ratio > threshold {
			regressions++
			fmt.Printf("REGRESSION %-60s old %.4g new %.4g (%.0f%% worse)\n", k, oldV, newV, ratio*100)
		}
	}
	fmt.Printf("compared %d metrics, %d regression(s)\n", compared, regressions)
	return regressions, nil
}
