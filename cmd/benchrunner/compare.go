package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The bench-regression gate: -compare diffs the run that just finished
// against a committed BENCH_baseline.json and fails (non-zero exit) when
// a metric got worse by more than -threshold. Result-array elements are
// keyed by their configuration fields (records, nodes, shares, ...), not
// their position, so a -quick run compares correctly against a full-sweep
// baseline: sweep points absent from either side are skipped.
//
// CPU-bound experiments (the in-process data-plane sweeps, no block
// intervals in the loop) are additionally *normalized* by the ratio of
// the two runs' CPU calibration scores (see calibrateCPU): a metric
// measured on hardware 2x slower than the baseline machine is halved
// before comparison. That removes the dominant cross-machine variance,
// which is what lets those metrics be gated at the tighter
// -cpu-threshold instead of the loose protocol-level -threshold. When
// either side lacks a calibration score the normalization (and the
// tighter threshold) is skipped.

// configFields identify a sweep point inside an experiment's result
// slice. They are matched by (exported Go) field name.
var configFields = map[string]bool{
	"Records": true, "Nodes": true, "Rows": true, "Depth": true,
	"Updaters": true, "Shares": true, "Readers": true, "BatchSize": true,
	"Consensus": true, "BlockInterval": true, "Peer": true, "Updates": true,
	"DropRate": true, "Rate": true, "Seconds": true, "ReadFrac": true,
}

// cpuBoundExperiments run entirely in-process with no configured block
// intervals: their durations scale with the host CPU and are normalized
// by the calibration ratio. Everything else is protocol-bound (block
// intervals, modeled time) or machine-independent (byte sizes) and is
// compared raw.
var cpuBoundExperiments = map[string]bool{
	"E1": true, "E3": true, "E9": true, "E10": true, "E12": true, "E13": true,
	"E14": true,
}

// experimentOf extracts the experiment name from a flattened metric key
// ("/E9[Rows=100]/Get" -> "E9").
func experimentOf(key string) string {
	s := strings.TrimPrefix(key, "/")
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '[' {
			return s[:i]
		}
	}
	return s
}

// higherBetter metrics improve upward (throughputs, reduction ratios).
var higherBetter = []string{"PerSec", "Speedup", "Ratio"}

// lowerBetter metrics improve downward (latencies, makespans, sizes).
// Everything else (counts, configuration echoes) is ignored.
var lowerBetter = []string{
	"Makespan", "Time", "PerOp", "Bootstrap", "DeriveAll", "PerView",
	"PerRecord", "SingleHop", "FullCascade", "Get", "Put", "Create",
	"Read", "Update", "Delete", "Bytes", "Transfer", "IntegrityOK",
	"Diff", "Commit", "Hash", "Root", "Prove", "Verify", "P50",
}

// thinTail metrics are extreme order statistics over seconds-long runs
// (single-digit sample counts above the quantile): run-to-run they
// swing 10x on shared hardware when one scheduler stall lands in the
// tail, so a relative gate against a committed baseline only flaps.
// They are recorded in the baseline for eyeballing; the absolute SLO
// bound in the CI load smoke (cmd/loadr -slo-p99) gates them instead.
var thinTail = []string{"P99", "P999"}

// leafOf returns the leaf field name of a flattened metric key.
func leafOf(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// isSizeMetric reports whether a metric is a deterministic byte count
// (exempt from the timing noise floor).
func isSizeMetric(key string) bool {
	leaf := leafOf(key)
	return strings.Contains(leaf, "Bytes") || strings.Contains(leaf, "Transfer")
}

// direction returns +1 for higher-better, -1 for lower-better, 0 for
// ignored metrics. The metric name is the leaf field name of the
// flattened key.
func direction(key string) int {
	leaf := leafOf(key)
	if configFields[leaf] || strings.Contains(leaf, "Count") || leaf == "Blocks" || leaf == "BlocksUsed" {
		return 0
	}
	for _, s := range thinTail {
		if strings.Contains(leaf, s) {
			return 0
		}
	}
	for _, s := range higherBetter {
		if strings.Contains(leaf, s) {
			return +1
		}
	}
	for _, s := range lowerBetter {
		if strings.Contains(leaf, s) {
			return -1
		}
	}
	return 0
}

// elementKey renders a result object's sweep-point identity, e.g.
// "Nodes=3,Records=10". Empty when the object carries no config fields.
func elementKey(obj map[string]any) string {
	var parts []string
	for name, v := range obj {
		if !configFields[name] {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%v", name, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// flatten walks a decoded JSON value and collects numeric leaves under
// "/"-joined keys, keying array elements by elementKey when possible.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			flatten(prefix+"/"+k, sub, out)
		}
	case []any:
		for i, sub := range x {
			key := fmt.Sprintf("%s/%d", prefix, i)
			if obj, ok := sub.(map[string]any); ok {
				if ek := elementKey(obj); ek != "" {
					key = prefix + "[" + ek + "]"
				}
			}
			flatten(key, sub, out)
		}
	case float64:
		out[prefix] = x
	}
}

// flattenExperiments normalizes either a full baseline file (with its
// "experiments" envelope) or the in-memory result map into flat metrics.
func flattenExperiments(v any) map[string]float64 {
	out := make(map[string]float64)
	if m, ok := v.(map[string]any); ok {
		if exp, ok := m["experiments"]; ok {
			v = exp
		}
	}
	flatten("", v, out)
	return out
}

// compareAgainst diffs the current run (baselineData) against the
// committed baseline at path and reports the number of regressions
// beyond the thresholds (cpuThreshold for calibration-normalized
// CPU-bound metrics, threshold for everything else), plus the set of
// experiments a regression was flagged in (so the caller can
// re-measure exactly those once before failing — shared hardware
// suffers multi-second load storms that no per-process normalization
// removes, and an independent re-measurement discriminates them from
// real regressions). Duration metrics whose absolute increase stays
// under noiseFloor nanoseconds are never flagged: a 3µs→7µs jitter on
// a shared CI box is scheduling noise, while the regressions the
// micro-metrics exist to catch (an O(n) step reappearing on the delta
// path) overshoot the floor by orders of magnitude at the measured
// table sizes.
func compareAgainst(path string, threshold, cpuThreshold, noiseFloor float64) (int, map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	var oldDoc any
	if err := json.Unmarshal(raw, &oldDoc); err != nil {
		return 0, nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	// Round-trip the in-memory results through JSON so both sides have
	// identical generic shapes.
	curRaw, err := json.Marshal(baselineData)
	if err != nil {
		return 0, nil, err
	}
	var curDoc any
	if err := json.Unmarshal(curRaw, &curDoc); err != nil {
		return 0, nil, err
	}
	oldFlat := flattenExperiments(oldDoc)
	curFlat := flattenExperiments(curDoc)

	// calScale converts a current-run duration to the baseline machine's
	// scale (duration ÷ calScale compares against oldV... see below);
	// 1 disables normalization. scaleFor prefers the per-experiment
	// calibration pair (taken right before each experiment on both
	// sides) over the process-start score, so within-run machine drift
	// on shared hardware normalizes out alongside cross-machine speed.
	calScale := 1.0
	normalizing := false
	oldExpCal := map[string]float64{}
	if m, ok := oldDoc.(map[string]any); ok {
		if oldCal, ok := m["cpuCalibrationNs"].(float64); ok && oldCal > 0 && cpuCalibration > 0 {
			calScale = float64(cpuCalibration) / oldCal
			normalizing = true
		}
		if ec, ok := m["experimentCalibrationNs"].(map[string]any); ok {
			for id, v := range ec {
				if f, ok := v.(float64); ok && f > 0 {
					oldExpCal[id] = f
				}
			}
		}
	}
	scaleFor := func(exp string) float64 {
		if oldCal, ok := oldExpCal[exp]; ok {
			if curCal, ok := experimentCal[exp]; ok && curCal > 0 {
				return float64(curCal) / oldCal
			}
		}
		return calScale
	}

	keys := make([]string, 0, len(curFlat))
	for k := range curFlat {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Experiments measured this run but entirely absent from the baseline
	// (typically: the baseline predates a newly added experiment) are
	// skipped loudly, not silently — an ungated experiment looks exactly
	// like a passing one otherwise.
	oldExps := map[string]bool{}
	for k := range oldFlat {
		oldExps[experimentOf(k)] = true
	}
	notInBaseline := map[string]bool{}
	for _, k := range keys {
		if e := experimentOf(k); e != "" && !oldExps[e] {
			notInBaseline[e] = true
		}
	}

	fmt.Printf("\n=== regression gate (threshold %.0f%%, baseline %s) ===\n", threshold*100, path)
	if len(notInBaseline) > 0 {
		miss := make([]string, 0, len(notInBaseline))
		for e := range notInBaseline {
			miss = append(miss, e)
		}
		sort.Strings(miss)
		for _, e := range miss {
			fmt.Printf("WARNING: %s is not in the baseline — skipped, not gated (regenerate %s to gate it)\n", e, path)
		}
	}
	if normalizing {
		fmt.Printf("cpu calibration: baseline/current ratio %.2f; CPU-bound metrics normalized and gated at %.0f%%\n",
			1/calScale, cpuThreshold*100)
	} else {
		fmt.Printf("no calibration in baseline; all metrics gated at %.0f%% unnormalized\n", threshold*100)
	}
	regressions, compared := 0, 0
	flagged := map[string]bool{}
	for _, k := range keys {
		dir := direction(k)
		if dir == 0 {
			continue
		}
		oldV, ok := oldFlat[k]
		if !ok || oldV == 0 {
			continue // new metric or absent sweep point: nothing to gate
		}
		newV := curFlat[k]
		gate := threshold
		note := ""
		if normalizing && cpuBoundExperiments[experimentOf(k)] && !isSizeMetric(k) {
			// Byte counts inside CPU-bound experiments stay raw: transfer
			// sizes are machine-independent.
			// Durations shrink on a faster machine (divide by the
			// calibration scale); throughputs grow (multiply).
			scale := scaleFor(experimentOf(k))
			if dir < 0 {
				newV /= scale
			} else {
				newV *= scale
			}
			gate = cpuThreshold
			note = " (normalized)"
		}
		compared++
		var ratio float64
		if dir < 0 {
			ratio = newV/oldV - 1 // positive = slower/bigger = worse
			if !isSizeMetric(k) && newV-oldV < noiseFloor {
				continue // absolute timing increase below the noise floor
			}
		} else {
			ratio = oldV/newV - 1 // positive = lower throughput = worse
		}
		if ratio > gate {
			regressions++
			flagged[experimentOf(k)] = true
			fmt.Printf("REGRESSION %-60s old %.4g new %.4g (%.0f%% worse)%s\n", k, oldV, newV, ratio*100, note)
		}
	}
	fmt.Printf("compared %d metrics, %d regression(s)\n", compared, regressions)
	return regressions, flagged, nil
}
