// Command loadr drives an open-loop load against the medshare serving
// edge and reports RPS, error rate, and HDR-style latency percentiles.
// Open loop means arrivals follow a fixed schedule and every request's
// latency clock starts at its SCHEDULED arrival: a slow server cannot
// suppress its own tail by making the generator wait (coordinated
// omission).
//
//	loadr -selfhost -rate 200 -duration 10s        # in-process scenario
//	loadr -api http://127.0.0.1:8344 -rate 50      # against medshared -api
//	loadr -selfhost -rate 150 -slo-p99 250ms -slo-error-rate 0.02
//
// With -slo-p99 / -slo-error-rate set, loadr exits non-zero when the
// run breaches either bound — the CI load-smoke gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"medshare"
	"medshare/internal/api"
	"medshare/internal/loadgen"
	"medshare/internal/reldb"
)

func main() {
	var (
		apiURL   = flag.String("api", "", "base URL of a running medshared -api server")
		selfhost = flag.Bool("selfhost", false, "spin up an in-process serving scenario instead of targeting -api")
		rate     = flag.Float64("rate", 100, "peak arrival rate, requests/s")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		curve    = flag.String("curve", "sustained", "arrival curve: sustained, ramp, or burst")
		readFrac = flag.Float64("read-frac", 0.9, "fraction of arrivals that read (rest write)")
		workers  = flag.Int("workers", 64, "max in-flight requests")
		shares   = flag.Int("shares", 8, "shares to serve (selfhost)")
		records  = flag.Int("records", 64, "rows per share view (selfhost)")
		shareIDs = flag.String("share", "", "comma-separated share IDs to target (-api mode; default: all)")
		sloP99   = flag.Duration("slo-p99", 0, "fail the run if any kind's p99 exceeds this (0 = off)")
		sloErr   = flag.Float64("slo-error-rate", -1, "fail the run if the error rate exceeds this (-1 = off)")
	)
	flag.Parse()
	if err := run(*apiURL, *selfhost, *rate, *duration, *curve, *readFrac,
		*workers, *shares, *records, *shareIDs, *sloP99, *sloErr); err != nil {
		fmt.Fprintln(os.Stderr, "loadr:", err)
		os.Exit(1)
	}
}

func run(apiURL string, selfhost bool, rate float64, duration time.Duration, curve string,
	readFrac float64, workers, shares, records int, shareIDs string,
	sloP99 time.Duration, sloErr float64) error {
	switch loadgen.Curve(curve) {
	case loadgen.Sustained, loadgen.Ramp, loadgen.Burst:
	default:
		return fmt.Errorf("unknown -curve %q (want sustained, ramp, or burst)", curve)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var op loadgen.Op
	switch {
	case selfhost:
		fmt.Fprintf(os.Stderr, "building in-process scenario: %d shares x %d rows...\n", shares, records)
		sc, err := medshare.NewServingScenario(ctx, medshare.ServingConfig{Shares: shares, Records: records})
		if err != nil {
			return err
		}
		defer sc.Stop()
		if err := sc.Warm(ctx); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serving on %s\n", sc.URL)
		op = sc.Op(readFrac)
	case apiURL != "":
		client := &api.Client{BaseURL: apiURL, HTTPClient: &http.Client{
			Transport: &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512},
		}}
		var err error
		if op, err = remoteOp(ctx, client, shareIDs, readFrac); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -selfhost or -api is required")
	}

	plan := loadgen.Plan{Rate: rate, Duration: duration, Curve: loadgen.Curve(curve), Workers: workers}
	fmt.Fprintf(os.Stderr, "open loop: %.0f req/s %s for %v, %.0f%% reads\n", rate, curve, duration, 100*readFrac)
	st := loadgen.Run(ctx, plan, op)
	report(st)
	return checkSLO(st, sloP99, sloErr)
}

// target is one share a remote run can hit: its row keys (both as the
// comma-key query syntax and as JSON update tuples) and one writable
// non-key cell per row.
type target struct {
	id       string
	keyParts [][]string
	keys     [][]any
	col      string
	colKind  reldb.Kind
}

// remoteOp discovers the server's shares and view contents, then
// returns the same read/write mix ServingScenario.Op drives: whether
// writes succeed depends on the serving peer's on-chain write
// permission for the chosen column — denials count as errors, which is
// the honest reading of an unauthorized load.
func remoteOp(ctx context.Context, client *api.Client, shareIDs string, readFrac float64) (loadgen.Op, error) {
	var ids []string
	if shareIDs != "" {
		ids = strings.Split(shareIDs, ",")
	} else {
		sts, err := client.Shares(ctx)
		if err != nil {
			return nil, fmt.Errorf("discovering shares: %w", err)
		}
		for _, st := range sts {
			ids = append(ids, st.ID)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no shares to target (register some, or pass -share)")
	}
	targets := make([]target, 0, len(ids))
	for _, id := range ids {
		view, err := client.Rows(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("prefetching %s: %w", id, err)
		}
		t := target{id: id}
		sch := view.Schema()
		keyIdx := sch.KeyIndexes()
		for _, c := range sch.Columns {
			if !sch.IsKeyColumn(c.Name) && writableKind(c.Type) {
				t.col, t.colKind = c.Name, c.Type
				break
			}
		}
		view.Scan(func(r reldb.Row) (bool, error) {
			parts := make([]string, 0, len(keyIdx))
			tuple := make([]any, 0, len(keyIdx))
			for _, i := range keyIdx {
				parts = append(parts, keyQueryPart(r[i]))
				tuple = append(tuple, jsonScalar(r[i]))
			}
			t.keyParts = append(t.keyParts, parts)
			t.keys = append(t.keys, tuple)
			return true, nil
		})
		if len(t.keyParts) == 0 {
			return nil, fmt.Errorf("share %s has no rows to target", id)
		}
		targets = append(targets, t)
	}
	return func(ctx context.Context, seq int) loadgen.Result {
		t := targets[seq%len(targets)]
		row := seq % len(t.keyParts)
		u := float64(uint32(seq)*2654435761%1_000_000) / 1e6
		if u < readFrac || t.col == "" {
			if seq%2 == 0 {
				_, err := client.Rows(ctx, t.id)
				return loadgen.Result{Err: err, Kind: "read"}
			}
			res, err := client.Row(ctx, t.id, t.keyParts[row], true)
			if err == nil {
				ok, verr := api.VerifyRow(res)
				if verr != nil {
					err = verr
				} else if !ok {
					err = fmt.Errorf("proof for %s failed against root %s", t.id, res.Root)
				}
			}
			return loadgen.Result{Err: err, Kind: "read"}
		}
		_, err := client.Update(ctx, t.id, []api.RowOp{{
			Op: "set", Key: t.keys[row],
			Set: map[string]any{t.col: writeValue(t.colKind, seq)},
		}})
		return loadgen.Result{Err: err, Kind: "write"}
	}, nil
}

func writableKind(k reldb.Kind) bool {
	switch k {
	case reldb.KindString, reldb.KindInt, reldb.KindFloat, reldb.KindBool:
		return true
	}
	return false
}

func writeValue(k reldb.Kind, seq int) any {
	switch k {
	case reldb.KindInt, reldb.KindFloat:
		return float64(seq)
	case reldb.KindBool:
		return seq%2 == 0
	default:
		return fmt.Sprintf("w-%d", seq)
	}
}

// keyQueryPart renders a key value for the ?key=a,b query syntax.
func keyQueryPart(v reldb.Value) string {
	if s, ok := v.Str(); ok {
		return s
	}
	return v.String()
}

// jsonScalar renders a key value as the JSON scalar the update endpoint
// coerces back through the schema.
func jsonScalar(v reldb.Value) any {
	switch v.Kind() {
	case reldb.KindInt:
		i, _ := v.Int()
		return float64(i)
	case reldb.KindFloat:
		f, _ := v.Float()
		return f
	case reldb.KindBool:
		b, _ := v.Bool()
		return b
	case reldb.KindTime:
		t, _ := v.Time()
		return t.Format(time.RFC3339Nano)
	default:
		s, _ := v.Str()
		return s
	}
}

func report(st loadgen.Stats) {
	fmt.Printf("offered %d, completed %d, errors %d (%.2f%%), elapsed %v\n",
		st.Offered, st.Completed, st.Errors, 100*st.ErrorRate, st.Elapsed.Round(time.Millisecond))
	fmt.Printf("all    %s\n", st.Latency)
	for _, kind := range []string{"read", "write"} {
		ks, ok := st.Kinds[kind]
		if !ok {
			continue
		}
		rps := float64(ks.Completed-ks.Errors) / st.Elapsed.Seconds()
		fmt.Printf("%-6s %s  %.0f/s, %d errors\n", kind, ks.Latency, rps, ks.Errors)
	}
}

func checkSLO(st loadgen.Stats, sloP99 time.Duration, sloErr float64) error {
	var breaches []string
	if sloP99 > 0 {
		if st.Latency.P99 > sloP99 {
			breaches = append(breaches, fmt.Sprintf("p99 %v > SLO %v", st.Latency.P99, sloP99))
		}
		for kind, ks := range st.Kinds {
			if ks.Latency.P99 > sloP99 {
				breaches = append(breaches, fmt.Sprintf("%s p99 %v > SLO %v", kind, ks.Latency.P99, sloP99))
			}
		}
	}
	if sloErr >= 0 && st.ErrorRate > sloErr {
		breaches = append(breaches, fmt.Sprintf("error rate %.4f > SLO %.4f", st.ErrorRate, sloErr))
	}
	if st.Completed == 0 {
		breaches = append(breaches, "no operations completed")
	}
	if len(breaches) > 0 {
		return fmt.Errorf("SLO breached: %s", strings.Join(breaches, "; "))
	}
	fmt.Println("SLO: ok")
	return nil
}
