// Command medshared runs one stakeholder of the medshare architecture as
// a real process: a blockchain node plus a data-sharing peer, both on a
// TCP transport, driven by a small interactive shell on stdin.
//
// Every participant derives its identity deterministically from a seed so
// that separately started processes agree on addresses and on the PoA
// authority set. A three-terminal Fig. 1 demo:
//
//	medshared -name Doctor     -listen 127.0.0.1:7001 \
//	  -participants 'Doctor=s1@127.0.0.1:7001,Patient=s2@127.0.0.1:7002,Researcher=s3@127.0.0.1:7003' -fig1
//	medshared -name Patient    -listen 127.0.0.1:7002 -participants '...' -fig1
//	medshared -name Researcher -listen 127.0.0.1:7003 -participants '...' -fig1
//
// then in the Doctor shell: `register-fig1`, in the others `attach-fig1`,
// and update away (`set`, `sync`, `show`, `history`). Use
// `medsharectl demo` to generate ready-made command lines.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"medshare/internal/api"
	"medshare/internal/bx"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
	"medshare/internal/store"
	"medshare/internal/workload"
)

// participant is one configured stakeholder: name, identity seed, and
// TCP address.
type participant struct {
	name string
	seed string
	addr string
}

func parseParticipants(s string) ([]participant, error) {
	var out []participant
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		at := strings.LastIndexByte(part, '@')
		if eq < 0 || at < eq {
			return nil, fmt.Errorf("bad participant %q (want name=seed@host:port)", part)
		}
		out = append(out, participant{
			name: part[:eq],
			seed: part[eq+1 : at],
			addr: part[at+1:],
		})
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two participants")
	}
	return out, nil
}

func main() {
	var (
		name     = flag.String("name", "", "this participant's name (must appear in -participants)")
		listen   = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		parts    = flag.String("participants", "", "all participants as name=seed@host:port, comma separated")
		network  = flag.String("network", "medshare-demo", "network name (genesis seed)")
		blockMs  = flag.Int("block-ms", 200, "block interval in milliseconds")
		fig1     = flag.Bool("fig1", false, "preload this role's Fig. 1 table (Doctor/Patient/Researcher)")
		records  = flag.Int("records", 0, "synthetic records for -fig1 (0 = the exact Fig. 1 rows)")
		seedFlag = flag.Int64("seed", 1, "workload seed for -fig1")
		apiAddr  = flag.String("api", "", "serve the HTTP API on this address (empty = no API)")
		groupMs  = flag.Int("group-commit-ms", 0, "group-commit window in milliseconds (0 = per-interval blocks)")
		dataDir  = flag.String("data-dir", "", "durable store directory (empty = in-memory only)")
	)
	flag.Parse()
	if *name == "" || *parts == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*name, *listen, *parts, *network, *blockMs, *fig1, *records, *seedFlag, *apiAddr, *groupMs, *dataDir); err != nil {
		fmt.Fprintln(os.Stderr, "medshared:", err)
		os.Exit(1)
	}
}

func run(name, listen, parts, network string, blockMs int, fig1 bool, records int, seed int64, apiAddr string, groupMs int, dataDir string) error {
	participants, err := parseParticipants(parts)
	if err != nil {
		return err
	}
	var me *participant
	for i := range participants {
		if participants[i].name == name {
			me = &participants[i]
		}
	}
	if me == nil {
		return fmt.Errorf("participant %s not in -participants", name)
	}

	// Deterministic identities: every process derives the same addresses.
	ids := make(map[string]*identity.Identity, len(participants))
	var authorities []identity.Address
	dir := core.NewDirectory()
	for _, p := range participants {
		id := identity.FromSeed(p.name, p.seed)
		ids[p.name] = id
		authorities = append(authorities, id.Address())
		dir.Set(id.Address(), p.name)
	}

	transport, err := p2p.NewTCPTransport(name, listen)
	if err != nil {
		return err
	}
	defer transport.Close()
	for _, p := range participants {
		if p.name != name {
			transport.AddPeer(p.name, p.addr)
		}
	}
	fmt.Printf("%s listening on %s (address %s)\n", name, transport.Addr(), ids[name].Address().Short())

	// Durable store: opened before the node (node.New recovers from it) and
	// closed after node.Stop (deferred earlier => runs later), so the clean
	// checkpoint written on shutdown always reaches the log before Close.
	var st *store.Store
	if dataDir != "" {
		st, err = store.Open(store.Options{Dir: dataDir})
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", dataDir, err)
		}
		defer st.Close()
		stats := st.Stats()
		if stats.CleanShutdown {
			fmt.Printf("%s store %s: clean shutdown, checkpoint import (0 bytes replayed)\n", name, dataDir)
		} else {
			fmt.Printf("%s store %s: recovering (%d blocks, %d tail bytes truncated, torn=%v)\n",
				name, dataDir, len(st.Blocks()), stats.TailBytes, stats.TornTail)
		}
	}

	n, err := node.New(node.Config{
		NetworkName:       network,
		Identity:          ids[name],
		Engine:            consensus.NewPoA(true, authorities...),
		Registry:          contract.NewRegistry(sharereg.New()),
		BlockInterval:     time.Duration(blockMs) * time.Millisecond,
		GroupCommitWindow: time.Duration(groupMs) * time.Millisecond,
		Transport:         transport,
		Store:             st,
	})
	if err != nil {
		return err
	}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()
	n.Start(ctx)
	defer n.Stop()

	db := reldb.NewDatabase(name)
	if fig1 {
		if err := loadFig1(db, name, records, seed); err != nil {
			return err
		}
	}
	peer, err := core.NewPeer(core.Config{
		Identity:  ids[name],
		DB:        db,
		Node:      n,
		Transport: transport,
		Directory: dir,
		Store:     st,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	peer.Start()
	defer peer.Stop()

	if apiAddr != "" {
		srv, err := api.New(api.Config{
			Peer:           peer,
			Node:           n,
			CoalesceWindow: time.Duration(groupMs) * time.Millisecond,
			Store:          st,
		})
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", apiAddr)
		if err != nil {
			return fmt.Errorf("api listen: %w", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hs.Serve(l); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "medshared: api:", err)
			}
		}()
		defer hs.Close()
		fmt.Printf("%s serving API on http://%s\n", name, l.Addr())
	}

	// The shell blocks on stdin, which cannot be interrupted portably; run
	// it in a goroutine and race it against SIGTERM/SIGINT so a signal
	// still unwinds the defers (peer.Stop, n.Stop checkpoint, store close).
	done := make(chan error, 1)
	go func() { done <- shell(ctx, &daemon{name: name, ids: ids, node: n, peer: peer, db: db}) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		fmt.Printf("\n%s: signal received, shutting down\n", name)
		return nil
	}
}

// loadFig1 installs the role's Fig. 1 slice.
func loadFig1(db *reldb.Database, role string, records int, seed int64) error {
	var full *reldb.Table
	if records <= 0 {
		full = workload.Fig1Data("full")
	} else {
		full = workload.Generate("full", records, seed)
	}
	switch role {
	case "Patient":
		t, err := full.Project("D1", workload.PatientCols, nil)
		if err != nil {
			return err
		}
		db.PutTable(t)
	case "Researcher":
		t, err := full.Project("D2", workload.ResearcherCols, []string{workload.ColMedication})
		if err != nil {
			return err
		}
		db.PutTable(t)
	case "Doctor":
		t, err := full.Project("D3", workload.DoctorCols, nil)
		if err != nil {
			return err
		}
		db.PutTable(t)
	default:
		return fmt.Errorf("-fig1 supports roles Doctor, Patient, Researcher (got %s)", role)
	}
	return nil
}

// daemon bundles the running pieces for the shell.
type daemon struct {
	name string
	ids  map[string]*identity.Identity
	node *node.Node
	peer *core.Peer
	db   *reldb.Database
}

// shell is the interactive command loop.
func shell(ctx context.Context, d *daemon) error {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println(`type "help" for commands`)
	for {
		fmt.Printf("%s> ", d.name)
		if !sc.Scan() {
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return nil
		}
		if err := d.execute(ctx, fields); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func (d *daemon) execute(ctx context.Context, args []string) error {
	opCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	switch args[0] {
	case "help":
		fmt.Print(`commands:
  tables                         list local tables
  show <table>                   print a table
  set <table> <key> <col> <val>  update one field locally
  sync <table>                   propagate local changes to all shares
  shares                         list bound shares
  meta <share>                   print on-chain metadata
  history                        locally observed share events
  chain                          chain status
  resync                         reconcile all shares against the chain
  register-fig1                  (Doctor) register D13&D31 and D23&D32
  attach-fig1                    (Patient/Researcher) attach your share
  quit
`)
		return nil
	case "tables":
		for _, t := range d.db.TableNames() {
			fmt.Println(" ", t)
		}
		return nil
	case "show":
		if len(args) != 2 {
			return fmt.Errorf("usage: show <table>")
		}
		t, err := d.db.Table(args[1])
		if err != nil {
			return err
		}
		fmt.Print(reldb.Format(t))
		return nil
	case "set":
		if len(args) != 5 {
			return fmt.Errorf("usage: set <table> <key> <col> <value>")
		}
		return d.db.WithTable(args[1], func(t *reldb.Table) error {
			return t.Update(parseKey(args[2]), map[string]reldb.Value{args[3]: reldb.S(args[4])})
		})
	case "sync":
		if len(args) != 2 {
			return fmt.Errorf("usage: sync <table>")
		}
		props, err := d.peer.SyncShares(opCtx, args[1])
		if err != nil {
			return err
		}
		if len(props) == 0 {
			fmt.Println("  no shares affected")
		}
		for _, pr := range props {
			fmt.Printf("  proposed %s seq %d (cols %v); waiting for peers...\n", pr.ShareID, pr.Seq, pr.Cols)
			if err := d.peer.WaitFinal(opCtx, pr.ShareID, pr.Seq); err != nil {
				return err
			}
			fmt.Printf("  finalized %s seq %d\n", pr.ShareID, pr.Seq)
		}
		return nil
	case "shares":
		ids := d.peer.Shares()
		sort.Strings(ids)
		for _, id := range ids {
			info, err := d.peer.ShareInfo(id)
			if err != nil {
				continue
			}
			fmt.Printf("  %s: source %s, view %s, applied seq %d\n", id, info.SourceTable, info.ViewName, info.AppliedSeq)
		}
		return nil
	case "meta":
		if len(args) != 2 {
			return fmt.Errorf("usage: meta <share>")
		}
		m, err := d.peer.Meta(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("  peers: %v\n  authority: %s\n  seq: %d\n  updated: %s\n",
			m.Peers, m.Authority, m.Seq, time.UnixMicro(m.UpdatedAtMicro).Format(time.RFC3339))
		cols := make([]string, 0, len(m.WritePerm))
		for c := range m.WritePerm {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			fmt.Printf("  write %-22s %v\n", c, m.WritePerm[c])
		}
		if m.Pending != nil {
			fmt.Printf("  PENDING seq %d from %s (cols %v)\n", m.Pending.Seq, m.Pending.From, m.Pending.Cols)
		}
		return nil
	case "history":
		for _, h := range d.peer.History() {
			fmt.Printf("  %s %-10s %-12s seq %d cols %v %s\n",
				h.Time.Format("15:04:05.000"), h.Kind, h.ShareID, h.Seq, h.Cols, h.Note)
		}
		return nil
	case "chain":
		head := d.node.Store().Head()
		fmt.Printf("  height %d, head %s, mempool %d\n",
			head.Header.Height, head.HashString()[:12], d.node.PendingTxs())
		return nil
	case "resync":
		return d.peer.Resync(opCtx)
	case "register-fig1":
		return d.registerFig1(opCtx)
	case "attach-fig1":
		return d.attachFig1(opCtx)
	default:
		return fmt.Errorf("unknown command %q (try help)", args[0])
	}
}

// registerFig1 registers both paper shares from the Doctor role.
func (d *daemon) registerFig1(ctx context.Context) error {
	if d.name != "Doctor" {
		return fmt.Errorf("register-fig1 runs on the Doctor")
	}
	doctor := d.ids["Doctor"].Address()
	patient := d.ids["Patient"].Address()
	researcher := d.ids["Researcher"].Address()
	err := d.peer.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          "D13&D31",
		SourceTable: "D3",
		Lens:        bx.Project("D31", workload.ShareD13Cols, nil),
		ViewName:    "D31",
		Peers:       []identity.Address{patient, doctor},
		WritePerm: map[string][]identity.Address{
			workload.ColPatientID:  {doctor},
			workload.ColMedication: {doctor},
			workload.ColDosage:     {doctor},
			workload.ColClinical:   {patient, doctor},
		},
		Authority: doctor,
	})
	if err != nil {
		return err
	}
	return d.peer.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          "D23&D32",
		SourceTable: "D3",
		Lens:        bx.Project("D32", workload.ShareD23Cols, []string{workload.ColMedication}),
		ViewName:    "D32",
		Peers:       []identity.Address{researcher, doctor},
		WritePerm: map[string][]identity.Address{
			workload.ColMedication: {doctor, researcher},
			workload.ColMechanism:  {researcher},
		},
		Authority: researcher,
	})
}

// attachFig1 binds the local side of the paper share for this role.
func (d *daemon) attachFig1(ctx context.Context) error {
	switch d.name {
	case "Patient":
		if _, err := d.peer.WaitForShare(ctx, "D13&D31"); err != nil {
			return err
		}
		return d.peer.AttachShare("D13&D31", "D1",
			bx.Project("D13", workload.ShareD13Cols, nil).
				WithDelete(bx.PolicyApply).
				WithInsert(bx.PolicyApply, map[string]reldb.Value{workload.ColAddress: reldb.S("unknown")}),
			"D13")
	case "Researcher":
		if _, err := d.peer.WaitForShare(ctx, "D23&D32"); err != nil {
			return err
		}
		return d.peer.AttachShare("D23&D32", "D2",
			bx.Project("D23", workload.ShareD23Cols, []string{workload.ColMedication}).
				WithDelete(bx.PolicyApply).
				WithInsert(bx.PolicyApply, map[string]reldb.Value{workload.ColMode: reldb.S("MoA-pending")}),
			"D23")
	default:
		return fmt.Errorf("attach-fig1 runs on Patient or Researcher")
	}
}

// parseKey interprets a shell key argument as an int when possible.
func parseKey(s string) reldb.Row {
	var i int64
	if _, err := fmt.Sscanf(s, "%d", &i); err == nil && fmt.Sprint(i) == s {
		return reldb.Row{reldb.I(i)}
	}
	return reldb.Row{reldb.S(s)}
}
