package core

import (
	"errors"
	"sync"
)

// forEachShare runs fn over items on up to workers goroutines — the
// peer's fan-out primitive for cascade, Resync, and SyncShares. Shares
// are mutually independent (each share's operations are serialized by its
// own opMu, and every table access goes through atomic database
// snapshots), so processing them concurrently overlaps the dominant cost:
// waiting for the chain to commit each share's transactions.
//
// All items run to completion even when some fail; the collected errors
// are joined. workers <= 1 degrades to a sequential loop in item order.
func forEachShare[T any](items []T, workers int, fn func(T) error) error {
	if len(items) == 0 {
		return nil
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		var errs []error
		for _, it := range items {
			if err := fn(it); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
		next int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(items) {
					mu.Unlock()
					return
				}
				it := items[next]
				next++
				mu.Unlock()
				if err := fn(it); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
