package core

import (
	"sync"

	"medshare/internal/reldb"
	"medshare/internal/reldb/pmap"
)

// Proof-carrying reads: the serving edge exposes fetches whose response
// carries a Merkle membership proof against the view's row root — the
// root the on-chain payload hash commits to — so a client that trusts
// the chain (or just pins the root) can verify a single row without
// holding any replica. Proof construction is O(log n) but still walks
// and hashes a root-to-leaf path per call; under read-heavy serving
// traffic the same few rows are proven over and over against the same
// version, so each share keeps a proof cache that is invalidated
// wholesale the moment the applied sequence number advances (a new
// version means a new root; no stale proof can survive the seq check).

// proofCacheMaxEntries bounds one share's cached proofs. A serving peer
// hosting thousands of shares must not let one hot share's key space
// grow an unbounded map; at the cap the cache resets wholesale — the
// next reads repopulate it, and steady-state hot keys win again.
const proofCacheMaxEntries = 4096

// RowProof is a proof-carrying read result: the row, the membership
// proof, and the root + version the proof verifies against. The root is
// the same value the on-chain payload hash commits to at Seq, so a
// verifier holding the chain metadata needs nothing else from this peer.
type RowProof struct {
	ShareID string
	// Seq is the share's applied version the proof was built at.
	Seq uint64
	// Row is the proven row (primary key + all view columns).
	Row reldb.Row
	// Root is the view's Merkle row root.
	Root [32]byte
	// Proof verifies Row against Root via reldb.VerifyRowProof.
	Proof pmap.Proof
	// SchemaSum and Rows are the other two inputs of the table hash the
	// on-chain payload hash commits to (sha256(schemaSum ‖ rowCount ‖
	// rowsRoot)); carrying them lets a chain-anchored verifier recompute
	// that hash and bind Root to the share's on-chain Seq without any
	// other data from this peer. All three come from the same view
	// snapshot, so they are mutually consistent by construction.
	SchemaSum [32]byte
	Rows      int
}

// proofCache is one share's memoized proof set for a single version.
type proofCache struct {
	mu sync.Mutex
	// seq is the applied sequence the cached proofs were built at; a
	// lookup under any other seq drops the whole map.
	seq     uint64
	root    [32]byte
	entries map[string]RowProof
}

// ProveView builds a membership proof for one row of the share's current
// view replica. Proofs are cached per share and version: a repeat read
// of the same key at the same applied sequence returns the memoized
// proof without touching the tree, and the first read after a version
// advance rebuilds from the new root (Stats reports the hit/miss split).
func (p *Peer) ProveView(shareID string, key reldb.Row) (RowProof, error) {
	s, err := p.share(shareID)
	if err != nil {
		return RowProof{}, err
	}
	view, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return RowProof{}, err
	}
	s.stMu.Lock()
	seq := s.AppliedSeq
	s.stMu.Unlock()
	// The cache key is the key tuple's ordered storage encoding — the
	// same bytes the row tree is ordered by, so distinct keys never
	// collide.
	var kb []byte
	for _, v := range key {
		kb = v.AppendOrdered(kb)
	}
	ck := string(kb)
	root := view.RowsRoot()

	c := &s.proofs
	c.mu.Lock()
	if c.entries != nil && c.seq == seq && c.root == root {
		if pr, ok := c.entries[ck]; ok {
			c.mu.Unlock()
			p.stats.proofCacheHits.Add(1)
			return pr, nil
		}
	}
	c.mu.Unlock()
	p.stats.proofCacheMisses.Add(1)

	row, proof, err := view.ProveRow(key)
	if err != nil {
		return RowProof{}, err
	}
	pr := RowProof{
		ShareID: shareID, Seq: seq, Row: row, Root: root, Proof: proof,
		SchemaSum: view.SchemaSum(), Rows: view.Len(),
	}

	c.mu.Lock()
	// Any version advance (or a racing proposal that changed the root
	// under the same label) invalidates the whole cache: proofs only
	// ever verify against the root they were built from.
	if c.entries == nil || c.seq != seq || c.root != root || len(c.entries) >= proofCacheMaxEntries {
		c.entries = make(map[string]RowProof)
		c.seq = seq
		c.root = root
	}
	c.entries[ck] = pr
	c.mu.Unlock()
	return pr, nil
}
