package core

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"sort"

	"medshare/internal/bx"
	"medshare/internal/chain"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/reldb"
)

// RegisterShareArgs describes a new share from the initiating peer's point
// of view (Section III-C2: the initiator deploys the metadata "according
// to their agreement").
type RegisterShareArgs struct {
	// ID is the network-wide share identifier (e.g. "D13&D31").
	ID string
	// SourceTable is the initiator's local source table.
	SourceTable string
	// Lens derives the initiator's replica of the shared view.
	Lens bx.Lens
	// ViewName is the initiator's local name for the view (e.g. "D31").
	ViewName string
	// Peers are all sharing peers, including the initiator.
	Peers []identity.Address
	// WritePerm maps shared attributes to allowed writers (Fig. 3). An
	// attribute missing from the map is read-only for everyone.
	WritePerm map[string][]identity.Address
	// Authority may change permissions later; zero means the initiator.
	Authority identity.Address
}

// RegisterShare derives the initial view, registers the share metadata on
// the blockchain, and binds the share locally. It returns once the
// registration transaction commits.
//
// Re-registering a share that already exists on-chain is idempotent
// when this peer is among its sharing peers: the restart path. The
// on-chain metadata is left untouched and the share is rebound locally
// — from the durable store's verified replica when one is available,
// else by re-deriving the view and letting resync catch it up.
func (p *Peer) RegisterShare(ctx context.Context, a RegisterShareArgs) error {
	if meta, err := p.Meta(a.ID); err == nil {
		if !metaHasPeer(meta, p.Address()) {
			return fmt.Errorf("%w: %s already registered without %s", ErrNotAuthorized, a.ID, p.Address())
		}
		viewName := a.ViewName
		if viewName == "" {
			viewName = a.ID
		}
		return p.AttachShare(a.ID, a.SourceTable, a.Lens, viewName)
	}
	src, err := p.snapshotTable(a.SourceTable)
	if err != nil {
		return err
	}
	view, err := a.Lens.Get(src)
	if err != nil {
		return fmt.Errorf("core: deriving initial view for %s: %w", a.ID, err)
	}
	spec, err := a.Lens.Spec().Marshal()
	if err != nil {
		return fmt.Errorf("core: encoding lens spec for %s: %w", a.ID, err)
	}
	// The share's priority secret: every replica stores the view under
	// treap priorities keyed by it, closing the shape-grinding window for
	// anyone outside the share. It rides in the on-chain metadata, which
	// only the consortium sees — the threat model is a row-key-choosing
	// outsider, not an authorized peer.
	prioSeed := make([]byte, 32)
	if _, err := rand.Read(prioSeed); err != nil {
		return fmt.Errorf("core: generating priority seed for %s: %w", a.ID, err)
	}
	view = view.Reseeded(prioSeed)
	cols := view.Schema().ColumnNames()
	ra := sharereg.RegisterArgs{
		ID:        a.ID,
		Peers:     a.Peers,
		Authority: a.Authority,
		Columns:   cols,
		WritePerm: a.WritePerm,
		LensSpec:  spec,
		PrioSeed:  prioSeed,
	}
	tx, err := p.buildTx(sharereg.FnRegister, a.ID, ra)
	if err != nil {
		return err
	}
	if _, err := p.submitAndWait(ctx, tx); err != nil {
		return fmt.Errorf("core: registering %s: %w", a.ID, err)
	}
	viewName := a.ViewName
	if viewName == "" {
		viewName = a.ID
	}
	p.cfg.DB.PutTable(view.Renamed(viewName))
	s := &Share{
		ID:          a.ID,
		SourceTable: a.SourceTable,
		Lens:        a.Lens,
		ViewName:    viewName,
		prioSeed:    prioSeed,
	}
	p.mu.Lock()
	p.shares[a.ID] = s
	p.mu.Unlock()
	p.persistShare(s)
	p.record(HistoryEntry{ShareID: a.ID, Kind: "register", Note: "registered on-chain"})
	p.logf("registered share %s (view %s, %d rows)", a.ID, viewName, view.Len())
	return nil
}

// AttachShare binds an already-registered share on a counterparty peer:
// the peer declares which local source table and lens realize its replica
// of the shared view. The local view is materialized via get and must
// agree with the on-chain state (seq 0 at registration, or the provider's
// current data after updates — use SyncFromCounterparty to catch up).
func (p *Peer) AttachShare(id, sourceTable string, lens bx.Lens, viewName string) error {
	meta, err := p.Meta(id)
	if err != nil {
		return err
	}
	if !metaHasPeer(meta, p.Address()) {
		return fmt.Errorf("%w: %s is not a peer of %s", ErrNotAuthorized, p.Address(), id)
	}
	if viewName == "" {
		viewName = id
	}
	// Restart path: a verified replica in the durable store beats
	// re-deriving (the persisted view carries updates already applied on
	// this binding; a fresh Get(src) does too, but the persisted source
	// may itself be ahead of what the caller loaded).
	if rv, rsrc, seq, ok := p.restoredShare(id, sourceTable, viewName, meta); ok {
		p.mu.Lock()
		_, dup := p.shares[id]
		p.mu.Unlock()
		if dup {
			return fmt.Errorf("%w: %s", ErrShareBound, id)
		}
		p.bindRestoredShare(id, sourceTable, lens, viewName, meta, rv, rsrc, seq)
		return nil
	}
	src, err := p.snapshotTable(sourceTable)
	if err != nil {
		return err
	}
	view, err := lens.Get(src)
	if err != nil {
		return fmt.Errorf("core: deriving view for %s: %w", id, err)
	}
	// Store the replica under the share's priority secret so both sides'
	// row trees — and hence their Merkle roots — agree.
	view = view.Reseeded(meta.PrioSeed)
	s := &Share{
		ID:          id,
		SourceTable: sourceTable,
		Lens:        lens,
		ViewName:    viewName,
		AppliedSeq:  meta.Seq,
		prioSeed:    meta.PrioSeed,
	}
	p.mu.Lock()
	if _, dup := p.shares[id]; dup {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrShareBound, id)
	}
	p.shares[id] = s
	p.mu.Unlock()
	p.cfg.DB.PutTable(view.Renamed(viewName))
	p.persistShare(s)
	p.record(HistoryEntry{ShareID: id, Kind: "attach", Seq: meta.Seq})
	p.logf("attached share %s (view %s, %d rows)", id, viewName, view.Len())
	return nil
}

// View returns an independent snapshot of the current materialized
// replica of the shared view.
func (p *Peer) View(shareID string) (*reldb.Table, error) {
	s, err := p.share(shareID)
	if err != nil {
		return nil, err
	}
	return p.snapshotTable(s.ViewName)
}

// Source returns an independent snapshot of a local source table. Use
// UpdateSource to mutate.
func (p *Peer) Source(table string) (*reldb.Table, error) {
	return p.snapshotTable(table)
}

// UpdateSource applies a local mutation to a source table (the peer's own
// full data; no permission needed — it is their database). It does not
// propagate; call SyncShares or ProposeUpdate afterwards, mirroring the
// paper's step 1 where the researcher first updates D2 locally.
func (p *Peer) UpdateSource(table string, mutate func(*reldb.Table) error) error {
	return p.cfg.DB.WithTable(table, mutate)
}

// ProposalResult reports a successfully admitted update proposal.
type ProposalResult struct {
	ShareID string
	// Seq is the sequence number the update will finalize as.
	Seq uint64
	// Cols are the changed attributes.
	Cols []string
	// TxID is the request_update transaction.
	TxID string
}

// ProposeUpdate regenerates the share's view from the local source (get),
// diffs it against the current replica, and — if anything changed —
// requests the update on-chain (Fig. 5 steps 1-2). On success the local
// replica is refreshed and counterparties are notified via the contract
// event; they fetch the payload from this peer over the data channel.
//
// ErrNoChanges is returned when the view is unaffected by the local edit;
// callers treat it as success.
func (p *Peer) ProposeUpdate(ctx context.Context, shareID string) (ProposalResult, error) {
	s, err := p.share(shareID)
	if err != nil {
		return ProposalResult{}, err
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	st, err := p.stageProposal(s)
	if err != nil {
		return ProposalResult{}, err
	}
	if _, err := p.submitAndWait(ctx, st.tx); err != nil {
		p.rollbackProposal(st)
		return ProposalResult{}, fmt.Errorf("core: update on %s denied: %w", shareID, err)
	}
	return p.finalizeProposal(st), nil
}

// stagedProposal carries one share's update between optimistic staging
// and the commit verdict. The share's opMu is held by the caller for the
// staged proposal's whole lifetime.
type stagedProposal struct {
	s       *Share
	tx      *chain.Tx
	baseSeq uint64
	oldView *reldb.Table
	kind    string
	cols    []string
}

// stageProposal materializes the share's fresh view, diffs it against the
// replica, builds the request_update transaction, and optimistically
// installs the new view with the pre-proposal state kept as the rollback
// point. The caller holds s.opMu and must resolve the staged proposal
// with finalizeProposal or rollbackProposal once the transaction's fate
// is known.
func (p *Peer) stageProposal(s *Share) (*stagedProposal, error) {
	src, err := p.snapshotTable(s.SourceTable)
	if err != nil {
		return nil, err
	}
	newView, err := s.Lens.Get(src)
	if err != nil {
		return nil, fmt.Errorf("core: get on %s: %w", s.ID, err)
	}
	// The freshly materialized view is rebuilt under the share's priority
	// secret before it is hashed, diffed, or stored: the payload hash the
	// counterparties verify commits to the seeded tree shape.
	newView = s.seedView(newView)
	oldView, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return nil, err
	}
	cs, err := oldView.Diff(newView)
	if err != nil {
		return nil, err
	}
	if cs.Empty() {
		return nil, ErrNoChanges
	}
	colSet := cs.ChangedColumns(oldView.Schema())
	cols := make([]string, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	kind := updateKind(cs)

	s.stMu.Lock()
	baseSeq := s.AppliedSeq
	s.stMu.Unlock()

	ua := sharereg.UpdateArgs{
		ShareID:     s.ID,
		Cols:        cols,
		PayloadHash: hashHex(newView),
		Kind:        kind,
		BaseSeq:     baseSeq,
	}
	tx, err := p.buildTx(sharereg.FnRequestUpdate, s.ID, ua)
	if err != nil {
		return nil, err
	}

	// Refresh the replica and advance the applied sequence *before* the
	// request commits: the contract event may reach counterparties in the
	// same instant the block lands, and their fetch must already see the
	// new payload. The pre-proposal state is kept as a rollback point for
	// a contract denial or a counterparty rejection. oldView is already an
	// immutable snapshot, so the rollback point and the delta base share
	// it instead of each taking a copy.
	p.cfg.DB.PutTable(newView.Renamed(s.ViewName))
	s.stMu.Lock()
	s.backup = &shareBackup{seq: baseSeq, view: oldView}
	s.prev = &shareBackup{seq: baseSeq, view: oldView}
	s.AppliedSeq = baseSeq + 1
	s.stMu.Unlock()
	return &stagedProposal{s: s, tx: tx, baseSeq: baseSeq, oldView: oldView, kind: kind, cols: cols}, nil
}

// rollbackProposal undoes a staged proposal after a denial (permission,
// pending gate, stale base). The view returns to the pre-proposal
// snapshot while the source keeps the local edit, so the pair is
// diverged until a full put.
func (p *Peer) rollbackProposal(st *stagedProposal) {
	s := st.s
	s.stMu.Lock()
	s.AppliedSeq = st.baseSeq
	s.backup = nil
	s.prev = nil
	s.diverged = true
	s.stMu.Unlock()
	p.cfg.DB.PutTable(st.oldView.Renamed(s.ViewName))
	p.persistShare(s)
}

// finalizeProposal records a staged proposal whose request committed.
func (p *Peer) finalizeProposal(st *stagedProposal) ProposalResult {
	s := st.s
	s.stMu.Lock()
	s.diverged = false // replica refreshed from Get(src); pair aligned
	s.stMu.Unlock()
	p.persistShare(s)
	p.record(HistoryEntry{ShareID: s.ID, Seq: st.baseSeq + 1, Kind: st.kind, Cols: st.cols, From: p.Address()})
	p.logf("proposed update on %s seq %d (cols %v)", s.ID, st.baseSeq+1, st.cols)
	return ProposalResult{ShareID: s.ID, Seq: st.baseSeq + 1, Cols: st.cols, TxID: st.tx.IDString()}
}

// ProposeUpdates proposes updates on many shares as one group commit:
// every changed share is staged, all request transactions are submitted
// in a single batch (one mempool pass, one gossip broadcast, one
// producer kick), and the commits are awaited collectively — so N
// independent updates cost one block and one cascade fan-out round
// instead of N block intervals. Per-share sequence ordering is untouched
// (each share stages under its own opMu with its own BaseSeq), and a
// denial on one share rolls back only that share.
//
// Share opMu locks are acquired in sorted ID order and held across the
// collective wait; because every multi-share acquirer uses the same
// order and single-share paths hold only one, this cannot deadlock.
//
// Shares with no changes are skipped. Successful proposals are returned
// sorted by share ID; per-share failures are joined into the returned
// error alongside the partial results.
func (p *Peer) ProposeUpdates(ctx context.Context, shareIDs []string) ([]ProposalResult, error) {
	ids := append([]string(nil), shareIDs...)
	sort.Strings(ids)
	var errs []error
	var staged []*stagedProposal
	unlock := func() {
		for _, st := range staged {
			st.s.opMu.Unlock()
		}
	}
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		s, err := p.share(id)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s.opMu.Lock()
		st, err := p.stageProposal(s)
		if err != nil {
			s.opMu.Unlock()
			if err != ErrNoChanges {
				errs = append(errs, fmt.Errorf("core: update on %s denied: %w", id, err))
			}
			continue
		}
		staged = append(staged, st)
	}
	if len(staged) == 0 {
		return nil, errors.Join(errs...)
	}

	txs := make([]*chain.Tx, len(staged))
	for i, st := range staged {
		txs[i] = st.tx
	}
	verdicts := p.submitAndWaitMany(ctx, txs)

	out := make([]ProposalResult, 0, len(staged))
	for i, st := range staged {
		if err := verdicts[i]; err != nil {
			p.rollbackProposal(st)
			errs = append(errs, fmt.Errorf("core: update on %s denied: %w", st.s.ID, err))
			continue
		}
		out = append(out, p.finalizeProposal(st))
	}
	unlock()
	return out, errors.Join(errs...)
}

// SyncShares proposes updates on every share derived from the given
// source table, returning the successful proposals sorted by share ID.
// Shares whose views are unaffected are skipped. All changed shares ride
// one group commit (ProposeUpdates): a single batch submission, one
// block, one cascade fan-out round — the many-shares fan-out of a
// hospital-scale peer. Every share is attempted even when some fail; the
// errors are joined.
func (p *Peer) SyncShares(ctx context.Context, sourceTable string) ([]ProposalResult, error) {
	p.mu.Lock()
	var ids []string
	for id, s := range p.shares {
		if s.SourceTable == sourceTable {
			ids = append(ids, id)
		}
	}
	p.mu.Unlock()
	return p.ProposeUpdates(ctx, ids)
}

// UpdateView edits the shared view directly (entry-level CRUD of Fig. 4 on
// the shared table) and immediately embeds the edit into the local source
// before proposing — so source and view never diverge locally. The edit is
// diffed against the pre-edit view and embedded along the delta path, so
// an entry-level edit costs O(changed rows) in the source.
func (p *Peer) UpdateView(ctx context.Context, shareID string, mutate func(*reldb.Table) error) (ProposalResult, error) {
	s, err := p.share(shareID)
	if err != nil {
		return ProposalResult{}, err
	}
	if err := p.embedViewEdit(s, mutate); err != nil {
		return ProposalResult{}, err
	}
	return p.ProposeUpdate(ctx, shareID)
}

// embedViewEdit applies a view-level edit and embeds it into the local
// source (the first half of UpdateView, shared with the group-commit
// path). The delta path is only sound while the stored replica equals
// the lens's current view of the source. After a rejection or denial
// rollback the two deliberately diverge (the view is restored, the
// source keeps the user's edit) — the share tracks that in its diverged
// flag, and the full put re-embeds the whole view there, exactly as
// before the delta optimization, instead of silently re-proposing the
// rejected rows alongside the new edit. The put runs inside the
// source's atomic replacement so it cannot overwrite a concurrent embed
// by another share over the same source.
func (p *Peer) embedViewEdit(s *Share, mutate func(*reldb.Table) error) error {
	view, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return err
	}
	edited := view.Clone()
	if err := mutate(edited); err != nil {
		return err
	}
	cs, err := view.Diff(edited)
	if err != nil {
		return err
	}
	s.stMu.Lock()
	diverged := s.diverged
	s.stMu.Unlock()
	err = p.cfg.DB.ReplaceTable(s.SourceTable, func(src *reldb.Table) (*reldb.Table, error) {
		var newSrc *reldb.Table
		var perr error
		if diverged {
			newSrc, perr = s.Lens.Put(src, edited)
		} else {
			newSrc, _, perr = bx.PutDelta(s.Lens, src, edited, cs)
		}
		if perr != nil {
			return nil, perr
		}
		return newSrc.Renamed(s.SourceTable), nil
	})
	if err != nil {
		return fmt.Errorf("core: put on %s: %w", s.ID, err)
	}
	return nil
}

// ViewEdit is one share's view-level mutation for UpdateViews.
type ViewEdit struct {
	ShareID string
	// Mutate edits a clone of the current view replica; its changes are
	// diffed and embedded into the source along the delta path.
	Mutate func(*reldb.Table) error
}

// UpdateViews applies view-level edits on many shares and proposes all
// of them as ONE group commit: every edit is embedded into its source
// (UpdateView's first half), then the changed shares ride a single
// ProposeUpdates batch — one block, one gossip broadcast, one cascade
// round. This is the serving edge's write-coalescing hook: concurrent
// API writes that land in the same coalescing window become one batch
// here instead of N independent block commits.
//
// Multiple edits targeting the same share are applied in order within
// one proposal. An edit whose mutation or embed fails is dropped from
// the batch (its error is joined into the returned error); the
// remaining shares still commit. Successful proposals are returned
// sorted by share ID, exactly like ProposeUpdates.
func (p *Peer) UpdateViews(ctx context.Context, edits []ViewEdit) ([]ProposalResult, error) {
	var errs []error
	var ids []string
	seen := make(map[string]bool, len(edits))
	for _, e := range edits {
		s, err := p.share(e.ShareID)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := p.embedViewEdit(s, e.Mutate); err != nil {
			errs = append(errs, err)
			continue
		}
		if !seen[e.ShareID] {
			seen[e.ShareID] = true
			ids = append(ids, e.ShareID)
		}
	}
	if len(ids) == 0 {
		return nil, errors.Join(errs...)
	}
	props, err := p.ProposeUpdates(ctx, ids)
	if err != nil {
		errs = append(errs, err)
	}
	return props, errors.Join(errs...)
}

// WaitForShare blocks until the share's metadata is visible on this
// peer's node. Registration commits on the initiator's node first; peers
// attached to other nodes see it after the block gossips over.
func (p *Peer) WaitForShare(ctx context.Context, shareID string) (*sharereg.Meta, error) {
	for {
		meta, err := p.Meta(shareID)
		if err == nil {
			return meta, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("core: waiting for share %s: %w", shareID, ctx.Err())
		case <-p.cfg.Clock.After(pollInterval):
		}
	}
}

// WaitFinal blocks until the share's on-chain sequence reaches seq (all
// peers acknowledged — the paper's gate for further operations).
func (p *Peer) WaitFinal(ctx context.Context, shareID string, seq uint64) error {
	for {
		meta, err := p.Meta(shareID)
		if err != nil {
			return err
		}
		if meta.Seq >= seq {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("core: waiting for %s seq %d: %w", shareID, seq, ctx.Err())
		case <-p.cfg.Clock.After(pollInterval):
		}
	}
}

// SetPermission changes the allowed writers for one attribute. The caller
// must hold the share's authority (Fig. 3 "Authority to change
// permission").
func (p *Peer) SetPermission(ctx context.Context, shareID, column string, writers []identity.Address) error {
	tx, err := p.buildTx(sharereg.FnSetPermission, shareID, sharereg.PermissionArgs{
		ShareID: shareID, Column: column, Writers: writers,
	})
	if err != nil {
		return err
	}
	_, err = p.submitAndWait(ctx, tx)
	return err
}

// TransferAuthority assigns the permission-changing authority to another
// sharing peer.
func (p *Peer) TransferAuthority(ctx context.Context, shareID string, to identity.Address) error {
	tx, err := p.buildTx(sharereg.FnSetAuthority, shareID, sharereg.AuthorityArgs{
		ShareID: shareID, Authority: to,
	})
	if err != nil {
		return err
	}
	_, err = p.submitAndWait(ctx, tx)
	return err
}

// RemoveShare deletes the share's on-chain metadata (table-level Delete of
// Fig. 4) and drops the local binding. Only the owner may remove.
func (p *Peer) RemoveShare(ctx context.Context, shareID string) error {
	tx, err := p.buildTx(sharereg.FnRemove, shareID, nil)
	if err != nil {
		return err
	}
	tx.Args = [][]byte{[]byte(shareID)}
	tx.Sign(p.cfg.Identity)
	if _, err := p.submitAndWait(ctx, tx); err != nil {
		return err
	}
	p.mu.Lock()
	s, ok := p.shares[shareID]
	delete(p.shares, shareID)
	p.mu.Unlock()
	if ok {
		_ = p.cfg.DB.Drop(s.ViewName)
		p.persistShareRemoval(shareID)
	}
	p.record(HistoryEntry{ShareID: shareID, Kind: "remove"})
	return nil
}

func metaHasPeer(m *sharereg.Meta, addr identity.Address) bool {
	for _, a := range m.Peers {
		if a == addr {
			return true
		}
	}
	return false
}

func updateKind(cs reldb.Changeset) string {
	switch {
	case len(cs.Updated) > 0 && len(cs.Inserted) == 0 && len(cs.Deleted) == 0:
		return "update"
	case len(cs.Inserted) > 0 && len(cs.Updated) == 0 && len(cs.Deleted) == 0:
		return "create"
	case len(cs.Deleted) > 0 && len(cs.Updated) == 0 && len(cs.Inserted) == 0:
		return "delete"
	default:
		return "table"
	}
}
