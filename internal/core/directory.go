package core

import (
	"sync"

	"medshare/internal/identity"
)

// Directory maps peer addresses to data-channel endpoint names. It stands
// in for out-of-band peer discovery (in a deployment this would be DNS or
// configuration; discovery is orthogonal to the paper's design).
type Directory struct {
	mu sync.RWMutex
	m  map[identity.Address]string
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{m: make(map[identity.Address]string)}
}

// Set records the endpoint name for an address.
func (d *Directory) Set(addr identity.Address, endpoint string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[addr] = endpoint
}

// Lookup returns the endpoint name for an address.
func (d *Directory) Lookup(addr identity.Address) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ep, ok := d.m[addr]
	return ep, ok
}
