package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"medshare/internal/reldb"
)

// The anti-entropy response frame: a compact binary encoding replacing
// the JSON node summaries that used to dominate sync traffic. A child
// summary is now its storage key, its raw 32-byte digest, and a varint
// size — against base64-in-JSON that roughly halves the per-node
// overhead (a digest alone shrank from 44 quoted base64 characters plus
// a field name to 33 bytes). Rows still travel as their canonical JSON
// encoding (length-prefixed) — they are typed values with an
// established codec, and row bytes are divergence-proportional rather
// than per-node overhead. Requests use the same varint framing (see
// appendSyncRequest below): a pipelined walk sends one request per wave
// chunk, so per-request key lists are no longer negligible, and
// base64-in-JSON storage keys cost ~1.4x the raw bytes. The request's
// canonical signing bytes are still computed separately
// (SyncRequest.signingBytes) — the frame is transport encoding, not the
// signature preimage.
//
// Response frame layout (all integers varint unless noted):
//
//	version byte (syncWireVersion)
//	shareID: len ‖ bytes
//	seq
//	root: len ‖ raw bytes (32)
//	flags byte (bit0 = empty view)
//	node count, then per node:
//	  key: len ‖ bytes
//	  row: len ‖ canonical JSON
//	  child mask byte (bit0 left, bit1 right), then per present child:
//	    key: len ‖ bytes, digest: len ‖ raw bytes, size
//	subtree count, then per subtree:
//	  key: len ‖ bytes
//	  row count, then per row: len ‖ canonical JSON

// syncWireVersion tags the frame layout.
const syncWireVersion = 1

// syncWireMaxLen caps any single length field while decoding, so a
// corrupt frame cannot drive a huge allocation before the bounds check.
const syncWireMaxLen = 1 << 28

// errSyncWire marks a malformed binary sync frame.
var errSyncWire = fmt.Errorf("core: malformed sync frame")

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendJSON(dst []byte, v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return appendBytes(dst, raw), nil
}

func appendSyncChild(dst []byte, c *SyncChild) []byte {
	dst = appendBytes(dst, c.Key)
	dst = appendBytes(dst, c.Digest)
	return binary.AppendUvarint(dst, uint64(c.Size))
}

// appendSyncResponse encodes r into the binary frame.
func appendSyncResponse(dst []byte, r *SyncResponse) ([]byte, error) {
	var err error
	dst = append(dst, syncWireVersion)
	dst = appendBytes(dst, []byte(r.ShareID))
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = appendBytes(dst, r.Root)
	var flags byte
	if r.Empty {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(r.Nodes)))
	for _, n := range r.Nodes {
		dst = appendBytes(dst, n.Key)
		if dst, err = appendJSON(dst, n.Row); err != nil {
			return nil, err
		}
		var mask byte
		if n.Left != nil {
			mask |= 1
		}
		if n.Right != nil {
			mask |= 2
		}
		dst = append(dst, mask)
		if n.Left != nil {
			dst = appendSyncChild(dst, n.Left)
		}
		if n.Right != nil {
			dst = appendSyncChild(dst, n.Right)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Subtrees)))
	for _, st := range r.Subtrees {
		dst = appendBytes(dst, st.Key)
		dst = binary.AppendUvarint(dst, uint64(len(st.Rows)))
		for _, row := range st.Rows {
			if dst, err = appendJSON(dst, row); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

// syncWireReader walks a frame with bounds checking.
type syncWireReader struct {
	buf []byte
}

func (r *syncWireReader) byte() (byte, error) {
	if len(r.buf) == 0 {
		return 0, errSyncWire
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

func (r *syncWireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, errSyncWire
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *syncWireReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > syncWireMaxLen || n > uint64(len(r.buf)) {
		return nil, errSyncWire
	}
	out := r.buf[:n:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *syncWireReader) row() (reldb.Row, error) {
	raw, err := r.bytes()
	if err != nil {
		return nil, err
	}
	var row reldb.Row
	if err := json.Unmarshal(raw, &row); err != nil {
		return nil, fmt.Errorf("%w: %v", errSyncWire, err)
	}
	return row, nil
}

func (r *syncWireReader) child() (*SyncChild, error) {
	key, err := r.bytes()
	if err != nil {
		return nil, err
	}
	dig, err := r.bytes()
	if err != nil {
		return nil, err
	}
	size, err := r.uvarint()
	if err != nil || size > syncWireMaxLen {
		return nil, errSyncWire
	}
	return &SyncChild{Key: key, Digest: dig, Size: int(size)}, nil
}

// decodeSyncResponse parses a frame produced by appendSyncResponse.
func decodeSyncResponse(raw []byte) (SyncResponse, error) {
	r := syncWireReader{buf: raw}
	var out SyncResponse
	ver, err := r.byte()
	if err != nil || ver != syncWireVersion {
		return out, errSyncWire
	}
	id, err := r.bytes()
	if err != nil {
		return out, err
	}
	out.ShareID = string(id)
	if out.Seq, err = r.uvarint(); err != nil {
		return out, err
	}
	if out.Root, err = r.bytes(); err != nil {
		return out, err
	}
	flags, err := r.byte()
	if err != nil {
		return out, err
	}
	out.Empty = flags&1 != 0
	nNodes, err := r.uvarint()
	if err != nil || nNodes > syncWireMaxLen {
		return out, errSyncWire
	}
	for i := uint64(0); i < nNodes; i++ {
		var n SyncNode
		if n.Key, err = r.bytes(); err != nil {
			return out, err
		}
		if n.Row, err = r.row(); err != nil {
			return out, err
		}
		mask, err := r.byte()
		if err != nil {
			return out, err
		}
		if mask&1 != 0 {
			if n.Left, err = r.child(); err != nil {
				return out, err
			}
		}
		if mask&2 != 0 {
			if n.Right, err = r.child(); err != nil {
				return out, err
			}
		}
		out.Nodes = append(out.Nodes, n)
	}
	nSub, err := r.uvarint()
	if err != nil || nSub > syncWireMaxLen {
		return out, errSyncWire
	}
	for i := uint64(0); i < nSub; i++ {
		var st SyncSubtree
		if st.Key, err = r.bytes(); err != nil {
			return out, err
		}
		nRows, err := r.uvarint()
		if err != nil || nRows > syncWireMaxLen {
			return out, errSyncWire
		}
		for j := uint64(0); j < nRows; j++ {
			row, err := r.row()
			if err != nil {
				return out, err
			}
			st.Rows = append(st.Rows, row)
		}
		out.Subtrees = append(out.Subtrees, st)
	}
	if len(r.buf) != 0 {
		return out, errSyncWire
	}
	return out, nil
}

// The request frame mirrors the response frame's varint style:
//
//	version byte (syncWireVersion)
//	shareID: len ‖ bytes
//	minSeq
//	span
//	node-key count, then per key: len ‖ bytes
//	row-key count, then per key: len ‖ bytes
//	requester: len ‖ raw address bytes (must be identity.AddressLen)
//	pubKey: len ‖ bytes
//	tsMicro (int64 as uint64)
//	sig: len ‖ bytes

// appendSyncRequest encodes r into the binary request frame.
func appendSyncRequest(dst []byte, r *SyncRequest) []byte {
	dst = append(dst, syncWireVersion)
	dst = appendBytes(dst, []byte(r.ShareID))
	dst = binary.AppendUvarint(dst, r.MinSeq)
	dst = binary.AppendUvarint(dst, uint64(r.Span))
	dst = binary.AppendUvarint(dst, uint64(len(r.Keys)))
	for _, k := range r.Keys {
		dst = appendBytes(dst, k)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.RowKeys)))
	for _, k := range r.RowKeys {
		dst = appendBytes(dst, k)
	}
	dst = appendBytes(dst, r.Requester[:])
	dst = appendBytes(dst, r.PubKey)
	dst = binary.AppendUvarint(dst, uint64(r.TsMicro))
	return appendBytes(dst, r.Sig)
}

func (r *syncWireReader) keyList() ([][]byte, error) {
	n, err := r.uvarint()
	if err != nil || n > syncWireMaxLen {
		return nil, errSyncWire
	}
	// A key is at least one length byte; reject counts the buffer cannot
	// possibly satisfy before allocating.
	if n > uint64(len(r.buf)) {
		return nil, errSyncWire
	}
	out := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.bytes()
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// decodeSyncRequest parses a frame produced by appendSyncRequest.
func decodeSyncRequest(raw []byte) (SyncRequest, error) {
	r := syncWireReader{buf: raw}
	var out SyncRequest
	ver, err := r.byte()
	if err != nil || ver != syncWireVersion {
		return out, errSyncWire
	}
	id, err := r.bytes()
	if err != nil {
		return out, err
	}
	out.ShareID = string(id)
	if out.MinSeq, err = r.uvarint(); err != nil {
		return out, err
	}
	span, err := r.uvarint()
	if err != nil || span > syncMaxSpan {
		return out, errSyncWire
	}
	out.Span = int(span)
	if out.Keys, err = r.keyList(); err != nil {
		return out, err
	}
	if out.RowKeys, err = r.keyList(); err != nil {
		return out, err
	}
	addr, err := r.bytes()
	if err != nil {
		return out, err
	}
	if len(addr) != len(out.Requester) {
		return out, errSyncWire
	}
	copy(out.Requester[:], addr)
	if out.PubKey, err = r.bytes(); err != nil {
		return out, err
	}
	ts, err := r.uvarint()
	if err != nil {
		return out, err
	}
	out.TsMicro = int64(ts)
	if out.Sig, err = r.bytes(); err != nil {
		return out, err
	}
	if len(r.buf) != 0 {
		return out, errSyncWire
	}
	return out, nil
}
