package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

func syncTestSchema() reldb.Schema {
	return reldb.Schema{
		Name: "T",
		Columns: []reldb.Column{
			{Name: "k", Type: reldb.KindInt},
			{Name: "v", Type: reldb.KindString},
		},
		Key: []string{"k"},
	}
}

func syncTestTable(rows int) *reldb.Table {
	tbl := reldb.MustNewTable(syncTestSchema())
	for i := int64(0); i < int64(rows); i++ {
		tbl.MustInsert(reldb.Row{reldb.I(i), reldb.S(fmt.Sprintf("v%d", i))})
	}
	return tbl
}

// syncHarness wires two peers (sharing one PoA node) whose data channel
// runs on caller-supplied transports — memnet or real TCP.
type syncHarness struct {
	ctx  context.Context
	node *node.Node
	a, b *Peer
}

func newSyncHarness(t *testing.T, rows int, ta, tb p2p.Transport) *syncHarness {
	return newSyncHarnessTweak(t, rows, ta, tb, nil)
}

// newSyncHarnessTweak is newSyncHarness with a per-peer Config hook (the
// resilience tests tune retry, health, and repair-loop settings).
func newSyncHarnessTweak(t *testing.T, rows int, ta, tb p2p.Transport, tweak func(name string, cfg *Config)) *syncHarness {
	t.Helper()
	nid := identity.MustNew("node")
	n, err := node.New(node.Config{
		NetworkName:   "sync-test",
		Identity:      nid,
		Engine:        consensus.NewPoA(false, nid.Address()),
		Registry:      contract.NewRegistry(sharereg.New()),
		BlockInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	n.Start(ctx)
	t.Cleanup(n.Stop)

	dir := NewDirectory()
	mk := func(name string, tr p2p.Transport) *Peer {
		id := identity.MustNew(name)
		db := reldb.NewDatabase(name)
		db.PutTable(syncTestTable(rows))
		cfg := Config{
			Identity: id, DB: db, Node: n,
			Transport: tr, Directory: dir,
		}
		if tweak != nil {
			tweak(name, &cfg)
		}
		p, err := NewPeer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		t.Cleanup(p.Stop)
		return p
	}
	h := &syncHarness{ctx: ctx, node: n, a: mk("A", ta), b: mk("B", tb)}

	lens := func(view string) bx.Lens {
		// Inserts and deletes allowed: the cold-replica path re-embeds a
		// full view into an empty source.
		return bx.Project(view, []string{"k", "v"}, nil).
			WithInsert(bx.PolicyApply, nil).
			WithDelete(bx.PolicyApply)
	}
	err = h.a.RegisterShare(ctx, RegisterShareArgs{
		ID: "S", SourceTable: "T", Lens: lens("Sa"), ViewName: "Sa",
		Peers: []identity.Address{h.a.Address(), h.b.Address()},
		WritePerm: map[string][]identity.Address{
			"v": {h.a.Address(), h.b.Address()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.b.AttachShare("S", "T", lens("Sb"), "Sb"); err != nil {
		t.Fatal(err)
	}
	return h
}

// finalizedUpdate drives one A-side update through to finality (B acks
// via its event loop).
func (h *syncHarness) finalizedUpdate(t *testing.T, key int64, val string) uint64 {
	t.Helper()
	err := h.a.UpdateSource("T", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(key)}, map[string]reldb.Value{"v": reldb.S(val)})
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.a.ProposeUpdate(h.ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.a.WaitFinal(h.ctx, "S", res.Seq); err != nil {
		t.Fatal(err)
	}
	return res.Seq
}

// rollback restores peer b's share state to an earlier snapshot — the
// white-box stand-in for a replica restored from an old backup (the
// cold/long-diverged case the structural sync exists for).
func (h *syncHarness) rollback(t *testing.T, seq uint64, src, view *reldb.Table) {
	t.Helper()
	s, err := h.b.share("S")
	if err != nil {
		t.Fatal(err)
	}
	s.stMu.Lock()
	s.AppliedSeq = seq
	s.prev = nil
	s.backup = nil
	s.stMu.Unlock()
	h.b.cfg.DB.PutTable(src.Renamed(s.SourceTable))
	h.b.cfg.DB.PutTable(view.Renamed(s.ViewName))
}

// waitApplied polls until b's applied sequence reaches seq.
func (h *syncHarness) waitApplied(t *testing.T, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info, err := h.b.ShareInfo("S")
		if err != nil {
			t.Fatal(err)
		}
		if info.AppliedSeq >= seq {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("peer B never reached seq %d", seq)
}

// testSyncConvergence is the transport-parameterized body: a diverged
// and then a cold replica must converge to the updater's Merkle root
// through the structural sync path, grafting what they already hold.
func testSyncConvergence(t *testing.T, rows int, ta, tb p2p.Transport) {
	h := newSyncHarness(t, rows, ta, tb)

	// Snapshot B's state at seq 0.
	src0, err := h.b.Source("T")
	if err != nil {
		t.Fatal(err)
	}
	view0, err := h.b.View("S")
	if err != nil {
		t.Fatal(err)
	}

	// Three finalized updates (B applies and acks each live).
	var last uint64
	for i := 0; i < 3; i++ {
		last = h.finalizedUpdate(t, int64(i*7+1), fmt.Sprintf("upd%d", i))
	}
	h.waitApplied(t, last)

	aView, err := h.a.View("S")
	if err != nil {
		t.Fatal(err)
	}

	// Long-diverged: roll B back to its seq-0 snapshot, then probe the
	// structural sync directly for stats.
	h.rollback(t, 0, src0, view0)
	synced, seq, stats, err := h.b.StructuralSync(h.ctx, h.a.Address(), "S", last)
	if err != nil {
		t.Fatal(err)
	}
	if seq != last {
		t.Fatalf("sync served seq %d, want %d", seq, last)
	}
	if synced.RowsRoot() != aView.RowsRoot() {
		t.Fatal("structural sync did not reproduce the updater's Merkle root")
	}
	if stats.RowsGrafted < rows/2 {
		t.Fatalf("diverged sync grafted only %d of %d rows (should reuse the overlap)", stats.RowsGrafted, rows)
	}
	transferred := stats.RowsInline + stats.NodesFetched
	if transferred >= rows/4 {
		t.Fatalf("diverged sync transferred %d row-bearing units for a 3-row divergence on %d rows", transferred, rows)
	}

	// Now converge for real through Resync (verify + put + state).
	if err := h.b.Resync(h.ctx); err != nil {
		t.Fatal(err)
	}
	bView, err := h.b.View("S")
	if err != nil {
		t.Fatal(err)
	}
	if bView.RowsRoot() != aView.RowsRoot() {
		t.Fatal("replicas did not converge after resync")
	}
	info, err := h.b.ShareInfo("S")
	if err != nil {
		t.Fatal(err)
	}
	if info.AppliedSeq != last {
		t.Fatalf("B applied seq %d, want %d", info.AppliedSeq, last)
	}
	// The put must have re-embedded the updates into B's source.
	bSrc, err := h.b.Source("T")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := bSrc.Value(reldb.Row{reldb.I(1)}, "v"); err != nil || v.String() != "upd0" {
		t.Fatalf("source not realigned after sync: %v %v", v, err)
	}

	// Cold: empty source and view, applied 0 — everything transfers,
	// and the replica still converges.
	h.rollback(t, 0, reldb.MustNewTable(syncTestSchema()), reldb.MustNewTable(syncTestSchema()))
	_, _, coldStats, err := h.b.StructuralSync(h.ctx, h.a.Address(), "S", last)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.RowsGrafted != 0 {
		t.Fatalf("cold sync grafted %d rows from an empty replica", coldStats.RowsGrafted)
	}
	if err := h.b.Resync(h.ctx); err != nil {
		t.Fatal(err)
	}
	bView, err = h.b.View("S")
	if err != nil {
		t.Fatal(err)
	}
	if bView.RowsRoot() != aView.RowsRoot() {
		t.Fatal("cold replica did not converge after resync")
	}
}

func TestStructuralSyncConvergenceMemnet(t *testing.T) {
	mem := p2p.NewMemNetwork()
	testSyncConvergence(t, 512, mem.Endpoint("A"), mem.Endpoint("B"))
}

func TestStructuralSyncConvergenceTCP(t *testing.T) {
	ta, err := p2p.NewTCPTransport("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ta.Close() })
	tb, err := p2p.NewTCPTransport("B", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tb.Close() })
	ta.AddPeer("B", tb.Addr())
	tb.AddPeer("A", ta.Addr())
	testSyncConvergence(t, 256, ta, tb)
}

// TestSimulatedSyncBytes pins the headline claim: a d-row divergence on
// a 10k-row view syncs with a small fraction of the full-view payload.
func TestSimulatedSyncBytes(t *testing.T) {
	const rows, d = 10000, 16
	provider := syncTestTable(rows)
	base := provider.Clone()
	for i := 0; i < d; i++ {
		if err := base.Update(reldb.Row{reldb.I(int64(i * 613))}, map[string]reldb.Value{"v": reldb.S("stale")}); err != nil {
			t.Fatal(err)
		}
	}
	out, stats, err := SimulateStructuralSync(provider, base)
	if err != nil {
		t.Fatal(err)
	}
	if out.RowsRoot() != provider.RowsRoot() {
		t.Fatal("simulated sync did not converge")
	}
	full, err := reldb.MarshalTable(provider)
	if err != nil {
		t.Fatal(err)
	}
	// Scattered divergence: d independent O(log n) paths. The binary
	// frame (raw 32-byte digests, varint sizes) plus requester-driven
	// row fetch pin this well below the old base64-JSON protocol's 20%.
	syncBytes := stats.BytesSent + stats.BytesReceived
	if syncBytes*8 >= len(full) {
		t.Fatalf("sync moved %d bytes for a scattered %d-row divergence; full payload is %d (want <12.5%%)", syncBytes, d, len(full))
	}
	// Per-unit byte budget: a fetched node is one key, one row, and two
	// compact child summaries; an inline row is its JSON plus framing. A
	// return to JSON node summaries (~450 B each) blows this bound.
	budget := 200*stats.NodesFetched + 100*stats.RowsInline + 64*stats.Rounds + 512
	if stats.BytesReceived >= budget {
		t.Fatalf("response frames cost %d bytes for %d nodes + %d inline rows (budget %d): per-node overhead regressed",
			stats.BytesReceived, stats.NodesFetched, stats.RowsInline, budget)
	}
	// Most rows never cross the wire: rows ship only on explicit request
	// for subtrees the requester could not match.
	if stats.RowsGrafted < rows*9/10 {
		t.Fatalf("grafted only %d of %d rows", stats.RowsGrafted, rows)
	}
	if stats.RowsInline > 32*d {
		t.Fatalf("shipped %d rows for a %d-row divergence (speculative inlining?)", stats.RowsInline, d)
	}

	// Contiguous divergence (the one-subtree case): the paths share all
	// but their last hops, so even 4d changed rows cost a tiny fraction.
	contig := provider.Clone()
	for i := 0; i < 4*d; i++ {
		if err := contig.Update(reldb.Row{reldb.I(int64(5000 + i))}, map[string]reldb.Value{"v": reldb.S("stale")}); err != nil {
			t.Fatal(err)
		}
	}
	out3, cStats, err := SimulateStructuralSync(provider, contig)
	if err != nil {
		t.Fatal(err)
	}
	if out3.RowsRoot() != provider.RowsRoot() {
		t.Fatal("contiguous-divergence sync did not converge")
	}
	cBytes := cStats.BytesSent + cStats.BytesReceived
	if cBytes*30 >= len(full) {
		t.Fatalf("one-subtree divergence moved %d bytes of a %d-byte view (want <3.3%%)", cBytes, len(full))
	}

	// Cold start converges too (bytes necessarily ~full size).
	empty := reldb.MustNewTable(syncTestSchema())
	out2, _, err := SimulateStructuralSync(provider, empty)
	if err != nil {
		t.Fatal(err)
	}
	if out2.RowsRoot() != provider.RowsRoot() {
		t.Fatal("cold simulated sync did not converge")
	}
	// And syncing two identical tables moves one round and zero rows.
	same, sStats, err := SimulateStructuralSync(provider, provider.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if same.RowsRoot() != provider.RowsRoot() || sStats.RowsInline != 0 {
		t.Fatal("identical-table sync transferred rows")
	}
}

// TestShareViewsArePrioritySeeded: registering a share draws a random
// priority secret into the on-chain metadata, every replica stores its
// view under it (identical, unpredictable tree shapes — equal Merkle
// roots), and the seeded shape survives the update cycle. An unkeyed
// rebuild of the same contents has a different root, which is exactly
// the point: nobody without the secret can reproduce (or grind) the
// shape.
func TestShareViewsArePrioritySeeded(t *testing.T) {
	mem := p2p.NewMemNetwork()
	h := newSyncHarness(t, 64, mem.Endpoint("A"), mem.Endpoint("B"))

	meta, err := h.a.Meta("S")
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.PrioSeed) == 0 {
		t.Fatal("share registered without a priority seed")
	}
	av, err := h.a.View("S")
	if err != nil {
		t.Fatal(err)
	}
	bv, err := h.b.View("S")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []*reldb.Table{av, bv} {
		if string(v.PrioritySecret()) != string(meta.PrioSeed) {
			t.Fatal("stored replica does not carry the share's priority seed")
		}
	}
	if av.RowsRoot() != bv.RowsRoot() {
		t.Fatal("seeded replicas disagree on the Merkle root")
	}
	unkeyed := av.Reseeded(nil)
	if !unkeyed.Equal(av) {
		t.Fatal("reseeding changed contents")
	}
	if unkeyed.RowsRoot() == av.RowsRoot() {
		t.Fatal("seeded shape equals the unkeyed shape: the seed is not keying priorities")
	}

	// A finalized update (B applies via fetch + delta put) keeps both
	// replicas in the seeded shape.
	seq := h.finalizedUpdate(t, 5, "seeded-edit")
	h.waitApplied(t, seq)
	av, _ = h.a.View("S")
	bv, _ = h.b.View("S")
	if av.RowsRoot() != bv.RowsRoot() {
		t.Fatal("replicas diverged after a seeded update")
	}
	if string(bv.PrioritySecret()) != string(meta.PrioSeed) {
		t.Fatal("replica lost its priority seed across an update")
	}
}

// TestServeSyncRejectsUnauthorized: the sync RPC applies the same
// signature and membership gates as the fetch RPC.
func TestServeSyncRejectsUnauthorized(t *testing.T) {
	mem := p2p.NewMemNetwork()
	h := newSyncHarness(t, 32, mem.Endpoint("A"), mem.Endpoint("B"))
	outsider := identity.MustNew("Mallory")
	req := SyncRequest{
		ShareID:   "S",
		Requester: outsider.Address(),
		PubKey:    append([]byte(nil), outsider.PublicKey()...),
		TsMicro:   time.Now().UnixMicro(),
	}
	req.Sig = outsider.Sign(req.signingBytes())
	payload := appendSyncRequest(nil, &req)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ep := mem.Endpoint("M")
	if _, err := ep.Request(ctx, "A", p2p.Message{Kind: p2p.KindSync, Payload: payload}); err == nil {
		t.Fatal("outsider sync request served")
	}
	// A member with a bad signature is rejected too.
	req.Requester = h.b.Address()
	req.PubKey = append([]byte(nil), h.b.cfg.Identity.PublicKey()...)
	req.Sig = []byte("bogus")
	payload = appendSyncRequest(nil, &req)
	if _, err := ep.Request(ctx, "A", p2p.Message{Kind: p2p.KindSync, Payload: payload}); err == nil {
		t.Fatal("bad signature served")
	}
	// A member with a valid signature over a tampered span is rejected:
	// the span is part of the signing preimage, so a relay cannot
	// inflate a captured request's response amplification.
	req.Span = 1
	req.Sig = h.b.cfg.Identity.Sign(req.signingBytes())
	req.Span = 3
	payload = appendSyncRequest(nil, &req)
	if _, err := ep.Request(ctx, "A", p2p.Message{Kind: p2p.KindSync, Payload: payload}); err == nil {
		t.Fatal("span-tampered request served")
	}
	// The old JSON request encoding is no longer accepted.
	req.Span = 1
	if _, err := ep.Request(ctx, "A", p2p.Message{Kind: p2p.KindSync, Payload: []byte(`{"shareId":"S"}`)}); err == nil {
		t.Fatal("JSON sync request served")
	}
}

// TestSyncSpanCutsRounds pins the tentpole latency claim: for a 16-row
// divergence, the span-expanded pipelined walk completes in strictly
// fewer round-trips than the serial one-level-per-round walk, while
// converging to the same root and shipping the same inline rows.
func TestSyncSpanCutsRounds(t *testing.T) {
	const rows, d = 10000, 16
	provider := syncTestTable(rows)
	base := provider.Clone()
	for i := 0; i < d; i++ {
		if err := base.Update(reldb.Row{reldb.I(int64(i * 613))}, map[string]reldb.Value{"v": reldb.S("stale")}); err != nil {
			t.Fatal(err)
		}
	}
	serialOut, serial, err := SimulateStructuralSyncOpts(provider, base, SyncOptions{Span: -1, Parallel: -1})
	if err != nil {
		t.Fatal(err)
	}
	fastOut, fast, err := SimulateStructuralSyncOpts(provider, base, SyncOptions{Span: 2, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serialOut.RowsRoot() != provider.RowsRoot() || fastOut.RowsRoot() != provider.RowsRoot() {
		t.Fatal("sync did not converge")
	}
	if fast.Rounds >= serial.Rounds {
		t.Fatalf("span-expanded walk took %d rounds, serial walk %d: expansion did not cut the round count", fast.Rounds, serial.Rounds)
	}
	// The serial walk sends exactly one request per round; the pipelined
	// walk may chunk a wave but never sends more than Parallel per wave.
	if serial.Requests != serial.Rounds {
		t.Fatalf("serial walk sent %d requests over %d rounds", serial.Requests, serial.Rounds)
	}
	if fast.Requests < fast.Rounds || fast.Requests > 8*fast.Rounds {
		t.Fatalf("pipelined walk sent %d requests over %d rounds", fast.Requests, fast.Rounds)
	}
	// Speculation costs bounded summary bytes, never extra rows: the
	// inline row set is exactly the divergent small subtrees either way.
	if fast.RowsInline != serial.RowsInline {
		t.Fatalf("span walk shipped %d inline rows, serial %d", fast.RowsInline, serial.RowsInline)
	}
	if fast.RowsGrafted != serial.RowsGrafted {
		t.Fatalf("span walk grafted %d rows, serial %d", fast.RowsGrafted, serial.RowsGrafted)
	}
	// Waste bound: expansion ships at most one matched sibling per
	// expanded level of a lone divergent path, so the node count stays
	// within a small multiple of the serial walk's.
	if fast.NodesFetched > 3*serial.NodesFetched {
		t.Fatalf("span walk fetched %d nodes, serial %d: speculation overhead exceeds 3x", fast.NodesFetched, serial.NodesFetched)
	}
}
