package core

import (
	"context"
	"crypto/ed25519"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"medshare/internal/identity"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// The data channel: when the contract notifies peers of an admitted
// update, they fetch the new view payload directly from the updating peer
// ("Request updated data" / "Send updated data" in Fig. 2). The payload
// never touches the blockchain; the chain holds only its hash.

// FetchRequest asks a counterparty for the current payload of a share.
// The request is signed so that only sharing peers can read the data even
// if the transport is reachable by others.
type FetchRequest struct {
	ShareID string `json:"shareId"`
	// MinSeq is the lowest acceptable version (the seq announced in the
	// update event).
	MinSeq uint64 `json:"minSeq"`
	// HaveSeq is the version the requester already holds (0 = none). If
	// the server retains that version it responds with a row-level
	// changeset instead of the full view.
	HaveSeq uint64 `json:"haveSeq,omitempty"`
	// Requester and PubKey identify the caller; Sig signs the canonical
	// request bytes.
	Requester identity.Address `json:"requester"`
	PubKey    []byte           `json:"pubKey"`
	TsMicro   int64            `json:"ts"`
	Sig       []byte           `json:"sig"`
}

// signingBytes is the canonical byte string covered by Sig.
func (r *FetchRequest) signingBytes() []byte {
	out := make([]byte, 0, len(r.ShareID)+8+len(r.Requester)+8)
	out = append(out, "medshare-fetch:"...)
	out = append(out, r.ShareID...)
	out = binary.BigEndian.AppendUint64(out, r.MinSeq)
	out = binary.BigEndian.AppendUint64(out, r.HaveSeq)
	out = append(out, r.Requester[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(r.TsMicro))
	return out
}

// Fetch response modes.
const (
	// FetchModeFull carries the whole view table.
	FetchModeFull = "full"
	// FetchModeDelta carries a changeset from the requester's HaveSeq.
	FetchModeDelta = "delta"
)

// FetchResponse returns the payload and the version it corresponds to.
// The receiver always verifies the reconstructed table against the
// on-chain payload hash, so a corrupt or malicious delta cannot install
// bad data.
type FetchResponse struct {
	ShareID string `json:"shareId"`
	Seq     uint64 `json:"seq"`
	// Mode is FetchModeFull or FetchModeDelta.
	Mode string `json:"mode"`
	// Table is the reldb JSON encoding of the current view (full mode).
	Table json.RawMessage `json:"table,omitempty"`
	// Changeset transforms the requester's HaveSeq version into Seq
	// (delta mode).
	Changeset json.RawMessage `json:"changeset,omitempty"`
}

// authorizeShareRequest is the shared gate of the data-channel RPCs
// (payload fetch and structural sync): verify the signature over the
// request's canonical bytes, check contract membership, resolve the
// local share binding, and enforce the minimum served version. Serving
// reads only the share's own state (per-share mutex) and chain
// metadata — a request on one share never waits behind operations on
// the peer's other shares.
func (p *Peer) authorizeShareRequest(shareID string, requester identity.Address, pubKey, signed, sig []byte, minSeq uint64) (*Share, uint64, error) {
	if len(pubKey) != ed25519.PublicKeySize {
		return nil, 0, ErrNotAuthorized
	}
	if err := identity.Verify(requester, ed25519.PublicKey(pubKey), signed, sig); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrNotAuthorized, err)
	}
	meta, err := p.Meta(shareID)
	if err != nil {
		return nil, 0, err
	}
	if !metaHasPeer(meta, requester) {
		return nil, 0, fmt.Errorf("%w: %s on %s", ErrNotAuthorized, requester, shareID)
	}
	s, err := p.share(shareID)
	if err != nil {
		return nil, 0, err
	}
	s.stMu.Lock()
	seq := s.AppliedSeq
	s.stMu.Unlock()
	if seq < minSeq {
		return nil, 0, fmt.Errorf("%w: have seq %d, want %d", ErrStaleData, seq, minSeq)
	}
	return s, seq, nil
}

// serveDataFetch is the request handler on the peer's transport endpoint.
func (p *Peer) serveDataFetch(msg p2p.Message) (p2p.Message, error) {
	if msg.Kind != p2p.KindDataFetch {
		return p2p.Message{}, fmt.Errorf("core: unexpected message kind %q", msg.Kind)
	}
	var req FetchRequest
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return p2p.Message{}, fmt.Errorf("core: bad fetch request: %w", err)
	}
	s, seq, err := p.authorizeShareRequest(req.ShareID, req.Requester, req.PubKey, req.signingBytes(), req.Sig, req.MinSeq)
	if err != nil {
		return p2p.Message{}, err
	}
	var prevView *reldb.Table
	s.stMu.Lock()
	if s.prev != nil && req.HaveSeq > 0 && s.prev.seq == req.HaveSeq {
		prevView = s.prev.view
	}
	s.stMu.Unlock()
	view, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return p2p.Message{}, err
	}

	out := FetchResponse{ShareID: req.ShareID, Seq: seq, Mode: FetchModeFull}
	if prevView != nil {
		if cs, err := prevView.Diff(view.Renamed(prevView.Name())); err == nil {
			if raw, err := reldb.MarshalChangeset(cs); err == nil {
				out.Mode = FetchModeDelta
				out.Changeset = raw
			}
		}
	}
	if out.Mode == FetchModeFull {
		raw, err := reldb.MarshalTable(view)
		if err != nil {
			return p2p.Message{}, err
		}
		out.Table = raw
	}
	resp, err := json.Marshal(out)
	if err != nil {
		return p2p.Message{}, err
	}
	return p2p.Message{Kind: p2p.KindDataFetch, Payload: resp}, nil
}

// Fetch requests the current payload of a share directly from the named
// counterparty (Fig. 2's "Request updated data"). Most callers never need
// it — the event loop fetches automatically — but it supports ad-hoc reads
// and the authorization tests.
func (p *Peer) Fetch(ctx context.Context, from identity.Address, shareID string, minSeq uint64) (*reldb.Table, uint64, error) {
	table, _, _, seq, err := p.fetchFrom(ctx, from, shareID, minSeq, 0, nil)
	return table, seq, err
}

// fetchFrom requests the share payload at version minSeq or newer from
// the peer with the given address. When base (the local view at haveSeq)
// is supplied, the server may answer with a changeset, which is applied
// to a copy of base; the caller still verifies the resulting table
// against the on-chain payload hash. When the response was a delta,
// hasDelta is true and cs is the row-level changeset from base to the
// returned table, so callers can keep propagating the delta (bx.PutDelta)
// instead of rematerializing.
func (p *Peer) fetchFrom(ctx context.Context, from identity.Address, shareID string, minSeq, haveSeq uint64, base *reldb.Table) (table *reldb.Table, cs reldb.Changeset, hasDelta bool, seq uint64, err error) {
	if p.cfg.Transport == nil || p.cfg.Directory == nil {
		return nil, reldb.Changeset{}, false, 0, fmt.Errorf("core: peer %s has no data channel", p.Name())
	}
	endpoint, ok := p.cfg.Directory.Lookup(from)
	if !ok {
		return nil, reldb.Changeset{}, false, 0, fmt.Errorf("core: no endpoint known for %s", from)
	}
	req := FetchRequest{
		ShareID:   shareID,
		MinSeq:    minSeq,
		Requester: p.Address(),
		PubKey:    append([]byte(nil), p.cfg.Identity.PublicKey()...),
		TsMicro:   p.cfg.Clock.Now().UnixMicro(),
	}
	if base != nil && haveSeq > 0 {
		req.HaveSeq = haveSeq
	}
	req.Sig = p.cfg.Identity.Sign(req.signingBytes())
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, reldb.Changeset{}, false, 0, err
	}
	msg, err := p.channelRequest(ctx, endpoint, p2p.Message{Kind: p2p.KindDataFetch, Payload: payload})
	if err != nil {
		return nil, reldb.Changeset{}, false, 0, fmt.Errorf("core: fetching %s from %s: %w", shareID, from, err)
	}
	var resp FetchResponse
	if err := json.Unmarshal(msg.Payload, &resp); err != nil {
		return nil, reldb.Changeset{}, false, 0, fmt.Errorf("core: bad fetch response: %w", err)
	}
	switch resp.Mode {
	case FetchModeDelta:
		if base == nil {
			return nil, reldb.Changeset{}, false, 0, fmt.Errorf("core: unsolicited delta for %s", shareID)
		}
		cs, err := reldb.UnmarshalChangeset(resp.Changeset)
		if err != nil {
			return nil, reldb.Changeset{}, false, 0, err
		}
		table := base.Clone()
		if err := table.Apply(cs); err != nil {
			return nil, reldb.Changeset{}, false, 0, fmt.Errorf("core: applying delta for %s: %w", shareID, err)
		}
		// Only a *minimal* changeset may drive the delta put downstream: a
		// padded one (e.g. delete+insert of an unchanged row) reproduces
		// the correct table — so it passes the payload-hash check — yet
		// would destroy hidden source columns when replayed through a
		// lens's structural-edit policies. Downgrade those to a full-table
		// result.
		if err := base.ValidateDiff(table, cs); err != nil {
			return table, reldb.Changeset{}, false, resp.Seq, nil
		}
		return table, cs, true, resp.Seq, nil
	case FetchModeFull, "":
		table, err := reldb.UnmarshalTable(resp.Table)
		if err != nil {
			return nil, reldb.Changeset{}, false, 0, err
		}
		return table, reldb.Changeset{}, false, resp.Seq, nil
	default:
		return nil, reldb.Changeset{}, false, 0, fmt.Errorf("core: unknown fetch mode %q", resp.Mode)
	}
}
