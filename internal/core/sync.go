package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"medshare/internal/identity"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// Structural anti-entropy: a replica that missed several updates (or
// holds nothing at all) converges by walking the updater's canonical
// Merkle row tree top-down. Each round the requester names the subtree
// roots it cannot match locally — as node requests for large subtrees
// (answered with the node's row and child summaries: key, raw 32-byte
// digest, size) and as row requests for small ones (answered with the
// subtree's rows wholesale). Because the row tree's shape is a pure
// function of the key set (and the share's priority seed), a digest
// match proves the requester already holds an identical subtree and can
// graft its own copy — so a d-row divergence on an n-row view transfers
// O(d log n) summaries plus the divergent rows, instead of the whole
// view, and nothing the requester already holds crosses the wire (the
// provider ships rows only on explicit request, never speculatively).
// Requests and responses travel in compact binary frames (raw digests
// and storage keys, varint sizes) instead of base64-inflated JSON. The
// reconstructed table is verified against the on-chain payload hash
// exactly like a full fetch, so a corrupt or malicious sync stream
// cannot install bad data.
//
// Two request-side mechanisms attack the walk's latency floor (one
// round-trip per divergent tree level):
//
//   - span expansion: a request carries a Span, and the provider
//     answers each wanted subtree root with the node AND its divergence-
//     eligible descendants down span extra levels (BFS, never descending
//     into subtrees small enough for inline row fetch). The requester
//     grafts whatever it turns out to already hold, so speculation costs
//     bounded summary bytes — one matched sibling per lone divergent
//     path level — while each exchange advances span+1 levels instead of
//     one, dividing the round count.
//   - pipelined waves: each wave's frontier is split into chunks fetched
//     concurrently (bounded by SyncOptions.Parallel, wired to
//     Config.FanoutWorkers on the peer path), so a wave costs one RTT
//     regardless of frontier width, and independent divergent subtrees
//     proceed without queueing behind each other on the wire.
//
// SyncStats.Rounds counts sequential waves (the RTT critical path);
// SyncStats.Requests counts request messages (≥ Rounds when a wave was
// chunked).

// syncInlineRows is the subtree size at or below which the requester
// asks for rows wholesale instead of descending node by node.
const syncInlineRows = 16

// syncBaseRounds bounds the top-down walk before the provider's tree
// size is known; after the first round the bound grows with the
// provider-reported size (the walk needs at most one round per tree
// level, and a random treap's max depth is ~3·log2 n), so structural
// sync never silently hits the cliff on very large views while a
// malicious provider still cannot keep a requester walking forever.
const syncBaseRounds = 64

// syncDefaultSpan is the speculative expansion depth the peer sync path
// requests: each exchange advances two tree levels for at most one
// wasted sibling summary per lone divergent path level. Deeper spans
// trade more speculative bytes for fewer rounds (see SyncOptions).
const syncDefaultSpan = 1

// syncMaxSpan caps the span a provider honors (and a decoder accepts),
// bounding the response amplification any single request can demand to
// 2^(span+1)-1 nodes per wanted key.
const syncMaxSpan = 4

// syncDefaultParallel bounds concurrent wave-chunk requests when the
// caller didn't wire a worker budget.
const syncDefaultParallel = 4

// syncMinChunk is the smallest frontier slice worth a dedicated
// request: waves narrower than parallel·syncMinChunk use fewer chunks,
// so concurrency never inflates the message count of shallow walks.
const syncMinChunk = 4

// ErrSyncAborted marks a structural sync that could not complete (the
// provider's view changed mid-walk, the round bound was hit, or the
// stream was malformed); callers fall back to a full fetch.
var ErrSyncAborted = errors.New("core: structural sync aborted")

// SyncRequest asks a counterparty for row-tree nodes and small-subtree
// rows of a share's current view. Authentication mirrors FetchRequest:
// the request is signed and only sharing peers are served. It travels
// as a binary frame (see syncwire.go), not JSON.
type SyncRequest struct {
	ShareID string
	// MinSeq is the lowest acceptable version.
	MinSeq uint64
	// Span asks the provider to expand each wanted subtree root this
	// many extra levels per response (capped at syncMaxSpan).
	Span int
	// Keys are the storage-key encodings of the wanted subtree roots;
	// both lists empty means the tree root (the first round).
	Keys [][]byte
	// RowKeys are subtree roots whose rows the requester wants shipped
	// wholesale (divergent subtrees of ≤ syncInlineRows rows).
	RowKeys   [][]byte
	Requester identity.Address
	PubKey    []byte
	TsMicro   int64
	Sig       []byte
}

// signingBytes is the canonical byte string covered by Sig. The wanted
// keys (node and row requests, domain-separated) are committed through
// a digest so rounds cannot be replayed with altered walk targets; the
// span is covered so a relay cannot inflate (or collapse) the response
// amplification of a captured request.
func (r *SyncRequest) signingBytes() []byte {
	h := sha256.New()
	for _, k := range r.Keys {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(k)))
		h.Write(n[:])
		h.Write(k)
	}
	h.Write([]byte{0xff})
	for _, k := range r.RowKeys {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(k)))
		h.Write(n[:])
		h.Write(k)
	}
	out := make([]byte, 0, len(r.ShareID)+len(r.Requester)+64)
	out = append(out, "medshare-sync:"...)
	out = append(out, r.ShareID...)
	out = binary.BigEndian.AppendUint64(out, r.MinSeq)
	out = binary.BigEndian.AppendUint64(out, uint64(r.Span))
	out = h.Sum(out)
	out = append(out, r.Requester[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(r.TsMicro))
	return out
}

// SyncChild summarizes one child subtree of a served node: storage key
// of its root, raw subtree digest, entry count. The requester compares
// the digest against its own content and descends (or requests rows)
// only where they differ.
type SyncChild struct {
	Key    []byte
	Digest []byte
	Size   int
}

// SyncNode is one served row-tree node: its row plus child summaries.
type SyncNode struct {
	Key   []byte
	Row   reldb.Row
	Left  *SyncChild
	Right *SyncChild
}

// SyncSubtree carries the rows of one explicitly requested small
// subtree, in ascending key order.
type SyncSubtree struct {
	Key  []byte
	Rows []reldb.Row
}

// SyncResponse answers one round of the walk. It travels as a binary
// frame (see syncwire.go), not JSON.
type SyncResponse struct {
	ShareID string
	// Seq is the version of the served view.
	Seq uint64
	// Root is the row-tree root of the snapshot this round was served
	// from. It is the walk's consistency anchor: the root is canonical,
	// so equal roots across rounds prove every served node belongs to
	// identical view contents even if the provider applied updates (or
	// its seq label raced its view install) mid-walk.
	Root  []byte
	Nodes []SyncNode
	// Subtrees answer the round's RowKeys requests.
	Subtrees []SyncSubtree
	// Empty marks a view with no rows (the walk ends immediately).
	Empty bool
}

// SyncStats reports what one structural sync transferred — the
// experiment and test substrate for the "divergent subtrees only" claim.
type SyncStats struct {
	// Rounds is the number of sequential request waves — the walk's
	// round-trip critical path. A wave split into concurrent chunk
	// requests still counts once.
	Rounds int
	// Requests is the total number of request messages sent (≥ Rounds
	// when waves were chunked across concurrent requests).
	Requests int
	// NodesFetched counts served tree nodes (divergent-path interiors).
	NodesFetched int
	// RowsInline counts rows shipped as requested subtree batches —
	// every one belongs to a subtree the requester could not match.
	RowsInline int
	// RowsGrafted counts rows the requester reused from its own replica
	// after a digest match — rows that did NOT cross the wire.
	RowsGrafted int
	// BytesSent and BytesReceived measure the marshaled request and
	// response payloads.
	BytesSent     int
	BytesReceived int
}

// syncNodesFor serves one round's node requests against a view
// snapshot; initial selects the tree root. Unknown keys are skipped —
// the requester's final payload-hash check arbitrates. A positive span
// additionally expands each wanted root BFS down span extra levels
// (parents before children, within-response dedup), never descending
// into subtrees small enough for inline row fetch — those the requester
// either grafts or asks for wholesale, so their interiors never earn
// their bytes.
func syncNodesFor(view *reldb.Table, keys [][]byte, initial bool, span int) []SyncNode {
	if initial {
		keys = [][]byte{nil}
	}
	if span < 0 {
		span = 0
	}
	if span > syncMaxSpan {
		span = syncMaxSpan
	}
	type item struct {
		key   []byte
		depth int
	}
	queue := make([]item, 0, len(keys))
	for _, k := range keys {
		queue = append(queue, item{key: k})
	}
	var seen map[string]bool
	if span > 0 {
		seen = make(map[string]bool, len(keys))
	}
	out := make([]SyncNode, 0, len(keys))
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		n, ok := view.MerkleNodeAt(it.key)
		if !ok {
			continue
		}
		if seen != nil {
			if seen[string(n.Key)] {
				continue
			}
			seen[string(n.Key)] = true
		}
		out = append(out, SyncNode{
			Key:   n.Key,
			Row:   n.Row,
			Left:  wireChild(n.Left),
			Right: wireChild(n.Right),
		})
		if it.depth >= span {
			continue
		}
		for _, c := range []*reldb.MerkleChild{n.Left, n.Right} {
			if c != nil && c.Size > syncInlineRows {
				queue = append(queue, item{key: c.Key, depth: it.depth + 1})
			}
		}
	}
	return out
}

func wireChild(c *reldb.MerkleChild) *SyncChild {
	if c == nil {
		return nil
	}
	return &SyncChild{Key: c.Key, Digest: c.Digest[:], Size: c.Size}
}

// syncSubtreesFor serves one round's row requests. Oversized requests
// (beyond the protocol's inline bound — a well-behaved requester never
// sends them) and unknown keys are skipped.
func syncSubtreesFor(view *reldb.Table, rowKeys [][]byte) []SyncSubtree {
	out := make([]SyncSubtree, 0, len(rowKeys))
	for _, k := range rowKeys {
		rows, ok := view.SubtreeRows(k)
		if !ok || len(rows) > syncInlineRows {
			continue
		}
		out = append(out, SyncSubtree{Key: k, Rows: rows})
	}
	return out
}

// serveSync is the provider side of the anti-entropy RPC.
func (p *Peer) serveSync(msg p2p.Message) (p2p.Message, error) {
	req, err := decodeSyncRequest(msg.Payload)
	if err != nil {
		return p2p.Message{}, fmt.Errorf("core: bad sync request: %w", err)
	}
	s, seq, err := p.authorizeShareRequest(req.ShareID, req.Requester, req.PubKey, req.signingBytes(), req.Sig, req.MinSeq)
	if err != nil {
		return p2p.Message{}, err
	}
	view, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return p2p.Message{}, err
	}
	// Seq and the view snapshot are read without a common lock, so the
	// label can race an install; the per-round Root (computed from THIS
	// snapshot) is what the requester anchors consistency on.
	root := view.RowsRoot()
	resp := SyncResponse{ShareID: req.ShareID, Seq: seq, Root: root[:], Empty: view.Len() == 0}
	if !resp.Empty {
		resp.Nodes = syncNodesFor(view, req.Keys, len(req.Keys) == 0 && len(req.RowKeys) == 0, req.Span)
		resp.Subtrees = syncSubtreesFor(view, req.RowKeys)
	}
	raw, err := appendSyncResponse(nil, &resp)
	if err != nil {
		return p2p.Message{}, err
	}
	return p2p.Message{Kind: p2p.KindSync, Payload: raw}, nil
}

// syncFetchFn performs one request of the walk: wanted subtree-root
// keys (node requests) and row requests in, served nodes and subtrees
// out. assembleSync calls it from concurrent goroutines when a wave is
// chunked, so implementations must be safe for concurrent use.
type syncFetchFn func(keys, rowKeys [][]byte) (SyncResponse, error)

// SyncOptions tunes the anti-entropy walk's latency/byte trade.
type SyncOptions struct {
	// Span is the speculative expansion depth requested per exchange:
	// the provider answers each wanted subtree root with span extra
	// levels, cutting rounds to ~depth/(span+1) at the cost of shipping
	// summaries the requester may already hold. 0 means the default
	// (syncDefaultSpan); negative disables expansion — the byte-optimal
	// one-level-per-round walk.
	Span int
	// Parallel bounds concurrent requests per wave: wide frontiers are
	// chunked across up to Parallel in-flight requests. 0 means the
	// default (syncDefaultParallel); values ≤ 1 keep waves to a single
	// request.
	Parallel int
}

func (o SyncOptions) normalized() SyncOptions {
	switch {
	case o.Span == 0:
		o.Span = syncDefaultSpan
	case o.Span < 0:
		o.Span = 0
	case o.Span > syncMaxSpan:
		o.Span = syncMaxSpan
	}
	if o.Parallel == 0 {
		o.Parallel = syncDefaultParallel
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	return o
}

// syncWave is one chunk of a wave's frontier: the node and row requests
// carried by a single request message.
type syncWave struct {
	keys    [][]byte
	rowKeys [][]byte
}

// chunkWave splits a wave's frontier round-robin across up to parallel
// requests, never slicing below syncMinChunk keys per request.
func chunkWave(keys, rowKeys [][]byte, parallel int) []syncWave {
	total := len(keys) + len(rowKeys)
	chunks := (total + syncMinChunk - 1) / syncMinChunk
	if chunks > parallel {
		chunks = parallel
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([]syncWave, chunks)
	// Round-robin keeps sibling subtrees (adjacent in the frontier) on
	// different requests, balancing per-request response sizes.
	for i, k := range keys {
		w := &out[i%chunks]
		w.keys = append(w.keys, k)
	}
	for i, k := range rowKeys {
		w := &out[i%chunks]
		w.rowKeys = append(w.rowKeys, k)
	}
	return out
}

// fetchWave issues one wave's chunk requests concurrently and returns
// the responses (in chunk order). Any chunk's error fails the wave.
func fetchWave(fetch syncFetchFn, waves []syncWave) ([]SyncResponse, error) {
	if len(waves) == 1 {
		resp, err := fetch(waves[0].keys, waves[0].rowKeys)
		if err != nil {
			return nil, err
		}
		return []SyncResponse{resp}, nil
	}
	resps := make([]SyncResponse, len(waves))
	errs := make([]error, len(waves))
	var wg sync.WaitGroup
	for i, w := range waves {
		wg.Add(1)
		go func(i int, w syncWave) {
			defer wg.Done()
			resps[i], errs[i] = fetch(w.keys, w.rowKeys)
		}(i, w)
	}
	wg.Wait()
	return resps, errors.Join(errs...)
}

// assembleSync drives the top-down walk against fetch and reconstructs
// the provider's view over base (the local replica supplying grafts and
// the schema). It returns the rebuilt table and the provider's version.
// The caller MUST verify the result against an authoritative hash
// before installing it.
func assembleSync(base *reldb.Table, fetch syncFetchFn, stats *SyncStats, opts SyncOptions) (*reldb.Table, uint64, error) {
	opts = opts.normalized()
	asm := reldb.NewMerkleAssembler(base)
	nodes := make(map[string]SyncNode)
	subtrees := make(map[string][]reldb.Row)
	// requested remembers every key already asked for (as node or rows),
	// so a provider that skips an unknown key is never re-asked — the
	// walk ends and the missing-node check arbitrates during assembly.
	requested := make(map[string]bool)
	// triaged marks nodes whose children have been classified, so
	// span-expanded nodes arriving ahead of their walk position are
	// triaged exactly once, when the walk reaches them.
	triaged := make(map[string]bool)
	var rootKey []byte
	var root []byte
	var seq uint64

	// triage classifies n's children — graft (already held locally),
	// inline rows, or descend — recursing immediately into children the
	// provider already expanded into this or an earlier response, so the
	// next wave's frontier starts where received structure ends.
	var wantNodes, wantRows [][]byte
	var triage func(n SyncNode)
	triage = func(n SyncNode) {
		if triaged[string(n.Key)] {
			return
		}
		triaged[string(n.Key)] = true
		for _, c := range []*SyncChild{n.Left, n.Right} {
			if c == nil {
				continue
			}
			if d, ok := childDigest(c); ok && asm.HasLocal(d) {
				continue // grafted during assembly
			}
			if _, have := subtrees[string(c.Key)]; have {
				continue
			}
			if cn, have := nodes[string(c.Key)]; have {
				triage(cn)
				continue
			}
			if requested[string(c.Key)] {
				continue
			}
			requested[string(c.Key)] = true
			if c.Size <= syncInlineRows {
				wantRows = append(wantRows, c.Key)
			} else {
				wantNodes = append(wantNodes, c.Key)
			}
		}
	}

	maxRounds := syncBaseRounds
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, 0, fmt.Errorf("%w: round bound exceeded", ErrSyncAborted)
		}
		var waves []syncWave
		if round == 0 {
			waves = []syncWave{{}} // empty lists: the tree root
		} else {
			waves = chunkWave(wantNodes, wantRows, opts.Parallel)
		}
		resps, err := fetchWave(fetch, waves)
		if err != nil {
			return nil, 0, err
		}
		stats.Rounds++
		stats.Requests += len(waves)
		if round == 0 {
			resp := resps[0]
			seq = resp.Seq
			root = resp.Root
			if resp.Empty {
				t, err := asm.Table()
				return t, seq, err
			}
			if len(resp.Nodes) == 0 {
				return nil, 0, fmt.Errorf("%w: empty first round", ErrSyncAborted)
			}
			rn := resp.Nodes[0]
			rootKey = rn.Key
			// At most one round per tree level: scale the bound with the
			// provider-reported size (root children cover all but one
			// row; a random treap's max depth is ~3·log2 n, allow 4).
			n := 1
			for _, c := range []*SyncChild{rn.Left, rn.Right} {
				if c != nil {
					n += c.Size
				}
			}
			maxRounds = syncBaseRounds + 4*bits.Len(uint(n))
		}
		// Merge every response before triage: span expansion ships
		// children in the same frame as their parent, and triage must
		// see them to recurse instead of re-requesting.
		for _, resp := range resps {
			if !bytes.Equal(resp.Root, root) {
				// The provider's view changed mid-walk; already-fetched
				// digests no longer fit together. The root — canonical
				// for the contents — is the exact detector, immune to
				// the seq-label/view-install race on the provider.
				return nil, 0, fmt.Errorf("%w: provider view changed mid-walk", ErrSyncAborted)
			}
			for _, st := range resp.Subtrees {
				if _, dup := subtrees[string(st.Key)]; dup {
					continue
				}
				subtrees[string(st.Key)] = st.Rows
				stats.RowsInline += len(st.Rows)
			}
			for _, n := range resp.Nodes {
				if _, dup := nodes[string(n.Key)]; dup {
					continue
				}
				nodes[string(n.Key)] = n
				stats.NodesFetched++
			}
		}
		// Triage grows from what was actually *asked for* this wave —
		// known-divergent roots — and recurses through their expanded
		// descendants. Expanded nodes NOT reachable that way are the
		// speculation waste (their subtree matched locally); triaging
		// them directly would walk into grafted territory.
		frontier := wantNodes
		if round == 0 {
			frontier = [][]byte{rootKey}
		}
		wantNodes, wantRows = nil, nil
		for _, k := range frontier {
			if n, ok := nodes[string(k)]; ok {
				triage(n)
			}
		}
		if len(wantNodes)+len(wantRows) == 0 {
			break
		}
	}

	// In-order assembly over the fetched structure.
	var build func(key []byte) error
	appendChild := func(c *SyncChild) error {
		if c == nil {
			return nil
		}
		if d, ok := childDigest(c); ok && asm.HasLocal(d) {
			// Graft the local copy (reusing entries and their cached
			// digests). The graft count comes from the local assembler,
			// never from the provider-claimed size.
			before := asm.Len()
			if err := asm.AppendLocal(d); err != nil {
				return err
			}
			stats.RowsGrafted += asm.Len() - before
			return nil
		}
		if rows, ok := subtrees[string(c.Key)]; ok {
			for _, r := range rows {
				if err := asm.AppendRow(r); err != nil {
					return err
				}
			}
			return nil
		}
		return build(c.Key)
	}
	build = func(key []byte) error {
		n, ok := nodes[string(key)]
		if !ok {
			return fmt.Errorf("%w: missing node", ErrSyncAborted)
		}
		if err := appendChild(n.Left); err != nil {
			return err
		}
		if err := asm.AppendRow(n.Row); err != nil {
			return err
		}
		return appendChild(n.Right)
	}
	if err := build(rootKey); err != nil {
		return nil, 0, err
	}
	t, err := asm.Table()
	return t, seq, err
}

func childDigest(c *SyncChild) ([32]byte, bool) {
	var d [32]byte
	if len(c.Digest) != len(d) {
		return d, false
	}
	copy(d[:], c.Digest)
	return d, true
}

// syncFrom runs the structural sync against the peer with the given
// address and returns the reconstructed view (named like base), the
// provider's version, and transfer stats. The caller verifies the
// result against the on-chain payload hash.
func (p *Peer) syncFrom(ctx context.Context, from identity.Address, shareID string, minSeq uint64, base *reldb.Table) (*reldb.Table, uint64, SyncStats, error) {
	var stats SyncStats
	if p.cfg.Transport == nil || p.cfg.Directory == nil {
		return nil, 0, stats, fmt.Errorf("core: peer %s has no data channel", p.Name())
	}
	endpoint, ok := p.cfg.Directory.Lookup(from)
	if !ok {
		return nil, 0, stats, fmt.Errorf("core: no endpoint known for %s", from)
	}
	opts := SyncOptions{Parallel: p.cfg.FanoutWorkers}.normalized()
	// Wave chunks fetch concurrently, so the closure guards the shared
	// byte counters; channelRequest is already safe for concurrent use
	// (the cascade fan-out exercises it).
	var statsMu sync.Mutex
	fetch := func(keys, rowKeys [][]byte) (SyncResponse, error) {
		req := SyncRequest{
			ShareID:   shareID,
			MinSeq:    minSeq,
			Span:      opts.Span,
			Keys:      keys,
			RowKeys:   rowKeys,
			Requester: p.Address(),
			PubKey:    append([]byte(nil), p.cfg.Identity.PublicKey()...),
			TsMicro:   p.cfg.Clock.Now().UnixMicro(),
		}
		req.Sig = p.cfg.Identity.Sign(req.signingBytes())
		payload := appendSyncRequest(nil, &req)
		statsMu.Lock()
		stats.BytesSent += len(payload)
		statsMu.Unlock()
		msg, err := p.channelRequest(ctx, endpoint, p2p.Message{Kind: p2p.KindSync, Payload: payload})
		if err != nil {
			return SyncResponse{}, fmt.Errorf("core: syncing %s from %s: %w", shareID, from, err)
		}
		statsMu.Lock()
		stats.BytesReceived += len(msg.Payload)
		statsMu.Unlock()
		resp, err := decodeSyncResponse(msg.Payload)
		if err != nil {
			return SyncResponse{}, fmt.Errorf("core: bad sync response: %w", err)
		}
		return resp, nil
	}
	t, seq, err := assembleSync(base, fetch, &stats, opts)
	p.stats.syncRounds.Add(uint64(stats.Rounds))
	p.stats.syncRequests.Add(uint64(stats.Requests))
	if err != nil {
		return nil, 0, stats, err
	}
	return t, seq, stats, nil
}

// StructuralSync fetches the current payload of a share from the named
// counterparty via the anti-entropy walk, using the local replica for
// grafting, and reports what was transferred. The returned table is
// reconstructed but NOT installed; like Fetch, this supports ad-hoc
// reads, tests, and measurements — the resync path installs through the
// usual verify+put pipeline.
func (p *Peer) StructuralSync(ctx context.Context, from identity.Address, shareID string, minSeq uint64) (*reldb.Table, uint64, SyncStats, error) {
	s, err := p.share(shareID)
	if err != nil {
		return nil, 0, SyncStats{}, err
	}
	base, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return nil, 0, SyncStats{}, err
	}
	return p.syncFrom(ctx, from, shareID, minSeq, base)
}

// SimulateStructuralSync runs the anti-entropy exchange between two
// in-memory tables through the real wire encoding (binary request and
// response frames, no transport or chain) — the measurement harness
// behind E13 and the byte-count assertions. provider plays the
// updater's view, base the stale local replica; the returned stats
// count exactly the bytes the TCP path would carry in message payloads.
// It runs the byte-optimal serial walk (no span expansion, one request
// per wave) so the byte numbers it pins are the protocol floor; use
// SimulateStructuralSyncOpts to measure the latency-optimized
// operating points.
func SimulateStructuralSync(provider, base *reldb.Table) (*reldb.Table, SyncStats, error) {
	return SimulateStructuralSyncOpts(provider, base, SyncOptions{Span: -1, Parallel: -1})
}

// SimulateStructuralSyncOpts is SimulateStructuralSync under explicit
// walk options — the round-count and span-overhead measurement harness.
func SimulateStructuralSyncOpts(provider, base *reldb.Table, opts SyncOptions) (*reldb.Table, SyncStats, error) {
	opts = opts.normalized()
	var stats SyncStats
	var mu sync.Mutex
	fetch := func(keys, rowKeys [][]byte) (SyncResponse, error) {
		req := SyncRequest{Span: opts.Span, Keys: keys, RowKeys: rowKeys}
		rawReq := appendSyncRequest(nil, &req)
		root := provider.RowsRoot()
		resp := SyncResponse{Seq: 1, Root: root[:], Empty: provider.Len() == 0}
		if !resp.Empty {
			resp.Nodes = syncNodesFor(provider, keys, len(keys) == 0 && len(rowKeys) == 0, req.Span)
			resp.Subtrees = syncSubtreesFor(provider, rowKeys)
		}
		rawResp, err := appendSyncResponse(nil, &resp)
		if err != nil {
			return SyncResponse{}, err
		}
		mu.Lock()
		stats.BytesSent += len(rawReq)
		stats.BytesReceived += len(rawResp)
		mu.Unlock()
		return decodeSyncResponse(rawResp)
	}
	t, _, err := assembleSync(base, fetch, &stats, opts)
	return t, stats, err
}
