package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"

	"medshare/internal/identity"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// Structural anti-entropy: a replica that missed several updates (or
// holds nothing at all) converges by walking the updater's canonical
// Merkle row tree top-down. Each round the requester names the subtree
// roots it cannot match locally — as node requests for large subtrees
// (answered with the node's row and child summaries: key, raw 32-byte
// digest, size) and as row requests for small ones (answered with the
// subtree's rows wholesale). Because the row tree's shape is a pure
// function of the key set (and the share's priority seed), a digest
// match proves the requester already holds an identical subtree and can
// graft its own copy — so a d-row divergence on an n-row view transfers
// O(d log n) summaries plus the divergent rows, instead of the whole
// view, and nothing the requester already holds crosses the wire (the
// provider ships rows only on explicit request, never speculatively).
// Responses travel in a compact binary frame (raw digests and storage
// keys, varint sizes) instead of base64-inflated JSON. The
// reconstructed table is verified against the on-chain payload hash
// exactly like a full fetch, so a corrupt or malicious sync stream
// cannot install bad data.

// syncInlineRows is the subtree size at or below which the requester
// asks for rows wholesale instead of descending node by node.
const syncInlineRows = 16

// syncBaseRounds bounds the top-down walk before the provider's tree
// size is known; after the first round the bound grows with the
// provider-reported size (the walk needs one round per tree level, and
// a random treap's max depth is ~3·log2 n), so structural sync never
// silently hits the cliff on very large views while a malicious
// provider still cannot keep a requester walking forever.
const syncBaseRounds = 64

// ErrSyncAborted marks a structural sync that could not complete (the
// provider's view changed mid-walk, the round bound was hit, or the
// stream was malformed); callers fall back to a full fetch.
var ErrSyncAborted = errors.New("core: structural sync aborted")

// SyncRequest asks a counterparty for row-tree nodes and small-subtree
// rows of a share's current view. Authentication mirrors FetchRequest:
// the request is signed and only sharing peers are served.
type SyncRequest struct {
	ShareID string `json:"shareId"`
	// MinSeq is the lowest acceptable version.
	MinSeq uint64 `json:"minSeq"`
	// Keys are the storage-key encodings of the wanted subtree roots;
	// both lists empty means the tree root (the first round).
	Keys [][]byte `json:"keys,omitempty"`
	// RowKeys are subtree roots whose rows the requester wants shipped
	// wholesale (divergent subtrees of ≤ syncInlineRows rows).
	RowKeys   [][]byte         `json:"rowKeys,omitempty"`
	Requester identity.Address `json:"requester"`
	PubKey    []byte           `json:"pubKey"`
	TsMicro   int64            `json:"ts"`
	Sig       []byte           `json:"sig"`
}

// signingBytes is the canonical byte string covered by Sig. The wanted
// keys (node and row requests, domain-separated) are committed through
// a digest so rounds cannot be replayed with altered walk targets.
func (r *SyncRequest) signingBytes() []byte {
	h := sha256.New()
	for _, k := range r.Keys {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(k)))
		h.Write(n[:])
		h.Write(k)
	}
	h.Write([]byte{0xff})
	for _, k := range r.RowKeys {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(k)))
		h.Write(n[:])
		h.Write(k)
	}
	out := make([]byte, 0, len(r.ShareID)+len(r.Requester)+64)
	out = append(out, "medshare-sync:"...)
	out = append(out, r.ShareID...)
	out = binary.BigEndian.AppendUint64(out, r.MinSeq)
	out = h.Sum(out)
	out = append(out, r.Requester[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(r.TsMicro))
	return out
}

// SyncChild summarizes one child subtree of a served node: storage key
// of its root, raw subtree digest, entry count. The requester compares
// the digest against its own content and descends (or requests rows)
// only where they differ.
type SyncChild struct {
	Key    []byte
	Digest []byte
	Size   int
}

// SyncNode is one served row-tree node: its row plus child summaries.
type SyncNode struct {
	Key   []byte
	Row   reldb.Row
	Left  *SyncChild
	Right *SyncChild
}

// SyncSubtree carries the rows of one explicitly requested small
// subtree, in ascending key order.
type SyncSubtree struct {
	Key  []byte
	Rows []reldb.Row
}

// SyncResponse answers one round of the walk. It travels as a binary
// frame (see syncwire.go), not JSON.
type SyncResponse struct {
	ShareID string
	// Seq is the version of the served view.
	Seq uint64
	// Root is the row-tree root of the snapshot this round was served
	// from. It is the walk's consistency anchor: the root is canonical,
	// so equal roots across rounds prove every served node belongs to
	// identical view contents even if the provider applied updates (or
	// its seq label raced its view install) mid-walk.
	Root  []byte
	Nodes []SyncNode
	// Subtrees answer the round's RowKeys requests.
	Subtrees []SyncSubtree
	// Empty marks a view with no rows (the walk ends immediately).
	Empty bool
}

// SyncStats reports what one structural sync transferred — the
// experiment and test substrate for the "divergent subtrees only" claim.
type SyncStats struct {
	// Rounds is the number of request/response exchanges.
	Rounds int
	// NodesFetched counts served tree nodes (divergent-path interiors).
	NodesFetched int
	// RowsInline counts rows shipped as requested subtree batches —
	// every one belongs to a subtree the requester could not match.
	RowsInline int
	// RowsGrafted counts rows the requester reused from its own replica
	// after a digest match — rows that did NOT cross the wire.
	RowsGrafted int
	// BytesSent and BytesReceived measure the marshaled request and
	// response payloads.
	BytesSent     int
	BytesReceived int
}

// syncNodesFor serves one round's node requests against a view
// snapshot; initial selects the tree root. Unknown keys are skipped —
// the requester's final payload-hash check arbitrates.
func syncNodesFor(view *reldb.Table, keys [][]byte, initial bool) []SyncNode {
	if initial {
		keys = [][]byte{nil}
	}
	out := make([]SyncNode, 0, len(keys))
	for _, k := range keys {
		n, ok := view.MerkleNodeAt(k)
		if !ok {
			continue
		}
		out = append(out, SyncNode{
			Key:   n.Key,
			Row:   n.Row,
			Left:  wireChild(n.Left),
			Right: wireChild(n.Right),
		})
	}
	return out
}

func wireChild(c *reldb.MerkleChild) *SyncChild {
	if c == nil {
		return nil
	}
	return &SyncChild{Key: c.Key, Digest: c.Digest[:], Size: c.Size}
}

// syncSubtreesFor serves one round's row requests. Oversized requests
// (beyond the protocol's inline bound — a well-behaved requester never
// sends them) and unknown keys are skipped.
func syncSubtreesFor(view *reldb.Table, rowKeys [][]byte) []SyncSubtree {
	out := make([]SyncSubtree, 0, len(rowKeys))
	for _, k := range rowKeys {
		rows, ok := view.SubtreeRows(k)
		if !ok || len(rows) > syncInlineRows {
			continue
		}
		out = append(out, SyncSubtree{Key: k, Rows: rows})
	}
	return out
}

// serveSync is the provider side of the anti-entropy RPC.
func (p *Peer) serveSync(msg p2p.Message) (p2p.Message, error) {
	var req SyncRequest
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return p2p.Message{}, fmt.Errorf("core: bad sync request: %w", err)
	}
	s, seq, err := p.authorizeShareRequest(req.ShareID, req.Requester, req.PubKey, req.signingBytes(), req.Sig, req.MinSeq)
	if err != nil {
		return p2p.Message{}, err
	}
	view, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return p2p.Message{}, err
	}
	// Seq and the view snapshot are read without a common lock, so the
	// label can race an install; the per-round Root (computed from THIS
	// snapshot) is what the requester anchors consistency on.
	root := view.RowsRoot()
	resp := SyncResponse{ShareID: req.ShareID, Seq: seq, Root: root[:], Empty: view.Len() == 0}
	if !resp.Empty {
		resp.Nodes = syncNodesFor(view, req.Keys, len(req.Keys) == 0 && len(req.RowKeys) == 0)
		resp.Subtrees = syncSubtreesFor(view, req.RowKeys)
	}
	raw, err := appendSyncResponse(nil, &resp)
	if err != nil {
		return p2p.Message{}, err
	}
	return p2p.Message{Kind: p2p.KindSync, Payload: raw}, nil
}

// syncFetchFn performs one round of the walk: wanted subtree-root keys
// (node requests) and row requests in, served nodes and subtrees out.
type syncFetchFn func(keys, rowKeys [][]byte) (SyncResponse, error)

// assembleSync drives the top-down walk against fetch and reconstructs
// the provider's view over base (the local replica supplying grafts and
// the schema). It returns the rebuilt table and the provider's version.
// The caller MUST verify the result against an authoritative hash
// before installing it.
func assembleSync(base *reldb.Table, fetch syncFetchFn, stats *SyncStats) (*reldb.Table, uint64, error) {
	asm := reldb.NewMerkleAssembler(base)
	nodes := make(map[string]SyncNode)
	subtrees := make(map[string][]reldb.Row)
	var rootKey []byte
	var root []byte
	var seq uint64

	maxRounds := syncBaseRounds
	var wantNodes, wantRows [][]byte // both nil first round: the tree root
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, 0, fmt.Errorf("%w: round bound exceeded", ErrSyncAborted)
		}
		resp, err := fetch(wantNodes, wantRows)
		if err != nil {
			return nil, 0, err
		}
		stats.Rounds++
		if round == 0 {
			seq = resp.Seq
			root = resp.Root
			if resp.Empty {
				t, err := asm.Table()
				return t, seq, err
			}
			if len(resp.Nodes) == 0 {
				return nil, 0, fmt.Errorf("%w: empty first round", ErrSyncAborted)
			}
			rn := resp.Nodes[0]
			rootKey = rn.Key
			// One round per tree level: scale the bound with the
			// provider-reported size (root children cover all but one
			// row; a random treap's max depth is ~3·log2 n, allow 4).
			n := 1
			for _, c := range []*SyncChild{rn.Left, rn.Right} {
				if c != nil {
					n += c.Size
				}
			}
			maxRounds = syncBaseRounds + 4*bits.Len(uint(n))
		} else if !bytes.Equal(resp.Root, root) {
			// The provider's view changed mid-walk; already-fetched
			// digests no longer fit together. The root — canonical for
			// the contents — is the exact detector, immune to the
			// seq-label/view-install race on the provider.
			return nil, 0, fmt.Errorf("%w: provider view changed mid-walk", ErrSyncAborted)
		}
		wantNodes, wantRows = nil, nil
		for _, st := range resp.Subtrees {
			if _, dup := subtrees[string(st.Key)]; dup {
				continue
			}
			subtrees[string(st.Key)] = st.Rows
			stats.RowsInline += len(st.Rows)
		}
		for _, n := range resp.Nodes {
			if _, dup := nodes[string(n.Key)]; dup {
				continue
			}
			nodes[string(n.Key)] = n
			stats.NodesFetched++
			for _, c := range []*SyncChild{n.Left, n.Right} {
				if c == nil {
					continue
				}
				if d, ok := childDigest(c); ok && asm.HasLocal(d) {
					continue // grafted during assembly
				}
				if _, have := nodes[string(c.Key)]; have {
					continue
				}
				if _, have := subtrees[string(c.Key)]; have {
					continue
				}
				if c.Size <= syncInlineRows {
					wantRows = append(wantRows, c.Key)
				} else {
					wantNodes = append(wantNodes, c.Key)
				}
			}
		}
		if len(wantNodes)+len(wantRows) == 0 {
			break
		}
	}

	// In-order assembly over the fetched structure.
	var build func(key []byte) error
	appendChild := func(c *SyncChild) error {
		if c == nil {
			return nil
		}
		if d, ok := childDigest(c); ok && asm.HasLocal(d) {
			// Graft the local copy (reusing entries and their cached
			// digests). The graft count comes from the local assembler,
			// never from the provider-claimed size.
			before := asm.Len()
			if err := asm.AppendLocal(d); err != nil {
				return err
			}
			stats.RowsGrafted += asm.Len() - before
			return nil
		}
		if rows, ok := subtrees[string(c.Key)]; ok {
			for _, r := range rows {
				if err := asm.AppendRow(r); err != nil {
					return err
				}
			}
			return nil
		}
		return build(c.Key)
	}
	build = func(key []byte) error {
		n, ok := nodes[string(key)]
		if !ok {
			return fmt.Errorf("%w: missing node", ErrSyncAborted)
		}
		if err := appendChild(n.Left); err != nil {
			return err
		}
		if err := asm.AppendRow(n.Row); err != nil {
			return err
		}
		return appendChild(n.Right)
	}
	if err := build(rootKey); err != nil {
		return nil, 0, err
	}
	t, err := asm.Table()
	return t, seq, err
}

func childDigest(c *SyncChild) ([32]byte, bool) {
	var d [32]byte
	if len(c.Digest) != len(d) {
		return d, false
	}
	copy(d[:], c.Digest)
	return d, true
}

// syncFrom runs the structural sync against the peer with the given
// address and returns the reconstructed view (named like base), the
// provider's version, and transfer stats. The caller verifies the
// result against the on-chain payload hash.
func (p *Peer) syncFrom(ctx context.Context, from identity.Address, shareID string, minSeq uint64, base *reldb.Table) (*reldb.Table, uint64, SyncStats, error) {
	var stats SyncStats
	if p.cfg.Transport == nil || p.cfg.Directory == nil {
		return nil, 0, stats, fmt.Errorf("core: peer %s has no data channel", p.Name())
	}
	endpoint, ok := p.cfg.Directory.Lookup(from)
	if !ok {
		return nil, 0, stats, fmt.Errorf("core: no endpoint known for %s", from)
	}
	fetch := func(keys, rowKeys [][]byte) (SyncResponse, error) {
		req := SyncRequest{
			ShareID:   shareID,
			MinSeq:    minSeq,
			Keys:      keys,
			RowKeys:   rowKeys,
			Requester: p.Address(),
			PubKey:    append([]byte(nil), p.cfg.Identity.PublicKey()...),
			TsMicro:   p.cfg.Clock.Now().UnixMicro(),
		}
		req.Sig = p.cfg.Identity.Sign(req.signingBytes())
		payload, err := json.Marshal(req)
		if err != nil {
			return SyncResponse{}, err
		}
		stats.BytesSent += len(payload)
		msg, err := p.channelRequest(ctx, endpoint, p2p.Message{Kind: p2p.KindSync, Payload: payload})
		if err != nil {
			return SyncResponse{}, fmt.Errorf("core: syncing %s from %s: %w", shareID, from, err)
		}
		stats.BytesReceived += len(msg.Payload)
		resp, err := decodeSyncResponse(msg.Payload)
		if err != nil {
			return SyncResponse{}, fmt.Errorf("core: bad sync response: %w", err)
		}
		return resp, nil
	}
	t, seq, err := assembleSync(base, fetch, &stats)
	if err != nil {
		return nil, 0, stats, err
	}
	return t, seq, stats, nil
}

// StructuralSync fetches the current payload of a share from the named
// counterparty via the anti-entropy walk, using the local replica for
// grafting, and reports what was transferred. The returned table is
// reconstructed but NOT installed; like Fetch, this supports ad-hoc
// reads, tests, and measurements — the resync path installs through the
// usual verify+put pipeline.
func (p *Peer) StructuralSync(ctx context.Context, from identity.Address, shareID string, minSeq uint64) (*reldb.Table, uint64, SyncStats, error) {
	s, err := p.share(shareID)
	if err != nil {
		return nil, 0, SyncStats{}, err
	}
	base, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return nil, 0, SyncStats{}, err
	}
	return p.syncFrom(ctx, from, shareID, minSeq, base)
}

// SimulateStructuralSync runs the anti-entropy exchange between two
// in-memory tables through the real wire encoding (JSON requests, the
// binary response frame, no transport or chain) — the measurement
// harness behind E13 and the byte-count assertions. provider plays the
// updater's view, base the stale local replica; the returned stats
// count exactly the bytes the TCP path would carry in message payloads.
func SimulateStructuralSync(provider, base *reldb.Table) (*reldb.Table, SyncStats, error) {
	var stats SyncStats
	fetch := func(keys, rowKeys [][]byte) (SyncResponse, error) {
		req := SyncRequest{Keys: keys, RowKeys: rowKeys}
		rawReq, err := json.Marshal(req)
		if err != nil {
			return SyncResponse{}, err
		}
		stats.BytesSent += len(rawReq)
		root := provider.RowsRoot()
		resp := SyncResponse{Seq: 1, Root: root[:], Empty: provider.Len() == 0}
		if !resp.Empty {
			resp.Nodes = syncNodesFor(provider, keys, len(keys) == 0 && len(rowKeys) == 0)
			resp.Subtrees = syncSubtreesFor(provider, rowKeys)
		}
		rawResp, err := appendSyncResponse(nil, &resp)
		if err != nil {
			return SyncResponse{}, err
		}
		stats.BytesReceived += len(rawResp)
		return decodeSyncResponse(rawResp)
	}
	t, _, err := assembleSync(base, fetch, &stats)
	return t, stats, err
}
