package core

import (
	"reflect"
	"testing"

	"medshare/internal/reldb"
)

// TestProofCacheHitIsByteIdentical checks that a memoized proof is
// exactly the proof a cold build produces: same row, same path, same
// root, same table-hash preimage. Anything less and a cached read would
// verify differently from a fresh one.
func TestProofCacheHitIsByteIdentical(t *testing.T) {
	h := newFetchHarness(t)
	h.update(t, "v1")
	key := reldb.Row{reldb.I(1)}

	cold, err := h.a.ProveView("S", key)
	if err != nil {
		t.Fatal(err)
	}
	before := h.a.Stats()
	hit, err := h.a.ProveView("S", key)
	if err != nil {
		t.Fatal(err)
	}
	after := h.a.Stats()
	if after.ProofCacheHits != before.ProofCacheHits+1 {
		t.Fatalf("second ProveView was not a cache hit (hits %d -> %d, misses %d -> %d)",
			before.ProofCacheHits, after.ProofCacheHits, before.ProofCacheMisses, after.ProofCacheMisses)
	}
	if !reflect.DeepEqual(cold, hit) {
		t.Fatalf("cache hit differs from cold proof:\ncold %+v\nhit  %+v", cold, hit)
	}

	// The memoized proof must also be identical to an independent cold
	// rebuild against the same snapshot, not just internally consistent.
	view, err := h.a.snapshotTable("Sa")
	if err != nil {
		t.Fatal(err)
	}
	row, proof, err := view.ProveRow(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hit.Row, row) || !reflect.DeepEqual(hit.Proof, proof) {
		t.Fatal("cached proof differs from a direct ProveRow against the same view")
	}
	if hit.Root != view.RowsRoot() || hit.SchemaSum != view.SchemaSum() || hit.Rows != view.Len() {
		t.Fatal("cached proof's table-hash preimage differs from the view's")
	}
	if !reldb.VerifyRowProof(hit.Root, hit.Row, hit.Proof) {
		t.Fatal("cached proof does not verify")
	}
}

// TestProofCacheInvalidatesOnSeqAdvance checks that no proof built
// before a version advance is ever served after it: the first read at
// the new applied seq must rebuild against the new root.
func TestProofCacheInvalidatesOnSeqAdvance(t *testing.T) {
	h := newFetchHarness(t)
	h.update(t, "v1")
	key := reldb.Row{reldb.I(1)}

	old, err := h.a.ProveView("S", key)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache at the old version, then advance it.
	if _, err := h.a.ProveView("S", key); err != nil {
		t.Fatal(err)
	}
	h.update(t, "v2")

	before := h.a.Stats()
	fresh, err := h.a.ProveView("S", key)
	if err != nil {
		t.Fatal(err)
	}
	after := h.a.Stats()
	if after.ProofCacheMisses != before.ProofCacheMisses+1 {
		t.Fatalf("read after seq advance was served from cache (hits %d -> %d, misses %d -> %d)",
			before.ProofCacheHits, after.ProofCacheHits, before.ProofCacheMisses, after.ProofCacheMisses)
	}
	if fresh.Seq <= old.Seq {
		t.Fatalf("fresh proof seq %d did not advance past %d", fresh.Seq, old.Seq)
	}
	if fresh.Root == old.Root {
		t.Fatal("fresh proof still anchors to the superseded root")
	}
	if got, _ := fresh.Row[1].Str(); got != "v2" {
		t.Fatalf("fresh proof proves stale row value %q", got)
	}
	if !reldb.VerifyRowProof(fresh.Root, fresh.Row, fresh.Proof) {
		t.Fatal("fresh proof does not verify against the new root")
	}
	// The superseded proof must not verify against the new root — the
	// seq check is what guarantees it is never served, and the root
	// change is what makes it harmless even if it leaked.
	if reldb.VerifyRowProof(fresh.Root, old.Row, old.Proof) {
		t.Fatal("stale proof verifies against the new root")
	}
}
