package core

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"medshare/internal/chain"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/light"
	"medshare/internal/merkle"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// Serving edge for light clients: header-only chain sync, chain-proven
// share heads, and proof-carrying single-row fetches. A light client is
// authenticated (its requests are signed) but is NOT a sharing peer —
// none of these handlers grant replica status, none serve a view
// payload, and none touch the share's update protocol. Everything
// served here is either a block header the client verifies itself or a
// value pinned under a Merkle proof to such a header.

// lightHeaderBatch caps headers per chain.headers response page;
// clients loop until a page comes back empty.
const lightHeaderBatch = 512

// lightHeadScanDepth is how far below the tip the share-head handler
// looks for the main-chain header whose StateRoot matches the proof it
// just built. The store's head advances before the world state applies
// the block (commitBlock order), so the matching header is normally the
// tip or one below; deeper misses mean the snapshot raced a commit.
const lightHeadScanDepth = 16

// lightHeadAttempts bounds re-snapshots when the state is mid-apply
// (per-transaction commits mutate the live state between two header
// roots, so a proof built in that window anchors nowhere).
const lightHeadAttempts = 50

// authorizeLightRequest verifies a light request's signature over its
// canonical bytes. Unlike authorizeShareRequest there is no contract
// membership check: light clients are read-only outsiders whose reads
// are safe by construction (every response is verifiable against the
// chain). Per-share read ACLs for light clients are a tracked follow-up.
func authorizeLightRequest(requester identity.Address, pubKey, signed, sig []byte) error {
	if len(pubKey) != ed25519.PublicKeySize {
		return ErrNotAuthorized
	}
	if err := identity.Verify(requester, ed25519.PublicKey(pubKey), signed, sig); err != nil {
		return fmt.Errorf("%w: %v", ErrNotAuthorized, err)
	}
	return nil
}

// serveHeaders answers a chain.headers request with a page of
// main-chain headers starting at the requested height.
func (p *Peer) serveHeaders(msg p2p.Message) (p2p.Message, error) {
	req, err := light.DecodeHeadersRequest(msg.Payload)
	if err != nil {
		return p2p.Message{}, fmt.Errorf("core: bad headers request: %w", err)
	}
	if err := authorizeLightRequest(req.Requester, req.PubKey, req.SigningBytes(), req.Sig); err != nil {
		return p2p.Message{}, err
	}
	return p2p.Message{Kind: msg.Kind, Payload: chain.EncodeHeaders(p.LightHeaders(req.FromHeight))}, nil
}

// LightHeaders returns one page of main-chain headers starting at the
// given height (empty when from is beyond the tip). Exported so the
// HTTP serving edge pages identically to the p2p handler.
func (p *Peer) LightHeaders(from uint64) []chain.Header {
	mc := p.cfg.Node.Store().MainChain()
	var hs []chain.Header
	if from < uint64(len(mc)) {
		to := from + lightHeaderBatch
		if to > uint64(len(mc)) {
			to = uint64(len(mc))
		}
		hs = make([]chain.Header, 0, to-from)
		for i := from; i < to; i++ {
			hs = append(hs, mc[i].Header)
		}
	}
	return hs
}

// serveLightHead answers a light.head request: the share's current
// on-chain metadata under a state-membership proof, anchored to the
// main-chain header whose StateRoot the proof verifies against.
func (p *Peer) serveLightHead(msg p2p.Message) (p2p.Message, error) {
	req, err := light.DecodeShareHeadRequest(msg.Payload)
	if err != nil {
		return p2p.Message{}, fmt.Errorf("core: bad share-head request: %w", err)
	}
	if err := authorizeLightRequest(req.Requester, req.PubKey, req.SigningBytes(), req.Sig); err != nil {
		return p2p.Message{}, err
	}
	head, err := p.LightHead(req.ShareID)
	if err != nil {
		return p2p.Message{}, err
	}
	return p2p.Message{Kind: msg.Kind, Payload: light.EncodeShareHead(&head)}, nil
}

// LightHead builds a light.ShareHead for the share: its current
// on-chain metadata under a state proof anchored to a main-chain
// header. Exported so the HTTP serving edge shares the p2p handler's
// snapshot-vs-header convergence logic.
func (p *Peer) LightHead(shareID string) (light.ShareHead, error) {
	state := p.cfg.Node.State()
	store := p.cfg.Node.Store()
	key := "share/" + shareID
	for attempt := 0; ; attempt++ {
		value, ver, proof, root, err := state.ProveKey(key)
		if err != nil {
			return light.ShareHead{}, err
		}
		if height, ok := mainChainHeightOfRoot(store, root); ok {
			return light.ShareHead{Height: height, Meta: value, Version: ver, Proof: proof}, nil
		}
		if attempt >= lightHeadAttempts {
			return light.ShareHead{}, fmt.Errorf("core: share %s state snapshot matches no main-chain header", shareID)
		}
		// The snapshot raced a block apply; the state settles on the new
		// header's root within the apply's own duration.
		<-p.cfg.Clock.After(p.cfg.Retry.withDefaults().Base)
	}
}

// mainChainHeightOfRoot finds the main-chain height whose header
// commits to the given state root, scanning down from the tip. Several
// heights can share a root (blocks whose transactions all failed write
// nothing); any of them is a valid anchor — the proof verifies against
// the same root either way.
func mainChainHeightOfRoot(store *chain.Store, root merkle.Hash) (uint64, bool) {
	mc := store.MainChain()
	for i := len(mc) - 1; i >= 0 && i >= len(mc)-lightHeadScanDepth; i-- {
		if mc[i].Header.StateRoot == root {
			return uint64(i), true
		}
	}
	return 0, false
}

// lightRowAttempts bounds the serve-side wait for the local replica to
// converge to the on-chain payload hash before a row proof is served.
// The local view only advances when a finalized update is applied, so
// under write load it briefly lags the chain commit; serving from that
// window would hand the client a proof that anchors to a superseded
// payload hash and force a client-side retry.
const lightRowAttempts = 50

// serveLightRow answers a light.row request: one proven row of the
// share's current view, plus the schema and the table-hash preimage
// fields the client needs to bind the row root to the on-chain payload
// hash. Proof construction rides the per-share proof cache (prove.go).
func (p *Peer) serveLightRow(msg p2p.Message) (p2p.Message, error) {
	req, err := light.DecodeRowRequest(msg.Payload)
	if err != nil {
		return p2p.Message{}, fmt.Errorf("core: bad row request: %w", err)
	}
	if err := authorizeLightRequest(req.Requester, req.PubKey, req.SigningBytes(), req.Sig); err != nil {
		return p2p.Message{}, err
	}
	rf, err := p.LightRow(req.ShareID, req.Key)
	if err != nil {
		return p2p.Message{}, err
	}
	payload, err := light.EncodeRowFetch(&rf)
	if err != nil {
		return p2p.Message{}, err
	}
	return p2p.Message{Kind: msg.Kind, Payload: payload}, nil
}

// LightRow builds a light.RowFetch for one view row: the proven row
// plus the table-hash preimage fields and schema a light client needs
// to bind it to the on-chain payload hash. Exported so the HTTP
// serving edge shares the p2p handler's convergence logic.
func (p *Peer) LightRow(shareID string, key reldb.Row) (light.RowFetch, error) {
	pr, err := p.proveViewConverged(shareID, key)
	if err != nil {
		return light.RowFetch{}, err
	}
	s, err := p.share(shareID)
	if err != nil {
		return light.RowFetch{}, err
	}
	view, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return light.RowFetch{}, err
	}
	return light.RowFetch{
		Seq:       pr.Seq,
		SchemaSum: pr.SchemaSum,
		Rows:      pr.Rows,
		Root:      pr.Root,
		// The schema is fixed at share registration; the client binds it
		// via SchemaSum, so serving it from a fresh snapshot is safe.
		Schema: view.Schema(),
		Row:    pr.Row,
		Proof:  pr.Proof,
	}, nil
}

// proveViewConverged builds a row proof whose table hash matches the
// share's current on-chain payload hash, waiting out the window where a
// freshly finalized update has committed on-chain but the local replica
// has not applied it yet. If the replica does not converge within the
// attempt budget the latest proof is served anyway — the client's own
// verification decides whether it is acceptable.
func (p *Peer) proveViewConverged(shareID string, key reldb.Row) (RowProof, error) {
	stateKey := "share/" + shareID
	var pr RowProof
	for attempt := 0; ; attempt++ {
		var err error
		pr, err = p.ProveView(shareID, key)
		if err != nil {
			return RowProof{}, err
		}
		raw, _, ok := p.cfg.Node.State().Get(stateKey)
		if !ok {
			return pr, nil
		}
		meta, err := sharereg.DecodeMeta(raw)
		if err != nil {
			return pr, nil
		}
		if meta.LastPayloadHash == "" || rowProofPayloadHex(&pr) == meta.LastPayloadHash {
			return pr, nil
		}
		if attempt >= lightRowAttempts {
			return pr, nil
		}
		<-p.cfg.Clock.After(p.cfg.Retry.withDefaults().Base)
	}
}

// rowProofPayloadHex recomputes the table hash the proof's preimage
// fields commit to, mirroring reldb.Table.Hash.
func rowProofPayloadHex(pr *RowProof) string {
	var buf [72]byte
	copy(buf[:32], pr.SchemaSum[:])
	binary.BigEndian.PutUint64(buf[32:40], uint64(pr.Rows))
	copy(buf[40:], pr.Root[:])
	h := sha256.Sum256(buf[:])
	return hex.EncodeToString(h[:])
}
