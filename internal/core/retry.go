package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"medshare/internal/p2p"
)

// Data-channel resilience: every fetch/sync RPC runs under a per-attempt
// context deadline and a bounded exponential backoff with jitter, and
// per-endpoint health tracking short-circuits requests to peers that
// have failed repeatedly — a partitioned or crashed counterparty costs
// one fast error instead of a full retry ladder, until its quarantine
// expires and a probe is allowed through. The chain path (SubmitTx,
// WaitTx, Query) is a direct in-process call to the peer's own node and
// needs none of this.

// ErrPeerDown marks a request short-circuited because the target
// endpoint is quarantined after repeated failures.
var ErrPeerDown = errors.New("core: peer endpoint quarantined")

// Backoff is a bounded exponential backoff schedule with jitter.
// The zero value selects the defaults noted per field.
type Backoff struct {
	// Base is the first retry delay (0 → 10ms).
	Base time.Duration
	// Max caps each delay (0 → 2s).
	Max time.Duration
	// Factor is the per-retry growth multiplier (0 → 2).
	Factor float64
	// Jitter is the fraction of each delay randomized away, in [0,1]:
	// the actual wait is uniform in [d·(1−Jitter), d] (0 → 0.5).
	Jitter float64
	// Attempts is the total number of tries including the first (0 → 4;
	// negative → 1, i.e. no retries).
	Attempts int
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	if b.Attempts == 0 {
		b.Attempts = 4
	}
	if b.Attempts < 0 {
		b.Attempts = 1
	}
	return b
}

// delay returns the pre-jitter delay before retry number retry (0-based):
// Base·Factor^retry, capped at Max. Deterministic — the property tests
// assert monotone growth and the cap on this function alone.
func (b Backoff) delay(retry int) time.Duration {
	d := float64(b.Base)
	for i := 0; i < retry; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			return b.Max
		}
	}
	if d >= float64(b.Max) {
		return b.Max
	}
	return time.Duration(d)
}

// jittered maps a uniform sample u in [0,1) onto the jitter window
// [d·(1−Jitter), d].
func (b Backoff) jittered(d time.Duration, u float64) time.Duration {
	if b.Jitter <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 - b.Jitter*u))
}

// HealthPolicy tunes the per-endpoint failure tracking. The zero value
// selects the defaults noted per field.
type HealthPolicy struct {
	// FailureThreshold is the number of consecutive failures before an
	// endpoint is quarantined (0 → 3).
	FailureThreshold int
	// Quarantine is the first quarantine length; it doubles with every
	// further failure (0 → 1s).
	Quarantine time.Duration
	// MaxQuarantine caps the doubling (0 → 10s).
	MaxQuarantine time.Duration
}

func (h HealthPolicy) withDefaults() HealthPolicy {
	if h.FailureThreshold <= 0 {
		h.FailureThreshold = 3
	}
	if h.Quarantine <= 0 {
		h.Quarantine = time.Second
	}
	if h.MaxQuarantine <= 0 {
		h.MaxQuarantine = 10 * time.Second
	}
	return h
}

// endpointHealth is one endpoint's consecutive-failure record.
type endpointHealth struct {
	fails int
	until time.Time // quarantined before this instant
}

// Stats is a snapshot of the peer's resilience counters — chaos tests
// assert that recovery machinery actually ran, not just that the final
// state converged.
type Stats struct {
	// RPCAttempts counts data-channel request attempts, retries included.
	RPCAttempts uint64
	// RPCFailures counts failed attempts; RPCRetries the re-attempts they
	// triggered.
	RPCFailures uint64
	RPCRetries  uint64
	// DeadShortCircuits counts requests refused locally because the
	// target endpoint was quarantined.
	DeadShortCircuits uint64
	// ResyncsTriggered counts reconcile actions started (pending apply,
	// missed-final catch-up, or root-mismatch repair); RepairHeals the
	// ones that completed.
	ResyncsTriggered uint64
	RepairHeals      uint64
	// ProposalRetries counts cascade proposals re-attempted after a
	// transient contract conflict (pending gate, stale base).
	ProposalRetries uint64
	// SyncRounds counts sequential anti-entropy waves across all
	// structural syncs; SyncRequests the request messages they sent
	// (Requests > Rounds ⇒ waves were pipelined across chunks).
	SyncRounds   uint64
	SyncRequests uint64
	// BatchCommits counts group-commit submissions (one batched
	// submitAndWaitMany call); BatchTxs the transactions they carried —
	// BatchTxs/BatchCommits is the realized mean batch size.
	BatchCommits uint64
	BatchTxs     uint64
	// FetchesServed and SyncsServed count data-channel requests this
	// peer answered, by kind (payload fetch vs structural sync round) —
	// the peer-side view of serve traffic the /metrics endpoint exports.
	FetchesServed uint64
	SyncsServed   uint64
	// HeadersServed, LightHeadsServed and LightRowsServed count the
	// light-client RPCs this peer answered (header pages, chain-proven
	// share heads, proof-carrying row fetches).
	HeadersServed    uint64
	LightHeadsServed uint64
	LightRowsServed  uint64
	// ProofCacheHits/Misses split ProveView calls between memoized
	// proofs and fresh O(log n) tree walks; the cache resets on every
	// applied-sequence advance, so the hit rate is also a measure of
	// how read-hot shares are between updates.
	ProofCacheHits   uint64
	ProofCacheMisses uint64
	// ShardQueueDepth is a gauge: events currently queued across the
	// sharded event runtime at snapshot time.
	ShardQueueDepth uint64
}

// statsCounters is the peer-internal atomic form of Stats.
type statsCounters struct {
	rpcAttempts       atomic.Uint64
	rpcFailures       atomic.Uint64
	rpcRetries        atomic.Uint64
	deadShortCircuits atomic.Uint64
	resyncsTriggered  atomic.Uint64
	repairHeals       atomic.Uint64
	proposalRetries   atomic.Uint64
	syncRounds        atomic.Uint64
	syncRequests      atomic.Uint64
	batchCommits      atomic.Uint64
	batchTxs          atomic.Uint64
	fetchesServed     atomic.Uint64
	syncsServed       atomic.Uint64
	headersServed     atomic.Uint64
	lightHeadsServed  atomic.Uint64
	lightRowsServed   atomic.Uint64
	proofCacheHits    atomic.Uint64
	proofCacheMisses  atomic.Uint64
}

func (c *statsCounters) snapshot() Stats {
	return Stats{
		RPCAttempts:       c.rpcAttempts.Load(),
		RPCFailures:       c.rpcFailures.Load(),
		RPCRetries:        c.rpcRetries.Load(),
		DeadShortCircuits: c.deadShortCircuits.Load(),
		ResyncsTriggered:  c.resyncsTriggered.Load(),
		RepairHeals:       c.repairHeals.Load(),
		ProposalRetries:   c.proposalRetries.Load(),
		SyncRounds:        c.syncRounds.Load(),
		SyncRequests:      c.syncRequests.Load(),
		BatchCommits:      c.batchCommits.Load(),
		BatchTxs:          c.batchTxs.Load(),
		FetchesServed:     c.fetchesServed.Load(),
		SyncsServed:       c.syncsServed.Load(),
		HeadersServed:     c.headersServed.Load(),
		LightHeadsServed:  c.lightHeadsServed.Load(),
		LightRowsServed:   c.lightRowsServed.Load(),
		ProofCacheHits:    c.proofCacheHits.Load(),
		ProofCacheMisses:  c.proofCacheMisses.Load(),
	}
}

// Stats returns a snapshot of the peer's resilience and write-path
// counters, plus live gauges (shard queue depths) read at call time.
func (p *Peer) Stats() Stats {
	st := p.stats.snapshot()
	st.ShardQueueDepth = p.shardQueueDepth()
	return st
}

// jitterRng is the process-wide jitter sampler. Jitter exists to spread
// concurrent retries apart, so shared seeding is fine — determinism of
// *fault* sampling lives in faultnet, not here.
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(1))
)

func jitterSample() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRng.Float64()
}

// quarantined reports whether requests to endpoint are short-circuited.
func (p *Peer) quarantined(endpoint string) (time.Time, bool) {
	p.healthMu.Lock()
	defer p.healthMu.Unlock()
	h, ok := p.health[endpoint]
	if !ok || h.until.IsZero() {
		return time.Time{}, false
	}
	if !p.cfg.Clock.Now().Before(h.until) {
		// Quarantine expired: allow one probe through. The record keeps
		// its failure count, so a failed probe re-quarantines for longer.
		h.until = time.Time{}
		return time.Time{}, false
	}
	return h.until, true
}

// noteEndpointFailure records a failed request and quarantines the
// endpoint once it crosses the policy threshold, doubling per further
// failure up to the cap.
func (p *Peer) noteEndpointFailure(endpoint string) {
	pol := p.cfg.Health.withDefaults()
	p.healthMu.Lock()
	defer p.healthMu.Unlock()
	h, ok := p.health[endpoint]
	if !ok {
		h = &endpointHealth{}
		p.health[endpoint] = h
	}
	h.fails++
	if h.fails < pol.FailureThreshold {
		return
	}
	over := h.fails - pol.FailureThreshold
	if over > 16 {
		over = 16
	}
	q := pol.Quarantine << over
	if q > pol.MaxQuarantine || q <= 0 {
		q = pol.MaxQuarantine
	}
	h.until = p.cfg.Clock.Now().Add(q)
}

// noteEndpointOK clears an endpoint's failure record.
func (p *Peer) noteEndpointOK(endpoint string) {
	p.healthMu.Lock()
	delete(p.health, endpoint)
	p.healthMu.Unlock()
}

// retriableRPC reports whether a failed data-channel request is worth
// re-attempting. Unknown endpoints and missing handlers are
// configuration, not weather; a canceled caller has moved on. Everything
// else — timeouts, connection errors, injected faults, transient remote
// errors like ErrStaleData (the updater may not have applied its own
// update yet) — retries.
func retriableRPC(err error) bool {
	switch {
	case errors.Is(err, context.Canceled):
		return false
	case errors.Is(err, p2p.ErrUnknownEndpoint), errors.Is(err, p2p.ErrNoHandler):
		return false
	}
	// Over TCP, remote errors arrive as text.
	msg := err.Error()
	return !strings.Contains(msg, "no request handler") &&
		!strings.Contains(msg, "unknown endpoint")
}

// channelRequest is the single data-channel RPC path: per-attempt
// context deadline (Config.RPCTimeout), bounded exponential backoff with
// jitter between attempts (Config.Retry), and health bookkeeping. All
// fetch and sync rounds go through here.
func (p *Peer) channelRequest(ctx context.Context, endpoint string, msg p2p.Message) (p2p.Message, error) {
	if until, dead := p.quarantined(endpoint); dead {
		p.stats.deadShortCircuits.Add(1)
		return p2p.Message{}, fmt.Errorf("%w: %s until %s", ErrPeerDown, endpoint, until.Format(time.RFC3339Nano))
	}
	b := p.cfg.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if attempt > 0 {
			p.stats.rpcRetries.Add(1)
			wait := b.jittered(b.delay(attempt-1), jitterSample())
			select {
			case <-p.cfg.Clock.After(wait):
			case <-ctx.Done():
				return p2p.Message{}, ctx.Err()
			}
		}
		p.stats.rpcAttempts.Add(1)
		attemptCtx := ctx
		var cancel context.CancelFunc
		if p.cfg.RPCTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.cfg.RPCTimeout)
		}
		resp, err := p.cfg.Transport.Request(attemptCtx, endpoint, msg)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			p.noteEndpointOK(endpoint)
			return resp, nil
		}
		p.stats.rpcFailures.Add(1)
		p.noteEndpointFailure(endpoint)
		lastErr = err
		if ctx.Err() != nil {
			return p2p.Message{}, fmt.Errorf("core: request to %s: %w", endpoint, err)
		}
		if !retriableRPC(err) {
			break
		}
	}
	return p2p.Message{}, fmt.Errorf("core: request to %s failed after retries: %w", endpoint, lastErr)
}

// retriableProposal reports whether a cascade proposal failure is a
// transient ordering conflict: the share's pending gate was held by a
// concurrent update, or our base raced a competing proposal for the same
// sequence number. Both resolve as soon as the conflicting update
// finalizes and our replica catches up, so the cascade retries with
// backoff instead of abandoning the dependent share.
func retriableProposal(err error) bool {
	if err == nil || !errors.Is(err, ErrTxFailed) {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "not yet acknowledged") ||
		strings.Contains(msg, "sequence mismatch")
}
