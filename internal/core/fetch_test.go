package core

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// fetchHarness wires two peers over a memnet with one PoA node — the
// minimal environment for white-box data-channel tests.
type fetchHarness struct {
	node *node.Node
	a, b *Peer
	net  *p2p.MemNetwork
}

func newFetchHarness(t *testing.T) *fetchHarness {
	t.Helper()
	nid := identity.MustNew("node")
	n, err := node.New(node.Config{
		NetworkName:   "core-test",
		Identity:      nid,
		Engine:        consensus.NewPoA(false, nid.Address()),
		Registry:      contract.NewRegistry(sharereg.New()),
		BlockInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	n.Start(ctx)
	t.Cleanup(n.Stop)

	mem := p2p.NewMemNetwork()
	dir := NewDirectory()
	mk := func(name string) *Peer {
		id := identity.MustNew(name)
		db := reldb.NewDatabase(name)
		tbl := reldb.MustNewTable(reldb.Schema{
			Name: "T",
			Columns: []reldb.Column{
				{Name: "k", Type: reldb.KindInt},
				{Name: "v", Type: reldb.KindString},
			},
			Key: []string{"k"},
		})
		for i := int64(0); i < 8; i++ {
			tbl.MustInsert(reldb.Row{reldb.I(i), reldb.S("v0")})
		}
		db.PutTable(tbl)
		p, err := NewPeer(Config{
			Identity: id, DB: db, Node: n,
			Transport: mem.Endpoint(name), Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		t.Cleanup(p.Stop)
		return p
	}
	h := &fetchHarness{node: n, a: mk("A"), b: mk("B"), net: mem}

	lens := func(view string) bx.Lens { return bx.Project(view, []string{"k", "v"}, nil) }
	err = h.a.RegisterShare(ctx, RegisterShareArgs{
		ID: "S", SourceTable: "T", Lens: lens("Sa"), ViewName: "Sa",
		Peers: []identity.Address{h.a.Address(), h.b.Address()},
		WritePerm: map[string][]identity.Address{
			"v": {h.a.Address(), h.b.Address()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.b.AttachShare("S", "T", lens("Sb"), "Sb"); err != nil {
		t.Fatal(err)
	}
	return h
}

// update performs one finalized update from peer a.
func (h *fetchHarness) update(t *testing.T, val string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := h.a.UpdateSource("T", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"v": reldb.S(val)})
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.a.ProposeUpdate(ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.a.WaitFinal(ctx, "S", res.Seq); err != nil {
		t.Fatal(err)
	}
}

// rawFetch performs a signed fetch as peer p and returns the decoded
// response.
func rawFetch(t *testing.T, h *fetchHarness, p *Peer, haveSeq uint64) FetchResponse {
	t.Helper()
	req := FetchRequest{
		ShareID:   "S",
		MinSeq:    0,
		HaveSeq:   haveSeq,
		Requester: p.Address(),
		PubKey:    append([]byte(nil), p.cfg.Identity.PublicKey()...),
		TsMicro:   time.Now().UnixMicro(),
	}
	req.Sig = p.cfg.Identity.Sign(req.signingBytes())
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	msg, err := p.cfg.Transport.Request(ctx, "A", p2p.Message{Kind: p2p.KindDataFetch, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	var resp FetchResponse
	if err := json.Unmarshal(msg.Payload, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFetchDeltaMode(t *testing.T) {
	h := newFetchHarness(t)
	h.update(t, "v1")
	// The updater retains the seq-0 view; a requester holding seq 0 gets
	// a delta with exactly one changed row.
	resp := rawFetch(t, h, h.b, 0)
	// HaveSeq 0 means "no version": full expected.
	if resp.Mode != FetchModeFull {
		t.Fatalf("mode for haveSeq 0 = %q", resp.Mode)
	}

	h.update(t, "v2") // a's prev is now the seq-1 view
	resp = rawFetch(t, h, h.b, 1)
	if resp.Mode != FetchModeDelta {
		t.Fatalf("mode for haveSeq 1 = %q, want delta", resp.Mode)
	}
	cs, err := reldb.UnmarshalChangeset(resp.Changeset)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() != 1 || len(cs.Updated) != 1 {
		t.Fatalf("changeset = %+v", cs)
	}
	// The delta is much smaller than the full table.
	full := rawFetch(t, h, h.b, 0)
	if len(resp.Changeset) >= len(full.Table) {
		t.Fatalf("delta (%d bytes) not smaller than full (%d bytes)", len(resp.Changeset), len(full.Table))
	}
}

func TestFetchDeltaUnavailableFallsBack(t *testing.T) {
	h := newFetchHarness(t)
	h.update(t, "v1")
	h.update(t, "v2")
	// Requester claims an old version the updater no longer retains
	// (only seq-1 is kept): full response.
	resp := rawFetch(t, h, h.b, 42)
	if resp.Mode != FetchModeFull {
		t.Fatalf("mode = %q, want full fallback", resp.Mode)
	}
}

func TestFetchRejectsBadSignature(t *testing.T) {
	h := newFetchHarness(t)
	h.update(t, "v1")
	req := FetchRequest{
		ShareID:   "S",
		Requester: h.b.Address(),
		PubKey:    append([]byte(nil), h.b.cfg.Identity.PublicKey()...),
		TsMicro:   time.Now().UnixMicro(),
	}
	req.Sig = h.b.cfg.Identity.Sign([]byte("wrong bytes"))
	payload, _ := json.Marshal(req)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := h.b.cfg.Transport.Request(ctx, "A", p2p.Message{Kind: p2p.KindDataFetch, Payload: payload})
	if err == nil {
		t.Fatal("forged fetch accepted")
	}
}

func TestFetchRejectsImpersonation(t *testing.T) {
	h := newFetchHarness(t)
	h.update(t, "v1")
	// b signs correctly but claims a's address: address/key mismatch.
	req := FetchRequest{
		ShareID:   "S",
		Requester: h.a.Address(),
		PubKey:    append([]byte(nil), h.b.cfg.Identity.PublicKey()...),
		TsMicro:   time.Now().UnixMicro(),
	}
	req.Sig = h.b.cfg.Identity.Sign(req.signingBytes())
	payload, _ := json.Marshal(req)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := h.b.cfg.Transport.Request(ctx, "A", p2p.Message{Kind: p2p.KindDataFetch, Payload: payload})
	if err == nil {
		t.Fatal("impersonated fetch accepted")
	}
}

func TestSnapshotTableIndependent(t *testing.T) {
	h := newFetchHarness(t)
	snap, err := h.a.snapshotTable("T")
	if err != nil {
		t.Fatal(err)
	}
	err = h.a.UpdateSource("T", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"v": reldb.S("mutated")})
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := snap.Value(reldb.Row{reldb.I(1)}, "v")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.Str(); s != "v0" {
		t.Fatal("snapshot aliases live table")
	}
}

func TestEndToEndDeltaApply(t *testing.T) {
	// The full protocol path: after the first update (full fetch), the
	// second update reaches B via the delta path and B's data matches.
	h := newFetchHarness(t)
	h.update(t, "v1")
	h.update(t, "v2")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.a.WaitFinal(ctx, "S", 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, err := h.b.Source("T")
		if err != nil {
			t.Fatal(err)
		}
		v, _ := got.Value(reldb.Row{reldb.I(1)}, "v")
		if s, _ := v.Str(); s == "v2" {
			aView, _ := h.a.View("S")
			bView, _ := h.b.View("S")
			if aView.Hash() != bView.Hash() {
				t.Fatal("replicas diverge")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("delta-path update never arrived")
}
