// Package core implements the paper's primary contribution: the
// data-sharing peer that splits its full medical records into fine-grained
// views shared pairwise with other stakeholders, keeps every replica
// consistent through bidirectional transformations, and gates every update
// through the sharereg smart contract on the blockchain.
//
// One Peer corresponds to one stakeholder of Fig. 2 (Patient, Doctor,
// Researcher, ...). It owns:
//
//   - a local reldb.Database with full source tables and materialized
//     shared views (medical data never leaves the peers);
//   - a set of Share bindings, each pairing a local source table with a
//     bx lens that derives the shared view;
//   - a connection to a blockchain node for permissions, ordering, and
//     notifications;
//   - a p2p data channel over which counterparties fetch view payloads
//     directly (the chain carries only metadata and hashes).
package core

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"medshare/internal/bx"
	"medshare/internal/chain"
	"medshare/internal/clock"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
	"medshare/internal/store"
)

// Errors returned by the sharing layer.
var (
	ErrUnknownShare   = errors.New("core: unknown share")
	ErrShareBound     = errors.New("core: share already bound")
	ErrNoChanges      = errors.New("core: view unchanged, nothing to propose")
	ErrPayloadHash    = errors.New("core: fetched payload does not match on-chain hash")
	ErrNotAuthorized  = errors.New("core: data fetch from non-peer")
	ErrStaleData      = errors.New("core: counterparty does not hold requested version")
	ErrCascadeTooDeep = errors.New("core: cascade depth limit exceeded")
	ErrTxFailed       = errors.New("core: transaction rejected by contract")
)

// Config configures a Peer.
type Config struct {
	// Identity is the peer's signing identity; its address is the peer's
	// principal on-chain.
	Identity *identity.Identity
	// DB is the peer's local database (sources + materialized views).
	DB *reldb.Database
	// Node is the blockchain node the peer submits transactions to and
	// receives events from. Several peers may share one node, or each
	// peer may run its own (Fig. 2 draws one per stakeholder).
	Node *node.Node
	// Transport is the peer's endpoint on the data channel. Nil disables
	// remote fetch (single-process tests wire peers to one MemNetwork).
	Transport p2p.Transport
	// Directory maps peer addresses to transport endpoint names.
	Directory *Directory
	// Clock abstracts time; nil means wall clock.
	Clock clock.Clock
	// MaxCascadeDepth bounds re-share propagation chains (Fig. 5 step 6
	// re-entry). 0 means 16.
	MaxCascadeDepth int
	// FanoutWorkers bounds how many shares the peer processes
	// concurrently on its fan-out paths (cascade, Resync, SyncShares).
	// Share operations mostly wait on chain commits, so this is an
	// in-flight-proposals bound rather than a CPU bound. 0 means 8;
	// negative forces sequential processing.
	FanoutWorkers int
	// EventShards partitions the share space across that many
	// independent event-loop goroutines (hash(shareID) → shard), each
	// with its own FIFO queue, so a peer hosting thousands of shares
	// applies incoming updates on all cores instead of funneling them
	// through one dispatch pool. 0 means max(FanoutWorkers, GOMAXPROCS)
	// — at least the fan-out width even on small machines, because
	// shard loops mostly wait on chain commits, not CPU. Negative
	// forces inline sequential dispatch (the pre-shard behavior; also
	// the default when FanoutWorkers requests sequential processing).
	EventShards int
	// TxTimeout bounds each wait for a transaction commit. 0 means 30s.
	TxTimeout time.Duration
	// RPCTimeout bounds each individual data-channel request attempt
	// (fetch and sync rounds). 0 means 5s; negative disables the
	// per-attempt deadline (the caller's context still applies).
	RPCTimeout time.Duration
	// Retry tunes the data-channel backoff schedule; the zero value
	// selects the documented defaults (4 attempts, 10ms base, 2s cap,
	// factor 2, 50% jitter).
	Retry Backoff
	// Health tunes the per-endpoint failure tracking that short-circuits
	// requests to repeatedly failing peers; the zero value selects the
	// documented defaults (3 failures, 1s quarantine doubling to 10s).
	Health HealthPolicy
	// ResyncInterval, when positive, runs the background anti-entropy
	// repair loop: Resync periodically reconciles every share against
	// on-chain state — missed pending updates, missed finals, and root
	// mismatches against the on-chain payload hash all self-heal without
	// manual intervention. Zero disables the loop; Resync can still be
	// called manually.
	ResyncInterval time.Duration
	// Logf, when set, receives progress lines (examples wire it to
	// fmt.Printf; tests leave it nil).
	Logf func(format string, args ...any)
	// Store, when non-nil, makes share replicas durable: every applied
	// update commits the view (O(changed nodes), content-addressed) to
	// the log, and AttachShare / RegisterShare restore verified replicas
	// from it on restart instead of re-deriving them. See persist.go.
	Store *store.Store
}

// Peer is one stakeholder in the sharing network.
type Peer struct {
	cfg Config

	mu     sync.Mutex
	shares map[string]*Share

	cancelEvents func()
	wg           sync.WaitGroup
	stopOnce     sync.Once
	stopped      chan struct{}

	// Incoming-event dispatch state (see events.go): the share space is
	// partitioned across per-shard FIFO queues, each drained by its own
	// goroutine (started per Start/Restart generation).
	evShards []*eventShard

	// history records locally observed share activity for the audit
	// examples; the authoritative history lives on-chain.
	history []HistoryEntry

	// health tracks per-endpoint consecutive request failures for the
	// quarantine short-circuit (see retry.go).
	healthMu sync.Mutex
	health   map[string]*endpointHealth

	// stats are the resilience counters behind Stats().
	stats statsCounters
}

// Share is one peer's binding of a shared table: the local source it is
// derived from, the lens, and the current materialized view replica.
type Share struct {
	// ID is the on-chain share identifier (e.g. "D13&D31").
	ID string
	// SourceTable names the local source table the lens reads.
	SourceTable string
	// Lens derives the local view of the shared table from SourceTable.
	Lens bx.Lens
	// ViewName is the local name for the materialized view (the paper
	// gives the two replicas different names, D13 vs D31).
	ViewName string

	// prioSeed is the share's storage-priority secret from the on-chain
	// metadata (empty on pre-seed shares): every replica of the view is
	// stored under treap priorities derived from it by HMAC-SHA-256, so
	// the replicas — which must agree on the Merkle row root — converge
	// to identical tree shapes that nobody without the secret can grind
	// row keys against. Immutable after binding.
	prioSeed []byte

	// opMu serializes share-level operations (ProposeUpdate,
	// applyIncoming, Resync) against each other. Without it, a peer's
	// optimistic replica refresh during its own proposal can race the
	// arrival of a competing update that won the same sequence number,
	// making the peer skip an update it must acknowledge. Single-share
	// paths never hold one share's opMu while taking another's (cascade
	// releases the origin's lock before proposing on sibling shares);
	// the only multi-share holder is the group-commit path
	// (ProposeUpdates), which always acquires in sorted share-ID order,
	// so concurrent cascades and batches cannot deadlock.
	opMu sync.Mutex

	// stMu guards the mutable share state below. Per-share — not
	// peer-wide — so a fetch handler serving one share never contends
	// with operations on the peer's hundreds of others.
	stMu sync.Mutex

	// AppliedSeq is the last fully applied update sequence number.
	AppliedSeq uint64

	// backup holds the pre-proposal view replica while our own update is
	// pending, so a rejection by a counterparty rolls the share back.
	// The local source deliberately keeps the user's edit: an
	// untranslatable edit is surfaced (history entry "rolled-back") for
	// the user to resolve, never silently destroyed.
	backup *shareBackup

	// prev retains the previous view version so the data channel can
	// serve row-level changesets to peers that already hold it, instead
	// of the whole view (delta transfer; measured in experiment E8).
	prev *shareBackup

	// diverged marks that the stored view replica no longer equals
	// Lens.Get(source) — the deliberate state after a rejection or denial
	// rollback, which restores the view but keeps the user's edit in the
	// source. While set, puts take the full path (which re-embeds the
	// whole view and realigns the pair) instead of the delta path (which
	// would silently preserve the divergence).
	diverged bool

	// proofs memoizes membership proofs for the serving edge's
	// proof-carrying reads, invalidated wholesale when the applied
	// sequence (and hence the row root) advances. See prove.go.
	proofs proofCache
}

// seedView returns the table reseeded under the share's priority secret.
// O(1) when the table already carries it — the steady state: clones and
// delta-applied descendants of a seeded replica inherit the seed through
// the shared storage, so only freshly materialized views (lens get, full
// fetch) pay the O(n) rebuild, which they precede with O(n) work anyway.
func (s *Share) seedView(t *reldb.Table) *reldb.Table {
	if len(s.prioSeed) == 0 {
		return t
	}
	return t.Reseeded(s.prioSeed)
}

// shareBackup is a (sequence, view snapshot) pair.
type shareBackup struct {
	seq  uint64
	view *reldb.Table
}

// HistoryEntry records one observed share event.
type HistoryEntry struct {
	Time    time.Time
	ShareID string
	Seq     uint64
	Kind    string
	Cols    []string
	From    identity.Address
	Note    string
}

// NewPeer creates a peer and registers its data-channel handler.
func NewPeer(cfg Config) (*Peer, error) {
	if cfg.Identity == nil || cfg.DB == nil || cfg.Node == nil {
		return nil, fmt.Errorf("core: identity, db and node are required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.MaxCascadeDepth <= 0 {
		cfg.MaxCascadeDepth = 16
	}
	if cfg.TxTimeout <= 0 {
		cfg.TxTimeout = 30 * time.Second
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	if cfg.FanoutWorkers == 0 {
		cfg.FanoutWorkers = 8
	}
	if cfg.EventShards == 0 {
		if cfg.FanoutWorkers <= 1 {
			cfg.EventShards = -1
		} else {
			cfg.EventShards = cfg.FanoutWorkers
			if n := runtime.GOMAXPROCS(0); n > cfg.EventShards {
				cfg.EventShards = n
			}
		}
	}
	p := &Peer{
		cfg:     cfg,
		shares:  make(map[string]*Share),
		stopped: make(chan struct{}),
		health:  make(map[string]*endpointHealth),
	}
	if cfg.EventShards > 0 {
		p.evShards = make([]*eventShard, cfg.EventShards)
		for i := range p.evShards {
			p.evShards[i] = &eventShard{wake: make(chan struct{}, 1)}
		}
	}
	if cfg.Transport != nil {
		cfg.Transport.HandleRequest(p.serveRequest)
		if cfg.Directory != nil {
			cfg.Directory.Set(cfg.Identity.Address(), cfg.Transport.Name())
		}
	}
	return p, nil
}

// serveRequest routes data-channel requests by kind: payload fetches
// (full or delta) and structural anti-entropy sync rounds.
func (p *Peer) serveRequest(msg p2p.Message) (p2p.Message, error) {
	switch msg.Kind {
	case p2p.KindDataFetch:
		p.stats.fetchesServed.Add(1)
		return p.serveDataFetch(msg)
	case p2p.KindSync:
		p.stats.syncsServed.Add(1)
		return p.serveSync(msg)
	case p2p.KindHeaders:
		p.stats.headersServed.Add(1)
		return p.serveHeaders(msg)
	case p2p.KindLightHead:
		p.stats.lightHeadsServed.Add(1)
		return p.serveLightHead(msg)
	case p2p.KindLightRow:
		p.stats.lightRowsServed.Add(1)
		return p.serveLightRow(msg)
	default:
		return p2p.Message{}, fmt.Errorf("core: unexpected message kind %q", msg.Kind)
	}
}

// Address returns the peer's on-chain address.
func (p *Peer) Address() identity.Address { return p.cfg.Identity.Address() }

// Name returns the identity's human-readable name.
func (p *Peer) Name() string { return p.cfg.Identity.Name }

// DB returns the peer's local database.
func (p *Peer) DB() *reldb.Database { return p.cfg.DB }

// Start launches the event-processing loop (notifications from the smart
// contract, Fig. 4 step 4) and, if configured, the periodic resync loop.
func (p *Peer) Start() {
	events, cancel := p.cfg.Node.Subscribe(1024)
	p.cancelEvents = cancel
	// Shard drainers are per-generation: they capture this generation's
	// stop channel, so a Restart (which replaces it) launches a fresh
	// set while the old ones are already gone (Stop waited for them).
	stopped := p.stopped
	for _, sh := range p.evShards {
		p.wg.Add(1)
		go p.runEventShard(sh, stopped)
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-stopped:
				return
			case ev, ok := <-events:
				if !ok {
					return
				}
				p.dispatchEvent(ev)
			}
		}
	}()
	if p.cfg.ResyncInterval > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.stopped:
					return
				case <-p.cfg.Clock.After(p.cfg.ResyncInterval):
				}
				ctx, cancel := context.WithTimeout(context.Background(), p.cfg.TxTimeout)
				if err := p.Resync(ctx); err != nil {
					p.logf("periodic resync: %v", err)
				}
				cancel()
			}
		}()
	}
}

// Stop halts event processing.
func (p *Peer) Stop() {
	p.stopOnce.Do(func() { close(p.stopped) })
	if p.cancelEvents != nil {
		p.cancelEvents()
	}
	p.wg.Wait()
}

// Restart resumes a stopped peer's loops with a fresh event subscription
// (simulating a process coming back after an outage; updates missed while
// down are recovered by Resync or the periodic resync loop).
func (p *Peer) Restart() {
	p.stopOnce = sync.Once{}
	p.stopped = make(chan struct{})
	p.Start()
}

func (p *Peer) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf("[%s] "+format, append([]any{p.Name()}, args...)...)
	}
}

// share returns the binding for id.
func (p *Peer) share(id string) (*Share, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.shares[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownShare, id)
	}
	return s, nil
}

// Shares lists the IDs of all bound shares.
func (p *Peer) Shares() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.shares))
	for id := range p.shares {
		out = append(out, id)
	}
	return out
}

// ShareInfo is a copyable snapshot of a share binding's state.
type ShareInfo struct {
	ID          string
	SourceTable string
	ViewName    string
	AppliedSeq  uint64
}

// ShareInfo returns a snapshot of the local share binding state.
func (p *Peer) ShareInfo(id string) (ShareInfo, error) {
	s, err := p.share(id)
	if err != nil {
		return ShareInfo{}, err
	}
	s.stMu.Lock()
	defer s.stMu.Unlock()
	return ShareInfo{
		ID:          s.ID,
		SourceTable: s.SourceTable,
		ViewName:    s.ViewName,
		AppliedSeq:  s.AppliedSeq,
	}, nil
}

// Meta fetches the current on-chain metadata for a share.
func (p *Peer) Meta(id string) (*sharereg.Meta, error) {
	raw, err := p.cfg.Node.Query(sharereg.ContractName, sharereg.FnGet, []byte(id))
	if err != nil {
		return nil, err
	}
	return sharereg.DecodeMeta(raw)
}

// History returns the locally observed share activity log.
func (p *Peer) History() []HistoryEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]HistoryEntry(nil), p.history...)
}

func (p *Peer) record(e HistoryEntry) {
	e.Time = p.cfg.Clock.Now()
	p.mu.Lock()
	p.history = append(p.history, e)
	p.mu.Unlock()
}

// submitAndWait submits a transaction and waits for its committed receipt,
// translating contract failures into errors.
func (p *Peer) submitAndWait(ctx context.Context, tx *chain.Tx) (contract.Receipt, error) {
	if err := p.cfg.Node.SubmitTx(tx); err != nil {
		return contract.Receipt{}, err
	}
	ctx, cancel := context.WithTimeout(ctx, p.cfg.TxTimeout)
	defer cancel()
	rcpt, err := p.cfg.Node.WaitTx(ctx, tx.IDString())
	if err != nil {
		return contract.Receipt{}, err
	}
	if !rcpt.OK {
		return rcpt, fmt.Errorf("%w: %s", ErrTxFailed, rcpt.Err)
	}
	return rcpt, nil
}

// submitAndWaitMany submits a batch of transactions in one group commit
// and waits for each to land, returning a per-transaction verdict (nil
// on success). One TxTimeout covers the whole batch: the transactions
// share a block, so their commits arrive together. A batch-level
// submission failure fails every verdict.
func (p *Peer) submitAndWaitMany(ctx context.Context, txs []*chain.Tx) []error {
	verdicts := make([]error, len(txs))
	if err := p.cfg.Node.SubmitTxBatch(txs); err != nil {
		for i := range verdicts {
			verdicts[i] = err
		}
		return verdicts
	}
	p.stats.batchCommits.Add(1)
	p.stats.batchTxs.Add(uint64(len(txs)))
	ctx, cancel := context.WithTimeout(ctx, p.cfg.TxTimeout)
	defer cancel()
	for i, tx := range txs {
		rcpt, err := p.cfg.Node.WaitTx(ctx, tx.IDString())
		switch {
		case err != nil:
			verdicts[i] = err
		case !rcpt.OK:
			verdicts[i] = fmt.Errorf("%w: %s", ErrTxFailed, rcpt.Err)
		}
	}
	return verdicts
}

// buildTx signs a sharereg invocation as this peer (not as the node
// identity — several peers may share a node).
func (p *Peer) buildTx(fn, shareID string, arg any) (*chain.Tx, error) {
	raw, err := json.Marshal(arg)
	if err != nil {
		return nil, fmt.Errorf("core: encoding %s args: %w", fn, err)
	}
	tx := &chain.Tx{
		Contract:       sharereg.ContractName,
		Fn:             fn,
		Args:           [][]byte{raw},
		ShareID:        shareID,
		Nonce:          p.cfg.Node.NextNonce(),
		TimestampMicro: p.cfg.Clock.Now().UnixMicro(),
	}
	tx.Sign(p.cfg.Identity)
	return tx, nil
}

// hashHex returns the hex canonical hash of a table.
func hashHex(t *reldb.Table) string {
	h := t.Hash()
	return hex.EncodeToString(h[:])
}

// ShareSnapshot captures one share's local replica state — the source
// table, the materialized view, and the applied sequence number — as of
// one instant. Chaos and crash tests use it to model a peer restarting
// from a cold (possibly stale) backup: restore a snapshot taken before
// updates were applied and the repair loop must catch the share up.
type ShareSnapshot struct {
	ShareID string
	// Seq is the applied sequence number at snapshot time.
	Seq uint64
	// Source and View are independent snapshots of the share's tables.
	Source *reldb.Table
	View   *reldb.Table
}

// SnapshotShare captures the share's current replica state. It takes the
// share's operation lock, so the snapshot is internally consistent (no
// half-applied update).
func (p *Peer) SnapshotShare(id string) (ShareSnapshot, error) {
	s, err := p.share(id)
	if err != nil {
		return ShareSnapshot{}, err
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.stMu.Lock()
	seq := s.AppliedSeq
	s.stMu.Unlock()
	src, err := p.snapshotTable(s.SourceTable)
	if err != nil {
		return ShareSnapshot{}, err
	}
	view, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return ShareSnapshot{}, err
	}
	return ShareSnapshot{ShareID: id, Seq: seq, Source: src, View: view}, nil
}

// RestoreShare installs a snapshot over the share's current state — the
// test hook simulating a process that crashed and came back from an
// older backup. Delta bases, rollback points, and the divergence flag
// are reset: a restarted process holds none of that in-memory state.
// Call on a stopped peer (or accept that live traffic serializes behind
// the restore via the operation lock); afterwards Resync or the repair
// loop reconciles the share against the chain.
func (p *Peer) RestoreShare(snap ShareSnapshot) error {
	s, err := p.share(snap.ShareID)
	if err != nil {
		return err
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	p.cfg.DB.PutTable(snap.Source.Renamed(s.SourceTable))
	p.cfg.DB.PutTable(snap.View.Renamed(s.ViewName))
	s.stMu.Lock()
	s.AppliedSeq = snap.Seq
	s.backup = nil
	s.prev = nil
	s.diverged = false
	s.stMu.Unlock()
	p.persistShare(s)
	p.record(HistoryEntry{ShareID: snap.ShareID, Seq: snap.Seq, Kind: "restored", Note: "state restored from snapshot"})
	return nil
}

// snapshotTable returns an independent snapshot of a local table. The
// database read path is lock-free (one atomic load plus an O(1)
// copy-on-write clone), so the peer's event goroutine, fetch handlers,
// and user goroutines all snapshot without contending; in-place mutation
// stays confined to the database's per-table commit path.
func (p *Peer) snapshotTable(name string) (*reldb.Table, error) {
	return p.cfg.DB.Table(name)
}
