package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// stressHarness is a hub peer sharing one source table with K counterpart
// peers, one share per counterpart — the many-shares fan-out shape. Share
// i projects column v<i>, so the updater goroutines write disjoint
// columns and the sequential outcome is deterministic.
type stressHarness struct {
	node     *node.Node
	hub      *Peer
	partners []*Peer
	shares   []string
}

// stressSchema is the many-shares scenario schema from the workload
// package (one int key plus one value column per share).
func stressSchema(name string, cols int) reldb.Schema {
	return workload.ManySharesSchema(name, cols)
}

func newStressHarness(t *testing.T, shares, rows int) *stressHarness {
	t.Helper()
	nid := identity.MustNew("node")
	n, err := node.New(node.Config{
		NetworkName:   "stress-test",
		Identity:      nid,
		Engine:        consensus.NewPoA(false, nid.Address()),
		Registry:      contract.NewRegistry(sharereg.New()),
		BlockInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	n.Start(ctx)
	t.Cleanup(n.Stop)

	mem := p2p.NewMemNetwork()
	dir := NewDirectory()
	mk := func(name string, schema reldb.Schema) *Peer {
		id := identity.MustNew(name)
		db := reldb.NewDatabase(name)
		tbl := reldb.MustNewTable(schema)
		for r := 0; r < rows; r++ {
			row := reldb.Row{reldb.I(int64(r))}
			for c := 1; c < len(schema.Columns); c++ {
				row = append(row, reldb.S("init"))
			}
			tbl.MustInsert(row)
		}
		db.PutTable(tbl)
		p, err := NewPeer(Config{
			Identity: id, DB: db, Node: n,
			Transport: mem.Endpoint(name), Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		t.Cleanup(p.Stop)
		return p
	}

	h := &stressHarness{node: n}
	h.hub = mk("hub", stressSchema("T", shares))
	for i := 0; i < shares; i++ {
		// Counterpart i's source holds only the columns its share sees.
		pschema := reldb.Schema{Name: "T", Key: []string{"k"}, Columns: []reldb.Column{
			{Name: "k", Type: reldb.KindInt},
			{Name: workload.ManyShareCol(i), Type: reldb.KindString},
		}}
		h.partners = append(h.partners, mk(fmt.Sprintf("peer%d", i), pschema))
	}

	octx, ocancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer ocancel()
	for i := 0; i < shares; i++ {
		id := fmt.Sprintf("S%d", i)
		col := workload.ManyShareCol(i)
		hubLens := bx.Project(id+"h", []string{"k", col}, nil)
		err := h.hub.RegisterShare(octx, RegisterShareArgs{
			ID: id, SourceTable: "T", Lens: hubLens, ViewName: id + "h",
			Peers: []identity.Address{h.hub.Address(), h.partners[i].Address()},
			WritePerm: map[string][]identity.Address{
				col: {h.hub.Address(), h.partners[i].Address()},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		pl := bx.Project(id+"p", []string{"k", col}, nil)
		if err := h.partners[i].AttachShare(id, "T", pl, id+"p"); err != nil {
			t.Fatal(err)
		}
		h.shares = append(h.shares, id)
	}
	return h
}

// TestConcurrentPeerStress drives one hub peer from many goroutines at
// once — updaters (UpdateSource + ProposeUpdate per share), fetchers
// (counterparty Fetch), and resyncers (hub and counterpart Resync) — and
// asserts every replica converges to the deterministic sequential
// outcome, verified by table hash equality on both sides of every share.
func TestConcurrentPeerStress(t *testing.T) {
	const (
		shares  = 4
		rows    = 8
		updates = 4
	)
	h := newStressHarness(t, shares, rows)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errCh := make(chan error, shares*3)

	// Updater goroutines: one per share, writing its own column of a row
	// it owns, proposing, and waiting for finality before the next round.
	for i := 0; i < shares; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			col := workload.ManyShareCol(i)
			id := h.shares[i]
			for u := 1; u <= updates; u++ {
				val := fmt.Sprintf("val-%d-%d", i, u)
				err := h.hub.UpdateSource("T", func(tbl *reldb.Table) error {
					return tbl.Update(reldb.Row{reldb.I(int64(u % rows))}, map[string]reldb.Value{col: reldb.S(val)})
				})
				if err != nil {
					errCh <- fmt.Errorf("update %s: %w", id, err)
					return
				}
				res, err := h.hub.ProposeUpdate(ctx, id)
				if err != nil {
					errCh <- fmt.Errorf("propose %s round %d: %w", id, u, err)
					return
				}
				if err := h.hub.WaitFinal(ctx, id, res.Seq); err != nil {
					errCh <- fmt.Errorf("waitfinal %s seq %d: %w", id, res.Seq, err)
					return
				}
			}
		}(i)
	}

	// Fetcher goroutines: counterparties pull payloads over the data
	// channel while updates are in flight.
	stop := make(chan struct{})
	for i := 0; i < shares; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fctx, fcancel := context.WithTimeout(ctx, 10*time.Second)
				_, _, err := h.partners[i].Fetch(fctx, h.hub.Address(), h.shares[i], 0)
				fcancel()
				if err != nil {
					errCh <- fmt.Errorf("fetch %s: %w", h.shares[i], err)
					return
				}
			}
		}(i)
	}

	// Resync goroutines: the hub and one counterpart reconcile in a loop,
	// racing the event-loop applies.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rctx, rcancel := context.WithTimeout(ctx, 10*time.Second)
			if err := h.hub.Resync(rctx); err != nil {
				t.Logf("hub resync (tolerated): %v", err)
			}
			if err := h.partners[0].Resync(rctx); err != nil {
				t.Logf("partner resync (tolerated): %v", err)
			}
			rcancel()
			time.Sleep(time.Millisecond)
		}
	}()

	// Actively wait for every updater's final sequence to land.
	deadline := time.After(90 * time.Second)
	for i := 0; i < shares; i++ {
		for {
			info, err := h.hub.ShareInfo(h.shares[i])
			if err != nil {
				t.Fatal(err)
			}
			if info.AppliedSeq >= uint64(updates) {
				break
			}
			select {
			case err := <-errCh:
				t.Fatal(err)
			case <-deadline:
				t.Fatalf("share %s stuck at seq %d", h.shares[i], info.AppliedSeq)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Let the counterparties settle, then force reconciliation.
	for _, p := range h.partners {
		if err := p.Resync(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// The sequential outcome: each column's last write is val-<i>-<updates>
	// on row updates%rows, with earlier rounds' rows holding their last
	// values — deterministic because each goroutine owned its column and
	// rounds were serialized by WaitFinal.
	expected := reldb.MustNewTable(stressSchema("T", shares))
	for r := 0; r < rows; r++ {
		row := reldb.Row{reldb.I(int64(r))}
		for i := 0; i < shares; i++ {
			last := "init"
			for u := 1; u <= updates; u++ {
				if u%rows == r {
					last = fmt.Sprintf("val-%d-%d", i, u)
				}
			}
			row = append(row, reldb.S(last))
		}
		expected.MustInsert(row)
	}
	hubSrc, err := h.hub.Source("T")
	if err != nil {
		t.Fatal(err)
	}
	if hubSrc.Hash() != expected.Hash() {
		t.Fatalf("hub source diverged from sequential result:\nhave %v\nwant %v", hubSrc.Rows(), expected.Rows())
	}

	// Hash equality across every share: hub view replica == counterpart
	// view replica == lens of the converged source.
	for i, id := range h.shares {
		hv, err := h.hub.View(id)
		if err != nil {
			t.Fatal(err)
		}
		pv, err := h.partners[i].View(id)
		if err != nil {
			t.Fatal(err)
		}
		if hv.Hash() != pv.Hash() {
			t.Fatalf("share %s replicas diverged", id)
		}
		wantView, err := bx.Project(id, []string{"k", workload.ManyShareCol(i)}, nil).Get(expected)
		if err != nil {
			t.Fatal(err)
		}
		// Content comparison, not hash: the stored replicas carry the
		// share's priority seed, so their Merkle roots differ from an
		// unseeded rebuild of the same contents by design.
		if !hv.Equal(wantView) {
			t.Fatalf("share %s converged to a non-sequential state", id)
		}
		// The counterpart's own source must equal its view (its lens is
		// the identity projection of its two columns).
		psrc, err := h.partners[i].Source("T")
		if err != nil {
			t.Fatal(err)
		}
		if !psrc.Equal(pv) {
			t.Fatalf("share %s counterpart source/view misaligned", id)
		}
	}
}
