package core

import (
	"bytes"
	"testing"

	"medshare/internal/identity"
)

// FuzzSyncRequestWire fuzzes the binary sync-request frame codec:
// arbitrary input must never panic; any input that decodes is
// re-encoded and must round-trip to identical canonical bytes and
// fields; every strict prefix of a canonical frame, and any frame with
// trailing garbage, must be rejected. The decoder's span cap (the
// response-amplification guard) must hold on every accepted frame.
func FuzzSyncRequestWire(f *testing.F) {
	var addr identity.Address
	for i := range addr {
		addr[i] = byte(i)
	}
	seed := func(r *SyncRequest) { f.Add(appendSyncRequest(nil, r)) }
	seed(&SyncRequest{ShareID: "S", Requester: addr})
	seed(&SyncRequest{
		ShareID: "D13&D31", MinSeq: 7, Span: 2,
		Keys:      [][]byte{{0x01}, {0x02, 0xff, 0x00}},
		RowKeys:   [][]byte{{0x03, 0x04}},
		Requester: addr,
		PubKey:    bytes.Repeat([]byte{0xaa}, 32),
		TsMicro:   1700000000000000,
		Sig:       bytes.Repeat([]byte{0xbb}, 64),
	})
	seed(&SyncRequest{ShareID: "", Span: syncMaxSpan, Requester: addr, TsMicro: -1})
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{syncWireVersion})
	f.Add([]byte{syncWireVersion, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := decodeSyncRequest(raw)
		if err != nil {
			return // rejected garbage: the only requirement is no panic
		}
		if req.Span < 0 || req.Span > syncMaxSpan {
			t.Fatalf("decoded span %d outside [0, %d]", req.Span, syncMaxSpan)
		}
		canon := appendSyncRequest(nil, &req)
		re, err := decodeSyncRequest(canon)
		if err != nil {
			t.Fatalf("canonical re-decode failed: %v", err)
		}
		if re.ShareID != req.ShareID || re.MinSeq != req.MinSeq || re.Span != req.Span ||
			re.Requester != req.Requester || re.TsMicro != req.TsMicro ||
			!bytes.Equal(re.PubKey, req.PubKey) || !bytes.Equal(re.Sig, req.Sig) ||
			len(re.Keys) != len(req.Keys) || len(re.RowKeys) != len(req.RowKeys) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", req, re)
		}
		for i := range req.Keys {
			if !bytes.Equal(re.Keys[i], req.Keys[i]) {
				t.Fatalf("key %d mismatch", i)
			}
		}
		for i := range req.RowKeys {
			if !bytes.Equal(re.RowKeys[i], req.RowKeys[i]) {
				t.Fatalf("row key %d mismatch", i)
			}
		}
		if !bytes.Equal(appendSyncRequest(nil, &re), canon) {
			t.Fatal("re-encoding the round-tripped request diverged")
		}
		// Truncation: no strict prefix of a canonical frame may decode.
		for _, cut := range []int{0, 1, len(canon) / 2, len(canon) - 1} {
			if cut >= len(canon) {
				continue
			}
			if _, err := decodeSyncRequest(canon[:cut]); err == nil {
				t.Fatalf("strict prefix of length %d/%d decoded", cut, len(canon))
			}
		}
		// Trailing garbage after a complete frame must be rejected.
		withTail := append(append([]byte(nil), canon...), 0x00)
		if _, err := decodeSyncRequest(withTail); err == nil {
			t.Fatal("frame with trailing byte decoded")
		}
	})
}
