package core

import (
	"medshare/internal/bx"
	"medshare/internal/contract/sharereg"
	"medshare/internal/reldb"
	"medshare/internal/store"
)

// Durable share replicas: when Config.Store is set, every share
// operation that lands a new replica state (proposal, incoming apply,
// rollback, repair, resync) commits the materialized view, its source
// table, and the binding metadata to the content-addressed log as one
// atomic group. Content addressing makes the write O(changed nodes):
// a one-row update appends the treap path from the changed leaf to the
// root, not the table. On restart, AttachShare and RegisterShare
// restore the persisted replica instead of re-deriving it — after
// verifying it against both its persisted Merkle commitment (the store
// does that on load) and, when the sequence numbers line up, the
// on-chain payload hash. A replica that fails either check is
// discarded and rebuilt through the normal derive + resync path, so a
// corrupt or torn store degrades to a slower start, never to wrong
// data.

// persistShare writes the share's current replica state to the durable
// store. Best-effort: a write failure poisons the store (every later
// Commit reports it) but never blocks the in-memory protocol — the
// chain stays the source of truth and a restart falls back to resync.
func (p *Peer) persistShare(s *Share) {
	st := p.cfg.Store
	if st == nil {
		return
	}
	view, verr := p.snapshotTable(s.ViewName)
	src, serr := p.snapshotTable(s.SourceTable)
	s.stMu.Lock()
	seq := s.AppliedSeq
	s.stMu.Unlock()
	err := st.Commit(func(b *store.Batch) error {
		if verr == nil {
			if err := b.PutTable(view); err != nil {
				return err
			}
		}
		if serr == nil {
			if err := b.PutTable(src); err != nil {
				return err
			}
		}
		return b.PutShareMeta(store.ShareMeta{
			ID:       s.ID,
			Seq:      seq,
			Source:   s.SourceTable,
			View:     s.ViewName,
			PrioSeed: s.prioSeed,
		})
	})
	if err != nil {
		p.logf("persist share %s: %v", s.ID, err)
	}
}

// persistShareRemoval tombstones a removed share (empty View marks the
// binding gone; the log is append-only, so the latest record wins).
func (p *Peer) persistShareRemoval(id string) {
	st := p.cfg.Store
	if st == nil {
		return
	}
	if err := st.Commit(func(b *store.Batch) error {
		return b.PutShareMeta(store.ShareMeta{ID: id})
	}); err != nil {
		p.logf("persist removal %s: %v", id, err)
	}
}

// restoredShare attempts to recover share id's replica from the
// durable store for a binding under the given local names. It returns
// the verified view (already carrying the share's priority seed), the
// restored source table when one was persisted (nil otherwise), and
// the applied sequence number. ok is false when there is nothing
// usable: no store, no (or tombstoned) metadata, a name mismatch with
// the requested binding, a failed Merkle verification on load, or a
// replica that claims the chain's current sequence number but does not
// hash to the on-chain payload hash.
func (p *Peer) restoredShare(id, sourceTable, viewName string, chainMeta *sharereg.Meta) (view, src *reldb.Table, seq uint64, ok bool) {
	st := p.cfg.Store
	if st == nil {
		return nil, nil, 0, false
	}
	sm, found := st.Shares()[id]
	if !found || sm.View == "" || sm.View != viewName || sm.Source != sourceTable {
		return nil, nil, 0, false
	}
	v, err := st.LoadTable(sm.View)
	if err != nil {
		p.logf("restore %s: view failed verification: %v", id, err)
		return nil, nil, 0, false
	}
	// Cross-check against the chain: at the chain's own sequence number
	// the replica must hash to the on-chain payload hash; at sequence 0
	// no hash exists yet; behind the chain the replica is accepted as a
	// valid stale version for resync to catch up (its content was
	// already verified against the persisted Merkle commitment).
	if sm.Seq == chainMeta.Seq && chainMeta.LastPayloadHash != "" && hashHex(v) != chainMeta.LastPayloadHash {
		p.logf("restore %s: replica does not match on-chain hash at seq %d; discarding", id, sm.Seq)
		return nil, nil, 0, false
	}
	if sm.Seq > chainMeta.Seq {
		// Ahead of the chain this node can see — a crash between the
		// optimistic replica refresh and the request commit, or a chain
		// store that lost the tail. Untrustworthy; rebuild from source.
		return nil, nil, 0, false
	}
	if s2, err := st.LoadTable(sourceTable); err == nil {
		src = s2
	}
	return v, src, sm.Seq, true
}

// bindRestoredShare is the common restart path behind AttachShare and
// the idempotent RegisterShare rebind: install the restored replica
// (and source, when persisted) and bind the share at its recovered
// sequence number. The caller has already verified authorization and
// the absence of a duplicate binding.
func (p *Peer) bindRestoredShare(id, sourceTable string, lens bx.Lens, viewName string, meta *sharereg.Meta, view, src *reldb.Table, seq uint64) {
	if src != nil {
		p.cfg.DB.PutTable(src.Renamed(sourceTable))
	}
	p.cfg.DB.PutTable(view.Renamed(viewName))
	p.mu.Lock()
	p.shares[id] = &Share{
		ID:          id,
		SourceTable: sourceTable,
		Lens:        lens,
		ViewName:    viewName,
		AppliedSeq:  seq,
		prioSeed:    meta.PrioSeed,
	}
	p.mu.Unlock()
	p.record(HistoryEntry{ShareID: id, Kind: "restored", Seq: seq, Note: "replica recovered from durable store"})
	p.logf("restored share %s from durable store at seq %d (%d rows)", id, seq, view.Len())
}
