package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/p2p/faultnet"
	"medshare/internal/reldb"
)

// --- Backoff schedule properties ---

func TestBackoffDefaults(t *testing.T) {
	b := Backoff{}.withDefaults()
	if b.Base != 10*time.Millisecond || b.Max != 2*time.Second || b.Factor != 2 || b.Jitter != 0.5 || b.Attempts != 4 {
		t.Fatalf("defaults = %+v", b)
	}
	if got := (Backoff{Attempts: -1}).withDefaults().Attempts; got != 1 {
		t.Fatalf("negative attempts → %d, want 1 (no retries)", got)
	}
}

// TestBackoffMonotoneAndCapped property-checks the pre-jitter schedule
// over randomized configurations: delays never shrink, never exceed the
// cap, and grow geometrically until they hit it.
func TestBackoffMonotoneAndCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		b := Backoff{
			Base:   time.Duration(1+rng.Intn(1000)) * time.Millisecond,
			Max:    time.Duration(1+rng.Intn(10000)) * time.Millisecond,
			Factor: 1.5 + rng.Float64()*2.5,
		}.withDefaults()
		prev := time.Duration(0)
		capped := false
		for retry := 0; retry < 64; retry++ {
			d := b.delay(retry)
			if d < prev {
				t.Fatalf("trial %d: delay(%d)=%v < delay(%d)=%v", trial, retry, d, retry-1, prev)
			}
			if d > b.Max {
				t.Fatalf("trial %d: delay(%d)=%v exceeds cap %v", trial, retry, d, b.Max)
			}
			if retry == 0 && d != b.Base && b.Base <= b.Max {
				t.Fatalf("trial %d: delay(0)=%v, want Base %v", trial, d, b.Base)
			}
			if d == b.Max {
				capped = true
			}
			if capped && d != b.Max {
				t.Fatalf("trial %d: delay left the cap: %v", trial, d)
			}
			prev = d
		}
		if !capped {
			t.Fatalf("trial %d: schedule never reached the cap within 64 retries (base %v factor %v max %v)",
				trial, b.Base, b.Factor, b.Max)
		}
	}
}

// TestBackoffJitterBounds property-checks the jitter window: every
// sample lands in [d·(1−Jitter), d], and zero jitter is the identity.
func TestBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		j := rng.Float64()
		b := Backoff{Jitter: j}.withDefaults()
		b.Jitter = j // withDefaults would turn 0 into 0.5
		d := time.Duration(1+rng.Intn(5000)) * time.Millisecond
		lo := time.Duration(float64(d) * (1 - j))
		for i := 0; i < 100; i++ {
			got := b.jittered(d, rng.Float64())
			if got < lo || got > d {
				t.Fatalf("jittered(%v, j=%.3f) = %v outside [%v, %v]", d, j, got, lo, d)
			}
		}
	}
	b := Backoff{Jitter: -1}.withDefaults()
	if got := b.jittered(time.Second, 0.99); got != time.Second {
		t.Fatalf("zero jitter altered the delay: %v", got)
	}
}

// --- Retry and health behavior over an injected-fault channel ---

// faultHarness is a syncHarness whose data channel runs through a
// faultnet fabric.
func faultHarness(t *testing.T, tweak func(name string, cfg *Config)) (*syncHarness, *faultnet.Fabric) {
	t.Helper()
	mem := p2p.NewMemNetwork(p2p.WithSeed(3))
	fab := faultnet.New(3)
	h := newSyncHarnessTweak(t, 16, fab.Wrap(mem.Endpoint("A")), fab.Wrap(mem.Endpoint("B")), tweak)
	return h, fab
}

func TestChannelRequestRetriesExhaustAndRecover(t *testing.T) {
	h, fab := faultHarness(t, func(name string, cfg *Config) {
		cfg.Retry = Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond, Attempts: 3}
		cfg.Health = HealthPolicy{FailureThreshold: 100} // keep quarantine out of this test
	})
	fab.SetRequestLoss(1, 0)
	if _, _, err := h.b.Fetch(h.ctx, h.a.Address(), "S", 0); err == nil {
		t.Fatal("fetch succeeded through 100% request loss")
	}
	st := h.b.Stats()
	if st.RPCAttempts != 3 || st.RPCRetries != 2 || st.RPCFailures != 3 {
		t.Fatalf("stats after exhausted retries = %+v", st)
	}

	// Heal the channel: the same call now succeeds on the first attempt.
	fab.SetRequestLoss(0, 0)
	if _, _, err := h.b.Fetch(h.ctx, h.a.Address(), "S", 0); err != nil {
		t.Fatal(err)
	}
	st = h.b.Stats()
	if st.RPCAttempts != 4 || st.RPCFailures != 3 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestChannelRequestRetriesThroughTransientLoss(t *testing.T) {
	h, fab := faultHarness(t, func(name string, cfg *Config) {
		cfg.Retry = Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Attempts: 6}
		cfg.Health = HealthPolicy{FailureThreshold: 1000} // quarantine tested separately
	})
	// 50% request loss: fetches succeed by retrying through it. The
	// seeded fabric makes the run repeatable; loop until the lossy dice
	// actually bite so the assertion is insensitive to the seed choice.
	fab.SetRequestLoss(0.5, 0)
	succeeded := 0
	for i := 0; i < 20; i++ {
		if _, _, err := h.b.Fetch(h.ctx, h.a.Address(), "S", 0); err == nil {
			succeeded++
		}
		if st := h.b.Stats(); st.RPCRetries > 0 && succeeded > 0 {
			return
		}
	}
	t.Fatalf("20 fetches under 50%% loss: %d successes, stats %+v", succeeded, h.b.Stats())
}

func TestQuarantineShortCircuitsAndProbes(t *testing.T) {
	h, fab := faultHarness(t, func(name string, cfg *Config) {
		cfg.Retry = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 2}
		cfg.Health = HealthPolicy{
			FailureThreshold: 1,
			Quarantine:       50 * time.Millisecond,
			MaxQuarantine:    150 * time.Millisecond,
		}
	})
	fab.SetRequestLoss(1, 0)
	if _, _, err := h.b.Fetch(h.ctx, h.a.Address(), "S", 0); err == nil {
		t.Fatal("fetch succeeded through 100% request loss")
	}
	// The endpoint is quarantined now: the next call fails locally,
	// without touching the wire.
	before := fab.Counters().Requests
	_, _, err := h.b.Fetch(h.ctx, h.a.Address(), "S", 0)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
	if got := fab.Counters().Requests; got != before {
		t.Fatalf("short-circuited request still hit the wire (%d -> %d)", before, got)
	}
	if st := h.b.Stats(); st.DeadShortCircuits == 0 {
		t.Fatalf("stats = %+v, want DeadShortCircuits > 0", st)
	}

	// After the quarantine expires a probe goes through; with the fault
	// healed it succeeds and clears the record.
	fab.SetRequestLoss(0, 0)
	time.Sleep(200 * time.Millisecond)
	if _, _, err := h.b.Fetch(h.ctx, h.a.Address(), "S", 0); err != nil {
		t.Fatalf("probe after quarantine failed: %v", err)
	}
	if _, dead := h.b.quarantined("A"); dead {
		t.Fatal("endpoint still quarantined after successful probe")
	}
}

// --- Crash-restart convergence ---

// registerSecondShare binds a second share over B's source so an
// incoming update on S cascades to S2 on peer B.
func registerSecondShare(t *testing.T, h *syncHarness) {
	t.Helper()
	lens := func(view string) bx.Lens {
		return bx.Project(view, []string{"k", "v"}, nil).
			WithInsert(bx.PolicyApply, nil).
			WithDelete(bx.PolicyApply)
	}
	err := h.b.RegisterShare(h.ctx, RegisterShareArgs{
		ID: "S2", SourceTable: "T", Lens: lens("S2b"), ViewName: "S2b",
		Peers: []identity.Address{h.a.Address(), h.b.Address()},
		WritePerm: map[string][]identity.Address{
			"v": {h.a.Address(), h.b.Address()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.a.AttachShare("S2", "T", lens("S2a"), "S2a"); err != nil {
		t.Fatal(err)
	}
}

// testCrashRestartMidCascade is the transport-parameterized body: peer B
// crashes, misses an update whose cascade depends on it, restarts cold
// from a pre-update snapshot, and must converge through the repair loop
// alone — applying the pending update, acking it, and carrying the
// cascade to the dependent share.
func testCrashRestartMidCascade(t *testing.T, ta, tb p2p.Transport) {
	h := newSyncHarnessTweak(t, 16, ta, tb, func(name string, cfg *Config) {
		cfg.ResyncInterval = 25 * time.Millisecond
		cfg.Retry = Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Attempts: 4}
		cfg.Logf = t.Logf
	})
	registerSecondShare(t, h)

	// Cold-restore point: both shares at their current (pre-update) state.
	snapS, err := h.b.SnapshotShare("S")
	if err != nil {
		t.Fatal(err)
	}
	snapS2, err := h.b.SnapshotShare("S2")
	if err != nil {
		t.Fatal(err)
	}

	// B crashes.
	h.b.Stop()

	// A updates S while B is down: the proposal commits (the chain does
	// not need B) but stays pending, and the cascade into S2 cannot start
	// until B applies it — the protocol is mid-flight.
	err = h.a.UpdateSource("T", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"v": reldb.S("crash-edit")})
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.a.ProposeUpdate(h.ctx, "S")
	if err != nil {
		t.Fatal(err)
	}

	// B comes back cold and rejoins mid-cascade. No manual resync: the
	// repair loop must do everything.
	if err := h.b.RestoreShare(snapS); err != nil {
		t.Fatal(err)
	}
	if err := h.b.RestoreShare(snapS2); err != nil {
		t.Fatal(err)
	}
	h.b.Restart()

	// S finalizes (B applied + acked) and the cascade reaches S2 on A —
	// the cascade's own proposal finalizing is part of convergence here,
	// hence minSeq 1 on S2 (a vacuous "both stale" match must not pass).
	if err := h.a.WaitFinal(h.ctx, "S", res.Seq); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, h, "S", res.Seq)
	waitConverged(t, h, "S2", 1)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := h.b.Stats()
		if st.ResyncsTriggered > 0 && st.RepairHeals > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair loop never acted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitConverged polls until the share is finalized at minSeq or beyond,
// nothing is pending, and both peers' replicas match the on-chain
// payload hash.
func waitConverged(t *testing.T, h *syncHarness, shareID string, minSeq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		meta, err := h.a.Meta(shareID)
		if err != nil {
			t.Fatal(err)
		}
		av, aerr := h.a.View(shareID)
		bv, berr := h.b.View(shareID)
		switch {
		case aerr != nil || berr != nil:
			last = fmt.Sprintf("views unavailable: %v / %v", aerr, berr)
		case meta.Seq < minSeq:
			last = fmt.Sprintf("chain at seq %d, want %d", meta.Seq, minSeq)
		case meta.Pending != nil:
			last = fmt.Sprintf("update %d still pending", meta.Pending.Seq)
		case meta.LastPayloadHash != "" && hashHex(av) != meta.LastPayloadHash:
			last = "A diverged from chain"
		case meta.LastPayloadHash != "" && hashHex(bv) != meta.LastPayloadHash:
			last = "B diverged from chain"
		case av.RowsRoot() != bv.RowsRoot():
			last = "replicas disagree"
		default:
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("share %s never converged: %s", shareID, last)
}

func TestCrashRestartMidCascadeMemnet(t *testing.T) {
	mem := p2p.NewMemNetwork(p2p.WithSeed(5))
	testCrashRestartMidCascade(t, mem.Endpoint("A"), mem.Endpoint("B"))
}

func TestCrashRestartMidCascadeTCP(t *testing.T) {
	ta, err := p2p.NewTCPTransport("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := p2p.NewTCPTransport("B", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	ta.AddPeer("B", tb.Addr())
	tb.AddPeer("A", ta.Addr())
	testCrashRestartMidCascade(t, ta, tb)
}

// TestRepairHealsRootMismatch restores B from a snapshot that carries
// the chain's sequence number over stale content — the wrong-backup
// case where the seq label alone cannot detect divergence. The repair
// loop must notice the root mismatch against the on-chain payload hash
// and heal through the structural sync.
func TestRepairHealsRootMismatch(t *testing.T) {
	mem := p2p.NewMemNetwork(p2p.WithSeed(9))
	h := newSyncHarnessTweak(t, 32, mem.Endpoint("A"), mem.Endpoint("B"), func(name string, cfg *Config) {
		cfg.ResyncInterval = 25 * time.Millisecond
	})

	stale, err := h.b.SnapshotShare("S")
	if err != nil {
		t.Fatal(err)
	}
	seq := h.finalizedUpdate(t, 3, "post-snapshot")
	h.waitApplied(t, seq)

	// Crash B and restore the stale content under the *current* seq.
	h.b.Stop()
	corrupt := stale
	corrupt.Seq = seq
	if err := h.b.RestoreShare(corrupt); err != nil {
		t.Fatal(err)
	}
	h.b.Restart()

	waitConverged(t, h, "S", seq)
	found := false
	for _, e := range h.b.History() {
		if e.Kind == "repaired" {
			found = true
		}
	}
	if !found {
		t.Fatal("no 'repaired' history entry: mismatch was not healed by the repair path")
	}
	if st := h.b.Stats(); st.RepairHeals == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// --- Group-commit resilience ---

// TestGroupCommitResilience drives the batched commit path —
// ProposeUpdates over several independent shares on a node running
// demand-driven group commit — through sustained request loss and a
// crash-restart of the counterparty, and asserts the two invariants
// batching must not break: per-share sequence numbers advance in strict
// order on both replicas' histories, and every replica converges to the
// on-chain Merkle root.
func TestGroupCommitResilience(t *testing.T) {
	const (
		shares = 4
		rows   = 8
	)
	col := func(i int) string { return fmt.Sprintf("c%d", i) }
	shareID := func(i int) string { return fmt.Sprintf("S%02d", i) }

	mem := p2p.NewMemNetwork(p2p.WithSeed(7))
	fab := faultnet.New(7)
	nid := identity.MustNew("node")
	n, err := node.New(node.Config{
		NetworkName:       "gc-test",
		Identity:          nid,
		Engine:            consensus.NewPoA(false, nid.Address()),
		Registry:          contract.NewRegistry(sharereg.New()),
		BlockInterval:     5 * time.Millisecond,
		GroupCommitWindow: 300 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	n.Start(ctx)
	t.Cleanup(n.Stop)

	schema := reldb.Schema{
		Name:    "T",
		Columns: []reldb.Column{{Name: "k", Type: reldb.KindInt}},
		Key:     []string{"k"},
	}
	for i := 0; i < shares; i++ {
		schema.Columns = append(schema.Columns, reldb.Column{Name: col(i), Type: reldb.KindString})
	}
	mkTable := func() *reldb.Table {
		tbl := reldb.MustNewTable(schema)
		for r := int64(0); r < rows; r++ {
			row := reldb.Row{reldb.I(r)}
			for i := 0; i < shares; i++ {
				row = append(row, reldb.S("init"))
			}
			tbl.MustInsert(row)
		}
		return tbl
	}
	dir := NewDirectory()
	mk := func(name string) *Peer {
		id := identity.MustNew(name)
		db := reldb.NewDatabase(name)
		db.PutTable(mkTable())
		p, err := NewPeer(Config{
			Identity: id, DB: db, Node: n,
			Transport: fab.Wrap(mem.Endpoint(name)), Directory: dir,
			Retry:          Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Attempts: 6},
			ResyncInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		t.Cleanup(p.Stop)
		return p
	}
	a, b := mk("A"), mk("B")
	h := &syncHarness{ctx: ctx, node: n, a: a, b: b}

	ids := make([]string, shares)
	for i := 0; i < shares; i++ {
		ids[i] = shareID(i)
		err := a.RegisterShare(ctx, RegisterShareArgs{
			ID: ids[i], SourceTable: "T",
			Lens:     bx.Project(ids[i]+"a", []string{"k", col(i)}, nil),
			ViewName: ids[i] + "a",
			Peers:    []identity.Address{a.Address(), b.Address()},
			WritePerm: map[string][]identity.Address{
				col(i): {a.Address()},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		err = b.AttachShare(ids[i], "T", bx.Project(ids[i]+"b", []string{"k", col(i)}, nil), ids[i]+"b")
		if err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: batched rounds through a lossy data channel. Every round
	// edits all share columns of one row, stages all shares, and rides a
	// single group commit.
	fab.SetRequestLoss(0.35, 0)
	round := func(r int, wait bool) []ProposalResult {
		t.Helper()
		err := a.UpdateSource("T", func(tbl *reldb.Table) error {
			set := make(map[string]reldb.Value, shares)
			for i := 0; i < shares; i++ {
				set[col(i)] = reldb.S(fmt.Sprintf("r%d-%d", r, i))
			}
			return tbl.Update(reldb.Row{reldb.I(int64(r % rows))}, set)
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.ProposeUpdates(ctx, ids)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != shares {
			t.Fatalf("round %d proposed %d of %d shares", r, len(res), shares)
		}
		if wait {
			for _, pr := range res {
				if err := a.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
					t.Fatal(err)
				}
			}
		}
		return res
	}
	const lossyRounds = 3
	for r := 0; r < lossyRounds; r++ {
		round(r, true)
	}
	if st := a.Stats(); st.BatchCommits < lossyRounds || st.BatchTxs < uint64(lossyRounds*shares) {
		t.Fatalf("group commit unused: BatchCommits=%d BatchTxs=%d", st.BatchCommits, st.BatchTxs)
	}

	// Phase 2: crash the counterparty, propose a full batch while it is
	// down (the requests commit; finality must wait), then restore it cold
	// from pre-crash snapshots. Its repair loop has to apply every pending
	// update in order and ack it through the still-lossy channel.
	snaps := make([]ShareSnapshot, shares)
	for i, id := range ids {
		snap, err := b.SnapshotShare(id)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = snap
	}
	b.Stop()
	res := round(lossyRounds, false)
	for _, snap := range snaps {
		if err := b.RestoreShare(snap); err != nil {
			t.Fatal(err)
		}
	}
	b.Restart()
	for _, pr := range res {
		if err := a.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
			t.Fatal(err)
		}
	}

	// Heal and require Merkle-root convergence on every share.
	fab.SetRequestLoss(0, 0)
	finalSeq := uint64(lossyRounds + 1)
	for _, id := range ids {
		waitConverged(t, h, id, finalSeq)
	}

	// Per-share sequence order: each history stream (proposals on A,
	// applies on B, finalization events on both) must show every share's
	// sequence numbers strictly increasing — batching may not reorder or
	// skip a share's updates. Streams of different kinds interleave
	// (events are recorded asynchronously), so order is asserted within
	// each (share, kind) stream. Ordering violations fail immediately;
	// "final"-stream coverage is polled, because the event shards record
	// finalization entries asynchronously and may trail WaitFinal (which
	// watches chain state, not the history log).
	type stream struct{ share, kind string }
	check := func(name string, p *Peer) error {
		last := make(map[stream]uint64)
		finals := make(map[string]uint64)
		for _, e := range p.History() {
			if e.Seq == 0 {
				continue // registration entries carry no sequence
			}
			k := stream{e.ShareID, e.Kind}
			if e.Seq <= last[k] {
				t.Fatalf("%s history out of order on %s/%s: seq %d after %d", name, e.ShareID, e.Kind, e.Seq, last[k])
			}
			last[k] = e.Seq
			if e.Kind == "final" {
				finals[e.ShareID] = e.Seq
			}
		}
		for _, id := range ids {
			if finals[id] != finalSeq {
				return fmt.Errorf("%s saw %s finalize up to seq %d, want %d", name, id, finals[id], finalSeq)
			}
		}
		return nil
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var pending error
		for name, p := range map[string]*Peer{"A": a, "B": b} {
			if err := check(name, p); err != nil && pending == nil {
				pending = err
			}
		}
		if pending == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(pending)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
