package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"medshare/internal/bx"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/reldb"
)

// pollInterval paces WaitFinal and resync polling.
const pollInterval = 5 * time.Millisecond

// Incoming-event dispatch: shares are independent replicas, so events
// for *different* shares may be handled concurrently — a hospital-scale
// peer bound to thousands of shares applies incoming updates in
// parallel instead of serializing every fetch+put+ack behind one
// goroutine. The share space is statically partitioned across
// Config.EventShards shard loops (hash(shareID) → shard), each owning a
// FIFO queue drained by its own long-lived goroutine. Events for the
// *same* share land on the same shard and are therefore handled in
// arrival order — the per-share sequence-number ordering the protocol
// relies on — while the per-share opMu makes cross-path interleavings
// safe (the same argument as the cascade/Resync fan-out pool).
// Compared to the previous design (one transient drainer goroutine per
// active share, all funneled through one semaphore and one global queue
// mutex), the sharded runtime has no per-event goroutine churn and no
// peer-wide lock on the hot path: dispatch touches only the target
// shard's mutex, so throughput scales with shards until the handlers
// are the bottleneck. Head-of-line blocking within a shard is accepted:
// a stalled handler delays only its shard, and the repair loop covers
// any share starved long enough to matter. EventShards < 0 degrades to
// the fully sequential inline loop.

// shareEvent is one decoded sharereg event queued for a shard drainer
// (decoded once at dispatch; the handler never re-parses the payload).
type shareEvent struct {
	name    string
	payload sharereg.EventPayload
}

// eventShard is one slice of the partitioned event runtime: a FIFO
// queue plus a wake signal for its drainer goroutine.
type eventShard struct {
	mu    sync.Mutex
	queue []shareEvent
	// wake (capacity 1) nudges the drainer; a pending token already
	// covers any number of enqueues.
	wake chan struct{}
}

// shardIndex maps a share ID onto a shard (FNV-1a).
func shardIndex(shareID string, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(shareID); i++ {
		h ^= uint64(shareID[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// dispatchEvent routes one committed contract event: sharereg events
// are enqueued on their share's shard (sequential mode and events
// without a share ID are handled inline). Called only from the peer's
// event goroutine.
func (p *Peer) dispatchEvent(ev contract.Event) {
	if ev.Contract != sharereg.ContractName {
		return
	}
	payload, err := sharereg.DecodeEvent(ev.Payload)
	if err != nil {
		return
	}
	if len(p.evShards) == 0 || payload.ShareID == "" {
		p.handleEvent(ev.Name, payload)
		return
	}
	sh := p.evShards[shardIndex(payload.ShareID, len(p.evShards))]
	sh.mu.Lock()
	sh.queue = append(sh.queue, shareEvent{name: ev.Name, payload: payload})
	sh.mu.Unlock()
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// runEventShard drains one shard's queue in FIFO order until the peer
// generation stops. Events still queued at stop are abandoned — Resync
// recovers them exactly like events lost while the peer is down.
func (p *Peer) runEventShard(sh *eventShard, stopped <-chan struct{}) {
	defer p.wg.Done()
	for {
		sh.mu.Lock()
		if len(sh.queue) > 0 {
			ev := sh.queue[0]
			sh.queue = sh.queue[1:]
			sh.mu.Unlock()
			select {
			case <-stopped:
				p.abandonShardQueues()
				return
			default:
			}
			p.handleEvent(ev.name, ev.payload)
			continue
		}
		sh.queue = nil
		sh.mu.Unlock()
		select {
		case <-stopped:
			p.abandonShardQueues()
			return
		case <-sh.wake:
		}
	}
}

// abandonShardQueues clears every shard queue at stop. Each stopping
// drainer calls it (idempotent), so no generation leaves stale events
// behind for the next Start to misorder ahead of fresh ones.
func (p *Peer) abandonShardQueues() {
	for _, sh := range p.evShards {
		sh.mu.Lock()
		sh.queue = nil
		sh.mu.Unlock()
	}
}

// shardQueueDepth sums the events currently queued across all shards —
// the Stats() gauge observing dispatch backlog.
func (p *Peer) shardQueueDepth() uint64 {
	var n uint64
	for _, sh := range p.evShards {
		sh.mu.Lock()
		n += uint64(len(sh.queue))
		sh.mu.Unlock()
	}
	return n
}

// handleEvent processes one decoded sharereg event. Events for one
// share are processed in order (by the share's queue drainer, or by the
// event goroutine itself in sequential mode) so share state never races.
func (p *Peer) handleEvent(name string, payload sharereg.EventPayload) {
	switch name {
	case sharereg.EvUpdateRequested:
		p.onUpdateRequested(payload)
	case sharereg.EvUpdateFinal:
		p.mu.Lock()
		s, ok := p.shares[payload.ShareID]
		p.mu.Unlock()
		if ok {
			s.stMu.Lock()
			if s.backup != nil && s.backup.seq+1 == payload.Seq {
				s.backup = nil // our proposal finalized; drop the rollback point
			}
			s.stMu.Unlock()
		}
		p.record(HistoryEntry{
			ShareID: payload.ShareID, Seq: payload.Seq, Kind: "final",
			Cols: payload.Cols, From: payload.From,
		})
	case sharereg.EvUpdateRejected:
		p.onUpdateRejected(payload)
	case sharereg.EvPermissionSet:
		p.record(HistoryEntry{ShareID: payload.ShareID, Kind: "permission", Cols: []string{payload.Column}, From: payload.From})
	case sharereg.EvRemoved:
		p.onRemoved(payload)
	}
}

// onUpdateRequested implements Fig. 5 steps 3-5 (and 9-11): a sharing
// peer learns of an admitted update, fetches the payload from the
// updater, embeds it into its own source with put, acknowledges on-chain,
// and then checks its other shares for cascading (step 6).
func (p *Peer) onUpdateRequested(ev sharereg.EventPayload) {
	if ev.From == p.Address() {
		return // our own proposal; replica already refreshed
	}
	p.mu.Lock()
	_, bound := p.shares[ev.ShareID]
	p.mu.Unlock()
	if !bound {
		return // not a participant (or not yet attached; resync catches up)
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.TxTimeout)
	defer cancel()
	if err := p.applyIncoming(ctx, ev.ShareID, ev.Seq, ev.From, ev.PayloadHash, ev.Cols); err != nil {
		p.logf("apply update %s seq %d failed: %v", ev.ShareID, ev.Seq, err)
	}
}

// applyIncoming fetches, verifies, applies, acknowledges, and cascades one
// incoming update.
func (p *Peer) applyIncoming(ctx context.Context, shareID string, seq uint64, from identity.Address, payloadHash string, cols []string) error {
	s, err := p.share(shareID)
	if err != nil {
		return err
	}
	if err := p.applyIncomingLocked(ctx, s, seq, from, payloadHash, cols); err != nil {
		return err
	}
	// Step 6: cascade into overlapping shares over the same source. Runs
	// after s.opMu is released: cascade proposes on *sibling* shares
	// (taking their opMu), and holding the origin's lock across that
	// would deadlock two concurrent cascades with opposite origins.
	return p.cascade(ctx, s, cols)
}

// applyIncomingLocked performs steps 3-5 (fetch, verify, put, ack) under
// the share's operation lock.
func (p *Peer) applyIncomingLocked(ctx context.Context, s *Share, seq uint64, from identity.Address, payloadHash string, cols []string) error {
	shareID := s.ID
	// The share-level operation lock orders this apply against our own
	// in-flight proposals: if we optimistically advanced the replica for
	// a proposal that lost the race for this sequence number, the
	// rollback completes before we read AppliedSeq here.
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.stMu.Lock()
	applied := s.AppliedSeq
	diverged := s.diverged
	s.stMu.Unlock()
	if applied >= seq {
		return nil // already applied (e.g. via resync)
	}

	// Step 4: fetch the new view payload directly from the updater. We
	// advertise our current version so the updater can send a row-level
	// delta; the reconstructed table is verified against the on-chain
	// hash either way.
	curView, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return err
	}
	newView, cs, hasDelta, _, err := p.fetchFrom(ctx, from, shareID, seq, applied, curView)
	if err != nil {
		return err
	}
	// A delta fetch applied onto our (seeded) replica already carries the
	// share's priority seed; a full fetch arrives unseeded and is rebuilt
	// here, before the hash check — the on-chain hash commits to the
	// seeded shape.
	newView = s.seedView(newView)
	if got := hashHex(newView); got != payloadHash {
		return fmt.Errorf("%w: share %s seq %d", ErrPayloadHash, shareID, seq)
	}

	// Step 5: put the updated view into the local source. When the fetch
	// arrived as a row-level changeset, put goes through the delta path —
	// a one-row edit touches one source row instead of rematerializing
	// the table. The put runs inside the source table's atomic
	// replacement so two shares over the same source embedding
	// concurrently (parallel Resync, event loop racing a Resync)
	// serialize instead of overwriting each other's applied updates. A
	// put failure means the view edit has no translation into our source
	// under the local lens; reject the pending update on-chain so the
	// share does not stall and the proposer rolls back.
	local := newView.Renamed(s.ViewName)
	err = p.cfg.DB.ReplaceTable(s.SourceTable, func(src *reldb.Table) (*reldb.Table, error) {
		newSrc, err := putViaDelta(s.Lens, src, local, cs, hasDelta && !diverged)
		if err != nil {
			return nil, err
		}
		return newSrc.Renamed(s.SourceTable), nil
	})
	if errors.Is(err, reldb.ErrNoSuchTable) {
		return err
	}
	if err != nil {
		rej, berr := p.buildTx(sharereg.FnRejectUpdate, shareID, sharereg.RejectArgs{
			ShareID: shareID, Seq: seq, Reason: err.Error(),
		})
		if berr == nil {
			if _, serr := p.submitAndWait(ctx, rej); serr != nil {
				return fmt.Errorf("core: put failed (%v) and reject failed: %w", err, serr)
			}
		}
		p.record(HistoryEntry{ShareID: shareID, Seq: seq, Kind: "rejected", From: p.Address(), Note: err.Error()})
		return fmt.Errorf("core: put on %s rejected: %w", shareID, err)
	}
	p.cfg.DB.PutTable(local)
	s.stMu.Lock()
	s.prev = &shareBackup{seq: applied, view: curView}
	s.AppliedSeq = seq
	s.diverged = false // put realigned source and view
	s.stMu.Unlock()
	p.persistShare(s)
	p.record(HistoryEntry{ShareID: shareID, Seq: seq, Kind: "applied", Cols: cols, From: from})
	p.logf("applied update on %s seq %d from %s", shareID, seq, from.Short())

	// Acknowledge on-chain; once every peer acks, the contract finalizes
	// and the next update becomes admissible.
	ack, err := p.buildTx(sharereg.FnAckUpdate, shareID, sharereg.AckArgs{ShareID: shareID, Seq: seq})
	if err != nil {
		return err
	}
	if _, err := p.submitAndWait(ctx, ack); err != nil {
		return fmt.Errorf("core: acking %s seq %d: %w", shareID, seq, err)
	}
	return nil
}

// putViaDelta embeds an incoming view into the source along the delta
// path when the fetch produced a (validated, minimal) changeset — every
// lens embeds it natively in O(changed rows); there is no O(table)
// fallback behind the delta anymore. The whole-view put remains for
// exactly two cases: no changeset exists (full fetch, diverged replica),
// or the changeset disagrees with our replica (stale delta base) — there
// the authoritative full put decides before anything is rejected.
func putViaDelta(l bx.Lens, src, local *reldb.Table, cs reldb.Changeset, hasDelta bool) (*reldb.Table, error) {
	if hasDelta {
		newSrc, _, err := bx.PutDelta(l, src, local, cs)
		if err == nil {
			return newSrc, nil
		}
	}
	return l.Put(src, local)
}

// cascade regenerates and proposes updates on every other share derived
// from the same source whose visible columns overlap the incoming change
// (the dependency check of Fig. 5 step 6). Overlapping shares are
// proposed concurrently (bounded by Config.FanoutWorkers): each sibling
// share serializes internally on its own opMu and the proposals target
// distinct on-chain shares, so their commit waits overlap safely.
// Convergence is guaranteed for well-behaved lenses because re-putting
// identical data yields an empty diff; MaxCascadeDepth additionally
// bounds the number of proposals one incoming update may trigger on this
// peer.
func (p *Peer) cascade(ctx context.Context, origin *Share, changedCols []string) error {
	src, err := p.snapshotTable(origin.SourceTable)
	if err != nil {
		return err
	}
	srcSchema := src.Schema()

	p.mu.Lock()
	var candidates []*Share
	for _, s2 := range p.shares {
		if s2.ID != origin.ID && s2.SourceTable == origin.SourceTable {
			candidates = append(candidates, s2)
		}
	}
	p.mu.Unlock()
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ID < candidates[j].ID })

	// The overlap check is pure schema analysis — run it inline and fan
	// out only the shares the change actually reaches.
	var hits []*Share
	for _, s2 := range candidates {
		hit, err := bx.Overlaps(srcSchema, origin.Lens, changedCols, s2.Lens)
		if err != nil {
			return err
		}
		if hit {
			hits = append(hits, s2)
		}
	}

	// The depth bound counts *successful* proposals, exactly like the old
	// sequential loop: a worker refuses to propose once the bound is
	// reached. Concurrent in-flight proposals may overshoot by at most
	// FanoutWorkers-1 — the bound is runaway-cascade protection, not an
	// exact quota, and no-change probes never consume it.
	var proposals atomic.Int64
	b := p.cfg.Retry.withDefaults()
	return forEachShare(hits, p.cfg.FanoutWorkers, func(s2 *Share) error {
		if proposals.Load() >= int64(p.cfg.MaxCascadeDepth) {
			return fmt.Errorf("%w: share %s", ErrCascadeTooDeep, origin.ID)
		}
		res, err := p.ProposeUpdate(ctx, s2.ID)
		// A sibling share busy with a concurrent update (pending gate,
		// stale base) is a transient ordering conflict, not a dead end:
		// retry with backoff so the dependent share still carries the
		// change once the conflicting update settles.
		for attempt := 1; retriableProposal(err) && attempt < b.Attempts; attempt++ {
			p.stats.proposalRetries.Add(1)
			select {
			case <-p.cfg.Clock.After(b.jittered(b.delay(attempt-1), jitterSample())):
			case <-ctx.Done():
				return fmt.Errorf("core: cascading %s -> %s: %w", origin.ID, s2.ID, ctx.Err())
			}
			res, err = p.ProposeUpdate(ctx, s2.ID)
		}
		if err == ErrNoChanges {
			return nil // overlap was column-level only; data unaffected
		}
		if err != nil {
			return fmt.Errorf("core: cascading %s -> %s: %w", origin.ID, s2.ID, err)
		}
		proposals.Add(1)
		p.logf("cascaded %s -> %s seq %d", origin.ID, s2.ID, res.Seq)
		return nil
	})
}

// onUpdateRejected rolls the proposer's replica back to the pre-proposal
// snapshot when a counterparty could not apply the update.
func (p *Peer) onUpdateRejected(ev sharereg.EventPayload) {
	p.mu.Lock()
	s, ok := p.shares[ev.ShareID]
	p.mu.Unlock()
	if !ok {
		return
	}
	var bk *shareBackup
	s.stMu.Lock()
	if s.backup != nil && s.backup.seq+1 == ev.Seq {
		bk = s.backup
		s.backup = nil
		s.prev = nil // the retained delta base no longer matches
		s.AppliedSeq = bk.seq
		// The view rolls back but the source keeps the user's edit, so
		// the pair is diverged until a full put realigns it.
		s.diverged = true
	}
	s.stMu.Unlock()
	if bk == nil {
		return // not our proposal (or already resolved)
	}
	p.cfg.DB.PutTable(bk.view.Renamed(s.ViewName))
	p.persistShare(s)
	p.record(HistoryEntry{
		ShareID: ev.ShareID, Seq: ev.Seq, Kind: "rolled-back",
		From: ev.From, Note: ev.Kind,
	})
	p.logf("rolled back %s seq %d after rejection by %s", ev.ShareID, ev.Seq, ev.From.Short())
}

// onRemoved drops the local binding when the owner removes the share.
func (p *Peer) onRemoved(ev sharereg.EventPayload) {
	p.mu.Lock()
	s, ok := p.shares[ev.ShareID]
	if ok && ev.From != p.Address() {
		delete(p.shares, ev.ShareID)
	}
	p.mu.Unlock()
	if ok && ev.From != p.Address() {
		_ = p.cfg.DB.Drop(s.ViewName)
		p.persistShareRemoval(ev.ShareID)
		p.record(HistoryEntry{ShareID: ev.ShareID, Kind: "removed", From: ev.From})
	}
}

// Resync reconciles every bound share against on-chain state: pending
// updates we have not applied are fetched and acknowledged, finalized
// updates we missed entirely (dropped events) are fetched from the last
// updater, and a replica whose Merkle root disagrees with the on-chain
// payload hash at the same sequence number is repaired from a
// counterparty. It makes the peer robust to lossy notification delivery
// and to replica corruption (a cold restart from a stale backup).
// Shares are reconciled concurrently (bounded by Config.FanoutWorkers) —
// they are independent replicas, and a hospital-scale peer recovering
// hundreds of them mostly waits on fetches and ack commits. Every share
// is attempted even when some fail; the errors are joined. The
// background repair loop (Config.ResyncInterval) calls this
// periodically, so all three divergence classes self-heal with zero
// manual intervention.
func (p *Peer) Resync(ctx context.Context) error {
	p.mu.Lock()
	ids := make([]string, 0, len(p.shares))
	for id := range p.shares {
		ids = append(ids, id)
	}
	p.mu.Unlock()
	sort.Strings(ids)

	return forEachShare(ids, p.cfg.FanoutWorkers, func(id string) error {
		return p.reconcileShare(ctx, id)
	})
}

// reconcileShare is one share's anti-entropy step: compare local state
// against the on-chain metadata and heal whichever divergence class is
// found (unapplied pending update, missed finalized update, or root
// mismatch at an equal sequence number).
func (p *Peer) reconcileShare(ctx context.Context, id string) error {
	meta, err := p.Meta(id)
	if err != nil {
		return err
	}
	s, err := p.share(id)
	if err != nil {
		return nil // unbound concurrently (removed share)
	}
	s.stMu.Lock()
	applied := s.AppliedSeq
	inflight := s.backup != nil
	s.stMu.Unlock()

	switch {
	case meta.Pending != nil && meta.Pending.From != p.Address() && applied < meta.Pending.Seq:
		p.stats.resyncsTriggered.Add(1)
		if err := p.applyIncoming(ctx, id, meta.Pending.Seq, meta.Pending.From, meta.Pending.PayloadHash, meta.Pending.Cols); err != nil {
			return fmt.Errorf("core: resync %s pending: %w", id, err)
		}
	case meta.Seq > applied && meta.LastFrom != p.Address() && !meta.LastFrom.IsZero():
		p.stats.resyncsTriggered.Add(1)
		if err := p.resyncFinalized(ctx, s, meta); err != nil {
			return err
		}
	case meta.Pending == nil && !inflight && applied == meta.Seq && meta.LastPayloadHash != "":
		// Same sequence number as the chain — but does the content
		// actually match? A peer restarted from a stale or corrupt backup
		// can carry the right seq label over the wrong rows; the on-chain
		// payload hash is the arbiter. The cheap check runs every scan
		// (the root is cached on the table); the repair path re-verifies
		// under the operation lock before touching anything.
		view, err := p.snapshotTable(s.ViewName)
		if err != nil {
			return err
		}
		if hashHex(view) == meta.LastPayloadHash {
			return nil
		}
		p.stats.resyncsTriggered.Add(1)
		if err := p.repairMismatch(ctx, s); err != nil {
			return fmt.Errorf("core: repair %s: %w", id, err)
		}
	default:
		return nil
	}
	p.stats.repairHeals.Add(1)
	return nil
}

// repairMismatch heals a replica whose content disagrees with the
// on-chain payload hash at the chain's sequence number. The healthy
// content comes from a counterparty via the structural anti-entropy walk
// (only divergent subtrees cross the wire) with a full fetch as
// fallback, is verified against the on-chain hash, and is installed
// through a full put — the local replica is untrustworthy, so no delta
// base survives.
func (p *Peer) repairMismatch(ctx context.Context, s *Share) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	// Re-verify under the operation lock: the mismatch may have been a
	// transient read against an in-flight apply or proposal.
	meta, err := p.Meta(s.ID)
	if err != nil {
		return err
	}
	s.stMu.Lock()
	applied := s.AppliedSeq
	inflight := s.backup != nil
	s.stMu.Unlock()
	if inflight || meta.Pending != nil || applied != meta.Seq || meta.LastPayloadHash == "" {
		return nil
	}
	curView, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return err
	}
	if hashHex(curView) == meta.LastPayloadHash {
		return nil
	}

	// Pick a provider: the last updater, else any other sharing peer.
	from := meta.LastFrom
	if from.IsZero() || from == p.Address() {
		for _, a := range meta.Peers {
			if a != p.Address() {
				from = a
				break
			}
		}
	}
	if from.IsZero() || from == p.Address() {
		return fmt.Errorf("core: no counterparty to heal from")
	}

	var healed *reldb.Table
	if curView.Len() > 0 {
		if synced, syncSeq, stats, serr := p.syncFrom(ctx, from, s.ID, meta.Seq, curView); serr == nil && syncSeq == meta.Seq {
			if cand := s.seedView(synced); hashHex(cand) == meta.LastPayloadHash {
				healed = cand
				p.logf("repair %s: structural sync healed root mismatch (%d rounds, %d rows inline, %d grafted)",
					s.ID, stats.Rounds, stats.RowsInline, stats.RowsGrafted)
			}
		}
	}
	if healed == nil {
		full, _, _, seq, ferr := p.fetchFrom(ctx, from, s.ID, meta.Seq, 0, nil)
		if ferr != nil {
			return ferr
		}
		full = s.seedView(full)
		if seq != meta.Seq || hashHex(full) != meta.LastPayloadHash {
			return fmt.Errorf("%w: repair %s seq %d", ErrPayloadHash, s.ID, seq)
		}
		healed = full
	}

	local := healed.Renamed(s.ViewName)
	err = p.cfg.DB.ReplaceTable(s.SourceTable, func(src *reldb.Table) (*reldb.Table, error) {
		newSrc, err := s.Lens.Put(src, local)
		if err != nil {
			return nil, err
		}
		return newSrc.Renamed(s.SourceTable), nil
	})
	if err != nil {
		return err
	}
	p.cfg.DB.PutTable(local)
	s.stMu.Lock()
	s.prev = nil
	s.diverged = false
	s.stMu.Unlock()
	p.persistShare(s)
	p.record(HistoryEntry{ShareID: s.ID, Seq: meta.Seq, Kind: "repaired", From: from})
	p.logf("repaired %s at seq %d from %s", s.ID, meta.Seq, from.Short())
	return nil
}

// resyncFinalized catches the share up to an already-finalized update the
// peer missed entirely.
func (p *Peer) resyncFinalized(ctx context.Context, s *Share, meta *sharereg.Meta) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.stMu.Lock()
	applied := s.AppliedSeq
	diverged := s.diverged
	s.stMu.Unlock()
	if applied >= meta.Seq {
		return nil // caught up while waiting for the lock
	}
	curView, err := p.snapshotTable(s.ViewName)
	if err != nil {
		return err
	}
	var (
		newView  *reldb.Table
		cs       reldb.Changeset
		hasDelta bool
		seq      uint64
	)
	// A gap of more than one version means the updater cannot hold our
	// exact previous version for a row-level delta — the long-diverged
	// case. Walk its Merkle row tree instead of fetching the whole view:
	// only divergent subtrees cross the wire, and the minimal changeset
	// falls out of a local structural diff so the put still takes the
	// delta path. An *empty* local replica is excluded (nothing to
	// graft, so one full fetch is strictly cheaper than the walk), and
	// any failure falls back to the plain fetch. The sync result is only
	// accepted at exactly the version whose hash the chain metadata
	// vouches for — a provider serving any other seq (newer included)
	// cannot get unverified contents installed.
	if meta.Seq > applied+1 && curView.Len() > 0 {
		switch synced, syncSeq, stats, serr := p.syncFrom(ctx, meta.LastFrom, s.ID, meta.Seq, curView); {
		case serr != nil:
			p.logf("structural sync on %s failed (%v); falling back to fetch", s.ID, serr)
		case syncSeq != meta.Seq:
			p.logf("structural sync on %s served seq %d, want %d; falling back to fetch", s.ID, syncSeq, meta.Seq)
		case hashHex(synced) != meta.LastPayloadHash:
			// The walk completed but assembled the wrong contents (e.g.
			// the provider served a racing install) — fall back to the
			// plain fetch instead of failing the whole resync.
			p.logf("structural sync on %s: payload hash mismatch; falling back to fetch", s.ID)
		default:
			if diffCs, derr := curView.Diff(synced); derr == nil {
				newView, cs, hasDelta, seq = synced, diffCs, true, syncSeq
				p.logf("structural sync on %s: %d rounds, %d nodes, %d rows inline, %d grafted, %d B received",
					s.ID, stats.Rounds, stats.NodesFetched, stats.RowsInline, stats.RowsGrafted, stats.BytesReceived)
			}
		}
	}
	if newView == nil {
		newView, cs, hasDelta, seq, err = p.fetchFrom(ctx, meta.LastFrom, s.ID, meta.Seq, applied, curView)
		if err != nil {
			return fmt.Errorf("core: resync %s: %w", s.ID, err)
		}
	}
	// Structural-sync results inherit the seed from the local base; full
	// fetches are rebuilt under it here, before the hash check.
	newView = s.seedView(newView)
	if got := hashHex(newView); seq == meta.Seq && got != meta.LastPayloadHash {
		return fmt.Errorf("%w: resync %s seq %d", ErrPayloadHash, s.ID, seq)
	}
	local := newView.Renamed(s.ViewName)
	err = p.cfg.DB.ReplaceTable(s.SourceTable, func(src *reldb.Table) (*reldb.Table, error) {
		newSrc, err := putViaDelta(s.Lens, src, local, cs, hasDelta && !diverged)
		if err != nil {
			return nil, err
		}
		return newSrc.Renamed(s.SourceTable), nil
	})
	if err != nil {
		return err
	}
	p.cfg.DB.PutTable(local)
	s.stMu.Lock()
	s.prev = &shareBackup{seq: applied, view: curView}
	s.AppliedSeq = seq
	s.diverged = false // put realigned source and view
	s.stMu.Unlock()
	p.persistShare(s)
	p.record(HistoryEntry{ShareID: s.ID, Seq: seq, Kind: "resynced", From: meta.LastFrom})
	return nil
}
