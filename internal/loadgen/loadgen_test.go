package loadgen

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and
	// bounds must be strictly increasing.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		low := bucketLowNS(i)
		if got := bucketOf(low); got != i {
			t.Fatalf("bucket %d: low %d maps to bucket %d", i, low, got)
		}
		if int64(low) <= prev {
			t.Fatalf("bucket %d: low %d not increasing (prev %d)", i, low, prev)
		}
		prev = int64(low)
	}
	// Values beyond coverage clamp into the top bucket.
	if got := bucketOf(1 << 62); got != histBuckets-1 {
		t.Fatalf("overflow value mapped to bucket %d, want %d", got, histBuckets-1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1..1000 microseconds, shuffled.
	vals := make([]time.Duration, 1000)
	for i := range vals {
		vals[i] = time.Duration(i+1) * time.Microsecond
	}
	rand.New(rand.NewSource(1)).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000*time.Microsecond {
		t.Fatalf("max = %s", h.Max())
	}
	// Log-linear buckets bound relative error at ~1/32; allow 5%.
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := c.want - c.want/10 // quantile reports bucket lower bound
		if got < lo || got > c.want {
			t.Errorf("q%.2f = %s, want in [%s, %s]", c.q, got, lo, c.want)
		}
	}
	// p999 rank 999 ≤ max; must not exceed max and not undershoot p99.
	if p := h.Quantile(0.999); p > h.Max() || p < h.Quantile(0.99) {
		t.Errorf("p999 = %s out of order (p99=%s max=%s)", p, h.Quantile(0.99), h.Max())
	}
}

func TestHistogramConcurrentAndMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				a.Record(time.Duration(r.Intn(1e6)))
			}
		}(int64(w))
	}
	wg.Wait()
	b.Record(5 * time.Second)
	b.Merge(a)
	if b.Count() != 4001 {
		t.Fatalf("merged count = %d", b.Count())
	}
	if b.Max() != 5*time.Second {
		t.Fatalf("merged max = %s", b.Max())
	}
}

func TestOpenLoopSustained(t *testing.T) {
	// 200/s for 500ms → ~100 arrivals; the op sleeps 1ms so the run
	// cannot keep up closed-loop with 1 worker, but with default
	// workers it must complete everything it offered.
	plan := Plan{Rate: 200, Duration: 500 * time.Millisecond, Workers: 32}
	n := 0
	var mu sync.Mutex
	st := Run(context.Background(), plan, func(ctx context.Context, seq int) Result {
		mu.Lock()
		n++
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return Result{}
	})
	if st.Offered < 50 || st.Offered > 150 {
		t.Fatalf("offered = %d, want ~100", st.Offered)
	}
	if st.Completed != st.Offered || n != st.Offered {
		t.Fatalf("completed = %d, offered = %d, ops = %d", st.Completed, st.Offered, n)
	}
	if st.Errors != 0 || st.ErrorRate != 0 {
		t.Fatalf("unexpected errors: %+v", st)
	}
	if st.Latency.Count != uint64(st.Completed) {
		t.Fatalf("latency count %d != completed %d", st.Latency.Count, st.Completed)
	}
	if st.Latency.P50 < 500*time.Microsecond {
		t.Fatalf("p50 %s below op sleep", st.Latency.P50)
	}
}

func TestOpenLoopChargesQueueDelay(t *testing.T) {
	// One worker, 10ms ops, arrivals every 5ms: a closed-loop harness
	// would report ~10ms p50; the open loop must charge waiting
	// arrivals their queue time, pushing the tail well above the
	// service time.
	plan := Plan{Rate: 200, Duration: 300 * time.Millisecond, Workers: 1}
	st := Run(context.Background(), plan, func(ctx context.Context, seq int) Result {
		time.Sleep(10 * time.Millisecond)
		return Result{}
	})
	if st.Completed < 10 {
		t.Fatalf("too few completions: %+v", st)
	}
	if st.Latency.Max < 30*time.Millisecond {
		t.Fatalf("max latency %s does not reflect queueing (want ≥ 30ms)", st.Latency.Max)
	}
	if st.Latency.Max <= st.Latency.P50 {
		t.Fatalf("no latency spread: p50=%s max=%s", st.Latency.P50, st.Latency.Max)
	}
}

func TestOpenLoopErrors(t *testing.T) {
	boom := errors.New("boom")
	plan := Plan{Rate: 400, Duration: 250 * time.Millisecond, Workers: 8}
	st := Run(context.Background(), plan, func(ctx context.Context, seq int) Result {
		if seq%4 == 0 {
			return Result{Err: boom}
		}
		return Result{}
	})
	if st.Errors == 0 {
		t.Fatal("expected errors")
	}
	if st.ErrorRate < 0.15 || st.ErrorRate > 0.35 {
		t.Fatalf("error rate = %.3f, want ~0.25", st.ErrorRate)
	}
	if st.Latency.Count != uint64(st.Completed-st.Errors) {
		t.Fatalf("failed ops leaked into latency histogram: %+v", st)
	}
}

func TestInstantRateCurves(t *testing.T) {
	d := 10 * time.Second
	if r := instantRate(Sustained, 100, 5*time.Second, d); r != 100 {
		t.Fatalf("sustained: %f", r)
	}
	if r := instantRate(Ramp, 100, 5*time.Second, d); r < 49 || r > 51 {
		t.Fatalf("ramp midpoint: %f", r)
	}
	if r := instantRate(Ramp, 100, 0, d); r != 0 {
		t.Fatalf("ramp start: %f", r)
	}
	if r := instantRate(Burst, 100, 4500*time.Millisecond, d); r != 100 {
		t.Fatalf("burst spike: %f", r)
	}
	if r := instantRate(Burst, 100, 2*time.Second, d); r != 25 {
		t.Fatalf("burst baseline: %f", r)
	}
	// Curves must be sorted into the spike correctly across periods.
	rates := []float64{}
	for ms := 0; ms < 10000; ms += 100 {
		rates = append(rates, instantRate(Burst, 100, time.Duration(ms)*time.Millisecond, d))
	}
	sort.Float64s(rates)
	if rates[0] != 25 || rates[len(rates)-1] != 100 {
		t.Fatalf("burst range [%f, %f]", rates[0], rates[len(rates)-1])
	}
}

// TestOpenLoopRamp pins the ramp scheduler: the instantaneous rate
// near t=0 is almost zero, and a scheduler that commits to the naive
// inter-arrival gap there sleeps for hours instead of re-evaluating as
// the rate climbs (a real hang, found the hard way). The ramp's
// integral is Rate*Duration/2 arrivals.
func TestOpenLoopRamp(t *testing.T) {
	done := make(chan Stats, 1)
	go func() {
		done <- Run(context.Background(), Plan{Rate: 200, Duration: time.Second, Curve: Ramp, Workers: 4},
			func(ctx context.Context, seq int) Result { return Result{} })
	}()
	select {
	case st := <-done:
		if st.Offered < 60 || st.Offered > 140 {
			t.Fatalf("ramp offered %d arrivals, want ~100", st.Offered)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ramp run hung (scheduler committed to a near-zero-rate gap)")
	}
}

// TestOpenLoopKinds checks the per-kind split: each kind gets its own
// histogram and error count.
func TestOpenLoopKinds(t *testing.T) {
	st := Run(context.Background(), Plan{Rate: 400, Duration: 300 * time.Millisecond, Workers: 8},
		func(ctx context.Context, seq int) Result {
			if seq%4 == 0 {
				return Result{Kind: "write", Err: errors.New("boom")}
			}
			return Result{Kind: "read"}
		})
	r, w := st.Kinds["read"], st.Kinds["write"]
	if r.Completed == 0 || w.Completed == 0 {
		t.Fatalf("kinds not split: %+v", st.Kinds)
	}
	if r.Errors != 0 || w.Errors != w.Completed {
		t.Fatalf("errors misattributed: read %d/%d, write %d/%d", r.Errors, r.Completed, w.Errors, w.Completed)
	}
	if r.Latency.Count != uint64(r.Completed) || w.Latency.Count != 0 {
		t.Fatalf("latency counts: read %d want %d, write %d want 0", r.Latency.Count, r.Completed, w.Latency.Count)
	}
	if st.Completed != r.Completed+w.Completed {
		t.Fatalf("totals: %d != %d+%d", st.Completed, r.Completed, w.Completed)
	}
}
