// Package loadgen is the open-loop load-generation toolkit behind
// cmd/loadr and the E17 serving experiment: an HDR-style latency
// histogram plus an arrival-schedule driver.
//
// Open loop means requests are launched on a fixed schedule that does
// NOT wait for previous responses, and every latency is measured from
// the request's *scheduled* arrival time, not from when a worker got
// around to sending it. A closed-loop harness (send, wait, send) slows
// its own arrival rate the moment the server stalls, silently erasing
// the very queueing delay a tail-latency study exists to observe —
// the coordinated-omission trap. Here a stalled server keeps receiving
// arrivals and every queued request's wait shows up in p99/p999.
package loadgen

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucketing in the style of HDR histograms: values below
// subBuckets land in exact 1ns buckets; above that, each power-of-two
// range [2^(5+e), 2^(6+e)) splits into subBuckets/2 linear sub-buckets,
// bounding relative quantile error at ~1/32 ≈ 3% across the whole
// range. Coverage runs to 2^(6+maxExp) ns ≈ 17s; anything slower
// clamps into the top bucket (a request that slow has already blown
// any SLO this repo will ever set).
const (
	subBucketBits = 6
	subBuckets    = 1 << subBucketBits // 64
	maxExp        = 28
	histBuckets   = subBuckets + maxExp*(subBuckets/2) // 960
)

// bucketOf maps a latency in nanoseconds to its bucket index.
func bucketOf(ns uint64) int {
	if ns < subBuckets {
		return int(ns)
	}
	e := bits.Len64(ns) - subBucketBits // ≥ 1
	if e > maxExp {
		e = maxExp
	}
	sub := ns >> uint(e) // in [subBuckets/2, subBuckets) unless clamped
	if sub >= subBuckets {
		sub = subBuckets - 1
	}
	return subBuckets + (e-1)*(subBuckets/2) + int(sub) - subBuckets/2
}

// bucketLowNS returns the bucket's lower bound in nanoseconds — the
// value quantile lookups report, so they never overstate a latency.
func bucketLowNS(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	e := (i-subBuckets)/(subBuckets/2) + 1
	sub := uint64((i-subBuckets)%(subBuckets/2) + subBuckets/2)
	return sub << uint(e)
}

// Histogram is a lock-free log-linear latency histogram. Record is two
// atomic adds, safe for any number of concurrent recorders; the whole
// structure is a few KB of fixed memory regardless of value spread.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds; ~584 years before overflow
	max    atomic.Uint64
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded latency.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Sum returns the total of all recorded latencies (Prometheus summary
// exposition needs the running sum alongside the quantiles).
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns the latency at quantile q in [0,1] (0.99 → p99),
// reported as the lower bound of the bucket holding that rank. The max
// is tracked exactly, so q high enough to select the last observation
// returns it exactly. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank >= n {
		return h.Max()
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketLowNS(i))
		}
	}
	return h.Max()
}

// Merge adds other's observations into h. Not atomic with respect to
// concurrent Records into other; merge after recording has stopped.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		old := h.max.Load()
		if om <= old || h.max.CompareAndSwap(old, om) {
			break
		}
	}
}

// Summary is a fixed quantile digest of a histogram, the unit the E17
// experiment and loadr report.
type Summary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Summarize digests the histogram into its standard quantiles.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String renders the summary on one line for CLI output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s p999=%s max=%s",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P90.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.P999.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
