package loadgen

import (
	"context"
	"sync"
	"time"
)

// Curve shapes how the arrival rate evolves over a run.
type Curve string

const (
	// Sustained holds Rate constant for the whole duration.
	Sustained Curve = "sustained"
	// Ramp grows linearly from 0 at t=0 to Rate at t=Duration,
	// sweeping the load axis in one run to expose the knee.
	Ramp Curve = "ramp"
	// Burst alternates: baseline Rate/4 with 1-second spikes at Rate
	// every 5 seconds — the bursty-clinic-traffic shape, where tail
	// latency hides.
	Burst Curve = "burst"
)

// Plan describes one open-loop run.
type Plan struct {
	// Rate is the peak arrival rate, requests per second.
	Rate float64
	// Duration is total run length.
	Duration time.Duration
	// Curve shapes the instantaneous rate (default Sustained).
	Curve Curve
	// Workers bounds in-flight concurrency. In a pure open loop this
	// would be unbounded; a cap keeps a melted-down server from
	// exhausting sockets while still letting queueing delay show up
	// in latency, because every request's clock starts at its
	// SCHEDULED arrival even if it waited for a worker slot.
	// Default 256.
	Workers int
}

// Result is one operation's outcome, reported to the driver.
type Result struct {
	// Err is non-nil when the operation failed; failures count toward
	// the error rate and are excluded from the latency histogram (an
	// instant connection-refused would otherwise drag the tail down).
	Err error
	// Kind optionally classifies the operation ("read", "write"); each
	// kind gets its own latency histogram in Stats.Kinds so a fast read
	// path can't mask a melting write tail.
	Kind string
}

// Op performs one request. seq is the arrival's index in the schedule;
// implementations use it to pick keys, spread populations, or decide
// read vs write.
type Op func(ctx context.Context, seq int) Result

// Stats is the digest of one open-loop run.
type Stats struct {
	Offered   int     // arrivals scheduled
	Completed int     // operations that ran (ok + failed)
	Errors    int     // operations with non-nil Err
	ErrorRate float64 // Errors / Completed
	Elapsed   time.Duration
	// Latency is over successful operations only, measured from each
	// request's scheduled arrival time (coordinated-omission safe).
	Latency Summary
	// Kinds breaks the run down by Result.Kind (absent for ops that
	// leave Kind empty).
	Kinds map[string]KindStats
}

// KindStats is the per-kind slice of a run.
type KindStats struct {
	Completed int
	Errors    int
	Latency   Summary
}

// Run drives op on plan's arrival schedule until the plan duration (or
// ctx) expires, then waits for in-flight operations to drain. The
// returned histogram-backed stats measure every successful operation
// from scheduled arrival to completion.
func Run(ctx context.Context, plan Plan, op Op) Stats {
	workers := plan.Workers
	if workers <= 0 {
		workers = 256
	}
	curve := plan.Curve
	if curve == "" {
		curve = Sustained
	}

	type arrival struct {
		seq int
		due time.Time
	}
	// The queue is deep enough that the scheduler never blocks on slow
	// workers within a burst; if it fills anyway, the scheduler still
	// stamps `due` from the schedule, so waiting in this channel is
	// (correctly) charged as latency.
	queue := make(chan arrival, workers*4)

	hist := &Histogram{}
	type kindAgg struct {
		hist            *Histogram
		completed, errs int
	}
	kinds := make(map[string]*kindAgg)
	var mu sync.Mutex
	completed, errs := 0, 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range queue {
				res := op(ctx, a.seq)
				lat := time.Since(a.due)
				mu.Lock()
				completed++
				if res.Err != nil {
					errs++
				}
				var kh *Histogram
				if res.Kind != "" {
					ka := kinds[res.Kind]
					if ka == nil {
						ka = &kindAgg{hist: &Histogram{}}
						kinds[res.Kind] = ka
					}
					ka.completed++
					if res.Err != nil {
						ka.errs++
					}
					kh = ka.hist
				}
				mu.Unlock()
				if res.Err == nil {
					hist.Record(lat)
					if kh != nil {
						kh.Record(lat)
					}
				}
			}
		}()
	}

	start := time.Now()
	end := start.Add(plan.Duration)
	offered := 0
	// Generate the schedule incrementally: at each step compute the
	// next inter-arrival gap from the instantaneous rate, sleep until
	// that absolute instant, and enqueue. Absolute targets (not
	// relative sleeps) prevent scheduler drift from eroding the rate.
	// The gap is re-derived from the CURRENT rate on every wakeup
	// rather than committed once: early in a ramp the instantaneous
	// rate is near zero and the naive gap spans hours — napping a
	// quantum and re-evaluating lets the next arrival pull closer as
	// the rate climbs.
	const quantum = 10 * time.Millisecond
	prev := start // the last scheduled arrival
schedule:
	for {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		r := instantRate(curve, plan.Rate, now.Sub(start), plan.Duration)
		var next time.Time
		if r > 0 {
			next = prev.Add(time.Duration(float64(time.Second) / r))
			if next.Before(now) {
				// The scheduler itself fell behind (GC pause, CPU
				// starvation): don't bunch the backlog into an
				// artificial burst; resume from now.
				next = now
			}
		}
		if r <= 0 || next.Sub(now) > quantum {
			// Zero or low-rate stretch: nothing due within a quantum,
			// so nap and re-check with a fresher rate.
			select {
			case <-time.After(quantum):
			case <-ctx.Done():
				break schedule
			}
			continue
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break schedule
			}
		}
		select {
		case queue <- arrival{seq: offered, due: next}:
			offered++
			prev = next
		case <-ctx.Done():
			break schedule
		}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	st := Stats{
		Offered:   offered,
		Completed: completed,
		Errors:    errs,
		Elapsed:   elapsed,
		Latency:   hist.Summarize(),
	}
	if completed > 0 {
		st.ErrorRate = float64(errs) / float64(completed)
	}
	if len(kinds) > 0 {
		st.Kinds = make(map[string]KindStats, len(kinds))
		for k, ka := range kinds {
			st.Kinds[k] = KindStats{Completed: ka.completed, Errors: ka.errs, Latency: ka.hist.Summarize()}
		}
	}
	return st
}

// instantRate returns the arrival rate at elapsed time t of a run with
// peak rate and total duration d.
func instantRate(c Curve, rate float64, t, d time.Duration) float64 {
	switch c {
	case Ramp:
		if d <= 0 {
			return rate
		}
		return rate * float64(t) / float64(d)
	case Burst:
		// 5-second period: 4s at rate/4, then a 1s spike at full rate.
		phase := t % (5 * time.Second)
		if phase >= 4*time.Second {
			return rate
		}
		return rate / 4
	default:
		return rate
	}
}
