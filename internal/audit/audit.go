// Package audit reconstructs the update history of shared medical data
// from the blockchain alone, exercising the properties the paper claims in
// Section III-B: "immutability, auditability, and transparency enable
// nodes to check and review update history on shared data."
//
// The Auditor replays the main chain from genesis through the contract
// runtime, so the history it reports is exactly what any honest node would
// compute — it does not trust any node's cached receipts.
package audit

import (
	"fmt"
	"time"

	"medshare/internal/chain"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/merkle"
	"medshare/internal/statedb"
)

// Record is one ledger-derived history entry for a share.
type Record struct {
	// Height and Time locate the transaction on the chain.
	Height uint64
	Time   time.Time
	// TxID is the transaction identifier.
	TxID string
	// From is the verified sender.
	From identity.Address
	// Fn is the contract function invoked.
	Fn string
	// ShareID is the share operated on.
	ShareID string
	// OK reports whether the invocation succeeded; Err carries the
	// deterministic failure otherwise (denied permissions appear here —
	// the audit trail records attempts, not just successes).
	OK  bool
	Err string
	// Seq, Cols, PayloadHash describe the update when Fn touches data.
	Seq         uint64
	Cols        []string
	PayloadHash string
	// Author is the peer that authored the data update (may differ from
	// From on the acknowledgement that finalizes it).
	Author identity.Address
	// Finalized reports whether this event finalized the sequence (all
	// peers acknowledged).
	Finalized bool
}

// Auditor replays a chain through a contract registry.
type Auditor struct {
	store    *chain.Store
	registry *contract.Registry
}

// New creates an auditor for the given chain and contracts.
func New(store *chain.Store, registry *contract.Registry) *Auditor {
	return &Auditor{store: store, registry: registry}
}

// VerifyIntegrity re-validates the whole main chain: block linkage,
// transaction roots and signatures, the one-tx-per-share rule, and
// deterministic re-execution reproducing every block's state root.
func (a *Auditor) VerifyIntegrity() error {
	if err := a.store.VerifyChain(); err != nil {
		return err
	}
	state := statedb.NewStore()
	for _, b := range a.store.MainChain() {
		if b.Header.Height == 0 {
			continue
		}
		for i, tx := range b.Txs {
			rcpt := contract.Execute(a.registry, state, tx, b.Header.Height, b.Header.TimestampMicro)
			if rcpt.OK {
				if err := state.Validate(rcpt.Reads); err == nil {
					state.Commit(rcpt.Writes, statedb.Version{Height: b.Header.Height, TxIndex: i})
				}
			}
		}
		if got := state.Root(); got != b.Header.StateRoot {
			return fmt.Errorf("audit: state root mismatch at height %d: got %x want %x",
				b.Header.Height, got[:6], b.Header.StateRoot[:6])
		}
	}
	return nil
}

// History returns every recorded operation for the share, in chain order.
// An empty shareID returns the history of all shares.
func (a *Auditor) History(shareID string) ([]Record, error) {
	var out []Record
	state := statedb.NewStore()
	for _, b := range a.store.MainChain() {
		if b.Header.Height == 0 {
			continue
		}
		for i, tx := range b.Txs {
			rcpt := contract.Execute(a.registry, state, tx, b.Header.Height, b.Header.TimestampMicro)
			if rcpt.OK {
				if err := state.Validate(rcpt.Reads); err == nil {
					state.Commit(rcpt.Writes, statedb.Version{Height: b.Header.Height, TxIndex: i})
				} else {
					rcpt.OK = false
					rcpt.Err = err.Error()
				}
			}
			if tx.Contract != sharereg.ContractName {
				continue
			}
			if shareID != "" && tx.ShareID != shareID {
				continue
			}
			rec := Record{
				Height:  b.Header.Height,
				Time:    time.UnixMicro(b.Header.TimestampMicro).UTC(),
				TxID:    tx.IDString(),
				From:    tx.From,
				Fn:      tx.Fn,
				ShareID: tx.ShareID,
				OK:      rcpt.OK,
				Err:     rcpt.Err,
			}
			for _, ev := range rcpt.Events {
				p, err := sharereg.DecodeEvent(ev.Payload)
				if err != nil {
					continue
				}
				switch ev.Name {
				case sharereg.EvUpdateRequested:
					rec.Seq = p.Seq
					rec.Cols = p.Cols
					rec.PayloadHash = p.PayloadHash
					rec.Author = p.From
				case sharereg.EvUpdateFinal:
					rec.Seq = p.Seq
					rec.Finalized = true
					rec.Author = p.From
					if rec.Cols == nil {
						rec.Cols = p.Cols
					}
					if rec.PayloadHash == "" {
						rec.PayloadHash = p.PayloadHash
					}
				}
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// InclusionProof is a self-contained, independently checkable proof that
// a transaction was committed: the block header plus a Merkle membership
// path from the transaction to the header's TxRoot. A patient can hand it
// to a third party (a court, an insurer) who verifies it against nothing
// but the block hash.
type InclusionProof struct {
	// Header is the committing block's header.
	Header chain.Header
	// TxEncoding is the canonical transaction encoding (the Merkle leaf).
	TxEncoding []byte
	// Proof is the Merkle membership path to Header.TxRoot.
	Proof merkle.Proof
}

// ProveInclusion builds an inclusion proof for the transaction with the
// given ID (hex), searching the main chain.
func (a *Auditor) ProveInclusion(txID string) (InclusionProof, error) {
	for _, b := range a.store.MainChain() {
		for i, tx := range b.Txs {
			if tx.IDString() != txID {
				continue
			}
			proof, err := merkle.Prove(b.TxLeaves(), i)
			if err != nil {
				return InclusionProof{}, err
			}
			return InclusionProof{
				Header:     b.Header,
				TxEncoding: tx.Encode(),
				Proof:      proof,
			}, nil
		}
	}
	return InclusionProof{}, fmt.Errorf("audit: transaction %s not on the main chain", txID)
}

// Verify checks the proof: the leaf must belong to the header's tx root.
// Callers additionally check that the header's hash matches a block they
// trust (e.g. from their own node).
func (p InclusionProof) Verify() bool {
	return merkle.Verify(p.Header.TxRoot, p.TxEncoding, p.Proof)
}

// UpdateTimeline returns only the finalized data updates of a share: the
// sequence of (seq, author, columns, payload hash) a reviewer would check
// when tracing how a shared medical record evolved.
func (a *Auditor) UpdateTimeline(shareID string) ([]Record, error) {
	all, err := a.History(shareID)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, r := range all {
		if r.OK && r.Finalized {
			out = append(out, r)
		}
	}
	return out, nil
}
