package audit

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/node"
)

// buildLedger produces a chain with a realistic share history: register,
// a finalized update, a denied update, and a permission change.
func buildLedger(t *testing.T) (*node.Node, *identity.Identity, *identity.Identity) {
	t.Helper()
	nid := identity.MustNew("node")
	doctor := identity.MustNew("doctor")
	patient := identity.MustNew("patient")
	n, err := node.New(node.Config{
		NetworkName:   "audit-test",
		Identity:      nid,
		Engine:        consensus.NewPoA(false, nid.Address()),
		Registry:      contract.NewRegistry(sharereg.New()),
		BlockInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	send := func(from *identity.Identity, fn string, arg any) {
		t.Helper()
		raw, _ := json.Marshal(arg)
		tx := n.BuildTx(sharereg.ContractName, fn, "S", raw)
		tx.Sign(from)
		if err := n.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		if err := n.TryProduce(ctx); err != nil {
			t.Fatal(err)
		}
	}

	send(doctor, sharereg.FnRegister, sharereg.RegisterArgs{
		ID:        "S",
		Peers:     []identity.Address{doctor.Address(), patient.Address()},
		Authority: doctor.Address(),
		Columns:   []string{"dosage", "clinical"},
		WritePerm: map[string][]identity.Address{
			"dosage":   {doctor.Address()},
			"clinical": {doctor.Address(), patient.Address()},
		},
	})
	send(doctor, sharereg.FnRequestUpdate, sharereg.UpdateArgs{
		ShareID: "S", Cols: []string{"dosage"}, PayloadHash: "hash-1", Kind: "update", BaseSeq: 0,
	})
	send(patient, sharereg.FnAckUpdate, sharereg.AckArgs{ShareID: "S", Seq: 1})
	// A denied attempt (patient lacks dosage permission) still lands on
	// the ledger as a failed transaction.
	send(patient, sharereg.FnRequestUpdate, sharereg.UpdateArgs{
		ShareID: "S", Cols: []string{"dosage"}, PayloadHash: "hash-x", Kind: "update", BaseSeq: 1,
	})
	send(doctor, sharereg.FnSetPermission, sharereg.PermissionArgs{
		ShareID: "S", Column: "dosage",
		Writers: []identity.Address{doctor.Address(), patient.Address()},
	})
	return n, doctor, patient
}

func TestVerifyIntegrity(t *testing.T) {
	n, _, _ := buildLedger(t)
	a := New(n.Store(), n.Registry())
	if err := a.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryCompleteAndOrdered(t *testing.T) {
	n, doctor, patient := buildLedger(t)
	a := New(n.Store(), n.Registry())
	recs, err := a.History("S")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5", len(recs))
	}
	// Chain order.
	for i := 1; i < len(recs); i++ {
		if recs[i].Height < recs[i-1].Height {
			t.Fatal("history out of order")
		}
	}
	if recs[0].Fn != sharereg.FnRegister || !recs[0].OK {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Fn != sharereg.FnRequestUpdate || recs[1].Seq != 1 || recs[1].Author != doctor.Address() {
		t.Fatalf("rec1 = %+v", recs[1])
	}
	if recs[2].Fn != sharereg.FnAckUpdate || !recs[2].Finalized || recs[2].From != patient.Address() {
		t.Fatalf("rec2 = %+v", recs[2])
	}
	// The denied attempt is visible with its reason.
	if recs[3].OK || recs[3].Err == "" {
		t.Fatalf("rec3 = %+v", recs[3])
	}
	if recs[4].Fn != sharereg.FnSetPermission || !recs[4].OK {
		t.Fatalf("rec4 = %+v", recs[4])
	}
}

func TestUpdateTimeline(t *testing.T) {
	n, doctor, _ := buildLedger(t)
	a := New(n.Store(), n.Registry())
	tl, err := a.UpdateTimeline("S")
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 1 {
		t.Fatalf("timeline = %d entries, want 1", len(tl))
	}
	if tl[0].Seq != 1 || tl[0].Author != doctor.Address() || tl[0].PayloadHash != "hash-1" {
		t.Fatalf("timeline[0] = %+v", tl[0])
	}
}

func TestHistoryAllShares(t *testing.T) {
	n, _, _ := buildLedger(t)
	a := New(n.Store(), n.Registry())
	all, err := a.History("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("records = %d", len(all))
	}
	none, err := a.History("ghost-share")
	if err != nil || len(none) != 0 {
		t.Fatalf("ghost history = %v, %v", none, err)
	}
}

func TestInclusionProof(t *testing.T) {
	n, _, _ := buildLedger(t)
	a := New(n.Store(), n.Registry())

	// Prove the registration transaction (block 1, tx 0).
	blocks := n.Store().MainChain()
	txID := blocks[1].Txs[0].IDString()
	proof, err := a.ProveInclusion(txID)
	if err != nil {
		t.Fatal(err)
	}
	if !proof.Verify() {
		t.Fatal("valid proof rejected")
	}
	// The header in the proof is the real committed header.
	if proof.Header.Hash() != blocks[1].Hash() {
		t.Fatal("proof carries a different header")
	}

	// Tampering with the leaf breaks verification.
	bad := proof
	bad.TxEncoding = append([]byte(nil), proof.TxEncoding...)
	bad.TxEncoding[0] ^= 1
	if bad.Verify() {
		t.Fatal("tampered leaf verified")
	}

	// Unknown transaction.
	if _, err := a.ProveInclusion("deadbeef"); err == nil {
		t.Fatal("proof for unknown tx")
	}
}

func TestTamperDetection(t *testing.T) {
	n, _, _ := buildLedger(t)
	a := New(n.Store(), n.Registry())

	// Tamper with a committed transaction's argument in memory: the tx
	// root no longer matches.
	blocks := n.Store().MainChain()
	victim := blocks[2].Txs[0]
	victim.Args = [][]byte{[]byte(`{"shareId":"S","cols":["clinical"],"payloadHash":"forged","baseSeq":0}`)}
	if err := a.VerifyIntegrity(); err == nil {
		t.Fatal("tampered argument not detected")
	}
}
