package statedb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGetAbsent(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.Get("nope"); ok {
		t.Fatal("absent key found")
	}
	if s.Len() != 0 {
		t.Fatal("empty store has keys")
	}
}

func TestCommitAndGet(t *testing.T) {
	s := NewStore()
	ver := Version{Height: 3, TxIndex: 1}
	s.Commit(WriteSet{"a": []byte("1")}, ver)
	got, gotVer, ok := s.Get("a")
	if !ok || string(got) != "1" || gotVer != ver {
		t.Fatalf("Get = %q, %v, %v", got, gotVer, ok)
	}
}

func TestCommitDelete(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{"a": []byte("1")}, Version{Height: 1})
	s.Commit(WriteSet{"a": nil}, Version{Height: 2})
	if _, _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{"a": []byte("abc")}, Version{Height: 1})
	got, _, _ := s.Get("a")
	got[0] = 'X'
	again, _, _ := s.Get("a")
	if string(again) != "abc" {
		t.Fatal("Get aliases internal storage")
	}
}

func TestRangePrefixSorted(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{
		"share/b": []byte("2"),
		"share/a": []byte("1"),
		"other/x": []byte("9"),
		"share/c": []byte("3"),
	}, Version{Height: 1})
	var keys []string
	s.Range("share/", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	want := []string{"share/a", "share/b", "share/c"}
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{"a": []byte("1"), "b": []byte("2")}, Version{Height: 1})
	count := 0
	s.Range("", func(string, []byte) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("visited %d", count)
	}
}

func TestSimReadYourWrites(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{"a": []byte("old")}, Version{Height: 1})
	sim := s.NewSim()
	sim.Put("a", []byte("new"))
	got, ok := sim.Get("a")
	if !ok || string(got) != "new" {
		t.Fatalf("sim.Get = %q, %v", got, ok)
	}
	sim.Del("a")
	if _, ok := sim.Get("a"); ok {
		t.Fatal("sim sees deleted key")
	}
	// The store itself is untouched until commit.
	if got, _, _ := s.Get("a"); string(got) != "old" {
		t.Fatal("sim leaked into store")
	}
}

func TestSimRecordsReads(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{"a": []byte("1")}, Version{Height: 2, TxIndex: 3})
	sim := s.NewSim()
	_, _ = sim.Get("a")
	_, _ = sim.Get("missing")
	reads, _ := sim.Results()
	if reads["a"] != (Version{Height: 2, TxIndex: 3}) {
		t.Fatalf("read version = %v", reads["a"])
	}
	if v, ok := reads["missing"]; !ok || v != (Version{}) {
		t.Fatal("absent read must record zero version")
	}
}

func TestSimRangeMergesWrites(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{"p/a": []byte("1"), "p/b": []byte("2")}, Version{Height: 1})
	sim := s.NewSim()
	sim.Put("p/c", []byte("3"))
	sim.Del("p/a")
	var got []string
	sim.Range("p/", func(k string, v []byte) bool {
		got = append(got, k+"="+string(v))
		return true
	})
	if len(got) != 2 || got[0] != "p/b=2" || got[1] != "p/c=3" {
		t.Fatalf("range = %v", got)
	}
}

func TestValidateDetectsConflicts(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{"a": []byte("1")}, Version{Height: 1})

	sim := s.NewSim()
	_, _ = sim.Get("a")
	reads, _ := sim.Results()
	if err := s.Validate(reads); err != nil {
		t.Fatalf("unchanged read should validate: %v", err)
	}

	// Another tx writes "a" first.
	s.Commit(WriteSet{"a": []byte("2")}, Version{Height: 2})
	if err := s.Validate(reads); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
}

func TestValidateAbsentKeySemantics(t *testing.T) {
	s := NewStore()
	sim := s.NewSim()
	_, _ = sim.Get("ghost")
	reads, _ := sim.Results()
	if err := s.Validate(reads); err != nil {
		t.Fatalf("absent-then-absent should validate: %v", err)
	}
	s.Commit(WriteSet{"ghost": []byte("now exists")}, Version{Height: 1})
	if err := s.Validate(reads); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict after create, got %v", err)
	}
}

func TestRootChangesWithState(t *testing.T) {
	s := NewStore()
	r0 := s.Root()
	s.Commit(WriteSet{"a": []byte("1")}, Version{Height: 1})
	r1 := s.Root()
	if r0 == r1 {
		t.Fatal("root unchanged after write")
	}
	s.Commit(WriteSet{"a": nil}, Version{Height: 2})
	r2 := s.Root()
	if r2 == r1 {
		t.Fatal("root unchanged after delete")
	}
	// Same contents but different version → different root (versions are
	// part of the commitment, so replicas must agree on them too).
	s2 := NewStore()
	s2.Commit(WriteSet{"a": []byte("1")}, Version{Height: 9})
	s3 := NewStore()
	s3.Commit(WriteSet{"a": []byte("1")}, Version{Height: 1})
	if s2.Root() == s3.Root() {
		t.Fatal("root insensitive to version")
	}
	if s3.Root() != r1 {
		t.Fatal("identical state should give identical root")
	}
}

func TestRootDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func(order []int) *Store {
			s := NewStore()
			for _, i := range order {
				s.Commit(WriteSet{fmt.Sprintf("k%d", i): []byte(fmt.Sprintf("v%d", i))},
					Version{Height: uint64(i + 1)})
			}
			return s
		}
		n := 2 + rng.Intn(10)
		fwd := make([]int, n)
		for i := range fwd {
			fwd[i] = i
		}
		rev := make([]int, n)
		for i := range rev {
			rev[i] = n - 1 - i
		}
		return build(fwd).Root() == build(rev).Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	s := NewStore()
	s.Commit(WriteSet{"a": []byte("1")}, Version{Height: 1})
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset left keys")
	}
	if s.Root() != (NewStore()).Root() {
		t.Fatal("reset root differs from fresh store")
	}
}

func TestVersionLess(t *testing.T) {
	a := Version{Height: 1, TxIndex: 2}
	b := Version{Height: 1, TxIndex: 3}
	c := Version{Height: 2, TxIndex: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("version ordering wrong")
	}
}
