package statedb

import (
	"encoding/binary"
	"fmt"
	"sort"

	"medshare/internal/merkle"
)

// Key-membership proofs over the world-state commitment. A block header
// commits to Root(); ProveKey produces the Merkle membership proof of
// one key's canonical leaf against that root, which is what a light
// client verifies to trust a single contract value (e.g. a share's
// metadata) without holding any state of its own.

// appendStateLeaf builds the canonical key/value/version leaf — exactly
// the encoding Root() hashes, factored out so proof and root can never
// drift apart.
func appendStateLeaf(dst []byte, key string, value []byte, ver Version) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(value)))
	dst = append(dst, value...)
	dst = binary.BigEndian.AppendUint64(dst, ver.Height)
	return binary.BigEndian.AppendUint64(dst, uint64(ver.TxIndex))
}

// ProveKey returns the current value and version of key together with a
// Merkle membership proof against the state root it computes in the
// same atomic snapshot. The returned root is the commitment the proof
// verifies under — callers match it against a block header's StateRoot.
func (s *Store) ProveKey(key string) (value []byte, ver Version, proof merkle.Proof, root merkle.Hash, err error) {
	s.mu.RLock()
	e, ok := s.data[key]
	if !ok {
		s.mu.RUnlock()
		return nil, Version{}, merkle.Proof{}, merkle.Hash{}, fmt.Errorf("statedb: key %q not found", key)
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	leaves := make([][]byte, 0, len(keys))
	idx := -1
	for i, k := range keys {
		kv := s.data[k]
		leaves = append(leaves, appendStateLeaf(make([]byte, 0, len(k)+len(kv.value)+32), k, kv.value, kv.version))
		if k == key {
			idx = i
		}
	}
	s.mu.RUnlock()
	proof, err = merkle.Prove(leaves, idx)
	if err != nil {
		return nil, Version{}, merkle.Proof{}, merkle.Hash{}, err
	}
	return append([]byte(nil), e.value...), e.version, proof, merkle.Root(leaves), nil
}

// VerifyKeyProof checks that (key, value, ver) is committed under root
// by the given membership proof.
func VerifyKeyProof(root merkle.Hash, key string, value []byte, ver Version, proof merkle.Proof) bool {
	leaf := appendStateLeaf(make([]byte, 0, len(key)+len(value)+32), key, value, ver)
	return merkle.Verify(root, leaf, proof)
}
