// Package statedb implements the versioned key-value store backing smart
// contract state, in the style of Hyperledger Fabric's world state: every
// key carries the (block height, tx index) version that last wrote it,
// transactions execute against simulations that capture read and write
// sets, and commit-time MVCC validation rejects transactions whose reads
// were invalidated by earlier transactions in the same or a previous
// block.
package statedb

import (
	"encoding/binary"
	"errors"
	"sort"
	"strings"
	"sync"

	"medshare/internal/merkle"
)

// Version identifies the transaction that last wrote a key.
type Version struct {
	// Height is the block height.
	Height uint64 `json:"height"`
	// TxIndex is the position of the transaction within the block.
	TxIndex int `json:"txIndex"`
}

// Less orders versions chronologically.
func (v Version) Less(o Version) bool {
	if v.Height != o.Height {
		return v.Height < o.Height
	}
	return v.TxIndex < o.TxIndex
}

// entry is a stored value with its version.
type entry struct {
	value   []byte
	version Version
}

// Store is the world state. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	data map[string]entry
}

// NewStore creates an empty world state.
func NewStore() *Store {
	return &Store{data: make(map[string]entry)}
}

// Get returns the current value and version of key.
func (s *Store) Get(key string) ([]byte, Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[key]
	if !ok {
		return nil, Version{}, false
	}
	return append([]byte(nil), e.value...), e.version, true
}

// Range calls fn for every key with the given prefix, in sorted key order,
// until fn returns false.
func (s *Store) Range(prefix string, fn func(key string, value []byte) bool) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		s.mu.RLock()
		e, ok := s.data[k]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(k, append([]byte(nil), e.value...)) {
			return
		}
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Reset drops all state (used when a node rebuilds state after adopting a
// different fork).
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]entry)
}

// Root computes a deterministic commitment to the full world state: the
// Merkle root over canonical key/value/version leaves in sorted key order.
// Nodes compare state roots after each block to confirm deterministic
// contract execution.
func (s *Store) Root() merkle.Hash {
	s.mu.RLock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	leaves := make([][]byte, 0, len(keys))
	for _, k := range keys {
		e := s.data[k]
		leaf := make([]byte, 0, len(k)+len(e.value)+20)
		leaf = binary.BigEndian.AppendUint64(leaf, uint64(len(k)))
		leaf = append(leaf, k...)
		leaf = binary.BigEndian.AppendUint64(leaf, uint64(len(e.value)))
		leaf = append(leaf, e.value...)
		leaf = binary.BigEndian.AppendUint64(leaf, e.version.Height)
		leaf = binary.BigEndian.AppendUint64(leaf, uint64(e.version.TxIndex))
		leaves = append(leaves, leaf)
	}
	s.mu.RUnlock()
	return merkle.Root(leaves)
}

// ReadSet maps keys to the versions observed during simulation. Keys that
// were absent record the zero version.
type ReadSet map[string]Version

// WriteSet maps keys to new values; nil means delete.
type WriteSet map[string][]byte

// Sim is a transaction simulation: reads go through to the store (and are
// recorded), writes stay private to the simulation until committed.
type Sim struct {
	store  *Store
	reads  ReadSet
	writes WriteSet
	// order keeps write keys in first-write order for deterministic
	// iteration in tests and logs.
	order []string
}

// NewSim starts a simulation against the current state.
func (s *Store) NewSim() *Sim {
	return &Sim{store: s, reads: make(ReadSet), writes: make(WriteSet)}
}

// Get reads a key: simulation-local writes win, otherwise the store value
// is returned and the observed version recorded in the read set.
func (sim *Sim) Get(key string) ([]byte, bool) {
	if v, ok := sim.writes[key]; ok {
		if v == nil {
			return nil, false
		}
		return append([]byte(nil), v...), true
	}
	val, ver, ok := sim.store.Get(key)
	sim.reads[key] = ver
	if !ok {
		return nil, false
	}
	return val, true
}

// Put stages a write.
func (sim *Sim) Put(key string, value []byte) {
	if _, seen := sim.writes[key]; !seen {
		sim.order = append(sim.order, key)
	}
	sim.writes[key] = append([]byte(nil), value...)
}

// Del stages a deletion.
func (sim *Sim) Del(key string) {
	if _, seen := sim.writes[key]; !seen {
		sim.order = append(sim.order, key)
	}
	sim.writes[key] = nil
}

// Range iterates the store keys under prefix merged with staged writes, in
// sorted order. Every store key touched is recorded in the read set.
func (sim *Sim) Range(prefix string, fn func(key string, value []byte) bool) {
	merged := make(map[string][]byte)
	sim.store.Range(prefix, func(k string, v []byte) bool {
		_, ver, _ := sim.store.Get(k)
		sim.reads[k] = ver
		merged[k] = v
		return true
	})
	for k, v := range sim.writes {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if v == nil {
			delete(merged, k)
		} else {
			merged[k] = append([]byte(nil), v...)
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(k, merged[k]) {
			return
		}
	}
}

// Results returns the captured read and write sets.
func (sim *Sim) Results() (ReadSet, WriteSet) { return sim.reads, sim.writes }

// ErrConflict is returned by Commit when a transaction's read set was
// invalidated (Fabric-style MVCC conflict).
var ErrConflict = errors.New("statedb: mvcc read conflict")

// Validate checks the read set against current versions.
func (s *Store) Validate(reads ReadSet) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, ver := range reads {
		cur, ok := s.data[k]
		switch {
		case !ok && ver == (Version{}):
			// Key absent then, absent now: fine.
		case ok && cur.version == ver:
			// Unchanged.
		default:
			return ErrConflict
		}
	}
	return nil
}

// Commit applies a validated write set at the given version.
func (s *Store) Commit(writes WriteSet, ver Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range writes {
		if v == nil {
			delete(s.data, k)
			continue
		}
		s.data[k] = entry{value: append([]byte(nil), v...), version: ver}
	}
}
