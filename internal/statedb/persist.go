package statedb

import "sort"

// Entry is one exported world-state key: value plus the version that
// last wrote it. The durable store checkpoints the full state as a
// sorted []Entry on clean shutdown, and a clean restart imports it
// instead of re-executing the chain.
type Entry struct {
	Key     string  `json:"k"`
	Value   []byte  `json:"v"`
	Version Version `json:"ver"`
}

// Export returns every live key in sorted order, with values copied.
func (s *Store) Export() []Entry {
	s.mu.RLock()
	out := make([]Entry, 0, len(s.data))
	for k, e := range s.data {
		out = append(out, Entry{Key: k, Value: append([]byte(nil), e.value...), Version: e.version})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Import replaces the entire state with the given entries (values
// copied). Callers verify the result against an expected Root before
// trusting it.
func (s *Store) Import(entries []Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]entry, len(entries))
	for _, e := range entries {
		s.data[e.Key] = entry{value: append([]byte(nil), e.Value...), version: e.Version}
	}
}
