// Package sharereg implements the system smart contract holding the
// "metadata collection table" of the paper's Fig. 3: one entry per shared
// table, recording the sharing peers, the per-attribute write permission,
// the last update time, and the user with authority to change permissions.
//
// Beyond the static metadata, the contract drives the update protocol of
// Fig. 4/Fig. 5: RequestUpdate verifies attribute-level write permission
// and opens a pending update; sharing peers fetch the new view data
// peer-to-peer and AckUpdate; only when every peer has acknowledged does
// the share's sequence number advance, and only then can the next update
// be requested — the paper's "only when all sharing peers have had the
// newest shared data can they execute further operations".
package sharereg

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"medshare/internal/contract"
	"medshare/internal/identity"
)

// ContractName is the registry name of this contract.
const ContractName = "sharereg"

// Function names accepted by Invoke.
const (
	FnRegister      = "register"
	FnRequestUpdate = "request_update"
	FnAckUpdate     = "ack_update"
	FnRejectUpdate  = "reject_update"
	FnSetPermission = "set_permission"
	FnSetAuthority  = "set_authority"
	FnRemove        = "remove"
	FnGet           = "get"
	FnList          = "list"
)

// Event names emitted by the contract.
const (
	EvRegistered      = "share.registered"
	EvUpdateRequested = "share.update.requested"
	EvUpdateFinal     = "share.update.final"
	EvUpdateRejected  = "share.update.rejected"
	EvPermissionSet   = "share.permission.set"
	EvAuthoritySet    = "share.authority.set"
	EvRemoved         = "share.removed"
)

// keyPrefix namespaces share entries in the world state.
const keyPrefix = "share/"

// Errors surfaced in receipts. They are deterministic strings, identical
// on every node.
var (
	ErrExists        = errors.New("sharereg: share already registered")
	ErrNotFound      = errors.New("sharereg: share not found")
	ErrNotPeer       = errors.New("sharereg: caller is not a sharing peer")
	ErrNotAuthority  = errors.New("sharereg: caller lacks authority to change permission")
	ErrNotOwner      = errors.New("sharereg: caller is not the share owner")
	ErrPermission    = errors.New("sharereg: write permission denied")
	ErrPending       = errors.New("sharereg: previous update not yet acknowledged by all peers")
	ErrNoPending     = errors.New("sharereg: no pending update to acknowledge")
	ErrWrongSeq      = errors.New("sharereg: sequence mismatch")
	ErrBadArgs       = errors.New("sharereg: bad arguments")
	ErrAlreadyAcked  = errors.New("sharereg: peer already acknowledged")
	ErrUnknownColumn = errors.New("sharereg: permission references unknown column")
)

// Meta is one entry of the Fig. 3 metadata collection table.
type Meta struct {
	// ID identifies the shared table (e.g. "D13&D31").
	ID string `json:"id"`
	// Peers are the sharing peers' addresses.
	Peers []identity.Address `json:"peers"`
	// Owner is the peer that registered the share (and may remove it).
	Owner identity.Address `json:"owner"`
	// Authority may change write permissions ("Authority to Change
	// Permission" in Fig. 3).
	Authority identity.Address `json:"authority"`
	// Columns lists the agreed attribute names of the shared table.
	Columns []string `json:"columns"`
	// WritePerm maps each attribute to the peers allowed to update it
	// ("Write permission" in Fig. 3).
	WritePerm map[string][]identity.Address `json:"writePerm"`
	// LensSpec is the serialized bx lens the provider uses to derive the
	// view; registering it on-chain is how peers agree "on the structure
	// of the shared table" (Section III-C2).
	LensSpec json.RawMessage `json:"lensSpec,omitempty"`
	// PrioSeed is the share's storage-priority secret: every replica of
	// the shared view derives its row-tree treap priorities from it
	// (HMAC-SHA-256), so the replicas converge to identical — and, to
	// anyone without the secret, unpredictable — tree shapes. Chosen by
	// the registering peer; empty on shares registered before keyed
	// priorities existed (replicas then fall back to unkeyed shapes).
	PrioSeed []byte `json:"prioSeed,omitempty"`
	// CreatedAtMicro and UpdatedAtMicro are block timestamps; the latter
	// is the "Last Update Time" of Fig. 3.
	CreatedAtMicro int64 `json:"createdAt"`
	UpdatedAtMicro int64 `json:"updatedAt"`
	// Seq is the number of fully-acknowledged updates applied so far.
	Seq uint64 `json:"seq"`
	// LastPayloadHash is the payload hash of the most recently finalized
	// update; peers that missed notifications resynchronize against it.
	LastPayloadHash string `json:"lastPayloadHash,omitempty"`
	// LastFrom is the peer that authored the most recently finalized
	// update (the resync fetch target).
	LastFrom identity.Address `json:"lastFrom,omitempty"`
	// Pending describes the in-flight update, if any.
	Pending *PendingUpdate `json:"pending,omitempty"`
}

// PendingUpdate is an update that has been admitted on-chain but not yet
// acknowledged by all sharing peers.
type PendingUpdate struct {
	// Seq is the sequence number this update will commit as.
	Seq uint64 `json:"seq"`
	// From is the updating peer.
	From identity.Address `json:"from"`
	// Cols are the attributes the update touches.
	Cols []string `json:"cols"`
	// PayloadHash is the SHA-256 of the canonical encoding of the new
	// view table; peers verify fetched data against it.
	PayloadHash string `json:"payloadHash"`
	// Kind describes the operation: "create", "update", or "delete"
	// (entry level), or "table" for whole-table replacement (Fig. 4
	// distinguishes entry and table level).
	Kind string `json:"kind"`
	// Acked records which peers have fetched and applied the update.
	Acked map[string]bool `json:"acked"`
	// RequestedAtMicro is the block time of the request.
	RequestedAtMicro int64 `json:"requestedAt"`
}

// allAcked reports whether every sharing peer acknowledged.
func (m *Meta) allAcked() bool {
	if m.Pending == nil {
		return false
	}
	for _, p := range m.Peers {
		if !m.Pending.Acked[p.String()] {
			return false
		}
	}
	return true
}

// hasPeer reports whether addr is one of the sharing peers.
func (m *Meta) hasPeer(addr identity.Address) bool {
	for _, p := range m.Peers {
		if p == addr {
			return true
		}
	}
	return false
}

// mayWrite reports whether addr may update the named column.
func (m *Meta) mayWrite(addr identity.Address, col string) bool {
	allowed, ok := m.WritePerm[col]
	if !ok {
		return false
	}
	for _, a := range allowed {
		if a == addr {
			return true
		}
	}
	return false
}

// Contract is the sharereg chaincode.
type Contract struct{}

// New returns the sharereg contract.
func New() *Contract { return &Contract{} }

// Name implements contract.Contract.
func (*Contract) Name() string { return ContractName }

// Invoke implements contract.Contract.
func (c *Contract) Invoke(stub contract.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case FnRegister:
		return c.register(stub, args)
	case FnRequestUpdate:
		return c.requestUpdate(stub, args)
	case FnAckUpdate:
		return c.ackUpdate(stub, args)
	case FnRejectUpdate:
		return c.rejectUpdate(stub, args)
	case FnSetPermission:
		return c.setPermission(stub, args)
	case FnSetAuthority:
		return c.setAuthority(stub, args)
	case FnRemove:
		return c.remove(stub, args)
	case FnGet:
		return c.get(stub, args)
	case FnList:
		return c.list(stub)
	default:
		return nil, fmt.Errorf("%w: %s", contract.ErrUnknownFunction, fn)
	}
}

func key(id string) string { return keyPrefix + id }

func loadMeta(stub contract.Stub, id string) (*Meta, error) {
	raw, ok := stub.GetState(key(id))
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("sharereg: corrupt meta for %s: %w", id, err)
	}
	return &m, nil
}

func storeMeta(stub contract.Stub, m *Meta) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("sharereg: encoding meta for %s: %w", m.ID, err)
	}
	stub.PutState(key(m.ID), raw)
	return nil
}

// RegisterArgs is the JSON argument of FnRegister.
type RegisterArgs struct {
	ID        string                        `json:"id"`
	Peers     []identity.Address            `json:"peers"`
	Authority identity.Address              `json:"authority"`
	Columns   []string                      `json:"columns"`
	WritePerm map[string][]identity.Address `json:"writePerm"`
	LensSpec  json.RawMessage               `json:"lensSpec,omitempty"`
	PrioSeed  []byte                        `json:"prioSeed,omitempty"`
}

func (c *Contract) register(stub contract.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: register wants 1 arg", ErrBadArgs)
	}
	var ra RegisterArgs
	if err := json.Unmarshal(args[0], &ra); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	if ra.ID == "" || len(ra.Peers) < 2 || len(ra.Columns) == 0 {
		return nil, fmt.Errorf("%w: id, >=2 peers and columns are required", ErrBadArgs)
	}
	if _, exists := stub.GetState(key(ra.ID)); exists {
		return nil, fmt.Errorf("%w: %s", ErrExists, ra.ID)
	}
	caller := stub.Caller()
	m := &Meta{
		ID:             ra.ID,
		Peers:          ra.Peers,
		Owner:          caller,
		Authority:      ra.Authority,
		Columns:        append([]string(nil), ra.Columns...),
		WritePerm:      ra.WritePerm,
		LensSpec:       ra.LensSpec,
		PrioSeed:       append([]byte(nil), ra.PrioSeed...),
		CreatedAtMicro: stub.BlockTimeMicro(),
		UpdatedAtMicro: stub.BlockTimeMicro(),
	}
	if !m.hasPeer(caller) {
		return nil, fmt.Errorf("%w: %s registering %s", ErrNotPeer, caller, ra.ID)
	}
	if m.Authority.IsZero() {
		m.Authority = caller
	}
	if !m.hasPeer(m.Authority) {
		return nil, fmt.Errorf("%w: authority %s is not a peer", ErrBadArgs, m.Authority)
	}
	cols := make(map[string]bool, len(m.Columns))
	for _, col := range m.Columns {
		cols[col] = true
	}
	if m.WritePerm == nil {
		m.WritePerm = make(map[string][]identity.Address)
	}
	for col, who := range m.WritePerm {
		if !cols[col] {
			return nil, fmt.Errorf("%w: %s", ErrUnknownColumn, col)
		}
		for _, a := range who {
			if !m.hasPeer(a) {
				return nil, fmt.Errorf("%w: writer %s of column %s is not a peer", ErrBadArgs, a, col)
			}
		}
	}
	if err := storeMeta(stub, m); err != nil {
		return nil, err
	}
	stub.EmitEvent(EvRegistered, mustJSON(EventPayload{ShareID: m.ID, From: caller, Seq: 0}))
	return mustJSON(m), nil
}

// UpdateArgs is the JSON argument of FnRequestUpdate.
type UpdateArgs struct {
	ShareID string `json:"shareId"`
	// Cols are the attributes changed by this update.
	Cols []string `json:"cols"`
	// PayloadHash is the hex SHA-256 of the new canonical view encoding.
	PayloadHash string `json:"payloadHash"`
	// Kind is "create", "update", "delete", or "table".
	Kind string `json:"kind"`
	// BaseSeq must equal the share's current Seq (optimistic concurrency:
	// the updater derived its new view from that version).
	BaseSeq uint64 `json:"baseSeq"`
}

// EventPayload is the JSON payload of sharereg events.
type EventPayload struct {
	ShareID     string           `json:"shareId"`
	From        identity.Address `json:"from"`
	Seq         uint64           `json:"seq"`
	Cols        []string         `json:"cols,omitempty"`
	PayloadHash string           `json:"payloadHash,omitempty"`
	Kind        string           `json:"kind,omitempty"`
	Column      string           `json:"column,omitempty"`
}

func (c *Contract) requestUpdate(stub contract.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: request_update wants 1 arg", ErrBadArgs)
	}
	var ua UpdateArgs
	if err := json.Unmarshal(args[0], &ua); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	m, err := loadMeta(stub, ua.ShareID)
	if err != nil {
		return nil, err
	}
	caller := stub.Caller()
	if !m.hasPeer(caller) {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotPeer, caller, m.ID)
	}
	if m.Pending != nil {
		return nil, fmt.Errorf("%w: share %s pending seq %d", ErrPending, m.ID, m.Pending.Seq)
	}
	if ua.BaseSeq != m.Seq {
		return nil, fmt.Errorf("%w: share %s at seq %d, update based on %d", ErrWrongSeq, m.ID, m.Seq, ua.BaseSeq)
	}
	if len(ua.Cols) == 0 {
		return nil, fmt.Errorf("%w: update declares no columns", ErrBadArgs)
	}
	cols := make(map[string]bool, len(m.Columns))
	for _, col := range m.Columns {
		cols[col] = true
	}
	sorted := append([]string(nil), ua.Cols...)
	sort.Strings(sorted)
	for _, col := range sorted {
		if !cols[col] {
			return nil, fmt.Errorf("%w: %s", ErrUnknownColumn, col)
		}
		if !m.mayWrite(caller, col) {
			return nil, fmt.Errorf("%w: %s may not write %s of %s", ErrPermission, caller, col, m.ID)
		}
	}
	m.Pending = &PendingUpdate{
		Seq:              m.Seq + 1,
		From:             caller,
		Cols:             sorted,
		PayloadHash:      ua.PayloadHash,
		Kind:             ua.Kind,
		Acked:            map[string]bool{caller.String(): true},
		RequestedAtMicro: stub.BlockTimeMicro(),
	}
	// A two-peer share finalizes when the counterparty acks; if the
	// updater were the only peer the pending state would stall, which
	// register() prevents by requiring >=2 peers.
	if err := storeMeta(stub, m); err != nil {
		return nil, err
	}
	stub.EmitEvent(EvUpdateRequested, mustJSON(EventPayload{
		ShareID: m.ID, From: caller, Seq: m.Pending.Seq,
		Cols: sorted, PayloadHash: ua.PayloadHash, Kind: ua.Kind,
	}))
	return mustJSON(m), nil
}

// AckArgs is the JSON argument of FnAckUpdate.
type AckArgs struct {
	ShareID string `json:"shareId"`
	Seq     uint64 `json:"seq"`
}

func (c *Contract) ackUpdate(stub contract.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: ack_update wants 1 arg", ErrBadArgs)
	}
	var aa AckArgs
	if err := json.Unmarshal(args[0], &aa); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	m, err := loadMeta(stub, aa.ShareID)
	if err != nil {
		return nil, err
	}
	caller := stub.Caller()
	if !m.hasPeer(caller) {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotPeer, caller, m.ID)
	}
	if m.Pending == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoPending, m.ID)
	}
	if m.Pending.Seq != aa.Seq {
		return nil, fmt.Errorf("%w: pending seq %d, ack for %d", ErrWrongSeq, m.Pending.Seq, aa.Seq)
	}
	if m.Pending.Acked[caller.String()] {
		return nil, fmt.Errorf("%w: %s on %s seq %d", ErrAlreadyAcked, caller, m.ID, aa.Seq)
	}
	m.Pending.Acked[caller.String()] = true
	finalized := m.allAcked()
	if finalized {
		m.Seq = m.Pending.Seq
		m.UpdatedAtMicro = stub.BlockTimeMicro()
		from := m.Pending.From
		cols := m.Pending.Cols
		hash := m.Pending.PayloadHash
		kind := m.Pending.Kind
		m.LastPayloadHash = hash
		m.LastFrom = from
		m.Pending = nil
		stub.EmitEvent(EvUpdateFinal, mustJSON(EventPayload{
			ShareID: m.ID, From: from, Seq: m.Seq, Cols: cols, PayloadHash: hash, Kind: kind,
		}))
	}
	if err := storeMeta(stub, m); err != nil {
		return nil, err
	}
	return mustJSON(m), nil
}

// RejectArgs is the JSON argument of FnRejectUpdate.
type RejectArgs struct {
	ShareID string `json:"shareId"`
	Seq     uint64 `json:"seq"`
	// Reason describes why the peer cannot apply the update (e.g. the
	// view edit has no translation into its source under the local lens).
	Reason string `json:"reason"`
}

// rejectUpdate lets a sharing peer abort a pending update it cannot
// apply. The share's sequence number stays unchanged; the proposer rolls
// its replica back on the rejection event. Without this extension (the
// paper does not discuss untranslatable view edits) a put failure on any
// peer would stall the share forever, because the all-acked gate could
// never be passed.
func (c *Contract) rejectUpdate(stub contract.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: reject_update wants 1 arg", ErrBadArgs)
	}
	var ra RejectArgs
	if err := json.Unmarshal(args[0], &ra); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	m, err := loadMeta(stub, ra.ShareID)
	if err != nil {
		return nil, err
	}
	caller := stub.Caller()
	if !m.hasPeer(caller) {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotPeer, caller, m.ID)
	}
	if m.Pending == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoPending, m.ID)
	}
	if m.Pending.Seq != ra.Seq {
		return nil, fmt.Errorf("%w: pending seq %d, reject for %d", ErrWrongSeq, m.Pending.Seq, ra.Seq)
	}
	m.Pending = nil
	m.UpdatedAtMicro = stub.BlockTimeMicro()
	if err := storeMeta(stub, m); err != nil {
		return nil, err
	}
	stub.EmitEvent(EvUpdateRejected, mustJSON(EventPayload{
		ShareID: m.ID, From: caller, Seq: ra.Seq, Kind: ra.Reason,
	}))
	return mustJSON(m), nil
}

// PermissionArgs is the JSON argument of FnSetPermission.
type PermissionArgs struct {
	ShareID string `json:"shareId"`
	Column  string `json:"column"`
	// Writers replaces the allowed-writer list for Column.
	Writers []identity.Address `json:"writers"`
}

func (c *Contract) setPermission(stub contract.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: set_permission wants 1 arg", ErrBadArgs)
	}
	var pa PermissionArgs
	if err := json.Unmarshal(args[0], &pa); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	m, err := loadMeta(stub, pa.ShareID)
	if err != nil {
		return nil, err
	}
	caller := stub.Caller()
	if caller != m.Authority {
		return nil, fmt.Errorf("%w: %s on %s (authority is %s)", ErrNotAuthority, caller, m.ID, m.Authority)
	}
	if !contains(m.Columns, pa.Column) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownColumn, pa.Column)
	}
	for _, a := range pa.Writers {
		if !m.hasPeer(a) {
			return nil, fmt.Errorf("%w: writer %s is not a peer", ErrBadArgs, a)
		}
	}
	m.WritePerm[pa.Column] = pa.Writers
	m.UpdatedAtMicro = stub.BlockTimeMicro()
	if err := storeMeta(stub, m); err != nil {
		return nil, err
	}
	stub.EmitEvent(EvPermissionSet, mustJSON(EventPayload{ShareID: m.ID, From: caller, Column: pa.Column}))
	return mustJSON(m), nil
}

// AuthorityArgs is the JSON argument of FnSetAuthority.
type AuthorityArgs struct {
	ShareID   string           `json:"shareId"`
	Authority identity.Address `json:"authority"`
}

func (c *Contract) setAuthority(stub contract.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: set_authority wants 1 arg", ErrBadArgs)
	}
	var aa AuthorityArgs
	if err := json.Unmarshal(args[0], &aa); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	m, err := loadMeta(stub, aa.ShareID)
	if err != nil {
		return nil, err
	}
	caller := stub.Caller()
	if caller != m.Authority {
		return nil, fmt.Errorf("%w: %s on %s (authority is %s)", ErrNotAuthority, caller, m.ID, m.Authority)
	}
	if !m.hasPeer(aa.Authority) {
		return nil, fmt.Errorf("%w: new authority %s is not a peer", ErrBadArgs, aa.Authority)
	}
	m.Authority = aa.Authority
	m.UpdatedAtMicro = stub.BlockTimeMicro()
	if err := storeMeta(stub, m); err != nil {
		return nil, err
	}
	stub.EmitEvent(EvAuthoritySet, mustJSON(EventPayload{ShareID: m.ID, From: caller}))
	return mustJSON(m), nil
}

func (c *Contract) remove(stub contract.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: remove wants 1 arg (share id)", ErrBadArgs)
	}
	id := string(args[0])
	m, err := loadMeta(stub, id)
	if err != nil {
		return nil, err
	}
	caller := stub.Caller()
	if caller != m.Owner {
		return nil, fmt.Errorf("%w: %s on %s (owner is %s)", ErrNotOwner, caller, m.ID, m.Owner)
	}
	stub.DelState(key(id))
	stub.EmitEvent(EvRemoved, mustJSON(EventPayload{ShareID: id, From: caller, Seq: m.Seq}))
	return nil, nil
}

func (c *Contract) get(stub contract.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: get wants 1 arg (share id)", ErrBadArgs)
	}
	raw, ok := stub.GetState(key(string(args[0])))
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, string(args[0]))
	}
	return raw, nil
}

func (c *Contract) list(stub contract.Stub) ([]byte, error) {
	var ids []string
	stub.Range(keyPrefix, func(k string, _ []byte) bool {
		ids = append(ids, k[len(keyPrefix):])
		return true
	})
	return mustJSON(ids), nil
}

// DecodeMeta parses a Meta returned by FnGet or embedded in receipts.
func DecodeMeta(raw []byte) (*Meta, error) {
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("sharereg: decoding meta: %w", err)
	}
	return &m, nil
}

// DecodeEvent parses a sharereg event payload.
func DecodeEvent(raw []byte) (EventPayload, error) {
	var p EventPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return EventPayload{}, fmt.Errorf("sharereg: decoding event: %w", err)
	}
	return p, nil
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All payloads are plain structs; marshal cannot fail.
		panic(err)
	}
	return b
}
