package sharereg

import (
	"encoding/json"
	"strings"
	"testing"

	"medshare/internal/chain"
	"medshare/internal/contract"
	"medshare/internal/identity"
	"medshare/internal/statedb"
)

// harness drives the contract through the real runtime against one store.
type harness struct {
	t     *testing.T
	reg   *contract.Registry
	store *statedb.Store
	next  uint64
}

func newHarness(t *testing.T) *harness {
	return &harness{t: t, reg: contract.NewRegistry(New()), store: statedb.NewStore()}
}

// invoke executes one function as caller and commits on success.
func (h *harness) invoke(caller *identity.Identity, fn string, arg any) contract.Receipt {
	h.t.Helper()
	raw, err := json.Marshal(arg)
	if err != nil {
		h.t.Fatal(err)
	}
	if s, ok := arg.(string); ok {
		raw = []byte(s)
	}
	tx := &chain.Tx{Contract: ContractName, Fn: fn, Args: [][]byte{raw}, Nonce: h.next}
	h.next++
	tx.Sign(caller)
	rcpt := contract.Execute(h.reg, h.store, tx, h.next, int64(h.next)*1000)
	if rcpt.OK {
		h.store.Commit(rcpt.Writes, statedb.Version{Height: h.next})
	}
	return rcpt
}

// mustOK asserts success.
func (h *harness) mustOK(caller *identity.Identity, fn string, arg any) contract.Receipt {
	h.t.Helper()
	rcpt := h.invoke(caller, fn, arg)
	if !rcpt.OK {
		h.t.Fatalf("%s failed: %s", fn, rcpt.Err)
	}
	return rcpt
}

// mustFail asserts failure mentioning substr.
func (h *harness) mustFail(caller *identity.Identity, fn string, arg any, substr string) {
	h.t.Helper()
	rcpt := h.invoke(caller, fn, arg)
	if rcpt.OK {
		h.t.Fatalf("%s unexpectedly succeeded", fn)
	}
	if !strings.Contains(rcpt.Err, substr) {
		h.t.Fatalf("%s error = %q, want substring %q", fn, rcpt.Err, substr)
	}
}

func (h *harness) meta(id string) *Meta {
	h.t.Helper()
	raw, _, ok := h.store.Get("share/" + id)
	if !ok {
		h.t.Fatalf("share %s missing", id)
	}
	m, err := DecodeMeta(raw)
	if err != nil {
		h.t.Fatal(err)
	}
	return m
}

var (
	doctor     = identity.MustNew("Doctor")
	patient    = identity.MustNew("Patient")
	researcher = identity.MustNew("Researcher")
	stranger   = identity.MustNew("Stranger")
)

func regArgs() RegisterArgs {
	return RegisterArgs{
		ID:        "D13&D31",
		Peers:     []identity.Address{patient.Address(), doctor.Address()},
		Authority: doctor.Address(),
		Columns:   []string{"patient_id", "medication_name", "clinical_data", "dosage"},
		WritePerm: map[string][]identity.Address{
			"medication_name": {doctor.Address()},
			"dosage":          {doctor.Address()},
			"clinical_data":   {patient.Address(), doctor.Address()},
		},
	}
}

func TestRegisterAndGet(t *testing.T) {
	h := newHarness(t)
	rcpt := h.mustOK(doctor, FnRegister, regArgs())
	if len(rcpt.Events) != 1 || rcpt.Events[0].Name != EvRegistered {
		t.Fatalf("events = %+v", rcpt.Events)
	}
	m := h.meta("D13&D31")
	if m.Owner != doctor.Address() || m.Authority != doctor.Address() {
		t.Fatal("owner/authority wrong")
	}
	if m.Seq != 0 || m.Pending != nil {
		t.Fatal("fresh share must be at seq 0 with no pending")
	}
}

func TestRegisterValidation(t *testing.T) {
	h := newHarness(t)

	a := regArgs()
	a.ID = ""
	h.mustFail(doctor, FnRegister, a, "required")

	a = regArgs()
	a.Peers = []identity.Address{doctor.Address()}
	h.mustFail(doctor, FnRegister, a, "required")

	// Registrant must be a peer.
	h.mustFail(stranger, FnRegister, regArgs(), "not a sharing peer")

	// Authority must be a peer.
	a = regArgs()
	a.Authority = stranger.Address()
	h.mustFail(doctor, FnRegister, a, "not a peer")

	// Permission on unknown column.
	a = regArgs()
	a.WritePerm = map[string][]identity.Address{"ghost": {doctor.Address()}}
	h.mustFail(doctor, FnRegister, a, "unknown column")

	// Writer who is not a peer.
	a = regArgs()
	a.WritePerm = map[string][]identity.Address{"dosage": {stranger.Address()}}
	h.mustFail(doctor, FnRegister, a, "not a peer")

	// Duplicate registration.
	h.mustOK(doctor, FnRegister, regArgs())
	h.mustFail(doctor, FnRegister, regArgs(), "already registered")
}

func TestUpdateLifecycle(t *testing.T) {
	h := newHarness(t)
	h.mustOK(doctor, FnRegister, regArgs())

	up := UpdateArgs{ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h1", Kind: "update", BaseSeq: 0}
	rcpt := h.mustOK(doctor, FnRequestUpdate, up)
	if len(rcpt.Events) != 1 || rcpt.Events[0].Name != EvUpdateRequested {
		t.Fatalf("events = %+v", rcpt.Events)
	}
	m := h.meta("D13&D31")
	if m.Pending == nil || m.Pending.Seq != 1 || !m.Pending.Acked[doctor.Address().String()] {
		t.Fatalf("pending = %+v", m.Pending)
	}

	// The paper's gate: no second update while one is pending.
	h.mustFail(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h2", BaseSeq: 0,
	}, "not yet acknowledged")

	// Counterparty acks; all peers acked -> finalize.
	rcpt = h.mustOK(patient, FnAckUpdate, AckArgs{ShareID: "D13&D31", Seq: 1})
	finalSeen := false
	for _, ev := range rcpt.Events {
		if ev.Name == EvUpdateFinal {
			finalSeen = true
		}
	}
	if !finalSeen {
		t.Fatal("final event missing")
	}
	m = h.meta("D13&D31")
	if m.Seq != 1 || m.Pending != nil {
		t.Fatalf("meta after final = %+v", m)
	}
	if m.LastPayloadHash != "h1" || m.LastFrom != doctor.Address() {
		t.Fatal("last update metadata wrong")
	}
	if m.UpdatedAtMicro == 0 {
		t.Fatal("last update time not set")
	}

	// Next update must base on seq 1.
	h.mustFail(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h3", BaseSeq: 0,
	}, "sequence mismatch")
	h.mustOK(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h3", BaseSeq: 1,
	})
}

func TestUpdatePermissionChecks(t *testing.T) {
	h := newHarness(t)
	h.mustOK(doctor, FnRegister, regArgs())

	// Patient may not write dosage (Fig. 3).
	h.mustFail(patient, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h", BaseSeq: 0,
	}, "write permission denied")

	// Patient may write clinical data.
	h.mustOK(patient, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"clinical_data"}, PayloadHash: "h", BaseSeq: 0,
	})

	// Column with no permission entry is read-only for everyone.
	h2 := newHarness(t)
	h2.mustOK(doctor, FnRegister, regArgs())
	h2.mustFail(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"patient_id"}, PayloadHash: "h", BaseSeq: 0,
	}, "write permission denied")

	// Stranger is rejected as non-peer.
	h2.mustFail(stranger, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h", BaseSeq: 0,
	}, "not a sharing peer")

	// Unknown column.
	h2.mustFail(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"ghost"}, PayloadHash: "h", BaseSeq: 0,
	}, "unknown column")

	// Empty column list.
	h2.mustFail(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", PayloadHash: "h", BaseSeq: 0,
	}, "no columns")
}

func TestAckValidation(t *testing.T) {
	h := newHarness(t)
	h.mustOK(doctor, FnRegister, regArgs())

	h.mustFail(patient, FnAckUpdate, AckArgs{ShareID: "D13&D31", Seq: 1}, "no pending")

	h.mustOK(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h", BaseSeq: 0,
	})
	h.mustFail(patient, FnAckUpdate, AckArgs{ShareID: "D13&D31", Seq: 9}, "sequence mismatch")
	h.mustFail(stranger, FnAckUpdate, AckArgs{ShareID: "D13&D31", Seq: 1}, "not a sharing peer")
	// The proposer auto-acked; double ack rejected.
	h.mustFail(doctor, FnAckUpdate, AckArgs{ShareID: "D13&D31", Seq: 1}, "already acknowledged")
}

func TestRejectUpdate(t *testing.T) {
	h := newHarness(t)
	h.mustOK(doctor, FnRegister, regArgs())
	h.mustOK(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h", BaseSeq: 0,
	})
	rcpt := h.mustOK(patient, FnRejectUpdate, RejectArgs{ShareID: "D13&D31", Seq: 1, Reason: "no translation"})
	found := false
	for _, ev := range rcpt.Events {
		if ev.Name == EvUpdateRejected {
			found = true
		}
	}
	if !found {
		t.Fatal("rejected event missing")
	}
	m := h.meta("D13&D31")
	if m.Pending != nil || m.Seq != 0 {
		t.Fatalf("meta after reject = %+v", m)
	}
	// The share accepts a fresh update afterwards.
	h.mustOK(doctor, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h2", BaseSeq: 0,
	})
}

func TestSetPermissionAuthority(t *testing.T) {
	h := newHarness(t)
	h.mustOK(doctor, FnRegister, regArgs())

	// The Fig. 3 narrative: doctor grants patient write access to dosage.
	h.mustOK(doctor, FnSetPermission, PermissionArgs{
		ShareID: "D13&D31", Column: "dosage",
		Writers: []identity.Address{doctor.Address(), patient.Address()},
	})
	m := h.meta("D13&D31")
	if len(m.WritePerm["dosage"]) != 2 {
		t.Fatalf("writers = %v", m.WritePerm["dosage"])
	}
	// Patient can now update dosage.
	h.mustOK(patient, FnRequestUpdate, UpdateArgs{
		ShareID: "D13&D31", Cols: []string{"dosage"}, PayloadHash: "h", BaseSeq: 0,
	})

	// Non-authority cannot change permissions.
	h.mustFail(patient, FnSetPermission, PermissionArgs{
		ShareID: "D13&D31", Column: "dosage", Writers: []identity.Address{patient.Address()},
	}, "lacks authority")
	// Unknown column.
	h.mustFail(doctor, FnSetPermission, PermissionArgs{
		ShareID: "D13&D31", Column: "ghost", Writers: nil,
	}, "unknown column")
	// Writers must be peers.
	h.mustFail(doctor, FnSetPermission, PermissionArgs{
		ShareID: "D13&D31", Column: "dosage", Writers: []identity.Address{stranger.Address()},
	}, "not a peer")
}

func TestSetAuthority(t *testing.T) {
	h := newHarness(t)
	h.mustOK(doctor, FnRegister, regArgs())
	h.mustOK(doctor, FnSetAuthority, AuthorityArgs{ShareID: "D13&D31", Authority: patient.Address()})
	m := h.meta("D13&D31")
	if m.Authority != patient.Address() {
		t.Fatal("authority not transferred")
	}
	// Old authority lost the power.
	h.mustFail(doctor, FnSetAuthority, AuthorityArgs{ShareID: "D13&D31", Authority: doctor.Address()}, "lacks authority")
	// New authority must be a peer.
	h.mustFail(patient, FnSetAuthority, AuthorityArgs{ShareID: "D13&D31", Authority: stranger.Address()}, "not a peer")
}

func TestRemove(t *testing.T) {
	h := newHarness(t)
	h.mustOK(doctor, FnRegister, regArgs())
	h.mustFail(patient, FnRemove, "D13&D31", "not the share owner")
	h.mustOK(doctor, FnRemove, "D13&D31")
	if _, _, ok := h.store.Get("share/D13&D31"); ok {
		t.Fatal("share not removed")
	}
	h.mustFail(doctor, FnRemove, "D13&D31", "not found")
}

func TestGetAndList(t *testing.T) {
	h := newHarness(t)
	h.mustOK(doctor, FnRegister, regArgs())
	a2 := regArgs()
	a2.ID = "A&B"
	h.mustOK(doctor, FnRegister, a2)

	rcpt := h.mustOK(doctor, FnGet, "D13&D31")
	m, err := DecodeMeta(rcpt.Result)
	if err != nil || m.ID != "D13&D31" {
		t.Fatalf("get = %v, %v", m, err)
	}
	h.mustFail(doctor, FnGet, "ghost", "not found")

	rcpt = h.invoke(doctor, FnList, "")
	var ids []string
	if err := json.Unmarshal(rcpt.Result, &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("list = %v", ids)
	}
}

func TestUnknownFunction(t *testing.T) {
	h := newHarness(t)
	h.mustFail(doctor, "dance", "x", "unknown function")
}
