package contract

import (
	"errors"
	"fmt"
	"testing"

	"medshare/internal/chain"
	"medshare/internal/identity"
	"medshare/internal/statedb"
)

// counter is a minimal deterministic contract for runtime tests.
type counter struct{}

func (counter) Name() string { return "counter" }

func (counter) Invoke(stub Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "inc":
		key := "counter/" + string(args[0])
		var n byte
		if raw, ok := stub.GetState(key); ok {
			n = raw[0]
		}
		stub.PutState(key, []byte{n + 1})
		stub.EmitEvent("incremented", []byte(args[0]))
		return []byte{n + 1}, nil
	case "fail":
		stub.PutState("counter/garbage", []byte("should never commit"))
		return nil, errors.New("deliberate failure")
	case "whoami":
		return []byte(stub.Caller().String()), nil
	case "meta":
		return []byte(fmt.Sprintf("%s/%d/%d", stub.TxID(), stub.BlockHeight(), stub.BlockTimeMicro())), nil
	default:
		return nil, ErrUnknownFunction
	}
}

func makeTx(id *identity.Identity, contractName, fn string, args ...[]byte) *chain.Tx {
	tx := &chain.Tx{Contract: contractName, Fn: fn, Args: args, Nonce: 1}
	tx.Sign(id)
	return tx
}

func TestExecuteCommitsOnSuccess(t *testing.T) {
	reg := NewRegistry(counter{})
	store := statedb.NewStore()
	id := identity.MustNew("caller")
	tx := makeTx(id, "counter", "inc", []byte("a"))

	rcpt := Execute(reg, store, tx, 1, 1000)
	if !rcpt.OK {
		t.Fatalf("receipt = %+v", rcpt)
	}
	if rcpt.Result[0] != 1 {
		t.Fatalf("result = %v", rcpt.Result)
	}
	if len(rcpt.Events) != 1 || rcpt.Events[0].Name != "incremented" {
		t.Fatalf("events = %+v", rcpt.Events)
	}
	// Execute never commits; the store is untouched until the node does.
	if _, _, ok := store.Get("counter/a"); ok {
		t.Fatal("Execute mutated the store")
	}
	store.Commit(rcpt.Writes, statedb.Version{Height: 1})
	if raw, _, _ := store.Get("counter/a"); raw[0] != 1 {
		t.Fatal("write set wrong")
	}
}

func TestExecuteDiscardsWritesOnFailure(t *testing.T) {
	reg := NewRegistry(counter{})
	store := statedb.NewStore()
	id := identity.MustNew("caller")
	rcpt := Execute(reg, store, makeTx(id, "counter", "fail"), 1, 0)
	if rcpt.OK {
		t.Fatal("failure reported OK")
	}
	if rcpt.Err == "" {
		t.Fatal("missing error in receipt")
	}
	if len(rcpt.Writes) != 0 {
		t.Fatal("failed tx carries writes")
	}
	if len(rcpt.Events) != 0 {
		t.Fatal("failed tx carries events")
	}
}

func TestExecuteUnknownContract(t *testing.T) {
	reg := NewRegistry()
	store := statedb.NewStore()
	id := identity.MustNew("caller")
	rcpt := Execute(reg, store, makeTx(id, "ghost", "fn"), 1, 0)
	if rcpt.OK {
		t.Fatal("unknown contract succeeded")
	}
}

func TestStubExposesTxContext(t *testing.T) {
	reg := NewRegistry(counter{})
	store := statedb.NewStore()
	id := identity.MustNew("caller")
	tx := makeTx(id, "counter", "meta")
	rcpt := Execute(reg, store, tx, 7, 12345)
	want := fmt.Sprintf("%s/7/12345", tx.IDString())
	if string(rcpt.Result) != want {
		t.Fatalf("meta = %s, want %s", rcpt.Result, want)
	}
}

func TestStubCallerIsVerifiedSender(t *testing.T) {
	reg := NewRegistry(counter{})
	store := statedb.NewStore()
	id := identity.MustNew("caller")
	rcpt := Execute(reg, store, makeTx(id, "counter", "whoami"), 1, 0)
	if string(rcpt.Result) != id.Address().String() {
		t.Fatalf("caller = %s", rcpt.Result)
	}
}

func TestQueryDiscardsWrites(t *testing.T) {
	reg := NewRegistry(counter{})
	store := statedb.NewStore()
	id := identity.MustNew("caller")
	out, err := Query(reg, store, "counter", "inc", id.Address(), []byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("query result = %v", out)
	}
	if _, _, ok := store.Get("counter/q"); ok {
		t.Fatal("query committed state")
	}
}

func TestQueryUnknownContract(t *testing.T) {
	reg := NewRegistry()
	store := statedb.NewStore()
	if _, err := Query(reg, store, "ghost", "f", identity.Address{}); !errors.Is(err, ErrUnknownContract) {
		t.Fatalf("want ErrUnknownContract, got %v", err)
	}
}

func TestRegistryLookup(t *testing.T) {
	reg := NewRegistry(counter{})
	if _, ok := reg.Get("counter"); !ok {
		t.Fatal("registered contract missing")
	}
	if _, ok := reg.Get("ghost"); ok {
		t.Fatal("phantom contract found")
	}
}

func TestExecutionDeterministic(t *testing.T) {
	// Two independent stores fed the same txs must produce identical
	// roots — the property every validating node depends on.
	id := identity.MustNew("caller")
	var txs []*chain.Tx
	for i := 0; i < 10; i++ {
		txs = append(txs, makeTx(id, "counter", "inc", []byte{byte(i % 3)}))
	}
	run := func() [32]byte {
		reg := NewRegistry(counter{})
		store := statedb.NewStore()
		for i, tx := range txs {
			rcpt := Execute(reg, store, tx, uint64(i+1), int64(i))
			if rcpt.OK {
				store.Commit(rcpt.Writes, statedb.Version{Height: uint64(i + 1)})
			}
		}
		return store.Root()
	}
	if run() != run() {
		t.Fatal("execution not deterministic")
	}
}
