// Package contract implements a deterministic smart-contract runtime in
// the style of Hyperledger Fabric chaincode: contracts are native Go
// objects invoked through a Stub that mediates all state access via
// read/write-set simulations (internal/statedb). Every node re-executes
// every block's transactions and must arrive at the same state root,
// which is what lets the network "validate it and re-run contracts"
// (Section II-A).
package contract

import (
	"errors"
	"fmt"

	"medshare/internal/chain"
	"medshare/internal/identity"
	"medshare/internal/statedb"
)

// Stub is the interface contracts use to interact with the ledger during
// an invocation. All reads and writes are captured in the transaction's
// read/write sets.
type Stub interface {
	// GetState reads a key from the (simulated) world state.
	GetState(key string) ([]byte, bool)
	// PutState stages a write.
	PutState(key string, value []byte)
	// DelState stages a deletion.
	DelState(key string)
	// Range iterates keys under prefix in sorted order.
	Range(prefix string, fn func(key string, value []byte) bool)
	// Caller is the verified sender address of the transaction.
	Caller() identity.Address
	// TxID is the hex transaction ID.
	TxID() string
	// BlockHeight is the height of the block being executed.
	BlockHeight() uint64
	// BlockTimeMicro is the block timestamp (µs since epoch) — the only
	// clock contracts may read, so execution stays deterministic.
	BlockTimeMicro() int64
	// EmitEvent records an event delivered to subscribed peers once the
	// block commits (the contract "notifies sharing peers", Fig. 4).
	EmitEvent(name string, payload []byte)
}

// Contract is a deterministic state machine addressed by name.
type Contract interface {
	// Name returns the contract's registry name.
	Name() string
	// Invoke executes fn with args. Returning an error aborts the
	// transaction: its writes are discarded and the failure recorded in
	// the receipt. Errors must be deterministic across nodes.
	Invoke(stub Stub, fn string, args [][]byte) ([]byte, error)
}

// Event is emitted by a contract during a committed transaction.
type Event struct {
	// Contract and Name identify the event source and type.
	Contract string `json:"contract"`
	Name     string `json:"name"`
	// Payload is contract-defined.
	Payload []byte `json:"payload"`
	// TxID, Height record where the event was committed.
	TxID   string `json:"txId"`
	Height uint64 `json:"height"`
}

// Errors returned by the runtime.
var (
	ErrUnknownContract = errors.New("contract: unknown contract")
	ErrUnknownFunction = errors.New("contract: unknown function")
)

// Registry maps contract names to implementations. All nodes of a network
// must register the same contracts (they are part of the network's
// genesis configuration, like Fabric chaincode installed on every peer).
type Registry struct {
	contracts map[string]Contract
}

// NewRegistry creates a registry with the given contracts installed.
func NewRegistry(cs ...Contract) *Registry {
	r := &Registry{contracts: make(map[string]Contract, len(cs))}
	for _, c := range cs {
		r.contracts[c.Name()] = c
	}
	return r
}

// Get returns the named contract.
func (r *Registry) Get(name string) (Contract, bool) {
	c, ok := r.contracts[name]
	return c, ok
}

// Receipt records the outcome of executing one transaction.
type Receipt struct {
	// TxID is the hex transaction ID.
	TxID string `json:"txId"`
	// OK reports whether the invocation succeeded and its writes were
	// committed.
	OK bool `json:"ok"`
	// Err is the deterministic failure description when OK is false.
	Err string `json:"err,omitempty"`
	// Result is the contract's return value when OK is true.
	Result []byte `json:"result,omitempty"`
	// Events are the events emitted by a successful invocation.
	Events []Event `json:"events,omitempty"`
	// Reads and Writes are the captured state access sets.
	Reads  statedb.ReadSet  `json:"-"`
	Writes statedb.WriteSet `json:"-"`
}

// stub is the concrete Stub bound to one simulation.
type stub struct {
	sim    *statedb.Sim
	caller identity.Address
	txID   string
	height uint64
	tsUs   int64
	events []Event
	cname  string
}

func (s *stub) GetState(key string) ([]byte, bool) { return s.sim.Get(key) }
func (s *stub) PutState(key string, value []byte)  { s.sim.Put(key, value) }
func (s *stub) DelState(key string)                { s.sim.Del(key) }
func (s *stub) Range(prefix string, fn func(string, []byte) bool) {
	s.sim.Range(prefix, fn)
}
func (s *stub) Caller() identity.Address { return s.caller }
func (s *stub) TxID() string             { return s.txID }
func (s *stub) BlockHeight() uint64      { return s.height }
func (s *stub) BlockTimeMicro() int64    { return s.tsUs }
func (s *stub) EmitEvent(name string, payload []byte) {
	s.events = append(s.events, Event{
		Contract: s.cname, Name: name,
		Payload: append([]byte(nil), payload...),
		TxID:    s.txID, Height: s.height,
	})
}

// Execute runs one transaction against a fresh simulation of store. The
// caller (the node) is responsible for MVCC validation and committing the
// write set; Execute itself never mutates store.
func Execute(reg *Registry, store *statedb.Store, tx *chain.Tx, height uint64, blockTimeMicro int64) Receipt {
	rcpt := Receipt{TxID: tx.IDString()}
	c, ok := reg.Get(tx.Contract)
	if !ok {
		rcpt.Err = fmt.Sprintf("%v: %s", ErrUnknownContract, tx.Contract)
		return rcpt
	}
	sim := store.NewSim()
	st := &stub{
		sim:    sim,
		caller: tx.From,
		txID:   tx.IDString(),
		height: height,
		tsUs:   blockTimeMicro,
		cname:  c.Name(),
	}
	result, err := c.Invoke(st, tx.Fn, tx.Args)
	reads, writes := sim.Results()
	rcpt.Reads = reads
	if err != nil {
		rcpt.Err = err.Error()
		return rcpt
	}
	rcpt.OK = true
	rcpt.Result = result
	rcpt.Events = st.events
	rcpt.Writes = writes
	return rcpt
}

// Query runs a read-only invocation against the current state, outside
// any transaction. Writes staged by the contract are discarded.
func Query(reg *Registry, store *statedb.Store, contractName, fn string, caller identity.Address, args ...[]byte) ([]byte, error) {
	c, ok := reg.Get(contractName)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownContract, contractName)
	}
	sim := store.NewSim()
	st := &stub{sim: sim, caller: caller, txID: "query", cname: c.Name()}
	return c.Invoke(st, fn, args)
}
