// Package bx implements well-behaved asymmetric lenses (bidirectional
// transformations) over reldb tables, the synchronization mechanism of the
// paper (Section II-B): get derives a fine-grained view from a full source
// table, and put embeds an updated view back into the source, subject to
// the round-tripping laws
//
//	GetPut: put(s, get(s)) = s
//	PutGet: get(put(s, v)) = v
//
// Lenses are built from combinators — Project, Select, Rename, Compose —
// and carry a serializable Spec so a share's lens can be registered as
// on-chain metadata and reconstructed by any authorized peer.
package bx

import (
	"errors"

	"medshare/internal/reldb"
)

// Errors reported by lens operations.
var (
	// ErrPutViolation is returned when put cannot embed the view (for
	// example, a view row violates the selection predicate, or an insert
	// through a projection lens is forbidden by policy).
	ErrPutViolation = errors.New("bx: put violation")
	// ErrSpecInvalid is returned for malformed lens specifications.
	ErrSpecInvalid = errors.New("bx: invalid lens spec")
	// ErrLawViolation is returned by the law checkers when a lens fails
	// GetPut or PutGet on the supplied data.
	ErrLawViolation = errors.New("bx: law violation")
)

// Lens is an asymmetric lens between a source table and a view table.
// Implementations must be pure: no method may mutate its arguments, and
// all must be deterministic.
//
// The delta path (PutDelta) is part of the required surface: every lens
// must embed a row-level view changeset in O(changed rows) work, because
// the sharing layer's whole update pipeline — entry-level edits,
// incoming-update application, cascades, resync — runs on changesets and
// never falls back to an O(table) put. Put remains for whole-view
// embedding where no changeset exists (share bootstrap, divergence
// recovery, the lens laws).
type Lens interface {
	// Get computes the view of src (the forward transformation).
	Get(src *reldb.Table) (*reldb.Table, error)
	// Put embeds view into src, producing an updated source (the backward
	// transformation). Put never mutates src or view.
	Put(src, view *reldb.Table) (*reldb.Table, error)
	// PutDelta embeds the edited view into src given the changeset from
	// the lens's current view of src (i.e. Get(src)) to view, as produced
	// by reldb.Table.Diff. It returns the updated source and the
	// changeset applied to the source (for cascading the delta through
	// composed lenses and into overlapping shares). Like Put, it never
	// mutates src or view and enforces the same policies; on a consistent
	// changeset the result always equals Put(src, view), in O(changed
	// rows) instead of O(table).
	PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error)
	// ViewSchema returns the schema of the view produced from a source
	// with the given schema.
	ViewSchema(src reldb.Schema) (reldb.Schema, error)
	// Spec returns the serializable description of the lens.
	Spec() Spec
	// SourceColumnsRead returns the source columns whose values influence
	// the view contents (given the source schema).
	SourceColumnsRead(src reldb.Schema) ([]string, error)
	// SourceColumnsWritten returns the source columns that put may modify
	// when the named view columns change. viewCols nil means "any".
	SourceColumnsWritten(src reldb.Schema, viewCols []string) ([]string, error)
}

// Policy values controlling how a projection lens handles structural
// (insert/delete) edits made on the view.
const (
	// PolicyForbid rejects the edit with ErrPutViolation.
	PolicyForbid = "forbid"
	// PolicyApply propagates the edit into the source (deleting matching
	// source rows, or inserting new ones using the configured defaults).
	PolicyApply = "apply"
)

func dedupe(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	// Never reuse the caller's backing array (out := ss[:0] would): the
	// input is often a shared slice (e.g. schema column names passed
	// through overlap analysis) and writing into it corrupts the caller.
	out := make([]string, 0, len(ss))
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func intersects(a, b []string) bool {
	set := make(map[string]bool, len(a))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if set[s] {
			return true
		}
	}
	return false
}
