package bx

import (
	"fmt"

	"medshare/internal/reldb"
)

// ProjectLens is the workhorse lens of the paper: the view is a projection
// of the source onto a subset of columns, keyed by ViewKey, and the
// projection must be functional on ViewKey (two source rows agreeing on the
// view key must agree on every projected column).
//
// put aligns rows by the view key:
//   - a source row whose view-key tuple appears in the view gets its
//     projected non-key columns overwritten from the view row;
//   - a source row whose view-key tuple is absent from the view was deleted
//     on the view side: OnDelete decides whether the source row is deleted
//     (PolicyApply) or the edit rejected (PolicyForbid);
//   - a view row whose key matches no source row was inserted on the view
//     side: OnInsert decides whether a fresh source row is created
//     (PolicyApply, hidden columns from Defaults) or the edit rejected.
//
// With key alignment the lens is well behaved: GetPut holds because an
// unchanged view overwrites every projected column with its current value,
// and PutGet holds because after put every source row projects onto exactly
// the view rows (hidden columns are invisible to get).
type ProjectLens struct {
	// ViewName names the produced view table (for example "D13").
	ViewName string
	// Cols are the projected source columns, in view column order.
	Cols []string
	// ViewKey is the primary key of the view. Empty inherits the source
	// key (which then must be contained in Cols).
	ViewKey []string
	// OnDelete and OnInsert are PolicyApply or PolicyForbid (default
	// PolicyForbid, the conservative choice for medical data).
	OnDelete string
	OnInsert string
	// Defaults supplies values for hidden source columns when OnInsert is
	// PolicyApply. Hidden non-nullable columns without defaults make
	// inserts fail.
	Defaults map[string]reldb.Value
}

// Project constructs a projection lens with forbid policies.
func Project(viewName string, cols []string, viewKey []string) *ProjectLens {
	return &ProjectLens{ViewName: viewName, Cols: cols, ViewKey: viewKey,
		OnDelete: PolicyForbid, OnInsert: PolicyForbid}
}

// WithDelete sets the view-delete policy and returns the lens.
func (l *ProjectLens) WithDelete(policy string) *ProjectLens {
	l.OnDelete = policy
	return l
}

// WithInsert sets the view-insert policy (and default values for hidden
// columns) and returns the lens.
func (l *ProjectLens) WithInsert(policy string, defaults map[string]reldb.Value) *ProjectLens {
	l.OnInsert = policy
	l.Defaults = defaults
	return l
}

// ViewSchema implements Lens.
func (l *ProjectLens) ViewSchema(src reldb.Schema) (reldb.Schema, error) {
	return src.Project(l.ViewName, l.Cols, l.ViewKey)
}

// Get implements Lens.
func (l *ProjectLens) Get(src *reldb.Table) (*reldb.Table, error) {
	return src.Project(l.ViewName, l.Cols, l.ViewKey)
}

// Put implements Lens. Source rows align with view rows by the view
// key in one in-order pass over the source storage: rows whose
// projected columns are unchanged pass through as shared references
// (the rebuilt table shares their subtrees — and cached digests — with
// the source), rows with view edits are copied once. The common case
// rebuilds on the source's tree shape (reldb.Table.RebuildAs: no key
// re-encoding, no priority hashing); only a re-keyed projection that
// also projects a source-key column — where a view edit can move a
// source row's primary key — takes the generic builder.
func (l *ProjectLens) Put(src, view *reldb.Table) (*reldb.Table, error) {
	srcSchema := src.Schema()
	wantView, err := l.ViewSchema(srcSchema)
	if err != nil {
		return nil, err
	}
	if !wantView.Equal(view.Schema()) {
		return nil, fmt.Errorf("%w: view schema does not match projection of source", ErrPutViolation)
	}

	// Column index maps.
	srcIdxOfCol := make(map[string]int, len(srcSchema.Columns))
	for i, c := range srcSchema.Columns {
		srcIdxOfCol[c.Name] = i
	}
	viewKeyIdxInSrc := make([]int, len(wantView.Key))
	for i, k := range wantView.Key {
		viewKeyIdxInSrc[i] = srcIdxOfCol[k]
	}
	colIdxInSrc := make([]int, len(l.Cols))
	for i, c := range l.Cols {
		colIdxInSrc[i] = srcIdxOfCol[c]
	}

	keyEditPossible := false
	if !sameKey(srcSchema.Key, wantView.Key) {
		for _, c := range l.Cols {
			if srcSchema.IsKeyColumn(c) {
				keyEditPossible = true
			}
		}
	}

	matched := make(map[string]bool, view.Len())
	var keyBuf []byte
	transform := func(sr reldb.Row) (reldb.Row, error) {
		keyBuf = keyBuf[:0]
		for _, j := range viewKeyIdxInSrc {
			keyBuf = sr[j].AppendOrdered(keyBuf)
		}
		vr, ok := view.GetKeyBytes(keyBuf)
		if !ok {
			// The view row for this source row was deleted.
			if l.OnDelete != PolicyApply {
				vkey := make(reldb.Row, len(viewKeyIdxInSrc))
				for i, j := range viewKeyIdxInSrc {
					vkey[i] = sr[j]
				}
				return nil, fmt.Errorf("%w: view %s deleted row with key %v but lens forbids deletes", ErrPutViolation, l.ViewName, vkey)
			}
			return nil, nil
		}
		matched[string(keyBuf)] = true
		updated, cloned := sr, false
		for vi, si := range colIdxInSrc {
			if !updated[si].Equal(vr[vi]) {
				if !cloned {
					updated, cloned = sr.Clone(), true
				}
				updated[si] = vr[vi]
			}
		}
		return updated, nil
	}

	var out *reldb.Table
	if !keyEditPossible {
		out, err = src.RebuildAs(srcSchema, transform)
	} else {
		var bld *reldb.TableBuilder
		bld, err = reldb.NewTableBuilder(srcSchema)
		if err != nil {
			return nil, err
		}
		err = src.Scan(func(sr reldb.Row) (bool, error) {
			nr, terr := transform(sr)
			if terr != nil || nr == nil {
				return terr == nil, terr
			}
			if aerr := bld.Append(nr); aerr != nil {
				return false, fmt.Errorf("%w: %v", ErrPutViolation, aerr)
			}
			return true, nil
		})
		if err == nil {
			out = bld.Table()
		}
	}
	if err != nil {
		return nil, err
	}

	// View rows with no matching source row are inserts.
	if len(matched) != view.Len() {
		for _, vr := range view.RowsCanonical() {
			vkey := viewKeyOf(wantView, vr)
			if matched[keyString(vkey)] {
				continue
			}
			if l.OnInsert != PolicyApply {
				return nil, fmt.Errorf("%w: view %s inserted row with key %v but lens forbids inserts", ErrPutViolation, l.ViewName, vkey)
			}
			if err := out.InsertOwned(l.newSourceRow(srcSchema, colIdxInSrc, vr)); err != nil {
				return nil, fmt.Errorf("%w: inserting through view %s: %v", ErrPutViolation, l.ViewName, err)
			}
		}
	}
	return out, nil
}

// newSourceRow builds a fresh source row for a view-side insert: hidden
// columns take the lens defaults (NULL otherwise), projected columns take
// the view row's values.
func (l *ProjectLens) newSourceRow(srcSchema reldb.Schema, colIdxInSrc []int, vr reldb.Row) reldb.Row {
	nr := make(reldb.Row, len(srcSchema.Columns))
	for i, c := range srcSchema.Columns {
		if dv, ok := l.Defaults[c.Name]; ok {
			nr[i] = dv
		} else {
			nr[i] = reldb.Null()
		}
	}
	for vi, si := range colIdxInSrc {
		nr[si] = vr[vi]
	}
	return nr
}

// Spec implements Lens.
func (l *ProjectLens) Spec() Spec {
	return Spec{
		Op:       OpProject,
		ViewName: l.ViewName,
		Cols:     append([]string(nil), l.Cols...),
		Key:      append([]string(nil), l.ViewKey...),
		OnDelete: l.OnDelete,
		OnInsert: l.OnInsert,
		Defaults: cloneDefaults(l.Defaults),
	}
}

// SourceColumnsRead implements Lens: the view reads exactly the projected
// columns.
func (l *ProjectLens) SourceColumnsRead(reldb.Schema) ([]string, error) {
	return append([]string(nil), l.Cols...), nil
}

// SourceColumnsWritten implements Lens: put writes the projected columns
// named in viewCols (all projected columns when viewCols is nil).
func (l *ProjectLens) SourceColumnsWritten(_ reldb.Schema, viewCols []string) ([]string, error) {
	if viewCols == nil {
		return append([]string(nil), l.Cols...), nil
	}
	var out []string
	for _, vc := range viewCols {
		for _, c := range l.Cols {
			if c == vc {
				out = append(out, c)
			}
		}
	}
	return out, nil
}

func viewKeyOf(s reldb.Schema, r reldb.Row) reldb.Row {
	idx := s.KeyIndexes()
	out := make(reldb.Row, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}

// keyString encodes a key tuple with the ordered storage encoding — the
// same bytes the GetKeyBytes probes above use, so the two sides of the
// matched set agree.
func keyString(key reldb.Row) string {
	var buf []byte
	for _, v := range key {
		buf = v.AppendOrdered(buf)
	}
	return string(buf)
}

func cloneDefaults(m map[string]reldb.Value) map[string]reldb.Value {
	if m == nil {
		return nil
	}
	out := make(map[string]reldb.Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
