package bx

import (
	"sort"

	"medshare/internal/reldb"
)

// Overlap analysis implements step 6 of the paper's Fig. 5 workflow: after
// an incoming update on one share is put into the local source, the peer
// must decide which of its *other* shares over the same source need to be
// regenerated and re-propagated.
//
// Share B is affected by an update that arrived through share A when the
// source columns written by A.Put intersect the source columns read by
// B.Get (both computed symbolically from the lens specs, not from data, so
// the check is cheap and conservative).

// Overlaps reports whether an update through lens a that changed the given
// view columns (nil means "unknown, assume all") can affect the view of
// lens b over the same source schema.
func Overlaps(src reldb.Schema, a Lens, changedViewCols []string, b Lens) (bool, error) {
	written, err := a.SourceColumnsWritten(src, changedViewCols)
	if err != nil {
		return false, err
	}
	read, err := b.SourceColumnsRead(src)
	if err != nil {
		return false, err
	}
	return intersects(written, read), nil
}

// SharedSourceColumns returns the sorted source columns visible through
// both lenses — the data the two views have in common (e.g. the paper's
// D31 and D32 share a1 "Medication Name" via source D3).
func SharedSourceColumns(src reldb.Schema, a, b Lens) ([]string, error) {
	ra, err := a.SourceColumnsRead(src)
	if err != nil {
		return nil, err
	}
	rb, err := b.SourceColumnsRead(src)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(ra))
	for _, c := range ra {
		set[c] = true
	}
	var out []string
	for _, c := range dedupe(rb) {
		if set[c] {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out, nil
}
