package bx

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"medshare/internal/reldb"
)

// lensesUnderTest builds the lens menagerie used by the law properties.
// Every lens here must be well behaved for every source and every
// policy-admissible view edit.
func lensesUnderTest() []Lens {
	return []Lens{
		Project("p1", []string{"pid", "dose"}, nil).WithDelete(PolicyApply).
			WithInsert(PolicyApply, map[string]reldb.Value{
				"med": reldb.S("dmed"), "mech": reldb.S("dmech"),
			}),
		Project("p2", []string{"pid", "med", "dose", "mech"}, nil),
		Project("p3", []string{"med", "mech"}, []string{"med"}),
		Select("s1", reldb.Cmp("pid", reldb.OpLt, reldb.I(5))).WithDelete(PolicyApply).WithInsert(PolicyApply),
		Select("s2", reldb.Eq("med", reldb.S("med1"))),
		Rename("r1", map[string]string{"pid": "patient", "dose": "dosage"}),
		Compose(
			Select("c1a", reldb.Cmp("pid", reldb.OpGe, reldb.I(2))).WithDelete(PolicyApply).WithInsert(PolicyApply),
			Project("c1b", []string{"pid", "dose"}, nil).WithDelete(PolicyApply).
				WithInsert(PolicyApply, map[string]reldb.Value{
					"med": reldb.S("med2"), "mech": reldb.S("mech-of-med2"),
				}),
		),
		Compose(
			Project("c2a", []string{"pid", "med", "dose"}, nil),
			Rename("c2b", map[string]string{"med": "medication"}),
		),
		Join("j1", formulary()),
		Compose(
			Join("j2a", formulary()),
			Project("j2b", []string{"pid", "med", "dose", "class"}, nil),
		),
	}
}

// TestGetPutLawQuick: put(s, get(s)) == s for random sources and every
// lens under test.
func TestGetPutLawQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genRecords(rng, rng.Intn(25))
		for _, l := range lensesUnderTest() {
			if err := CheckGetPut(l, src); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// editableCols are the view columns the random edit generator may touch:
// free attributes that no lens under test keys or selects on. Predicate
// and key columns are excluded because editing them is *not* an
// admissible view edit (selection lenses correctly reject rows escaping
// their own view) — that rejection path has its own directed tests.
var editableCols = map[string]bool{"dose": true, "dosage": true, "mech": true}

// randomViewEdit mutates a view in a policy-admissible way: field updates
// on free non-key columns always; row deletion only when the lens policy
// allows.
func randomViewEdit(rng *rand.Rand, view *reldb.Table, allowStructural bool) {
	rows := view.RowsCanonical()
	schema := view.Schema()
	nonKey := make([]string, 0)
	for _, c := range schema.Columns {
		if !schema.IsKeyColumn(c.Name) && c.Type == reldb.KindString && editableCols[c.Name] {
			nonKey = append(nonKey, c.Name)
		}
	}
	edits := 1 + rng.Intn(3)
	for e := 0; e < edits; e++ {
		if len(rows) == 0 {
			return
		}
		r := rows[rng.Intn(len(rows))]
		if !view.Has(view.KeyValues(r)) {
			continue
		}
		switch {
		case allowStructural && rng.Intn(4) == 0:
			_ = view.Delete(view.KeyValues(r))
		case len(nonKey) > 0:
			col := nonKey[rng.Intn(len(nonKey))]
			_ = view.Update(view.KeyValues(r), map[string]reldb.Value{
				col: reldb.S(fmt.Sprintf("edit%d", rng.Intn(100))),
			})
		}
	}
}

// TestPutGetLawQuick: get(put(s, v')) == v' for random sources and random
// admissible view edits.
func TestPutGetLawQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genRecords(rng, 3+rng.Intn(20))
		for i, l := range lensesUnderTest() {
			view, err := l.Get(src)
			if err != nil {
				t.Logf("seed %d lens %d: get: %v", seed, i, err)
				return false
			}
			spec := l.Spec()
			structural := spec.OnDelete == PolicyApply ||
				(spec.Op == OpCompose && spec.Inner[1].OnDelete == PolicyApply)
			randomViewEdit(rng, view, structural)
			if err := CheckPutGet(l, src, view); err != nil {
				t.Logf("seed %d lens %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPutIdempotent: put(put(s,v), v) == put(s,v). Re-applying the same
// view must be a fixed point — this is what guarantees the Fig. 5 cascade
// terminates.
func TestPutIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genRecords(rng, 3+rng.Intn(15))
		for _, l := range lensesUnderTest() {
			view, err := l.Get(src)
			if err != nil {
				return false
			}
			randomViewEdit(rng, view, false)
			s1, err := l.Put(src, view)
			if err != nil {
				return false
			}
			s2, err := l.Put(s1, view)
			if err != nil {
				return false
			}
			if !s1.Equal(s2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckWellBehavedOnMenagerie(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := genRecords(rng, 12)
	for i, l := range lensesUnderTest() {
		if err := CheckWellBehaved(l, src); err != nil {
			t.Errorf("lens %d: %v", i, err)
		}
	}
}

// brokenLens violates GetPut deliberately: put ignores the view.
type brokenLens struct{ *ProjectLens }

func (b brokenLens) Put(src, view *reldb.Table) (*reldb.Table, error) {
	out := src.Clone()
	// Corrupt a row so put(s, get(s)) != s.
	rows := out.RowsCanonical()
	if len(rows) > 0 {
		_ = out.Update(out.KeyValues(rows[0]), map[string]reldb.Value{"dose": reldb.S("corrupted")})
	}
	return out, nil
}

func TestLawCheckersCatchViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := genRecords(rng, 5)
	bad := brokenLens{Project("v", []string{"pid", "med", "dose", "mech"}, nil)}
	if err := CheckGetPut(bad, src); err == nil {
		t.Fatal("broken lens passed GetPut")
	}
}
