package bx

import (
	"fmt"

	"medshare/internal/reldb"
)

// Delta propagation: when a view edit is known as a row-level changeset
// (the common case in the Fig. 5 workflow — the contract event names the
// changed rows and the data channel ships a changeset), put does not need
// to rematerialize the whole source. PutDelta starts from a copy-on-write
// clone of the source and touches only the changed rows, so a one-row
// view edit costs O(changed rows), not O(table). Every lens implements
// it natively — PutDelta is part of the Lens interface — so no caller on
// the update path ever pays an O(table) put.
//
// The changeset must be the difference between the lens's current view of
// src (i.e. Get(src)) and the supplied view, as produced by
// reldb.Table.Diff. Changesets are immutable transfer objects: the
// returned table may share rows with them.

// PutDelta embeds view into src along the lens's delta path. An empty
// changeset short-circuits to a clone of src (the identity edit).
func PutDelta(l Lens, src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	if cs.Empty() {
		return src.Clone(), reldb.Changeset{}, nil
	}
	return l.PutDelta(src, view, cs)
}

// FullPut is the O(table) reference path: a whole-view Put followed by a
// full source diff to recover the changeset. It exists for the lens-law
// checkers and the delta-vs-full ablation tests, which cross-validate
// PutDelta against it; nothing on the update path calls it.
func FullPut(l Lens, src, view *reldb.Table) (*reldb.Table, reldb.Changeset, error) {
	newSrc, err := l.Put(src, view)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	srcCs, err := src.Diff(newSrc)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	return newSrc, srcCs, nil
}

// keyChanged reports whether two full rows differ in t's key columns.
func keyChanged(t *reldb.Table, a, b reldb.Row) bool {
	ka, kb := t.KeyValues(a), t.KeyValues(b)
	for i := range ka {
		if !ka[i].Equal(kb[i]) {
			return true
		}
	}
	return false
}

// sameKey reports whether the view key names equal the source key names
// in order — the condition under which a view key tuple addresses the
// source row directly.
func sameKey(srcKey, viewKey []string) bool {
	if len(srcKey) != len(viewKey) {
		return false
	}
	for i := range srcKey {
		if srcKey[i] != viewKey[i] {
			return false
		}
	}
	return true
}

// PutDelta implements Lens. When the view key coincides with the
// source key (the paper's D13/D31 shares) every changeset row addresses
// its source row directly through the primary index; re-keyed projections
// (D23/D32, view key ≠ source key) address the *group* of source rows
// sharing the view-key tuple through a secondary index on the source
// (built lazily once, maintained incrementally afterwards — see
// reldb.Table.RowsByCols). Both paths are O(changed source rows); nothing
// falls back to a full put or diff.
func (l *ProjectLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	srcSchema := src.Schema()
	wantView, err := l.ViewSchema(srcSchema)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	if !wantView.Equal(view.Schema()) {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: view schema does not match projection of source", ErrPutViolation)
	}

	srcIdxOfCol := make(map[string]int, len(srcSchema.Columns))
	for i, c := range srcSchema.Columns {
		srcIdxOfCol[c.Name] = i
	}
	colIdxInSrc := make([]int, len(l.Cols))
	for i, c := range l.Cols {
		colIdxInSrc[i] = srcIdxOfCol[c]
	}
	viewKeyIdx := wantView.KeyIndexes()

	rekeyed := !sameKey(srcSchema.Key, wantView.Key)
	if rekeyed {
		// Prime the view-key index on the source *before* cloning: the
		// clone then shares it, the updated source inherits it, and every
		// later cycle over this share finds it already built (one O(n)
		// scan for the share's lifetime, maintained incrementally).
		if err := src.EnsureIndex(wantView.Key); err != nil {
			return nil, reldb.Changeset{}, err
		}
	}

	out := src.Clone()
	var srcCs reldb.Changeset

	// lookup returns the source rows a view row addresses: exactly one via
	// the primary index when the keys coincide, the whole view-key group
	// via the secondary index otherwise.
	var lookup func(vr reldb.Row) ([]reldb.Row, error)
	if !rekeyed {
		var keyBuf []byte
		lookup = func(vr reldb.Row) ([]reldb.Row, error) {
			keyBuf = keyBuf[:0]
			for _, j := range viewKeyIdx {
				keyBuf = vr[j].AppendOrdered(keyBuf)
			}
			sr, ok := out.GetKeyBytes(keyBuf)
			if !ok {
				return nil, nil
			}
			return []reldb.Row{sr}, nil
		}
	} else {
		viewKeyCols := wantView.Key
		lookup = func(vr reldb.Row) ([]reldb.Row, error) {
			key := make(reldb.Row, len(viewKeyIdx))
			for i, j := range viewKeyIdx {
				key[i] = vr[j]
			}
			return out.RowsByCols(viewKeyCols, key)
		}
	}

	for _, u := range cs.Updated {
		group, err := lookup(u.After)
		if err != nil {
			return nil, reldb.Changeset{}, err
		}
		if len(group) == 0 {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta update on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		for _, sr := range group {
			updated := sr.Clone()
			for vi, si := range colIdxInSrc {
				updated[si] = u.After[vi]
			}
			// A re-keyed projection may project a *source* key column; a
			// view edit to it moves the source row to a new primary key —
			// a delete + insert both in the table and in the reported
			// changeset (an Updated entry is keyed by After and would not
			// replay). Upsert would leave the old row behind. When the
			// keys coincide the view's key is the source's, which an
			// Updated entry by construction never changes.
			if rekeyed && keyChanged(out, sr, updated) {
				if err := out.Delete(out.KeyValues(sr)); err != nil {
					return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
				}
				if err := out.InsertOwned(updated); err != nil {
					return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
				}
				srcCs.Deleted = append(srcCs.Deleted, sr)
				srcCs.Inserted = append(srcCs.Inserted, updated)
				continue
			}
			if err := out.UpsertOwned(updated); err != nil {
				return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
			}
			srcCs.Updated = append(srcCs.Updated, reldb.RowChange{Before: sr, After: updated})
		}
	}
	for _, vr := range cs.Deleted {
		if l.OnDelete != PolicyApply {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: view %s deleted row with key %v but lens forbids deletes", ErrPutViolation, l.ViewName, viewKeyOf(wantView, vr))
		}
		group, err := lookup(vr)
		if err != nil {
			return nil, reldb.Changeset{}, err
		}
		if len(group) == 0 {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta delete on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		for _, sr := range group {
			if err := out.Delete(out.KeyValues(sr)); err != nil {
				return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
			}
			srcCs.Deleted = append(srcCs.Deleted, sr)
		}
	}
	for _, vr := range cs.Inserted {
		if l.OnInsert != PolicyApply {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: view %s inserted row with key %v but lens forbids inserts", ErrPutViolation, l.ViewName, viewKeyOf(wantView, vr))
		}
		nr := l.newSourceRow(srcSchema, colIdxInSrc, vr)
		if err := out.InsertOwned(nr); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: inserting through view %s: %v", ErrPutViolation, l.ViewName, err)
		}
		srcCs.Inserted = append(srcCs.Inserted, nr)
	}
	return out, srcCs, nil
}

// PutDelta implements Lens: a selection view shares the source
// schema and key, so every changeset row addresses its source row
// directly.
func (l *SelectLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	srcSchema := src.Schema()
	if !srcSchema.Equal(view.Schema()) {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: selection view schema must equal source schema", ErrPutViolation)
	}
	mustSatisfy := func(r reldb.Row) error {
		ok, err := l.Pred.Eval(srcSchema, r)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: view %s row %v does not satisfy the selection predicate", ErrPutViolation, l.ViewName, viewKeyOf(srcSchema, r))
		}
		return nil
	}

	out := src.Clone()
	var srcCs reldb.Changeset
	for _, u := range cs.Updated {
		if err := mustSatisfy(u.After); err != nil {
			return nil, reldb.Changeset{}, err
		}
		before, ok := out.Get(viewKeyOf(srcSchema, u.After))
		if !ok {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta update on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		if err := out.UpsertOwned(u.After); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
		}
		srcCs.Updated = append(srcCs.Updated, reldb.RowChange{Before: before, After: u.After})
	}
	for _, vr := range cs.Deleted {
		if l.OnDelete != PolicyApply {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: view %s deleted row with key %v but lens forbids deletes", ErrPutViolation, l.ViewName, viewKeyOf(srcSchema, vr))
		}
		key := viewKeyOf(srcSchema, vr)
		before, ok := out.Get(key)
		if !ok {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta delete on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		if err := out.Delete(key); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
		}
		srcCs.Deleted = append(srcCs.Deleted, before)
	}
	for _, vr := range cs.Inserted {
		if l.OnInsert != PolicyApply {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: view %s inserted row with key %v but lens forbids inserts", ErrPutViolation, l.ViewName, viewKeyOf(srcSchema, vr))
		}
		if err := mustSatisfy(vr); err != nil {
			return nil, reldb.Changeset{}, err
		}
		if err := out.InsertOwned(vr); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: inserting through view %s: %v", ErrPutViolation, l.ViewName, err)
		}
		srcCs.Inserted = append(srcCs.Inserted, vr)
	}
	return out, srcCs, nil
}

// PutDelta implements Lens: renaming changes column names only, so
// the view changeset applies to the source verbatim.
func (l *RenameLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	want, err := l.ViewSchema(src.Schema())
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	if !want.Equal(view.Schema()) {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: view schema does not match renamed source", ErrPutViolation)
	}
	out := src.Clone()
	if err := out.Apply(cs); err != nil {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
	}
	return out, cs, nil
}

// PutDelta implements Lens: the outer delta is embedded into the
// intermediate view, and the changeset it induces there propagates to the
// inner lens — so a one-row edit stays one row through the whole chain.
// The intermediate view comes from the lens's memo when the source hash
// matches (the steady state of a cascade: every delta put refreshes the
// memo with the pair it just computed), eliminating the O(n)
// materializing get that used to be the last full-table step. The first
// call on a cold source pays one get plus one hash build; everything
// after is O(changed rows).
func (l *ComposeLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	// Force the hash state: O(n) once, maintained incrementally across
	// the copy-on-write clones every later cycle works on.
	srcHash := src.Hash()
	mid, ok := l.cachedMid(src)
	if !ok {
		var err error
		mid, err = l.Inner.Get(src)
		if err != nil {
			return nil, reldb.Changeset{}, err
		}
		l.rememberHash(srcHash, mid)
	}
	newMid, midCs, err := PutDelta(l.Outer, mid, view, cs)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	newSrc, srcCs, err := PutDelta(l.Inner, src, newMid, midCs)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	// Refresh the memo for the cascade's next hop: by PutGet on the inner
	// lens, Inner.Get(newSrc) = newMid, so the pair is exact.
	l.rememberHash(newSrc.Hash(), newMid)
	return newSrc, srcCs, nil
}
