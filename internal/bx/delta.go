package bx

import (
	"fmt"

	"medshare/internal/reldb"
)

// Delta propagation: when a view edit is known as a row-level changeset
// (the common case in the Fig. 5 workflow — the contract event names the
// changed rows and the data channel ships a changeset), put does not need
// to rematerialize the whole source. PutDelta starts from a copy-on-write
// clone of the source and touches only the changed rows, so a one-row
// view edit costs O(changed rows), not O(table).
//
// The changeset must be the difference between the lens's current view of
// src (i.e. Get(src)) and the supplied view, as produced by
// reldb.Table.Diff. Changesets are immutable transfer objects: the
// returned table may share rows with them.

// DeltaLens is implemented by lenses that can embed a view changeset
// without rematerializing the source.
type DeltaLens interface {
	Lens
	// PutDelta embeds the edited view into src given the changeset from
	// the current view to view. It returns the updated source and the
	// changeset applied to the source (for cascading the delta through
	// composed lenses and into overlapping shares). Like Put, it never
	// mutates src or view and enforces the same policies; the result
	// always equals Put(src, view) on a consistent changeset.
	PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error)
}

// PutDelta embeds view into src along the delta path when the lens
// supports it, falling back to a full Put plus diff otherwise. An empty
// changeset short-circuits to a clone of src. Callers that do not need
// the source changeset should use PutDeltaTable, which skips the
// fallback's O(n) diff.
func PutDelta(l Lens, src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	if cs.Empty() {
		return src.Clone(), reldb.Changeset{}, nil
	}
	if dl, ok := l.(DeltaLens); ok {
		return dl.PutDelta(src, view, cs)
	}
	return putDeltaFallback(l, src, view)
}

// PutDeltaTable is PutDelta for callers that only need the updated
// source table: lenses (or lens configurations) without a native delta
// path run a plain full put, never the fallback's full-table diff.
func PutDeltaTable(l Lens, src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, error) {
	if cs.Empty() {
		return src.Clone(), nil
	}
	if pl, ok := l.(*ProjectLens); ok && !pl.deltaDirect(src) {
		return pl.Put(src, view)
	}
	if dl, ok := l.(DeltaLens); ok {
		newSrc, _, err := dl.PutDelta(src, view, cs)
		return newSrc, err
	}
	return l.Put(src, view)
}

// deltaDirect reports whether the projection can address source rows by
// view key (the O(changed rows) path) for this source.
func (l *ProjectLens) deltaDirect(src *reldb.Table) bool {
	wantView, err := l.ViewSchema(src.Schema())
	return err == nil && sameKey(src.Schema().Key, wantView.Key)
}

// putDeltaFallback is the O(table) path for lenses without native delta
// support (e.g. JoinLens): full put, then diff to recover the source
// changeset.
func putDeltaFallback(l Lens, src, view *reldb.Table) (*reldb.Table, reldb.Changeset, error) {
	newSrc, err := l.Put(src, view)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	srcCs, err := src.Diff(newSrc)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	return newSrc, srcCs, nil
}

// sameKey reports whether the view key names equal the source key names
// in order — the condition under which a view key tuple addresses the
// source row directly.
func sameKey(srcKey, viewKey []string) bool {
	if len(srcKey) != len(viewKey) {
		return false
	}
	for i := range srcKey {
		if srcKey[i] != viewKey[i] {
			return false
		}
	}
	return true
}

// PutDelta implements DeltaLens. The O(changed rows) path requires the
// view key to coincide with the source key (the paper's D13/D31 shares);
// projections re-keyed on other columns (D23/D32) fall back to the full
// put, which is still cheap under copy-on-write tables.
func (l *ProjectLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	srcSchema := src.Schema()
	wantView, err := l.ViewSchema(srcSchema)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	if !wantView.Equal(view.Schema()) {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: view schema does not match projection of source", ErrPutViolation)
	}
	if !sameKey(srcSchema.Key, wantView.Key) {
		return putDeltaFallback(l, src, view)
	}

	srcIdxOfCol := make(map[string]int, len(srcSchema.Columns))
	for i, c := range srcSchema.Columns {
		srcIdxOfCol[c.Name] = i
	}
	colIdxInSrc := make([]int, len(l.Cols))
	for i, c := range l.Cols {
		colIdxInSrc[i] = srcIdxOfCol[c]
	}
	viewKeyIdx := wantView.KeyIndexes()

	out := src.Clone()
	var srcCs reldb.Changeset
	var keyBuf []byte
	lookup := func(vr reldb.Row) (reldb.Row, bool) {
		keyBuf = keyBuf[:0]
		for _, j := range viewKeyIdx {
			keyBuf = vr[j].AppendCanonical(keyBuf)
		}
		return out.GetKeyBytes(keyBuf)
	}

	for _, u := range cs.Updated {
		sr, ok := lookup(u.After)
		if !ok {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta update on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		updated := sr.Clone()
		for vi, si := range colIdxInSrc {
			updated[si] = u.After[vi]
		}
		if err := out.UpsertOwned(updated); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
		}
		srcCs.Updated = append(srcCs.Updated, reldb.RowChange{Before: sr, After: updated})
	}
	for _, vr := range cs.Deleted {
		if l.OnDelete != PolicyApply {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: view %s deleted row with key %v but lens forbids deletes", ErrPutViolation, l.ViewName, viewKeyOf(wantView, vr))
		}
		sr, ok := lookup(vr)
		if !ok {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta delete on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		if err := out.Delete(viewKeyOf(wantView, vr)); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
		}
		srcCs.Deleted = append(srcCs.Deleted, sr)
	}
	for _, vr := range cs.Inserted {
		if l.OnInsert != PolicyApply {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: view %s inserted row with key %v but lens forbids inserts", ErrPutViolation, l.ViewName, viewKeyOf(wantView, vr))
		}
		nr := l.newSourceRow(srcSchema, colIdxInSrc, vr)
		if err := out.InsertOwned(nr); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: inserting through view %s: %v", ErrPutViolation, l.ViewName, err)
		}
		srcCs.Inserted = append(srcCs.Inserted, nr)
	}
	return out, srcCs, nil
}

// PutDelta implements DeltaLens: a selection view shares the source
// schema and key, so every changeset row addresses its source row
// directly.
func (l *SelectLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	srcSchema := src.Schema()
	if !srcSchema.Equal(view.Schema()) {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: selection view schema must equal source schema", ErrPutViolation)
	}
	mustSatisfy := func(r reldb.Row) error {
		ok, err := l.Pred.Eval(srcSchema, r)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: view %s row %v does not satisfy the selection predicate", ErrPutViolation, l.ViewName, viewKeyOf(srcSchema, r))
		}
		return nil
	}

	out := src.Clone()
	var srcCs reldb.Changeset
	for _, u := range cs.Updated {
		if err := mustSatisfy(u.After); err != nil {
			return nil, reldb.Changeset{}, err
		}
		before, ok := out.Get(viewKeyOf(srcSchema, u.After))
		if !ok {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta update on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		if err := out.UpsertOwned(u.After); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
		}
		srcCs.Updated = append(srcCs.Updated, reldb.RowChange{Before: before, After: u.After})
	}
	for _, vr := range cs.Deleted {
		if l.OnDelete != PolicyApply {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: view %s deleted row with key %v but lens forbids deletes", ErrPutViolation, l.ViewName, viewKeyOf(srcSchema, vr))
		}
		key := viewKeyOf(srcSchema, vr)
		before, ok := out.Get(key)
		if !ok {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta delete on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		if err := out.Delete(key); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
		}
		srcCs.Deleted = append(srcCs.Deleted, before)
	}
	for _, vr := range cs.Inserted {
		if l.OnInsert != PolicyApply {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: view %s inserted row with key %v but lens forbids inserts", ErrPutViolation, l.ViewName, viewKeyOf(srcSchema, vr))
		}
		if err := mustSatisfy(vr); err != nil {
			return nil, reldb.Changeset{}, err
		}
		if err := out.InsertOwned(vr); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: inserting through view %s: %v", ErrPutViolation, l.ViewName, err)
		}
		srcCs.Inserted = append(srcCs.Inserted, vr)
	}
	return out, srcCs, nil
}

// PutDelta implements DeltaLens: renaming changes column names only, so
// the view changeset applies to the source verbatim.
func (l *RenameLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	want, err := l.ViewSchema(src.Schema())
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	if !want.Equal(view.Schema()) {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: view schema does not match renamed source", ErrPutViolation)
	}
	out := src.Clone()
	if err := out.Apply(cs); err != nil {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
	}
	return out, cs, nil
}

// PutDelta implements DeltaLens: the outer delta is embedded into the
// intermediate view, and the changeset it induces there propagates to the
// inner lens — so a one-row edit stays one row through the whole chain
// (one O(source) get to materialize the intermediate view, no diffs).
func (l *ComposeLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	mid, err := l.Inner.Get(src)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	newMid, midCs, err := PutDelta(l.Outer, mid, view, cs)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	return PutDelta(l.Inner, src, newMid, midCs)
}
