package bx

import (
	"errors"
	"math/rand"
	"testing"

	"medshare/internal/reldb"
)

func TestSpecRoundTripPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := genRecords(rng, 10)
	for i, l := range lensesUnderTest() {
		raw, err := l.Spec().Marshal()
		if err != nil {
			t.Fatalf("lens %d: marshal: %v", i, err)
		}
		spec, err := ParseSpec(raw)
		if err != nil {
			t.Fatalf("lens %d: parse: %v", i, err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("lens %d: build: %v", i, err)
		}
		v1, err1 := l.Get(src)
		v2, err2 := back.Get(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("lens %d: get error divergence: %v vs %v", i, err1, err2)
		}
		if err1 == nil && v1.Hash() != v2.Hash() {
			t.Fatalf("lens %d: rebuilt lens produces a different view", i)
		}
		// Put semantics preserved too: identical edit, identical result.
		if err1 == nil && v1.Len() > 0 {
			rows := v1.RowsCanonical()
			key := v1.KeyValues(rows[0])
			for _, col := range []string{"dose", "dosage", "mech"} {
				if v1.Schema().HasColumn(col) {
					_ = v1.Update(key, map[string]reldb.Value{col: reldb.S("EDIT")})
					_ = v2.Update(key, map[string]reldb.Value{col: reldb.S("EDIT")})
					break
				}
			}
			s1, e1 := l.Put(src, v1)
			s2, e2 := back.Put(src, v2)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("lens %d: put error divergence: %v vs %v", i, e1, e2)
			}
			if e1 == nil && s1.Hash() != s2.Hash() {
				t.Fatalf("lens %d: rebuilt lens puts differently", i)
			}
		}
	}
}

func TestSpecBuildRejectsMalformed(t *testing.T) {
	bad := []Spec{
		{Op: "alien"},
		{Op: OpProject},               // no columns
		{Op: OpSelect, ViewName: "v"}, // no predicate
		{Op: OpRename, ViewName: "v"}, // no mapping
		{Op: OpCompose, Inner: []Spec{{Op: OpProject, Cols: []string{"a"}}}}, // wrong arity
		{Op: OpSelect, Pred: []byte(`{"op":"alien"}`)},
	}
	for i, s := range bad {
		if _, err := s.Build(); !errors.Is(err, ErrSpecInvalid) {
			t.Errorf("spec %d: want ErrSpecInvalid, got %v", i, err)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	if _, err := ParseSpec([]byte("{{")); !errors.Is(err, ErrSpecInvalid) {
		t.Fatalf("want ErrSpecInvalid, got %v", err)
	}
}

func TestFinalViewName(t *testing.T) {
	l := Compose(
		Select("mid", reldb.True()),
		Project("final", []string{"pid"}, nil),
	)
	if got := l.Spec().FinalViewName(); got != "final" {
		t.Fatalf("FinalViewName = %q", got)
	}
	if got := Project("only", []string{"pid"}, nil).Spec().FinalViewName(); got != "only" {
		t.Fatalf("FinalViewName = %q", got)
	}
}

func TestOverlapsProjections(t *testing.T) {
	s := recordsSchema()
	// D31-style: pid, med, dose. D32-style: med, mech.
	a := Project("d31", []string{"pid", "med", "dose"}, nil)
	b := Project("d32", []string{"med", "mech"}, []string{"med"})

	// A mechanism-only change through b does not affect a.
	hit, err := Overlaps(s, b, []string{"mech"}, a)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("mech change should not overlap d31")
	}
	// A medication change through b does affect a.
	hit, err = Overlaps(s, b, []string{"med"}, a)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("med change should overlap d31")
	}
	// Unknown changed columns (nil) are conservative: all written.
	hit, err = Overlaps(s, b, nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("nil changed cols should be conservative")
	}
}

func TestOverlapsDisjointViews(t *testing.T) {
	s := recordsSchema()
	a := Project("a", []string{"pid", "dose"}, nil)
	b := Project("b", []string{"med", "mech"}, []string{"med"})
	hit, err := Overlaps(s, a, []string{"dose"}, b)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("disjoint column sets should not overlap")
	}
}

func TestOverlapsThroughRename(t *testing.T) {
	s := recordsSchema()
	a := Compose(
		Project("a1", []string{"pid", "dose"}, nil),
		Rename("a2", map[string]string{"dose": "dosage"}),
	)
	b := Project("b", []string{"pid", "dose"}, nil)
	// A "dosage" change in a's view is a "dose" change at the source.
	hit, err := Overlaps(s, a, []string{"dosage"}, b)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("rename must map changed view columns back to source columns")
	}
}

func TestSharedSourceColumns(t *testing.T) {
	s := recordsSchema()
	a := Project("a", []string{"pid", "med", "dose"}, nil)
	b := Project("b", []string{"med", "mech"}, []string{"med"})
	got, err := SharedSourceColumns(s, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "med" {
		t.Fatalf("shared = %v", got)
	}
}

func TestSourceColumnsWrittenSubset(t *testing.T) {
	l := Project("v", []string{"pid", "med", "dose"}, nil)
	got, err := l.SourceColumnsWritten(recordsSchema(), []string{"dose"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "dose" {
		t.Fatalf("written = %v", got)
	}
	// Columns not in the lens are ignored.
	got, err = l.SourceColumnsWritten(recordsSchema(), []string{"mech"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("written = %v", got)
	}
}
