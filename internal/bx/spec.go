package bx

import (
	"encoding/json"
	"fmt"

	"medshare/internal/reldb"
)

// Lens spec operation names.
const (
	OpProject = "project"
	OpSelect  = "select"
	OpRename  = "rename"
	OpCompose = "compose"
	OpJoin    = "join"
)

// Spec is the serializable description of a lens. Specs are what the
// sharing peers agree on and register on-chain (Section III-C2): any
// authorized peer can rebuild the exact lens from the metadata.
type Spec struct {
	Op       string                 `json:"op"`
	ViewName string                 `json:"view,omitempty"`
	Cols     []string               `json:"cols,omitempty"`
	Key      []string               `json:"key,omitempty"`
	OnDelete string                 `json:"onDelete,omitempty"`
	OnInsert string                 `json:"onInsert,omitempty"`
	Defaults map[string]reldb.Value `json:"defaults,omitempty"`
	Pred     json.RawMessage        `json:"pred,omitempty"`
	Mapping  map[string]string      `json:"mapping,omitempty"`
	Inner    []Spec                 `json:"inner,omitempty"`
	// Ref is the embedded reference table of a join lens.
	Ref json.RawMessage `json:"ref,omitempty"`
}

// Marshal serializes the spec to JSON.
func (s Spec) Marshal() ([]byte, error) { return json.Marshal(s) }

// ParseSpec decodes a spec serialized by Spec.Marshal.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrSpecInvalid, err)
	}
	return s, nil
}

// Build reconstructs the lens described by the spec.
func (s Spec) Build() (Lens, error) {
	switch s.Op {
	case OpProject:
		if len(s.Cols) == 0 {
			return nil, fmt.Errorf("%w: project lens with no columns", ErrSpecInvalid)
		}
		l := Project(s.ViewName, s.Cols, s.Key)
		l.OnDelete = defaultPolicy(s.OnDelete)
		l.OnInsert = defaultPolicy(s.OnInsert)
		l.Defaults = cloneDefaults(s.Defaults)
		return l, nil
	case OpSelect:
		if len(s.Pred) == 0 {
			return nil, fmt.Errorf("%w: select lens with no predicate", ErrSpecInvalid)
		}
		pred, err := reldb.UnmarshalPredicate(s.Pred)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpecInvalid, err)
		}
		l := Select(s.ViewName, pred)
		l.OnDelete = defaultPolicy(s.OnDelete)
		l.OnInsert = defaultPolicy(s.OnInsert)
		return l, nil
	case OpRename:
		if len(s.Mapping) == 0 {
			return nil, fmt.Errorf("%w: rename lens with no mapping", ErrSpecInvalid)
		}
		return Rename(s.ViewName, s.Mapping), nil
	case OpJoin:
		if len(s.Ref) == 0 {
			return nil, fmt.Errorf("%w: join lens with no reference table", ErrSpecInvalid)
		}
		ref, err := reldb.UnmarshalTable(s.Ref)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpecInvalid, err)
		}
		return Join(s.ViewName, ref), nil
	case OpCompose:
		if len(s.Inner) != 2 {
			return nil, fmt.Errorf("%w: compose lens wants 2 inner specs, got %d", ErrSpecInvalid, len(s.Inner))
		}
		inner, err := s.Inner[0].Build()
		if err != nil {
			return nil, err
		}
		outer, err := s.Inner[1].Build()
		if err != nil {
			return nil, err
		}
		return &ComposeLens{Inner: inner, Outer: outer}, nil
	default:
		return nil, fmt.Errorf("%w: unknown lens op %q", ErrSpecInvalid, s.Op)
	}
}

// ViewName returns the name of the final view the spec produces.
func (s Spec) FinalViewName() string {
	if s.Op == OpCompose && len(s.Inner) == 2 {
		return s.Inner[1].FinalViewName()
	}
	return s.ViewName
}

func defaultPolicy(p string) string {
	if p == "" {
		return PolicyForbid
	}
	return p
}
