package bx

import (
	"sync/atomic"

	"medshare/internal/reldb"
)

// ComposeLens chains two lenses: the view of Outer is computed from the
// view of Inner. Composition of well-behaved lenses is well behaved:
//
//	get(s)    = Outer.get(Inner.get(s))
//	put(s, v) = Inner.put(s, Outer.put(Inner.get(s), v))
//
// This is how a doctor shares a predicate-restricted projection (e.g.
// "dosage columns, but only rows for patient 188"): Compose(Select(...),
// Project(...)).
type ComposeLens struct {
	// Inner transforms the source into the intermediate view.
	Inner Lens
	// Outer transforms the intermediate view into the final view.
	Outer Lens

	// memo caches the two most recent (source hash → intermediate view)
	// pairs so a delta cascade does not rematerialize Inner.Get(src) —
	// the last O(n) step of an otherwise O(changed rows) PutDelta chain.
	// Two entries cover both access patterns: the cascade (the updated
	// source of one put is the source of the next) and repeated puts over
	// an unchanged source (retries, several counterparties of one share).
	// Keyed by the source's content hash (insertion-order and name
	// independent), so it hits across the O(1) snapshot clones the
	// sharing layer takes, and a stale entry can never be confused for
	// the current source. Cached tables are treated as immutable: lens
	// Get/Put never mutate their arguments. Purely an optimization —
	// semantics are unchanged because memo validity follows from the
	// lens laws (PutGet: Inner.Get(Inner.Put(src, mid')) = mid').
	memo [2]atomic.Pointer[composeMemo]
}

// composeMemo is one (source hash, intermediate view) pair.
type composeMemo struct {
	srcHash [32]byte
	mid     *reldb.Table
}

// cachedMid returns the memoized intermediate view when an entry matches
// src's already-built hash state. It never forces a hash build.
func (l *ComposeLens) cachedMid(src *reldb.Table) (*reldb.Table, bool) {
	h, ok := src.CachedHash()
	if !ok {
		return nil, false
	}
	for i := range l.memo {
		if m := l.memo[i].Load(); m != nil && m.srcHash == h {
			return m.mid, true
		}
	}
	return nil, false
}

// remember stores the (src, mid) pair when src's hash state is built —
// storing for a cold table would force an O(n) hash the caller never
// asked for. The previous newest entry is demoted to the second slot.
func (l *ComposeLens) remember(src, mid *reldb.Table) {
	h, ok := src.CachedHash()
	if !ok {
		return
	}
	l.rememberHash(h, mid)
}

func (l *ComposeLens) rememberHash(h [32]byte, mid *reldb.Table) {
	if cur := l.memo[0].Load(); cur != nil && cur.srcHash != h {
		l.memo[1].Store(cur)
	}
	l.memo[0].Store(&composeMemo{srcHash: h, mid: mid})
}

// Compose chains lenses left-to-right: the first lens applies to the
// source, the last produces the final view.
func Compose(first Lens, rest ...Lens) Lens {
	out := first
	for _, l := range rest {
		out = &ComposeLens{Inner: out, Outer: l}
	}
	return out
}

// ViewSchema implements Lens.
func (l *ComposeLens) ViewSchema(src reldb.Schema) (reldb.Schema, error) {
	mid, err := l.Inner.ViewSchema(src)
	if err != nil {
		return reldb.Schema{}, err
	}
	return l.Outer.ViewSchema(mid)
}

// Get implements Lens.
func (l *ComposeLens) Get(src *reldb.Table) (*reldb.Table, error) {
	if mid, ok := l.cachedMid(src); ok {
		return l.Outer.Get(mid)
	}
	mid, err := l.Inner.Get(src)
	if err != nil {
		return nil, err
	}
	l.remember(src, mid)
	return l.Outer.Get(mid)
}

// Put implements Lens.
func (l *ComposeLens) Put(src, view *reldb.Table) (*reldb.Table, error) {
	mid, ok := l.cachedMid(src)
	if !ok {
		var err error
		mid, err = l.Inner.Get(src)
		if err != nil {
			return nil, err
		}
		l.remember(src, mid)
	}
	newMid, err := l.Outer.Put(mid, view)
	if err != nil {
		return nil, err
	}
	return l.Inner.Put(src, newMid)
}

// Spec implements Lens.
func (l *ComposeLens) Spec() Spec {
	return Spec{Op: OpCompose, Inner: []Spec{l.Inner.Spec(), l.Outer.Spec()}}
}

// SourceColumnsRead implements Lens.
func (l *ComposeLens) SourceColumnsRead(src reldb.Schema) ([]string, error) {
	// Conservative: the composed view depends on whatever the inner lens
	// reads that the outer lens retains; we approximate by mapping the
	// outer lens's reads through the inner lens.
	mid, err := l.Inner.ViewSchema(src)
	if err != nil {
		return nil, err
	}
	outerReads, err := l.Outer.SourceColumnsRead(mid)
	if err != nil {
		return nil, err
	}
	// Columns of the intermediate view read by the outer lens correspond
	// to source columns written by the inner lens for those view columns.
	return l.Inner.SourceColumnsWritten(src, outerReads)
}

// SourceColumnsWritten implements Lens.
func (l *ComposeLens) SourceColumnsWritten(src reldb.Schema, viewCols []string) ([]string, error) {
	mid, err := l.Inner.ViewSchema(src)
	if err != nil {
		return nil, err
	}
	midCols, err := l.Outer.SourceColumnsWritten(mid, viewCols)
	if err != nil {
		return nil, err
	}
	return l.Inner.SourceColumnsWritten(src, midCols)
}
