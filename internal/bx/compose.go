package bx

import (
	"medshare/internal/reldb"
)

// ComposeLens chains two lenses: the view of Outer is computed from the
// view of Inner. Composition of well-behaved lenses is well behaved:
//
//	get(s)    = Outer.get(Inner.get(s))
//	put(s, v) = Inner.put(s, Outer.put(Inner.get(s), v))
//
// This is how a doctor shares a predicate-restricted projection (e.g.
// "dosage columns, but only rows for patient 188"): Compose(Select(...),
// Project(...)).
type ComposeLens struct {
	// Inner transforms the source into the intermediate view.
	Inner Lens
	// Outer transforms the intermediate view into the final view.
	Outer Lens
}

// Compose chains lenses left-to-right: the first lens applies to the
// source, the last produces the final view.
func Compose(first Lens, rest ...Lens) Lens {
	out := first
	for _, l := range rest {
		out = &ComposeLens{Inner: out, Outer: l}
	}
	return out
}

// ViewSchema implements Lens.
func (l *ComposeLens) ViewSchema(src reldb.Schema) (reldb.Schema, error) {
	mid, err := l.Inner.ViewSchema(src)
	if err != nil {
		return reldb.Schema{}, err
	}
	return l.Outer.ViewSchema(mid)
}

// Get implements Lens.
func (l *ComposeLens) Get(src *reldb.Table) (*reldb.Table, error) {
	mid, err := l.Inner.Get(src)
	if err != nil {
		return nil, err
	}
	return l.Outer.Get(mid)
}

// Put implements Lens.
func (l *ComposeLens) Put(src, view *reldb.Table) (*reldb.Table, error) {
	mid, err := l.Inner.Get(src)
	if err != nil {
		return nil, err
	}
	newMid, err := l.Outer.Put(mid, view)
	if err != nil {
		return nil, err
	}
	return l.Inner.Put(src, newMid)
}

// Spec implements Lens.
func (l *ComposeLens) Spec() Spec {
	return Spec{Op: OpCompose, Inner: []Spec{l.Inner.Spec(), l.Outer.Spec()}}
}

// SourceColumnsRead implements Lens.
func (l *ComposeLens) SourceColumnsRead(src reldb.Schema) ([]string, error) {
	// Conservative: the composed view depends on whatever the inner lens
	// reads that the outer lens retains; we approximate by mapping the
	// outer lens's reads through the inner lens.
	mid, err := l.Inner.ViewSchema(src)
	if err != nil {
		return nil, err
	}
	outerReads, err := l.Outer.SourceColumnsRead(mid)
	if err != nil {
		return nil, err
	}
	// Columns of the intermediate view read by the outer lens correspond
	// to source columns written by the inner lens for those view columns.
	return l.Inner.SourceColumnsWritten(src, outerReads)
}

// SourceColumnsWritten implements Lens.
func (l *ComposeLens) SourceColumnsWritten(src reldb.Schema, viewCols []string) ([]string, error) {
	mid, err := l.Inner.ViewSchema(src)
	if err != nil {
		return nil, err
	}
	midCols, err := l.Outer.SourceColumnsWritten(mid, viewCols)
	if err != nil {
		return nil, err
	}
	return l.Inner.SourceColumnsWritten(src, midCols)
}
