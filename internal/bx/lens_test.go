package bx

import (
	"fmt"
	"math/rand"
	"testing"

	"medshare/internal/reldb"
)

// recordsSchema mirrors the paper's full medical record shape, slimmed to
// four columns for focused lens tests.
func recordsSchema() reldb.Schema {
	return reldb.Schema{
		Name: "records",
		Columns: []reldb.Column{
			{Name: "pid", Type: reldb.KindInt},
			{Name: "med", Type: reldb.KindString},
			{Name: "dose", Type: reldb.KindString},
			{Name: "mech", Type: reldb.KindString},
		},
		Key: []string{"pid"},
	}
}

// genRecords builds a random records table in which mech is a function of
// med (the Fig. 1 functional dependency a1 -> a5).
func genRecords(rng *rand.Rand, n int) *reldb.Table {
	t := reldb.MustNewTable(recordsSchema())
	for i := 0; i < n; i++ {
		med := fmt.Sprintf("med%d", rng.Intn(6))
		t.MustInsert(reldb.Row{
			reldb.I(int64(i)),
			reldb.S(med),
			reldb.S(fmt.Sprintf("dose%d", rng.Intn(10))),
			reldb.S("mech-of-" + med),
		})
	}
	return t
}

func mustGet(t *testing.T, l Lens, src *reldb.Table) *reldb.Table {
	t.Helper()
	v, err := l.Get(src)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	return v
}

func TestProjectGetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := genRecords(rng, 10)
	l := Project("v", []string{"pid", "dose"}, nil)
	v := mustGet(t, l, src)
	if v.Len() != 10 {
		t.Fatalf("rows = %d", v.Len())
	}
	if got := v.Schema().ColumnNames(); len(got) != 2 || got[0] != "pid" || got[1] != "dose" {
		t.Fatalf("columns = %v", got)
	}
}

func TestProjectGetNonSourceKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := genRecords(rng, 20)
	l := Project("v", []string{"med", "mech"}, []string{"med"})
	v := mustGet(t, l, src)
	// Dedup by medication: row count equals distinct medications.
	meds := make(map[string]bool)
	for _, r := range src.Rows() {
		s, _ := r[1].Str()
		meds[s] = true
	}
	if v.Len() != len(meds) {
		t.Fatalf("rows = %d, want %d distinct medications", v.Len(), len(meds))
	}
}

func TestProjectPutFieldUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := genRecords(rng, 8)
	l := Project("v", []string{"pid", "dose"}, nil)
	v := mustGet(t, l, src)
	if err := v.Update(reldb.Row{reldb.I(3)}, map[string]reldb.Value{"dose": reldb.S("NEW")}); err != nil {
		t.Fatal(err)
	}
	newSrc, err := l.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := newSrc.Get(reldb.Row{reldb.I(3)})
	if s, _ := got[2].Str(); s != "NEW" {
		t.Fatalf("dose = %q", s)
	}
	// Hidden columns untouched.
	orig, _ := src.Get(reldb.Row{reldb.I(3)})
	if !got[1].Equal(orig[1]) || !got[3].Equal(orig[3]) {
		t.Fatal("hidden columns modified by put")
	}
}

func TestProjectPutFanOut(t *testing.T) {
	// A med-keyed view row update must reach every source row with that
	// medication (the D32 -> D3 direction of Fig. 5).
	src := reldb.MustNewTable(recordsSchema())
	src.MustInsert(reldb.Row{reldb.I(1), reldb.S("ibu"), reldb.S("d1"), reldb.S("m-old")})
	src.MustInsert(reldb.Row{reldb.I(2), reldb.S("ibu"), reldb.S("d2"), reldb.S("m-old")})
	src.MustInsert(reldb.Row{reldb.I(3), reldb.S("wel"), reldb.S("d3"), reldb.S("w")})
	l := Project("v", []string{"med", "mech"}, []string{"med"})
	v := mustGet(t, l, src)
	if err := v.Update(reldb.Row{reldb.S("ibu")}, map[string]reldb.Value{"mech": reldb.S("m-new")}); err != nil {
		t.Fatal(err)
	}
	newSrc, err := l.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, pid := range []int64{1, 2} {
		r, _ := newSrc.Get(reldb.Row{reldb.I(pid)})
		if s, _ := r[3].Str(); s != "m-new" {
			t.Fatalf("pid %d mech = %q", pid, s)
		}
	}
	r, _ := newSrc.Get(reldb.Row{reldb.I(3)})
	if s, _ := r[3].Str(); s != "w" {
		t.Fatal("unrelated medication touched")
	}
}

func TestProjectPutDeleteForbidden(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := genRecords(rng, 5)
	l := Project("v", []string{"pid", "dose"}, nil) // forbid policies
	v := mustGet(t, l, src)
	if err := v.Delete(reldb.Row{reldb.I(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Put(src, v); err == nil {
		t.Fatal("delete through forbid lens should fail")
	}
}

func TestProjectPutDeleteApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := genRecords(rng, 5)
	l := Project("v", []string{"pid", "dose"}, nil).WithDelete(PolicyApply)
	v := mustGet(t, l, src)
	if err := v.Delete(reldb.Row{reldb.I(0)}); err != nil {
		t.Fatal(err)
	}
	newSrc, err := l.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	if newSrc.Has(reldb.Row{reldb.I(0)}) {
		t.Fatal("source row not deleted")
	}
	if newSrc.Len() != 4 {
		t.Fatalf("len = %d", newSrc.Len())
	}
}

func TestProjectPutInsertForbidden(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := genRecords(rng, 3)
	l := Project("v", []string{"pid", "dose"}, nil)
	v := mustGet(t, l, src)
	if err := v.Insert(reldb.Row{reldb.I(99), reldb.S("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Put(src, v); err == nil {
		t.Fatal("insert through forbid lens should fail")
	}
}

func TestProjectPutInsertWithDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := genRecords(rng, 3)
	l := Project("v", []string{"pid", "dose"}, nil).
		WithInsert(PolicyApply, map[string]reldb.Value{
			"med":  reldb.S("unknown-med"),
			"mech": reldb.S("unknown-mech"),
		})
	v := mustGet(t, l, src)
	if err := v.Insert(reldb.Row{reldb.I(99), reldb.S("new-dose")}); err != nil {
		t.Fatal(err)
	}
	newSrc, err := l.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := newSrc.Get(reldb.Row{reldb.I(99)})
	if !ok {
		t.Fatal("inserted row missing from source")
	}
	if s, _ := r[1].Str(); s != "unknown-med" {
		t.Fatalf("default med = %q", s)
	}
	if s, _ := r[2].Str(); s != "new-dose" {
		t.Fatalf("dose = %q", s)
	}
}

func TestProjectPutInsertMissingDefaultFails(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := genRecords(rng, 3)
	// med has no default and is not nullable: insert must fail cleanly.
	l := Project("v", []string{"pid", "dose"}, nil).
		WithInsert(PolicyApply, map[string]reldb.Value{"mech": reldb.S("m")})
	v := mustGet(t, l, src)
	if err := v.Insert(reldb.Row{reldb.I(99), reldb.S("d")}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Put(src, v); err == nil {
		t.Fatal("insert without required default should fail")
	}
}

func TestProjectPutRejectsWrongSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := genRecords(rng, 3)
	l := Project("v", []string{"pid", "dose"}, nil)
	wrong := reldb.MustNewTable(reldb.Schema{
		Name:    "v",
		Columns: []reldb.Column{{Name: "pid", Type: reldb.KindInt}},
		Key:     []string{"pid"},
	})
	if _, err := l.Put(src, wrong); err == nil {
		t.Fatal("schema mismatch should fail")
	}
}

func TestProjectPurity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := genRecords(rng, 6)
	before := src.Hash()
	l := Project("v", []string{"pid", "dose"}, nil)
	v := mustGet(t, l, src)
	vBefore := v.Hash()
	if err := v.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"dose": reldb.S("z")}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Put(src, v); err != nil {
		t.Fatal(err)
	}
	if src.Hash() != before {
		t.Fatal("put mutated the source argument")
	}
	v2 := mustGet(t, l, src)
	if v2.Hash() != vBefore {
		t.Fatal("get result changed without source change")
	}
}
