package bx

import (
	"fmt"
	"testing"

	"medshare/internal/reldb"
)

// This file is the "key-aligned vs positional put" ablation called out in
// DESIGN.md §5: it demonstrates *why* the projection lens aligns rows by
// key. A strawman positional put — write the i-th view row's projected
// columns into the i-th source row — looks plausible, is what a naive
// implementation would do, and silently corrupts data the moment the two
// sides enumerate rows in different orders (which JSON transport, set
// semantics, or a remote peer's insertion history all cause).

// positionalPut is the strawman: zip source and view rows by position.
func positionalPut(cols []string, src, view *reldb.Table) (*reldb.Table, error) {
	srcSchema := src.Schema()
	out, err := reldb.NewTable(srcSchema)
	if err != nil {
		return nil, err
	}
	srcRows := src.Rows()   // insertion order
	viewRows := view.Rows() // insertion order — NOT key order
	colIdx := make([]int, len(cols))
	viewSchema := view.Schema()
	for i, c := range cols {
		colIdx[i] = viewSchema.ColumnIndex(c)
	}
	for i, sr := range srcRows {
		updated := sr.Clone()
		if i < len(viewRows) {
			for j, c := range cols {
				if srcSchema.IsKeyColumn(c) {
					continue // the naive put keeps keys, zips the rest
				}
				updated[srcSchema.ColumnIndex(c)] = viewRows[i][colIdx[j]]
			}
		}
		if err := out.Insert(updated); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TestPositionalPutCorruptsUnderReorder: the same logical view content,
// delivered in a different row order, makes the positional put scramble
// patients' data — while the key-aligned lens is order-insensitive.
func TestPositionalPutCorruptsUnderReorder(t *testing.T) {
	src := reldb.MustNewTable(recordsSchema())
	src.MustInsert(reldb.Row{reldb.I(1), reldb.S("medA"), reldb.S("dose-1"), reldb.S("m")})
	src.MustInsert(reldb.Row{reldb.I(2), reldb.S("medB"), reldb.S("dose-2"), reldb.S("m")})

	cols := []string{"pid", "dose"}
	lens := Project("v", cols, nil)
	view := mustGet(t, lens, src)

	// The counterparty edits row 1's dose and ships the view back — but
	// its table enumerates rows in the opposite order (e.g. it inserted
	// them in a different sequence). Same logical content.
	reordered := reldb.MustNewTable(view.Schema())
	reordered.MustInsert(reldb.Row{reldb.I(2), reldb.S("dose-2")})
	reordered.MustInsert(reldb.Row{reldb.I(1), reldb.S("dose-1-EDITED")})
	if !view.Equal(mustReorderCheck(t, view, reordered)) {
		// (sanity: they differ only by the edit, not by identity)
		_ = view
	}

	// Key-aligned put: correct regardless of order.
	aligned, err := lens.Put(src, reordered)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := aligned.Get(reldb.Row{reldb.I(1)})
	r2, _ := aligned.Get(reldb.Row{reldb.I(2)})
	if s, _ := r1[2].Str(); s != "dose-1-EDITED" {
		t.Fatalf("aligned put: patient 1 dose = %q", s)
	}
	if s, _ := r2[2].Str(); s != "dose-2" {
		t.Fatalf("aligned put: patient 2 dose = %q", s)
	}

	// Positional put: patient 1 receives patient 2's dosage and vice
	// versa — a medically catastrophic silent corruption. The put also
	// violates PutGet: projecting the "updated" source does not
	// reproduce the view that was put.
	positional, err := positionalPut(cols, src, reordered)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := positional.Get(reldb.Row{reldb.I(1)})
	if s, _ := p1[2].Str(); s == "dose-1-EDITED" {
		t.Fatal("positional put accidentally correct; reorder the fixture")
	}
	got, err := positional.Project("v", cols, nil)
	if err == nil && got.Equal(reordered) {
		t.Fatal("positional put unexpectedly satisfies PutGet")
	}
}

// mustReorderCheck rebuilds b with a's schema name so Equal compares
// contents only; helper for the sanity assertion above.
func mustReorderCheck(t *testing.T, a, b *reldb.Table) *reldb.Table {
	t.Helper()
	return b.Renamed(a.Name())
}

// BenchmarkAblationKeyAlignedPut quantifies what key alignment costs over
// the (broken) positional zip — the price of correctness.
func BenchmarkAblationKeyAlignedPut(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		src := reldb.MustNewTable(recordsSchema())
		for i := 0; i < rows; i++ {
			src.MustInsert(reldb.Row{
				reldb.I(int64(i)), reldb.S(fmt.Sprintf("med%d", i%7)),
				reldb.S("dose"), reldb.S("m"),
			})
		}
		cols := []string{"pid", "dose"}
		lens := Project("v", cols, nil)
		view, err := lens.Get(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("aligned/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lens.Put(src, view); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("positional-broken/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := positionalPut(cols, src, view); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
