package bx

import (
	"fmt"
	"testing"

	"medshare/internal/reldb"
)

// This file is the "key-aligned vs positional put" ablation called out in
// DESIGN.md §5: it demonstrates *why* the projection lens aligns rows by
// key. A strawman positional put — write the i-th delivered view row's
// projected columns into the i-th source row — looks plausible, is what a
// naive implementation would do, and silently corrupts data the moment
// the payload enumerates rows in a different order than the receiver's
// source (which JSON transport, set semantics, or a remote peer's
// serialization history all cause). reldb tables themselves now enumerate
// in canonical key order (the persistent storage is key-sorted), so the
// reordering is modeled where it actually happens: the wire payload, a
// plain row slice whose order the receiver does not control.

// positionalPut is the strawman: zip source rows with the view rows in
// the order the payload delivered them.
func positionalPut(cols []string, src *reldb.Table, viewRows []reldb.Row, viewSchema reldb.Schema) (*reldb.Table, error) {
	srcSchema := src.Schema()
	out, err := reldb.NewTable(srcSchema)
	if err != nil {
		return nil, err
	}
	srcRows := src.Rows()
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = viewSchema.ColumnIndex(c)
	}
	for i, sr := range srcRows {
		updated := sr.Clone()
		if i < len(viewRows) {
			for j, c := range cols {
				if srcSchema.IsKeyColumn(c) {
					continue // the naive put keeps keys, zips the rest
				}
				updated[srcSchema.ColumnIndex(c)] = viewRows[i][colIdx[j]]
			}
		}
		if err := out.Insert(updated); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TestPositionalPutCorruptsUnderReorder: the same logical view content,
// delivered in a different row order, makes the positional put scramble
// patients' data — while the key-aligned lens is order-insensitive.
func TestPositionalPutCorruptsUnderReorder(t *testing.T) {
	src := reldb.MustNewTable(recordsSchema())
	src.MustInsert(reldb.Row{reldb.I(1), reldb.S("medA"), reldb.S("dose-1"), reldb.S("m")})
	src.MustInsert(reldb.Row{reldb.I(2), reldb.S("medB"), reldb.S("dose-2"), reldb.S("m")})

	cols := []string{"pid", "dose"}
	lens := Project("v", cols, nil)
	view := mustGet(t, lens, src)

	// The counterparty edits row 1's dose and ships the view back, but
	// the payload lists the rows in the opposite order. Same logical
	// content; a keyed table built from it is order-insensitive.
	wireRows := []reldb.Row{
		{reldb.I(2), reldb.S("dose-2")},
		{reldb.I(1), reldb.S("dose-1-EDITED")},
	}
	reordered := reldb.MustNewTable(view.Schema())
	for _, r := range wireRows {
		reordered.MustInsert(r)
	}

	// Key-aligned put: correct regardless of order.
	aligned, err := lens.Put(src, reordered)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := aligned.Get(reldb.Row{reldb.I(1)})
	r2, _ := aligned.Get(reldb.Row{reldb.I(2)})
	if s, _ := r1[2].Str(); s != "dose-1-EDITED" {
		t.Fatalf("aligned put: patient 1 dose = %q", s)
	}
	if s, _ := r2[2].Str(); s != "dose-2" {
		t.Fatalf("aligned put: patient 2 dose = %q", s)
	}

	// Positional put: patient 1 receives patient 2's dosage and vice
	// versa — a medically catastrophic silent corruption. The put also
	// violates PutGet: projecting the "updated" source does not
	// reproduce the view that was put.
	positional, err := positionalPut(cols, src, wireRows, view.Schema())
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := positional.Get(reldb.Row{reldb.I(1)})
	if s, _ := p1[2].Str(); s == "dose-1-EDITED" {
		t.Fatal("positional put accidentally correct; reorder the fixture")
	}
	got, err := positional.Project("v", cols, nil)
	if err == nil && got.Equal(reordered.Renamed(view.Name())) {
		t.Fatal("positional put unexpectedly satisfies PutGet")
	}
}

// BenchmarkAblationKeyAlignedPut quantifies what key alignment costs over
// the (broken) positional zip — the price of correctness.
func BenchmarkAblationKeyAlignedPut(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		src := reldb.MustNewTable(recordsSchema())
		for i := 0; i < rows; i++ {
			src.MustInsert(reldb.Row{
				reldb.I(int64(i)), reldb.S(fmt.Sprintf("med%d", i%7)),
				reldb.S("dose"), reldb.S("m"),
			})
		}
		cols := []string{"pid", "dose"}
		lens := Project("v", cols, nil)
		view, err := lens.Get(src)
		if err != nil {
			b.Fatal(err)
		}
		viewRows := view.Rows()
		b.Run(fmt.Sprintf("aligned/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lens.Put(src, view); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("positional-broken/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := positionalPut(cols, src, viewRows, view.Schema()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
