package bx

import (
	"fmt"

	"medshare/internal/reldb"
)

// SelectLens restricts the view to source rows satisfying a predicate
// (horizontal fine-graining: e.g. a doctor shares only rows for one
// patient). The view has the full source schema.
//
// put semantics with key alignment:
//   - a view row must satisfy the predicate (otherwise the row would
//     silently vanish from its own view after put, violating PutGet);
//   - source rows not satisfying the predicate pass through unchanged
//     (they are invisible to the view);
//   - a source row satisfying the predicate that is absent from the view
//     was deleted on the view side (OnDelete policy);
//   - a view row whose key is absent from the source was inserted on the
//     view side (OnInsert policy).
type SelectLens struct {
	// ViewName names the produced view table.
	ViewName string
	// Pred selects the shared rows.
	Pred reldb.Predicate
	// OnDelete and OnInsert are PolicyApply or PolicyForbid.
	OnDelete string
	OnInsert string
}

// Select constructs a selection lens with forbid policies.
func Select(viewName string, pred reldb.Predicate) *SelectLens {
	return &SelectLens{ViewName: viewName, Pred: pred, OnDelete: PolicyForbid, OnInsert: PolicyForbid}
}

// WithDelete sets the view-delete policy and returns the lens.
func (l *SelectLens) WithDelete(policy string) *SelectLens {
	l.OnDelete = policy
	return l
}

// WithInsert sets the view-insert policy and returns the lens.
func (l *SelectLens) WithInsert(policy string) *SelectLens {
	l.OnInsert = policy
	return l
}

// ViewSchema implements Lens.
func (l *SelectLens) ViewSchema(src reldb.Schema) (reldb.Schema, error) {
	return src.Rename(l.ViewName), nil
}

// Get implements Lens.
func (l *SelectLens) Get(src *reldb.Table) (*reldb.Table, error) {
	return src.Select(l.ViewName, l.Pred)
}

// Put implements Lens.
func (l *SelectLens) Put(src, view *reldb.Table) (*reldb.Table, error) {
	srcSchema := src.Schema()
	if !srcSchema.Equal(view.Schema()) {
		return nil, fmt.Errorf("%w: selection view schema must equal source schema", ErrPutViolation)
	}
	// Every view row must satisfy the predicate, or it would escape its
	// own view and PutGet would fail.
	err := view.Scan(func(vr reldb.Row) (bool, error) {
		ok, err := l.Pred.Eval(srcSchema, vr)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, fmt.Errorf("%w: view %s row %v does not satisfy the selection predicate", ErrPutViolation, l.ViewName, view.KeyValues(vr))
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	// Align selected rows with view rows by key in one in-order pass on
	// the source's tree shape: the selection lens never rewrites row
	// contents, only membership, so invisible rows — and visible rows the
	// view left untouched — pass through as shared subtrees.
	matched := 0
	var keyBuf []byte
	out, err := src.RebuildAs(srcSchema, func(sr reldb.Row) (reldb.Row, error) {
		ok, err := l.Pred.Eval(srcSchema, sr)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Invisible to the view: passes through.
			return sr, nil
		}
		keyBuf = src.AppendKeyOf(keyBuf[:0], sr)
		vr, found := view.GetKeyBytes(keyBuf)
		if !found {
			if l.OnDelete != PolicyApply {
				return nil, fmt.Errorf("%w: view %s deleted row with key %v but lens forbids deletes", ErrPutViolation, l.ViewName, src.KeyValues(sr))
			}
			return nil, nil
		}
		matched++
		return vr, nil
	})
	if err != nil {
		return nil, err
	}
	// View rows with no matching source row are inserts.
	if matched != view.Len() {
		for _, vr := range view.RowsCanonical() {
			key := view.KeyValues(vr)
			if sr, ok := src.Get(key); ok {
				visible, err := l.Pred.Eval(srcSchema, sr)
				if err != nil {
					return nil, err
				}
				if visible {
					continue // matched in the scan above
				}
				// The key belongs to a source row outside the view: the
				// insert has no embedding (get would hide it again, and
				// silently dropping it would violate PutGet).
				return nil, fmt.Errorf("%w: view %s inserted key %v which belongs to a source row outside the selection", ErrPutViolation, l.ViewName, key)
			}
			if l.OnInsert != PolicyApply {
				return nil, fmt.Errorf("%w: view %s inserted row with key %v but lens forbids inserts", ErrPutViolation, l.ViewName, key)
			}
			if err := out.InsertOwned(vr); err != nil {
				return nil, fmt.Errorf("%w: inserting through view %s: %v", ErrPutViolation, l.ViewName, err)
			}
		}
	}
	return out, nil
}

// Spec implements Lens.
func (l *SelectLens) Spec() Spec {
	pred, err := reldb.MarshalPredicate(l.Pred)
	if err != nil {
		// Predicates constructed through the public combinators always
		// marshal; a failure here indicates a programming error.
		panic(fmt.Sprintf("bx: predicate marshal: %v", err))
	}
	return Spec{
		Op:       OpSelect,
		ViewName: l.ViewName,
		Pred:     pred,
		OnDelete: l.OnDelete,
		OnInsert: l.OnInsert,
	}
}

// SourceColumnsRead implements Lens: a selection exposes every column, and
// membership additionally depends on the predicate columns.
func (l *SelectLens) SourceColumnsRead(src reldb.Schema) ([]string, error) {
	return src.ColumnNames(), nil
}

// SourceColumnsWritten implements Lens.
func (l *SelectLens) SourceColumnsWritten(src reldb.Schema, viewCols []string) ([]string, error) {
	if viewCols == nil {
		return src.ColumnNames(), nil
	}
	var out []string
	for _, c := range viewCols {
		if src.HasColumn(c) {
			out = append(out, c)
		}
	}
	return out, nil
}
