package bx

import (
	"errors"
	"math/rand"
	"testing"

	"medshare/internal/reldb"
)

// formulary builds a reference table med -> (mech, class).
func formulary() *reldb.Table {
	t := reldb.MustNewTable(reldb.Schema{
		Name: "formulary",
		Columns: []reldb.Column{
			{Name: "med", Type: reldb.KindString},
			{Name: "class", Type: reldb.KindString},
		},
		Key: []string{"med"},
	})
	for i := 0; i < 6; i++ {
		t.MustInsert(reldb.Row{reldb.S(medName(i)), reldb.S("class" + medName(i))})
	}
	return t
}

func medName(i int) string { return "med" + string(rune('0'+i)) }

func TestJoinGetEnriches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := genRecords(rng, 10)
	l := Join("v", formulary())
	v := mustGet(t, l, src)
	if v.Len() != src.Len() {
		t.Fatalf("rows = %d, want %d", v.Len(), src.Len())
	}
	s := v.Schema()
	if !s.HasColumn("class") {
		t.Fatalf("columns = %v", s.ColumnNames())
	}
	// The view key stays the source key.
	if len(s.Key) != 1 || s.Key[0] != "pid" {
		t.Fatalf("key = %v", s.Key)
	}
}

func TestJoinGetRejectsMissingReference(t *testing.T) {
	src := reldb.MustNewTable(recordsSchema())
	src.MustInsert(reldb.Row{reldb.I(1), reldb.S("ghost-med"), reldb.S("d"), reldb.S("m")})
	l := Join("v", formulary())
	if _, err := l.Get(src); err == nil {
		t.Fatal("row without reference match must not silently vanish")
	}
}

func TestJoinPutSourceEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := genRecords(rng, 8)
	l := Join("v", formulary())
	v := mustGet(t, l, src)
	if err := v.Update(reldb.Row{reldb.I(3)}, map[string]reldb.Value{"dose": reldb.S("JOINED")}); err != nil {
		t.Fatal(err)
	}
	newSrc, err := l.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := newSrc.Get(reldb.Row{reldb.I(3)})
	if s, _ := r[2].Str(); s != "JOINED" {
		t.Fatalf("dose = %q", s)
	}
}

func TestJoinPutRejectsReferenceEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := genRecords(rng, 8)
	l := Join("v", formulary())
	v := mustGet(t, l, src)
	if err := v.Update(reldb.Row{reldb.I(3)}, map[string]reldb.Value{"class": reldb.S("forged")}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Put(src, v); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("want ErrPutViolation, got %v", err)
	}
}

func TestJoinPutRejectsStructuralEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := genRecords(rng, 8)
	l := Join("v", formulary())
	v := mustGet(t, l, src)
	rows := v.RowsCanonical()
	if err := v.Delete(v.KeyValues(rows[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Put(src, v); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("delete: want ErrPutViolation, got %v", err)
	}
}

func TestJoinWellBehaved(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := genRecords(rng, 12)
	l := Join("v", formulary())
	if err := CheckWellBehaved(l, src); err != nil {
		t.Fatal(err)
	}
	// PutGet under an admissible (source-column) edit.
	v := mustGet(t, l, src)
	if err := v.Update(reldb.Row{reldb.I(0)}, map[string]reldb.Value{"mech": reldb.S("edited")}); err != nil {
		t.Fatal(err)
	}
	if err := CheckPutGet(l, src, v); err != nil {
		t.Fatal(err)
	}
}

func TestJoinSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := genRecords(rng, 6)
	l := Join("v", formulary())
	raw, err := l.Spec().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	v1 := mustGet(t, l, src)
	v2 := mustGet(t, back, src)
	if v1.Hash() != v2.Hash() {
		t.Fatal("rebuilt join lens derives a different view")
	}
}

func TestJoinComposedWithProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := genRecords(rng, 10)
	l := Compose(
		Join("j", formulary()),
		Project("v", []string{"pid", "med", "class"}, nil),
	)
	v := mustGet(t, l, src)
	if !v.Schema().HasColumn("class") || v.Schema().HasColumn("dose") {
		t.Fatalf("columns = %v", v.Schema().ColumnNames())
	}
	if err := CheckWellBehaved(l, src); err != nil {
		t.Fatal(err)
	}
	// Editing the source column "med" through the composition must work
	// only if the new med exists in the reference (otherwise get fails on
	// the way back) — use an existing one.
	if err := v.Update(reldb.Row{reldb.I(0)}, map[string]reldb.Value{"med": reldb.S("med5")}); err != nil {
		t.Fatal(err)
	}
	// A med rename changes the joined class too; the inner projection
	// does not carry "class" back, so put re-derives it. PutGet may fail
	// if the class column in the view disagrees; verify put errors or the
	// result re-joins consistently.
	newSrc, err := l.Put(src, v)
	if err != nil {
		// Acceptable: the stale class value is a reference edit.
		return
	}
	got, err := l.Get(newSrc)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := got.Get(reldb.Row{reldb.I(0)})
	cls := r[got.Schema().ColumnIndex("class")]
	if s, _ := cls.Str(); s != "classmed5" {
		t.Fatalf("class after rename = %q", s)
	}
}
