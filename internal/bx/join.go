package bx

import (
	"fmt"

	"medshare/internal/reldb"
)

// JoinLens enriches the source with columns from a *reference table*: the
// view is the natural join of the source with a fixed lookup relation
// (e.g. patient rows joined with a medication formulary, so the shared
// view shows the mechanism of action next to each prescription).
//
// General join lenses are not well behaved — an edit to a joined-in
// column is ambiguous between "change the reference row" and "re-point the
// source row". This lens therefore adopts the classic restriction from
// the lens literature: the reference side is **read-only**. put accepts
// edits to source columns and rejects edits to reference columns, which
// keeps both laws:
//
//   - GetPut: re-putting an unchanged view writes back the original
//     source columns;
//   - PutGet: get re-joins the updated source with the same reference,
//     reproducing exactly the accepted view edits.
//
// The reference table is part of the lens definition. Its content is
// embedded in the serialized spec, so counterparties rebuild an identical
// lens from on-chain metadata.
type JoinLens struct {
	// ViewName names the produced view table.
	ViewName string
	// Ref is the read-only reference relation; it must share at least
	// one column name with the source.
	Ref *reldb.Table
}

// Join constructs a reference-join lens.
func Join(viewName string, ref *reldb.Table) *JoinLens {
	return &JoinLens{ViewName: viewName, Ref: ref}
}

// refColumns returns the reference columns that the join adds to the
// source (i.e. the non-shared reference columns).
func (l *JoinLens) refColumns(src reldb.Schema) []string {
	var out []string
	for _, c := range l.Ref.Schema().Columns {
		if !src.HasColumn(c.Name) {
			out = append(out, c.Name)
		}
	}
	return out
}

// ViewSchema implements Lens.
func (l *JoinLens) ViewSchema(src reldb.Schema) (reldb.Schema, error) {
	probe, err := reldb.NewTable(src)
	if err != nil {
		return reldb.Schema{}, err
	}
	joined, err := probe.NaturalJoin(l.ViewName, l.Ref)
	if err != nil {
		return reldb.Schema{}, err
	}
	// The view keeps the source's key: every source row joins to at most
	// one reference row in a lookup join, so the source key still
	// identifies view rows. (A reference with duplicate join keys makes
	// Get fail instead of silently multiplying rows.)
	s := joined.Schema()
	s.Key = append([]string(nil), src.Key...)
	if err := s.Validate(); err != nil {
		return reldb.Schema{}, err
	}
	return s, nil
}

// Get implements Lens.
func (l *JoinLens) Get(src *reldb.Table) (*reldb.Table, error) {
	joined, err := src.NaturalJoin(l.ViewName, l.Ref)
	if err != nil {
		return nil, err
	}
	want, err := l.ViewSchema(src.Schema())
	if err != nil {
		return nil, err
	}
	out, err := reldb.NewTable(want)
	if err != nil {
		return nil, err
	}
	for _, r := range joined.RowsCanonical() {
		if err := out.Insert(r); err != nil {
			return nil, fmt.Errorf("bx: join of %s is not a lookup join (duplicate reference match): %w", src.Name(), err)
		}
	}
	if out.Len() != src.Len() {
		return nil, fmt.Errorf("%w: join lens dropped %d source rows with no reference match", ErrPutViolation, src.Len()-out.Len())
	}
	return out, nil
}

// Put implements Lens.
func (l *JoinLens) Put(src, view *reldb.Table) (*reldb.Table, error) {
	want, err := l.ViewSchema(src.Schema())
	if err != nil {
		return nil, err
	}
	if !want.Equal(view.Schema()) {
		return nil, fmt.Errorf("%w: join view schema mismatch", ErrPutViolation)
	}
	// Recompute the expected reference columns and verify the view did
	// not edit them; then strip them and write the source columns back.
	expect, err := l.Get(src)
	if err != nil {
		return nil, err
	}
	srcSchema := src.Schema()
	refCols := l.refColumns(srcSchema)
	refIdx := make([]int, len(refCols))
	for i, c := range refCols {
		refIdx[i] = want.ColumnIndex(c)
	}

	out, err := reldb.NewTable(srcSchema)
	if err != nil {
		return nil, err
	}
	for _, vr := range view.RowsCanonical() {
		key := viewKeyOf(want, vr)
		er, ok := expect.Get(key)
		if !ok {
			return nil, fmt.Errorf("%w: join view inserted row with key %v (reference side is read-only)", ErrPutViolation, key)
		}
		for _, i := range refIdx {
			if !vr[i].Equal(er[i]) {
				return nil, fmt.Errorf("%w: join view edited read-only reference column %s", ErrPutViolation, want.Columns[i].Name)
			}
		}
		sr := make(reldb.Row, len(srcSchema.Columns))
		for i, c := range srcSchema.Columns {
			sr[i] = vr[want.ColumnIndex(c.Name)]
		}
		if err := out.Insert(sr); err != nil {
			return nil, err
		}
	}
	if out.Len() != src.Len() {
		return nil, fmt.Errorf("%w: join view deleted rows (reference side is read-only)", ErrPutViolation)
	}
	return out, nil
}

// Spec implements Lens. The reference table rides along in the spec.
func (l *JoinLens) Spec() Spec {
	raw, err := reldb.MarshalTable(l.Ref)
	if err != nil {
		panic(fmt.Sprintf("bx: join reference marshal: %v", err))
	}
	return Spec{Op: OpJoin, ViewName: l.ViewName, Ref: raw}
}

// SourceColumnsRead implements Lens.
func (l *JoinLens) SourceColumnsRead(src reldb.Schema) ([]string, error) {
	return src.ColumnNames(), nil
}

// SourceColumnsWritten implements Lens: only source columns are writable.
func (l *JoinLens) SourceColumnsWritten(src reldb.Schema, viewCols []string) ([]string, error) {
	if viewCols == nil {
		return src.ColumnNames(), nil
	}
	var out []string
	for _, c := range viewCols {
		if src.HasColumn(c) {
			out = append(out, c)
		}
	}
	return out, nil
}
