package bx

import (
	"fmt"
	"sync/atomic"

	"medshare/internal/reldb"
)

// JoinLens enriches the source with columns from a *reference table*: the
// view is the natural join of the source with a fixed lookup relation
// (e.g. patient rows joined with a medication formulary, so the shared
// view shows the mechanism of action next to each prescription).
//
// General join lenses are not well behaved — an edit to a joined-in
// column is ambiguous between "change the reference row" and "re-point the
// source row". This lens therefore adopts the classic restriction from
// the lens literature: the reference side is **read-only**. put accepts
// edits to source columns and rejects edits to reference columns, which
// keeps both laws:
//
//   - GetPut: re-putting an unchanged view writes back the original
//     source columns;
//   - PutGet: get re-joins the updated source with the same reference,
//     reproducing exactly the accepted view edits.
//
// "Rejects edits to reference columns" is enforced by *re-joining* every
// written row: the row's join-column tuple selects its reference row
// through a hash index over the reference table's join-tuple encodings
// (one lazy O(m) build per memoized plan, O(1) per probe), and the
// view row's reference columns must equal that row's — so an edit that
// re-points a row to a different reference row is accepted exactly when
// the view carries the new reference values, which is the only embedding
// under which PutGet holds. Rows whose join tuple matches no reference
// row are rejected (get would drop them), as are view-side inserts and
// deletes (the source rows they would create or destroy cannot be
// derived from a read-only reference).
//
// The reference table is part of the lens definition. Its content is
// embedded in the serialized spec, so counterparties rebuild an identical
// lens from on-chain metadata.
type JoinLens struct {
	// ViewName names the produced view table.
	ViewName string
	// Ref is the read-only reference relation; it must share at least
	// one column name with the source.
	Ref *reldb.Table

	// planMemo caches the column-geometry plan — and, hanging off it,
	// the reference index — for the one source schema a lens serves in
	// practice (keyed by the schema's canonical digest), so the
	// per-delta cost does not include re-deriving the view schema.
	planMemo atomic.Pointer[joinPlan]
}

// Join constructs a reference-join lens.
func Join(viewName string, ref *reldb.Table) *JoinLens {
	return &JoinLens{ViewName: viewName, Ref: ref}
}

// refColumns returns the reference columns that the join adds to the
// source (i.e. the non-shared reference columns).
func (l *JoinLens) refColumns(src reldb.Schema) []string {
	var out []string
	for _, c := range l.Ref.Schema().Columns {
		if !src.HasColumn(c.Name) {
			out = append(out, c.Name)
		}
	}
	return out
}

// ViewSchema implements Lens.
func (l *JoinLens) ViewSchema(src reldb.Schema) (reldb.Schema, error) {
	probe, err := reldb.NewTable(src)
	if err != nil {
		return reldb.Schema{}, err
	}
	joined, err := probe.NaturalJoin(l.ViewName, l.Ref)
	if err != nil {
		return reldb.Schema{}, err
	}
	// The view keeps the source's key: every source row joins to at most
	// one reference row in a lookup join, so the source key still
	// identifies view rows. (A reference with duplicate join keys makes
	// Get fail instead of silently multiplying rows.)
	s := joined.Schema()
	s.Key = append([]string(nil), src.Key...)
	if err := s.Validate(); err != nil {
		return reldb.Schema{}, err
	}
	return s, nil
}

// joinPlan precomputes the column geometry of one source schema against
// the lens's reference: where the join (shared) columns, the reference
// extras, and the source columns sit in source, reference, and view rows.
type joinPlan struct {
	// srcSum is the canonical digest of the source schema this plan was
	// derived for (the memo key).
	srcSum     [32]byte
	want       reldb.Schema
	viewKeyIdx []int // view key positions in a view row
	// shared are the join columns (source column order); sharedSrc and
	// sharedView are their positions in source and view rows.
	shared     []string
	sharedSrc  []int
	sharedView []int
	// refExtra are the reference-only columns; extraRef and extraView
	// are their positions in reference and view rows.
	refExtra  []string
	extraRef  []int
	extraView []int
	// srcView maps each source column position to its view position.
	srcView []int
	// refIdx lazily maps the ordered encoding of a reference row's join
	// tuple (under THIS plan's join columns) to the row — the O(1),
	// allocation-free re-join probe. It lives on the plan so a schema
	// switch rebuilds plan and index together. A nil row marks a
	// duplicate join tuple (not a lookup join for that key).
	refIdx atomic.Pointer[map[string]reldb.Row]
}

// plan returns (computing and memoizing on first use) the column plan
// for src's schema. The memo holds one entry — a lens serves one source
// schema in practice — and is safe for concurrent readers.
func (l *JoinLens) plan(src *reldb.Table) (*joinPlan, error) {
	sum := src.SchemaSum()
	if p := l.planMemo.Load(); p != nil && p.srcSum == sum {
		return p, nil
	}
	srcSchema := src.Schema()
	want, err := l.ViewSchema(srcSchema)
	if err != nil {
		return nil, err
	}
	refSchema := l.Ref.Schema()
	p := &joinPlan{srcSum: sum, want: want, viewKeyIdx: want.KeyIndexes()}
	for i, c := range srcSchema.Columns {
		if refSchema.HasColumn(c.Name) {
			p.shared = append(p.shared, c.Name)
			p.sharedSrc = append(p.sharedSrc, i)
			p.sharedView = append(p.sharedView, want.ColumnIndex(c.Name))
		}
		p.srcView = append(p.srcView, want.ColumnIndex(c.Name))
	}
	for _, c := range refSchema.Columns {
		if !srcSchema.HasColumn(c.Name) {
			p.refExtra = append(p.refExtra, c.Name)
			p.extraRef = append(p.extraRef, refSchema.ColumnIndex(c.Name))
			p.extraView = append(p.extraView, want.ColumnIndex(c.Name))
		}
	}
	l.planMemo.Store(p)
	return p, nil
}

// refIndex returns (building on first use) the plan's join-tuple →
// reference row map. Safe for concurrent readers: the reference is
// immutable, so racing builds store identical maps.
func (l *JoinLens) refIndex(p *joinPlan) map[string]reldb.Row {
	if ix := p.refIdx.Load(); ix != nil {
		return *ix
	}
	refSchema := l.Ref.Schema()
	refShared := make([]int, len(p.shared))
	for i, c := range p.shared {
		refShared[i] = refSchema.ColumnIndex(c)
	}
	ix := make(map[string]reldb.Row, l.Ref.Len())
	var buf []byte
	_ = l.Ref.Scan(func(rr reldb.Row) (bool, error) {
		buf = buf[:0]
		for _, j := range refShared {
			buf = rr[j].AppendOrdered(buf)
		}
		if _, dup := ix[string(buf)]; dup {
			ix[string(buf)] = nil // not a lookup join for this tuple
		} else {
			ix[string(buf)] = rr
		}
		return true, nil
	})
	p.refIdx.Store(&ix)
	return ix
}

// rejoin returns the unique reference row selected by the join-column
// tuple at the given row positions (idx into r) — the per-row lookup
// behind Get, Put, and PutDelta: one allocation-free map probe against
// the lens's reference index. keyBuf is the caller's reusable scratch.
func (l *JoinLens) rejoin(p *joinPlan, keyBuf []byte, r reldb.Row, idx []int) (reldb.Row, []byte, error) {
	keyBuf = keyBuf[:0]
	for _, j := range idx {
		keyBuf = r[j].AppendOrdered(keyBuf)
	}
	refRow, ok := l.refIndex(p)[string(keyBuf)]
	if !ok {
		return nil, keyBuf, fmt.Errorf("%w: view %s row %v has no reference match", ErrPutViolation, l.ViewName, viewKeyOf(p.want, r))
	}
	if refRow == nil {
		return nil, keyBuf, fmt.Errorf("bx: join of view %s is not a lookup join (duplicate reference match)", l.ViewName)
	}
	return refRow, keyBuf, nil
}

// checkRefCols verifies a view row carries exactly the reference values
// its join tuple selects (the read-only-reference rule, per row).
func (l *JoinLens) checkRefCols(p *joinPlan, vr, refRow reldb.Row) error {
	for i, vi := range p.extraView {
		if !vr[vi].Equal(refRow[p.extraRef[i]]) {
			return fmt.Errorf("%w: join view edited read-only reference column %s", ErrPutViolation, p.refExtra[i])
		}
	}
	return nil
}

// sourceRow strips the reference columns from a view row.
func (p *joinPlan) sourceRow(vr reldb.Row) reldb.Row {
	sr := make(reldb.Row, len(p.srcView))
	for i, vi := range p.srcView {
		sr[i] = vr[vi]
	}
	return sr
}

// Get implements Lens: one in-order pass over the source, each row
// enriched by an O(1) reference-index probe, rebuilt on the
// source's tree shape (the view keeps the source key, so keys,
// priorities, and structure carry over — no re-keying, no re-hashing).
func (l *JoinLens) Get(src *reldb.Table) (*reldb.Table, error) {
	p, err := l.plan(src)
	if err != nil {
		return nil, err
	}
	var keyBuf []byte
	return src.RebuildAs(p.want, func(sr reldb.Row) (reldb.Row, error) {
		var refRow reldb.Row
		refRow, keyBuf, err = l.rejoin(p, keyBuf, sr, p.sharedSrc)
		if err != nil {
			return nil, fmt.Errorf("bx: join lens cannot derive %s from %s: %w", l.ViewName, src.Name(), err)
		}
		vr := make(reldb.Row, len(p.want.Columns))
		for i, vi := range p.srcView {
			vr[vi] = sr[i]
		}
		for i, vi := range p.extraView {
			vr[vi] = refRow[p.extraRef[i]]
		}
		return vr, nil
	})
}

// Put implements Lens: every view row must address an existing source
// row (inserts rejected by the row-count gate), carry exactly the
// reference values its join tuple selects (reference edits rejected,
// re-joined per row), and no source row may lack a view row (deletes
// rejected); the surviving source columns are written back on the
// source's tree shape, sharing every untouched row's subtree.
func (l *JoinLens) Put(src, view *reldb.Table) (*reldb.Table, error) {
	p, err := l.plan(src)
	if err != nil {
		return nil, err
	}
	if !p.want.Equal(view.Schema()) {
		return nil, fmt.Errorf("%w: join view schema mismatch", ErrPutViolation)
	}
	if view.Len() > src.Len() {
		return nil, fmt.Errorf("%w: join view inserted rows (reference side is read-only)", ErrPutViolation)
	}
	if view.Len() < src.Len() {
		return nil, fmt.Errorf("%w: join view deleted rows (reference side is read-only)", ErrPutViolation)
	}
	var keyBuf []byte
	return src.RebuildAs(src.Schema(), func(sr reldb.Row) (reldb.Row, error) {
		keyBuf = src.AppendKeyOf(keyBuf[:0], sr)
		vr, ok := view.GetKeyBytes(keyBuf)
		if !ok {
			// Equal counts but this source key is missing: the view
			// deleted it and inserted something else.
			return nil, fmt.Errorf("%w: join view deleted rows (reference side is read-only)", ErrPutViolation)
		}
		var refRow reldb.Row
		refRow, keyBuf, err = l.rejoin(p, keyBuf, vr, p.sharedView)
		if err != nil {
			return nil, err
		}
		if err := l.checkRefCols(p, vr, refRow); err != nil {
			return nil, err
		}
		same := true
		for i, vi := range p.srcView {
			if !sr[i].Equal(vr[vi]) {
				same = false
				break
			}
		}
		if same {
			return sr, nil
		}
		return p.sourceRow(vr), nil
	})
}

// PutDelta implements Lens: each changed row re-joins against the
// reference through the plan's hash index and is rejected per row if it
// edits a reference column or matches no reference row; structural view
// edits are rejected outright (the reference side is read-only). Cost is
// O(changed rows · log n) — the last lens on the update path with an
// O(table) fallback now has none.
func (l *JoinLens) PutDelta(src, view *reldb.Table, cs reldb.Changeset) (*reldb.Table, reldb.Changeset, error) {
	p, err := l.plan(src)
	if err != nil {
		return nil, reldb.Changeset{}, err
	}
	if !p.want.Equal(view.Schema()) {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: join view schema mismatch", ErrPutViolation)
	}
	if len(cs.Inserted) > 0 {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: join view inserted row with key %v (reference side is read-only)", ErrPutViolation, viewKeyOf(p.want, cs.Inserted[0]))
	}
	if len(cs.Deleted) > 0 {
		return nil, reldb.Changeset{}, fmt.Errorf("%w: join view deleted rows (reference side is read-only)", ErrPutViolation)
	}
	out := src.Clone()
	var srcCs reldb.Changeset
	var keyBuf []byte
	for _, u := range cs.Updated {
		keyBuf = keyBuf[:0]
		for _, j := range p.viewKeyIdx {
			keyBuf = u.After[j].AppendOrdered(keyBuf)
		}
		before, ok := out.GetKeyBytes(keyBuf)
		if !ok {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: delta update on view %s targets missing source row (stale changeset?)", ErrPutViolation, l.ViewName)
		}
		var refRow reldb.Row
		refRow, keyBuf, err = l.rejoin(p, keyBuf, u.After, p.sharedView)
		if err != nil {
			return nil, reldb.Changeset{}, err
		}
		if err := l.checkRefCols(p, u.After, refRow); err != nil {
			return nil, reldb.Changeset{}, err
		}
		nr := p.sourceRow(u.After)
		if err := out.UpsertOwned(nr); err != nil {
			return nil, reldb.Changeset{}, fmt.Errorf("%w: %v", ErrPutViolation, err)
		}
		srcCs.Updated = append(srcCs.Updated, reldb.RowChange{Before: before, After: nr})
	}
	return out, srcCs, nil
}

// Spec implements Lens. The reference table rides along in the spec.
func (l *JoinLens) Spec() Spec {
	raw, err := reldb.MarshalTable(l.Ref)
	if err != nil {
		panic(fmt.Sprintf("bx: join reference marshal: %v", err))
	}
	return Spec{Op: OpJoin, ViewName: l.ViewName, Ref: raw}
}

// SourceColumnsRead implements Lens.
func (l *JoinLens) SourceColumnsRead(src reldb.Schema) ([]string, error) {
	return src.ColumnNames(), nil
}

// SourceColumnsWritten implements Lens: only source columns are writable.
func (l *JoinLens) SourceColumnsWritten(src reldb.Schema, viewCols []string) ([]string, error) {
	if viewCols == nil {
		return src.ColumnNames(), nil
	}
	var out []string
	for _, c := range viewCols {
		if src.HasColumn(c) {
			out = append(out, c)
		}
	}
	return out, nil
}
