package bx

import (
	"fmt"

	"medshare/internal/reldb"
)

// CheckGetPut verifies the GetPut law on concrete data:
//
//	put(src, get(src)) = src
//
// i.e. putting back an unmodified view must not change the source.
func CheckGetPut(l Lens, src *reldb.Table) error {
	view, err := l.Get(src)
	if err != nil {
		return fmt.Errorf("get: %w", err)
	}
	back, err := l.Put(src, view)
	if err != nil {
		return fmt.Errorf("put: %w", err)
	}
	if !back.Equal(src) {
		return fmt.Errorf("%w: GetPut: put(s, get(s)) != s for lens %s", ErrLawViolation, describe(l))
	}
	return nil
}

// CheckPutGet verifies the PutGet law on concrete data:
//
//	get(put(src, view)) = view
//
// i.e. every edit on the view survives the round trip through the source.
func CheckPutGet(l Lens, src, view *reldb.Table) error {
	newSrc, err := l.Put(src, view)
	if err != nil {
		return fmt.Errorf("put: %w", err)
	}
	got, err := l.Get(newSrc)
	if err != nil {
		return fmt.Errorf("get after put: %w", err)
	}
	if !got.Equal(view) {
		return fmt.Errorf("%w: PutGet: get(put(s, v)) != v for lens %s", ErrLawViolation, describe(l))
	}
	return nil
}

// CheckWellBehaved verifies both laws: GetPut on the source, and PutGet on
// the source with its own view (the identity edit) — the strongest check
// possible without an edit generator. Callers with a concrete edited view
// should prefer CheckPutGet directly.
func CheckWellBehaved(l Lens, src *reldb.Table) error {
	if err := CheckGetPut(l, src); err != nil {
		return err
	}
	view, err := l.Get(src)
	if err != nil {
		return err
	}
	return CheckPutGet(l, src, view)
}

func describe(l Lens) string {
	b, err := l.Spec().Marshal()
	if err != nil {
		return "<unserializable lens>"
	}
	return string(b)
}
