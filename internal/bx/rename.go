package bx

import (
	"fmt"

	"medshare/internal/reldb"
)

// RenameLens renames view columns relative to the source (the sharing
// peers "form an agreement on the structure of the shared table",
// Section III-C2 — which may use different attribute names than either
// peer's local schema). Renaming is a bijection, so the lens is trivially
// well behaved.
type RenameLens struct {
	// ViewName names the produced view table.
	ViewName string
	// Mapping maps source column names to view column names.
	Mapping map[string]string
}

// Rename constructs a column-renaming lens.
func Rename(viewName string, mapping map[string]string) *RenameLens {
	return &RenameLens{ViewName: viewName, Mapping: mapping}
}

func (l *RenameLens) inverse() map[string]string {
	inv := make(map[string]string, len(l.Mapping))
	for from, to := range l.Mapping {
		inv[to] = from
	}
	return inv
}

func (l *RenameLens) validate() error {
	inv := make(map[string]bool, len(l.Mapping))
	for _, to := range l.Mapping {
		if inv[to] {
			return fmt.Errorf("%w: rename maps two columns to %q", ErrSpecInvalid, to)
		}
		inv[to] = true
	}
	return nil
}

// ViewSchema implements Lens.
func (l *RenameLens) ViewSchema(src reldb.Schema) (reldb.Schema, error) {
	if err := l.validate(); err != nil {
		return reldb.Schema{}, err
	}
	ns := src.Rename(l.ViewName)
	for i, c := range ns.Columns {
		if nw, ok := l.Mapping[c.Name]; ok {
			ns.Columns[i].Name = nw
		}
	}
	for i, k := range ns.Key {
		if nw, ok := l.Mapping[k]; ok {
			ns.Key[i] = nw
		}
	}
	if err := ns.Validate(); err != nil {
		return reldb.Schema{}, err
	}
	return ns, nil
}

// Get implements Lens.
func (l *RenameLens) Get(src *reldb.Table) (*reldb.Table, error) {
	if err := l.validate(); err != nil {
		return nil, err
	}
	return src.RenameColumns(l.ViewName, l.Mapping)
}

// Put implements Lens.
func (l *RenameLens) Put(src, view *reldb.Table) (*reldb.Table, error) {
	want, err := l.ViewSchema(src.Schema())
	if err != nil {
		return nil, err
	}
	if !want.Equal(view.Schema()) {
		return nil, fmt.Errorf("%w: view schema does not match renamed source", ErrPutViolation)
	}
	back, err := view.RenameColumns(src.Name(), l.inverse())
	if err != nil {
		return nil, err
	}
	return back, nil
}

// Spec implements Lens.
func (l *RenameLens) Spec() Spec {
	m := make(map[string]string, len(l.Mapping))
	for k, v := range l.Mapping {
		m[k] = v
	}
	return Spec{Op: OpRename, ViewName: l.ViewName, Mapping: m}
}

// SourceColumnsRead implements Lens.
func (l *RenameLens) SourceColumnsRead(src reldb.Schema) ([]string, error) {
	return src.ColumnNames(), nil
}

// SourceColumnsWritten implements Lens.
func (l *RenameLens) SourceColumnsWritten(src reldb.Schema, viewCols []string) ([]string, error) {
	if viewCols == nil {
		return src.ColumnNames(), nil
	}
	inv := l.inverse()
	var out []string
	for _, vc := range viewCols {
		if from, ok := inv[vc]; ok {
			out = append(out, from)
		} else if src.HasColumn(vc) {
			out = append(out, vc)
		}
	}
	return out, nil
}
