package bx

import (
	"errors"
	"math/rand"
	"testing"

	"medshare/internal/reldb"
)

func TestSelectGetFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := genRecords(rng, 20)
	l := Select("v", reldb.Cmp("pid", reldb.OpLt, reldb.I(5)))
	v := mustGet(t, l, src)
	if v.Len() != 5 {
		t.Fatalf("rows = %d", v.Len())
	}
	for _, r := range v.Rows() {
		if pid, _ := r[0].Int(); pid >= 5 {
			t.Fatalf("row %v escaped predicate", r)
		}
	}
}

func TestSelectPutUpdatesVisibleRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := genRecords(rng, 10)
	l := Select("v", reldb.Cmp("pid", reldb.OpLt, reldb.I(3)))
	v := mustGet(t, l, src)
	if err := v.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"dose": reldb.S("NEW")}); err != nil {
		t.Fatal(err)
	}
	newSrc, err := l.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := newSrc.Get(reldb.Row{reldb.I(1)})
	if s, _ := r[2].Str(); s != "NEW" {
		t.Fatalf("dose = %q", s)
	}
	// Invisible rows pass through untouched.
	for pid := int64(3); pid < 10; pid++ {
		a, _ := src.Get(reldb.Row{reldb.I(pid)})
		b, _ := newSrc.Get(reldb.Row{reldb.I(pid)})
		if !a.Equal(b) {
			t.Fatalf("invisible row %d modified", pid)
		}
	}
}

func TestSelectPutRejectsPredicateEscape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := genRecords(rng, 6)
	l := Select("v", reldb.Eq("med", reldb.S("med1")))
	v := mustGet(t, l, src)
	if v.Len() == 0 {
		t.Skip("no med1 rows in this seed")
	}
	rows := v.RowsCanonical()
	if err := v.Update(v.KeyValues(rows[0]), map[string]reldb.Value{"med": reldb.S("med9")}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Put(src, v); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("want ErrPutViolation, got %v", err)
	}
}

func TestSelectPutDeletePolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := genRecords(rng, 8)
	forbid := Select("v", reldb.Cmp("pid", reldb.OpLt, reldb.I(4)))
	apply := Select("v", reldb.Cmp("pid", reldb.OpLt, reldb.I(4))).WithDelete(PolicyApply)

	v := mustGet(t, forbid, src)
	if err := v.Delete(reldb.Row{reldb.I(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := forbid.Put(src, v); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("forbid: want ErrPutViolation, got %v", err)
	}
	newSrc, err := apply.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	if newSrc.Has(reldb.Row{reldb.I(0)}) {
		t.Fatal("apply: row not deleted")
	}
	if newSrc.Len() != 7 {
		t.Fatalf("len = %d", newSrc.Len())
	}
}

func TestSelectPutInsertPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := genRecords(rng, 4)
	newRow := reldb.Row{reldb.I(100), reldb.S("med1"), reldb.S("d"), reldb.S("m")}

	forbid := Select("v", reldb.Cmp("pid", reldb.OpGe, reldb.I(0)))
	v := mustGet(t, forbid, src)
	if err := v.Insert(newRow); err != nil {
		t.Fatal(err)
	}
	if _, err := forbid.Put(src, v); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("forbid: want ErrPutViolation, got %v", err)
	}

	apply := Select("v", reldb.Cmp("pid", reldb.OpGe, reldb.I(0))).WithInsert(PolicyApply)
	newSrc, err := apply.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	if !newSrc.Has(reldb.Row{reldb.I(100)}) {
		t.Fatal("apply: row not inserted")
	}
}

func TestSelectPutSchemaMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := genRecords(rng, 2)
	l := Select("v", reldb.True())
	wrong := reldb.MustNewTable(reldb.Schema{
		Name:    "v",
		Columns: []reldb.Column{{Name: "pid", Type: reldb.KindInt}},
		Key:     []string{"pid"},
	})
	if _, err := l.Put(src, wrong); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("want ErrPutViolation, got %v", err)
	}
}

func TestRenameGetPutRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := genRecords(rng, 6)
	l := Rename("v", map[string]string{"pid": "patient_number", "mech": "mechanism"})
	v := mustGet(t, l, src)
	s := v.Schema()
	if !s.HasColumn("patient_number") || !s.HasColumn("mechanism") || s.HasColumn("pid") {
		t.Fatalf("columns = %v", s.ColumnNames())
	}
	if s.Key[0] != "patient_number" {
		t.Fatalf("key = %v", s.Key)
	}
	if err := v.Update(reldb.Row{reldb.I(0)}, map[string]reldb.Value{"mechanism": reldb.S("M")}); err != nil {
		t.Fatal(err)
	}
	newSrc, err := l.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := newSrc.Get(reldb.Row{reldb.I(0)})
	if s, _ := r[3].Str(); s != "M" {
		t.Fatalf("mech = %q", s)
	}
}

func TestRenameRejectsNonInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := genRecords(rng, 2)
	l := Rename("v", map[string]string{"pid": "x", "med": "x"})
	if _, err := l.Get(src); !errors.Is(err, ErrSpecInvalid) {
		t.Fatalf("want ErrSpecInvalid, got %v", err)
	}
}

func TestComposeSelectThenProject(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := genRecords(rng, 12)
	l := Compose(
		Select("a", reldb.Cmp("pid", reldb.OpLt, reldb.I(6))),
		Project("b", []string{"pid", "dose"}, nil),
	)
	v := mustGet(t, l, src)
	if v.Len() != 6 {
		t.Fatalf("rows = %d", v.Len())
	}
	if got := v.Schema().ColumnNames(); len(got) != 2 {
		t.Fatalf("columns = %v", got)
	}
	// An update through the composition lands in the source, leaving
	// filtered-out and hidden data intact.
	if err := v.Update(reldb.Row{reldb.I(2)}, map[string]reldb.Value{"dose": reldb.S("XX")}); err != nil {
		t.Fatal(err)
	}
	newSrc, err := l.Put(src, v)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := newSrc.Get(reldb.Row{reldb.I(2)})
	if s, _ := r[2].Str(); s != "XX" {
		t.Fatalf("dose = %q", s)
	}
	orig, _ := src.Get(reldb.Row{reldb.I(7)})
	now, _ := newSrc.Get(reldb.Row{reldb.I(7)})
	if !orig.Equal(now) {
		t.Fatal("row outside the selection was modified")
	}
}

func TestComposeVariadic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := genRecords(rng, 5)
	l := Compose(
		Select("a", reldb.True()),
		Project("b", []string{"pid", "med", "dose"}, nil),
		Rename("c", map[string]string{"dose": "dosage"}),
	)
	v := mustGet(t, l, src)
	if !v.Schema().HasColumn("dosage") {
		t.Fatalf("columns = %v", v.Schema().ColumnNames())
	}
	if err := CheckWellBehaved(l, src); err != nil {
		t.Fatal(err)
	}
}
