package bx

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"medshare/internal/reldb"
)

// deltaFor computes the changeset an edited view represents, the way the
// sharing layer does before calling PutDelta.
func deltaFor(t *testing.T, view, edited *reldb.Table) reldb.Changeset {
	t.Helper()
	cs, err := view.Diff(edited)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	return cs
}

// TestPutDeltaMatchesPutQuick: for every lens in the menagerie and every
// random admissible edit, the delta path must agree exactly with the full
// put — same result table, or the same refusal.
func TestPutDeltaMatchesPutQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genRecords(rng, 3+rng.Intn(20))
		for i, l := range lensesUnderTest() {
			view, err := l.Get(src)
			if err != nil {
				t.Logf("seed %d lens %d: get: %v", seed, i, err)
				return false
			}
			edited := view.Clone()
			spec := l.Spec()
			structural := spec.OnDelete == PolicyApply ||
				(spec.Op == OpCompose && spec.Inner[1].OnDelete == PolicyApply)
			randomViewEdit(rng, edited, structural)
			cs := deltaFor(t, view, edited)

			want, wantErr := l.Put(src, edited)
			got, srcCs, gotErr := PutDelta(l, src, edited, cs)
			if (wantErr == nil) != (gotErr == nil) {
				t.Logf("seed %d lens %d: put err %v vs delta err %v", seed, i, wantErr, gotErr)
				return false
			}
			if wantErr != nil {
				continue
			}
			if !want.Equal(got) {
				t.Logf("seed %d lens %d: delta result diverges from put", seed, i)
				return false
			}
			// The reported source changeset must replay src into the result.
			replayed := src.Clone()
			if err := replayed.Apply(srcCs); err != nil {
				t.Logf("seed %d lens %d: replay: %v", seed, i, err)
				return false
			}
			if !replayed.Equal(got) {
				t.Logf("seed %d lens %d: source changeset does not replay", seed, i)
				return false
			}
			// PutGet must hold along the delta path too.
			round, err := l.Get(got)
			if err != nil {
				t.Logf("seed %d lens %d: get after delta put: %v", seed, i, err)
				return false
			}
			if !round.Equal(edited) {
				t.Logf("seed %d lens %d: PutGet fails along delta path", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPutDeltaEmptyChangesetIsGetPut: an empty delta is the identity edit,
// so the result must equal the source (the GetPut law along the delta
// path).
func TestPutDeltaEmptyChangesetIsGetPut(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := genRecords(rng, 12)
	for i, l := range lensesUnderTest() {
		view := mustGet(t, l, src)
		got, srcCs, err := PutDelta(l, src, view, reldb.Changeset{})
		if err != nil {
			t.Fatalf("lens %d: %v", i, err)
		}
		if !srcCs.Empty() {
			t.Errorf("lens %d: identity edit produced a source changeset", i)
		}
		if !got.Equal(src) {
			t.Errorf("lens %d: GetPut violated along delta path", i)
		}
	}
}

// TestPutDeltaStructuralEdits drives the insert and delete arms of the
// projection delta directly (the D13 share: apply policies, defaults for
// the hidden column).
func TestPutDeltaStructuralEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := genRecords(rng, 8)
	l := Project("v", []string{"pid", "dose"}, nil).WithDelete(PolicyApply).
		WithInsert(PolicyApply, map[string]reldb.Value{
			"med": reldb.S("dmed"), "mech": reldb.S("dmech"),
		})
	view := mustGet(t, l, src)
	edited := view.Clone()
	rows := edited.RowsCanonical()
	if err := edited.Delete(edited.KeyValues(rows[0])); err != nil {
		t.Fatal(err)
	}
	if err := edited.Insert(reldb.Row{reldb.I(100), reldb.S("newdose")}); err != nil {
		t.Fatal(err)
	}
	if err := edited.Update(edited.KeyValues(rows[1]), map[string]reldb.Value{"dose": reldb.S("changed")}); err != nil {
		t.Fatal(err)
	}
	cs := deltaFor(t, view, edited)
	if cs.Size() != 3 {
		t.Fatalf("changeset size = %d, want 3", cs.Size())
	}
	want, err := l.Put(src, edited)
	if err != nil {
		t.Fatal(err)
	}
	got, srcCs, err := PutDelta(l, src, edited, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("delta result diverges from put")
	}
	if srcCs.Size() != 3 {
		t.Fatalf("source changeset size = %d, want 3", srcCs.Size())
	}
	// The inserted source row must carry the defaults for hidden columns.
	nr, ok := got.Get(reldb.Row{reldb.I(100)})
	if !ok {
		t.Fatal("inserted row missing from source")
	}
	if s, _ := nr[1].Str(); s != "dmed" {
		t.Fatalf("hidden column did not default: %v", nr)
	}
}

// TestPutDeltaForbidsByPolicy: the delta path must refuse exactly what the
// full put refuses.
func TestPutDeltaForbidsByPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := genRecords(rng, 6)
	l := Project("v", []string{"pid", "dose"}, nil) // forbid policies
	view := mustGet(t, l, src)

	edited := view.Clone()
	rows := edited.RowsCanonical()
	if err := edited.Delete(edited.KeyValues(rows[0])); err != nil {
		t.Fatal(err)
	}
	cs := deltaFor(t, view, edited)
	if _, _, err := PutDelta(l, src, edited, cs); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("delete through forbid lens: got %v, want ErrPutViolation", err)
	}

	edited = view.Clone()
	if err := edited.Insert(reldb.Row{reldb.I(200), reldb.S("d")}); err != nil {
		t.Fatal(err)
	}
	cs = deltaFor(t, view, edited)
	if _, _, err := PutDelta(l, src, edited, cs); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("insert through forbid lens: got %v, want ErrPutViolation", err)
	}
}

// TestPutDeltaSelectPredicateViolation: an update that moves a row outside
// its own selection must be refused on the delta path.
func TestPutDeltaSelectPredicateViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := genRecords(rng, 8)
	l := Select("v", reldb.Eq("med", reldb.S("med1"))).WithDelete(PolicyApply).WithInsert(PolicyApply)
	view := mustGet(t, l, src)
	if view.Len() == 0 {
		t.Skip("no med1 rows under this seed")
	}
	edited := view.Clone()
	rows := edited.RowsCanonical()
	if err := edited.Update(edited.KeyValues(rows[0]), map[string]reldb.Value{"med": reldb.S("med-escape")}); err != nil {
		t.Fatal(err)
	}
	cs := deltaFor(t, view, edited)
	if _, _, err := PutDelta(l, src, edited, cs); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("predicate escape: got %v, want ErrPutViolation", err)
	}
}

// TestSelectInsertCollidingWithInvisibleRow: inserting a view row whose
// key belongs to a source row *outside* the selection has no embedding —
// get would hide it again. Both Put and PutDelta must reject it (the old
// Put silently dropped the insert, violating PutGet).
func TestSelectInsertCollidingWithInvisibleRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := genRecords(rng, 8)
	l := Select("v", reldb.Eq("med", reldb.S("med1"))).WithDelete(PolicyApply).WithInsert(PolicyApply)
	view := mustGet(t, l, src)

	// Find a source row invisible to the view and reuse its key.
	var hidden reldb.Row
	for _, r := range src.RowsCanonical() {
		if m, _ := r[1].Str(); m != "med1" {
			hidden = r
			break
		}
	}
	if hidden == nil {
		t.Skip("no invisible rows under this seed")
	}
	edited := view.Clone()
	colliding := hidden.Clone()
	colliding[1] = reldb.S("med1") // satisfies the predicate, same key
	if err := edited.Insert(colliding); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Put(src, edited); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("Put: got %v, want ErrPutViolation", err)
	}
	cs := deltaFor(t, view, edited)
	if _, _, err := PutDelta(l, src, edited, cs); !errors.Is(err, ErrPutViolation) {
		t.Fatalf("PutDelta: got %v, want ErrPutViolation", err)
	}
}

// TestPutDeltaRekeyedProjectionDirect: the medication-keyed projection
// (the paper's D23/D32) addresses the *group* of source rows sharing the
// view-key tuple through the source's secondary index — no full put, no
// diff. The delta path must agree with the full put, update every row of
// the group, and report a source changeset that replays.
func TestPutDeltaRekeyedProjectionDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src := genRecords(rng, 30) // ~6 medications → multi-row groups
	l := Project("v", []string{"med", "mech"}, []string{"med"})
	view := mustGet(t, l, src)
	edited := view.Clone()
	rows := edited.RowsCanonical()
	if err := edited.Update(edited.KeyValues(rows[0]), map[string]reldb.Value{"mech": reldb.S("mech-new")}); err != nil {
		t.Fatal(err)
	}
	cs := deltaFor(t, view, edited)
	want, err := l.Put(src, edited)
	if err != nil {
		t.Fatal(err)
	}
	got, srcCs, err := PutDelta(l, src, edited, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("re-keyed delta result diverges from put")
	}
	// The one-view-row edit must have touched every source row of the
	// medication group, and only those.
	med, _ := rows[0][0].Str()
	groupSize := 0
	_ = src.Scan(func(r reldb.Row) (bool, error) {
		if m, _ := r[1].Str(); m == med {
			groupSize++
		}
		return true, nil
	})
	if len(srcCs.Updated) != groupSize || groupSize == 0 {
		t.Fatalf("source changeset touched %d rows, group has %d", len(srcCs.Updated), groupSize)
	}
	replayed := src.Clone()
	if err := replayed.Apply(srcCs); err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(got) {
		t.Fatal("re-keyed source changeset does not replay")
	}
}

// TestPutDeltaRekeyedStructural drives the delete and insert arms of the
// re-keyed projection delta: deleting a view row removes the whole
// source group; inserting creates one defaulted source row.
func TestPutDeltaRekeyedStructural(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	src := genRecords(rng, 24)
	l := Project("v", []string{"med", "mech"}, []string{"med"}).
		WithDelete(PolicyApply).
		WithInsert(PolicyApply, map[string]reldb.Value{
			"pid": reldb.I(999), "dose": reldb.S("ddose"),
		})
	view := mustGet(t, l, src)
	edited := view.Clone()
	rows := edited.RowsCanonical()
	if err := edited.Delete(edited.KeyValues(rows[0])); err != nil {
		t.Fatal(err)
	}
	if err := edited.Insert(reldb.Row{reldb.S("medX"), reldb.S("mech-of-medX")}); err != nil {
		t.Fatal(err)
	}
	cs := deltaFor(t, view, edited)
	want, err := l.Put(src, edited)
	if err != nil {
		t.Fatal(err)
	}
	got, srcCs, err := PutDelta(l, src, edited, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("re-keyed structural delta diverges from put")
	}
	replayed := src.Clone()
	if err := replayed.Apply(srcCs); err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(got) {
		t.Fatal("re-keyed structural changeset does not replay")
	}
}

// TestPutDeltaRekeyedSourceKeyEdit: a re-keyed view that projects the
// *source* key column. Editing it through the view moves the source row
// to a new primary key — the delta path must mirror the full put
// (delete + insert), not leave a stale duplicate behind.
func TestPutDeltaRekeyedSourceKeyEdit(t *testing.T) {
	src := reldb.MustNewTable(recordsSchema())
	for i := 0; i < 6; i++ {
		src.MustInsert(reldb.Row{
			reldb.I(int64(i)), reldb.S(fmt.Sprintf("med%d", i)),
			reldb.S("d"), reldb.S(fmt.Sprintf("mech-of-med%d", i)),
		})
	}
	l := Project("v", []string{"pid", "med"}, []string{"med"})
	view := mustGet(t, l, src)
	edited := view.Clone()
	if err := edited.Update(reldb.Row{reldb.S("med3")}, map[string]reldb.Value{"pid": reldb.I(77)}); err != nil {
		t.Fatal(err)
	}
	cs := deltaFor(t, view, edited)
	want, err := l.Put(src, edited)
	if err != nil {
		t.Fatal(err)
	}
	got, srcCs, err := PutDelta(l, src, edited, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("source-key edit diverges from put")
	}
	if got.Len() != src.Len() {
		t.Fatalf("row count changed: %d -> %d (stale duplicate?)", src.Len(), got.Len())
	}
	replayed := src.Clone()
	if err := replayed.Apply(srcCs); err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(got) {
		t.Fatal("source-key edit changeset does not replay")
	}
}

// TestComposePutDeltaMemo drives a multi-step cascade through one
// ComposeLens instance — the per-share shape in the sharing layer — and
// checks every step agrees with the stateless full put, including after
// the source changes behind the lens's back (memo invalidation by hash).
func TestComposePutDeltaMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := genRecords(rng, 20)
	cl := Compose(
		Select("ca", reldb.Cmp("pid", reldb.OpGe, reldb.I(2))).WithDelete(PolicyApply).WithInsert(PolicyApply),
		Project("cb", []string{"pid", "dose"}, nil),
	)
	fresh := func() Lens { // stateless reference lens (no memo reuse)
		return Compose(
			Select("ca", reldb.Cmp("pid", reldb.OpGe, reldb.I(2))).WithDelete(PolicyApply).WithInsert(PolicyApply),
			Project("cb", []string{"pid", "dose"}, nil),
		)
	}
	cur := src
	for step := 0; step < 5; step++ {
		view := mustGet(t, cl, cur)
		edited := view.Clone()
		rows := edited.RowsCanonical()
		r := rows[step%len(rows)]
		if err := edited.Update(edited.KeyValues(r), map[string]reldb.Value{"dose": reldb.S(fmt.Sprintf("dose-step%d", step))}); err != nil {
			t.Fatal(err)
		}
		cs := deltaFor(t, view, edited)
		want, err := fresh().Put(cur, edited)
		if err != nil {
			t.Fatal(err)
		}
		got, srcCs, err := PutDelta(cl, cur, edited, cs)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("step %d: memoized compose delta diverges from put", step)
		}
		replayed := cur.Clone()
		if err := replayed.Apply(srcCs); err != nil {
			t.Fatal(err)
		}
		if !replayed.Equal(got) {
			t.Fatalf("step %d: compose changeset does not replay", step)
		}
		cur = got
	}
	// Mutate the source outside the lens (an out-of-band UpdateSource):
	// the memo's hash key must miss and the next delta still agree.
	out := cur.Clone()
	if err := out.Update(reldb.Row{reldb.I(3)}, map[string]reldb.Value{"dose": reldb.S("oob")}); err != nil {
		t.Fatal(err)
	}
	view := mustGet(t, cl, out)
	edited := view.Clone()
	rows := edited.RowsCanonical()
	if err := edited.Update(edited.KeyValues(rows[0]), map[string]reldb.Value{"dose": reldb.S("post-oob")}); err != nil {
		t.Fatal(err)
	}
	cs := deltaFor(t, view, edited)
	want, err := fresh().Put(out, edited)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := PutDelta(cl, out, edited, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("stale memo survived an out-of-band source change")
	}
}

// TestFullPutMatchesPutDelta: the guarded O(table) reference path
// (bx.FullPut, kept for the law checkers and ablations — never on the
// update path) must agree with the native delta path on result table
// AND reported source changeset, for every lens kind including the
// join.
func TestFullPutMatchesPutDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	src := genRecords(rng, 10)
	lenses := []Lens{
		Project("d", []string{"pid", "dose"}, nil).WithDelete(PolicyApply).
			WithInsert(PolicyApply, map[string]reldb.Value{
				"med": reldb.S("dmed"), "mech": reldb.S("dmech"),
			}), // view key = source key
		Project("r", []string{"med", "mech"}, []string{"med"}), // rekeyed
		Rename("n", map[string]string{"dose": "dosage"}),
		Join("j", formulary()),
	}
	for i, l := range lenses {
		view := mustGet(t, l, src)
		edited := view.Clone()
		randomViewEdit(rng, edited, false)
		cs := deltaFor(t, view, edited)
		want, wantCs, err := FullPut(l, src, edited)
		if err != nil {
			t.Fatalf("lens %d: full put: %v", i, err)
		}
		got, gotCs, err := PutDelta(l, src, edited, cs)
		if err != nil {
			t.Fatalf("lens %d: delta: %v", i, err)
		}
		if !want.Equal(got) {
			t.Fatalf("lens %d: PutDelta diverges from FullPut", i)
		}
		// Both changesets must replay src into the same table.
		for j, scs := range []reldb.Changeset{wantCs, gotCs} {
			replayed := src.Clone()
			if err := replayed.Apply(scs); err != nil {
				t.Fatalf("lens %d cs %d: replay: %v", i, j, err)
			}
			if !replayed.Equal(got) {
				t.Fatalf("lens %d cs %d: source changeset does not replay", i, j)
			}
		}
	}
}

// TestJoinPutDeltaEquivalenceQuick is the join lens's delta property
// test: PutDelta(l, src, view, cs) ≡ Put(src, view) over randomized
// changesets. Admissible edits (source columns, and join-column
// re-points that carry the new reference values) agree on the result
// table, the reported source changeset, and PutGet; inadmissible edits
// — reference-column forgeries, join keys with no reference match,
// view-side inserts and deletes — are rejected by BOTH paths.
func TestJoinPutDeltaEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genRecords(rng, 3+rng.Intn(20))
		l := Join("v", formulary())
		view, err := l.Get(src)
		if err != nil {
			t.Logf("seed %d: get: %v", seed, err)
			return false
		}
		edited := view.Clone()
		rows := edited.RowsCanonical()
		for e := 0; e < 1+rng.Intn(4); e++ {
			if len(rows) == 0 {
				break
			}
			key := edited.KeyValues(rows[rng.Intn(len(rows))])
			if !edited.Has(key) {
				continue
			}
			var err error
			switch rng.Intn(7) {
			case 0: // source-column edit: admissible
				err = edited.Update(key, map[string]reldb.Value{"dose": reldb.S(fmt.Sprintf("d%d", rng.Intn(50)))})
			case 1: // source-column edit: admissible
				err = edited.Update(key, map[string]reldb.Value{"mech": reldb.S(fmt.Sprintf("m%d", rng.Intn(50)))})
			case 2: // reference-column forgery: rejected
				err = edited.Update(key, map[string]reldb.Value{"class": reldb.S("forged")})
			case 3: // join-column re-point WITH the new reference values: admissible
				med := medName(rng.Intn(6))
				err = edited.Update(key, map[string]reldb.Value{
					"med": reldb.S(med), "class": reldb.S("class" + med),
				})
			case 4: // join-column edit with a stale reference value: rejected
				// (unless the draw happens to keep the row's own med).
				err = edited.Update(key, map[string]reldb.Value{"med": reldb.S(medName(rng.Intn(6)))})
			case 5: // join key with no reference match: rejected
				err = edited.Update(key, map[string]reldb.Value{"med": reldb.S("ghost-med")})
			case 6: // structural edits: rejected
				if rng.Intn(2) == 0 {
					err = edited.Delete(key)
				} else {
					err = edited.Insert(reldb.Row{
						reldb.I(int64(1000 + e)), reldb.S("med1"), reldb.S("d"),
						reldb.S("m"), reldb.S("classmed1"),
					})
				}
			}
			if err != nil {
				t.Logf("seed %d: edit: %v", seed, err)
				return false
			}
		}
		cs := deltaFor(t, view, edited)
		want, wantErr := l.Put(src, edited)
		got, srcCs, gotErr := PutDelta(l, src, edited, cs)
		if (wantErr == nil) != (gotErr == nil) {
			t.Logf("seed %d: put err %v vs delta err %v", seed, wantErr, gotErr)
			return false
		}
		if wantErr != nil {
			return true // both rejected
		}
		if !want.Equal(got) {
			t.Logf("seed %d: join delta result diverges from put", seed)
			return false
		}
		replayed := src.Clone()
		if err := replayed.Apply(srcCs); err != nil {
			t.Logf("seed %d: replay: %v", seed, err)
			return false
		}
		if !replayed.Equal(got) {
			t.Logf("seed %d: join source changeset does not replay", seed)
			return false
		}
		round, err := l.Get(got)
		if err != nil {
			t.Logf("seed %d: get after delta put: %v", seed, err)
			return false
		}
		if !round.Equal(edited) {
			t.Logf("seed %d: PutGet fails along the join delta path", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLawsHoldOnCOWClones: the law checkers must pass on tables that
// share copy-on-write storage with a mutated sibling — i.e. snapshots are
// genuinely independent relations.
func TestLawsHoldOnCOWClones(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := genRecords(rng, 15)
	snapshot := src.Clone()
	// Mutate the original after cloning; the snapshot must be unaffected.
	rows := src.RowsCanonical()
	for i := 0; i < 3 && i < len(rows); i++ {
		if err := src.Update(src.KeyValues(rows[i]), map[string]reldb.Value{
			"dose": reldb.S(fmt.Sprintf("mutated%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if snapshot.Equal(src) {
		t.Fatal("snapshot saw the original's mutation")
	}
	for i, l := range lensesUnderTest() {
		if err := CheckWellBehaved(l, snapshot); err != nil {
			t.Errorf("lens %d on snapshot: %v", i, err)
		}
		if err := CheckWellBehaved(l, src); err != nil {
			t.Errorf("lens %d on mutated original: %v", i, err)
		}
	}
}
