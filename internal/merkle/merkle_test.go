package merkle

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestRootEmpty(t *testing.T) {
	if Root(nil) != (Hash{}) {
		t.Fatal("empty tree should have zero root")
	}
}

func TestRootSingleLeaf(t *testing.T) {
	l := [][]byte{[]byte("only")}
	if Root(l) != HashLeaf([]byte("only")) {
		t.Fatal("single-leaf root should be the leaf hash")
	}
}

func TestRootDeterministic(t *testing.T) {
	a := Root(leaves(7))
	b := Root(leaves(7))
	if a != b {
		t.Fatal("root not deterministic")
	}
}

func TestRootSensitiveToContentAndOrder(t *testing.T) {
	base := Root(leaves(4))
	mod := leaves(4)
	mod[2] = []byte("tampered")
	if Root(mod) == base {
		t.Fatal("root insensitive to leaf change")
	}
	swapped := leaves(4)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if Root(swapped) == base {
		t.Fatal("root insensitive to leaf order")
	}
}

func TestLeafNodeDomainSeparation(t *testing.T) {
	// An interior node's children concatenation must not be confusable
	// with a leaf: HashLeaf(x) != HashNode split of the same bytes.
	a, b := HashLeaf([]byte("a")), HashLeaf([]byte("b"))
	joined := append(append([]byte{}, a[:]...), b[:]...)
	if HashLeaf(joined) == HashNode(a, b) {
		t.Fatal("no domain separation between leaves and nodes")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 17; n++ {
		ls := leaves(n)
		root := Root(ls)
		for i := 0; i < n; i++ {
			proof, err := Prove(ls, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !Verify(root, ls[i], proof) {
				t.Fatalf("n=%d i=%d: proof rejected", n, i)
			}
		}
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	ls := leaves(8)
	root := Root(ls)
	proof, _ := Prove(ls, 3)
	if Verify(root, []byte("forged"), proof) {
		t.Fatal("forged leaf verified")
	}
}

func TestVerifyRejectsWrongProof(t *testing.T) {
	ls := leaves(8)
	root := Root(ls)
	proof, _ := Prove(ls, 3)
	if len(proof.Steps) == 0 {
		t.Fatal("expected steps")
	}
	proof.Steps[0].Sibling[0] ^= 1
	if Verify(root, ls[3], proof) {
		t.Fatal("corrupted proof verified")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	ls := leaves(5)
	proof, _ := Prove(ls, 0)
	var wrong Hash
	wrong[0] = 1
	if Verify(wrong, ls[0], proof) {
		t.Fatal("wrong root verified")
	}
}

func TestProveBadIndex(t *testing.T) {
	ls := leaves(3)
	if _, err := Prove(ls, -1); !errors.Is(err, ErrBadIndex) {
		t.Fatal(err)
	}
	if _, err := Prove(ls, 3); !errors.Is(err, ErrBadIndex) {
		t.Fatal(err)
	}
}

func TestProveVerifyQuick(t *testing.T) {
	f := func(seed uint8, extra []byte) bool {
		n := int(seed%31) + 1
		ls := leaves(n)
		if len(extra) > 0 {
			ls[int(seed)%n] = extra
		}
		root := Root(ls)
		idx := int(seed) % n
		proof, err := Prove(ls, idx)
		if err != nil {
			return false
		}
		return Verify(root, ls[idx], proof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHashTreeNodeDomainSeparation: the three hash roles (leaf, binary
// interior, search-tree interior) must never collide on identical input
// bytes — the property that blocks cross-construction splicing between
// block trees and the table row tree.
func TestHashTreeNodeDomainSeparation(t *testing.T) {
	var l, e, r Hash
	copy(l[:], []byte("left-digest-left-digest-left-dig"))
	copy(e[:], []byte("entry-digest-entry-digest-entry-"))
	copy(r[:], []byte("right-digest-right-digest-right-"))
	tn := HashTreeNode(l, e, r)
	// Same 96 bytes hashed as a leaf payload must differ.
	var payload []byte
	payload = append(payload, l[:]...)
	payload = append(payload, e[:]...)
	payload = append(payload, r[:]...)
	if tn == HashLeaf(payload) {
		t.Fatal("tree-node hash collides with leaf hash of the same bytes")
	}
	// And must differ from binary-node combinations over the same parts.
	if tn == HashNode(HashNode(l, e), r) || tn == HashNode(l, HashNode(e, r)) {
		t.Fatal("tree-node hash collides with binary-node composition")
	}
	// Argument order matters (left/entry/right are positional).
	if HashTreeNode(l, e, r) == HashTreeNode(r, e, l) {
		t.Fatal("tree-node hash ignores child order")
	}
	if HashTreeNode(l, e, r) == HashTreeNode(e, l, r) {
		t.Fatal("tree-node hash ignores entry position")
	}
}
