// Package merkle implements a SHA-256 Merkle tree with membership proofs.
// Blocks commit to their transaction list and to the contract state with
// Merkle roots, which is what makes the shared ledger tamper-evident
// (Section III-B: "immutability, auditability, and transparency").
package merkle

import (
	"bytes"
	"crypto/sha256"
	"errors"
)

// Hash is a SHA-256 digest.
type Hash = [32]byte

// leafPrefix, nodePrefix, and treePrefix domain-separate the three hash
// roles — leaf payloads, binary interior nodes, and search-tree interior
// nodes (which carry an entry of their own between two children) —
// preventing second-preimage attacks that splice one construction's
// digests into another's positions.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
	treePrefix = 0x02
)

// HashLeaf hashes a leaf payload.
func HashLeaf(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

// HashNode hashes two child digests into a parent digest.
func HashNode(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// HashTreeNode hashes one interior node of a Merkle *search* tree — a
// node that carries its own entry digest between two child subtree
// digests (the shape of reldb's row tree, where every node stores a
// row). The entry digest is expected to be a HashLeaf output and the
// child digests HashTreeNode outputs (or the all-zero hash for an empty
// subtree); the distinct treePrefix keeps all three roles unspliceable.
func HashTreeNode(left, entry, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{treePrefix})
	h.Write(left[:])
	h.Write(entry[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// Root computes the Merkle root of the leaf payloads. An empty leaf set
// has the all-zero root. Odd levels promote the unpaired node (Bitcoin-style
// duplication is avoided; promotion is proof-friendly and unambiguous).
func Root(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = HashLeaf(l)
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, HashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	// Sibling is the sibling digest at this level.
	Sibling Hash
	// Left reports whether the sibling sits to the left of the path.
	Left bool
}

// Proof is a Merkle membership proof.
type Proof struct {
	// Index is the leaf position the proof is for.
	Index int
	// Steps are the siblings from leaf level upward. Levels where the
	// path node was promoted unpaired contribute no step.
	Steps []ProofStep
}

// ErrBadIndex is returned when a proof is requested for a leaf index out
// of range.
var ErrBadIndex = errors.New("merkle: leaf index out of range")

// Prove builds a membership proof for leaves[index].
func Prove(leaves [][]byte, index int) (Proof, error) {
	if index < 0 || index >= len(leaves) {
		return Proof{}, ErrBadIndex
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = HashLeaf(l)
	}
	proof := Proof{Index: index}
	pos := index
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, HashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		if sib := pos ^ 1; sib < len(level) {
			proof.Steps = append(proof.Steps, ProofStep{Sibling: level[sib], Left: sib < pos})
		}
		pos /= 2
		level = next
	}
	return proof, nil
}

// Verify checks that leaf is a member of the tree with the given root
// according to the proof.
func Verify(root Hash, leaf []byte, proof Proof) bool {
	h := HashLeaf(leaf)
	for _, s := range proof.Steps {
		if s.Left {
			h = HashNode(s.Sibling, h)
		} else {
			h = HashNode(h, s.Sibling)
		}
	}
	return bytes.Equal(h[:], root[:])
}
