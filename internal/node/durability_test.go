package node

import (
	"context"
	"fmt"
	"testing"
	"time"

	"medshare/internal/chain"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/store"
)

// testDurableConfig is the durable-test node configuration, sharing a
// deterministic identity so restarts agree on the PoA set.
func testDurableConfig(s *store.Store) Config {
	id := identity.FromSeed("durable-node", "durable-node-seed")
	return Config{
		NetworkName:   "durable-test",
		Identity:      id,
		Engine:        consensus.NewPoA(false, id.Address()),
		Registry:      contract.NewRegistry(kvContract{}, sharereg.New()),
		BlockInterval: 2 * time.Millisecond,
		Store:         s,
	}
}

// newDurableNode builds a node against the given durable store.
func newDurableNode(t *testing.T, s *store.Store) *Node {
	t.Helper()
	n, err := New(testDurableConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// commitKVs drives count committed blocks of one kv/set each through
// TryProduce (no timer), returning after all have landed.
func commitKVs(t *testing.T, n *Node, start, count int) {
	t.Helper()
	ctx := context.Background()
	for i := start; i < start+count; i++ {
		tx := n.BuildTx("kv", "set", "", []byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i)))
		if err := n.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		if err := n.TryProduce(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestNodeCleanStopReplaysNothing is the shutdown-path regression test:
// a node stopped gracefully leaves a clean-shutdown marker and a state
// checkpoint at the head, so the next open has zero tail bytes to
// replay and the restarted node imports state instead of re-executing.
func TestNodeCleanStopReplaysNothing(t *testing.T) {
	fs := store.NewMemFS()
	s, err := store.Open(store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	n := newDurableNode(t, s)
	commitKVs(t, n, 0, 8)
	head, root := n.Store().Head(), n.State().Root()
	n.Stop() // writes checkpoint + clean marker
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if !st.CleanShutdown {
		t.Fatal("clean stop did not leave a clean-shutdown marker")
	}
	if st.TailBytes != 0 || st.TornTail {
		t.Fatalf("clean stop left %d tail bytes (torn=%v); want zero replay", st.TailBytes, st.TornTail)
	}
	cp, ok := s2.State()
	if !ok {
		t.Fatal("clean stop wrote no state checkpoint")
	}
	if cp.Height != head.Header.Height || cp.Head != head.Hash() || cp.Root != root {
		t.Fatal("checkpoint does not describe the final head")
	}

	n2 := newDurableNode(t, s2)
	gotHead, wantHead := n2.Store().Head().Hash(), head.Hash()
	if gotHead != wantHead {
		t.Fatalf("recovered head %x, want %x", gotHead[:6], wantHead[:6])
	}
	if n2.State().Root() != root {
		t.Fatal("recovered state root diverges")
	}
	if err := n2.Store().VerifyChain(); err != nil {
		t.Fatal(err)
	}
	// The recovered node keeps working and persists new blocks.
	commitKVs(t, n2, 100, 2)
	if n2.Store().Height() != head.Header.Height+2 {
		t.Fatal("recovered node did not extend the chain")
	}
	n2.Stop()
}

// TestNodeCrashRecovery kills the store mid-flight (no checkpoint, no
// clean marker) and requires the restarted node to re-execute the
// persisted chain to the identical state root, with replay protection
// intact.
func TestNodeCrashRecovery(t *testing.T) {
	fs := store.NewMemFS()
	s, err := store.Open(store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	n := newDurableNode(t, s)
	commitKVs(t, n, 0, 10)
	head, root := n.Store().Head(), n.State().Root()
	var committed []string
	for _, b := range n.Store().MainChain() {
		for _, tx := range b.Txs {
			committed = append(committed, tx.IDString())
		}
	}
	// Simulated kill -9: no Stop, no Close — reopen from the raw bytes.
	s2, err := store.Open(store.Options{FS: fs.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.State(); ok {
		t.Fatal("crash should not have left a state checkpoint")
	}

	n2 := newDurableNode(t, s2)
	gotHead, wantHead := n2.Store().Head().Hash(), head.Hash()
	if gotHead != wantHead {
		t.Fatalf("recovered head %x, want %x", gotHead[:6], wantHead[:6])
	}
	if n2.State().Root() != root {
		t.Fatal("re-executed state root diverges from pre-crash root")
	}
	for _, id := range committed {
		if err := n2.SubmitTx(n.mustTx(t, id)); err == nil {
			t.Fatalf("replayed tx %s accepted after recovery", id[:8])
		}
	}
	n2.Stop()
}

// mustTx digs a committed transaction back out of the chain by ID (test
// helper for replay-protection checks).
func (n *Node) mustTx(t *testing.T, id string) *chain.Tx {
	t.Helper()
	for _, b := range n.Store().MainChain() {
		for _, tx := range b.Txs {
			if tx.IDString() == id {
				return tx
			}
		}
	}
	t.Fatalf("tx %s not found on chain", id[:8])
	return nil
}

// TestNodeRecoveryRejectsTamperedCheckpoint corrupts the checkpoint's
// entries after the fact; recovery must detect the root mismatch and
// fall back to full re-execution, still landing on the correct root.
func TestNodeRecoveryRejectsTamperedCheckpoint(t *testing.T) {
	fs := store.NewMemFS()
	s, err := store.Open(store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	n := newDurableNode(t, s)
	commitKVs(t, n, 0, 6)
	root := n.State().Root()
	// Hand-write a checkpoint whose entries do not hash to its claimed
	// root (claims the real head/root, carries garbage state).
	head := n.Store().Head()
	err = s.Commit(func(b *store.Batch) error {
		return b.PutState(store.StateCheckpoint{
			Height:  head.Header.Height,
			Head:    head.Hash(),
			Root:    head.Header.StateRoot,
			Entries: nil, // empty state cannot hash to a non-empty root
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(store.Options{FS: fs.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n2 := newDurableNode(t, s2)
	if n2.State().Root() != root {
		t.Fatal("recovery trusted a checkpoint whose entries do not match its root")
	}
	n2.Stop()
}
