package node

import (
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"medshare/internal/store"
)

// TestKill9Recovery is the end-to-end durability smoke test over a real
// directory: it re-execs the test binary as a child that opens a
// Dir-backed store and commits blocks in a tight loop, SIGKILLs it
// mid-commit, then reopens the directory and requires the node to
// recover a verified chain and keep committing. This is the process
// boundary the in-memory crash models cannot cross — real files, a real
// kernel page cache, and a genuinely uncooperative exit.
func TestKill9Recovery(t *testing.T) {
	if os.Getenv("MEDSHARE_KILL9_DIR") != "" {
		kill9Child(t)
		return
	}
	if testing.Short() {
		t.Skip("subprocess kill -9 test skipped in -short mode")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestKill9Recovery$", "-test.v")
	cmd.Env = append(os.Environ(), "MEDSHARE_KILL9_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the child write a meaningful history, then kill it dead.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("child never wrote enough log to be worth killing")
		}
		var total int64
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if info, err := e.Info(); err == nil {
				total += info.Size()
			}
		}
		if total >= 8<<10 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // reaps the child; the kill makes this an error by design

	// Recovery: reopen the very same directory the child was killed over.
	s, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	st := s.Stats()
	if st.CleanShutdown {
		t.Fatal("kill -9 left a clean-shutdown marker")
	}
	n, err := newRecoveredNode(s)
	if err != nil {
		t.Fatalf("node recovery after kill -9: %v", err)
	}
	if err := n.Store().VerifyChain(); err != nil {
		t.Fatalf("recovered chain fails verification: %v", err)
	}
	head := n.Store().Head()
	if head.Header.Height == 0 {
		t.Fatal("recovered nothing — the child's commits all vanished")
	}
	if n.State().Root() != head.Header.StateRoot {
		t.Fatal("recovered state root does not match the recovered head")
	}
	t.Logf("recovered height %d after kill -9 (%d tail bytes truncated, torn=%v)",
		head.Header.Height, st.TailBytes, st.TornTail)

	// The recovered node keeps working, then stops cleanly.
	commitKVs(t, n, 100000, 3)
	n.Stop()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Stats().CleanShutdown {
		t.Fatal("post-recovery stop did not leave a clean-shutdown marker")
	}
}

// kill9Child is the re-exec'd side: commit blocks forever until killed.
func kill9Child(t *testing.T) {
	dir := os.Getenv("MEDSHARE_KILL9_DIR")
	if _, err := os.Stat(filepath.Dir(dir)); err != nil {
		t.Fatalf("bad kill9 dir: %v", err)
	}
	s, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	n, err := newRecoveredNode(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		commitKVs(t, n, i*4, 4)
	}
}
