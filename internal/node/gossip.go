package node

import (
	"encoding/json"

	"medshare/internal/chain"
	"medshare/internal/p2p"
)

// gossipTx broadcasts a transaction to the network.
func (n *Node) gossipTx(tx *chain.Tx) {
	if n.cfg.Transport == nil {
		return
	}
	payload, err := json.Marshal(tx)
	if err != nil {
		return
	}
	_ = n.cfg.Transport.Broadcast(p2p.Message{Kind: p2p.KindTx, Payload: payload})
}

// gossipTxBatch broadcasts a group of transactions in one message,
// amortizing the per-broadcast overhead across the whole batch.
func (n *Node) gossipTxBatch(txs []*chain.Tx) {
	if n.cfg.Transport == nil {
		return
	}
	payload, err := json.Marshal(txs)
	if err != nil {
		return
	}
	_ = n.cfg.Transport.Broadcast(p2p.Message{Kind: p2p.KindTxBatch, Payload: payload})
}

// gossipBlock broadcasts a sealed block to the network.
func (n *Node) gossipBlock(b *chain.Block) {
	if n.cfg.Transport == nil {
		return
	}
	payload, err := json.Marshal(b)
	if err != nil {
		return
	}
	_ = n.cfg.Transport.Broadcast(p2p.Message{Kind: p2p.KindBlock, Payload: payload})
}

// handleGossip processes incoming network messages.
func (n *Node) handleGossip(msg p2p.Message) {
	switch msg.Kind {
	case p2p.KindTx:
		var tx chain.Tx
		if err := json.Unmarshal(msg.Payload, &tx); err != nil {
			return
		}
		if err := tx.Verify(); err != nil {
			return
		}
		n.mu.Lock()
		known := n.committedTxs[tx.IDString()]
		if !known {
			n.mempool.add(&tx)
		}
		n.mu.Unlock()
	case p2p.KindTxBatch:
		var txs []*chain.Tx
		if err := json.Unmarshal(msg.Payload, &txs); err != nil {
			return
		}
		n.mu.Lock()
		for _, tx := range txs {
			if tx == nil || tx.Verify() != nil {
				continue
			}
			if !n.committedTxs[tx.IDString()] {
				n.mempool.add(tx)
			}
		}
		n.mu.Unlock()
	case p2p.KindBlock:
		var b chain.Block
		if err := json.Unmarshal(msg.Payload, &b); err != nil {
			return
		}
		// Errors (duplicate, unknown parent, bad proof) are expected under
		// gossip and simply ignored; the block will be refetched by sync
		// if it mattered.
		_ = n.commitBlock(&b)
	}
}

// ReceiveBlock lets tests and the sync layer inject a block directly.
func (n *Node) ReceiveBlock(b *chain.Block) error { return n.commitBlock(b) }
