package node

import (
	"errors"
	"fmt"

	"medshare/internal/chain"
	"medshare/internal/contract"
	"medshare/internal/store"
)

// recoverFromStore rebuilds the block tree and world state from the
// durable log. Every recovered artifact is verified before it is
// trusted: blocks re-pass structure and linkage checks through the
// normal Add path, an imported state checkpoint must hash to both its
// own recorded root and the main chain's header root at that height,
// and replayed blocks must reproduce their declared state roots. Any
// verification failure falls back to the next-cheaper strategy, ending
// at a full re-execution from genesis — recovery degrades in cost,
// never in correctness.
func (n *Node) recoverFromStore(s *store.Store) error {
	for _, b := range s.Blocks() {
		if b.Header.Height == 0 {
			continue // genesis is derived from NetworkName, never stored
		}
		if _, err := n.store.Add(b); err != nil {
			// Duplicates cannot happen on a fresh tree, but a torn tail
			// can orphan a block whose parent group was lost; skipping it
			// leaves a consistent prefix, which data.sync heals later.
			if errors.Is(err, chain.ErrDuplicateBlock) || errors.Is(err, chain.ErrBadLinkage) {
				continue
			}
			return err
		}
	}
	mc := n.store.MainChain()

	// Fast path: import the clean-shutdown checkpoint when it still names
	// a main-chain block and its entries hash back to the recorded root.
	start := uint64(1)
	if cp, ok := s.State(); ok && cp.Height < uint64(len(mc)) {
		at := mc[cp.Height]
		if at.Hash() == cp.Head && at.Header.StateRoot == cp.Root {
			n.state.Import(cp.Entries)
			if n.state.Root() == cp.Root {
				start = cp.Height + 1
				n.mu.Lock()
				for _, b := range mc[:start] {
					for _, tx := range b.Txs {
						// Replay protection survives the restart even though
						// pre-checkpoint receipts are not retained.
						n.committedTxs[tx.IDString()] = true
					}
				}
				n.mu.Unlock()
			} else {
				n.state.Reset()
			}
		}
	}

	for _, b := range mc[start:] {
		if err := n.replayBlock(b); err != nil {
			// The checkpoint (or a mid-replay state) diverged; pay for a
			// full re-execution from genesis before giving up.
			n.state.Reset()
			n.mu.Lock()
			n.committedTxs = make(map[string]bool)
			n.receipts = make(map[string]contract.Receipt)
			n.mu.Unlock()
			for _, b2 := range mc[1:] {
				if err2 := n.replayBlock(b2); err2 != nil {
					return fmt.Errorf("full replay after checkpoint mismatch (%v): %w", err, err2)
				}
			}
			break
		}
	}
	return nil
}

// replayBlock is the recovery-time variant of applyBlock: it executes b
// against the live state and records receipts and replay protection,
// but returns a root mismatch as an error (recovery has a fallback)
// instead of panicking, and publishes no events (nothing subscribes
// before New returns).
func (n *Node) replayBlock(b *chain.Block) error {
	var receipts []contract.Receipt
	n.executeOn(n.state, b, func(_ int, r contract.Receipt) {
		receipts = append(receipts, r)
	})
	if got := n.state.Root(); got != b.Header.StateRoot {
		return fmt.Errorf("node: recovered state root mismatch at height %d: got %x want %x",
			b.Header.Height, got[:6], b.Header.StateRoot[:6])
	}
	n.mu.Lock()
	for i, tx := range b.Txs {
		id := tx.IDString()
		n.committedTxs[id] = true
		n.receipts[id] = receipts[i]
	}
	n.mu.Unlock()
	return nil
}
