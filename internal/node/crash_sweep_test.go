package node

import (
	"testing"

	"medshare/internal/store"
)

// TestCrashPointSweep is the durability acceptance test: it drives a
// real commit history (two batches of blocks with a state checkpoint
// between them) through a crash-point injection filesystem, then walks
// the injected crash offsets — every write boundary and a stride of
// mid-write offsets under the torn-write model, every sync point under
// the drop-unsynced model, and a stride of single-bit flips — and
// requires every survivor image to recover to a verified prefix of the
// original chain or to fail with a detected error. A recovery that
// succeeds but lands on a head or state root the original history never
// produced is silent corruption and fails the sweep immediately; a
// panic anywhere fails the test runner itself. Zero of either is the
// acceptance bar.
func TestCrashPointSweep(t *testing.T) {
	ffs := store.NewFaultFS()
	s, err := store.Open(store.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	n := newDurableNode(t, s)
	commitKVs(t, n, 0, 6)
	if err := n.WriteCheckpoint(false); err != nil {
		t.Fatal(err)
	}
	commitKVs(t, n, 6, 6)

	// The ground truth: block hash and state root at every height.
	mc := n.Store().MainChain()
	type truth struct{ head, root [32]byte }
	want := make([]truth, len(mc))
	for i, b := range mc {
		want[i] = truth{head: b.Hash(), root: b.Header.StateRoot}
	}
	headHeight := uint64(len(mc) - 1)

	total := ffs.TotalBytes()
	if total == 0 {
		t.Fatal("no bytes journaled")
	}

	// probe recovers one survivor image and classifies the outcome:
	// verified (recovered to an original prefix), detected (open or
	// recovery returned an error), or — fatally — silent divergence.
	var verified, detected, full int
	probe := func(off int64, mode store.CrashMode, label string) {
		t.Helper()
		fs := ffs.SurvivorAt(off, mode)
		s2, err := store.Open(store.Options{FS: fs})
		if err != nil {
			detected++
			return
		}
		defer s2.Close()
		n2, err := newRecoveredNode(s2)
		if err != nil {
			detected++
			return
		}
		defer n2.Stop()
		h := n2.Store().Head()
		height := h.Header.Height
		if height > headHeight {
			t.Fatalf("%s@%d: recovered height %d beyond original %d", label, off, height, headHeight)
		}
		got := h.Hash()
		if got != want[height].head {
			t.Fatalf("%s@%d: recovered head at height %d is not the original block (%x != %x)",
				label, off, height, got[:6], want[height].head[:6])
		}
		if root := n2.State().Root(); root != want[height].root {
			t.Fatalf("%s@%d: silent state divergence at height %d (%x != %x)",
				label, off, height, root[:6], want[height].root[:6])
		}
		verified++
		if height == headHeight {
			full++
		}
	}

	// Torn-write model: one probe per write boundary plus a byte stride
	// through every write's interior.
	for _, off := range ffs.WriteBoundaries() {
		probe(off, store.CrashTorn, "torn")
	}
	stride := total/128 + 1
	for off := int64(0); off <= total; off += stride {
		probe(off, store.CrashTorn, "torn")
	}
	// Adversarial page cache: everything after the last sync is gone.
	for _, off := range ffs.SyncPoints() {
		probe(off, store.CrashDropUnsynced, "drop-unsynced")
	}
	for off := int64(0); off <= total; off += stride {
		probe(off, store.CrashDropUnsynced, "drop-unsynced")
	}
	// Silent media corruption: one bit flipped somewhere in the log.
	for off := int64(0); off < total; off += stride {
		probe(off, store.CrashBitFlip, "bitflip")
	}

	t.Logf("sweep: %d probes (%d verified, %d detected, %d full recoveries) over %d journal bytes",
		verified+detected, verified, detected, full, total)
	if verified == 0 {
		t.Fatal("no probe recovered a verified state — the sweep proved nothing")
	}
	if full == 0 {
		t.Fatal("no probe recovered the full chain — even crash-at-end lost data")
	}
}

// newRecoveredNode is newDurableNode without the test fataling: the
// sweep treats a recovery error as detected corruption, not a failure.
func newRecoveredNode(s *store.Store) (*Node, error) {
	return New(testDurableConfig(s))
}
