package node

import (
	"sync"

	"medshare/internal/contract"
)

// eventBus fans committed contract events out to subscribers. Delivery is
// at-least-once (reorganizations may replay events) and lossy for slow
// subscribers: a subscriber whose buffer is full misses events rather than
// stalling consensus. The sharing layer is built to resynchronize from
// contract state, so missed notifications are recoverable.
type eventBus struct {
	mu   sync.Mutex
	subs map[int]chan contract.Event
	next int
}

func newEventBus() *eventBus {
	return &eventBus{subs: make(map[int]chan contract.Event)}
}

func (b *eventBus) subscribe(buffer int) (<-chan contract.Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan contract.Event, buffer)
	b.mu.Lock()
	id := b.next
	b.next++
	b.subs[id] = ch
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

func (b *eventBus) publish(ev contract.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // drop for slow subscriber
		}
	}
}
