// Package node ties the ledger substrates together into a running
// blockchain node (the "Blockchain" component of Fig. 2): it keeps a
// mempool of signed contract transactions, produces blocks under a
// pluggable consensus engine, re-executes every committed block's
// transactions deterministically against the versioned state store, checks
// state-root agreement, and delivers contract events to subscribers (the
// notifications of Fig. 4 step 4).
package node

import (
	"context"
	"fmt"
	"sync"
	"time"

	"medshare/internal/chain"
	"medshare/internal/clock"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/identity"
	"medshare/internal/p2p"
	"medshare/internal/statedb"
	"medshare/internal/store"
)

// Config configures a Node.
type Config struct {
	// NetworkName seeds the deterministic genesis block; all nodes of one
	// network must agree on it.
	NetworkName string
	// Identity signs produced blocks (and is the default caller for
	// locally built transactions).
	Identity *identity.Identity
	// Engine is the consensus engine (PoW or PoA).
	Engine consensus.Engine
	// Registry holds the installed contracts; identical on every node.
	Registry *contract.Registry
	// BlockInterval is the target time between produced blocks.
	BlockInterval time.Duration
	// MaxTxPerBlock bounds block size (0 means 256).
	MaxTxPerBlock int
	// GroupCommitWindow, when non-zero, makes block production
	// demand-driven: a submitted transaction kicks the producer, which
	// waits this long for more arrivals to accumulate and then produces
	// one block for the whole batch — amortizing consensus, sealing, and
	// state-root work across every transaction that arrived in the
	// window, with BlockInterval demoted to the idle fallback. Negative
	// produces immediately on the first kick (minimum latency, batching
	// only what arrived in the same instant). Zero keeps the pure
	// interval-paced producer.
	GroupCommitWindow time.Duration
	// ProduceEmptyBlocks keeps producing blocks with no transactions
	// (like Ethereum); when false the producer skips empty rounds.
	ProduceEmptyBlocks bool
	// Clock abstracts time; nil means the wall clock.
	Clock clock.Clock
	// Transport connects the node to its network for gossip; nil runs the
	// node standalone.
	Transport p2p.Transport
	// Store, when non-nil, makes the node durable: New recovers the block
	// tree and world state from it (verifying every recovered root), every
	// subsequently accepted block is appended to its log, and Stop writes
	// a clean-shutdown state checkpoint so the next start replays nothing.
	Store *store.Store
}

// Node is a single blockchain participant.
type Node struct {
	cfg   Config
	store *chain.Store
	state *statedb.Store

	mu       sync.Mutex
	mempool  *mempool
	receipts map[string]contract.Receipt
	// txWaiters get closed/sent when a given tx commits.
	txWaiters map[string][]chan contract.Receipt
	// committedTxs prevents replay: a tx ID may commit only once.
	committedTxs map[string]bool
	nonce        uint64

	events *eventBus

	// kickCh (capacity 1) wakes the producer when transactions arrive
	// and GroupCommitWindow is enabled; a pending token covers any
	// number of submissions.
	kickCh chan struct{}

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// New creates a node at genesis.
func New(cfg Config) (*Node, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("node: consensus engine is required")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("node: contract registry is required")
	}
	if cfg.Identity == nil {
		return nil, fmt.Errorf("node: identity is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.MaxTxPerBlock <= 0 {
		cfg.MaxTxPerBlock = 256
	}
	if cfg.BlockInterval <= 0 {
		cfg.BlockInterval = 50 * time.Millisecond
	}
	n := &Node{
		cfg:          cfg,
		store:        chain.NewStore(chain.Genesis(cfg.NetworkName)),
		state:        statedb.NewStore(),
		mempool:      newMempool(),
		receipts:     make(map[string]contract.Receipt),
		txWaiters:    make(map[string][]chan contract.Receipt),
		committedTxs: make(map[string]bool),
		events:       newEventBus(),
		kickCh:       make(chan struct{}, 1),
		stopped:      make(chan struct{}),
	}
	if cfg.Store != nil {
		// Recover first, then register the persist hook: blocks re-added
		// during recovery must not be re-appended to the log.
		if err := n.recoverFromStore(cfg.Store); err != nil {
			return nil, fmt.Errorf("node: recovery: %w", err)
		}
		n.store.SetPersist(func(b *chain.Block) {
			// A write failure poisons the durable store (Commit keeps
			// returning an error) but the node stays live from memory;
			// the operator sees it on the next checkpoint attempt.
			_ = cfg.Store.Commit(func(bt *store.Batch) error {
				return bt.PutBlock(b)
			})
		})
	}
	if cfg.Transport != nil {
		cfg.Transport.Handle(n.handleGossip)
	}
	return n, nil
}

// Address returns the node identity's address.
func (n *Node) Address() identity.Address { return n.cfg.Identity.Address() }

// Identity returns the node's signing identity.
func (n *Node) Identity() *identity.Identity { return n.cfg.Identity }

// Store exposes the block store (read-only use expected).
func (n *Node) Store() *chain.Store { return n.store }

// State exposes the world state (read-only use expected).
func (n *Node) State() *statedb.Store { return n.state }

// Registry returns the installed contract registry.
func (n *Node) Registry() *contract.Registry { return n.cfg.Registry }

// NextNonce returns a fresh nonce for transactions built by this node.
func (n *Node) NextNonce() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nonce++
	return n.nonce
}

// Start launches the block-production loop. It returns immediately; call
// Stop (or cancel ctx) to halt.
func (n *Node) Start(ctx context.Context) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.produceLoop(ctx)
	}()
}

// Stop halts block production and waits for the loop to exit. Durable
// nodes then write a state checkpoint sealed with a clean-shutdown
// marker, so the next Open replays zero WAL bytes and imports the
// state instead of re-executing the chain.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopped) })
	n.wg.Wait()
	if n.cfg.Store != nil {
		// Best-effort: a poisoned store already reported its write error.
		_ = n.WriteCheckpoint(true)
	}
}

// WriteCheckpoint persists the current head and full world state to the
// durable store; clean additionally seals it as a graceful shutdown.
func (n *Node) WriteCheckpoint(clean bool) error {
	if n.cfg.Store == nil {
		return nil
	}
	head := n.store.Head()
	return n.cfg.Store.Commit(func(b *store.Batch) error {
		if err := b.PutState(store.StateCheckpoint{
			Height:  head.Header.Height,
			Head:    head.Hash(),
			Root:    n.state.Root(),
			Entries: n.state.Export(),
		}); err != nil {
			return err
		}
		if clean {
			b.MarkClean()
		}
		return nil
	})
}

func (n *Node) produceLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.stopped:
			return
		case <-n.cfg.Clock.After(n.cfg.BlockInterval):
		case <-n.kickCh:
			// Demand-driven production: hold the accumulation window so
			// submissions arriving on its heels share the block, then
			// produce without waiting out the interval.
			if w := n.cfg.GroupCommitWindow; w > 0 {
				select {
				case <-ctx.Done():
					return
				case <-n.stopped:
					return
				case <-n.cfg.Clock.After(w):
				}
			}
		}
		if err := n.TryProduce(ctx); err != nil &&
			err != errNotOurTurn && err != errNothingToDo {
			// Production errors are not fatal; the next round retries.
			continue
		}
	}
}

// kick nudges the producer after a submission when demand-driven
// production is enabled. Non-blocking: a pending kick already covers
// this arrival.
func (n *Node) kick() {
	if n.cfg.GroupCommitWindow == 0 {
		return
	}
	select {
	case n.kickCh <- struct{}{}:
	default:
	}
}

var (
	errNotOurTurn   = fmt.Errorf("node: not our turn to propose")
	errNothingToDo  = fmt.Errorf("node: no transactions to include")
	errStaleProduce = fmt.Errorf("node: head moved during production")
)

// TryProduce attempts to produce, execute, and broadcast one block on top
// of the current head. It is also the hook tests and benchmarks use to
// drive the chain without a timer.
func (n *Node) TryProduce(ctx context.Context) error {
	head := n.store.Head()
	height := head.Header.Height + 1
	if !n.cfg.Engine.MayPropose(n.Address(), height) {
		return errNotOurTurn
	}
	txs := n.pickTxs()
	if len(txs) == 0 && !n.cfg.ProduceEmptyBlocks {
		return errNothingToDo
	}

	b := &chain.Block{
		Header: chain.Header{
			Height:         height,
			PrevHash:       head.Hash(),
			TimestampMicro: n.cfg.Clock.Now().UnixMicro(),
			Proposer:       n.Address(),
		},
		Txs: txs,
	}
	b.Header.TxRoot = b.ComputeTxRoot()
	if err := n.cfg.Engine.Prepare(&b.Header); err != nil {
		return err
	}

	// Execute against a throwaway replica to learn the post-state root
	// without touching the live state.
	staging := n.cloneState()
	n.executeOn(staging, b, nil)
	b.Header.StateRoot = staging.Root()

	if err := n.cfg.Engine.Seal(ctx, b, n.cfg.Identity); err != nil {
		return err
	}
	if n.store.Head().Hash() != head.Hash() {
		// Another block landed while sealing; drop ours, txs stay pooled.
		return errStaleProduce
	}
	if err := n.commitBlock(b); err != nil {
		return err
	}
	n.gossipBlock(b)
	return nil
}

// SubmitTx validates a transaction, admits it to the mempool, and gossips
// it to the network.
func (n *Node) SubmitTx(tx *chain.Tx) error {
	if err := tx.Verify(); err != nil {
		return err
	}
	id := tx.IDString()
	n.mu.Lock()
	if n.committedTxs[id] {
		n.mu.Unlock()
		return fmt.Errorf("node: tx %s already committed", id[:8])
	}
	added := n.mempool.add(tx)
	n.mu.Unlock()
	if added {
		n.gossipTx(tx)
		n.kick()
	}
	return nil
}

// SubmitTxBatch validates and admits a group of transactions in one
// mempool pass, gossips them as a single batch message, and kicks the
// producer once — the group-commit entry point: callers staging many
// independent share updates hand them over together so one block (and
// one gossip broadcast) carries them all. Any transaction failing
// signature verification fails the whole batch before admission;
// already-committed or duplicate transactions are skipped silently (the
// per-tx receipt is the arbiter callers wait on).
func (n *Node) SubmitTxBatch(txs []*chain.Tx) error {
	for _, tx := range txs {
		if err := tx.Verify(); err != nil {
			return err
		}
	}
	fresh := make([]*chain.Tx, 0, len(txs))
	n.mu.Lock()
	for _, tx := range txs {
		if n.committedTxs[tx.IDString()] {
			continue
		}
		if n.mempool.add(tx) {
			fresh = append(fresh, tx)
		}
	}
	n.mu.Unlock()
	if len(fresh) > 0 {
		n.gossipTxBatch(fresh)
		n.kick()
	}
	return nil
}

// BuildTx constructs and signs a transaction from this node's identity.
func (n *Node) BuildTx(contractName, fn string, shareID string, args ...[]byte) *chain.Tx {
	tx := &chain.Tx{
		Contract:       contractName,
		Fn:             fn,
		Args:           args,
		ShareID:        shareID,
		Nonce:          n.NextNonce(),
		TimestampMicro: n.cfg.Clock.Now().UnixMicro(),
	}
	tx.Sign(n.cfg.Identity)
	return tx
}

// WaitTx blocks until the transaction commits (in a main-chain block) and
// returns its receipt.
func (n *Node) WaitTx(ctx context.Context, txID string) (contract.Receipt, error) {
	n.mu.Lock()
	if r, ok := n.receipts[txID]; ok {
		n.mu.Unlock()
		return r, nil
	}
	ch := make(chan contract.Receipt, 1)
	n.txWaiters[txID] = append(n.txWaiters[txID], ch)
	n.mu.Unlock()
	select {
	case <-ctx.Done():
		return contract.Receipt{}, ctx.Err()
	case r := <-ch:
		return r, nil
	}
}

// Receipt returns the receipt of a committed transaction.
func (n *Node) Receipt(txID string) (contract.Receipt, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.receipts[txID]
	return r, ok
}

// Query runs a read-only contract invocation against the current state.
func (n *Node) Query(contractName, fn string, args ...[]byte) ([]byte, error) {
	return contract.Query(n.cfg.Registry, n.state, contractName, fn, n.Address(), args...)
}

// Subscribe registers an event listener; cancel releases it. Slow
// subscribers never block the node: the channel is buffered and overflow
// events are dropped for that subscriber.
func (n *Node) Subscribe(buffer int) (<-chan contract.Event, func()) {
	return n.events.subscribe(buffer)
}

// PendingTxs reports the current mempool size.
func (n *Node) PendingTxs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mempool.len()
}

// pickTxs selects up to MaxTxPerBlock transactions, enforcing the paper's
// rule of at most one transaction per share per block.
func (n *Node) pickTxs() []*chain.Tx {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mempool.pick(n.cfg.MaxTxPerBlock, func(tx *chain.Tx) bool {
		return !n.committedTxs[tx.IDString()]
	})
}
