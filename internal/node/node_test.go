package node

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"medshare/internal/chain"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/identity"
	"medshare/internal/p2p"
)

// kvContract is a trivial contract for node-level tests.
type kvContract struct{}

func (kvContract) Name() string { return "kv" }

func (kvContract) Invoke(stub contract.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "set":
		stub.PutState("kv/"+string(args[0]), args[1])
		stub.EmitEvent("set", args[0])
		return nil, nil
	case "fail":
		return nil, fmt.Errorf("kv: deliberate failure")
	default:
		return nil, contract.ErrUnknownFunction
	}
}

func newTestNode(t *testing.T) *Node {
	t.Helper()
	id := identity.MustNew("node")
	n, err := New(Config{
		NetworkName:   "test",
		Identity:      id,
		Engine:        consensus.NewPoA(false, id.Address()),
		Registry:      contract.NewRegistry(kvContract{}, sharereg.New()),
		BlockInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	id := identity.MustNew("n")
	if _, err := New(Config{Identity: id, Registry: contract.NewRegistry()}); err == nil {
		t.Fatal("missing engine accepted")
	}
	if _, err := New(Config{Identity: id, Engine: consensus.NewPoW(1)}); err == nil {
		t.Fatal("missing registry accepted")
	}
	if _, err := New(Config{Engine: consensus.NewPoW(1), Registry: contract.NewRegistry()}); err == nil {
		t.Fatal("missing identity accepted")
	}
}

func TestTxLifecycle(t *testing.T) {
	n := newTestNode(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.Start(ctx)
	defer n.Stop()

	tx := n.BuildTx("kv", "set", "", []byte("k"), []byte("v"))
	if err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	rcpt, err := n.WaitTx(ctx, tx.IDString())
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.OK {
		t.Fatalf("receipt = %+v", rcpt)
	}
	if v, _, ok := n.State().Get("kv/k"); !ok || string(v) != "v" {
		t.Fatal("state not applied")
	}
	if n.Store().Height() == 0 {
		t.Fatal("no block produced")
	}
	// Receipt is retrievable after the fact.
	if r2, ok := n.Receipt(tx.IDString()); !ok || !r2.OK {
		t.Fatal("receipt lookup failed")
	}
}

func TestFailedTxHasReceiptAndNoState(t *testing.T) {
	n := newTestNode(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.Start(ctx)
	defer n.Stop()

	tx := n.BuildTx("kv", "fail", "")
	if err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	rcpt, err := n.WaitTx(ctx, tx.IDString())
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.OK || rcpt.Err == "" {
		t.Fatalf("receipt = %+v", rcpt)
	}
}

func TestSubmitRejectsUnsigned(t *testing.T) {
	n := newTestNode(t)
	if err := n.SubmitTx(&chain.Tx{Contract: "kv", Fn: "set"}); err == nil {
		t.Fatal("unsigned tx accepted")
	}
}

func TestReplayRejected(t *testing.T) {
	n := newTestNode(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.Start(ctx)
	defer n.Stop()

	tx := n.BuildTx("kv", "set", "", []byte("k"), []byte("v"))
	if err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := n.WaitTx(ctx, tx.IDString()); err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitTx(tx); err == nil {
		t.Fatal("replayed tx accepted")
	}
}

func TestEventsDelivered(t *testing.T) {
	n := newTestNode(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events, cancelSub := n.Subscribe(16)
	defer cancelSub()
	n.Start(ctx)
	defer n.Stop()

	tx := n.BuildTx("kv", "set", "", []byte("k"), []byte("v"))
	_ = n.SubmitTx(tx)
	if _, err := n.WaitTx(ctx, tx.IDString()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Contract != "kv" || ev.Name != "set" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event not delivered")
	}
}

func TestOneTxPerSharePerBlock(t *testing.T) {
	n := newTestNode(t)
	// Submit three txs on the same share plus one on another share, then
	// drive production manually and inspect block composition.
	var sameShare []*chain.Tx
	for i := 0; i < 3; i++ {
		tx := n.BuildTx("kv", "set", "shareA", []byte(fmt.Sprintf("a%d", i)), []byte("v"))
		sameShare = append(sameShare, tx)
		if err := n.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	other := n.BuildTx("kv", "set", "shareB", []byte("b"), []byte("v"))
	if err := n.SubmitTx(other); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := n.TryProduce(ctx); err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
	}
	blocks := n.Store().MainChain()
	if len(blocks) != 4 { // genesis + 3
		t.Fatalf("blocks = %d", len(blocks))
	}
	for h, b := range blocks {
		if h == 0 {
			continue
		}
		shares := map[string]int{}
		for _, tx := range b.Txs {
			if tx.ShareID != "" {
				shares[tx.ShareID]++
			}
		}
		for s, c := range shares {
			if c > 1 {
				t.Fatalf("block %d carries %d txs on share %s", h, c, s)
			}
		}
	}
	// Block 1 should carry shareA(first) and shareB together.
	if len(blocks[1].Txs) != 2 {
		t.Fatalf("block 1 txs = %d, want 2 (one per share)", len(blocks[1].Txs))
	}
	// All four transactions committed in the end.
	for _, tx := range append(sameShare, other) {
		if _, ok := n.Receipt(tx.IDString()); !ok {
			t.Fatalf("tx %s never committed", tx.IDString()[:8])
		}
	}
}

func TestQueryReflectsState(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	// Use the sharereg contract through the real pipeline.
	ra, _ := json.Marshal(sharereg.RegisterArgs{
		ID:        "s1",
		Peers:     []identity.Address{n.Address(), identity.MustNew("other").Address()},
		Authority: n.Address(),
		Columns:   []string{"c"},
		WritePerm: map[string][]identity.Address{"c": {n.Address()}},
	})
	tx := n.BuildTx(sharereg.ContractName, sharereg.FnRegister, "s1", ra)
	if err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if err := n.TryProduce(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := n.Query(sharereg.ContractName, sharereg.FnGet, []byte("s1"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sharereg.DecodeMeta(out)
	if err != nil || m.ID != "s1" {
		t.Fatalf("meta = %v, %v", m, err)
	}
}

func TestEmptyBlocksPolicy(t *testing.T) {
	n := newTestNode(t)
	if err := n.TryProduce(context.Background()); err != errNothingToDo {
		t.Fatalf("want errNothingToDo, got %v", err)
	}

	id := identity.MustNew("e")
	n2, err := New(Config{
		NetworkName:        "test",
		Identity:           id,
		Engine:             consensus.NewPoA(false, id.Address()),
		Registry:           contract.NewRegistry(),
		ProduceEmptyBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.TryProduce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n2.Store().Height() != 1 {
		t.Fatal("empty block not produced")
	}
}

func TestMultiNodeGossipConvergence(t *testing.T) {
	mem := p2p.NewMemNetwork()
	reg := func() *contract.Registry { return contract.NewRegistry(kvContract{}) }
	ids := []*identity.Identity{identity.MustNew("n0"), identity.MustNew("n1"), identity.MustNew("n2")}
	addrs := []identity.Address{ids[0].Address(), ids[1].Address(), ids[2].Address()}

	var nodes []*Node
	for i, id := range ids {
		n, err := New(Config{
			NetworkName:   "multi",
			Identity:      id,
			Engine:        consensus.NewPoA(true, addrs...),
			Registry:      reg(),
			BlockInterval: 2 * time.Millisecond,
			Transport:     mem.Endpoint(fmt.Sprintf("node-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, n := range nodes {
		n.Start(ctx)
		defer n.Stop()
	}

	// Submit through different nodes; all must converge.
	for i := 0; i < 6; i++ {
		n := nodes[i%3]
		tx := n.BuildTx("kv", "set", "", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		tx.Sign(ids[i%3])
		if err := n.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		if _, err := n.WaitTx(ctx, tx.IDString()); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}

	// Wait until every node has all six keys and identical roots.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		allSame := true
		root0 := nodes[0].State().Root()
		for _, n := range nodes[1:] {
			if n.State().Root() != root0 {
				allSame = false
			}
		}
		count := 0
		nodes[0].State().Range("kv/", func(string, []byte) bool { count++; return true })
		if allSame && count == 6 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("nodes did not converge")
}

func TestPoWNodeMinesAndValidates(t *testing.T) {
	mem := p2p.NewMemNetwork()
	miner := identity.MustNew("miner")
	watcher := identity.MustNew("watcher")
	mk := func(id *identity.Identity, ep string) *Node {
		n, err := New(Config{
			NetworkName:   "pow",
			Identity:      id,
			Engine:        consensus.NewPoW(6),
			Registry:      contract.NewRegistry(kvContract{}),
			BlockInterval: 2 * time.Millisecond,
			Transport:     mem.Endpoint(ep),
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	m := mk(miner, "miner")
	w := mk(watcher, "watcher")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	m.Start(ctx) // only the miner produces
	defer m.Stop()

	tx := m.BuildTx("kv", "set", "", []byte("pow"), []byte("works"))
	if err := m.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitTx(ctx, tx.IDString()); err != nil {
		t.Fatal(err)
	}
	// The watcher receives the mined block via gossip and re-executes.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v, _, ok := w.State().Get("kv/pow"); ok && string(v) == "works" {
			if w.State().Root() != m.State().Root() {
				t.Fatal("roots diverge")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("watcher never received the mined block")
}

func TestRejectBlockWithWrongStateRoot(t *testing.T) {
	n := newTestNode(t)
	// Hand-craft a block whose declared state root is wrong.
	g := n.Store().Genesis()
	tx := n.BuildTx("kv", "set", "", []byte("x"), []byte("y"))
	b := &chain.Block{
		Header: chain.Header{
			Height:         1,
			PrevHash:       g.Hash(),
			TimestampMicro: time.Now().UnixMicro(),
		},
		Txs: []*chain.Tx{tx},
	}
	b.Header.TxRoot = b.ComputeTxRoot()
	// Deliberately wrong state root.
	b.Header.StateRoot[0] = 0xde
	if err := n.cfg.Engine.Seal(context.Background(), b, n.cfg.Identity); err != nil {
		t.Fatal(err)
	}
	if err := n.ReceiveBlock(b); err == nil {
		t.Fatal("block with wrong state root accepted")
	}
	if n.Store().Height() != 0 {
		t.Fatal("bad block extended the chain")
	}
}

func TestMempoolHelpers(t *testing.T) {
	m := newMempool()
	id := identity.MustNew("s")
	mk := func(share string, nonce uint64) *chain.Tx {
		tx := &chain.Tx{Contract: "kv", Fn: "set", ShareID: share, Nonce: nonce}
		tx.Sign(id)
		return tx
	}
	t1, t2, t3 := mk("a", 1), mk("a", 2), mk("b", 3)
	if !m.add(t1) || !m.add(t2) || !m.add(t3) {
		t.Fatal("adds failed")
	}
	if m.add(t1) {
		t.Fatal("duplicate add succeeded")
	}
	if m.len() != 3 {
		t.Fatalf("len = %d", m.len())
	}
	picked := m.pick(10, func(*chain.Tx) bool { return true })
	if len(picked) != 2 { // t1 (share a) + t3 (share b); t2 deferred
		t.Fatalf("picked %d", len(picked))
	}
	if m.len() != 1 {
		t.Fatalf("left = %d", m.len())
	}
	picked = m.pick(10, func(*chain.Tx) bool { return true })
	if len(picked) != 1 || picked[0].IDString() != t2.IDString() {
		t.Fatal("deferred tx not picked next")
	}
	// requeue puts transactions back at the front.
	m.requeue([]*chain.Tx{t1})
	if m.len() != 1 {
		t.Fatal("requeue failed")
	}
	// remove drops by ID.
	m.remove([]string{t1.IDString()})
	if m.len() != 0 {
		t.Fatal("remove failed")
	}
}

func TestMempoolMaxPerBlock(t *testing.T) {
	m := newMempool()
	id := identity.MustNew("s")
	for i := 0; i < 10; i++ {
		tx := &chain.Tx{Contract: "kv", Fn: "set", Nonce: uint64(i)}
		tx.Sign(id)
		m.add(tx)
	}
	picked := m.pick(4, func(*chain.Tx) bool { return true })
	if len(picked) != 4 || m.len() != 6 {
		t.Fatalf("picked %d, left %d", len(picked), m.len())
	}
}
