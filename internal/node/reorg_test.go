package node

import (
	"context"
	"testing"
	"time"

	"medshare/internal/chain"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/identity"
	"medshare/internal/statedb"
)

// buildPoWBlock mines one block on top of parent with the given txs,
// executing them against a clone of n's state to compute the state root.
func buildPoWBlock(t *testing.T, n *Node, parent *chain.Block, engine consensus.Engine, txs []*chain.Tx, ts int64) *chain.Block {
	t.Helper()
	b := &chain.Block{
		Header: chain.Header{
			Height:         parent.Header.Height + 1,
			PrevHash:       parent.Hash(),
			TimestampMicro: ts,
			Proposer:       n.Address(),
		},
		Txs: txs,
	}
	b.Header.TxRoot = b.ComputeTxRoot()
	if err := engine.Prepare(&b.Header); err != nil {
		t.Fatal(err)
	}
	// Execute from genesis along the parent branch to compute the state
	// root for this block's chain. For the test's short forks we replay
	// from scratch on a fresh store.
	staging := freshReplay(t, n, parent)
	n.executeOn(staging, b, nil)
	b.Header.StateRoot = staging.Root()
	if err := engine.Seal(context.Background(), b, n.cfg.Identity); err != nil {
		t.Fatal(err)
	}
	return b
}

// freshReplay executes the chain from genesis up to and including tip on
// a fresh state store.
func freshReplay(t *testing.T, n *Node, tip *chain.Block) *statedb.Store {
	t.Helper()
	st := statedb.NewStore()
	// Collect the branch from tip back to genesis.
	var branch []*chain.Block
	cur := tip
	for cur.Header.Height > 0 {
		branch = append([]*chain.Block{cur}, branch...)
		parent, ok := n.store.Get(cur.Header.PrevHash)
		if !ok {
			t.Fatalf("missing parent of %x", cur.Hash())
		}
		cur = parent
	}
	for _, b := range branch {
		n.executeOn(st, b, nil)
	}
	return st
}

// TestPoWReorgRebuildsState drives an explicit fork: the node first
// adopts branch A (one block), then a longer branch B (two blocks)
// arrives and the node must reorganize and rebuild its state to B's.
func TestPoWReorgRebuildsState(t *testing.T) {
	id := identity.MustNew("miner")
	engine := consensus.NewPoW(4)
	n, err := New(Config{
		NetworkName: "reorg",
		Identity:    id,
		Engine:      engine,
		Registry:    contract.NewRegistry(kvContract{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	genesis := n.Store().Genesis()

	txA := n.BuildTx("kv", "set", "", []byte("branch"), []byte("A"))
	txB1 := n.BuildTx("kv", "set", "", []byte("branch"), []byte("B"))
	txB2 := n.BuildTx("kv", "set", "", []byte("extra"), []byte("B2"))

	blockA := buildPoWBlock(t, n, genesis, engine, []*chain.Tx{txA}, 1)
	if err := n.ReceiveBlock(blockA); err != nil {
		t.Fatalf("adopting A: %v", err)
	}
	if v, _, _ := n.State().Get("kv/branch"); string(v) != "A" {
		t.Fatalf("state after A = %q", v)
	}

	// Competing branch B from genesis, two blocks long.
	blockB1 := buildPoWBlock(t, n, genesis, engine, []*chain.Tx{txB1}, 2)
	if err := n.ReceiveBlock(blockB1); err != nil {
		t.Fatalf("adding B1: %v", err)
	}
	// B1 alone ties with A at height 1; the head may or may not switch
	// (hash tiebreak), but state must match whichever head rules.
	blockB2 := buildPoWBlock(t, n, blockB1, engine, []*chain.Tx{txB2}, 3)
	if err := n.ReceiveBlock(blockB2); err != nil {
		t.Fatalf("adding B2: %v", err)
	}

	if n.Store().Head().Hash() != blockB2.Hash() {
		t.Fatal("longer branch not adopted")
	}
	if v, _, _ := n.State().Get("kv/branch"); string(v) != "B" {
		t.Fatalf("state after reorg = %q, want B", v)
	}
	if v, _, _ := n.State().Get("kv/extra"); string(v) != "B2" {
		t.Fatalf("B2 state missing, got %q", v)
	}
	if got := n.State().Root(); got != blockB2.Header.StateRoot {
		t.Fatal("rebuilt state root disagrees with adopted head")
	}
	// Transactions on the abandoned branch are no longer marked
	// committed; txA can re-enter the pool.
	if err := n.SubmitTx(txA); err != nil {
		t.Fatalf("orphaned tx rejected after reorg: %v", err)
	}
}

// TestPoWSideBranchIgnored: a shorter side branch must not disturb state.
func TestPoWSideBranchIgnored(t *testing.T) {
	id := identity.MustNew("miner")
	engine := consensus.NewPoW(4)
	n, err := New(Config{
		NetworkName: "side",
		Identity:    id,
		Engine:      engine,
		Registry:    contract.NewRegistry(kvContract{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	genesis := n.Store().Genesis()

	main1 := buildPoWBlock(t, n, genesis, engine, []*chain.Tx{n.BuildTx("kv", "set", "", []byte("k"), []byte("main"))}, 1)
	if err := n.ReceiveBlock(main1); err != nil {
		t.Fatal(err)
	}
	main2 := buildPoWBlock(t, n, main1, engine, nil, 2)
	if err := n.ReceiveBlock(main2); err != nil {
		t.Fatal(err)
	}
	rootBefore := n.State().Root()

	side1 := buildPoWBlock(t, n, genesis, engine, []*chain.Tx{n.BuildTx("kv", "set", "", []byte("k"), []byte("side"))}, 3)
	if err := n.ReceiveBlock(side1); err != nil {
		t.Fatal(err)
	}
	if n.Store().Head().Hash() != main2.Hash() {
		t.Fatal("head moved to shorter branch")
	}
	if n.State().Root() != rootBefore {
		t.Fatal("side branch disturbed state")
	}
	if v, _, _ := n.State().Get("kv/k"); string(v) != "main" {
		t.Fatalf("state = %q", v)
	}
}

// TestPoAProduceLoopTiming sanity-checks the timer-driven loop: with
// ProduceEmptyBlocks on, height advances roughly once per interval.
func TestPoAProduceLoopTiming(t *testing.T) {
	id := identity.MustNew("n")
	n, err := New(Config{
		NetworkName:        "timing",
		Identity:           id,
		Engine:             consensus.NewPoA(false, id.Address()),
		Registry:           contract.NewRegistry(),
		BlockInterval:      5 * time.Millisecond,
		ProduceEmptyBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n.Start(ctx)
	time.Sleep(60 * time.Millisecond)
	n.Stop()
	h := n.Store().Height()
	if h < 4 || h > 20 {
		t.Fatalf("height after ~60ms of 5ms blocks = %d", h)
	}
}
