package node

import (
	"medshare/internal/chain"
)

// mempool is a FIFO transaction pool with ID dedup. Selection additionally
// enforces the one-tx-per-share-per-block conflict rule; transactions left
// behind by that rule stay pooled for the next block, which is exactly the
// serialization behaviour the paper prescribes for concurrent updates to
// the same shared table.
//
// mempool is not self-locking; the Node serializes access under its mutex.
type mempool struct {
	order []string
	byID  map[string]*chain.Tx
}

func newMempool() *mempool {
	return &mempool{byID: make(map[string]*chain.Tx)}
}

// add inserts the tx unless already present; reports whether it was new.
func (m *mempool) add(tx *chain.Tx) bool {
	id := tx.IDString()
	if _, dup := m.byID[id]; dup {
		return false
	}
	m.byID[id] = tx
	m.order = append(m.order, id)
	return true
}

func (m *mempool) len() int { return len(m.byID) }

// pick removes and returns up to max transactions in FIFO order, skipping
// (and keeping) any tx whose ShareID collides with one already picked, and
// dropping any tx rejected by keep (already committed elsewhere).
func (m *mempool) pick(max int, keep func(*chain.Tx) bool) []*chain.Tx {
	var picked []*chain.Tx
	usedShares := make(map[string]bool)
	var remaining []string
	for i, id := range m.order {
		tx, ok := m.byID[id]
		if !ok {
			continue
		}
		if !keep(tx) {
			delete(m.byID, id)
			continue
		}
		if len(picked) >= max {
			remaining = append(remaining, m.order[i:]...)
			break
		}
		if tx.ShareID != "" && usedShares[tx.ShareID] {
			remaining = append(remaining, id)
			continue
		}
		if tx.ShareID != "" {
			usedShares[tx.ShareID] = true
		}
		picked = append(picked, tx)
		delete(m.byID, id)
	}
	m.order = remaining
	return picked
}

// remove drops committed transactions (seen in a block from elsewhere).
func (m *mempool) remove(ids []string) {
	for _, id := range ids {
		delete(m.byID, id)
	}
	var remaining []string
	for _, id := range m.order {
		if _, ok := m.byID[id]; ok {
			remaining = append(remaining, id)
		}
	}
	m.order = remaining
}

// requeue returns transactions to the front of the pool (after a failed
// production attempt).
func (m *mempool) requeue(txs []*chain.Tx) {
	var front []string
	for _, tx := range txs {
		id := tx.IDString()
		if _, dup := m.byID[id]; dup {
			continue
		}
		m.byID[id] = tx
		front = append(front, id)
	}
	m.order = append(front, m.order...)
}
