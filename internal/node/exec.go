package node

import (
	"fmt"

	"medshare/internal/chain"
	"medshare/internal/contract"
	"medshare/internal/statedb"
)

// executeOn runs every transaction of a block against the given state,
// committing each successful transaction's write set at its (height, index)
// version. Failed transactions (contract error or MVCC conflict) commit
// nothing but still produce receipts. When sink is non-nil it receives
// each receipt (indexed by tx position).
func (n *Node) executeOn(state *statedb.Store, b *chain.Block, sink func(i int, r contract.Receipt)) {
	for i, tx := range b.Txs {
		rcpt := contract.Execute(n.cfg.Registry, state, tx, b.Header.Height, b.Header.TimestampMicro)
		if rcpt.OK {
			if err := state.Validate(rcpt.Reads); err != nil {
				rcpt.OK = false
				rcpt.Err = err.Error()
				rcpt.Events = nil
				rcpt.Writes = nil
			} else {
				state.Commit(rcpt.Writes, statedb.Version{Height: b.Header.Height, TxIndex: i})
			}
		}
		if sink != nil {
			sink(i, rcpt)
		}
	}
}

// cloneState copies the live world state into a fresh store. Block
// production executes against the clone so a failed seal leaves the node
// untouched.
func (n *Node) cloneState() *statedb.Store {
	out := statedb.NewStore()
	replayInto(out, n.state)
	return out
}

func replayInto(dst, src *statedb.Store) {
	// Copy preserving versions: read every key with its version and commit
	// individually. The statedb API is version-faithful, so the clone's
	// root matches the source's.
	type kv struct {
		k   string
		v   []byte
		ver statedb.Version
	}
	var all []kv
	src.Range("", func(k string, v []byte) bool {
		_, ver, _ := src.Get(k)
		all = append(all, kv{k, v, ver})
		return true
	})
	for _, e := range all {
		dst.Commit(statedb.WriteSet{e.k: e.v}, e.ver)
	}
}

// commitBlock adds a locally produced or received block to the store and,
// if it extends (or reorganizes) the main chain, executes it against the
// live state, records receipts, fulfils waiters, and publishes events.
func (n *Node) commitBlock(b *chain.Block) error {
	if err := n.cfg.Engine.VerifyHeader(&b.Header); err != nil {
		return err
	}
	oldHead := n.store.Head()
	if b.Header.PrevHash == oldHead.Hash() {
		// Pre-validate the declared state root on a throwaway replica so a
		// corrupt or non-deterministic block is rejected before it can
		// poison the store.
		staging := n.cloneState()
		n.executeOn(staging, b, nil)
		if got := staging.Root(); got != b.Header.StateRoot {
			return fmt.Errorf("node: state root mismatch at height %d: got %x want %x",
				b.Header.Height, got[:6], b.Header.StateRoot[:6])
		}
	}
	headChanged, err := n.store.Add(b)
	if err != nil {
		return err
	}
	if !headChanged {
		return nil // side branch; state untouched
	}
	if b.Header.PrevHash == oldHead.Hash() {
		n.applyBlock(b)
		return nil
	}
	// Reorganization: rebuild the world state from genesis along the new
	// main chain. Receipts and events are re-derived; subscribers may see
	// events again (documented at-least-once delivery, like Fabric).
	n.rebuildState()
	return nil
}

// applyBlock executes b against the live state and performs all
// bookkeeping.
func (n *Node) applyBlock(b *chain.Block) {
	var receipts []contract.Receipt
	n.executeOn(n.state, b, func(_ int, r contract.Receipt) {
		receipts = append(receipts, r)
	})
	if got := n.state.Root(); got != b.Header.StateRoot {
		// A state-root divergence means non-deterministic contract code or
		// a corrupted block; surfaces loudly because silent divergence
		// would break the network's trust model.
		panic(fmt.Sprintf("node %s: state root mismatch at height %d: got %x want %x",
			n.Address().Short(), b.Header.Height, got[:6], b.Header.StateRoot[:6]))
	}

	n.mu.Lock()
	var committedIDs []string
	for i, tx := range b.Txs {
		id := tx.IDString()
		n.committedTxs[id] = true
		n.receipts[id] = receipts[i]
		committedIDs = append(committedIDs, id)
		for _, ch := range n.txWaiters[id] {
			ch <- receipts[i]
		}
		delete(n.txWaiters, id)
	}
	n.mempool.remove(committedIDs)
	n.mu.Unlock()

	for _, r := range receipts {
		for _, ev := range r.Events {
			n.events.publish(ev)
		}
	}
}

// rebuildState replays the entire main chain from genesis.
func (n *Node) rebuildState() {
	n.state.Reset()
	n.mu.Lock()
	n.committedTxs = make(map[string]bool)
	n.mu.Unlock()
	for _, b := range n.store.MainChain() {
		if b.Header.Height == 0 {
			continue
		}
		n.applyBlock(b)
	}
}
