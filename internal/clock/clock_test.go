package clock

import (
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := time.Now()
	if b.Sub(a) > time.Second {
		t.Fatal("Real.Now far from wall time")
	}
}

func TestRealClockSleep(t *testing.T) {
	c := Real{}
	start := time.Now()
	c.Sleep(10 * time.Millisecond)
	if d := time.Since(start); d < 9*time.Millisecond {
		t.Fatalf("slept %v", d)
	}
}

func TestScaledSleepCompresses(t *testing.T) {
	c := Scaled{Inner: Real{}, Factor: 100}
	start := time.Now()
	c.Sleep(500 * time.Millisecond) // 5ms scaled
	d := time.Since(start)
	if d > 100*time.Millisecond {
		t.Fatalf("scaled sleep took %v", d)
	}
	if d < 3*time.Millisecond {
		t.Fatalf("scaled sleep too short: %v", d)
	}
}

func TestScaledAfterCompresses(t *testing.T) {
	c := Scaled{Inner: Real{}, Factor: 100}
	start := time.Now()
	<-c.After(500 * time.Millisecond)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("scaled after took %v", d)
	}
}

func TestScaledMinimumFloor(t *testing.T) {
	// Sub-millisecond scaled durations are floored to 1ms so timers
	// still fire in order.
	c := Scaled{Inner: Real{}, Factor: 1e9}
	start := time.Now()
	c.Sleep(time.Second)
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("floored sleep took %v", d)
	}
}

func TestScaledFactorBelowOne(t *testing.T) {
	c := Scaled{Inner: Real{}, Factor: 0}
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("factor<1 must behave like 1, slept %v", d)
	}
}
