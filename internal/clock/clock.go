// Package clock abstracts time so that experiments can sweep block
// intervals (Section IV-1 discusses Ethereum's ≈12 s blocks) without
// waiting wall-clock minutes: benches run the system under a scaled clock
// and report results normalized to the modeled interval.
package clock

import "time"

// Clock supplies the current time and timer primitives.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for the (possibly scaled) duration.
	Sleep(d time.Duration)
	// After returns a channel that fires after the (possibly scaled)
	// duration.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Scaled compresses durations by Factor: a Sleep(12s) under Factor 1000
// blocks for 12ms. Now still returns wall time (timestamps stay
// monotone); only waits shrink. Throughput measured under a scaled clock
// multiplies back by Factor when reporting modeled real-time rates.
type Scaled struct {
	// Inner is the underlying clock (usually Real).
	Inner Clock
	// Factor divides every duration; values < 1 are treated as 1.
	Factor float64
}

func (s Scaled) scale(d time.Duration) time.Duration {
	f := s.Factor
	if f < 1 {
		f = 1
	}
	scaled := time.Duration(float64(d) / f)
	if scaled < time.Millisecond && d > 0 {
		scaled = time.Millisecond
	}
	return scaled
}

// Now implements Clock.
func (s Scaled) Now() time.Time { return s.Inner.Now() }

// Sleep implements Clock.
func (s Scaled) Sleep(d time.Duration) { s.Inner.Sleep(s.scale(d)) }

// After implements Clock.
func (s Scaled) After(d time.Duration) <-chan time.Time { return s.Inner.After(s.scale(d)) }
