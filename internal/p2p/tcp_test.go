package p2p

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func tcpPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	a, err := NewTCPTransport("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPTransport("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPSend(t *testing.T) {
	a, b := tcpPair(t)
	got := make(chan Message, 1)
	b.Handle(func(m Message) { got <- m })
	if err := a.Send("b", Message{Kind: "tx", Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.From != "a" || m.Kind != "tx" || string(m.Payload) != "p" {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("not delivered")
	}
}

func TestTCPRequestResponse(t *testing.T) {
	a, b := tcpPair(t)
	b.HandleRequest(func(m Message) (Message, error) {
		return Message{Kind: m.Kind, Payload: append([]byte("re:"), m.Payload...)}, nil
	})
	resp, err := a.Request(context.Background(), "b", Message{Kind: "data.fetch", Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "re:x" {
		t.Fatalf("resp = %s", resp.Payload)
	}
}

func TestTCPRequestRemoteError(t *testing.T) {
	a, b := tcpPair(t)
	b.HandleRequest(func(Message) (Message, error) {
		return Message{}, errors.New("refused by policy")
	})
	_, err := a.Request(context.Background(), "b", Message{})
	if err == nil || !strings.Contains(err.Error(), "refused by policy") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPRequestNoHandler(t *testing.T) {
	a, _ := tcpPair(t)
	_, err := a.Request(context.Background(), "b", Message{})
	if err == nil || !strings.Contains(err.Error(), "no request handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("ghost", Message{}); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPBroadcast(t *testing.T) {
	a, b := tcpPair(t)
	c, err := NewTCPTransport("c", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a.AddPeer("c", c.Addr())

	var mu sync.Mutex
	seen := map[string]bool{}
	mark := func(name string) Handler {
		return func(Message) {
			mu.Lock()
			seen[name] = true
			mu.Unlock()
		}
	}
	b.Handle(mark("b"))
	c.Handle(mark("c"))
	if err := a.Broadcast(Message{Kind: "block"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("seen = %v", seen)
}

func TestTCPRequestContextTimeout(t *testing.T) {
	a, b := tcpPair(t)
	b.HandleRequest(func(m Message) (Message, error) {
		time.Sleep(300 * time.Millisecond)
		return m, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Request(ctx, "b", Message{}); err == nil {
		t.Fatal("timed-out request succeeded")
	}
}

func TestTCPCloseStopsService(t *testing.T) {
	a, b := tcpPair(t)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Message{}); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, b := tcpPair(t)
	b.HandleRequest(func(m Message) (Message, error) { return m, nil })
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := a.Request(context.Background(), "b", Message{Kind: "data.fetch", Payload: big})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Payload) != len(big) {
		t.Fatalf("payload truncated: %d", len(resp.Payload))
	}
}
