package p2p

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func tcpPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	a, err := NewTCPTransport("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPTransport("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPSend(t *testing.T) {
	a, b := tcpPair(t)
	got := make(chan Message, 1)
	b.Handle(func(m Message) { got <- m })
	if err := a.Send("b", Message{Kind: "tx", Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.From != "a" || m.Kind != "tx" || string(m.Payload) != "p" {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("not delivered")
	}
}

func TestTCPRequestResponse(t *testing.T) {
	a, b := tcpPair(t)
	b.HandleRequest(func(m Message) (Message, error) {
		return Message{Kind: m.Kind, Payload: append([]byte("re:"), m.Payload...)}, nil
	})
	resp, err := a.Request(context.Background(), "b", Message{Kind: "data.fetch", Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "re:x" {
		t.Fatalf("resp = %s", resp.Payload)
	}
}

func TestTCPRequestRemoteError(t *testing.T) {
	a, b := tcpPair(t)
	b.HandleRequest(func(Message) (Message, error) {
		return Message{}, errors.New("refused by policy")
	})
	_, err := a.Request(context.Background(), "b", Message{})
	if err == nil || !strings.Contains(err.Error(), "refused by policy") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPRequestNoHandler(t *testing.T) {
	a, _ := tcpPair(t)
	_, err := a.Request(context.Background(), "b", Message{})
	if err == nil || !strings.Contains(err.Error(), "no request handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("ghost", Message{}); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPBroadcast(t *testing.T) {
	a, b := tcpPair(t)
	c, err := NewTCPTransport("c", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a.AddPeer("c", c.Addr())

	var mu sync.Mutex
	seen := map[string]bool{}
	mark := func(name string) Handler {
		return func(Message) {
			mu.Lock()
			seen[name] = true
			mu.Unlock()
		}
	}
	b.Handle(mark("b"))
	c.Handle(mark("c"))
	if err := a.Broadcast(Message{Kind: "block"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("seen = %v", seen)
}

func TestTCPRequestContextTimeout(t *testing.T) {
	a, b := tcpPair(t)
	b.HandleRequest(func(m Message) (Message, error) {
		time.Sleep(300 * time.Millisecond)
		return m, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Request(ctx, "b", Message{}); err == nil {
		t.Fatal("timed-out request succeeded")
	}
}

func TestTCPCloseStopsService(t *testing.T) {
	a, b := tcpPair(t)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Message{}); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, b := tcpPair(t)
	b.HandleRequest(func(m Message) (Message, error) { return m, nil })
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := a.Request(context.Background(), "b", Message{Kind: "data.fetch", Payload: big})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Payload) != len(big) {
		t.Fatalf("payload truncated: %d", len(resp.Payload))
	}
}

// --- Connection hardening (pooling, reconnect, deadlines) ---

func TestTCPSendPoolsConnection(t *testing.T) {
	a, b := tcpPair(t)
	var mu sync.Mutex
	var got []string
	b.Handle(func(m Message) {
		mu.Lock()
		got = append(got, string(m.Payload))
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		if err := a.Send("b", Message{Kind: "tx", Payload: []byte{'0' + byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 10 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("delivered %d of 10", len(got))
	}
	// Per-connection ordering: frames on the pooled conn arrive in order.
	for i, p := range got {
		if p != string([]byte{'0' + byte(i)}) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if n := b.accepted.Load(); n != 1 {
		t.Fatalf("10 sends used %d connections, want 1 (pooled)", n)
	}
}

func TestTCPSendReconnectsAfterPeerRestart(t *testing.T) {
	a, b := tcpPair(t)
	got := make(chan Message, 16)
	b.Handle(func(m Message) { got <- m })
	if err := a.Send("b", Message{Kind: "tx"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("first send not delivered")
	}

	// Restart b on the same address: a's pooled connection is now stale.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCPTransport("b", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })
	got2 := make(chan Message, 16)
	b2.Handle(func(m Message) { got2 <- m })

	// A write into the dead socket may be silently lost (one-way sends
	// are best-effort); the transport must detect the failure and
	// reconnect so subsequent sends flow again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("sends never reached the restarted peer")
		}
		if err := a.Send("b", Message{Kind: "tx"}); err != nil {
			continue // reconnect window
		}
		select {
		case <-got2:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestTCPIdleInboundConnectionCut(t *testing.T) {
	a, err := NewTCPTransport("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewTCPTransport("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	b.idleTimeout = 50 * time.Millisecond
	a.AddPeer("b", b.Addr())

	got := make(chan Message, 16)
	b.Handle(func(m Message) { got <- m })
	if err := a.Send("b", Message{Kind: "tx"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("first send not delivered")
	}

	// Let the inbound connection idle out, then keep sending: the sender
	// must notice the cut and redial.
	time.Sleep(200 * time.Millisecond)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("sends never resumed after idle cut")
		}
		if err := a.Send("b", Message{Kind: "tx"}); err != nil {
			continue
		}
		select {
		case m := <-got:
			_ = m
			if n := b.accepted.Load(); n < 2 {
				t.Fatalf("delivery resumed without a reconnect (%d conns)", n)
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}
