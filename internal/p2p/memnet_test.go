package p2p

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSendDelivers(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	got := make(chan Message, 1)
	b.Handle(func(m Message) { got <- m })
	if err := a.Send("b", Message{Kind: "tx", Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != "tx" || string(m.Payload) != "hello" || m.From != "a" {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestSendUnknownEndpoint(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	if err := a.Send("ghost", Message{}); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("want ErrUnknownEndpoint, got %v", err)
	}
}

func TestBroadcastReachesAllButSelf(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	var mu sync.Mutex
	seen := map[string]int{}
	for _, name := range []string{"b", "c", "d"} {
		name := name
		ep := net.Endpoint(name)
		ep.Handle(func(m Message) {
			mu.Lock()
			seen[name]++
			mu.Unlock()
		})
	}
	selfCount := 0
	a.Handle(func(Message) { selfCount++ })
	if err := a.Broadcast(Message{Kind: "block"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("seen = %v", seen)
	}
	if selfCount != 0 {
		t.Fatal("broadcast delivered to self")
	}
}

func TestRequestResponse(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	b.HandleRequest(func(m Message) (Message, error) {
		return Message{Kind: m.Kind, Payload: append([]byte("echo:"), m.Payload...)}, nil
	})
	resp, err := a.Request(context.Background(), "b", Message{Kind: "data.fetch", Payload: []byte("D23")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "echo:D23" {
		t.Fatalf("resp = %s", resp.Payload)
	}
}

func TestRequestNoHandler(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	net.Endpoint("b")
	if _, err := a.Request(context.Background(), "b", Message{}); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("want ErrNoHandler, got %v", err)
	}
}

func TestRequestErrorPropagates(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	boom := errors.New("not authorized")
	b.HandleRequest(func(Message) (Message, error) { return Message{}, boom })
	if _, err := a.Request(context.Background(), "b", Message{}); !errors.Is(err, boom) {
		t.Fatalf("want handler error, got %v", err)
	}
}

func TestRequestContextCancel(t *testing.T) {
	net := NewMemNetwork(WithLatency(200*time.Millisecond, 0))
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	b.HandleRequest(func(m Message) (Message, error) { return m, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Request(ctx, "b", Message{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	net := NewMemNetwork(WithLatency(30*time.Millisecond, 0))
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	got := make(chan time.Time, 1)
	b.Handle(func(Message) { got <- time.Now() })
	start := time.Now()
	if err := a.Send("b", Message{}); err != nil {
		t.Fatal(err)
	}
	arrival := <-got
	if d := arrival.Sub(start); d < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", d)
	}
}

func TestDropRateLosesMessages(t *testing.T) {
	net := NewMemNetwork(WithDropRate(1.0), WithSeed(42))
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	received := make(chan Message, 10)
	b.Handle(func(m Message) { received <- m })
	for i := 0; i < 10; i++ {
		if err := a.Send("b", Message{}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-received:
		t.Fatal("message delivered despite 100% drop rate")
	case <-time.After(50 * time.Millisecond):
	}
	// Requests are never dropped.
	b.HandleRequest(func(m Message) (Message, error) { return m, nil })
	if _, err := a.Request(context.Background(), "b", Message{}); err != nil {
		t.Fatalf("request dropped: %v", err)
	}
}

func TestCloseDetaches(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Message{}); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("want ErrUnknownEndpoint after close, got %v", err)
	}
	if err := b.Send("a", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close should be fine")
	}
}

func TestPeersSorted(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	net.Endpoint("zeta")
	net.Endpoint("beta")
	got := a.Peers()
	if len(got) != 2 || got[0] != "beta" || got[1] != "zeta" {
		t.Fatalf("peers = %v", got)
	}
}

func TestConcurrentSends(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	var count int
	var mu sync.Mutex
	done := make(chan struct{})
	b.Handle(func(Message) {
		mu.Lock()
		count++
		if count == 100 {
			close(done)
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Send("b", Message{})
		}()
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		mu.Lock()
		t.Fatalf("only %d/100 delivered", count)
	}
}
