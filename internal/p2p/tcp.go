package p2p

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPTransport implements Transport over TCP with length-delimited JSON
// frames. cmd/medshared uses it to run real multi-process deployments;
// the interface is identical to the in-memory simulator, so the node and
// peer layers do not know which one they run on.
//
// One-way sends reuse a pooled connection per peer, redialing with a
// capped backoff when the link drops; a send that hits a stale pooled
// connection reconnects and retries once. Requests still dial per call —
// they carry the caller's context deadline and matching responses over a
// shared connection is not worth the state machine here. Every
// connection runs under deadlines: writes must finish within
// tcpWriteTimeout, and inbound connections are dropped after
// idleTimeout without a frame. Peers are registered statically with
// AddPeer (discovery is out of scope, as in the paper).
type TCPTransport struct {
	name string
	ln   net.Listener

	idleTimeout time.Duration // per-frame read deadline on inbound conns

	mu     sync.RWMutex
	peers  map[string]string // endpoint name -> host:port
	sends  map[string]*sendConn
	conns  map[net.Conn]struct{} // open inbound connections
	h      Handler
	rh     RequestHandler
	closed bool

	accepted atomic.Int64 // inbound connections accepted (observability/tests)

	wg sync.WaitGroup
}

// sendConn is the pooled one-way connection to a single peer. Its mutex
// serializes writers and guards reconnects.
type sendConn struct {
	mu   sync.Mutex
	conn net.Conn
}

const (
	// tcpWriteTimeout bounds any single frame write.
	tcpWriteTimeout = 10 * time.Second
	// tcpDialTimeout bounds one dial attempt.
	tcpDialTimeout = 3 * time.Second
	// tcpIdleTimeout is the default per-frame read deadline on inbound
	// connections: a peer that goes quiet longer than this is cut loose
	// (it will transparently reconnect on its next send).
	tcpIdleTimeout = 2 * time.Minute
	// Dial retry schedule: dialAttempts tries with delays growing from
	// tcpDialBackoff, capped at tcpDialBackoffMax.
	dialAttempts      = 3
	tcpDialBackoff    = 25 * time.Millisecond
	tcpDialBackoffMax = 200 * time.Millisecond
)

// frame is one wire message.
type frame struct {
	// Type is "msg" (one-way), "req", "resp", or "err".
	Type string `json:"type"`
	// Msg is the payload for msg/req/resp frames.
	Msg Message `json:"msg"`
	// Error carries the handler error for err frames.
	Error string `json:"error,omitempty"`
}

// NewTCPTransport binds a listener on addr (e.g. "127.0.0.1:0") and
// starts serving incoming frames.
func NewTCPTransport(name, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listening on %s: %w", addr, err)
	}
	t := &TCPTransport{
		name: name, ln: ln,
		idleTimeout: tcpIdleTimeout,
		peers:       make(map[string]string),
		sends:       make(map[string]*sendConn),
		conns:       make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.serve()
	return t, nil
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return t.name }

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// AddPeer registers a remote endpoint's address.
func (t *TCPTransport) AddPeer(name, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[name] = addr
}

// Handle implements Transport.
func (t *TCPTransport) Handle(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.h = h
}

// HandleRequest implements Transport.
func (t *TCPTransport) HandleRequest(h RequestHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rh = h
}

// Peers implements Transport.
func (t *TCPTransport) Peers() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.peers))
	for name := range t.peers {
		out = append(out, name)
	}
	return out
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	pooled := make([]*sendConn, 0, len(t.sends))
	for _, sc := range t.sends {
		pooled = append(pooled, sc)
	}
	inbound := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	for _, c := range inbound {
		c.Close()
	}
	for _, sc := range pooled {
		sc.mu.Lock()
		if sc.conn != nil {
			sc.conn.Close()
			sc.conn = nil
		}
		sc.mu.Unlock()
	}
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) lookup(name string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return "", ErrClosed
	}
	addr, ok := t.peers[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownEndpoint, name)
	}
	return addr, nil
}

// sendSlot returns the pooled send connection slot for a peer.
func (t *TCPTransport) sendSlot(to string) *sendConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	sc, ok := t.sends[to]
	if !ok {
		sc = &sendConn{}
		t.sends[to] = sc
	}
	return sc
}

// dialBackoff dials addr, retrying with a capped backoff — a peer that
// is restarting gets a short grace window before the send fails.
func (t *TCPTransport) dialBackoff(addr string) (net.Conn, error) {
	var lastErr error
	delay := tcpDialBackoff
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
			if delay > tcpDialBackoffMax {
				delay = tcpDialBackoffMax
			}
			t.mu.RLock()
			closed := t.closed
			t.mu.RUnlock()
			if closed {
				return nil, ErrClosed
			}
		}
		conn, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Send implements Transport. It writes on the pooled connection to the
// peer, reconnecting (with backoff) when the link is down or has gone
// stale. Like the in-memory transport's lossy mode, a one-way message
// can be lost without error if the remote dies between the write and
// delivery — one-way sends are best-effort by contract.
func (t *TCPTransport) Send(to string, msg Message) error {
	addr, err := t.lookup(to)
	if err != nil {
		return err
	}
	msg.From = t.name
	f := frame{Type: "msg", Msg: msg}
	sc := t.sendSlot(to)
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if sc.conn == nil {
			conn, err := t.dialBackoff(addr)
			if err != nil {
				return fmt.Errorf("p2p: dialing %s: %w", to, err)
			}
			sc.conn = conn
		}
		_ = sc.conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout))
		if err := writeFrame(sc.conn, f); err == nil {
			return nil
		} else if attempt > 0 {
			sc.conn.Close()
			sc.conn = nil
			return fmt.Errorf("p2p: sending to %s: %w", to, err)
		}
		// The pooled connection went stale (peer restarted, idle cut):
		// drop it and retry once on a fresh dial.
		sc.conn.Close()
		sc.conn = nil
	}
}

// Broadcast implements Transport.
func (t *TCPTransport) Broadcast(msg Message) error {
	var firstErr error
	for _, name := range t.Peers() {
		if err := t.Send(name, msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Request implements Transport.
func (t *TCPTransport) Request(ctx context.Context, to string, msg Message) (Message, error) {
	addr, err := t.lookup(to)
	if err != nil {
		return Message{}, err
	}
	msg.From = t.name
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Message{}, fmt.Errorf("p2p: dialing %s: %w", to, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if err := writeFrame(conn, frame{Type: "req", Msg: msg}); err != nil {
		return Message{}, err
	}
	resp, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return Message{}, err
	}
	if resp.Type == "err" {
		return Message{}, fmt.Errorf("p2p: remote error: %s", resp.Error)
	}
	return resp.Msg, nil
}

// serve accepts connections until the listener closes.
func (t *TCPTransport) serve() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.accepted.Add(1)
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleConn(conn)
		}()
	}
}

// handleConn serves frames off one inbound connection until it closes
// or goes idle past the deadline. One-way messages are dispatched inline
// so per-connection ordering is preserved.
func (t *TCPTransport) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(t.idleTimeout))
		f, err := readFrame(br)
		if err != nil {
			return
		}
		switch f.Type {
		case "msg":
			t.mu.RLock()
			h := t.h
			t.mu.RUnlock()
			if h != nil {
				h(f.Msg)
			}
		case "req":
			t.mu.RLock()
			rh := t.rh
			t.mu.RUnlock()
			_ = conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout))
			if rh == nil {
				_ = writeFrame(conn, frame{Type: "err", Error: ErrNoHandler.Error()})
				continue
			}
			resp, err := rh(f.Msg)
			if err != nil {
				_ = writeFrame(conn, frame{Type: "err", Error: err.Error()})
				continue
			}
			if err := writeFrame(conn, frame{Type: "resp", Msg: resp}); err != nil {
				return
			}
		default:
			// Unknown frame type: protocol violation, cut the connection.
			return
		}
	}
}

// writeFrame encodes a frame as a length-prefixed JSON blob.
func writeFrame(conn net.Conn, f frame) error {
	raw, err := json.Marshal(f)
	if err != nil {
		return err
	}
	var hdr [8]byte
	putUint64(hdr[:], uint64(len(raw)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err = conn.Write(raw)
	return err
}

// maxFrameSize bounds a frame to 64 MiB, far above any share payload this
// system ships, but low enough to stop a hostile peer from forcing huge
// allocations.
const maxFrameSize = 64 << 20

func readFrame(r *bufio.Reader) (frame, error) {
	var hdr [8]byte
	if _, err := readFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := getUint64(hdr[:])
	if n > maxFrameSize {
		return frame{}, fmt.Errorf("p2p: frame of %d bytes exceeds limit", n)
	}
	raw := make([]byte, n)
	if _, err := readFull(r, raw); err != nil {
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(raw, &f); err != nil {
		return frame{}, fmt.Errorf("p2p: bad frame: %w", err)
	}
	return f, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
