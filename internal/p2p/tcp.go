package p2p

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport implements Transport over TCP with length-delimited JSON
// frames. cmd/medshared uses it to run real multi-process deployments;
// the interface is identical to the in-memory simulator, so the node and
// peer layers do not know which one they run on.
//
// Connections are dialed per message: at the metadata-only message rates
// of this system (the chain carries hashes, not medical data) connection
// reuse is not worth the state machine. Peers are registered statically
// with AddPeer (discovery is out of scope, as in the paper).
type TCPTransport struct {
	name string
	ln   net.Listener

	mu     sync.RWMutex
	peers  map[string]string // endpoint name -> host:port
	h      Handler
	rh     RequestHandler
	closed bool

	wg sync.WaitGroup
}

// frame is one wire message.
type frame struct {
	// Type is "msg" (one-way), "req", "resp", or "err".
	Type string `json:"type"`
	// Msg is the payload for msg/req/resp frames.
	Msg Message `json:"msg"`
	// Error carries the handler error for err frames.
	Error string `json:"error,omitempty"`
}

// NewTCPTransport binds a listener on addr (e.g. "127.0.0.1:0") and
// starts serving incoming frames.
func NewTCPTransport(name, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listening on %s: %w", addr, err)
	}
	t := &TCPTransport{name: name, ln: ln, peers: make(map[string]string)}
	t.wg.Add(1)
	go t.serve()
	return t, nil
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return t.name }

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// AddPeer registers a remote endpoint's address.
func (t *TCPTransport) AddPeer(name, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[name] = addr
}

// Handle implements Transport.
func (t *TCPTransport) Handle(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.h = h
}

// HandleRequest implements Transport.
func (t *TCPTransport) HandleRequest(h RequestHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rh = h
}

// Peers implements Transport.
func (t *TCPTransport) Peers() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.peers))
	for name := range t.peers {
		out = append(out, name)
	}
	return out
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) lookup(name string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return "", ErrClosed
	}
	addr, ok := t.peers[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownEndpoint, name)
	}
	return addr, nil
}

// Send implements Transport.
func (t *TCPTransport) Send(to string, msg Message) error {
	addr, err := t.lookup(to)
	if err != nil {
		return err
	}
	msg.From = t.name
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("p2p: dialing %s: %w", to, err)
	}
	defer conn.Close()
	return writeFrame(conn, frame{Type: "msg", Msg: msg})
}

// Broadcast implements Transport.
func (t *TCPTransport) Broadcast(msg Message) error {
	var firstErr error
	for _, name := range t.Peers() {
		if err := t.Send(name, msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Request implements Transport.
func (t *TCPTransport) Request(ctx context.Context, to string, msg Message) (Message, error) {
	addr, err := t.lookup(to)
	if err != nil {
		return Message{}, err
	}
	msg.From = t.name
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Message{}, fmt.Errorf("p2p: dialing %s: %w", to, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if err := writeFrame(conn, frame{Type: "req", Msg: msg}); err != nil {
		return Message{}, err
	}
	resp, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return Message{}, err
	}
	if resp.Type == "err" {
		return Message{}, fmt.Errorf("p2p: remote error: %s", resp.Error)
	}
	return resp.Msg, nil
}

// serve accepts connections until the listener closes.
func (t *TCPTransport) serve() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleConn(conn)
		}()
	}
}

func (t *TCPTransport) handleConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	f, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return
	}
	switch f.Type {
	case "msg":
		t.mu.RLock()
		h := t.h
		t.mu.RUnlock()
		if h != nil {
			h(f.Msg)
		}
	case "req":
		t.mu.RLock()
		rh := t.rh
		t.mu.RUnlock()
		if rh == nil {
			_ = writeFrame(conn, frame{Type: "err", Error: ErrNoHandler.Error()})
			return
		}
		resp, err := rh(f.Msg)
		if err != nil {
			_ = writeFrame(conn, frame{Type: "err", Error: err.Error()})
			return
		}
		_ = writeFrame(conn, frame{Type: "resp", Msg: resp})
	}
}

// writeFrame encodes a frame as a length-prefixed JSON blob.
func writeFrame(conn net.Conn, f frame) error {
	raw, err := json.Marshal(f)
	if err != nil {
		return err
	}
	var hdr [8]byte
	putUint64(hdr[:], uint64(len(raw)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err = conn.Write(raw)
	return err
}

// maxFrameSize bounds a frame to 64 MiB, far above any share payload this
// system ships, but low enough to stop a hostile peer from forcing huge
// allocations.
const maxFrameSize = 64 << 20

func readFrame(r *bufio.Reader) (frame, error) {
	var hdr [8]byte
	if _, err := readFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := getUint64(hdr[:])
	if n > maxFrameSize {
		return frame{}, fmt.Errorf("p2p: frame of %d bytes exceeds limit", n)
	}
	raw := make([]byte, n)
	if _, err := readFull(r, raw); err != nil {
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(raw, &f); err != nil {
		return frame{}, fmt.Errorf("p2p: bad frame: %w", err)
	}
	return f, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
