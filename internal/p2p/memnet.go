package p2p

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// MemNetwork is an in-process network of endpoints with configurable
// symmetric latency, jitter, and message loss. It makes the whole system
// runnable and measurable on one machine, substituting for the multi-host
// deployment the paper assumes.
type MemNetwork struct {
	mu        sync.RWMutex
	endpoints map[string]*memEndpoint
	latency   time.Duration
	jitter    time.Duration
	dropRate  float64
	rng       *rand.Rand
	rngMu     sync.Mutex
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork)

// WithLatency sets the one-way base latency and jitter.
func WithLatency(base, jitter time.Duration) MemOption {
	return func(n *MemNetwork) { n.latency, n.jitter = base, jitter }
}

// WithDropRate sets the probability in [0,1) that a one-way message is
// lost. Requests are never dropped (they model a TCP round trip).
func WithDropRate(p float64) MemOption {
	return func(n *MemNetwork) { n.dropRate = p }
}

// WithSeed seeds the loss/jitter randomness for reproducible runs.
func WithSeed(seed int64) MemOption {
	return func(n *MemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork(opts ...MemOption) *MemNetwork {
	n := &MemNetwork{
		endpoints: make(map[string]*memEndpoint),
		rng:       rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint attaches a new endpoint with the given unique name.
func (n *MemNetwork) Endpoint(name string) *memEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &memEndpoint{net: n, name: name, closed: make(chan struct{})}
	n.endpoints[name] = ep
	return ep
}

func (n *MemNetwork) lookup(name string) (*memEndpoint, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.endpoints[name]
	return ep, ok
}

func (n *MemNetwork) names(except string) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		if name != except {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// delay returns the sampled one-way delay.
func (n *MemNetwork) delay() time.Duration {
	if n.latency == 0 && n.jitter == 0 {
		return 0
	}
	d := n.latency
	if n.jitter > 0 {
		n.rngMu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.jitter)))
		n.rngMu.Unlock()
	}
	return d
}

// dropped samples message loss.
func (n *MemNetwork) dropped() bool {
	if n.dropRate <= 0 {
		return false
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < n.dropRate
}

// memEndpoint implements Transport on a MemNetwork.
type memEndpoint struct {
	net    *MemNetwork
	name   string
	mu     sync.RWMutex
	h      Handler
	rh     RequestHandler
	closed chan struct{}
}

// Name implements Transport.
func (e *memEndpoint) Name() string { return e.name }

// Handle implements Transport.
func (e *memEndpoint) Handle(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.h = h
}

// HandleRequest implements Transport.
func (e *memEndpoint) HandleRequest(h RequestHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rh = h
}

// Send implements Transport.
func (e *memEndpoint) Send(to string, msg Message) error {
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	dst, ok := e.net.lookup(to)
	if !ok {
		return ErrUnknownEndpoint
	}
	if e.net.dropped() {
		return nil // silently lost, like UDP gossip
	}
	msg.From = e.name
	delay := e.net.delay()
	go func() {
		if delay > 0 {
			time.Sleep(delay)
		}
		dst.deliver(msg)
	}()
	return nil
}

// Broadcast implements Transport.
func (e *memEndpoint) Broadcast(msg Message) error {
	for _, name := range e.net.names(e.name) {
		if err := e.Send(name, msg); err != nil && err != ErrUnknownEndpoint {
			return err
		}
	}
	return nil
}

// Request implements Transport. Requests model a TCP round trip: they are
// delayed but never dropped.
func (e *memEndpoint) Request(ctx context.Context, to string, msg Message) (Message, error) {
	select {
	case <-e.closed:
		return Message{}, ErrClosed
	default:
	}
	dst, ok := e.net.lookup(to)
	if !ok {
		return Message{}, ErrUnknownEndpoint
	}
	msg.From = e.name
	type result struct {
		resp Message
		err  error
	}
	ch := make(chan result, 1)
	delay := e.net.delay()
	go func() {
		if delay > 0 {
			time.Sleep(delay)
		}
		resp, err := dst.serve(msg)
		if delay > 0 {
			time.Sleep(e.net.delay())
		}
		ch <- result{resp, err}
	}()
	select {
	case <-ctx.Done():
		return Message{}, ctx.Err()
	case r := <-ch:
		return r.resp, r.err
	}
}

// Peers implements Transport.
func (e *memEndpoint) Peers() []string { return e.net.names(e.name) }

// Close implements Transport.
func (e *memEndpoint) Close() error {
	e.net.mu.Lock()
	delete(e.net.endpoints, e.name)
	e.net.mu.Unlock()
	select {
	case <-e.closed:
	default:
		close(e.closed)
	}
	return nil
}

func (e *memEndpoint) deliver(msg Message) {
	select {
	case <-e.closed:
		return
	default:
	}
	e.mu.RLock()
	h := e.h
	e.mu.RUnlock()
	if h != nil {
		h(msg)
	}
}

func (e *memEndpoint) serve(msg Message) (Message, error) {
	select {
	case <-e.closed:
		return Message{}, ErrClosed
	default:
	}
	e.mu.RLock()
	rh := e.rh
	e.mu.RUnlock()
	if rh == nil {
		return Message{}, ErrNoHandler
	}
	return rh(msg)
}
