// Package p2p provides the messaging substrate of the architecture
// (Fig. 2): gossip of transactions and blocks between blockchain nodes,
// and the direct peer-to-peer data channel over which sharing peers fetch
// updated view payloads ("Send updated data" / "Request updated data" —
// raw medical data moves only between the two sharing peers, never through
// the chain or any third party).
//
// Two transports implement the same interface: an in-memory simulated
// network with configurable latency, jitter, and loss (deterministic tests
// and latency sweeps), and a TCP transport used by cmd/medshared.
package p2p

import (
	"context"
	"errors"
)

// Message kinds used by the system. Transports treat kinds opaquely.
const (
	KindTx = "tx"
	// KindTxBatch carries many transactions in one broadcast — the gossip
	// half of group commit: a batch submitted together travels together.
	KindTxBatch   = "txbatch"
	KindBlock     = "block"
	KindDataFetch = "data.fetch"
	// KindSync carries the structural anti-entropy exchange: peers walk
	// each other's Merkle row trees top-down and transfer only divergent
	// subtrees (cold or long-diverged replicas catching up without a
	// whole-view fetch).
	KindSync = "data.sync"
	// KindHeaders is the light-client header sync RPC: a request names a
	// starting height, the response carries the main-chain headers above
	// it in a binary frame (chain.EncodeHeaders) — no bodies, no state.
	KindHeaders = "chain.headers"
	// KindLightHead is the light-client share-head RPC: the serving peer
	// returns the share's on-chain metadata with a state-membership proof
	// against a block header's StateRoot.
	KindLightHead = "light.head"
	// KindLightRow is the light-client row fetch: one row plus its Merkle
	// membership proof and the table-hash preimage fields, verifiable
	// against the proven share head.
	KindLightRow = "light.row"
)

// Message is an addressed, typed payload.
type Message struct {
	// Kind routes the message to the right handler.
	Kind string `json:"kind"`
	// From is the sender endpoint name (filled by the transport).
	From string `json:"from"`
	// Payload is kind-specific (JSON in this system).
	Payload []byte `json:"payload"`
}

// Handler consumes one-way messages.
type Handler func(msg Message)

// RequestHandler serves request/response exchanges (the data channel).
type RequestHandler func(msg Message) (Message, error)

// Errors returned by transports.
var (
	ErrUnknownEndpoint = errors.New("p2p: unknown endpoint")
	ErrClosed          = errors.New("p2p: transport closed")
	ErrDropped         = errors.New("p2p: message dropped")
	ErrNoHandler       = errors.New("p2p: endpoint has no request handler")
)

// Transport is one participant's connection to the network.
type Transport interface {
	// Name returns this endpoint's network name.
	Name() string
	// Send delivers a one-way message to the named endpoint.
	Send(to string, msg Message) error
	// Broadcast delivers a one-way message to every other endpoint.
	Broadcast(msg Message) error
	// Request performs a round trip to the named endpoint.
	Request(ctx context.Context, to string, msg Message) (Message, error)
	// Handle registers the one-way message handler.
	Handle(h Handler)
	// HandleRequest registers the request/response handler.
	HandleRequest(h RequestHandler)
	// Peers lists the other endpoints currently known.
	Peers() []string
	// Close detaches the endpoint.
	Close() error
}
