// Package faultnet is a deterministic fault-injection layer over any
// p2p.Transport. A Fabric holds a seeded, scriptable fault schedule —
// message drop, duplication, delay, reordering, asymmetric partitions
// with heal, per-peer blackholes (crash), per-link latency spikes — and
// Wrap turns any transport endpoint (memnet or TCP) into one that
// experiences those faults. Chaos tests drive the schedule from test
// code and assert on the fabric's fault counters, so "the network
// actually misbehaved" is checkable rather than assumed.
//
// Fault semantics follow the transport contract: one-way messages
// (gossip) are silently lost, duplicated, delayed, or reordered — the
// sender cannot tell, like UDP. Requests model an RPC: a blocked or
// blackholed link fails fast, a lost request/response fails after the
// link delay (the caller's retry layer is what recovers), and a hung
// request blocks until the caller's context expires (exercising RPC
// deadlines).
//
// Determinism: all sampling comes from one seeded PRNG under the
// fabric's lock, and the schedule (partition timings, rate changes) is
// driven explicitly by the test. Goroutine interleaving still varies
// across runs, so tests assert convergence and counter *presence*, not
// exact counts.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"medshare/internal/p2p"
)

// ErrBlocked marks a request refused by a partition or blackhole.
var ErrBlocked = errors.New("faultnet: link blocked")

// ErrLost marks a request (or its response) sampled as lost.
var ErrLost = errors.New("faultnet: request lost")

// Counters is a snapshot of the fabric's fault accounting.
type Counters struct {
	// Sent counts one-way messages offered to the fabric; Delivered the
	// ones handed to the inner transport (duplicates count again).
	Sent, Delivered uint64
	// Dropped, Duplicated, Delayed, Reordered count one-way message
	// faults.
	Dropped, Duplicated, Delayed, Reordered uint64
	// Blocked counts sends and requests refused by a partition or
	// blackhole.
	Blocked uint64
	// Requests counts request attempts through the fabric; RequestsLost
	// the ones sampled as lost, RequestsHung the ones held until the
	// caller's context expired.
	Requests, RequestsLost, RequestsHung uint64
}

// Fabric is a shared fault schedule for a set of wrapped endpoints.
type Fabric struct {
	mu  sync.Mutex
	rng *rand.Rand

	dropRate    float64
	dupRate     float64
	reorderRate float64
	reqLossRate float64
	reqHangRate float64

	delayBase   time.Duration
	delayJitter time.Duration
	linkDelay   map[link]time.Duration

	group      map[string]int // endpoint -> partition group
	oneWayCut  map[link]bool  // directed blocks (asymmetric partitions)
	blackholed map[string]bool

	// heldBack holds one reorder-sampled message per directed link; it is
	// released behind the next message on the link (or by a flush timer).
	heldBack map[link]*heldMsg

	c Counters
}

type link struct{ from, to string }

type heldMsg struct {
	msg   p2p.Message
	to    string
	inner p2p.Transport
	timer *time.Timer
}

// reorderMaxHold bounds how long a held-back message waits for a
// successor before it is flushed anyway.
const reorderMaxHold = 50 * time.Millisecond

// New creates a fabric whose sampling is driven by seed.
func New(seed int64) *Fabric {
	return &Fabric{
		rng:        rand.New(rand.NewSource(seed)),
		linkDelay:  make(map[link]time.Duration),
		group:      make(map[string]int),
		oneWayCut:  make(map[link]bool),
		blackholed: make(map[string]bool),
		heldBack:   make(map[link]*heldMsg),
	}
}

// SetDropRate sets the probability in [0,1) that a one-way message is
// silently lost.
func (f *Fabric) SetDropRate(p float64) { f.mu.Lock(); f.dropRate = p; f.mu.Unlock() }

// SetDuplicateRate sets the probability that a one-way message is
// delivered twice.
func (f *Fabric) SetDuplicateRate(p float64) { f.mu.Lock(); f.dupRate = p; f.mu.Unlock() }

// SetReorderRate sets the probability that a one-way message is held
// back and released behind the next message on the same link.
func (f *Fabric) SetReorderRate(p float64) { f.mu.Lock(); f.reorderRate = p; f.mu.Unlock() }

// SetRequestLoss sets the request fault probabilities: loss fails the
// request after the link delay (a lost request or response), hang holds
// it until the caller's context expires.
func (f *Fabric) SetRequestLoss(loss, hang float64) {
	f.mu.Lock()
	f.reqLossRate, f.reqHangRate = loss, hang
	f.mu.Unlock()
}

// SetDelay sets the base one-way delay and jitter added to every
// delivery.
func (f *Fabric) SetDelay(base, jitter time.Duration) {
	f.mu.Lock()
	f.delayBase, f.delayJitter = base, jitter
	f.mu.Unlock()
}

// SpikeLink sets an extra symmetric delay on one link (a latency spike);
// d == 0 clears it.
func (f *Fabric) SpikeLink(a, b string, d time.Duration) {
	f.mu.Lock()
	if d <= 0 {
		delete(f.linkDelay, link{a, b})
		delete(f.linkDelay, link{b, a})
	} else {
		f.linkDelay[link{a, b}] = d
		f.linkDelay[link{b, a}] = d
	}
	f.mu.Unlock()
}

// Partition splits the named endpoints into isolated groups: traffic
// between different groups is blocked both ways. Endpoints not named in
// any group stay reachable by everyone. Calling Partition replaces the
// previous grouping.
func (f *Fabric) Partition(groups ...[]string) {
	f.mu.Lock()
	f.group = make(map[string]int)
	for i, g := range groups {
		for _, name := range g {
			f.group[name] = i
		}
	}
	f.mu.Unlock()
}

// Cut blocks the directed link from -> to (an asymmetric partition:
// replies and reverse traffic still flow).
func (f *Fabric) Cut(from, to string) {
	f.mu.Lock()
	f.oneWayCut[link{from, to}] = true
	f.mu.Unlock()
}

// Heal clears all partitions and directed cuts (not blackholes).
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.group = make(map[string]int)
	f.oneWayCut = make(map[link]bool)
	f.mu.Unlock()
}

// Blackhole makes an endpoint unreachable in both directions — the
// wrapped network's view of a crashed process.
func (f *Fabric) Blackhole(name string) {
	f.mu.Lock()
	f.blackholed[name] = true
	f.mu.Unlock()
}

// Restore undoes Blackhole.
func (f *Fabric) Restore(name string) {
	f.mu.Lock()
	delete(f.blackholed, name)
	f.mu.Unlock()
}

// Counters returns a snapshot of the fault accounting.
func (f *Fabric) Counters() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.c
}

// blockedLocked reports whether from -> to is unreachable.
func (f *Fabric) blockedLocked(from, to string) bool {
	if f.blackholed[from] || f.blackholed[to] {
		return true
	}
	if f.oneWayCut[link{from, to}] {
		return true
	}
	ga, aok := f.group[from]
	gb, bok := f.group[to]
	return aok && bok && ga != gb
}

// delayLocked samples the delivery delay for one link.
func (f *Fabric) delayLocked(from, to string) time.Duration {
	d := f.delayBase + f.linkDelay[link{from, to}]
	if f.delayJitter > 0 {
		d += time.Duration(f.rng.Int63n(int64(f.delayJitter)))
	}
	return d
}

func (f *Fabric) sampleLocked(p float64) bool {
	return p > 0 && f.rng.Float64() < p
}

// Wrap returns a Transport that routes inner's traffic through the
// fabric's fault schedule. The wrapped endpoint keeps inner's name, so
// partitions and blackholes address endpoints by their transport names.
func (f *Fabric) Wrap(inner p2p.Transport) p2p.Transport {
	return &endpoint{fabric: f, inner: inner}
}

// endpoint implements p2p.Transport over a wrapped inner transport.
type endpoint struct {
	fabric *Fabric
	inner  p2p.Transport
}

// Name implements Transport.
func (e *endpoint) Name() string { return e.inner.Name() }

// Handle implements Transport.
func (e *endpoint) Handle(h p2p.Handler) { e.inner.Handle(h) }

// HandleRequest implements Transport.
func (e *endpoint) HandleRequest(h p2p.RequestHandler) { e.inner.HandleRequest(h) }

// Peers implements Transport.
func (e *endpoint) Peers() []string { return e.inner.Peers() }

// Close implements Transport.
func (e *endpoint) Close() error { return e.inner.Close() }

// Send implements Transport. Faults are silent: like UDP gossip, the
// sender cannot distinguish a dropped message from a delivered one.
func (e *endpoint) Send(to string, msg p2p.Message) error {
	f := e.fabric
	from := e.inner.Name()
	f.mu.Lock()
	f.c.Sent++
	if f.blockedLocked(from, to) {
		f.c.Blocked++
		f.mu.Unlock()
		return nil
	}
	if f.sampleLocked(f.dropRate) {
		f.c.Dropped++
		f.mu.Unlock()
		return nil
	}
	dup := f.sampleLocked(f.dupRate)
	reorder := f.sampleLocked(f.reorderRate)
	delay := f.delayLocked(from, to)
	if dup {
		f.c.Duplicated++
	}
	if delay > 0 {
		f.c.Delayed++
	}

	// Reordering: hold this message back and release it behind the next
	// message on the same link. A held-back predecessor is always
	// released now, *after* the current message ships.
	lk := link{from, to}
	var release *heldMsg
	if prev := f.heldBack[lk]; prev != nil {
		prev.timer.Stop()
		delete(f.heldBack, lk)
		release = prev
	}
	if reorder && release == nil {
		f.c.Reordered++
		held := &heldMsg{msg: msg, to: to, inner: e.inner}
		held.timer = time.AfterFunc(reorderMaxHold, func() { f.flushHeld(lk, held) })
		f.heldBack[lk] = held
		f.mu.Unlock()
		return nil
	}
	f.c.Delivered++
	if dup {
		f.c.Delivered++
	}
	f.mu.Unlock()

	deliver := func() error {
		if delay > 0 {
			time.Sleep(delay)
		}
		err := e.inner.Send(to, msg)
		if dup {
			_ = e.inner.Send(to, msg)
		}
		if release != nil {
			f.mu.Lock()
			f.c.Delivered++
			f.mu.Unlock()
			_ = release.inner.Send(release.to, release.msg)
		}
		return err
	}
	if delay > 0 || release != nil {
		go func() { _ = deliver() }()
		return nil
	}
	return deliver()
}

// flushHeld releases a held-back message whose hold timer expired.
func (f *Fabric) flushHeld(lk link, held *heldMsg) {
	f.mu.Lock()
	if f.heldBack[lk] != held {
		f.mu.Unlock()
		return // already released behind a successor
	}
	delete(f.heldBack, lk)
	f.c.Delivered++
	f.mu.Unlock()
	_ = held.inner.Send(held.to, held.msg)
}

// Broadcast implements Transport by sending through the wrapper, so every
// per-link fault applies per destination.
func (e *endpoint) Broadcast(msg p2p.Message) error {
	for _, name := range e.inner.Peers() {
		if err := e.Send(name, msg); err != nil && !errors.Is(err, p2p.ErrUnknownEndpoint) {
			return err
		}
	}
	return nil
}

// Request implements Transport. A blocked link fails fast; a sampled
// loss fails after the link delay; a sampled hang blocks until the
// caller's context expires.
func (e *endpoint) Request(ctx context.Context, to string, msg p2p.Message) (p2p.Message, error) {
	f := e.fabric
	from := e.inner.Name()
	f.mu.Lock()
	f.c.Requests++
	if f.blockedLocked(from, to) {
		f.c.Blocked++
		f.mu.Unlock()
		return p2p.Message{}, fmt.Errorf("%w: %s -> %s", ErrBlocked, from, to)
	}
	lost := f.sampleLocked(f.reqLossRate)
	hung := !lost && f.sampleLocked(f.reqHangRate)
	delay := f.delayLocked(from, to)
	if lost {
		f.c.RequestsLost++
	}
	if hung {
		f.c.RequestsHung++
	}
	f.mu.Unlock()

	if hung {
		<-ctx.Done()
		return p2p.Message{}, ctx.Err()
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return p2p.Message{}, ctx.Err()
		}
	}
	if lost {
		return p2p.Message{}, fmt.Errorf("%w: %s -> %s", ErrLost, from, to)
	}
	return e.inner.Request(ctx, to, msg)
}
