package faultnet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"medshare/internal/p2p"
)

// stub is a synchronous in-test transport: Send records the delivery
// immediately, so fault decisions are observable without sleeps or
// scheduler races.
type stub struct {
	name string
	mu   sync.Mutex
	sent []string // "to/kind"
}

func (s *stub) Name() string                     { return s.name }
func (s *stub) Handle(p2p.Handler)               {}
func (s *stub) HandleRequest(p2p.RequestHandler) {}
func (s *stub) Peers() []string                  { return []string{"b", "c"} }
func (s *stub) Close() error                     { return nil }

func (s *stub) Send(to string, msg p2p.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sent = append(s.sent, fmt.Sprintf("%s/%s", to, msg.Kind))
	return nil
}

func (s *stub) Broadcast(msg p2p.Message) error { return nil }

func (s *stub) Request(ctx context.Context, to string, msg p2p.Message) (p2p.Message, error) {
	return msg, nil
}

func (s *stub) deliveries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.sent...)
}

func wrapStub(seed int64) (*Fabric, *stub, p2p.Transport) {
	f := New(seed)
	inner := &stub{name: "a"}
	return f, inner, f.Wrap(inner)
}

func TestDropAll(t *testing.T) {
	f, inner, ep := wrapStub(1)
	f.SetDropRate(1)
	for i := 0; i < 10; i++ {
		if err := ep.Send("b", p2p.Message{Kind: "tx"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.deliveries(); len(got) != 0 {
		t.Fatalf("delivered %v despite full drop", got)
	}
	c := f.Counters()
	if c.Dropped != 10 || c.Sent != 10 || c.Delivered != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestDuplicateAll(t *testing.T) {
	f, inner, ep := wrapStub(1)
	f.SetDuplicateRate(1)
	for i := 0; i < 5; i++ {
		if err := ep.Send("b", p2p.Message{Kind: "tx"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.deliveries(); len(got) != 10 {
		t.Fatalf("delivered %d, want 10 (every message twice)", len(got))
	}
	if c := f.Counters(); c.Duplicated != 5 || c.Delivered != 10 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestReorderSwapsAdjacentMessages(t *testing.T) {
	f, inner, ep := wrapStub(1)
	f.SetReorderRate(1)
	// First message is held back; the second releases it behind itself.
	if err := ep.Send("b", p2p.Message{Kind: "m1"}); err != nil {
		t.Fatal(err)
	}
	if got := inner.deliveries(); len(got) != 0 {
		t.Fatalf("held-back message delivered early: %v", got)
	}
	if err := ep.Send("b", p2p.Message{Kind: "m2"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := inner.deliveries()
		if len(got) == 2 {
			if got[0] != "b/m2" || got[1] != "b/m1" {
				t.Fatalf("order = %v, want [b/m2 b/m1]", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deliveries = %v", got)
		}
		time.Sleep(time.Millisecond)
	}
	if c := f.Counters(); c.Reordered != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestReorderFlushesWithoutSuccessor(t *testing.T) {
	f, inner, ep := wrapStub(1)
	f.SetReorderRate(1)
	if err := ep.Send("b", p2p.Message{Kind: "solo"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(inner.deliveries()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("held-back message never flushed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = f
}

func TestPartitionBlocksAcrossGroupsOnly(t *testing.T) {
	f, inner, ep := wrapStub(1)
	f.Partition([]string{"a", "c"}, []string{"b"})
	if err := ep.Send("b", p2p.Message{Kind: "tx"}); err != nil {
		t.Fatal(err) // silently lost, like gossip
	}
	if err := ep.Send("c", p2p.Message{Kind: "tx"}); err != nil {
		t.Fatal(err)
	}
	if got := inner.deliveries(); len(got) != 1 || got[0] != "c/tx" {
		t.Fatalf("deliveries = %v, want only c/tx", got)
	}
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); !errors.Is(err, ErrBlocked) {
		t.Fatalf("cross-partition request err = %v", err)
	}
	if _, err := ep.Request(context.Background(), "c", p2p.Message{}); err != nil {
		t.Fatalf("same-group request err = %v", err)
	}
	// Unlisted endpoints stay reachable.
	if _, err := ep.Request(context.Background(), "d", p2p.Message{}); err != nil {
		t.Fatalf("unlisted endpoint request err = %v", err)
	}

	f.Heal()
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); err != nil {
		t.Fatalf("post-heal request err = %v", err)
	}
	if c := f.Counters(); c.Blocked != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestAsymmetricCut(t *testing.T) {
	f, _, ep := wrapStub(1)
	f.Cut("a", "b")
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); !errors.Is(err, ErrBlocked) {
		t.Fatalf("cut direction err = %v", err)
	}
	// The reverse direction (b -> a) is unaffected: wrap b's side and
	// request back.
	epB := f.Wrap(&stub{name: "b"})
	if _, err := epB.Request(context.Background(), "a", p2p.Message{}); err != nil {
		t.Fatalf("reverse direction err = %v", err)
	}
	f.Heal()
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); err != nil {
		t.Fatalf("post-heal err = %v", err)
	}
}

func TestBlackholeAndRestore(t *testing.T) {
	f, inner, ep := wrapStub(1)
	f.Blackhole("b")
	if err := ep.Send("b", p2p.Message{Kind: "tx"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); !errors.Is(err, ErrBlocked) {
		t.Fatalf("blackholed request err = %v", err)
	}
	if got := inner.deliveries(); len(got) != 0 {
		t.Fatalf("deliveries to blackholed peer: %v", got)
	}

	// Traffic *from* a blackholed endpoint is blocked too (the crashed
	// process neither sends nor receives).
	f.Blackhole("a")
	f.Restore("b")
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); !errors.Is(err, ErrBlocked) {
		t.Fatalf("request from blackholed self err = %v", err)
	}
	f.Restore("a")
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); err != nil {
		t.Fatalf("post-restore request err = %v", err)
	}
}

func TestRequestLoss(t *testing.T) {
	f, _, ep := wrapStub(1)
	f.SetRequestLoss(1, 0)
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); !errors.Is(err, ErrLost) {
		t.Fatalf("err = %v, want ErrLost", err)
	}
	if c := f.Counters(); c.RequestsLost != 1 || c.Requests != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRequestHangHonorsContext(t *testing.T) {
	f, _, ep := wrapStub(1)
	f.SetRequestLoss(0, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ep.Request(ctx, "b", p2p.Message{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("hung request returned before the context expired")
	}
	if c := f.Counters(); c.RequestsHung != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLinkDelaySpike(t *testing.T) {
	f, _, ep := wrapStub(1)
	f.SpikeLink("a", "b", 30*time.Millisecond)
	start := time.Now()
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("spiked request took %v, want >= ~30ms", d)
	}
	// Other links are unaffected.
	start = time.Now()
	if _, err := ep.Request(context.Background(), "c", p2p.Message{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("unspiked request took %v", d)
	}
	f.SpikeLink("a", "b", 0)
	start = time.Now()
	if _, err := ep.Request(context.Background(), "b", p2p.Message{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("cleared spike still delays: %v", d)
	}
}

// TestDeterministicSampling runs the same single-goroutine schedule under
// the same seed twice and expects identical fault decisions.
func TestDeterministicSampling(t *testing.T) {
	run := func() Counters {
		f, _, ep := wrapStub(42)
		f.SetDropRate(0.3)
		f.SetDuplicateRate(0.2)
		f.SetRequestLoss(0.4, 0)
		for i := 0; i < 200; i++ {
			_ = ep.Send("b", p2p.Message{Kind: "tx"})
			_, _ = ep.Request(context.Background(), "b", p2p.Message{})
		}
		return f.Counters()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different counters:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 || a.RequestsLost == 0 {
		t.Fatalf("faults never sampled: %+v", a)
	}
}

// TestWrapMemnetEndToEnd exercises the fabric over a real MemNetwork:
// requests cross the wrapped link, partitions block them, heal restores.
func TestWrapMemnetEndToEnd(t *testing.T) {
	mem := p2p.NewMemNetwork(p2p.WithSeed(7))
	f := New(7)
	a := f.Wrap(mem.Endpoint("a"))
	b := f.Wrap(mem.Endpoint("b"))
	b.HandleRequest(func(m p2p.Message) (p2p.Message, error) {
		return p2p.Message{Kind: m.Kind, Payload: append([]byte("re:"), m.Payload...)}, nil
	})
	resp, err := a.Request(context.Background(), "b", p2p.Message{Kind: "data.fetch", Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "re:x" {
		t.Fatalf("resp = %q", resp.Payload)
	}
	f.Partition([]string{"a"}, []string{"b"})
	if _, err := a.Request(context.Background(), "b", p2p.Message{Kind: "data.fetch"}); !errors.Is(err, ErrBlocked) {
		t.Fatalf("partitioned request err = %v", err)
	}
	f.Heal()
	if _, err := a.Request(context.Background(), "b", p2p.Message{Kind: "data.fetch"}); err != nil {
		t.Fatalf("post-heal request err = %v", err)
	}
}
