// Package workload generates the synthetic medical data the experiments
// run on, following the schema of the paper's Fig. 1 exactly:
//
//	a0 Patient ID | a1 Medication Name | a2 Clinical Data | a3 Address |
//	a4 Dosage     | a5 Mechanism of Action | a6 Mode of Action
//
// The paper defers real patient data to future work (Section VI); the
// generator is deterministic under a seed so every experiment is
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"medshare/internal/reldb"
)

// Attribute names of the full medical record (Fig. 1).
const (
	ColPatientID  = "patient_id"
	ColMedication = "medication_name"
	ColClinical   = "clinical_data"
	ColAddress    = "address"
	ColDosage     = "dosage"
	ColMechanism  = "mechanism_of_action"
	ColMode       = "mode_of_action"
)

// medications and cities seed realistic-looking values.
var medications = []string{
	"Ibuprofen", "Wellbutrin", "Amoxicillin", "Lisinopril", "Metformin",
	"Atorvastatin", "Omeprazole", "Levothyroxine", "Amlodipine", "Gabapentin",
	"Sertraline", "Prednisone", "Azithromycin", "Warfarin", "Insulin",
}

var cities = []string{
	"Sapporo", "Osaka", "Tokyo", "Kyoto", "Nagoya", "Fukuoka", "Sendai",
	"Hiroshima", "Yokohama", "Kobe",
}

var dosages = []string{
	"one tablet every 4h", "100 mg twice daily", "250 mg three times daily",
	"10 mg at bedtime", "two tablets every 6h", "500 mg once daily",
	"5 ml every 8h", "20 mg in the morning",
}

// FullSchema returns the schema of the full medical record table.
func FullSchema(name string) reldb.Schema {
	return reldb.Schema{
		Name: name,
		Columns: []reldb.Column{
			{Name: ColPatientID, Type: reldb.KindInt},
			{Name: ColMedication, Type: reldb.KindString},
			{Name: ColClinical, Type: reldb.KindString},
			{Name: ColAddress, Type: reldb.KindString},
			{Name: ColDosage, Type: reldb.KindString},
			{Name: ColMechanism, Type: reldb.KindString},
			{Name: ColMode, Type: reldb.KindString},
		},
		Key: []string{ColPatientID},
	}
}

// Generate builds a full-records table with n rows, deterministic under
// seed. Patient IDs start at 188 in homage to Fig. 1. Mechanism and mode
// of action are functions of the medication name — the functional
// dependency (a1 → a5, a6) that Fig. 1 exhibits and that makes the
// medication-keyed views D2/D23/D32 well defined.
func Generate(name string, n int, seed int64) *reldb.Table {
	rng := rand.New(rand.NewSource(seed))
	// Fix the per-medication pharmacology once, so every row of the same
	// medication agrees on a5/a6.
	mech := make(map[string]string, len(medications))
	mode := make(map[string]string, len(medications))
	for _, med := range medications {
		mech[med] = fmt.Sprintf("MeA-%s-%d", med, rng.Intn(1000))
		mode[med] = fmt.Sprintf("MoA-%s-%d", med, rng.Intn(1000))
	}
	t := reldb.MustNewTable(FullSchema(name))
	for i := 0; i < n; i++ {
		med := medications[rng.Intn(len(medications))]
		row := reldb.Row{
			reldb.I(int64(188 + i)),
			reldb.S(med),
			reldb.S(fmt.Sprintf("CliD%d", i+1)),
			reldb.S(cities[rng.Intn(len(cities))]),
			reldb.S(dosages[rng.Intn(len(dosages))]),
			reldb.S(mech[med]),
			reldb.S(mode[med]),
		}
		t.MustInsert(row)
	}
	return t
}

// Fig1Data reproduces the exact two-row example of Fig. 1.
func Fig1Data(name string) *reldb.Table {
	t := reldb.MustNewTable(FullSchema(name))
	t.MustInsert(reldb.Row{
		reldb.I(188), reldb.S("Ibuprofen"), reldb.S("CliD1"), reldb.S("Sapporo"),
		reldb.S("one tablet every 4h"), reldb.S("MeA1"), reldb.S("MoA1"),
	})
	t.MustInsert(reldb.Row{
		reldb.I(189), reldb.S("Wellbutrin"), reldb.S("CliD2"), reldb.S("Osaka"),
		reldb.S("100 mg twice daily"), reldb.S("MeA2"), reldb.S("MoA2"),
	})
	return t
}

// The prescriptions ⋈ formulary workload: a pharmacist-style peer holds
// only the prescription slice of the record (patient, medication,
// dosage) plus a read-only formulary — the per-medication pharmacology
// reference — and shares the *joined* view (each prescription enriched
// with its mechanism of action). The counterparty derives the same view
// by projection from its richer table, so the share exercises the join
// lens's backward (PutDelta) path end to end.

// PrescriptionCols are the prescription slice of the record: a0, a1, a4.
var PrescriptionCols = []string{ColPatientID, ColMedication, ColDosage}

// FormularySchema returns the schema of the formulary reference table:
// medication name (key) mapped to its mechanism of action.
func FormularySchema(name string) reldb.Schema {
	return reldb.Schema{
		Name: name,
		Columns: []reldb.Column{
			{Name: ColMedication, Type: reldb.KindString},
			{Name: ColMechanism, Type: reldb.KindString},
		},
		Key: []string{ColMedication},
	}
}

// Formulary builds the reference table matching Generate(·, ·, seed):
// the same rng draws fix the per-medication pharmacology first, so the
// formulary's mechanism values agree exactly with the a5 column of the
// generated records — the functional dependency a1 → a5 shared between
// the two.
func Formulary(name string, seed int64) *reldb.Table {
	rng := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable(FormularySchema(name))
	for _, med := range medications {
		mech := fmt.Sprintf("MeA-%s-%d", med, rng.Intn(1000))
		rng.Intn(1000) // the mode-of-action draw, unused here but paired
		t.MustInsert(reldb.Row{reldb.S(med), reldb.S(mech)})
	}
	return t
}

// Columns held by each stakeholder's local database in Fig. 1.
var (
	// PatientCols: a0-a4 (table D1).
	PatientCols = []string{ColPatientID, ColMedication, ColClinical, ColAddress, ColDosage}
	// ResearcherCols: a1, a5, a6 (table D2), keyed by medication name.
	ResearcherCols = []string{ColMedication, ColMechanism, ColMode}
	// DoctorCols: a0-a2, a4, a5 (table D3).
	DoctorCols = []string{ColPatientID, ColMedication, ColClinical, ColDosage, ColMechanism}
	// ShareD13Cols: a0, a1, a2, a4 (tables D13/D31, Patient-Doctor).
	ShareD13Cols = []string{ColPatientID, ColMedication, ColClinical, ColDosage}
	// ShareD23Cols: a1, a5 (tables D23/D32, Researcher-Doctor).
	ShareD23Cols = []string{ColMedication, ColMechanism}
)

// The many-shares peer scenario: one hub stakeholder (a hospital-scale
// peer) holds a wide source table and maintains one pairwise share per
// counterparty, each projecting the key plus that share's own value
// column. Updates to different columns touch disjoint shares, so the
// scenario isolates the peer's fan-out scalability: how many independent
// shares it can propose, serve, and resync concurrently.

// ManyShareCol returns the value column owned by share i.
func ManyShareCol(i int) string { return fmt.Sprintf("v%d", i) }

// ManySharesSchema returns the hub's wide source schema: one int key plus
// one string value column per share.
func ManySharesSchema(name string, shares int) reldb.Schema {
	s := reldb.Schema{Name: name, Key: []string{"k"}}
	s.Columns = append(s.Columns, reldb.Column{Name: "k", Type: reldb.KindInt})
	for i := 0; i < shares; i++ {
		s.Columns = append(s.Columns, reldb.Column{Name: ManyShareCol(i), Type: reldb.KindString})
	}
	return s
}

// GenerateManyShares builds the hub's source table with n rows,
// deterministic under seed.
func GenerateManyShares(name string, shares, n int, seed int64) *reldb.Table {
	rng := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable(ManySharesSchema(name, shares))
	for r := 0; r < n; r++ {
		row := make(reldb.Row, 0, shares+1)
		row = append(row, reldb.I(int64(r)))
		for i := 0; i < shares; i++ {
			row = append(row, reldb.S(fmt.Sprintf("v%d-%d-%d", i, r, rng.Intn(1000))))
		}
		t.MustInsert(row)
	}
	return t
}

// Update is one synthetic field update.
type Update struct {
	// Key identifies the row (primary-key tuple).
	Key reldb.Row
	// Col is the attribute updated.
	Col string
	// Val is the new value.
	Val reldb.Value
}

// RandomUpdates produces n updates touching only the given columns of
// existing rows, deterministic under seed.
func RandomUpdates(t *reldb.Table, cols []string, n int, seed int64) []Update {
	rng := rand.New(rand.NewSource(seed))
	rows := t.RowsCanonical()
	if len(rows) == 0 || len(cols) == 0 {
		return nil
	}
	out := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		r := rows[rng.Intn(len(rows))]
		col := cols[rng.Intn(len(cols))]
		out = append(out, Update{
			Key: t.KeyValues(r),
			Col: col,
			Val: reldb.S(fmt.Sprintf("v%d-%d", seed, i)),
		})
	}
	return out
}

// Apply performs the update on a table.
func (u Update) Apply(t *reldb.Table) error {
	return t.Update(u.Key, map[string]reldb.Value{u.Col: u.Val})
}
