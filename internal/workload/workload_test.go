package workload

import (
	"testing"

	"medshare/internal/reldb"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("full", 50, 7)
	b := Generate("full", 50, 7)
	if a.Hash() != b.Hash() {
		t.Fatal("same seed must generate identical data")
	}
	c := Generate("full", 50, 8)
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds should generate different data")
	}
}

func TestGenerateShape(t *testing.T) {
	tbl := Generate("full", 25, 1)
	if tbl.Len() != 25 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if len(tbl.Schema().Columns) != 7 {
		t.Fatalf("columns = %d", len(tbl.Schema().Columns))
	}
	// Patient IDs start at 188 (Fig. 1).
	if !tbl.Has(reldb.Row{reldb.I(188)}) || !tbl.Has(reldb.Row{reldb.I(212)}) {
		t.Fatal("patient ID range wrong")
	}
}

func TestGenerateFunctionalDependency(t *testing.T) {
	// a1 -> a5, a6 must hold or the medication-keyed views are undefined.
	tbl := Generate("full", 300, 3)
	mech := make(map[string]string)
	mode := make(map[string]string)
	for _, r := range tbl.Rows() {
		med, _ := r[1].Str()
		me, _ := r[5].Str()
		mo, _ := r[6].Str()
		if prev, ok := mech[med]; ok && prev != me {
			t.Fatalf("medication %s has two mechanisms", med)
		}
		if prev, ok := mode[med]; ok && prev != mo {
			t.Fatalf("medication %s has two modes", med)
		}
		mech[med] = me
		mode[med] = mo
	}
}

func TestGenerateSupportsAllFig1Views(t *testing.T) {
	tbl := Generate("full", 100, 5)
	if _, err := tbl.Project("D1", PatientCols, nil); err != nil {
		t.Fatalf("D1: %v", err)
	}
	if _, err := tbl.Project("D2", ResearcherCols, []string{ColMedication}); err != nil {
		t.Fatalf("D2: %v", err)
	}
	if _, err := tbl.Project("D3", DoctorCols, nil); err != nil {
		t.Fatalf("D3: %v", err)
	}
	if _, err := tbl.Project("D13", ShareD13Cols, nil); err != nil {
		t.Fatalf("D13: %v", err)
	}
	if _, err := tbl.Project("D23", ShareD23Cols, []string{ColMedication}); err != nil {
		t.Fatalf("D23: %v", err)
	}
}

func TestFig1DataExact(t *testing.T) {
	tbl := Fig1Data("full")
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	r, ok := tbl.Get(reldb.Row{reldb.I(188)})
	if !ok {
		t.Fatal("row 188 missing")
	}
	med, _ := r[1].Str()
	addr, _ := r[3].Str()
	dose, _ := r[4].Str()
	if med != "Ibuprofen" || addr != "Sapporo" || dose != "one tablet every 4h" {
		t.Fatalf("row 188 = %v", r)
	}
	r, _ = tbl.Get(reldb.Row{reldb.I(189)})
	if med, _ := r[1].Str(); med != "Wellbutrin" {
		t.Fatalf("row 189 = %v", r)
	}
}

func TestRandomUpdatesApply(t *testing.T) {
	tbl := Generate("full", 20, 1)
	ups := RandomUpdates(tbl, []string{ColDosage, ColClinical}, 30, 2)
	if len(ups) != 30 {
		t.Fatalf("updates = %d", len(ups))
	}
	for i, u := range ups {
		if u.Col != ColDosage && u.Col != ColClinical {
			t.Fatalf("update %d touches %s", i, u.Col)
		}
		if err := u.Apply(tbl); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
}

func TestRandomUpdatesDeterministic(t *testing.T) {
	tbl := Generate("full", 10, 1)
	a := RandomUpdates(tbl, []string{ColDosage}, 5, 9)
	b := RandomUpdates(tbl, []string{ColDosage}, 5, 9)
	for i := range a {
		if !a[i].Key.Equal(b[i].Key) || a[i].Col != b[i].Col || !a[i].Val.Equal(b[i].Val) {
			t.Fatal("updates not deterministic")
		}
	}
}

func TestRandomUpdatesEmptyInputs(t *testing.T) {
	empty := reldb.MustNewTable(FullSchema("e"))
	if got := RandomUpdates(empty, []string{ColDosage}, 5, 1); got != nil {
		t.Fatal("updates on empty table")
	}
	tbl := Generate("full", 5, 1)
	if got := RandomUpdates(tbl, nil, 5, 1); got != nil {
		t.Fatal("updates with no columns")
	}
}
