package consensus

import (
	"context"

	"medshare/internal/chain"
	"medshare/internal/identity"
	"medshare/internal/merkle"
)

// PoW is a fixed-difficulty proof-of-work engine: a sealed header's hash
// must start with Difficulty zero bits. Difficulty is deliberately small
// in tests (the system's security argument does not depend on hash power;
// the paper itself recommends a private chain).
type PoW struct {
	// Difficulty is the required number of leading zero bits.
	Difficulty uint8
}

// NewPoW creates a proof-of-work engine.
func NewPoW(difficulty uint8) *PoW { return &PoW{Difficulty: difficulty} }

// Name implements Engine.
func (p *PoW) Name() string { return "pow" }

// Prepare implements Engine.
func (p *PoW) Prepare(h *chain.Header) error {
	h.Difficulty = p.Difficulty
	h.Sig = nil
	h.ProposerPub = nil
	return nil
}

// Seal implements Engine: it grinds the nonce until the header hash meets
// the difficulty target, checking ctx every 4096 attempts.
func (p *PoW) Seal(ctx context.Context, b *chain.Block, id *identity.Identity) error {
	if id != nil {
		b.Header.Proposer = id.Address()
	}
	defer b.ResetHashCache() // sealing mutates the header
	for nonce := uint64(0); ; nonce++ {
		if nonce%4096 == 0 {
			select {
			case <-ctx.Done():
				return ErrSealAborted
			default:
			}
		}
		b.Header.Nonce = nonce
		if meetsTarget(b.Header.Hash(), p.Difficulty) {
			return nil
		}
	}
}

// VerifyHeader implements Engine.
func (p *PoW) VerifyHeader(h *chain.Header) error {
	if h.Difficulty != p.Difficulty {
		return ErrBadProof
	}
	if !meetsTarget(h.Hash(), p.Difficulty) {
		return ErrBadProof
	}
	return nil
}

// MayPropose implements Engine: anyone may mine.
func (p *PoW) MayPropose(identity.Address, uint64) bool { return true }

// meetsTarget reports whether the hash has at least bits leading zero
// bits.
func meetsTarget(h merkle.Hash, bits uint8) bool {
	full := int(bits / 8)
	for i := 0; i < full; i++ {
		if h[i] != 0 {
			return false
		}
	}
	if rem := bits % 8; rem != 0 {
		if h[full]>>(8-rem) != 0 {
			return false
		}
	}
	return true
}
