// Package consensus provides pluggable block-production engines: an
// Ethereum-style proof-of-work miner (the paper's Section II-A setting)
// and a proof-of-authority round-robin signer (the "private blockchain"
// the paper recommends in Section IV-3). Both implement Engine and plug
// into internal/node.
package consensus

import (
	"context"
	"errors"

	"medshare/internal/chain"
	"medshare/internal/identity"
)

// Errors returned by engines.
var (
	ErrSealAborted    = errors.New("consensus: sealing aborted")
	ErrBadProof       = errors.New("consensus: header fails proof-of-work target")
	ErrNotAuthority   = errors.New("consensus: proposer is not an authority")
	ErrBadSig         = errors.New("consensus: bad proposer signature")
	ErrWrongTurn      = errors.New("consensus: proposer out of turn")
	ErrNotOurTurn     = errors.New("consensus: not this node's turn to propose")
	ErrNoAuthorities  = errors.New("consensus: authority set is empty")
	ErrUnknownSealKey = errors.New("consensus: sealing identity is required")
)

// Engine abstracts how blocks are produced and how their consensus fields
// are verified.
type Engine interface {
	// Name identifies the engine ("pow" or "poa").
	Name() string
	// Prepare fills the consensus fields of a candidate header (e.g.
	// difficulty) before sealing.
	Prepare(h *chain.Header) error
	// Seal finalizes the block: mining the nonce under PoW, signing under
	// PoA. Seal must respect ctx cancellation.
	Seal(ctx context.Context, b *chain.Block, id *identity.Identity) error
	// VerifyHeader checks the consensus-specific validity of a header.
	VerifyHeader(h *chain.Header) error
	// MayPropose reports whether the identity may produce the block at
	// the given height (always true under PoW).
	MayPropose(addr identity.Address, height uint64) bool
}
