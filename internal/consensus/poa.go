package consensus

import (
	"context"
	"crypto/ed25519"

	"medshare/internal/chain"
	"medshare/internal/identity"
)

// PoA is a proof-of-authority engine: a fixed authority set signs blocks.
// In strict mode authorities take turns round-robin by height (the
// production configuration: deterministic proposer, no forks); in relaxed
// mode any authority may seal any height (useful in single-node tests).
type PoA struct {
	// Authorities is the ordered signer set.
	Authorities []identity.Address
	// Strict enables round-robin turn enforcement.
	Strict bool
}

// NewPoA creates a proof-of-authority engine over the given signer set.
func NewPoA(strict bool, authorities ...identity.Address) *PoA {
	return &PoA{Authorities: authorities, Strict: strict}
}

// Name implements Engine.
func (p *PoA) Name() string { return "poa" }

// Prepare implements Engine.
func (p *PoA) Prepare(h *chain.Header) error {
	if len(p.Authorities) == 0 {
		return ErrNoAuthorities
	}
	h.Difficulty = 0
	h.Nonce = 0
	return nil
}

// Seal implements Engine: the authority signs the header.
func (p *PoA) Seal(ctx context.Context, b *chain.Block, id *identity.Identity) error {
	if id == nil {
		return ErrUnknownSealKey
	}
	select {
	case <-ctx.Done():
		return ErrSealAborted
	default:
	}
	if !p.MayPropose(id.Address(), b.Header.Height) {
		if p.isAuthority(id.Address()) {
			return ErrNotOurTurn
		}
		return ErrNotAuthority
	}
	b.Header.Proposer = id.Address()
	b.Header.ProposerPub = append([]byte(nil), id.PublicKey()...)
	sh := b.Header.SigHash()
	b.Header.Sig = id.Sign(sh[:])
	b.ResetHashCache() // sealing mutated the header
	return nil
}

// VerifyHeader implements Engine.
func (p *PoA) VerifyHeader(h *chain.Header) error {
	if !p.isAuthority(h.Proposer) {
		return ErrNotAuthority
	}
	if p.Strict && !p.MayPropose(h.Proposer, h.Height) {
		return ErrWrongTurn
	}
	if len(h.ProposerPub) != ed25519.PublicKeySize || len(h.Sig) == 0 {
		return ErrBadSig
	}
	sh := h.SigHash()
	if err := identity.Verify(h.Proposer, ed25519.PublicKey(h.ProposerPub), sh[:], h.Sig); err != nil {
		return ErrBadSig
	}
	return nil
}

// MayPropose implements Engine.
func (p *PoA) MayPropose(addr identity.Address, height uint64) bool {
	if len(p.Authorities) == 0 {
		return false
	}
	if !p.Strict {
		return p.isAuthority(addr)
	}
	return p.Authorities[int(height%uint64(len(p.Authorities)))] == addr
}

func (p *PoA) isAuthority(addr identity.Address) bool {
	for _, a := range p.Authorities {
		if a == addr {
			return true
		}
	}
	return false
}
