package consensus

import (
	"context"
	"errors"
	"testing"
	"time"

	"medshare/internal/chain"
	"medshare/internal/identity"
)

func candidate(parent *chain.Block, proposer *identity.Identity) *chain.Block {
	b := &chain.Block{
		Header: chain.Header{
			Height:         parent.Header.Height + 1,
			PrevHash:       parent.Hash(),
			TimestampMicro: time.Now().UnixMicro(),
			Proposer:       proposer.Address(),
		},
	}
	b.Header.TxRoot = b.ComputeTxRoot()
	return b
}

func TestPoWSealMeetsTarget(t *testing.T) {
	id := identity.MustNew("miner")
	engine := NewPoW(10)
	b := candidate(chain.Genesis("t"), id)
	if err := engine.Prepare(&b.Header); err != nil {
		t.Fatal(err)
	}
	if err := engine.Seal(context.Background(), b, id); err != nil {
		t.Fatal(err)
	}
	if err := engine.VerifyHeader(&b.Header); err != nil {
		t.Fatal(err)
	}
}

func TestPoWVerifyRejectsUnmined(t *testing.T) {
	id := identity.MustNew("miner")
	engine := NewPoW(16)
	b := candidate(chain.Genesis("t"), id)
	_ = engine.Prepare(&b.Header)
	// Unmined nonce almost certainly misses a 16-bit target.
	if err := engine.VerifyHeader(&b.Header); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestPoWVerifyRejectsWrongDifficulty(t *testing.T) {
	id := identity.MustNew("miner")
	engine := NewPoW(4)
	b := candidate(chain.Genesis("t"), id)
	_ = engine.Prepare(&b.Header)
	if err := engine.Seal(context.Background(), b, id); err != nil {
		t.Fatal(err)
	}
	verifier := NewPoW(8)
	if err := verifier.VerifyHeader(&b.Header); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestPoWSealRespectsCancellation(t *testing.T) {
	id := identity.MustNew("miner")
	engine := NewPoW(255) // impossible target
	b := candidate(chain.Genesis("t"), id)
	_ = engine.Prepare(&b.Header)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := engine.Seal(ctx, b, id); !errors.Is(err, ErrSealAborted) {
		t.Fatalf("want ErrSealAborted, got %v", err)
	}
}

func TestPoWMayProposeAnyone(t *testing.T) {
	engine := NewPoW(1)
	if !engine.MayPropose(identity.MustNew("x").Address(), 42) {
		t.Fatal("PoW must allow any proposer")
	}
}

func TestMeetsTargetBitMath(t *testing.T) {
	h := [32]byte{0x0f} // 4 leading zero bits
	if !meetsTarget(h, 4) {
		t.Fatal("4 zero bits should meet target 4")
	}
	if meetsTarget(h, 5) {
		t.Fatal("4 zero bits should miss target 5")
	}
	zero := [32]byte{}
	if !meetsTarget(zero, 255) {
		t.Fatal("all-zero hash should meet any target")
	}
	if !meetsTarget(h, 0) {
		t.Fatal("target 0 always met")
	}
}

func TestPoASealVerify(t *testing.T) {
	auth := identity.MustNew("authority")
	engine := NewPoA(false, auth.Address())
	b := candidate(chain.Genesis("t"), auth)
	if err := engine.Prepare(&b.Header); err != nil {
		t.Fatal(err)
	}
	if err := engine.Seal(context.Background(), b, auth); err != nil {
		t.Fatal(err)
	}
	if err := engine.VerifyHeader(&b.Header); err != nil {
		t.Fatal(err)
	}
}

func TestPoARejectsOutsider(t *testing.T) {
	auth := identity.MustNew("authority")
	outsider := identity.MustNew("outsider")
	engine := NewPoA(false, auth.Address())
	b := candidate(chain.Genesis("t"), outsider)
	_ = engine.Prepare(&b.Header)
	if err := engine.Seal(context.Background(), b, outsider); !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("want ErrNotAuthority, got %v", err)
	}
}

func TestPoAVerifyRejectsForgedSignature(t *testing.T) {
	auth := identity.MustNew("authority")
	engine := NewPoA(false, auth.Address())
	b := candidate(chain.Genesis("t"), auth)
	_ = engine.Prepare(&b.Header)
	if err := engine.Seal(context.Background(), b, auth); err != nil {
		t.Fatal(err)
	}
	b.Header.Sig[0] ^= 1
	if err := engine.VerifyHeader(&b.Header); !errors.Is(err, ErrBadSig) {
		t.Fatalf("want ErrBadSig, got %v", err)
	}
}

func TestPoAVerifyRejectsUnsignedFromAuthority(t *testing.T) {
	auth := identity.MustNew("authority")
	engine := NewPoA(false, auth.Address())
	b := candidate(chain.Genesis("t"), auth)
	_ = engine.Prepare(&b.Header)
	if err := engine.VerifyHeader(&b.Header); !errors.Is(err, ErrBadSig) {
		t.Fatalf("want ErrBadSig, got %v", err)
	}
}

func TestPoAStrictRoundRobin(t *testing.T) {
	a := identity.MustNew("a")
	b := identity.MustNew("b")
	c := identity.MustNew("c")
	engine := NewPoA(true, a.Address(), b.Address(), c.Address())
	// Height h is the turn of authorities[h % 3].
	cases := []struct {
		height uint64
		id     *identity.Identity
		want   bool
	}{
		{0, a, true}, {1, b, true}, {2, c, true},
		{3, a, true}, {1, a, false}, {2, b, false},
	}
	for _, cse := range cases {
		if got := engine.MayPropose(cse.id.Address(), cse.height); got != cse.want {
			t.Errorf("MayPropose(%s, %d) = %v, want %v", cse.id.Name, cse.height, got, cse.want)
		}
	}
}

func TestPoAStrictSealOutOfTurn(t *testing.T) {
	a := identity.MustNew("a")
	b := identity.MustNew("b")
	engine := NewPoA(true, a.Address(), b.Address())
	blk := candidate(chain.Genesis("t"), b)
	blk.Header.Height = 2 // a's turn
	_ = engine.Prepare(&blk.Header)
	if err := engine.Seal(context.Background(), blk, b); !errors.Is(err, ErrNotOurTurn) {
		t.Fatalf("want ErrNotOurTurn, got %v", err)
	}
}

func TestPoAStrictVerifyOutOfTurn(t *testing.T) {
	a := identity.MustNew("a")
	b := identity.MustNew("b")
	relaxed := NewPoA(false, a.Address(), b.Address())
	strict := NewPoA(true, a.Address(), b.Address())
	blk := candidate(chain.Genesis("t"), b)
	blk.Header.Height = 2 // a's turn under strict rules
	_ = relaxed.Prepare(&blk.Header)
	if err := relaxed.Seal(context.Background(), blk, b); err != nil {
		t.Fatal(err)
	}
	if err := relaxed.VerifyHeader(&blk.Header); err != nil {
		t.Fatalf("relaxed should accept: %v", err)
	}
	if err := strict.VerifyHeader(&blk.Header); !errors.Is(err, ErrWrongTurn) {
		t.Fatalf("want ErrWrongTurn, got %v", err)
	}
}

func TestPoAEmptyAuthoritySet(t *testing.T) {
	engine := NewPoA(true)
	var h chain.Header
	if err := engine.Prepare(&h); !errors.Is(err, ErrNoAuthorities) {
		t.Fatalf("want ErrNoAuthorities, got %v", err)
	}
	if engine.MayPropose(identity.MustNew("x").Address(), 0) {
		t.Fatal("empty authority set should refuse all proposers")
	}
}

func TestPoASealNeedsIdentity(t *testing.T) {
	auth := identity.MustNew("a")
	engine := NewPoA(false, auth.Address())
	b := candidate(chain.Genesis("t"), auth)
	if err := engine.Seal(context.Background(), b, nil); !errors.Is(err, ErrUnknownSealKey) {
		t.Fatalf("want ErrUnknownSealKey, got %v", err)
	}
}
