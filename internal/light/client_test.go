package light

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"testing"

	"medshare/internal/chain"
	"medshare/internal/contract/sharereg"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
	"medshare/internal/statedb"
)

// fixture is a miniature full node a fake source serves from: a header
// chain, a world state holding one share's metadata, and the share's
// view table. Tests mutate it (advance a version) or interpose tamper
// hooks on the source.
type fixture struct {
	network string
	headers []chain.Header // index == height
	state   *statedb.Store
	view    *reldb.Table
	shareID string
	seq     uint64
}

func testSchema() reldb.Schema {
	return reldb.Schema{
		Name: "vitals",
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.KindInt},
			{Name: "val", Type: reldb.KindString},
		},
		Key: []string{"id"},
	}
}

func newFixture(t *testing.T, rows int) *fixture {
	t.Helper()
	f := &fixture{network: "lighttest", shareID: "S1", state: statedb.NewStore()}
	g := chain.Genesis(f.network)
	f.headers = []chain.Header{g.Header}
	view, err := reldb.NewTable(testSchema())
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	f.view = view
	for i := 0; i < rows; i++ {
		if err := view.Insert(reldb.Row{reldb.I(int64(i)), reldb.S("v0")}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	f.commitVersion(t, 1)
	return f
}

// commitVersion records the view's current content as the share's next
// finalized on-chain version and extends the header chain with a block
// committing to the resulting world state.
func (f *fixture) commitVersion(t *testing.T, seq uint64) {
	t.Helper()
	f.seq = seq
	h := f.view.Hash()
	meta := sharereg.Meta{ID: f.shareID, Seq: seq, LastPayloadHash: hex.EncodeToString(h[:])}
	raw, err := json.Marshal(&meta)
	if err != nil {
		t.Fatalf("marshal meta: %v", err)
	}
	height := uint64(len(f.headers))
	f.state.Commit(statedb.WriteSet{"share/" + f.shareID: raw}, statedb.Version{Height: height})
	prev := f.headers[height-1]
	f.headers = append(f.headers, chain.Header{
		Height:    height,
		PrevHash:  prev.Hash(),
		StateRoot: f.state.Root(),
	})
}

// fakeSource serves the fixture, with optional interposition hooks.
type fakeSource struct {
	f *fixture
	// onShareHead / onRow mutate the response before it is returned.
	onShareHead func(*ShareHead)
	onRow       func(*RowFetch)
}

func (s *fakeSource) Headers(_ context.Context, from uint64) ([]chain.Header, int, error) {
	if from >= uint64(len(s.f.headers)) {
		return nil, 0, nil
	}
	hs := append([]chain.Header(nil), s.f.headers[from:]...)
	return hs, len(chain.EncodeHeaders(hs)), nil
}

func (s *fakeSource) ShareHead(_ context.Context, shareID string) (ShareHead, int, error) {
	value, ver, proof, root, err := s.f.state.ProveKey("share/" + shareID)
	if err != nil {
		return ShareHead{}, 0, err
	}
	height := uint64(0)
	for i := len(s.f.headers) - 1; i >= 0; i-- {
		if s.f.headers[i].StateRoot == root {
			height = uint64(i)
			break
		}
	}
	sh := ShareHead{Height: height, Meta: value, Version: ver, Proof: proof}
	if s.onShareHead != nil {
		s.onShareHead(&sh)
	}
	return sh, len(EncodeShareHead(&sh)), nil
}

func (s *fakeSource) Row(_ context.Context, shareID string, key reldb.Row) (RowFetch, int, error) {
	row, proof, err := s.f.view.ProveRow(key)
	if err != nil {
		return RowFetch{}, 0, err
	}
	rf := RowFetch{
		Seq:       s.f.seq,
		SchemaSum: s.f.view.SchemaSum(),
		Rows:      s.f.view.Len(),
		Root:      s.f.view.RowsRoot(),
		Schema:    s.f.view.Schema(),
		Row:       row,
		Proof:     proof,
	}
	if s.onRow != nil {
		s.onRow(&rf)
	}
	raw, _ := EncodeRowFetch(&rf)
	return rf, len(raw), nil
}

func newTestClient(t *testing.T, f *fixture, src Source) *Client {
	t.Helper()
	if src == nil {
		src = &fakeSource{f: f}
	}
	c, err := New(Config{Network: f.network, Source: src})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Subscribe(f.shareID)
	if _, err := c.SyncHeaders(context.Background()); err != nil {
		t.Fatalf("SyncHeaders: %v", err)
	}
	return c
}

func TestReadVerifiedRow(t *testing.T) {
	f := newFixture(t, 100)
	c := newTestClient(t, f, nil)
	row, err := c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(7)})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := row[1].String(); got != "v0" {
		t.Fatalf("row value = %q, want v0", got)
	}
	// Second read of the same key must come from the verified cache.
	if _, err := c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(7)}); err != nil {
		t.Fatalf("cached Read: %v", err)
	}
	st := c.Stats()
	if st.CacheHits != 1 || st.RowsVerified != 1 {
		t.Fatalf("stats = %+v, want 1 hit and 1 verified", st)
	}
	if st.VerifyFailures != 0 {
		t.Fatalf("unexpected verify failures: %+v", st)
	}
}

func TestReadUnsubscribedShare(t *testing.T) {
	f := newFixture(t, 4)
	c := newTestClient(t, f, nil)
	if _, err := c.Read(context.Background(), "other", reldb.Row{reldb.I(0)}); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("err = %v, want ErrNotSubscribed", err)
	}
}

func TestTamperedRowProofRejected(t *testing.T) {
	f := newFixture(t, 50)
	src := &fakeSource{f: f}
	src.onRow = func(rf *RowFetch) {
		if len(rf.Proof.Steps) > 0 {
			rf.Proof.Steps[0].Other[0] ^= 0xff
		} else {
			rf.Proof.Left[0] ^= 0xff
		}
	}
	c := newTestClient(t, f, src)
	_, err := c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(3)})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
	if st := c.Stats(); st.VerifyFailures == 0 {
		t.Fatalf("verify failure not counted: %+v", st)
	}
}

func TestTamperedRowValueRejected(t *testing.T) {
	f := newFixture(t, 50)
	src := &fakeSource{f: f}
	src.onRow = func(rf *RowFetch) {
		rf.Row = append(reldb.Row(nil), rf.Row...)
		rf.Row[1] = reldb.S("forged")
	}
	c := newTestClient(t, f, src)
	_, err := c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(3)})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestRowSubstitutionRejected(t *testing.T) {
	// A proof for a *different* row of the same table is genuine against
	// the root; the key-binding check must still reject it.
	f := newFixture(t, 50)
	src := &fakeSource{f: f}
	src.onRow = func(rf *RowFetch) {
		row, proof, err := f.view.ProveRow(reldb.Row{reldb.I(9)})
		if err != nil {
			panic(err)
		}
		rf.Row, rf.Proof = row, proof
	}
	c := newTestClient(t, f, src)
	_, err := c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(3)})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestForgedSchemaRejected(t *testing.T) {
	// Swapping the key column in the served schema would let a server
	// answer key K with a row for another key; the schema must hash to
	// the committed SchemaSum.
	f := newFixture(t, 20)
	src := &fakeSource{f: f}
	src.onRow = func(rf *RowFetch) {
		rf.Schema = rf.Schema.Clone()
		rf.Schema.Key = []string{"val"}
	}
	c := newTestClient(t, f, src)
	_, err := c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(3)})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestWrongRootHeaderRejected(t *testing.T) {
	// A share head anchored at a header whose StateRoot does not commit
	// to the proof's root must be rejected.
	f := newFixture(t, 20)
	src := &fakeSource{f: f}
	src.onShareHead = func(sh *ShareHead) { sh.Height = 0 } // genesis: wrong root
	c := newTestClient(t, f, src)
	_, err := c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(3)})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestStaleSeqRowRejected(t *testing.T) {
	// A server that persistently serves rows from an older version than
	// the proven head must exhaust the retry budget and fail, never
	// return the stale row.
	f := newFixture(t, 20)
	staleRoot := f.view.RowsRoot()
	staleRows := f.view.Len()
	staleRow, staleProof, err := f.view.ProveRow(reldb.Row{reldb.I(3)})
	if err != nil {
		t.Fatalf("ProveRow: %v", err)
	}
	// Advance the share to seq 2 with changed content.
	if err := f.view.Update(reldb.Row{reldb.I(3)}, map[string]reldb.Value{"val": reldb.S("v1")}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	f.commitVersion(t, 2)

	src := &fakeSource{f: f}
	src.onRow = func(rf *RowFetch) {
		rf.Seq, rf.Rows, rf.Root = 1, staleRows, staleRoot
		rf.Row, rf.Proof = staleRow, staleProof
	}
	c := newTestClient(t, f, src)
	_, err = c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(3)})
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
	if st := c.Stats(); st.StaleRetries == 0 {
		t.Fatalf("stale retries not counted: %+v", st)
	}
}

func TestGossipInvalidatesAndReadsNewVersion(t *testing.T) {
	f := newFixture(t, 20)
	c := newTestClient(t, f, nil)
	key := reldb.Row{reldb.I(5)}
	if _, err := c.Read(context.Background(), f.shareID, key); err != nil {
		t.Fatalf("Read v1: %v", err)
	}

	// Advance the share; gossip the committing block to the client.
	if err := f.view.Update(key, map[string]reldb.Value{"val": reldb.S("v1")}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	f.commitVersion(t, 2)
	blk := chain.Block{Header: f.headers[len(f.headers)-1], Txs: []*chain.Tx{{ShareID: f.shareID}}}
	raw, err := json.Marshal(&blk)
	if err != nil {
		t.Fatalf("marshal block: %v", err)
	}
	c.HandleGossip(p2p.Message{Kind: p2p.KindBlock, Payload: raw})

	row, err := c.Read(context.Background(), f.shareID, key)
	if err != nil {
		t.Fatalf("Read v2: %v", err)
	}
	if got := row[1].String(); got != "v1" {
		t.Fatalf("post-invalidation read = %q, want v1 (stale cache served?)", got)
	}
	if st := c.Stats(); st.VerifyFailures != 0 {
		t.Fatalf("unexpected verify failures: %+v", st)
	}
}

func TestGossipOutOfOrderBuffers(t *testing.T) {
	f := newFixture(t, 8)
	c := newTestClient(t, f, nil)
	// Produce two more versions but deliver their blocks reversed.
	if err := f.view.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"val": reldb.S("v1")}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	f.commitVersion(t, 2)
	b2 := f.headers[len(f.headers)-1]
	if err := f.view.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"val": reldb.S("v2")}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	f.commitVersion(t, 3)
	b3 := f.headers[len(f.headers)-1]

	gossip := func(h chain.Header) {
		raw, _ := json.Marshal(&chain.Block{Header: h})
		c.HandleGossip(p2p.Message{Kind: p2p.KindBlock, Payload: raw})
	}
	gossip(b3) // gap: buffered
	gossip(b2) // fills the gap; b3 drains
	if got, want := c.Height(), b3.Height; got != want {
		t.Fatalf("height after out-of-order gossip = %d, want %d", got, want)
	}
}

func TestStateBytesIndependentOfViewSize(t *testing.T) {
	read := func(rows int) int {
		f := newFixture(t, rows)
		c := newTestClient(t, f, nil)
		if _, err := c.Read(context.Background(), f.shareID, reldb.Row{reldb.I(1)}); err != nil {
			t.Fatalf("Read: %v", err)
		}
		return c.StateBytes()
	}
	small, large := read(10), read(10000)
	if large > small*3/2 {
		t.Fatalf("light state grew with view size: %d rows -> %dB, %d rows -> %dB", 10, small, 10000, large)
	}
}

func TestHeaderChainRejectsForgedHeader(t *testing.T) {
	f := newFixture(t, 4)
	hc := chain.NewHeaderChain(f.network, nil)
	if err := hc.Append(f.headers[1]); err != nil {
		t.Fatalf("Append genuine: %v", err)
	}
	forged := f.headers[1]
	forged.Height = 2
	forged.StateRoot[0] ^= 0xff // PrevHash still points at header 0
	if err := hc.Append(forged); err == nil {
		t.Fatal("forged header accepted")
	}
}

func TestWireRoundTrips(t *testing.T) {
	f := newFixture(t, 10)
	src := &fakeSource{f: f}

	hr := HeadersRequest{FromHeight: 7, PubKey: []byte("0123456789012345678901234567890a"), TsMicro: 42, Sig: []byte("sig")}
	hr.Requester[3] = 9
	gotHR, err := DecodeHeadersRequest(EncodeHeadersRequest(&hr))
	if err != nil {
		t.Fatalf("headers request: %v", err)
	}
	if gotHR.FromHeight != hr.FromHeight || gotHR.Requester != hr.Requester || string(gotHR.Sig) != "sig" {
		t.Fatalf("headers request round trip mismatch: %+v", gotHR)
	}

	sh, _, err := src.ShareHead(context.Background(), f.shareID)
	if err != nil {
		t.Fatalf("ShareHead: %v", err)
	}
	gotSH, err := DecodeShareHead(EncodeShareHead(&sh))
	if err != nil {
		t.Fatalf("share head decode: %v", err)
	}
	if gotSH.Height != sh.Height || string(gotSH.Meta) != string(sh.Meta) ||
		gotSH.Version != sh.Version || len(gotSH.Proof.Steps) != len(sh.Proof.Steps) {
		t.Fatalf("share head round trip mismatch")
	}

	rr := RowRequest{ShareID: f.shareID, Key: reldb.Row{reldb.I(3)}, TsMicro: 1}
	rrRaw, err := EncodeRowRequest(&rr)
	if err != nil {
		t.Fatalf("row request encode: %v", err)
	}
	gotRR, err := DecodeRowRequest(rrRaw)
	if err != nil {
		t.Fatalf("row request decode: %v", err)
	}
	if gotRR.ShareID != rr.ShareID || orderedKey(gotRR.Key) != orderedKey(rr.Key) {
		t.Fatalf("row request round trip mismatch: %+v", gotRR)
	}

	rf, _, err := src.Row(context.Background(), f.shareID, reldb.Row{reldb.I(3)})
	if err != nil {
		t.Fatalf("Row: %v", err)
	}
	rfRaw, err := EncodeRowFetch(&rf)
	if err != nil {
		t.Fatalf("row fetch encode: %v", err)
	}
	gotRF, err := DecodeRowFetch(rfRaw)
	if err != nil {
		t.Fatalf("row fetch decode: %v", err)
	}
	if gotRF.Seq != rf.Seq || gotRF.Root != rf.Root || gotRF.SchemaSum != rf.SchemaSum ||
		gotRF.Rows != rf.Rows || orderedKey(gotRF.Row) != orderedKey(rf.Row) {
		t.Fatalf("row fetch round trip mismatch")
	}
	// The decoded fetch must verify exactly like the original.
	var buf [72]byte
	copy(buf[:32], gotRF.SchemaSum[:])
	binary.BigEndian.PutUint64(buf[32:40], uint64(gotRF.Rows))
	copy(buf[40:], gotRF.Root[:])
	if err := verifyFetch(&gotRF, reldb.Row{reldb.I(3)}, sha256.Sum256(buf[:])); err != nil {
		t.Fatalf("decoded fetch fails verification: %v", err)
	}

	// Trailing garbage must be rejected on every frame.
	for _, raw := range [][]byte{
		EncodeHeadersRequest(&hr), EncodeShareHead(&sh), rrRaw, rfRaw,
	} {
		bad := append(append([]byte(nil), raw...), 0)
		if _, err := DecodeHeadersRequest(bad); err == nil {
			if _, err := DecodeShareHead(bad); err == nil {
				if _, err := DecodeRowRequest(bad); err == nil {
					if _, err := DecodeRowFetch(bad); err == nil {
						t.Fatalf("frame with trailing byte accepted by all decoders")
					}
				}
			}
		}
	}
}
