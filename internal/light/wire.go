// Package light implements the light-client runtime: header-only chain
// sync plus proof-verified row reads, so a reader's state is
// O(headers + hot rows) instead of O(view). A light client trusts only
// (a) the locally computed deterministic genesis, (b) the consensus
// header check, and (c) SHA-256 — everything a serving peer returns is
// verified against a header it has checked itself:
//
//	genesis ──link/sig──▶ header.StateRoot
//	    ──state key proof──▶ sharereg meta (seq, payload hash)
//	    ──payload hash = sha256(schemaSum ‖ rows ‖ rowsRoot)──▶ rowsRoot
//	    ──row Merkle proof──▶ the row
//
// The wire frames below use the same compact binary idiom as the sync
// protocol (version byte, varint length prefixes, strict trailing-byte
// rejection); requests are signed for authenticity, but serving a light
// client never grants replica status.
package light

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"medshare/internal/identity"
	"medshare/internal/merkle"
	"medshare/internal/reldb"
	"medshare/internal/reldb/pmap"
	"medshare/internal/statedb"
)

// wireVersion tags the light frame layouts.
const wireVersion = 1

// wireMaxLen caps any single length field while decoding, so a corrupt
// frame cannot drive a huge allocation before the bounds check.
const wireMaxLen = 1 << 26

// ErrWire marks a malformed light-protocol frame.
var ErrWire = fmt.Errorf("light: malformed frame")

// HeadersRequest asks a serving peer for main-chain headers above
// FromHeight. Responses are chain.EncodeHeaders frames.
type HeadersRequest struct {
	FromHeight uint64
	Requester  identity.Address
	PubKey     []byte
	TsMicro    int64
	Sig        []byte
}

// SigningBytes is the canonical byte string covered by Sig.
func (r *HeadersRequest) SigningBytes() []byte {
	out := make([]byte, 0, 64)
	out = append(out, "medshare-light-headers:"...)
	out = binary.BigEndian.AppendUint64(out, r.FromHeight)
	out = append(out, r.Requester[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(r.TsMicro))
	return out
}

// ShareHeadRequest asks for a share's on-chain metadata with a
// state-membership proof.
type ShareHeadRequest struct {
	ShareID   string
	Requester identity.Address
	PubKey    []byte
	TsMicro   int64
	Sig       []byte
}

// SigningBytes is the canonical byte string covered by Sig.
func (r *ShareHeadRequest) SigningBytes() []byte {
	out := make([]byte, 0, 64+len(r.ShareID))
	out = append(out, "medshare-light-head:"...)
	out = append(out, r.ShareID...)
	out = append(out, r.Requester[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(r.TsMicro))
	return out
}

// ShareHead is the proven share-head response: the raw sharereg state
// value for the share plus its membership proof against the state root
// of the main-chain header at Height. The verifier matches the proof
// against its *own* copy of that header — nothing here is trusted.
type ShareHead struct {
	Height  uint64
	Meta    []byte
	Version statedb.Version
	Proof   merkle.Proof
}

// RowRequest asks for one row of a share's view by primary-key tuple.
type RowRequest struct {
	ShareID   string
	Key       reldb.Row
	Requester identity.Address
	PubKey    []byte
	TsMicro   int64
	Sig       []byte
}

// SigningBytes is the canonical byte string covered by Sig. The key
// tuple is covered via its ordered storage encoding.
func (r *RowRequest) SigningBytes() []byte {
	out := make([]byte, 0, 96+len(r.ShareID))
	out = append(out, "medshare-light-row:"...)
	out = append(out, r.ShareID...)
	out = append(out, 0)
	for _, v := range r.Key {
		out = v.AppendOrdered(out)
	}
	out = append(out, 0)
	out = append(out, r.Requester[:]...)
	return binary.BigEndian.AppendUint64(out, uint64(r.TsMicro))
}

// RowFetch is the proof-carrying row response: the row, its Merkle
// membership proof against Root, and the full table-hash preimage
// (SchemaSum, Rows, Root) plus the schema itself. A verifier checks
// schema → SchemaSum, recomputes the payload hash, matches it against
// the chain-proven share head, and only then verifies the row proof —
// so every field is either proof-bound or recomputed.
type RowFetch struct {
	Seq       uint64
	SchemaSum [32]byte
	Rows      int
	Root      [32]byte
	Schema    reldb.Schema
	Row       reldb.Row
	Proof     pmap.Proof
}

// --- binary encoding -------------------------------------------------

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendJSON(dst []byte, v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return appendBytes(dst, raw), nil
}

// wireReader walks a frame with bounds checking.
type wireReader struct{ buf []byte }

func (r *wireReader) version() error {
	if len(r.buf) == 0 || r.buf[0] != wireVersion {
		return ErrWire
	}
	r.buf = r.buf[1:]
	return nil
}

func (r *wireReader) byte() (byte, error) {
	if len(r.buf) == 0 {
		return 0, ErrWire
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, ErrWire
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil || n > wireMaxLen || n > uint64(len(r.buf)) {
		return nil, ErrWire
	}
	out := r.buf[:n:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *wireReader) hash(dst *[32]byte) error {
	if len(r.buf) < 32 {
		return ErrWire
	}
	copy(dst[:], r.buf)
	r.buf = r.buf[32:]
	return nil
}

func (r *wireReader) done() error {
	if len(r.buf) != 0 {
		return ErrWire
	}
	return nil
}

func appendAuth(dst []byte, requester identity.Address, pubKey []byte, ts int64, sig []byte) []byte {
	dst = appendBytes(dst, requester[:])
	dst = appendBytes(dst, pubKey)
	dst = binary.AppendUvarint(dst, uint64(ts))
	return appendBytes(dst, sig)
}

func (r *wireReader) auth(requester *identity.Address, pubKey *[]byte, ts *int64, sig *[]byte) error {
	addr, err := r.bytes()
	if err != nil || len(addr) != len(*requester) {
		return ErrWire
	}
	copy(requester[:], addr)
	if *pubKey, err = r.bytes(); err != nil {
		return err
	}
	t, err := r.uvarint()
	if err != nil {
		return err
	}
	*ts = int64(t)
	*sig, err = r.bytes()
	return err
}

// EncodeHeadersRequest encodes r into its binary frame.
func EncodeHeadersRequest(r *HeadersRequest) []byte {
	dst := make([]byte, 0, 128)
	dst = append(dst, wireVersion)
	dst = binary.AppendUvarint(dst, r.FromHeight)
	return appendAuth(dst, r.Requester, r.PubKey, r.TsMicro, r.Sig)
}

// DecodeHeadersRequest parses a frame produced by EncodeHeadersRequest.
func DecodeHeadersRequest(raw []byte) (HeadersRequest, error) {
	rd := wireReader{buf: raw}
	var out HeadersRequest
	if err := rd.version(); err != nil {
		return out, err
	}
	var err error
	if out.FromHeight, err = rd.uvarint(); err != nil {
		return out, err
	}
	if err = rd.auth(&out.Requester, &out.PubKey, &out.TsMicro, &out.Sig); err != nil {
		return out, err
	}
	return out, rd.done()
}

// EncodeShareHeadRequest encodes r into its binary frame.
func EncodeShareHeadRequest(r *ShareHeadRequest) []byte {
	dst := make([]byte, 0, 160)
	dst = append(dst, wireVersion)
	dst = appendBytes(dst, []byte(r.ShareID))
	return appendAuth(dst, r.Requester, r.PubKey, r.TsMicro, r.Sig)
}

// DecodeShareHeadRequest parses a frame produced by
// EncodeShareHeadRequest.
func DecodeShareHeadRequest(raw []byte) (ShareHeadRequest, error) {
	rd := wireReader{buf: raw}
	var out ShareHeadRequest
	if err := rd.version(); err != nil {
		return out, err
	}
	id, err := rd.bytes()
	if err != nil {
		return out, err
	}
	out.ShareID = string(id)
	if err = rd.auth(&out.Requester, &out.PubKey, &out.TsMicro, &out.Sig); err != nil {
		return out, err
	}
	return out, rd.done()
}

// EncodeShareHead encodes the share-head response.
func EncodeShareHead(h *ShareHead) []byte {
	dst := make([]byte, 0, 256+len(h.Meta))
	dst = append(dst, wireVersion)
	dst = binary.AppendUvarint(dst, h.Height)
	dst = appendBytes(dst, h.Meta)
	dst = binary.AppendUvarint(dst, h.Version.Height)
	dst = binary.AppendUvarint(dst, uint64(h.Version.TxIndex))
	dst = binary.AppendUvarint(dst, uint64(h.Proof.Index))
	dst = binary.AppendUvarint(dst, uint64(len(h.Proof.Steps)))
	for _, s := range h.Proof.Steps {
		dst = append(dst, s.Sibling[:]...)
		if s.Left {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// DecodeShareHead parses a frame produced by EncodeShareHead.
func DecodeShareHead(raw []byte) (ShareHead, error) {
	rd := wireReader{buf: raw}
	var out ShareHead
	if err := rd.version(); err != nil {
		return out, err
	}
	var err error
	if out.Height, err = rd.uvarint(); err != nil {
		return out, err
	}
	if out.Meta, err = rd.bytes(); err != nil {
		return out, err
	}
	if out.Version.Height, err = rd.uvarint(); err != nil {
		return out, err
	}
	txIdx, err := rd.uvarint()
	if err != nil || txIdx > wireMaxLen {
		return out, ErrWire
	}
	out.Version.TxIndex = int(txIdx)
	idx, err := rd.uvarint()
	if err != nil || idx > wireMaxLen {
		return out, ErrWire
	}
	out.Proof.Index = int(idx)
	n, err := rd.uvarint()
	if err != nil || n > wireMaxLen {
		return out, ErrWire
	}
	for i := uint64(0); i < n; i++ {
		var s merkle.ProofStep
		if err := rd.hash(&s.Sibling); err != nil {
			return out, err
		}
		b, err := rd.byte()
		if err != nil {
			return out, err
		}
		s.Left = b != 0
		out.Proof.Steps = append(out.Proof.Steps, s)
	}
	return out, rd.done()
}

// EncodeRowRequest encodes r into its binary frame. The key tuple
// travels as its canonical JSON encoding.
func EncodeRowRequest(r *RowRequest) ([]byte, error) {
	dst := make([]byte, 0, 192)
	dst = append(dst, wireVersion)
	dst = appendBytes(dst, []byte(r.ShareID))
	var err error
	if dst, err = appendJSON(dst, r.Key); err != nil {
		return nil, err
	}
	return appendAuth(dst, r.Requester, r.PubKey, r.TsMicro, r.Sig), nil
}

// DecodeRowRequest parses a frame produced by EncodeRowRequest.
func DecodeRowRequest(raw []byte) (RowRequest, error) {
	rd := wireReader{buf: raw}
	var out RowRequest
	if err := rd.version(); err != nil {
		return out, err
	}
	id, err := rd.bytes()
	if err != nil {
		return out, err
	}
	out.ShareID = string(id)
	keyRaw, err := rd.bytes()
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(keyRaw, &out.Key); err != nil {
		return out, fmt.Errorf("%w: %v", ErrWire, err)
	}
	if err = rd.auth(&out.Requester, &out.PubKey, &out.TsMicro, &out.Sig); err != nil {
		return out, err
	}
	return out, rd.done()
}

// EncodeRowFetch encodes the proof-carrying row response.
func EncodeRowFetch(f *RowFetch) ([]byte, error) {
	dst := make([]byte, 0, 512)
	dst = append(dst, wireVersion)
	dst = binary.AppendUvarint(dst, f.Seq)
	dst = append(dst, f.SchemaSum[:]...)
	dst = binary.AppendUvarint(dst, uint64(f.Rows))
	dst = append(dst, f.Root[:]...)
	var err error
	if dst, err = appendJSON(dst, f.Schema); err != nil {
		return nil, err
	}
	if dst, err = appendJSON(dst, f.Row); err != nil {
		return nil, err
	}
	dst = append(dst, f.Proof.Left[:]...)
	dst = append(dst, f.Proof.Right[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(f.Proof.Steps)))
	for _, s := range f.Proof.Steps {
		dst = append(dst, s.Entry[:]...)
		dst = append(dst, s.Other[:]...)
		if s.PathLeft {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst, nil
}

// DecodeRowFetch parses a frame produced by EncodeRowFetch.
func DecodeRowFetch(raw []byte) (RowFetch, error) {
	rd := wireReader{buf: raw}
	var out RowFetch
	if err := rd.version(); err != nil {
		return out, err
	}
	var err error
	if out.Seq, err = rd.uvarint(); err != nil {
		return out, err
	}
	if err = rd.hash(&out.SchemaSum); err != nil {
		return out, err
	}
	rows, err := rd.uvarint()
	if err != nil || rows > wireMaxLen {
		return out, ErrWire
	}
	out.Rows = int(rows)
	if err = rd.hash(&out.Root); err != nil {
		return out, err
	}
	schemaRaw, err := rd.bytes()
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(schemaRaw, &out.Schema); err != nil {
		return out, fmt.Errorf("%w: %v", ErrWire, err)
	}
	rowRaw, err := rd.bytes()
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(rowRaw, &out.Row); err != nil {
		return out, fmt.Errorf("%w: %v", ErrWire, err)
	}
	if err = rd.hash(&out.Proof.Left); err != nil {
		return out, err
	}
	if err = rd.hash(&out.Proof.Right); err != nil {
		return out, err
	}
	n, err := rd.uvarint()
	if err != nil || n > wireMaxLen {
		return out, ErrWire
	}
	for i := uint64(0); i < n; i++ {
		var s pmap.ProofStep
		if err := rd.hash(&s.Entry); err != nil {
			return out, err
		}
		if err := rd.hash(&s.Other); err != nil {
			return out, err
		}
		b, err := rd.byte()
		if err != nil {
			return out, err
		}
		s.PathLeft = b != 0
		out.Proof.Steps = append(out.Proof.Steps, s)
	}
	return out, rd.done()
}
