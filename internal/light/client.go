package light

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"medshare/internal/chain"
	"medshare/internal/contract/sharereg"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
	"medshare/internal/statedb"
)

// Errors reported by the client.
var (
	// ErrVerification marks a proof or hash check that failed against
	// verified chain state — served data that is provably wrong, never a
	// transient condition.
	ErrVerification = errors.New("light: verification failed")
	// ErrNoPayload marks a share whose on-chain metadata carries no
	// finalized payload hash yet (no acknowledged update); there is
	// nothing a verified read could verify against.
	ErrNoPayload = errors.New("light: share has no finalized payload yet")
	// ErrNotSubscribed marks a read on a share the client never
	// subscribed to.
	ErrNotSubscribed = errors.New("light: share not subscribed")
)

// readAttempts bounds how many times Read re-proves the share head and
// retries when a fetched row hashes against a different version than
// the proven head (the serving peer committed a new update between the
// two calls). Verification failures are never retried — only staleness.
// Between attempts the client backs off staleBackoff << attempt, so a
// burst of writes on the serving peer cannot exhaust the budget inside
// a single inconsistency window.
const (
	readAttempts = 6
	staleBackoff = 2 * time.Millisecond
)

// pendingCap bounds the out-of-order gossip buffer. Gossip delivery has
// no ordering guarantee; headers arriving ahead of a gap wait here
// until the gap fills, and past the cap the client falls back to a
// pull-based header sync.
const pendingCap = 128

// headerBatchLimit is the most headers a client accepts per Headers
// response page (a defense cap; servers page well below it).
const headerBatchLimit = 1 << 16

// Config configures a light client.
type Config struct {
	// Network names the chain; the client computes the genesis locally
	// and trusts nothing below it.
	Network string
	// Verify is the consensus header check (e.g. a strict PoA engine's
	// VerifyHeader). Nil means linkage-only verification — tests only.
	Verify chain.HeaderVerifier
	// Source is where headers, share heads and rows are pulled from.
	Source Source
	// MaxCachedRows bounds the verified row cache per share (default
	// 1024). At the cap an arbitrary entry is evicted.
	MaxCachedRows int
}

// cachedRow is one verified row pinned to the share version it was
// verified at.
type cachedRow struct {
	row reldb.Row
	seq uint64
}

// shareState is everything the client holds for one subscribed share —
// fixed-size metadata plus the bounded row cache; nothing here grows
// with the view.
type shareState struct {
	mu sync.Mutex
	// headKnown is set after the first successful chain-proven head.
	headKnown bool
	// stale forces a head re-prove before the next read (set by gossip
	// naming this share).
	stale bool
	// seq and payloadHash are the chain-proven share version: every row
	// the client accepts recomputes to this hash.
	seq         uint64
	payloadHash [32]byte
	// provenHeight is the chain height the head proof verified against.
	provenHeight uint64
	rows         map[string]cachedRow
}

// pendingHeader is an out-of-order gossiped header waiting for its gap
// to fill.
type pendingHeader struct {
	header chain.Header
	shares []string
}

// Client is the light-client runtime: a verified header chain, one
// proven head per subscribed share, and a bounded cache of
// proof-verified rows. Per-reader state is O(headers + subscribed
// shares + cached rows) — sublinear in (indeed, independent of) the
// size of any shared view. Safe for concurrent use.
//
// The client assumes the finality of the underlying chain (PoA in this
// system): it follows a single header sequence and does not reorg.
type Client struct {
	cfg     Config
	headers *chain.HeaderChain

	mu       sync.Mutex
	shares   map[string]*shareState
	pending  map[uint64]pendingHeader
	needSync bool

	// Counters; read via Stats.
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	rowsVerified   atomic.Uint64
	verifyFailures atomic.Uint64
	headRefreshes  atomic.Uint64
	staleRetries   atomic.Uint64
	wireBytes      atomic.Uint64
}

// New builds a light client anchored on the named network's local
// genesis.
func New(cfg Config) (*Client, error) {
	if cfg.Source == nil {
		return nil, errors.New("light: config needs a Source")
	}
	if cfg.MaxCachedRows <= 0 {
		cfg.MaxCachedRows = 1024
	}
	return &Client{
		cfg:     cfg,
		headers: chain.NewHeaderChain(cfg.Network, cfg.Verify),
		shares:  make(map[string]*shareState),
		pending: make(map[uint64]pendingHeader),
	}, nil
}

// Subscribe registers interest in a share. Reads are only served for
// subscribed shares; gossip naming a subscribed share invalidates its
// cached head and rows.
func (c *Client) Subscribe(shareID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.shares[shareID]; !ok {
		c.shares[shareID] = &shareState{rows: make(map[string]cachedRow)}
	}
}

// Height returns the verified tip height.
func (c *Client) Height() uint64 { return c.headers.Height() }

// SyncHeaders pulls and verifies headers from the source until the
// client's tip catches the serving tip. Returns the number of headers
// appended.
func (c *Client) SyncHeaders(ctx context.Context) (int, error) {
	appended := 0
	for {
		from := c.headers.Height() + 1
		hs, n, err := c.src().Headers(ctx, from)
		c.wireBytes.Add(uint64(n))
		if err != nil {
			return appended, err
		}
		if len(hs) == 0 || len(hs) > headerBatchLimit {
			break
		}
		before := c.headers.Height()
		for i := range hs {
			err := c.headers.Append(hs[i])
			if errors.Is(err, chain.ErrHeaderStale) {
				continue
			}
			if err != nil {
				return appended, err
			}
			appended++
		}
		if c.headers.Height() == before {
			break
		}
	}
	c.drainPending()
	c.mu.Lock()
	c.needSync = false
	c.mu.Unlock()
	return appended, nil
}

// HandleGossip feeds the client one gossiped network message. Block
// gossip both extends the header chain (no polling: the subscription is
// the invalidation signal) and marks any subscribed share named by a
// block transaction stale, so the next read re-proves its head. All
// other kinds are ignored.
func (c *Client) HandleGossip(msg p2p.Message) {
	if msg.Kind != p2p.KindBlock {
		return
	}
	var b chain.Block
	if err := json.Unmarshal(msg.Payload, &b); err != nil {
		return
	}
	var shares []string
	for _, tx := range b.Txs {
		if tx != nil && tx.ShareID != "" {
			shares = append(shares, tx.ShareID)
		}
	}
	// Mark before verifying the header: staleness only forces a head
	// re-prove, so over-marking is safe while under-marking could serve
	// a cached row past its on-chain version.
	c.markStale(shares)

	err := c.headers.Append(b.Header)
	switch {
	case err == nil:
		c.drainPending()
	case errors.Is(err, chain.ErrHeaderStale):
		// Re-delivery; nothing to do.
	case errors.Is(err, chain.ErrHeaderGap):
		c.mu.Lock()
		if len(c.pending) < pendingCap {
			c.pending[b.Header.Height] = pendingHeader{header: b.Header, shares: shares}
		} else {
			c.needSync = true
		}
		c.mu.Unlock()
	default:
		// A height-adjacent header that fails linkage or consensus:
		// either garbage or a chain the client cannot follow from its
		// tip. Fall back to pull sync.
		c.mu.Lock()
		c.needSync = true
		c.mu.Unlock()
	}
}

// drainPending applies buffered out-of-order headers that have become
// appendable.
func (c *Client) drainPending() {
	for {
		next := c.headers.Height() + 1
		c.mu.Lock()
		p, ok := c.pending[next]
		if ok {
			delete(c.pending, next)
		}
		c.mu.Unlock()
		if !ok {
			return
		}
		if err := c.headers.Append(p.header); err != nil {
			if !errors.Is(err, chain.ErrHeaderStale) {
				c.mu.Lock()
				c.needSync = true
				c.mu.Unlock()
			}
			return
		}
		c.markStale(p.shares)
	}
}

func (c *Client) markStale(shareIDs []string) {
	if len(shareIDs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range shareIDs {
		if s, ok := c.shares[id]; ok {
			s.mu.Lock()
			s.stale = true
			s.mu.Unlock()
		}
	}
}

func (c *Client) src() Source { return c.cfg.Source }

// Read returns one row of a subscribed share's view, verified against
// the chain: the row's membership proof must hash to a row root whose
// table hash equals the payload hash committed on-chain for the share's
// current sequence number, under a state proof against a verified block
// header. A cached row is returned only while it is provably current
// (same proven seq, no invalidation since).
func (c *Client) Read(ctx context.Context, shareID string, key reldb.Row) (reldb.Row, error) {
	c.mu.Lock()
	s, ok := c.shares[shareID]
	needSync := c.needSync
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotSubscribed, shareID)
	}
	if needSync {
		if _, err := c.SyncHeaders(ctx); err != nil {
			return nil, err
		}
	}

	ck := orderedKey(key)
	s.mu.Lock()
	if s.headKnown && !s.stale {
		if r, ok := s.rows[ck]; ok && r.seq == s.seq {
			s.mu.Unlock()
			c.cacheHits.Add(1)
			return r.row, nil
		}
	}
	s.mu.Unlock()
	c.cacheMisses.Add(1)

	force := false
	for attempt := 0; attempt < readAttempts; attempt++ {
		if err := c.refreshHead(ctx, shareID, s, force); err != nil {
			return nil, err
		}
		// The head may have just been re-proven at a seq the cache
		// already holds this key for.
		s.mu.Lock()
		if r, ok := s.rows[ck]; ok && r.seq == s.seq {
			s.mu.Unlock()
			c.cacheHits.Add(1)
			return r.row, nil
		}
		seq, want := s.seq, s.payloadHash
		s.mu.Unlock()

		rf, n, err := c.src().Row(ctx, shareID, key)
		c.wireBytes.Add(uint64(n))
		if err != nil {
			return nil, err
		}
		err = verifyFetch(&rf, key, want)
		if errors.Is(err, errStaleFetch) {
			// The serving replica moved (or lags) relative to our proven
			// head; re-prove the head and try again. Hash mismatches are
			// indistinguishable from tampering a priori, but tampering
			// cannot survive a fresh head proof — exhaustion of the
			// retry budget is reported as a verification failure.
			c.staleRetries.Add(1)
			force = true
			timer := time.NewTimer(staleBackoff << attempt)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
			continue
		}
		if err != nil {
			c.verifyFailures.Add(1)
			return nil, err
		}

		s.mu.Lock()
		// Only cache under the seq the verification anchored to, and
		// only if the share state still shows it (a concurrent refresh
		// may have advanced it).
		if s.seq == seq {
			if len(s.rows) >= c.cfg.MaxCachedRows {
				for k := range s.rows {
					delete(s.rows, k)
					break
				}
			}
			s.rows[ck] = cachedRow{row: rf.Row, seq: seq}
		}
		s.mu.Unlock()
		c.rowsVerified.Add(1)
		return rf.Row, nil
	}
	c.verifyFailures.Add(1)
	return nil, fmt.Errorf("%w: share %s row did not verify against the proven head after %d attempts",
		ErrVerification, shareID, readAttempts)
}

// refreshHead proves the share's current on-chain metadata against a
// verified header. With force=false a known, non-stale head is kept.
func (c *Client) refreshHead(ctx context.Context, shareID string, s *shareState, force bool) error {
	s.mu.Lock()
	if s.headKnown && !s.stale && !force {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	c.headRefreshes.Add(1)

	sh, n, err := c.src().ShareHead(ctx, shareID)
	c.wireBytes.Add(uint64(n))
	if err != nil {
		return err
	}
	hdr, ok := c.headers.AtHeight(sh.Height)
	if !ok {
		// The proof anchors above our tip; catch the header chain up
		// first.
		if _, err := c.SyncHeaders(ctx); err != nil {
			return err
		}
		if hdr, ok = c.headers.AtHeight(sh.Height); !ok {
			return fmt.Errorf("%w: share %s head proof at height %d beyond verified tip %d",
				ErrVerification, shareID, sh.Height, c.headers.Height())
		}
	}
	if !statedb.VerifyKeyProof(hdr.StateRoot, "share/"+shareID, sh.Meta, sh.Version, sh.Proof) {
		c.verifyFailures.Add(1)
		return fmt.Errorf("%w: share %s state proof does not verify against header %d",
			ErrVerification, shareID, sh.Height)
	}
	meta, err := sharereg.DecodeMeta(sh.Meta)
	if err != nil || meta.ID != shareID {
		c.verifyFailures.Add(1)
		return fmt.Errorf("%w: share %s head carries foreign or corrupt metadata", ErrVerification, shareID)
	}
	if meta.LastPayloadHash == "" {
		return fmt.Errorf("%w: %s", ErrNoPayload, shareID)
	}
	want, err := hex.DecodeString(meta.LastPayloadHash)
	if err != nil || len(want) != 32 {
		c.verifyFailures.Add(1)
		return fmt.Errorf("%w: share %s on-chain payload hash is malformed", ErrVerification, shareID)
	}

	s.mu.Lock()
	if meta.Seq != s.seq {
		// A newer (or, on a lagging server, older-proven) version:
		// every cached row was verified under a different payload and
		// must go.
		for k := range s.rows {
			delete(s.rows, k)
		}
	}
	s.seq = meta.Seq
	copy(s.payloadHash[:], want)
	s.provenHeight = sh.Height
	s.headKnown = true
	s.stale = false
	s.mu.Unlock()
	return nil
}

// errStaleFetch marks a row fetch whose table hash does not match the
// proven head — retryable after re-proving the head.
var errStaleFetch = errors.New("light: fetched row is for a different share version")

// verifyFetch checks a row fetch against the chain-proven payload hash:
//
//  1. the served schema hashes to the SchemaSum in the table-hash
//     preimage,
//  2. sha256(SchemaSum ‖ Rows ‖ Root) equals the proven payload hash
//     (binding Root to the on-chain version),
//  3. the proven row's key columns equal the requested key (no
//     row-substitution within the table),
//  4. the row's membership proof verifies against Root.
//
// Steps 1, 3 and 4 failing mean tampering (never retryable); step 2
// failing usually means the serving replica is at another version.
func verifyFetch(rf *RowFetch, key reldb.Row, wantPayload [32]byte) error {
	if reldb.SchemaSumOf(rf.Schema) != rf.SchemaSum {
		return fmt.Errorf("%w: served schema does not hash to the committed schema sum", ErrVerification)
	}
	var buf [72]byte
	copy(buf[:32], rf.SchemaSum[:])
	binary.BigEndian.PutUint64(buf[32:40], uint64(rf.Rows))
	copy(buf[40:], rf.Root[:])
	if sha256.Sum256(buf[:]) != wantPayload {
		return errStaleFetch
	}
	keyIdx := rf.Schema.KeyIndexes()
	if len(keyIdx) != len(key) {
		return fmt.Errorf("%w: key arity %d does not match schema key %d", ErrVerification, len(key), len(keyIdx))
	}
	for i, idx := range keyIdx {
		if idx < 0 || idx >= len(rf.Row) {
			return fmt.Errorf("%w: schema key column out of row range", ErrVerification)
		}
		got := rf.Row[idx].AppendOrdered(nil)
		want := key[i].AppendOrdered(nil)
		if string(got) != string(want) {
			return fmt.Errorf("%w: proven row is for a different key", ErrVerification)
		}
	}
	if !reldb.VerifyRowProof(rf.Root, rf.Row, rf.Proof) {
		return fmt.Errorf("%w: row membership proof does not verify", ErrVerification)
	}
	return nil
}

// orderedKey is the canonical cache key for a key tuple — the same
// ordered encoding the row tree sorts by, so distinct keys never
// collide.
func orderedKey(key reldb.Row) string {
	var kb []byte
	for _, v := range key {
		kb = v.AppendOrdered(kb)
	}
	return string(kb)
}

// Stats is a snapshot of the client's counters and retained state.
type Stats struct {
	// Height is the verified tip height.
	Height uint64
	// HeaderBytes is the binary size of the retained header chain.
	HeaderBytes int
	// Shares is the number of subscribed shares.
	Shares int
	// CachedRows counts verified rows currently cached across shares.
	CachedRows int
	// CacheHits / CacheMisses split reads served from the verified
	// cache vs. reads that fetched.
	CacheHits, CacheMisses uint64
	// RowsVerified counts proof-verified fetched rows.
	RowsVerified uint64
	// VerifyFailures counts rejections (tamper, bad proof, retry
	// exhaustion).
	VerifyFailures uint64
	// HeadRefreshes counts share-head provings.
	HeadRefreshes uint64
	// StaleRetries counts row fetches discarded for anchoring to a
	// different version than the proven head.
	StaleRetries uint64
	// WireBytes is the total request+response payload bytes moved.
	WireBytes uint64
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	st := Stats{
		Height:         c.headers.Height(),
		HeaderBytes:    c.headers.Bytes(),
		CacheHits:      c.cacheHits.Load(),
		CacheMisses:    c.cacheMisses.Load(),
		RowsVerified:   c.rowsVerified.Load(),
		VerifyFailures: c.verifyFailures.Load(),
		HeadRefreshes:  c.headRefreshes.Load(),
		StaleRetries:   c.staleRetries.Load(),
		WireBytes:      c.wireBytes.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st.Shares = len(c.shares)
	for _, s := range c.shares {
		s.mu.Lock()
		st.CachedRows += len(s.rows)
		s.mu.Unlock()
	}
	return st
}

// StateBytes reports the client's retained state size: the header
// chain's binary size plus per-share metadata and the canonical
// encoding of every cached row. This is the "per-reader state" number
// the experiments compare against a full replica — deterministic, no
// allocator noise.
func (c *Client) StateBytes() int {
	n := c.headers.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shares {
		s.mu.Lock()
		n += 64 // seq, payload hash, proven height, flags
		for k, r := range s.rows {
			n += len(k) + len(r.row.AppendCanonical(nil)) + 8
		}
		s.mu.Unlock()
	}
	return n
}
