package light

import (
	"context"
	"time"

	"medshare/internal/chain"
	"medshare/internal/identity"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// Source is where a light client pulls chain and share material from: a
// full peer reached over the p2p transport, or an HTTP API server. Every
// method also reports the wire bytes moved (request + response payload),
// which is the cost axis the light-client experiments sweep. Nothing a
// Source returns is trusted — the Client verifies all of it.
type Source interface {
	// Headers returns main-chain headers starting at fromHeight, in
	// height order. An empty slice means the serving tip is below
	// fromHeight. Servers may cap the batch; callers loop.
	Headers(ctx context.Context, fromHeight uint64) ([]chain.Header, int, error)
	// ShareHead returns the share's on-chain metadata with a
	// state-membership proof against a main-chain header.
	ShareHead(ctx context.Context, shareID string) (ShareHead, int, error)
	// Row returns one view row by primary-key tuple with its membership
	// proof and the table-hash preimage fields.
	Row(ctx context.Context, shareID string, key reldb.Row) (RowFetch, int, error)
}

// PeerSource reaches a serving full peer over the p2p transport using
// the binary light-protocol frames.
type PeerSource struct {
	// Transport is the light client's own network endpoint.
	Transport p2p.Transport
	// Endpoint is the serving peer's endpoint name.
	Endpoint string
	// Identity signs requests (authenticity only; a light client is
	// never a sharing peer and never gains replica status).
	Identity *identity.Identity
	// Timeout bounds each round trip (default 10s).
	Timeout time.Duration
}

func (s *PeerSource) roundTrip(ctx context.Context, kind string, payload []byte) ([]byte, int, error) {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := s.Transport.Request(ctx, s.Endpoint, p2p.Message{Kind: kind, Payload: payload})
	if err != nil {
		return nil, len(payload), err
	}
	return resp.Payload, len(payload) + len(resp.Payload), nil
}

// Headers implements Source.
func (s *PeerSource) Headers(ctx context.Context, fromHeight uint64) ([]chain.Header, int, error) {
	req := HeadersRequest{
		FromHeight: fromHeight,
		Requester:  s.Identity.Address(),
		PubKey:     s.Identity.PublicKey(),
		TsMicro:    time.Now().UnixMicro(),
	}
	req.Sig = s.Identity.Sign(req.SigningBytes())
	raw, n, err := s.roundTrip(ctx, p2p.KindHeaders, EncodeHeadersRequest(&req))
	if err != nil {
		return nil, n, err
	}
	hs, err := chain.DecodeHeaders(raw)
	return hs, n, err
}

// ShareHead implements Source.
func (s *PeerSource) ShareHead(ctx context.Context, shareID string) (ShareHead, int, error) {
	req := ShareHeadRequest{
		ShareID:   shareID,
		Requester: s.Identity.Address(),
		PubKey:    s.Identity.PublicKey(),
		TsMicro:   time.Now().UnixMicro(),
	}
	req.Sig = s.Identity.Sign(req.SigningBytes())
	raw, n, err := s.roundTrip(ctx, p2p.KindLightHead, EncodeShareHeadRequest(&req))
	if err != nil {
		return ShareHead{}, n, err
	}
	sh, err := DecodeShareHead(raw)
	return sh, n, err
}

// Row implements Source.
func (s *PeerSource) Row(ctx context.Context, shareID string, key reldb.Row) (RowFetch, int, error) {
	req := RowRequest{
		ShareID:   shareID,
		Key:       key,
		Requester: s.Identity.Address(),
		PubKey:    s.Identity.PublicKey(),
		TsMicro:   time.Now().UnixMicro(),
	}
	req.Sig = s.Identity.Sign(req.SigningBytes())
	payload, err := EncodeRowRequest(&req)
	if err != nil {
		return RowFetch{}, 0, err
	}
	raw, n, err := s.roundTrip(ctx, p2p.KindLightRow, payload)
	if err != nil {
		return RowFetch{}, n, err
	}
	rf, err := DecodeRowFetch(raw)
	return rf, n, err
}
