package store

import (
	"errors"
	"sync"
)

// FaultFS is the deterministic crash-point injection VFS (the disk
// sibling of p2p/faultnet): it behaves like a MemFS while journaling
// every write and sync in a single global byte stream, and can then
// materialize "what would the disk hold if the process had died at
// byte N" as a fresh MemFS — with the write straddling N torn, with
// unsynced bytes dropped, or with a bit flipped. The crash sweep test
// walks every interesting N across a real commit history and asserts
// each survivor either recovers to a state that verifies against the
// on-chain root or detects the corruption and heals by resync.
//
// Crashes are modeled post hoc rather than by actually killing
// goroutines: the journal totally orders all durable-state mutations,
// so "die at byte N" is exactly "apply the journal prefix of length N"
// — deterministic, replayable, and sweepable offset by offset.
type FaultFS struct {
	mu    sync.Mutex
	inner *MemFS
	ops   []faultOp
	total int64 // journaled write-payload bytes so far
	// failAfter, when >= 0, makes any write that would push the journal
	// past that byte fail (live error-path injection).
	failAfter int64
}

// faultOp is one journaled mutation.
type faultOp struct {
	kind   byte // 'w' write, 's' sync, 't' truncate
	file   string
	off    int64  // write: file offset; truncate: new size
	data   []byte // write payload
	gstart int64  // write: global journal offset of data[0]
}

// CrashMode selects how SurvivorAt models the crash.
type CrashMode int

const (
	// CrashTorn applies the journal prefix up to byte N; the write
	// straddling N is applied partially (a torn last write). Everything
	// after is lost.
	CrashTorn CrashMode = iota
	// CrashDropUnsynced applies the prefix up to byte N and then drops,
	// per file, every byte written after that file's last Sync — the
	// adversarial page-cache model where nothing unsynced survives.
	CrashDropUnsynced
	// CrashBitFlip applies the whole journal and flips one bit of the
	// byte written at global journal offset N (silent media corruption).
	CrashBitFlip
)

// NewFaultFS returns an empty fault-injecting filesystem.
func NewFaultFS() *FaultFS {
	return &FaultFS{inner: NewMemFS(), failAfter: -1}
}

// ErrInjectedWriteFailure is returned by writes past a FailWritesAfter
// threshold.
var ErrInjectedWriteFailure = errors.New("store: injected write failure")

// FailWritesAfter makes every write that would extend the journal past
// byte n fail with ErrInjectedWriteFailure (n < 0 disables). The
// failing write is not journaled and not applied — the model is a
// device that dies mid-flight.
func (f *FaultFS) FailWritesAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter = n
}

// TotalBytes returns the total journaled write-payload bytes.
func (f *FaultFS) TotalBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// SyncPoints returns the global journal offsets at which a Sync
// occurred — the boundaries guaranteed durable.
func (f *FaultFS) SyncPoints() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var pts []int64
	pos := int64(0)
	for _, op := range f.ops {
		if op.kind == 'w' {
			pos = op.gstart + int64(len(op.data))
		} else if op.kind == 's' {
			pts = append(pts, pos)
		}
	}
	return pts
}

// WriteBoundaries returns the global journal offset at which each
// write begins — the natural crash points for a sweep that wants one
// probe per write plus arbitrary mid-write offsets.
func (f *FaultFS) WriteBoundaries() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b []int64
	for _, op := range f.ops {
		if op.kind == 'w' {
			b = append(b, op.gstart)
		}
	}
	return b
}

// SurvivorAt materializes the durable state after a crash at global
// journal byte n under the given mode, as an independent MemFS the
// caller reopens a Store from.
func (f *FaultFS) SurvivorAt(n int64, mode CrashMode) *MemFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := NewMemFS()
	syncedLen := make(map[string]int64)
	apply := func(file string, off int64, data []byte) {
		buf := out.files[file]
		// Appends only in practice, but honor the recorded offset.
		for int64(len(buf)) < off {
			buf = append(buf, 0)
		}
		buf = append(buf[:off], data...)
		out.files[file] = buf
	}
	for _, op := range f.ops {
		switch op.kind {
		case 'w':
			end := op.gstart + int64(len(op.data))
			switch mode {
			case CrashBitFlip:
				apply(op.file, op.off, op.data)
			default:
				if op.gstart >= n {
					continue
				}
				data := op.data
				if end > n {
					data = data[:n-op.gstart] // torn write
				}
				apply(op.file, op.off, data)
			}
		case 's':
			// Sync placement only matters under CrashDropUnsynced,
			// handled in the second pass below.
		case 't':
			sz := op.off
			if cur, ok := out.files[op.file]; ok && int64(len(cur)) > sz {
				out.files[op.file] = cur[:sz:sz]
			}
		}
	}
	if mode == CrashDropUnsynced {
		// Second pass: find each file's length at its last sync before n
		// and truncate the survivor back to it.
		pos := int64(0)
		lenAt := make(map[string]int64)
		for _, op := range f.ops {
			switch op.kind {
			case 'w':
				pos = op.gstart + int64(len(op.data))
				if pos <= n {
					if l := op.off + int64(len(op.data)); l > lenAt[op.file] {
						lenAt[op.file] = l
					}
				}
			case 's':
				if pos <= n {
					syncedLen[op.file] = lenAt[op.file]
				}
			case 't':
				if pos <= n {
					if op.off < lenAt[op.file] {
						lenAt[op.file] = op.off
					}
					if op.off < syncedLen[op.file] {
						syncedLen[op.file] = op.off
					}
				}
			}
		}
		for file, data := range out.files {
			keep := syncedLen[file]
			if int64(len(data)) > keep {
				out.files[file] = data[:keep:keep]
			}
		}
	}
	if mode == CrashBitFlip {
		for _, op := range f.ops {
			if op.kind != 'w' {
				continue
			}
			end := op.gstart + int64(len(op.data))
			if n >= op.gstart && n < end {
				fileOff := op.off + (n - op.gstart)
				if data, ok := out.files[op.file]; ok && fileOff < int64(len(data)) {
					data[fileOff] ^= 1 << uint(n%8)
				}
				break
			}
		}
	}
	return out
}

// --- FS interface ---

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if _, err := f.inner.OpenAppend(name); err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if _, err := f.inner.Open(name); err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name}, nil
}

func (f *FaultFS) List() ([]string, error) { return f.inner.List() }

func (f *FaultFS) Remove(name string) error {
	// Removal is not journaled (the store never removes live log files);
	// apply directly.
	return f.inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	f.ops = append(f.ops, faultOp{kind: 't', file: name, off: size})
	f.mu.Unlock()
	return f.inner.Truncate(name, size)
}

type faultFile struct {
	fs   *FaultFS
	name string
}

func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	if fs.failAfter >= 0 && fs.total+int64(len(p)) > fs.failAfter {
		fs.mu.Unlock()
		return 0, ErrInjectedWriteFailure
	}
	off := fs.inner.write(f.name, p)
	fs.ops = append(fs.ops, faultOp{
		kind: 'w', file: f.name, off: off,
		data: append([]byte(nil), p...), gstart: fs.total,
	})
	fs.total += int64(len(p))
	fs.mu.Unlock()
	return len(p), nil
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	inner, err := f.fs.inner.Open(f.name)
	if err != nil {
		return 0, err
	}
	return inner.ReadAt(p, off)
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.ops = append(f.fs.ops, faultOp{kind: 's', file: f.name})
	f.fs.mu.Unlock()
	return nil
}

func (f *faultFile) Close() error { return nil }

func (f *faultFile) Size() (int64, error) {
	inner, err := f.fs.inner.Open(f.name)
	if err != nil {
		return 0, err
	}
	return inner.Size()
}
