package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL framing: every record is
//
//	magic(1) kind(1) length(u32 LE) crc32c(u32 LE) payload
//
// where the CRC (Castagnoli) covers kind, length, and payload. The
// frame is the unit of corruption detection: a scan accepts the
// longest prefix of valid frames and classifies everything after as a
// torn or corrupt tail — never panicking, never returning bytes whose
// checksum does not verify. Atomicity above frames comes from commit
// markers (see store.go): a crash mid-commit leaves a valid-frame
// prefix with no trailing marker, and recovery discards the unmarked
// group.

const (
	frameMagic  = 0xA7
	frameHdrLen = 10
	// maxPayload bounds a single record; a corrupt length field cannot
	// make the scanner allocate unboundedly.
	maxPayload = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTornTail marks a log whose final bytes do not form a valid frame
// — the expected aftermath of a crash mid-write.
var ErrTornTail = errors.New("store: torn or corrupt log tail")

// appendFrame appends one framed record to dst.
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	hdr[0] = frameMagic
	hdr[1] = kind
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, hdr[1:6])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[6:10], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameSize returns the on-disk size of a frame with the given payload
// length.
func frameSize(payloadLen int) int64 { return int64(frameHdrLen + payloadLen) }

// parseFrame decodes the frame starting at data[0]. It returns the
// kind, the payload (aliasing data), and the total frame size. A nil
// error means the frame is intact; any framing or checksum failure
// returns ErrTornTail-wrapped detail.
func parseFrame(data []byte) (kind byte, payload []byte, size int64, err error) {
	if len(data) < frameHdrLen {
		return 0, nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrTornTail, len(data))
	}
	if data[0] != frameMagic {
		return 0, nil, 0, fmt.Errorf("%w: bad magic 0x%02x", ErrTornTail, data[0])
	}
	n := binary.LittleEndian.Uint32(data[2:6])
	if n > maxPayload {
		return 0, nil, 0, fmt.Errorf("%w: implausible payload length %d", ErrTornTail, n)
	}
	total := frameHdrLen + int(n)
	if len(data) < total {
		return 0, nil, 0, fmt.Errorf("%w: frame wants %d bytes, %d present", ErrTornTail, total, len(data))
	}
	crc := crc32.Update(0, crcTable, data[1:6])
	crc = crc32.Update(crc, crcTable, data[frameHdrLen:total])
	if crc != binary.LittleEndian.Uint32(data[6:10]) {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrTornTail)
	}
	return data[1], data[frameHdrLen:total], int64(total), nil
}

// scanFrames walks data frame by frame, calling fn for each valid
// record with its offset, until fn returns false or the data ends. It
// returns the length of the valid prefix and, when the prefix does not
// cover all of data, the ErrTornTail-wrapped reason. Scanning never
// resynchronizes past a bad frame: bytes after the first corruption
// are structurally untrustworthy (lengths no longer delimit records),
// so the conservative reading is "valid prefix, then nothing".
func scanFrames(data []byte, fn func(kind byte, payload []byte, off int64) bool) (valid int64, tailErr error) {
	off := int64(0)
	for off < int64(len(data)) {
		kind, payload, size, err := parseFrame(data[off:])
		if err != nil {
			return off, err
		}
		if !fn(kind, payload, off) {
			return off + size, nil
		}
		off += size
	}
	return off, nil
}

// readFrameAt reads and verifies the single frame at off in f (the
// random-access path used to fetch node payloads lazily by digest).
func readFrameAt(f File, off int64) (kind byte, payload []byte, err error) {
	var hdr [frameHdrLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return 0, nil, fmt.Errorf("%w: reading frame header: %v", ErrTornTail, err)
	}
	n := binary.LittleEndian.Uint32(hdr[2:6])
	if hdr[0] != frameMagic || n > maxPayload {
		return 0, nil, fmt.Errorf("%w: bad frame at offset %d", ErrTornTail, off)
	}
	buf := make([]byte, frameHdrLen+int(n))
	copy(buf, hdr[:])
	if _, err := f.ReadAt(buf[frameHdrLen:], off+frameHdrLen); err != nil {
		return 0, nil, fmt.Errorf("%w: reading frame payload: %v", ErrTornTail, err)
	}
	kind, payload, _, perr := parseFrame(buf)
	return kind, payload, perr
}
