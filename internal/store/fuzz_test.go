package store

import (
	"bytes"
	"reflect"
	"testing"

	"medshare/internal/reldb"
)

// FuzzWALRecords drives the frame scanner and the typed record codecs
// with arbitrary bytes: scanning must never panic and must never hand
// back a record whose checksum does not verify (torn/corrupt tails are
// rejected, not misread); a valid frame must round-trip identically;
// node records must decode/encode to a fixed point.
func FuzzWALRecords(f *testing.F) {
	// Seeds: a healthy two-record stream, a torn tail, a bit-flipped
	// frame, raw garbage, and a zero-length record.
	good := appendFrame(nil, kindTableRoot, []byte(`{"name":"t","rows":1}`))
	good = appendFrame(good, kindCommit, []byte(`{"seq":1}`))
	f.Add(good)
	f.Add(good[:len(good)-3])
	flipped := append([]byte(nil), good...)
	flipped[12] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("not a log at all"))
	f.Add(appendFrame(nil, kindNode, nil))
	nd := reldb.NodeData{}
	nd.Digest[0], nd.Left[1], nd.Right[2] = 1, 2, 3
	nd.Row = reldb.Row{reldb.I(42), reldb.S("x")}
	if p, err := encodeNodeRec(nd); err == nil {
		f.Add(appendFrame(nil, kindNode, p))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Arbitrary bytes: scan terminates without panic, and every
		// record it yields re-frames to the exact bytes it came from —
		// i.e. nothing is accepted whose framing+CRC would not reproduce.
		var seen []struct {
			kind    byte
			payload []byte
			off     int64
		}
		valid, tailErr := scanFrames(data, func(kind byte, payload []byte, off int64) bool {
			seen = append(seen, struct {
				kind    byte
				payload []byte
				off     int64
			}{kind, append([]byte(nil), payload...), off})
			return true
		})
		if valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input length %d", valid, len(data))
		}
		if tailErr == nil && valid != int64(len(data)) {
			t.Fatalf("clean scan stopped early: %d of %d", valid, len(data))
		}
		var rebuilt []byte
		for _, r := range seen {
			rebuilt = appendFrame(rebuilt, r.kind, r.payload)
		}
		if !bytes.Equal(rebuilt, data[:valid]) {
			t.Fatal("accepted records do not re-encode to the accepted prefix")
		}

		// 2. Typed decoders must not panic on any accepted payload, and
		// node records must reach an encode/decode fixed point.
		for _, r := range seen {
			switch r.kind {
			case kindNode:
				nd, err := decodeNodeRec(r.payload)
				if err != nil {
					continue
				}
				p2, err := encodeNodeRec(nd)
				if err != nil {
					t.Fatalf("decoded node record does not re-encode: %v", err)
				}
				nd2, err := decodeNodeRec(p2)
				if err != nil || !reflect.DeepEqual(nd, nd2) {
					t.Fatal("node record not a fixed point under decode∘encode")
				}
			case kindBlock:
				_, _ = decodeBlockRec(r.payload)
			case kindTableRoot:
				var tr TableRoot
				_ = jsonUnmarshal(r.payload, &tr)
			case kindShareMeta:
				var sm ShareMeta
				_ = jsonUnmarshal(r.payload, &sm)
			case kindState:
				var cp StateCheckpoint
				_ = jsonUnmarshal(r.payload, &cp)
			case kindCommit:
				var cr commitRec
				_ = jsonUnmarshal(r.payload, &cr)
			}
		}

		// 3. Round-trip direction: treat the fuzz input as a payload,
		// frame it, and require exact recovery — including when garbage
		// follows the frame (tail rejection must not eat the valid part).
		framed := appendFrame(nil, kindBlock, data)
		kind, payload, size, err := parseFrame(framed)
		if err != nil || kind != kindBlock || !bytes.Equal(payload, data) || size != int64(len(framed)) {
			t.Fatal("frame round trip failed")
		}
		withTail := append(append([]byte(nil), framed...), 0xde, 0xad)
		n := 0
		valid, tailErr = scanFrames(withTail, func(_ byte, p []byte, _ int64) bool {
			n++
			if !bytes.Equal(p, data) {
				t.Fatal("payload corrupted by trailing garbage")
			}
			return true
		})
		if n != 1 || valid != int64(len(framed)) || tailErr == nil {
			t.Fatal("torn tail after a valid frame not classified correctly")
		}
	})
}

// FuzzSegmentIndex drives the sealed-segment index codec: decoding
// arbitrary bytes must never panic or accept structurally damaged
// input silently, and every decodable index must round-trip
// identically through encode.
func FuzzSegmentIndex(f *testing.F) {
	f.Add(encodeSegIndex(nil))
	var e1, e2 segEntry
	e1.kind, e1.off, e1.size = kindNode, 0, 100
	e1.dig[0] = 7
	e2.kind, e2.off, e2.size = kindCommit, 100, frameHdrLen+12
	f.Add(encodeSegIndex([]segEntry{e1, e2}))
	// A truncated and a bit-flipped index.
	enc := encodeSegIndex([]segEntry{e1})
	f.Add(enc[:len(enc)-6])
	flipped := append([]byte(nil), enc...)
	flipped[9] ^= 1
	f.Add(flipped)
	f.Add([]byte("MSIX"))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeSegIndex(data)
		if err != nil {
			return
		}
		// Accepted ⇒ exact round trip (no silent normalization).
		if !bytes.Equal(encodeSegIndex(entries), data) {
			t.Fatal("decoded index does not re-encode to input")
		}
		for _, e := range entries {
			if e.size < frameHdrLen || e.off < 0 {
				t.Fatalf("accepted out-of-range entry %+v", e)
			}
		}
		// Mutating any single byte of a valid encoding must be rejected
		// (checksum coverage is total). Probe a few positions derived
		// from the data itself to keep the fuzz cheap.
		for i := 0; i < len(data); i += 1 + len(data)/7 {
			mut := append([]byte(nil), data...)
			mut[i] ^= 0x10
			if got, err := decodeSegIndex(mut); err == nil {
				if bytes.Equal(encodeSegIndex(got), data) {
					continue // flip landed in a byte the codec canonicalizes — impossible by construction
				}
				t.Fatalf("single-byte corruption at %d accepted", i)
			}
		}
	})
}
