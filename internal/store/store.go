// Package store is the durable, content-addressed node store behind
// every replica: a pluggable backend (memory | file) holding an
// append-only WAL + segment layer keyed by pmap subtree digest.
//
// Each logical commit appends only the row-tree nodes whose digests
// the log has never seen — the structural-sharing argument that makes
// Diff O(changed rows) makes persistence O(changed nodes) — followed
// by the metadata that interprets them (table roots, share metas,
// chain blocks, state checkpoints) and a commit marker that seals the
// group atomically. Every frame is CRC-protected; sealed segments
// carry a digest-keyed sidecar index so recovery registers their
// nodes without replaying their payloads.
//
// Recovery is *verified, not trusted*: the store only hands back a
// table after rebuilding it from node records and recomputing its
// Merkle root against the persisted commitment, and the layers above
// re-verify that commitment against the on-chain hash. A torn or
// corrupt tail is truncated to the last durable commit marker and the
// lost suffix heals through the ordinary data.sync path. The FaultFS
// crash-point VFS (faultfs.go) and the sweep test over it are the
// proof obligation for those claims.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"medshare/internal/chain"
	"medshare/internal/reldb"
)

// Options configures Open.
type Options struct {
	// Dir is the data directory (file backend). Ignored when FS is set.
	Dir string
	// FS overrides the backend (NewMemFS() for the memory backend,
	// NewFaultFS() under crash injection). Nil selects DirFS(Dir).
	FS FS
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// NoSync skips fsync after commit (benchmarks; never production).
	NoSync bool
}

// Stats describes what Open found and what recovery cost.
type Stats struct {
	Segments int
	// TotalBytes is the log size on disk at open.
	TotalBytes int64
	// ScannedBytes counts bytes read and CRC-verified during open (full
	// scans plus indexed metadata frames) — the "replay" cost.
	ScannedBytes int64
	// FetchedBytes counts node-record bytes read lazily by LoadTable
	// since open.
	FetchedBytes int64
	// TailBytes is the size of the discarded tail: bytes past the last
	// durable commit marker in the final segment.
	TailBytes int64
	// TornTail reports whether the final segment ended in an invalid or
	// uncommitted suffix (truncated away).
	TornTail bool
	// DegradedSegments counts sealed segments with detected corruption;
	// their valid prefix was used, the rest ignored.
	DegradedSegments int
	Records          int
	Blocks           int
	NodeRecords      int
	// Commits is the sequence number of the last durable commit group.
	Commits uint64
	// CleanShutdown reports whether the last durable commit carried the
	// clean-shutdown flag.
	CleanShutdown bool
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// recRef locates a node record: segment ordinal + frame offset.
type recRef struct {
	seg int
	off int64
}

// Store is an open node store. All methods are safe for concurrent
// use; commits are serialized internally.
type Store struct {
	mu       sync.Mutex
	fs       FS
	segBytes int64
	noSync   bool

	segNames []string
	readers  []File // per-segment read handles (readers[active] == active)
	active   File
	activeAt int    // ordinal of the active segment
	activeSize int64
	activeEntries []segEntry

	nodes  map[[digLen]byte]recRef
	blocks []*chain.Block
	tables map[string]TableRoot
	shares map[string]ShareMeta
	state  *StateCheckpoint

	commitSeq uint64
	stats     Stats
	failed    error
	closed    bool
}

const defaultSegmentBytes = 8 << 20

func segName(i int) string { return fmt.Sprintf("seg-%08d.wal", i) }

// Open opens (creating if empty) a store and recovers its contents:
// sealed segments load through their indexes (falling back to a full
// scan on any index damage), the active segment is fully scanned, and
// any suffix past the last durable commit marker is truncated away as
// a torn tail.
func Open(opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		if opts.Dir == "" {
			return nil, errors.New("store: Options needs Dir or FS")
		}
		var err error
		if fs, err = NewDirFS(opts.Dir); err != nil {
			return nil, err
		}
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	s := &Store{
		fs:       fs,
		segBytes: segBytes,
		noSync:   opts.NoSync,
		nodes:    make(map[[digLen]byte]recRef),
		tables:   make(map[string]TableRoot),
		shares:   make(map[string]ShareMeta),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenMemory returns a store over a fresh in-memory filesystem — the
// memory backend: same code paths, no durability.
func OpenMemory() *Store {
	s, err := Open(Options{FS: NewMemFS()})
	if err != nil {
		// A fresh MemFS cannot fail to open.
		panic(err)
	}
	return s
}

// group accumulates the records of one not-yet-committed group during
// recovery; a commit marker flushes it, EOF or corruption discards it.
type group struct {
	nodes  map[[digLen]byte]recRef
	tables []TableRoot
	shares []ShareMeta
	blocks []*chain.Block
	state  *StateCheckpoint
	count  int
}

func (g *group) reset() { *g = group{} }

// applyRecord stages one decoded record into g, or — for kindCommit —
// flushes g into the store and returns the commit record.
func (s *Store) applyRecord(g *group, seg int, kind byte, payload []byte, off int64) (committed bool, clean bool, err error) {
	switch kind {
	case kindNode:
		d, ok := nodeRecDigest(payload)
		if !ok {
			return false, false, fmt.Errorf("store: malformed node record")
		}
		if g.nodes == nil {
			g.nodes = make(map[[digLen]byte]recRef)
		}
		g.nodes[d] = recRef{seg: seg, off: off}
	case kindTableRoot:
		var tr TableRoot
		if err := jsonUnmarshal(payload, &tr); err != nil {
			return false, false, err
		}
		g.tables = append(g.tables, tr)
	case kindShareMeta:
		var sm ShareMeta
		if err := jsonUnmarshal(payload, &sm); err != nil {
			return false, false, err
		}
		g.shares = append(g.shares, sm)
	case kindBlock:
		b, err := decodeBlockRec(payload)
		if err != nil {
			return false, false, err
		}
		g.blocks = append(g.blocks, b)
	case kindState:
		var cp StateCheckpoint
		if err := jsonUnmarshal(payload, &cp); err != nil {
			return false, false, err
		}
		g.state = &cp
	case kindCommit:
		var cr commitRec
		if err := jsonUnmarshal(payload, &cr); err != nil {
			return false, false, err
		}
		for d, ref := range g.nodes {
			if _, dup := s.nodes[d]; !dup {
				s.nodes[d] = ref
				s.stats.NodeRecords++
			}
		}
		for _, tr := range g.tables {
			s.tables[tr.Name] = tr
		}
		for _, sm := range g.shares {
			s.shares[sm.ID] = sm
		}
		s.blocks = append(s.blocks, g.blocks...)
		s.stats.Blocks += len(g.blocks)
		if g.state != nil {
			s.state = g.state
		}
		s.commitSeq = cr.Seq
		s.stats.CleanShutdown = cr.Clean
		g.reset()
		return true, cr.Clean, nil
	default:
		// Unknown kinds from a future version: skip within the group.
	}
	g.count++
	return false, false, nil
}

func jsonUnmarshal(p []byte, v any) error {
	if err := json.Unmarshal(p, v); err != nil {
		return fmt.Errorf("store: decoding record: %w", err)
	}
	return nil
}

// recover scans the log and rebuilds the in-memory indexes.
func (s *Store) recover() error {
	names, err := s.fs.List()
	if err != nil {
		return fmt.Errorf("store: listing segments: %w", err)
	}
	for _, n := range names {
		if len(n) == len(segName(0)) && n[:4] == "seg-" && n[len(n)-4:] == ".wal" {
			s.segNames = append(s.segNames, n)
		}
	}
	if len(s.segNames) == 0 {
		return s.startSegment(0)
	}
	s.readers = make([]File, len(s.segNames))
	for i, name := range s.segNames {
		f, err := s.fs.Open(name)
		if err != nil {
			return fmt.Errorf("store: opening segment %s: %w", name, err)
		}
		s.readers[i] = f
		sz, err := f.Size()
		if err != nil {
			return err
		}
		s.stats.TotalBytes += sz
	}
	s.stats.Segments = len(s.segNames)

	last := len(s.segNames) - 1
	for i := range s.segNames {
		if i < last && s.recoverSealed(i) {
			continue
		}
		if err := s.recoverScan(i, i == last); err != nil {
			return err
		}
	}

	// Reopen the last segment for appending (recoverScan truncated any
	// torn tail) and rotate immediately if it is already over-size.
	s.activeAt = last
	f, err := s.fs.OpenAppend(s.segNames[last])
	if err != nil {
		return fmt.Errorf("store: reopening active segment: %w", err)
	}
	s.active = f
	s.readers[last] = f
	if s.activeSize >= s.segBytes {
		return s.rotateLocked()
	}
	return nil
}

// recoverSealed loads sealed segment i through its sidecar index.
// Returns false (caller falls back to a full scan) on any damage.
func (s *Store) recoverSealed(i int) bool {
	idxFile, err := s.fs.Open(s.segNames[i] + ".idx")
	if err != nil {
		return false
	}
	defer idxFile.Close()
	sz, err := idxFile.Size()
	if err != nil || sz > int64(maxSegIndexEntries)*segEntryLen {
		return false
	}
	buf := make([]byte, sz)
	if _, err := idxFile.ReadAt(buf, 0); err != nil {
		return false
	}
	entries, err := decodeSegIndex(buf)
	if err != nil {
		return false
	}
	s.stats.ScannedBytes += sz
	var g group
	sawCommit := false
	for _, e := range entries {
		if e.kind == kindNode {
			// Register by digest without reading the payload; the digest
			// is re-verified against the payload on fetch.
			if g.nodes == nil {
				g.nodes = make(map[[digLen]byte]recRef)
			}
			g.nodes[e.dig] = recRef{seg: i, off: e.off}
			g.count++
			continue
		}
		kind, payload, err := readFrameAt(s.readers[i], e.off)
		if err != nil || kind != e.kind {
			return false
		}
		s.stats.ScannedBytes += frameSize(len(payload))
		s.stats.Records++
		committed, _, err := s.applyRecord(&g, i, kind, payload, e.off)
		if err != nil {
			return false
		}
		if committed {
			sawCommit = true
		}
	}
	// A sealed segment must end on a commit boundary; leftover staged
	// records mean the index lies — rescan.
	if g.count > 0 || !sawCommit && len(entries) > 0 {
		return false
	}
	s.stats.Records += len(entries)
	return true
}

// recoverScan fully scans segment i. For the final (active) segment it
// truncates everything past the last durable commit marker; for sealed
// segments damage only marks the store degraded.
func (s *Store) recoverScan(i int, isActive bool) error {
	f := s.readers[i]
	sz, err := f.Size()
	if err != nil {
		return err
	}
	data := make([]byte, sz)
	if sz > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			return fmt.Errorf("store: reading segment %s: %w", s.segNames[i], err)
		}
	}
	s.stats.ScannedBytes += sz

	var g group
	var entries []segEntry
	lastDurable := int64(0)
	var recErr error
	valid, tailErr := scanFrames(data, func(kind byte, payload []byte, off int64) bool {
		committed, _, err := s.applyRecord(&g, i, kind, payload, off)
		if err != nil {
			recErr = err
			return false
		}
		s.stats.Records++
		e := segEntry{kind: kind, off: off, size: frameSize(len(payload))}
		if kind == kindNode {
			e.dig, _ = nodeRecDigest(payload)
		}
		entries = append(entries, e)
		if committed {
			lastDurable = off + frameSize(len(payload))
		}
		return true
	})
	_ = valid
	dirty := tailErr != nil || recErr != nil || lastDurable < sz
	if !isActive {
		if dirty {
			s.stats.DegradedSegments++
		}
		return nil
	}
	s.activeSize = lastDurable
	// Keep only the entries of durable groups for the eventual seal.
	s.activeEntries = entries[:0]
	for _, e := range entries {
		if e.off+e.size <= lastDurable {
			s.activeEntries = append(s.activeEntries, e)
		}
	}
	if dirty {
		s.stats.TornTail = true
		s.stats.TailBytes = sz - lastDurable
		if err := s.fs.Truncate(s.segNames[i], lastDurable); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	return nil
}

// startSegment creates segment i as the active one.
func (s *Store) startSegment(i int) error {
	name := segName(i)
	f, err := s.fs.OpenAppend(name)
	if err != nil {
		return fmt.Errorf("store: creating segment %s: %w", name, err)
	}
	s.segNames = append(s.segNames, name)
	s.readers = append(s.readers, f)
	s.active = f
	s.activeAt = i
	s.activeSize = 0
	s.activeEntries = nil
	s.stats.Segments = len(s.segNames)
	return nil
}

// rotateLocked seals the active segment (writing its sidecar index)
// and starts the next one. Callers hold s.mu (or are inside Open).
func (s *Store) rotateLocked() error {
	// Seal: the index is advisory, so best-effort — a failed index
	// write leaves a segment that recovers via full scan.
	idx := encodeSegIndex(s.activeEntries)
	if f, err := s.fs.OpenAppend(s.segNames[s.activeAt] + ".idx"); err == nil {
		if _, werr := f.Write(idx); werr == nil && !s.noSync {
			_ = f.Sync()
		}
		_ = f.Close()
	}
	// Keep the sealed segment's read handle; just stop appending.
	return s.startSegment(len(s.segNames))
}

// fail latches a write-path error: once the append position is in
// doubt every later commit refuses, and the owner reopens the store.
func (s *Store) fail(err error) error {
	if s.failed == nil {
		s.failed = err
	}
	return fmt.Errorf("store: log write failed (store now read-only): %w", err)
}

// Commit runs fn against a fresh batch and appends the staged records
// plus a commit marker as one atomic, fsynced group. An empty batch
// writes nothing. Commits are serialized; a commit whose write or sync
// fails poisons the store for writing (reads stay available).
func (s *Store) Commit(fn func(b *Batch) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return fmt.Errorf("store: previous write failure: %w", s.failed)
	}
	b := &Batch{s: s}
	if err := fn(b); err != nil {
		return err
	}
	if len(b.entries) == 0 {
		return nil
	}
	seq := s.commitSeq + 1
	marker, err := encodeJSONRec(commitRec{Seq: seq, Clean: b.clean})
	if err != nil {
		return err
	}
	markerOff := int64(len(b.buf))
	b.buf = appendFrame(b.buf, kindCommit, marker)
	b.entries = append(b.entries, segEntry{kind: kindCommit, off: markerOff, size: frameSize(len(marker))})

	if _, err := s.active.Write(b.buf); err != nil {
		return s.fail(err)
	}
	if !s.noSync {
		if err := s.active.Sync(); err != nil {
			return s.fail(err)
		}
	}

	base := s.activeSize
	for i := range b.entries {
		e := &b.entries[i]
		e.off += base
		if e.kind == kindNode {
			s.nodes[e.dig] = recRef{seg: s.activeAt, off: e.off}
			s.stats.NodeRecords++
		}
		s.activeEntries = append(s.activeEntries, *e)
	}
	for _, tr := range b.tables {
		s.tables[tr.Name] = tr
	}
	for _, sm := range b.shares {
		s.shares[sm.ID] = sm
	}
	if b.state != nil {
		s.state = b.state
	}
	s.activeSize += int64(len(b.buf))
	s.stats.TotalBytes += int64(len(b.buf))
	s.commitSeq = seq
	s.stats.Commits = seq
	s.stats.CleanShutdown = b.clean

	if s.activeSize >= s.segBytes {
		if err := s.rotateLocked(); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// Batch stages the records of one atomic commit group.
type Batch struct {
	s       *Store
	buf     []byte
	entries []segEntry
	// pending dedups node digests staged in this batch.
	pending map[[digLen]byte]bool
	tables  []TableRoot
	shares  []ShareMeta
	state   *StateCheckpoint
	clean   bool
}

func (b *Batch) appendRec(kind byte, payload []byte, dig [digLen]byte) {
	off := int64(len(b.buf))
	b.buf = appendFrame(b.buf, kind, payload)
	b.entries = append(b.entries, segEntry{kind: kind, dig: dig, off: off, size: frameSize(len(payload))})
}

// PutTable stages a table: every row-tree node whose digest the log
// has never seen (O(changed nodes) after a delta), then the root
// commitment that interprets them. The table is loadable back under
// its schema name.
func (b *Batch) PutTable(t *reldb.Table) error {
	var encErr error
	complete := t.ExportNodes(
		func(d [32]byte) bool {
			if b.pending[d] {
				return true
			}
			_, ok := b.s.nodes[d]
			return ok
		},
		func(n reldb.NodeData) bool {
			p, err := encodeNodeRec(n)
			if err != nil {
				encErr = err
				return false
			}
			b.appendRec(kindNode, p, n.Digest)
			if b.pending == nil {
				b.pending = make(map[[digLen]byte]bool)
			}
			b.pending[n.Digest] = true
			return true
		},
	)
	if encErr != nil {
		return encErr
	}
	if !complete {
		return errors.New("store: table export aborted")
	}
	tr := TableRoot{
		Name:   t.Name(),
		Schema: t.Schema(),
		Secret: append([]byte(nil), t.PrioritySecret()...),
		Root:   t.RowsRoot(),
		Rows:   t.Len(),
	}
	p, err := encodeJSONRec(tr)
	if err != nil {
		return err
	}
	b.appendRec(kindTableRoot, p, [digLen]byte{})
	b.tables = append(b.tables, tr)
	return nil
}

// PutBlock stages one accepted chain block.
func (b *Batch) PutBlock(bl *chain.Block) error {
	p, err := encodeJSONRec(bl)
	if err != nil {
		return err
	}
	b.appendRec(kindBlock, p, [digLen]byte{})
	return nil
}

// PutShareMeta stages the replica-location record for one share.
func (b *Batch) PutShareMeta(m ShareMeta) error {
	p, err := encodeJSONRec(m)
	if err != nil {
		return err
	}
	b.appendRec(kindShareMeta, p, [digLen]byte{})
	b.shares = append(b.shares, m)
	return nil
}

// PutState stages a world-state checkpoint.
func (b *Batch) PutState(cp StateCheckpoint) error {
	p, err := encodeJSONRec(&cp)
	if err != nil {
		return err
	}
	b.appendRec(kindState, p, [digLen]byte{})
	b.state = &cp
	return nil
}

// MarkClean flags this commit as a clean-shutdown checkpoint.
func (b *Batch) MarkClean() { b.clean = true }

// --- recovery accessors ---

// Blocks returns the blocks recovered at Open, in log (acceptance)
// order. Blocks appended after Open are not included — the chain
// layer already holds them.
func (s *Store) Blocks() []*chain.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*chain.Block(nil), s.blocks...)
}

// Tables returns the latest persisted root commitment per table name.
func (s *Store) Tables() map[string]TableRoot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TableRoot, len(s.tables))
	for k, v := range s.tables {
		out[k] = v
	}
	return out
}

// Shares returns the latest persisted replica metadata per share ID.
func (s *Store) Shares() map[string]ShareMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ShareMeta, len(s.shares))
	for k, v := range s.shares {
		out[k] = v
	}
	return out
}

// State returns the latest durable world-state checkpoint, if any.
func (s *Store) State() (StateCheckpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == nil {
		return StateCheckpoint{}, false
	}
	return *s.state, true
}

// Stats returns recovery and replay statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// LoadTable rebuilds the named table from its persisted node records
// and verifies the rebuild: recomputed Merkle root against the
// persisted commitment, row count against the persisted count. The
// result is the exact committed table or an error — never silently
// wrong data.
func (s *Store) LoadTable(name string) (*reldb.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: no persisted table %q", name)
	}
	return s.loadTableLocked(tr)
}

// LoadTableRoot is LoadTable for an explicit commitment (callers that
// validated the TableRoot against external metadata first).
func (s *Store) LoadTableRoot(tr TableRoot) (*reldb.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadTableLocked(tr)
}

func (s *Store) loadTableLocked(tr TableRoot) (*reldb.Table, error) {
	return reldb.TableFromNodes(tr.Schema, tr.Secret, tr.Root, tr.Rows, func(d [32]byte) (reldb.NodeData, bool) {
		ref, ok := s.nodes[d]
		if !ok {
			return reldb.NodeData{}, false
		}
		kind, payload, err := readFrameAt(s.readers[ref.seg], ref.off)
		if err != nil || kind != kindNode {
			return reldb.NodeData{}, false
		}
		s.stats.FetchedBytes += frameSize(len(payload))
		nd, err := decodeNodeRec(payload)
		if err != nil || nd.Digest != d {
			return reldb.NodeData{}, false
		}
		return nd, true
	})
}

// Close syncs and closes the log. It does not write a clean-shutdown
// marker — that is the owning node's job (a final Commit with
// MarkClean), so Close after kill-style teardown stays cheap.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.active != nil && s.failed == nil && !s.noSync {
		if err := s.active.Sync(); err != nil && first == nil {
			first = err
		}
	}
	for i, r := range s.readers {
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
		s.readers[i] = nil
	}
	s.active = nil
	return first
}
