package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Sealed-segment index: when a segment rotates out of the active
// position, the store writes a sidecar `<segment>.idx` mapping every
// record to its frame offset (node records keyed by subtree digest).
// Recovery then registers a sealed segment's nodes without reading
// their payloads and re-verifies only the low-rate metadata records —
// the "load the root, replay the tail" shape: full scans are paid only
// for the active segment.
//
// The index is strictly an accelerator. It carries its own checksum,
// and any decode or spot-check failure falls back to a full CRC scan
// of the segment itself — recovery correctness never depends on an
// index being present or intact.

// segEntry locates one record within its segment.
type segEntry struct {
	kind byte
	dig  [digLen]byte // node digest; zero for non-node records
	off  int64        // frame offset within the segment
	size int64        // full frame size (header + payload)
}

const (
	segIndexMagic   = "MSIX"
	segIndexVersion = 1
	segEntryLen     = 1 + digLen + 8 + 8
	// maxSegIndexEntries bounds allocation on corrupt counts.
	maxSegIndexEntries = 1 << 26
)

var errBadSegIndex = errors.New("store: segment index corrupt")

// encodeSegIndex serializes entries: magic, version, count, fixed-width
// entries, trailing CRC32C over everything before it.
func encodeSegIndex(entries []segEntry) []byte {
	out := make([]byte, 0, len(segIndexMagic)+1+4+len(entries)*segEntryLen+4)
	out = append(out, segIndexMagic...)
	out = append(out, segIndexVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = append(out, e.kind)
		out = append(out, e.dig[:]...)
		out = binary.LittleEndian.AppendUint64(out, uint64(e.off))
		out = binary.LittleEndian.AppendUint64(out, uint64(e.size))
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// decodeSegIndex parses an index file, rejecting any structural or
// checksum damage.
func decodeSegIndex(data []byte) ([]segEntry, error) {
	hdr := len(segIndexMagic) + 1 + 4
	if len(data) < hdr+4 {
		return nil, fmt.Errorf("%w: %d bytes", errBadSegIndex, len(data))
	}
	if string(data[:4]) != segIndexMagic || data[4] != segIndexVersion {
		return nil, fmt.Errorf("%w: bad magic/version", errBadSegIndex)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", errBadSegIndex)
	}
	count := binary.LittleEndian.Uint32(data[5:9])
	if count > maxSegIndexEntries || int(count)*segEntryLen != len(body)-hdr {
		return nil, fmt.Errorf("%w: count %d does not match size", errBadSegIndex, count)
	}
	entries := make([]segEntry, count)
	p := body[hdr:]
	for i := range entries {
		e := &entries[i]
		e.kind = p[0]
		copy(e.dig[:], p[1:1+digLen])
		e.off = int64(binary.LittleEndian.Uint64(p[1+digLen : 9+digLen]))
		e.size = int64(binary.LittleEndian.Uint64(p[9+digLen : 17+digLen]))
		if e.off < 0 || e.size < frameHdrLen || e.size > frameHdrLen+maxPayload {
			return nil, fmt.Errorf("%w: entry %d out of range", errBadSegIndex, i)
		}
		p = p[segEntryLen:]
	}
	return entries, nil
}
