package store

import (
	"encoding/json"
	"fmt"

	"medshare/internal/chain"
	"medshare/internal/reldb"
	"medshare/internal/statedb"
)

// Typed record payloads riding the WAL frames. Node records are binary
// (they dominate the log byte count); the low-rate metadata records —
// table roots, share metas, blocks, state checkpoints, commit markers
// — are JSON for evolvability.

const (
	kindNode      byte = 1 // one content-addressed row-tree node
	kindTableRoot byte = 2 // a table's root digest + schema + seed
	kindShareMeta byte = 3 // per-share replica metadata
	kindBlock     byte = 4 // one accepted chain block
	kindState     byte = 5 // world-state checkpoint
	kindCommit    byte = 6 // commit marker sealing the preceding group
)

const digLen = 32

// encodeNodeRec encodes a reldb node record: digest, left, right, then
// the row's canonical JSON.
func encodeNodeRec(n reldb.NodeData) ([]byte, error) {
	row, err := json.Marshal(n.Row)
	if err != nil {
		return nil, fmt.Errorf("store: encoding row: %w", err)
	}
	out := make([]byte, 0, 3*digLen+len(row))
	out = append(out, n.Digest[:]...)
	out = append(out, n.Left[:]...)
	out = append(out, n.Right[:]...)
	return append(out, row...), nil
}

// decodeNodeRec decodes a node record payload.
func decodeNodeRec(p []byte) (reldb.NodeData, error) {
	var n reldb.NodeData
	if len(p) < 3*digLen {
		return n, fmt.Errorf("store: node record too short (%d bytes)", len(p))
	}
	copy(n.Digest[:], p[:digLen])
	copy(n.Left[:], p[digLen:2*digLen])
	copy(n.Right[:], p[2*digLen:3*digLen])
	if err := json.Unmarshal(p[3*digLen:], &n.Row); err != nil {
		return reldb.NodeData{}, fmt.Errorf("store: decoding row: %w", err)
	}
	return n, nil
}

// nodeRecDigest extracts just the digest key from a node record
// payload (the open-time scan registers locations without decoding
// rows).
func nodeRecDigest(p []byte) ([digLen]byte, bool) {
	var d [digLen]byte
	if len(p) < 3*digLen {
		return d, false
	}
	copy(d[:], p[:digLen])
	return d, true
}

// TableRoot is the persisted commitment to one table: everything
// needed to rebuild it from node records and verify the rebuild.
type TableRoot struct {
	Name   string       `json:"name"`
	Schema reldb.Schema `json:"schema"`
	// Secret keys the treap priorities (share replicas); empty for
	// unkeyed tables.
	Secret []byte   `json:"secret,omitempty"`
	Root   [32]byte `json:"root"`
	Rows   int      `json:"rows"`
}

// ShareMeta is the persisted per-share replica state: which tables
// hold the replica and the sequence number it was applied at. The
// authoritative metadata (on-chain hash, participants) lives on the
// chain; this record only locates the local replica.
type ShareMeta struct {
	ID       string `json:"id"`
	Seq      uint64 `json:"seq"`
	Source   string `json:"source,omitempty"`
	View     string `json:"view"`
	PrioSeed []byte `json:"prioSeed,omitempty"`
}

// StateCheckpoint is a full world-state export at a block height,
// written on clean shutdown so a graceful restart re-executes nothing.
type StateCheckpoint struct {
	Height  uint64          `json:"height"`
	Head    [32]byte        `json:"head"`
	Root    [32]byte        `json:"root"`
	Entries []statedb.Entry `json:"entries"`
}

// commitRec seals the records appended since the previous marker into
// one atomic group.
type commitRec struct {
	Seq uint64 `json:"seq"`
	// Clean marks a shutdown checkpoint: the process stopped gracefully
	// after this group.
	Clean bool `json:"clean,omitempty"`
}

func encodeJSONRec(v any) ([]byte, error) { return json.Marshal(v) }

func decodeBlockRec(p []byte) (*chain.Block, error) {
	var b chain.Block
	if err := json.Unmarshal(p, &b); err != nil {
		return nil, fmt.Errorf("store: decoding block record: %w", err)
	}
	return &b, nil
}
