package store

import (
	"fmt"
	"math/rand"
	"testing"

	"medshare/internal/chain"
	"medshare/internal/reldb"
	"medshare/internal/statedb"
)

func testSchema(name string) reldb.Schema {
	return reldb.Schema{
		Name: name,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.KindInt},
			{Name: "name", Type: reldb.KindString},
			{Name: "dose", Type: reldb.KindString},
		},
		Key: []string{"id"},
	}
}

func testTable(t *testing.T, name string, rows int) *reldb.Table {
	t.Helper()
	tab := reldb.MustNewTable(testSchema(name))
	for i := 0; i < rows; i++ {
		tab.MustInsert(reldb.Row{reldb.I(int64(i)), reldb.S(fmt.Sprintf("n%d", i)), reldb.S("d1")})
	}
	return tab
}

func mustCommitTable(t *testing.T, s *Store, tab *reldb.Table) {
	t.Helper()
	if err := s.Commit(func(b *Batch) error { return b.PutTable(tab) }); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// TestStoreRoundTrip: a store persists tables, blocks, share metas and
// a state checkpoint, and a reopen recovers all of it verified.
func TestStoreRoundTrip(t *testing.T) {
	fs := NewMemFS()
	s, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	tab := testTable(t, "fig1", 50)
	gen := chain.Genesis("test")
	sum := statedb.NewStore()
	sum.Commit(statedb.WriteSet{"k1": []byte("v1")}, statedb.Version{Height: 1})

	err = s.Commit(func(b *Batch) error {
		if err := b.PutTable(tab); err != nil {
			return err
		}
		if err := b.PutBlock(gen); err != nil {
			return err
		}
		if err := b.PutShareMeta(ShareMeta{ID: "sh1", Seq: 3, Source: "fig1", View: "v_sh1"}); err != nil {
			return err
		}
		return b.PutState(StateCheckpoint{Height: 1, Root: sum.Root(), Entries: sum.Export()})
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	st := r.Stats()
	if st.TailBytes != 0 || st.TornTail {
		t.Fatalf("clean log reports tail: %+v", st)
	}
	got, err := r.LoadTable("fig1")
	if err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	if got.Hash() != tab.Hash() {
		t.Fatal("recovered table hash differs")
	}
	if bl := r.Blocks(); len(bl) != 1 || bl[0].Hash() != gen.Hash() {
		t.Fatalf("recovered blocks wrong: %d", len(bl))
	}
	if sm, ok := r.Shares()["sh1"]; !ok || sm.Seq != 3 || sm.View != "v_sh1" {
		t.Fatalf("recovered share meta wrong: %+v", sm)
	}
	cp, ok := r.State()
	if !ok || cp.Height != 1 {
		t.Fatalf("recovered state checkpoint wrong: %+v ok=%v", cp, ok)
	}
	rec := statedb.NewStore()
	rec.Import(cp.Entries)
	if rec.Root() != cp.Root {
		t.Fatal("imported state root does not match checkpoint root")
	}
}

// TestStoreIncrementalWrite: committing a one-row delta appends
// O(changed nodes), not the whole table.
func TestStoreIncrementalWrite(t *testing.T) {
	fs := NewMemFS()
	s, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tab := testTable(t, "big", 2000)
	mustCommitTable(t, s, tab)
	full := s.Stats().TotalBytes

	tab2 := tab.Clone()
	if err := tab2.Update(reldb.Row{reldb.I(7)}, map[string]reldb.Value{"dose": reldb.S("d9")}); err != nil {
		t.Fatal(err)
	}
	mustCommitTable(t, s, tab2)
	delta := s.Stats().TotalBytes - full
	if delta <= 0 || delta > full/10 {
		t.Fatalf("one-row delta cost %d bytes vs %d full — not incremental", delta, full)
	}

	r, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.LoadTable("big")
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != tab2.Hash() {
		t.Fatal("reopen did not yield the latest committed table")
	}
}

// TestStoreRotationAndIndex: segments rotate, sealed segments recover
// through their sidecar index (cheaper than a full scan), and a
// corrupt index silently falls back to scanning.
func TestStoreRotationAndIndex(t *testing.T) {
	fs := NewMemFS()
	s, err := Open(Options{FS: fs, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	tab := testTable(t, "rot", 40)
	mustCommitTable(t, s, tab)
	for i := 0; i < 30; i++ {
		tab = tab.Clone()
		if err := tab.Update(reldb.Row{reldb.I(int64(i % 40))}, map[string]reldb.Value{"dose": reldb.S(fmt.Sprintf("d%d", i))}); err != nil {
			t.Fatal(err)
		}
		mustCommitTable(t, s, tab)
	}
	if s.Stats().Segments < 2 {
		t.Fatalf("expected rotation, got %d segments (total %d bytes)", s.Stats().Segments, s.Stats().TotalBytes)
	}
	s.Close()

	r, err := Open(Options{FS: fs, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fast := r.Stats()
	if fast.ScannedBytes >= fast.TotalBytes {
		t.Fatalf("indexed recovery scanned %d of %d bytes — index not used", fast.ScannedBytes, fast.TotalBytes)
	}
	got, err := r.LoadTable("rot")
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != tab.Hash() {
		t.Fatal("indexed recovery yielded wrong table")
	}
	r.Close()

	// Corrupt every index file: recovery must fall back to full scans
	// and still produce the same table.
	names, _ := fs.List()
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".idx" {
			f, _ := fs.OpenAppend(n)
			f.Write([]byte("garbage"))
			f.Close()
		}
	}
	r2, err := Open(Options{FS: fs, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	slow := r2.Stats()
	if slow.ScannedBytes <= fast.ScannedBytes {
		t.Fatalf("fallback scan (%d) not larger than indexed scan (%d)", slow.ScannedBytes, fast.ScannedBytes)
	}
	got2, err := r2.LoadTable("rot")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Hash() != tab.Hash() {
		t.Fatal("fallback recovery yielded wrong table")
	}
}

// TestStoreTornTail: garbage or a half-written frame at the end of the
// log is detected, truncated, and recovery lands on the last durable
// commit.
func TestStoreTornTail(t *testing.T) {
	base := NewMemFS()
	s, err := Open(Options{FS: base})
	if err != nil {
		t.Fatal(err)
	}
	tab := testTable(t, "tt", 20)
	mustCommitTable(t, s, tab)
	wantHash := tab.Hash()
	tab2 := tab.Clone()
	tab2.MustInsert(reldb.Row{reldb.I(999), reldb.S("late"), reldb.S("d")})
	mustCommitTable(t, s, tab2)
	s.Close()

	seg := segName(0)
	cases := map[string]func(fs *MemFS){
		"garbage-appended": func(fs *MemFS) {
			f, _ := fs.OpenAppend(seg)
			f.Write([]byte{frameMagic, 9, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5})
			f.Close()
		},
		"half-frame": func(fs *MemFS) {
			f, _ := fs.OpenAppend(seg)
			f.Write(appendFrame(nil, kindCommit, []byte(`{"seq":99}`))[:7])
			f.Close()
		},
		"truncated-mid-commit": func(fs *MemFS) {
			rf, _ := fs.Open(seg)
			sz, _ := rf.Size()
			fs.Truncate(seg, sz-5)
		},
	}
	for name, corrupt := range cases {
		fs := base.Clone()
		corrupt(fs)
		r, err := Open(Options{FS: fs})
		if err != nil {
			t.Fatalf("%s: reopen: %v", name, err)
		}
		st := r.Stats()
		if !st.TornTail || st.TailBytes == 0 {
			t.Fatalf("%s: tail not detected: %+v", name, st)
		}
		got, err := r.LoadTable("tt")
		if err != nil {
			t.Fatalf("%s: LoadTable: %v", name, err)
		}
		h := got.Hash()
		if name == "truncated-mid-commit" {
			// The second commit group lost its marker: recovery must land
			// exactly on the first commit.
			if h != wantHash {
				t.Fatalf("%s: did not land on previous durable commit", name)
			}
		} else if h != tab2.Hash() && h != wantHash {
			t.Fatalf("%s: recovered table matches no committed state", name)
		}
		// The truncated log must accept new commits cleanly.
		tab3 := got.Clone()
		tab3.MustInsert(reldb.Row{reldb.I(5000), reldb.S("post"), reldb.S("d")})
		mustCommitTable(t, r, tab3)
		r.Close()
		r2, err := Open(Options{FS: fs})
		if err != nil {
			t.Fatalf("%s: second reopen: %v", name, err)
		}
		if g, err := r2.LoadTable("tt"); err != nil || g.Hash() != tab3.Hash() {
			t.Fatalf("%s: post-truncation commit not durable: %v", name, err)
		}
		r2.Close()
	}
}

// TestStoreCleanStop: a clean-shutdown commit leaves zero tail bytes —
// a graceful stop never relies on recovery (the satellite-4
// regression).
func TestStoreCleanStop(t *testing.T) {
	fs := NewMemFS()
	s, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	tab := testTable(t, "cs", 10)
	mustCommitTable(t, s, tab)
	sum := statedb.NewStore()
	sum.Commit(statedb.WriteSet{"a": []byte("b")}, statedb.Version{Height: 2})
	err = s.Commit(func(b *Batch) error {
		b.MarkClean()
		return b.PutState(StateCheckpoint{Height: 2, Root: sum.Root(), Entries: sum.Export()})
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.TailBytes != 0 || st.TornTail || !st.CleanShutdown {
		t.Fatalf("clean stop left tail to replay: %+v", st)
	}
}

// TestStoreWriteFailure: an injected device failure poisons the write
// path (no silent interleaving at an unknown position) while reads
// keep working.
func TestStoreWriteFailure(t *testing.T) {
	ffs := NewFaultFS()
	s, err := Open(Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tab := testTable(t, "wf", 10)
	mustCommitTable(t, s, tab)
	ffs.FailWritesAfter(ffs.TotalBytes() + 10)

	tab2 := tab.Clone()
	tab2.MustInsert(reldb.Row{reldb.I(100), reldb.S("x"), reldb.S("y")})
	if err := s.Commit(func(b *Batch) error { return b.PutTable(tab2) }); err == nil {
		t.Fatal("commit past injected failure succeeded")
	}
	if err := s.Commit(func(b *Batch) error { return b.PutTable(tab2) }); err == nil {
		t.Fatal("store not poisoned after write failure")
	}
	if got, err := s.LoadTable("wf"); err != nil || got.Hash() != tab.Hash() {
		t.Fatalf("reads broken after write failure: %v", err)
	}
}

// TestFaultFSSurvivors pins the three crash models' semantics.
func TestFaultFSSurvivors(t *testing.T) {
	ffs := NewFaultFS()
	f, _ := ffs.OpenAppend("a")
	f.Write([]byte("hello"))
	f.Sync()
	f.Write([]byte("world"))

	read := func(m *MemFS) string {
		rf, err := m.Open("a")
		if err != nil {
			return ""
		}
		sz, _ := rf.Size()
		buf := make([]byte, sz)
		if sz > 0 {
			rf.ReadAt(buf, 0)
		}
		return string(buf)
	}

	if got := read(ffs.SurvivorAt(7, CrashTorn)); got != "hellowo" {
		t.Fatalf("torn at 7: %q", got)
	}
	if got := read(ffs.SurvivorAt(7, CrashDropUnsynced)); got != "hello" {
		t.Fatalf("drop-unsynced at 7: %q", got)
	}
	if got := read(ffs.SurvivorAt(0, CrashTorn)); got != "" {
		t.Fatalf("torn at 0: %q", got)
	}
	flipped := read(ffs.SurvivorAt(1, CrashBitFlip))
	if flipped == "helloworld" || len(flipped) != 10 {
		t.Fatalf("bitflip at 1: %q", flipped)
	}
	if ffs.TotalBytes() != 10 {
		t.Fatalf("TotalBytes = %d", ffs.TotalBytes())
	}
	if pts := ffs.SyncPoints(); len(pts) != 1 || pts[0] != 5 {
		t.Fatalf("SyncPoints = %v", pts)
	}
}

// TestPropertyRecoveryEquivalence is the satellite-2 property test:
// for a random operation sequence over multiple tables, the state
// rebuilt via store recovery is digest-identical to the state rebuilt
// in memory — at full durability and at every probed crash prefix.
func TestPropertyRecoveryEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			ffs := NewFaultFS()
			s, err := Open(Options{FS: ffs, SegmentBytes: 8 << 10})
			if err != nil {
				t.Fatal(err)
			}

			names := []string{"alpha", "beta"}
			mem := map[string]*reldb.Table{}
			for _, n := range names {
				tab := reldb.MustNewTable(testSchema(n))
				if n == "beta" {
					tab = tab.Reseeded([]byte("beta-secret"))
				}
				mem[n] = tab
			}
			// hashAt[i] = per-table hash after commit i (the reference
			// history an interrupted recovery must land on a prefix of).
			type snap map[string][32]byte
			var history []snap

			commits := 30
			if testing.Short() {
				commits = 12
			}
			for c := 0; c < commits; c++ {
				n := names[rng.Intn(len(names))]
				tab := mem[n].Clone()
				for e := 0; e < 1+rng.Intn(4); e++ {
					id := int64(rng.Intn(30))
					switch rng.Intn(4) {
					case 0:
						_ = tab.Delete(reldb.Row{reldb.I(id)})
					default:
						_ = tab.Upsert(reldb.Row{reldb.I(id), reldb.S(fmt.Sprintf("n%d", id)), reldb.S(fmt.Sprintf("d%d", rng.Intn(9)))})
					}
				}
				tab = tab.Reseeded(mem[n].PrioritySecret())
				mem[n] = tab
				mustCommitTable(t, s, tab)
				sn := snap{}
				for _, nm := range names {
					sn[nm] = mem[nm].Hash()
				}
				history = append(history, sn)
			}
			s.Close()

			verify := func(fs *MemFS, label string) {
				r, err := Open(Options{FS: fs})
				if err != nil {
					t.Fatalf("%s: reopen: %v", label, err)
				}
				defer r.Close()
				got := snap{}
				for name := range r.Tables() {
					tab, err := r.LoadTable(name)
					if err != nil {
						// Detected corruption is an acceptable outcome for a
						// crash prefix — the share layer heals via resync. It
						// must be *detected*, never silent; nothing to compare.
						return
					}
					got[name] = tab.Hash()
				}
				// The recovered state must be SOME prefix of history
				// (per-table latest-commit-at-that-prefix), never a state
				// that was never committed.
				for i := len(history) - 1; i >= 0; i-- {
					match := true
					for name, h := range got {
						if history[i][name] != h {
							match = false
							break
						}
					}
					if match && len(got) == len(history[i]) {
						return
					}
				}
				// Partial recovery (one table present, other not yet
				// committed) happens for early prefixes; check each table's
				// hash appeared somewhere in history.
				for name, h := range got {
					seen := false
					for _, sn := range history {
						if sn[name] == h {
							seen = true
							break
						}
					}
					if !seen {
						t.Fatalf("%s: table %s recovered to a state never committed", label, name)
					}
				}
			}

			// Full recovery must equal the final in-memory state exactly.
			r, err := Open(Options{FS: ffs.SurvivorAt(ffs.TotalBytes(), CrashTorn)})
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range names {
				got, err := r.LoadTable(n)
				if err != nil {
					t.Fatalf("full recovery load %s: %v", n, err)
				}
				if got.Hash() != mem[n].Hash() {
					t.Fatalf("full recovery of %s differs from in-memory state", n)
				}
			}
			r.Close()

			// Random crash prefixes: recovery is a committed prefix or a
			// detected failure — never silent divergence.
			total := ffs.TotalBytes()
			probes := 25
			if testing.Short() {
				probes = 8
			}
			for p := 0; p < probes; p++ {
				n := rng.Int63n(total + 1)
				verify(ffs.SurvivorAt(n, CrashTorn), fmt.Sprintf("torn@%d", n))
				verify(ffs.SurvivorAt(n, CrashDropUnsynced), fmt.Sprintf("drop@%d", n))
				verify(ffs.SurvivorAt(n, CrashBitFlip), fmt.Sprintf("flip@%d", n))
			}
		})
	}
}
