package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The VFS seam: the log layer talks to storage exclusively through FS
// and File, so the same code runs over a real directory (DirFS), in
// memory (MemFS — the "memory" backend and the unit-test substrate),
// or under deterministic crash injection (FaultFS).

// File is one append-only log file. Writes always append; reads are
// random-access. Implementations must support concurrent ReadAt.
type File interface {
	io.Writer
	io.ReaderAt
	// Sync makes previously written bytes durable (a crash after Sync
	// returns cannot lose them).
	Sync() error
	// Size returns the current file length in bytes.
	Size() (int64, error)
	Close() error
}

// FS is the filesystem surface the store needs: a flat namespace of
// append-only files.
type FS interface {
	// OpenAppend opens name for appending, creating it empty if absent.
	OpenAppend(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// List returns the names of all files, sorted.
	List() ([]string, error)
	// Remove deletes a file (missing files are not an error).
	Remove(name string) error
	// Truncate cuts a file to size bytes (used once, at open, to drop a
	// torn tail).
	Truncate(name string, size int64) error
}

// DirFS is the production FS: one OS directory holding the log files.
type DirFS struct {
	dir string
}

// NewDirFS returns a DirFS rooted at dir, creating the directory if
// needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

// syncDir fsyncs the directory so newly created file entries survive a
// crash (a file whose data is synced but whose directory entry is not
// can vanish on some filesystems).
func (d *DirFS) syncDir() {
	if f, err := os.Open(d.dir); err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
}

func (d *DirFS) OpenAppend(name string) (File, error) {
	path := filepath.Join(d.dir, filepath.Base(name))
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if os.IsNotExist(statErr) {
		d.syncDir()
	}
	return &osFile{f: f}, nil
}

func (d *DirFS) Open(name string) (File, error) {
	f, err := os.Open(filepath.Join(d.dir, filepath.Base(name)))
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

func (d *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *DirFS) Remove(name string) error {
	err := os.Remove(filepath.Join(d.dir, filepath.Base(name)))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (d *DirFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(d.dir, filepath.Base(name)), size)
}

// osFile adapts *os.File to the File interface.
type osFile struct{ f *os.File }

func (o *osFile) Write(p []byte) (int, error)          { return o.f.Write(p) }
func (o *osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }
func (o *osFile) Sync() error                          { return o.f.Sync() }
func (o *osFile) Close() error                         { return o.f.Close() }
func (o *osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// MemFS is the in-memory FS: the store's "memory" backend, and the
// durable-state model FaultFS materializes survivors into. Safe for
// concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// Clone returns a deep copy (survivor materialization, test forking).
func (m *MemFS) Clone() *MemFS {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := NewMemFS()
	for name, data := range m.files {
		out.files[name] = append([]byte(nil), data...)
	}
	return out
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = nil
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.files[name]; !ok {
		return nil, fmt.Errorf("store: %s: %w", name, os.ErrNotExist)
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return fmt.Errorf("store: %s: %w", name, os.ErrNotExist)
	}
	if size < int64(len(data)) {
		m.files[name] = data[:size:size]
	}
	return nil
}

// write appends p to name and returns the offset it landed at.
func (m *MemFS) write(name string, p []byte) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	off := int64(len(m.files[name]))
	m.files[name] = append(m.files[name], p...)
	return off
}

type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.write(f.name, p)
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	data := f.fs.files[f.name]
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
func (f *memFile) Size() (int64, error) {
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	return int64(len(f.fs.files[f.name])), nil
}
