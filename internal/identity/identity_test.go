package identity

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// fixedReader yields deterministic bytes for reproducible keys.
type fixedReader byte

func (f fixedReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(f)
	}
	return len(p), nil
}

func TestNewIdentity(t *testing.T) {
	id, err := New("Doctor")
	if err != nil {
		t.Fatal(err)
	}
	if id.Name != "Doctor" {
		t.Fatalf("name = %s", id.Name)
	}
	if id.Address().IsZero() {
		t.Fatal("zero address")
	}
	if len(id.PublicKey()) == 0 {
		t.Fatal("no public key")
	}
}

func TestDeterministicFromReader(t *testing.T) {
	a, err := NewFrom("x", fixedReader(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFrom("y", fixedReader(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Address() != b.Address() {
		t.Fatal("same entropy should give the same address")
	}
	c, _ := NewFrom("z", fixedReader(8))
	if a.Address() == c.Address() {
		t.Fatal("different entropy should give different addresses")
	}
}

func TestSignVerify(t *testing.T) {
	id := MustNew("signer")
	msg := []byte("update D23 seq 4")
	sig := id.Sign(msg)
	if err := Verify(id.Address(), id.PublicKey(), msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	id := MustNew("signer")
	sig := id.Sign([]byte("original"))
	if err := Verify(id.Address(), id.PublicKey(), []byte("tampered"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsWrongKeyForAddress(t *testing.T) {
	a := MustNew("a")
	b := MustNew("b")
	msg := []byte("m")
	sig := b.Sign(msg)
	// b's key does not hash to a's address.
	if err := Verify(a.Address(), b.PublicKey(), msg, sig); !errors.Is(err, ErrAddrMismatch) {
		t.Fatalf("want ErrAddrMismatch, got %v", err)
	}
}

func TestVerifyRejectsForgedSignature(t *testing.T) {
	id := MustNew("signer")
	msg := []byte("m")
	sig := id.Sign(msg)
	sig[0] ^= 0xff
	if err := Verify(id.Address(), id.PublicKey(), msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestAddressTextRoundTrip(t *testing.T) {
	id := MustNew("x")
	txt, err := id.Address().MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Address
	if err := back.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if back != id.Address() {
		t.Fatal("address changed across text round trip")
	}
}

func TestParseAddressRejects(t *testing.T) {
	if _, err := ParseAddress("zz"); err == nil {
		t.Fatal("non-hex should fail")
	}
	if _, err := ParseAddress("abcd"); err == nil {
		t.Fatal("wrong length should fail")
	}
}

func TestAddressStringLengths(t *testing.T) {
	id := MustNew("x")
	if got := len(id.Address().String()); got != AddressLen*2 {
		t.Fatalf("hex length = %d", got)
	}
	if got := len(id.Address().Short()); got != 8 {
		t.Fatalf("short length = %d", got)
	}
}

func TestSignVerifyQuick(t *testing.T) {
	id := MustNew("q")
	f := func(msg []byte) bool {
		sig := id.Sign(msg)
		return Verify(id.Address(), id.PublicKey(), msg, sig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressOfStable(t *testing.T) {
	id := MustNew("x")
	a := AddressOf(id.PublicKey())
	b := AddressOf(id.PublicKey())
	if a != b {
		t.Fatal("AddressOf not deterministic")
	}
	if a != id.Address() {
		t.Fatal("AddressOf disagrees with Identity.Address")
	}
	addr := id.Address()
	if !bytes.Equal(a[:], addr[:]) {
		t.Fatal("byte forms disagree")
	}
}
