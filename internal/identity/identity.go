// Package identity provides the key material and addressing used by peers
// and blockchain nodes: ed25519 key pairs, short printable addresses
// derived from public keys, and detached signatures over arbitrary
// payloads.
package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// AddressLen is the byte length of an Address.
const AddressLen = 20

// Address identifies a principal: the first 20 bytes of the SHA-256 of the
// public key.
type Address [AddressLen]byte

// String renders the address as hex.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// Short returns an abbreviated form for logs.
func (a Address) Short() string { return hex.EncodeToString(a[:4]) }

// IsZero reports whether the address is the zero address.
func (a Address) IsZero() bool { return a == Address{} }

// MarshalText implements encoding.TextMarshaler so addresses serialize as
// hex in JSON maps and struct fields.
func (a Address) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Address) UnmarshalText(text []byte) error {
	got, err := ParseAddress(string(text))
	if err != nil {
		return err
	}
	*a = got
	return nil
}

// ParseAddress decodes a hex address produced by Address.String.
func ParseAddress(s string) (Address, error) {
	var a Address
	b, err := hex.DecodeString(s)
	if err != nil {
		return a, fmt.Errorf("identity: bad address %q: %w", s, err)
	}
	if len(b) != AddressLen {
		return a, fmt.Errorf("identity: bad address length %d", len(b))
	}
	copy(a[:], b)
	return a, nil
}

// AddressOf derives the address for a public key.
func AddressOf(pub ed25519.PublicKey) Address {
	h := sha256.Sum256(pub)
	var a Address
	copy(a[:], h[:AddressLen])
	return a
}

// Identity is a named key pair.
type Identity struct {
	// Name is a human-readable label ("Doctor", "Patient", ...). It plays
	// no role in authentication; addresses do.
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	addr Address
}

// New generates a fresh identity using crypto/rand.
func New(name string) (*Identity, error) { return NewFrom(name, rand.Reader) }

// NewFrom generates an identity from the given entropy source. Tests pass
// a deterministic reader so identities (and therefore addresses) are
// reproducible.
func NewFrom(name string, r io.Reader) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("identity: generating key for %s: %w", name, err)
	}
	return &Identity{Name: name, priv: priv, pub: pub, addr: AddressOf(pub)}, nil
}

// MustNew is New that panics on failure; crypto/rand failures are fatal.
func MustNew(name string) *Identity {
	id, err := New(name)
	if err != nil {
		panic(err)
	}
	return id
}

// FromSeed derives a deterministic identity from a seed string, so that
// separately configured processes (cmd/medshared instances) can
// precompute each other's addresses. Seed-derived keys trade entropy for
// reproducibility: use them for demos and tests, not deployments.
func FromSeed(name, seed string) *Identity {
	id, err := NewFrom(name, newSeedReader(seed))
	if err != nil {
		// The seed reader never fails; ed25519 generation from a working
		// reader cannot error.
		panic(err)
	}
	return id
}

// seedReader expands a seed string into an unbounded deterministic byte
// stream (SHA-256 in counter mode).
type seedReader struct {
	seed []byte
	ctr  uint64
	buf  []byte
}

func newSeedReader(seed string) *seedReader {
	return &seedReader{seed: []byte("medshare-identity:" + seed)}
}

func (r *seedReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			h := sha256.New()
			h.Write(r.seed)
			var ctr [8]byte
			for i := 0; i < 8; i++ {
				ctr[i] = byte(r.ctr >> (8 * i))
			}
			r.ctr++
			h.Write(ctr[:])
			r.buf = h.Sum(nil)
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return n, nil
}

// Address returns the identity's address.
func (id *Identity) Address() Address { return id.addr }

// PublicKey returns the public key.
func (id *Identity) PublicKey() ed25519.PublicKey { return id.pub }

// Sign produces a detached ed25519 signature over msg.
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.priv, msg) }

// Errors returned by Verify.
var (
	ErrBadSignature = errors.New("identity: signature verification failed")
	ErrAddrMismatch = errors.New("identity: public key does not match address")
)

// Verify checks that sig is a valid signature of msg by the key behind
// addr.
func Verify(addr Address, pub ed25519.PublicKey, msg, sig []byte) error {
	if AddressOf(pub) != addr {
		return ErrAddrMismatch
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}
