package identity

import (
	"testing"
)

func TestFromSeedDeterministic(t *testing.T) {
	a := FromSeed("Doctor", "s1")
	b := FromSeed("Doctor", "s1")
	if a.Address() != b.Address() {
		t.Fatal("same seed, different address")
	}
	// The name does not enter the key derivation; only the seed does —
	// two processes configured with the same seed agree regardless of
	// display name.
	c := FromSeed("Renamed", "s1")
	if a.Address() != c.Address() {
		t.Fatal("name must not affect the derived key")
	}
	d := FromSeed("Doctor", "s2")
	if a.Address() == d.Address() {
		t.Fatal("different seeds must differ")
	}
}

func TestFromSeedSignatureInterop(t *testing.T) {
	signer := FromSeed("x", "interop")
	verifierView := FromSeed("y", "interop") // another process's derivation
	msg := []byte("payload")
	sig := signer.Sign(msg)
	if err := Verify(verifierView.Address(), verifierView.PublicKey(), msg, sig); err != nil {
		t.Fatalf("cross-process verification failed: %v", err)
	}
}

func TestSeedReaderStreamStable(t *testing.T) {
	r1 := newSeedReader("abc")
	r2 := newSeedReader("abc")
	a := make([]byte, 100)
	b := make([]byte, 100)
	if _, err := r1.Read(a); err != nil {
		t.Fatal(err)
	}
	// Read in small chunks from the second reader; stream must match.
	for off := 0; off < len(b); off += 7 {
		end := off + 7
		if end > len(b) {
			end = len(b)
		}
		if _, err := r2.Read(b[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverges at byte %d", i)
		}
	}
	// Different seeds produce different streams.
	r3 := newSeedReader("abd")
	c := make([]byte, 100)
	if _, err := r3.Read(c); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}
