package api

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/reldb"
)

// contextWithTimeout derives the request's working context.
func contextWithTimeout(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), d)
}

// writeJSON renders v as the 200 response body.
func writeJSON(w http.ResponseWriter, v any) error {
	return writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) error {
	buf := getBuf()
	defer putBuf(buf)
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return nil // already reported
	}
	buf = append(buf, data...)
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf)
	return nil
}

// handleHealthz reports liveness: the process is up and the chain store
// answers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, map[string]any{
		"status": "ok",
		"peer":   s.peer.Name(),
		"addr":   s.peer.Address().String(),
		"height": s.node.Store().Height(),
	})
}

// handleReadyz reports readiness: ready iff every bound share's applied
// sequence has caught up with the on-chain sequence AND the sharded
// event runtime's backlog is below the configured bound. A peer that is
// resyncing (restored from a stale snapshot, or digging out of a
// partition) answers 503 so a load balancer routes reads elsewhere
// until the repair loop catches up.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) error {
	type lag struct {
		ShareID    string `json:"shareId"`
		AppliedSeq uint64 `json:"appliedSeq"`
		ChainSeq   uint64 `json:"chainSeq"`
	}
	var lags []lag
	for _, id := range s.peer.Shares() {
		info, err := s.peer.ShareInfo(id)
		if err != nil {
			continue // unbound between Shares() and here
		}
		meta, err := s.peer.Meta(id)
		if err != nil {
			continue // chain metadata gone (share removed)
		}
		if info.AppliedSeq < meta.Seq {
			lags = append(lags, lag{ShareID: id, AppliedSeq: info.AppliedSeq, ChainSeq: meta.Seq})
		}
	}
	depth := s.peer.Stats().ShardQueueDepth
	ready := len(lags) == 0 && depth <= s.cfg.MaxQueueDepth
	body := map[string]any{
		"ready":      ready,
		"queueDepth": depth,
		"lagging":    lags,
	}
	if ready {
		return writeJSON(w, body)
	}
	s.m.notReady.Add(1)
	return writeJSONStatus(w, http.StatusServiceUnavailable, body)
}

// handleSharesList lists the shares bound on this peer.
func (s *Server) handleSharesList(w http.ResponseWriter, r *http.Request) error {
	ids := s.peer.Shares()
	out := make([]ShareStatus, 0, len(ids))
	for _, id := range ids {
		st, err := s.shareStatus(id)
		if err != nil {
			continue
		}
		out = append(out, st)
	}
	return writeJSON(w, out)
}

func (s *Server) shareStatus(id string) (ShareStatus, error) {
	info, err := s.peer.ShareInfo(id)
	if err != nil {
		return ShareStatus{}, err
	}
	st := ShareStatus{
		ID:          info.ID,
		SourceTable: info.SourceTable,
		ViewName:    info.ViewName,
		AppliedSeq:  info.AppliedSeq,
	}
	if meta, err := s.peer.Meta(id); err == nil {
		st.ChainSeq = meta.Seq
		st.Pending = meta.Pending != nil
		st.Columns = meta.Columns
		st.Peers = addrStrings(meta.Peers)
		st.PayloadHash = meta.LastPayloadHash
	}
	return st, nil
}

// handleShareGet serves one share's lifecycle status.
func (s *Server) handleShareGet(w http.ResponseWriter, r *http.Request) error {
	st, err := s.shareStatus(r.PathValue("id"))
	if err != nil {
		return err
	}
	return writeJSON(w, st)
}

// handleRegister registers a new share with this peer as initiator.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) error {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return badRequest("decoding register request: %v", err)
	}
	if req.ID == "" || req.SourceTable == "" || req.ViewName == "" {
		return badRequest("id, sourceTable and viewName are required")
	}
	lens, err := buildLens(req.LensSpec)
	if err != nil {
		return badRequest("lens spec: %v", err)
	}
	peers, err := parseAddrs(req.Peers)
	if err != nil {
		return badRequest("peers: %v", err)
	}
	args := core.RegisterShareArgs{
		ID:          req.ID,
		SourceTable: req.SourceTable,
		Lens:        lens,
		ViewName:    req.ViewName,
		Peers:       peers,
	}
	if len(req.WritePerm) > 0 {
		args.WritePerm = make(map[string][]identity.Address, len(req.WritePerm))
		for col, writers := range req.WritePerm {
			ws, err := parseAddrs(writers)
			if err != nil {
				return badRequest("writePerm[%s]: %v", col, err)
			}
			args.WritePerm[col] = ws
		}
	}
	if req.Authority != "" {
		a, err := identity.ParseAddress(req.Authority)
		if err != nil {
			return badRequest("authority: %v", err)
		}
		args.Authority = a
	}
	if err := s.peer.RegisterShare(r.Context(), args); err != nil {
		return err
	}
	st, err := s.shareStatus(req.ID)
	if err != nil {
		return err
	}
	return writeJSONStatus(w, http.StatusCreated, st)
}

// handleAttach binds an existing share to this peer's local source.
func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	var req AttachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return badRequest("decoding attach request: %v", err)
	}
	if req.SourceTable == "" || req.ViewName == "" {
		return badRequest("sourceTable and viewName are required")
	}
	lensSpec := req.LensSpec
	if emptySpec(lensSpec) {
		// Default to the lens registered on-chain: the initiator's spec
		// is part of the share metadata precisely so partners can
		// derive their replica without out-of-band agreement.
		meta, err := s.peer.Meta(id)
		if err != nil {
			return err
		}
		lensSpec = meta.LensSpec
	}
	lens, err := buildLens(lensSpec)
	if err != nil {
		return badRequest("lens spec: %v", err)
	}
	if err := s.peer.AttachShare(id, req.SourceTable, lens, req.ViewName); err != nil {
		return err
	}
	st, err := s.shareStatus(id)
	if err != nil {
		return err
	}
	return writeJSONStatus(w, http.StatusCreated, st)
}

// emptySpec treats an absent field and an explicit JSON null alike: a
// nil RawMessage round-trips as the literal `null` through encoders
// that lack omitempty.
func emptySpec(spec json.RawMessage) bool {
	return len(spec) == 0 || string(spec) == "null"
}

func buildLens(spec json.RawMessage) (bx.Lens, error) {
	if emptySpec(spec) {
		return nil, fmt.Errorf("lensSpec is required")
	}
	sp, err := bx.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return sp.Build()
}

// handleRows serves the whole view — the hot read path. The response
// bytes come straight from the root-hash-keyed marshal cache: between
// updates, repeat reads are a map hit plus one Write, no JSON encoding.
func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	view, err := s.peer.View(id)
	if err != nil {
		return err
	}
	data, err := s.views.marshaled(id, view)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
	return nil
}

// handleRow serves one row by key (?key=v1,v2 coerced against the key
// schema). With ?proof=1 the response carries a Merkle membership proof
// against the view's row root — the proof cache in core makes repeat
// proven reads of hot rows O(1) between updates.
func (s *Server) handleRow(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	view, err := s.peer.View(id)
	if err != nil {
		return err
	}
	key, err := parseKeyQuery(r.URL.Query().Get("key"), view.Schema())
	if err != nil {
		return badRequest("key: %v", err)
	}
	wantProof := r.URL.Query().Get("proof") == "1"
	if !wantProof {
		row, ok := view.Get(key)
		if !ok {
			return &httpError{status: http.StatusNotFound, err: fmt.Errorf("row not found")}
		}
		info, err := s.peer.ShareInfo(id)
		if err != nil {
			return err
		}
		return writeJSON(w, RowResult{ShareID: id, Seq: info.AppliedSeq, Row: row})
	}
	pr, err := s.peer.ProveView(id, key)
	if err != nil {
		if strings.Contains(err.Error(), "not found") {
			return &httpError{status: http.StatusNotFound, err: err}
		}
		return err
	}
	return writeJSON(w, RowResult{
		ShareID:   id,
		Seq:       pr.Seq,
		Row:       pr.Row,
		Root:      hex.EncodeToString(pr.Root[:]),
		Proof:     &pr.Proof,
		SchemaSum: hex.EncodeToString(pr.SchemaSum[:]),
		Rows:      pr.Rows,
	})
}

// parseKeyQuery parses a comma-separated key tuple, coercing each part
// to its key column's kind. String keys containing commas must use the
// JSON update API; the read key syntax favors curl-ability.
func parseKeyQuery(raw string, sch reldb.Schema) (reldb.Row, error) {
	if raw == "" {
		return nil, fmt.Errorf("missing key parameter")
	}
	parts := strings.Split(raw, ",")
	if len(parts) != len(sch.Key) {
		return nil, fmt.Errorf("key has %d parts, schema keys on %d columns", len(parts), len(sch.Key))
	}
	key := make(reldb.Row, len(parts))
	for i, p := range parts {
		kind, err := keyKind(sch, sch.Key[i])
		if err != nil {
			return nil, err
		}
		v, err := coerceKeyPart(p, kind)
		if err != nil {
			return nil, fmt.Errorf("key column %s: %w", sch.Key[i], err)
		}
		key[i] = v
	}
	return key, nil
}

func coerceKeyPart(s string, k reldb.Kind) (reldb.Value, error) {
	switch k {
	case reldb.KindString:
		return reldb.S(s), nil
	case reldb.KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return reldb.Value{}, err
		}
		return reldb.I(i), nil
	case reldb.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return reldb.Value{}, err
		}
		return reldb.F(f), nil
	case reldb.KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return reldb.Value{}, err
		}
		return reldb.B(b), nil
	case reldb.KindTime:
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return reldb.Value{}, err
		}
		return reldb.T(t), nil
	default:
		return reldb.Value{}, fmt.Errorf("unsupported key kind %v", k)
	}
}

// handleUpdate applies entry-level view mutations. The request joins
// the write coalescer: concurrent updates landing in the same window
// ride one group commit (one block) via core.UpdateViews.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return badRequest("decoding update request: %v", err)
	}
	if len(req.Ops) == 0 {
		return badRequest("ops must not be empty")
	}
	// Validate the share exists before queueing into a batch.
	if _, err := s.peer.ShareInfo(id); err != nil {
		return err
	}
	prop, proposed, batchSize, err := s.coal.submit(r.Context(), id, func(t *reldb.Table) error {
		return applyOps(t, req.Ops)
	})
	if err != nil {
		if _, bad := errAsBadOp(err); bad {
			return badRequest("%v", err)
		}
		return err
	}
	res := UpdateResult{ShareID: id, Coalesced: batchSize}
	if proposed {
		res.Seq = prop.Seq
		res.TxID = prop.TxID
		res.Cols = prop.Cols
	} else {
		res.NoChange = true
	}
	return writeJSON(w, res)
}

// badOpError marks client-caused mutation failures (malformed ops) so
// they render as 400, not 500.
type badOpError struct{ err error }

func (e *badOpError) Error() string { return e.err.Error() }
func (e *badOpError) Unwrap() error { return e.err }

func errAsBadOp(err error) (*badOpError, bool) {
	var b *badOpError
	ok := errors.As(err, &b)
	return b, ok
}

// applyOps replays the request's mutations onto the view clone.
func applyOps(t *reldb.Table, ops []RowOp) error {
	sch := t.Schema()
	for i, op := range ops {
		switch op.Op {
		case "upsert":
			row, err := coerceRow(op.Row, sch)
			if err != nil {
				return &badOpError{fmt.Errorf("op %d: %w", i, err)}
			}
			if err := t.Upsert(row); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		case "delete":
			key, err := coerceKey(op.Key, sch)
			if err != nil {
				return &badOpError{fmt.Errorf("op %d: %w", i, err)}
			}
			if err := t.Delete(key); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		case "set":
			key, err := coerceKey(op.Key, sch)
			if err != nil {
				return &badOpError{fmt.Errorf("op %d: %w", i, err)}
			}
			set := make(map[string]reldb.Value, len(op.Set))
			for col, raw := range op.Set {
				kind, err := keyKind(sch, col)
				if err != nil {
					return &badOpError{fmt.Errorf("op %d: %w", i, err)}
				}
				v, err := coerceValue(raw, kind)
				if err != nil {
					return &badOpError{fmt.Errorf("op %d, column %s: %w", i, col, err)}
				}
				set[col] = v
			}
			if err := t.Update(key, set); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		default:
			return &badOpError{fmt.Errorf("op %d: unknown op %q", i, op.Op)}
		}
	}
	return nil
}

// handleAudit serves the share's on-chain audit trail.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	recs, err := s.auditor.History(id)
	if err != nil {
		return err
	}
	out := make([]AuditRecord, len(recs))
	for i, rec := range recs {
		out[i] = AuditRecord{
			Height:      rec.Height,
			Time:        rec.Time,
			TxID:        rec.TxID,
			From:        rec.From.String(),
			Fn:          rec.Fn,
			ShareID:     rec.ShareID,
			OK:          rec.OK,
			Err:         rec.Err,
			Seq:         rec.Seq,
			Cols:        rec.Cols,
			PayloadHash: rec.PayloadHash,
		}
	}
	return writeJSON(w, out)
}
