package api

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"medshare/internal/chain"
	"medshare/internal/light"
	"medshare/internal/reldb"
)

// Light serving over HTTP: the same three primitives the p2p serving
// edge offers light clients — header pages, proven share heads, proven
// rows — exposed as endpoints so a light client can run against a
// medshared -api process with nothing but an HTTP connection. The
// payloads are the binary light wire frames (not JSON): every byte is
// part of a hash preimage or a proof, so the transport encoding and the
// verification encoding must be the same bytes, and the client decodes
// with the identical codec the p2p path uses.

const lightContentType = "application/octet-stream"

// handleLightHeaders serves one page of main-chain headers from
// ?from=H (binary chain.EncodeHeaders frame; empty page = caught up).
func (s *Server) handleLightHeaders(w http.ResponseWriter, r *http.Request) error {
	from := uint64(0)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			return badRequest("from: %v", err)
		}
		from = v
	}
	w.Header().Set("Content-Type", lightContentType)
	_, _ = w.Write(chain.EncodeHeaders(s.peer.LightHeaders(from)))
	return nil
}

// handleLightHead serves the share's proven on-chain head (binary
// light.EncodeShareHead frame).
func (s *Server) handleLightHead(w http.ResponseWriter, r *http.Request) error {
	head, err := s.peer.LightHead(r.PathValue("id"))
	if err != nil {
		if strings.Contains(err.Error(), "no value for key") {
			return &httpError{status: http.StatusNotFound, err: err}
		}
		return err
	}
	w.Header().Set("Content-Type", lightContentType)
	_, _ = w.Write(light.EncodeShareHead(&head))
	return nil
}

// handleLightRow serves one proven view row by ?key=v1,v2 (binary
// light.EncodeRowFetch frame).
func (s *Server) handleLightRow(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	view, err := s.peer.View(id)
	if err != nil {
		return err
	}
	key, err := parseKeyQuery(r.URL.Query().Get("key"), view.Schema())
	if err != nil {
		return badRequest("key: %v", err)
	}
	rf, err := s.peer.LightRow(id, key)
	if err != nil {
		if strings.Contains(err.Error(), "not found") {
			return &httpError{status: http.StatusNotFound, err: err}
		}
		return err
	}
	payload, err := light.EncodeRowFetch(&rf)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", lightContentType)
	_, _ = w.Write(payload)
	return nil
}

// LightSource is a light.Source over the HTTP serving edge: the
// transport for `medsharectl light`. Responses are the binary light
// wire frames, decoded with the same codec the p2p path uses, so
// everything the client verifies is byte-identical across transports.
type LightSource struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (s *LightSource) http() *http.Client {
	if s.HTTPClient != nil {
		return s.HTTPClient
	}
	return http.DefaultClient
}

// get fetches one binary frame, returning the body and its size.
func (s *LightSource) get(ctx context.Context, path string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.BaseURL+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := s.http().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 256 {
			msg = msg[:256]
		}
		return nil, len(data), fmt.Errorf("api: light %s: status %d: %s", path, resp.StatusCode, msg)
	}
	return data, len(data), nil
}

// Headers implements light.Source.
func (s *LightSource) Headers(ctx context.Context, fromHeight uint64) ([]chain.Header, int, error) {
	data, n, err := s.get(ctx, "/v1/light/headers?from="+strconv.FormatUint(fromHeight, 10))
	if err != nil {
		return nil, n, err
	}
	hs, err := chain.DecodeHeaders(data)
	return hs, n, err
}

// ShareHead implements light.Source.
func (s *LightSource) ShareHead(ctx context.Context, shareID string) (light.ShareHead, int, error) {
	data, n, err := s.get(ctx, "/v1/light/shares/"+url.PathEscape(shareID)+"/head")
	if err != nil {
		return light.ShareHead{}, n, err
	}
	head, err := light.DecodeShareHead(data)
	if err != nil {
		return light.ShareHead{}, n, err
	}
	return head, n, nil
}

// Row implements light.Source. The key renders into the comma-separated
// read syntax, so it carries the same restriction as /row: string key
// parts must not contain commas.
func (s *LightSource) Row(ctx context.Context, shareID string, key reldb.Row) (light.RowFetch, int, error) {
	parts := make([]string, len(key))
	for i, v := range key {
		parts[i] = v.String()
	}
	q := url.Values{"key": {strings.Join(parts, ",")}}
	data, n, err := s.get(ctx, "/v1/light/shares/"+url.PathEscape(shareID)+"/row?"+q.Encode())
	if err != nil {
		return light.RowFetch{}, n, err
	}
	rf, err := light.DecodeRowFetch(data)
	if err != nil {
		return light.RowFetch{}, n, err
	}
	return rf, n, nil
}
