package api

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"medshare/internal/core"
	"medshare/internal/reldb"
)

// coalescer batches concurrent API write requests into single
// core.UpdateViews calls so they ride ONE group commit: the first
// writer to arrive opens a window, every writer landing inside it joins
// the batch, and when the window closes the opener flushes the whole
// batch in one call — one tx batch, one block, one cascade round. The
// window is meant to sit at or below node.Config.GroupCommitWindow;
// with both in place an API-driven write burst costs one block instead
// of one per request.
type coalescer struct {
	peer   *core.Peer
	window time.Duration

	mu  sync.Mutex
	cur *writeBatch

	// batches counts flushes; writes counts the requests they carried —
	// writes/batches is the realized HTTP-level coalescing factor.
	batches atomic.Uint64
	writes  atomic.Uint64
}

// writeBatch is one coalescing window's worth of writes.
type writeBatch struct {
	edits   []core.ViewEdit
	waiters []*writeWaiter
	done    chan struct{} // closed after flush; results are populated
	results map[string]core.ProposalResult
	err     error // batch-level (propose) error
	size    int
}

// writeWaiter is one request's slot in a batch.
type writeWaiter struct {
	shareID string
	mutErr  error // this request's own mutation error, if any
}

func newCoalescer(peer *core.Peer, window time.Duration) *coalescer {
	return &coalescer{peer: peer, window: window}
}

// submit enqueues one share's mutation and blocks until its batch
// flushes. It returns the proposal the write rode on (zero + false when
// the ops were a no-op), the number of requests in the batch, and the
// request's error.
func (c *coalescer) submit(ctx context.Context, shareID string, mutate func(t *reldb.Table) error) (core.ProposalResult, bool, int, error) {
	w := &writeWaiter{shareID: shareID}
	edit := core.ViewEdit{ShareID: shareID, Mutate: wrapMutate(w, mutate)}

	c.mu.Lock()
	b := c.cur
	opener := b == nil
	if opener {
		b = &writeBatch{done: make(chan struct{})}
		c.cur = b
	}
	b.edits = append(b.edits, edit)
	b.waiters = append(b.waiters, w)
	c.mu.Unlock()

	if opener {
		// The opener sleeps out the window, detaches the batch so the
		// next writer opens a fresh one, then flushes on behalf of
		// everyone in it.
		if c.window > 0 {
			t := time.NewTimer(c.window)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		c.mu.Lock()
		c.cur = nil
		c.mu.Unlock()
		c.flush(ctx, b)
	} else {
		select {
		case <-b.done:
		case <-ctx.Done():
			return core.ProposalResult{}, false, 0, ctx.Err()
		}
	}

	if w.mutErr != nil {
		return core.ProposalResult{}, false, b.size, w.mutErr
	}
	if r, ok := b.results[shareID]; ok {
		return r, true, b.size, nil
	}
	// No proposal for this share: either a genuine no-op or a
	// share-level failure folded into the batch error.
	return core.ProposalResult{}, false, b.size, b.err
}

// flush runs the batch through one UpdateViews group commit.
func (c *coalescer) flush(ctx context.Context, b *writeBatch) {
	b.size = len(b.edits)
	c.batches.Add(1)
	c.writes.Add(uint64(b.size))
	props, err := c.peer.UpdateViews(ctx, b.edits)
	b.results = make(map[string]core.ProposalResult, len(props))
	for _, p := range props {
		b.results[p.ShareID] = p
	}
	b.err = err
	close(b.done)
}

// wrapMutate captures a request's own mutation error so it can be
// attributed to that request rather than smeared across the batch.
func wrapMutate(w *writeWaiter, mutate func(t *reldb.Table) error) func(*reldb.Table) error {
	return func(t *reldb.Table) error {
		if err := mutate(t); err != nil {
			w.mutErr = err
			return err
		}
		return nil
	}
}
