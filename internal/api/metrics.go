package api

import (
	"net/http"
	"strconv"
)

// handleMetrics renders the Prometheus text exposition format by hand —
// the repo deliberately has no dependency on a metrics library, and the
// format is three line shapes. Exported families:
//
//   - medshare_api_requests_total{kind=...} / _errors_total — HTTP
//     traffic split by request kind
//   - medshare_api_latency_seconds{kind=...,quantile=...} — per-kind
//     latency summaries from the same HDR histograms loadr uses
//   - medshare_api_write_batches_total / _coalesced_writes_total —
//     HTTP-level write coalescing (writes/batches = realized factor)
//   - medshare_api_view_cache_* — marshal-cache effectiveness on the
//     hot read path
//   - medshare_peer_* — the peer's own serve/resilience counters
//     (Peer.Stats), including proof-cache hits/misses and the group
//     commit batch realization
//   - medshare_chain_* — chain height and mempool gauges
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	buf := getBuf()
	defer putBuf(buf)

	buf = append(buf, "# TYPE medshare_api_requests_total counter\n"...)
	for _, k := range requestKinds {
		buf = promLine(buf, "medshare_api_requests_total", `kind="`+k+`"`, float64(s.m.kinds[k].requests.Load()))
	}
	buf = append(buf, "# TYPE medshare_api_errors_total counter\n"...)
	for _, k := range requestKinds {
		buf = promLine(buf, "medshare_api_errors_total", `kind="`+k+`"`, float64(s.m.kinds[k].errors.Load()))
	}
	buf = append(buf, "# TYPE medshare_api_latency_seconds summary\n"...)
	for _, k := range requestKinds {
		h := &s.m.kinds[k].latency
		if h.Count() == 0 {
			continue
		}
		for _, q := range [...]struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}} {
			buf = promLine(buf, "medshare_api_latency_seconds",
				`kind="`+k+`",quantile="`+q.label+`"`, h.Quantile(q.q).Seconds())
		}
		buf = promLine(buf, "medshare_api_latency_seconds_sum", `kind="`+k+`"`, h.Sum().Seconds())
		buf = promLine(buf, "medshare_api_latency_seconds_count", `kind="`+k+`"`, float64(h.Count()))
	}

	buf = append(buf, "# TYPE medshare_api_write_batches_total counter\n"...)
	buf = promLine(buf, "medshare_api_write_batches_total", "", float64(s.coal.batches.Load()))
	buf = append(buf, "# TYPE medshare_api_coalesced_writes_total counter\n"...)
	buf = promLine(buf, "medshare_api_coalesced_writes_total", "", float64(s.coal.writes.Load()))
	buf = append(buf, "# TYPE medshare_api_view_cache_hits_total counter\n"...)
	buf = promLine(buf, "medshare_api_view_cache_hits_total", "", float64(s.views.hits.Load()))
	buf = append(buf, "# TYPE medshare_api_view_cache_misses_total counter\n"...)
	buf = promLine(buf, "medshare_api_view_cache_misses_total", "", float64(s.views.misses.Load()))
	buf = append(buf, "# TYPE medshare_api_not_ready_total counter\n"...)
	buf = promLine(buf, "medshare_api_not_ready_total", "", float64(s.m.notReady.Load()))

	st := s.peer.Stats()
	peerCounters := [...]struct {
		name string
		v    uint64
	}{
		{"medshare_peer_rpc_attempts_total", st.RPCAttempts},
		{"medshare_peer_rpc_failures_total", st.RPCFailures},
		{"medshare_peer_rpc_retries_total", st.RPCRetries},
		{"medshare_peer_dead_short_circuits_total", st.DeadShortCircuits},
		{"medshare_peer_resyncs_triggered_total", st.ResyncsTriggered},
		{"medshare_peer_repair_heals_total", st.RepairHeals},
		{"medshare_peer_proposal_retries_total", st.ProposalRetries},
		{"medshare_peer_sync_rounds_total", st.SyncRounds},
		{"medshare_peer_sync_requests_total", st.SyncRequests},
		{"medshare_peer_batch_commits_total", st.BatchCommits},
		{"medshare_peer_batch_txs_total", st.BatchTxs},
		{"medshare_peer_fetches_served_total", st.FetchesServed},
		{"medshare_peer_syncs_served_total", st.SyncsServed},
		{"medshare_peer_proof_cache_hits_total", st.ProofCacheHits},
		{"medshare_peer_proof_cache_misses_total", st.ProofCacheMisses},
	}
	for _, c := range peerCounters {
		buf = append(buf, "# TYPE "...)
		buf = append(buf, c.name...)
		buf = append(buf, " counter\n"...)
		buf = promLine(buf, c.name, "", float64(c.v))
	}
	buf = append(buf, "# TYPE medshare_peer_shard_queue_depth gauge\n"...)
	buf = promLine(buf, "medshare_peer_shard_queue_depth", "", float64(st.ShardQueueDepth))
	buf = append(buf, "# TYPE medshare_chain_height gauge\n"...)
	buf = promLine(buf, "medshare_chain_height", "", float64(s.node.Store().Height()))
	buf = append(buf, "# TYPE medshare_chain_pending_txs gauge\n"...)
	buf = promLine(buf, "medshare_chain_pending_txs", "", float64(s.node.PendingTxs()))

	// Durable-store gauges, present only when the peer runs one: size and
	// segmentation of the log, plus the recovery telemetry (torn tail,
	// degraded segments) an operator alerts on.
	if s.cfg.Store != nil {
		ds := s.cfg.Store.Stats()
		bool01 := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		storeGauges := [...]struct {
			name string
			v    float64
		}{
			{"medshare_store_segments", float64(ds.Segments)},
			{"medshare_store_total_bytes", float64(ds.TotalBytes)},
			{"medshare_store_live_bytes", float64(ds.TotalBytes - ds.TailBytes)},
			{"medshare_store_tail_bytes", float64(ds.TailBytes)},
			{"medshare_store_torn_tail", bool01(ds.TornTail)},
			{"medshare_store_degraded_segments", float64(ds.DegradedSegments)},
			{"medshare_store_commits", float64(ds.Commits)},
		}
		for _, g := range storeGauges {
			buf = append(buf, "# TYPE "...)
			buf = append(buf, g.name...)
			buf = append(buf, " gauge\n"...)
			buf = promLine(buf, g.name, "", g.v)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write(buf)
	return nil
}

// promLine appends `name{labels} value\n`.
func promLine(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	buf = append(buf, '\n')
	return buf
}
