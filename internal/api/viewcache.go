package api

import (
	"sync"
	"sync/atomic"

	"medshare/internal/reldb"
)

// viewCache memoizes the JSON wire form of whole views, keyed by the
// view's content hash. Serving GET /rows is the hot read path; between
// updates the view is immutable (tables are replaced wholesale, and the
// pmap caches subtree digests, so Hash() is O(1) amortized), which
// makes "hash unchanged → bytes unchanged" exact: repeat reads reuse
// the marshaled buffer with zero re-encoding and zero allocation on
// the happy path.
type viewCache struct {
	mu      sync.Mutex
	entries map[string]*viewEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type viewEntry struct {
	hash [32]byte
	data []byte
}

// bufPool recycles response-assembly buffers across requests (update
// results, audit pages, metrics exposition).
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

func getBuf() []byte  { return bufPool.Get().([]byte)[:0] }
func putBuf(b []byte) { bufPool.Put(b) } //nolint:staticcheck // slice header copy is fine here

// marshaled returns the cached JSON encoding of the view, re-encoding
// only when the content hash moved. The returned bytes are shared and
// must not be mutated.
func (c *viewCache) marshaled(shareID string, view *reldb.Table) ([]byte, error) {
	h := view.Hash()
	c.mu.Lock()
	if e, ok := c.entries[shareID]; ok && e.hash == h {
		data := e.data
		c.mu.Unlock()
		c.hits.Add(1)
		return data, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)

	data, err := reldb.MarshalTable(view)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*viewEntry)
	}
	c.entries[shareID] = &viewEntry{hash: h, data: data}
	c.mu.Unlock()
	return data, nil
}
