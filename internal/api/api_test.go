package api_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"medshare/internal/api"
	"medshare/internal/bx"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/light"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// harness is two peers over a memnet sharing one PoA node, with an
// httptest server fronting peer A — the API tests' world.
type harness struct {
	node   *node.Node
	a, b   *core.Peer
	server *api.Server
	ts     *httptest.Server
	client *api.Client
	ctx    context.Context
}

func newHarness(t *testing.T, coalesce time.Duration) *harness {
	t.Helper()
	nid := identity.MustNew("node")
	n, err := node.New(node.Config{
		NetworkName:   "api-test",
		Identity:      nid,
		Engine:        consensus.NewPoA(false, nid.Address()),
		Registry:      contract.NewRegistry(sharereg.New()),
		BlockInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	n.Start(ctx)
	t.Cleanup(n.Stop)

	mem := p2p.NewMemNetwork()
	dir := core.NewDirectory()
	mk := func(name string) *core.Peer {
		id := identity.MustNew(name)
		db := reldb.NewDatabase(name)
		tbl := reldb.MustNewTable(reldb.Schema{
			Name: "T",
			Columns: []reldb.Column{
				{Name: "k", Type: reldb.KindInt},
				{Name: "v", Type: reldb.KindString},
			},
			Key: []string{"k"},
		})
		for i := int64(0); i < 8; i++ {
			tbl.MustInsert(reldb.Row{reldb.I(i), reldb.S("v0")})
		}
		db.PutTable(tbl)
		p, err := core.NewPeer(core.Config{
			Identity: id, DB: db, Node: n,
			Transport: mem.Endpoint(name), Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		t.Cleanup(p.Stop)
		return p
	}
	h := &harness{node: n, a: mk("A"), b: mk("B"), ctx: ctx}

	srv, err := api.New(api.Config{Peer: h.a, Node: n, CoalesceWindow: coalesce})
	if err != nil {
		t.Fatal(err)
	}
	h.server = srv
	h.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(h.ts.Close)
	h.client = &api.Client{BaseURL: h.ts.URL}
	return h
}

func lensSpec(t *testing.T, view string) json.RawMessage {
	t.Helper()
	data, err := bx.Spec{Op: bx.OpProject, ViewName: view, Cols: []string{"k", "v"}, OnDelete: bx.PolicyApply, OnInsert: bx.PolicyApply}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// registerShare registers share "S" over HTTP with both peers and
// attaches it on B.
func (h *harness) registerShare(t *testing.T) {
	t.Helper()
	st, err := h.client.Register(h.ctx, api.RegisterRequest{
		ID:          "S",
		SourceTable: "T",
		ViewName:    "Sa",
		LensSpec:    lensSpec(t, "Sa"),
		Peers:       []string{h.a.Address().String(), h.b.Address().String()},
		WritePerm: map[string][]string{
			"k": {h.a.Address().String(), h.b.Address().String()},
			"v": {h.a.Address().String(), h.b.Address().String()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "S" || st.ViewName != "Sa" {
		t.Fatalf("register status = %+v", st)
	}
	lens, err := bx.Spec{Op: bx.OpProject, ViewName: "Sb", Cols: []string{"k", "v"}, OnDelete: bx.PolicyApply, OnInsert: bx.PolicyApply}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.b.AttachShare("S", "T", lens, "Sb"); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleOverHTTP(t *testing.T) {
	h := newHarness(t, 0)
	h.registerShare(t)

	if err := h.client.Healthz(h.ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := h.client.Readyz(h.ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}

	shares, err := h.client.Shares(h.ctx)
	if err != nil || len(shares) != 1 || shares[0].ID != "S" {
		t.Fatalf("shares = %+v, err %v", shares, err)
	}

	view, err := h.client.Rows(h.ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != 8 {
		t.Fatalf("rows len = %d", view.Len())
	}

	// Write through the API, then read the row back proof-carrying.
	res, err := h.client.Update(h.ctx, "S", []api.RowOp{
		{Op: "set", Key: []any{float64(3)}, Set: map[string]any{"v": "updated"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoChange || res.Seq == 0 {
		t.Fatalf("update result = %+v", res)
	}

	row, err := h.client.Row(h.ctx, "S", []string{"3"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := row.Row[1].Str(); got != "updated" {
		t.Fatalf("row = %+v", row.Row)
	}
	ok, err := api.VerifyRow(row)
	if err != nil || !ok {
		t.Fatalf("proof did not verify: ok=%v err=%v", ok, err)
	}
	if row.Seq != res.Seq {
		t.Fatalf("row seq %d != update seq %d", row.Seq, res.Seq)
	}

	// Repeat proven read: the proof cache must serve it.
	if _, err := h.client.Row(h.ctx, "S", []string{"3"}, true); err != nil {
		t.Fatal(err)
	}
	st := h.a.Stats()
	if st.ProofCacheMisses == 0 || st.ProofCacheHits == 0 {
		t.Fatalf("proof cache: hits=%d misses=%d", st.ProofCacheHits, st.ProofCacheMisses)
	}

	// A no-op write reports NoChange instead of burning a proposal.
	res, err = h.client.Update(h.ctx, "S", []api.RowOp{
		{Op: "set", Key: []any{float64(3)}, Set: map[string]any{"v": "updated"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoChange {
		t.Fatalf("expected NoChange, got %+v", res)
	}

	// The audit trail shows the registration and the update.
	recs, err := h.client.Audit(h.ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	fns := map[string]bool{}
	for _, r := range recs {
		fns[r.Fn] = true
	}
	if !fns["register"] || !fns["request_update"] {
		t.Fatalf("audit fns = %v", fns)
	}
}

func TestRowsViewCache(t *testing.T) {
	h := newHarness(t, 0)
	h.registerShare(t)

	for i := 0; i < 3; i++ {
		if _, err := h.client.Rows(h.ctx, "S"); err != nil {
			t.Fatal(err)
		}
	}
	m, err := h.client.Metrics(h.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "medshare_api_view_cache_hits_total 2") {
		t.Fatalf("expected 2 view-cache hits in metrics:\n%s", grepLines(m, "view_cache"))
	}
	// An update moves the root: next read re-marshals.
	if _, err := h.client.Update(h.ctx, "S", []api.RowOp{
		{Op: "upsert", Row: []any{float64(100), "new"}},
	}); err != nil {
		t.Fatal(err)
	}
	view, err := h.client.Rows(h.ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := view.Get(reldb.Row{reldb.I(100)}); !ok {
		t.Fatal("updated row missing from cached read")
	}
	m, _ = h.client.Metrics(h.ctx)
	if !strings.Contains(m, "medshare_api_view_cache_misses_total 2") {
		t.Fatalf("expected 2 view-cache misses after update:\n%s", grepLines(m, "view_cache"))
	}
}

func TestValidationErrors(t *testing.T) {
	h := newHarness(t, 0)
	h.registerShare(t)

	if _, err := h.client.Update(h.ctx, "S", []api.RowOp{{Op: "explode"}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad op error = %v", err)
	}
	if _, err := h.client.Update(h.ctx, "nope", []api.RowOp{{Op: "delete", Key: []any{float64(1)}}}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown share error = %v", err)
	}
	if _, err := h.client.Row(h.ctx, "S", []string{"not-an-int"}, false); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad key error = %v", err)
	}
	if _, err := h.client.Row(h.ctx, "S", []string{"99"}, false); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing row error = %v", err)
	}
}

func TestWriteCoalescing(t *testing.T) {
	h := newHarness(t, 40*time.Millisecond)
	h.registerShare(t)

	// Four concurrent writers on distinct rows: the coalescer must fold
	// them into far fewer flushes than writers, and every edit must
	// land.
	const writers = 4
	results := make([]api.UpdateResult, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := h.client.Update(h.ctx, "S", []api.RowOp{
				{Op: "set", Key: []any{float64(i)}, Set: map[string]any{"v": "w"}},
			})
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	maxBatch := 0
	for _, r := range results {
		if r.Coalesced > maxBatch {
			maxBatch = r.Coalesced
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no coalescing observed: %+v", results)
	}
	view, err := h.client.Rows(h.ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writers; i++ {
		row, ok := view.Get(reldb.Row{reldb.I(int64(i))})
		if !ok {
			t.Fatalf("row %d missing", i)
		}
		if got, _ := row[1].Str(); got != "w" {
			t.Fatalf("row %d = %v, write lost in coalescing", i, row)
		}
	}
}

func TestReadyzFlipsDuringResync(t *testing.T) {
	h := newHarness(t, 0)
	h.registerShare(t)

	// Snapshot A's binding at seq 0, let B finalize an update, then
	// restore A to the stale snapshot: A now lags the chain.
	snap, err := h.a.SnapshotShare("S")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.b.UpdateView(h.ctx, "S", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(2)}, map[string]reldb.Value{"v": reldb.S("fromB")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.a.WaitFinal(h.ctx, "S", res.Seq); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Readyz(h.ctx); err != nil {
		t.Fatalf("ready before fault: %v", err)
	}

	if err := h.a.RestoreShare(snap); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Readyz(h.ctx); err == nil {
		t.Fatal("readyz reported ready while lagging the chain")
	}

	if err := h.a.Resync(h.ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Readyz(h.ctx); err != nil {
		t.Fatalf("readyz after resync: %v", err)
	}
	m, err := h.client.Metrics(h.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "medshare_api_not_ready_total 1") {
		t.Fatalf("not-ready probe not counted:\n%s", grepLines(m, "not_ready"))
	}
}

func TestMetricsExposition(t *testing.T) {
	h := newHarness(t, 0)
	h.registerShare(t)
	if _, err := h.client.Rows(h.ctx, "S"); err != nil {
		t.Fatal(err)
	}
	m, err := h.client.Metrics(h.ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`medshare_api_requests_total{kind="rows"} 1`,
		`medshare_api_requests_total{kind="register"} 1`,
		"# TYPE medshare_api_latency_seconds summary",
		"medshare_peer_proof_cache_hits_total",
		"medshare_peer_batch_commits_total",
		"medshare_chain_height",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// grepLines filters exposition lines for failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestLightOverHTTP runs a real light client against the HTTP light
// endpoints: header sync from the locally computed genesis, a
// proof-verified read, a cache hit, the on-chain payload-hash binding,
// and a fresh client observing a later write through a fresh proof
// chain.
func TestLightOverHTTP(t *testing.T) {
	h := newHarness(t, 0)
	h.registerShare(t)

	res, err := h.client.Update(h.ctx, "S", []api.RowOp{
		{Op: "set", Key: []any{float64(1)}, Set: map[string]any{"v": "lit"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The on-chain binding a proven read must recompute to: wait for the
	// write to finalize into the share's payload hash.
	var st api.ShareStatus
	for {
		st, err = h.client.Share(h.ctx, "S")
		if err != nil {
			t.Fatal(err)
		}
		if st.PayloadHash != "" && st.ChainSeq >= res.Seq {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	row, err := h.client.Row(h.ctx, "S", []string{"1"}, true)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := api.VerifyRowPayload(row)
	if err != nil {
		t.Fatal(err)
	}
	if row.Seq == st.ChainSeq && payload != st.PayloadHash {
		t.Fatalf("recomputed payload %s != on-chain %s at seq %d", payload, st.PayloadHash, st.ChainSeq)
	}

	lc, err := light.New(light.Config{
		Network: "api-test",
		Source:  &api.LightSource{BaseURL: h.ts.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	lc.Subscribe("S")
	if _, err := lc.SyncHeaders(h.ctx); err != nil {
		t.Fatalf("header sync over HTTP: %v", err)
	}
	got, err := lc.Read(h.ctx, "S", reldb.Row{reldb.I(1)})
	if err != nil {
		t.Fatalf("verified read over HTTP: %v", err)
	}
	if v, _ := got[1].Str(); v != "lit" {
		t.Fatalf("read %+v, want v=lit", got)
	}
	cached, err := lc.Read(h.ctx, "S", reldb.Row{reldb.I(1)})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := cached[1].Str(); v != "lit" {
		t.Fatalf("cached read %+v", cached)
	}
	stats := lc.Stats()
	if stats.RowsVerified != 1 || stats.CacheHits != 1 || stats.VerifyFailures != 0 {
		t.Fatalf("light stats = %+v", stats)
	}
	if stats.WireBytes == 0 || lc.StateBytes() == 0 {
		t.Fatalf("light accounting empty: %+v, state %d", stats, lc.StateBytes())
	}

	// A later write must be observable by a fresh client through a fresh
	// header + proof chain (gossip invalidation is a p2p concern; over
	// plain HTTP freshness comes from re-proving).
	if _, err := h.client.Update(h.ctx, "S", []api.RowOp{
		{Op: "set", Key: []any{float64(1)}, Set: map[string]any{"v": "lit2"}},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		lc2, err := light.New(light.Config{
			Network: "api-test",
			Source:  &api.LightSource{BaseURL: h.ts.URL},
		})
		if err != nil {
			t.Fatal(err)
		}
		lc2.Subscribe("S")
		if _, err := lc2.SyncHeaders(h.ctx); err != nil {
			t.Fatal(err)
		}
		got, err := lc2.Read(h.ctx, "S", reldb.Row{reldb.I(1)})
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := got[1].Str(); v == "lit2" {
			if s2 := lc2.Stats(); s2.VerifyFailures != 0 {
				t.Fatalf("fresh client stats = %+v", s2)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fresh client never observed the second write: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
