package api

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"medshare/internal/reldb"
)

// Client is the Go client for the serving edge, shared by medsharectl,
// loadr, and the E17 experiment.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Load generators inject
	// one with a tuned Transport (high MaxIdleConnsPerHost) so
	// connection setup doesn't pollute latency tails.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do runs one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses decode the ErrorResponse body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			return fmt.Errorf("api: %s %s: %s (%d)", method, path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("api: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Readyz probes readiness; a 503 returns an error.
func (c *Client) Readyz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Metrics fetches the raw Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Register registers a new share.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (ShareStatus, error) {
	var st ShareStatus
	err := c.do(ctx, http.MethodPost, "/v1/shares", req, &st)
	return st, err
}

// Attach binds an existing share on the serving peer.
func (c *Client) Attach(ctx context.Context, id string, req AttachRequest) (ShareStatus, error) {
	var st ShareStatus
	err := c.do(ctx, http.MethodPost, "/v1/shares/"+url.PathEscape(id)+"/attach", req, &st)
	return st, err
}

// Shares lists the shares bound on the serving peer.
func (c *Client) Shares(ctx context.Context) ([]ShareStatus, error) {
	var out []ShareStatus
	err := c.do(ctx, http.MethodGet, "/v1/shares", nil, &out)
	return out, err
}

// Share fetches one share's status.
func (c *Client) Share(ctx context.Context, id string) (ShareStatus, error) {
	var st ShareStatus
	err := c.do(ctx, http.MethodGet, "/v1/shares/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Rows fetches the whole view.
func (c *Client) Rows(ctx context.Context, id string) (*reldb.Table, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/shares/"+url.PathEscape(id)+"/rows", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("api: rows %s: status %d", id, resp.StatusCode)
	}
	return reldb.UnmarshalTable(data)
}

// Row fetches one row by key parts (rendered into the comma key
// syntax). With proof set, the result carries the Merkle membership
// proof and VerifyRow can check it.
func (c *Client) Row(ctx context.Context, id string, keyParts []string, proof bool) (RowResult, error) {
	q := url.Values{"key": {strings.Join(keyParts, ",")}}
	if proof {
		q.Set("proof", "1")
	}
	var out RowResult
	err := c.do(ctx, http.MethodGet, "/v1/shares/"+url.PathEscape(id)+"/row?"+q.Encode(), nil, &out)
	return out, err
}

// VerifyRow checks a proof-carrying RowResult against its root.
func VerifyRow(res RowResult) (bool, error) {
	if res.Proof == nil || res.Root == "" {
		return false, fmt.Errorf("api: result carries no proof")
	}
	rb, err := hex.DecodeString(res.Root)
	if err != nil || len(rb) != 32 {
		return false, fmt.Errorf("api: bad root %q", res.Root)
	}
	var root [32]byte
	copy(root[:], rb)
	return reldb.VerifyRowProof(root, res.Row, *res.Proof), nil
}

// VerifyRowPayload recomputes the table hash a proof-carrying RowResult
// commits to — sha256(schemaSum ‖ rowCount ‖ root), the exact preimage
// of reldb.Table.Hash — returned hex-encoded for comparison with the
// share's on-chain PayloadHash at the result's Seq.
func VerifyRowPayload(res RowResult) (string, error) {
	if res.Root == "" || res.SchemaSum == "" {
		return "", fmt.Errorf("api: result carries no table-hash preimage")
	}
	rb, err := hex.DecodeString(res.Root)
	if err != nil || len(rb) != 32 {
		return "", fmt.Errorf("api: bad root %q", res.Root)
	}
	sb, err := hex.DecodeString(res.SchemaSum)
	if err != nil || len(sb) != 32 {
		return "", fmt.Errorf("api: bad schema sum %q", res.SchemaSum)
	}
	var buf [72]byte
	copy(buf[:32], sb)
	binary.BigEndian.PutUint64(buf[32:40], uint64(res.Rows))
	copy(buf[40:], rb)
	h := sha256.Sum256(buf[:])
	return hex.EncodeToString(h[:]), nil
}

// Update applies entry-level view mutations through the write
// coalescer.
func (c *Client) Update(ctx context.Context, id string, ops []RowOp) (UpdateResult, error) {
	var out UpdateResult
	err := c.do(ctx, http.MethodPost, "/v1/shares/"+url.PathEscape(id)+"/update", UpdateRequest{Ops: ops}, &out)
	return out, err
}

// Audit fetches the share's on-chain audit trail.
func (c *Client) Audit(ctx context.Context, id string) ([]AuditRecord, error) {
	var out []AuditRecord
	err := c.do(ctx, http.MethodGet, "/v1/shares/"+url.PathEscape(id)+"/audit", nil, &out)
	return out, err
}
