// Package api is the serving edge: an HTTP/JSON front door over a
// core.Peer exposing the full share lifecycle — register, attach,
// proof-carrying reads, coalesced writes, audit — plus the operational
// endpoints (/healthz, /readyz, /metrics) a deployment needs to put the
// node behind a load balancer and hold an SLO against it.
package api

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"medshare/internal/audit"
	"medshare/internal/core"
	"medshare/internal/loadgen"
	"medshare/internal/node"
	"medshare/internal/store"
)

// Config configures a Server. Peer and Node are required.
type Config struct {
	Peer *core.Peer
	Node *node.Node
	// Auditor answers /audit queries; nil builds one over Node's store
	// and registry.
	Auditor *audit.Auditor
	// CoalesceWindow is how long the first concurrent write waits for
	// companions before flushing one group commit. It should sit at or
	// below node.Config.GroupCommitWindow. Zero flushes immediately
	// (writes still batch with whatever arrived while the previous
	// flush was in flight... nothing, since the opener flushes inline —
	// zero simply disables HTTP-level coalescing).
	CoalesceWindow time.Duration
	// MaxQueueDepth is the shard-event backlog above which /readyz
	// reports not-ready. 0 means 256.
	MaxQueueDepth uint64
	// RequestTimeout bounds one API request's work, chain commits
	// included. 0 means 30s.
	RequestTimeout time.Duration
	// Store is the peer's durable store, when it runs one; /metrics then
	// exports the medshare_store_* gauges (segments, live/tail bytes,
	// torn-tail and degraded-segment recovery telemetry).
	Store *store.Store
}

// Server serves the API over one peer.
type Server struct {
	cfg     Config
	peer    *core.Peer
	node    *node.Node
	auditor *audit.Auditor
	mux     *http.ServeMux
	coal    *coalescer
	views   viewCache
	m       serverMetrics
}

// serverMetrics is the HTTP layer's own instrumentation: request and
// error counts plus a latency summary per request kind, exported at
// /metrics next to the peer's counters.
type serverMetrics struct {
	kinds map[string]*kindMetrics
	// notReady counts /readyz probes answered 503.
	notReady atomic.Uint64
}

type kindMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	latency  loadgen.Histogram
}

// requestKinds enumerates the instrumented request kinds, in the order
// /metrics exports them.
var requestKinds = []string{
	"health", "ready", "metrics",
	"shares_list", "register", "attach",
	"share_get", "rows", "row", "update", "audit",
	"light_headers", "light_head", "light_row",
}

// New builds a Server over the peer.
func New(cfg Config) (*Server, error) {
	if cfg.Peer == nil || cfg.Node == nil {
		return nil, errors.New("api: Config.Peer and Config.Node are required")
	}
	if cfg.Auditor == nil {
		cfg.Auditor = audit.New(cfg.Node.Store(), cfg.Node.Registry())
	}
	if cfg.MaxQueueDepth == 0 {
		cfg.MaxQueueDepth = 256
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		peer:    cfg.Peer,
		node:    cfg.Node,
		auditor: cfg.Auditor,
		mux:     http.NewServeMux(),
		coal:    newCoalescer(cfg.Peer, cfg.CoalesceWindow),
		m:       serverMetrics{kinds: make(map[string]*kindMetrics, len(requestKinds))},
	}
	for _, k := range requestKinds {
		s.m.kinds[k] = &kindMetrics{}
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.instrument("health", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("ready", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/shares", s.instrument("shares_list", s.handleSharesList))
	s.mux.HandleFunc("POST /v1/shares", s.instrument("register", s.handleRegister))
	s.mux.HandleFunc("POST /v1/shares/{id}/attach", s.instrument("attach", s.handleAttach))
	s.mux.HandleFunc("GET /v1/shares/{id}", s.instrument("share_get", s.handleShareGet))
	s.mux.HandleFunc("GET /v1/shares/{id}/rows", s.instrument("rows", s.handleRows))
	s.mux.HandleFunc("GET /v1/shares/{id}/row", s.instrument("row", s.handleRow))
	s.mux.HandleFunc("POST /v1/shares/{id}/update", s.instrument("update", s.handleUpdate))
	s.mux.HandleFunc("GET /v1/shares/{id}/audit", s.instrument("audit", s.handleAudit))
	s.mux.HandleFunc("GET /v1/light/headers", s.instrument("light_headers", s.handleLightHeaders))
	s.mux.HandleFunc("GET /v1/light/shares/{id}/head", s.instrument("light_head", s.handleLightHead))
	s.mux.HandleFunc("GET /v1/light/shares/{id}/row", s.instrument("light_row", s.handleLightRow))
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CoalesceStats reports the write coalescer's flush count and the
// total HTTP write requests those flushes carried; writes/batches is
// the realized coalescing factor.
func (s *Server) CoalesceStats() (batches, writes uint64) {
	return s.coal.batches.Load(), s.coal.writes.Load()
}

// httpError carries a status code out of a handler.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// statusOf maps a handler error to its HTTP status: explicit statuses
// win; unknown shares are 404; everything else is a 500.
func statusOf(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	if strings.Contains(err.Error(), "unknown share") || strings.Contains(err.Error(), "no such share") {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// instrument wraps a handler with per-kind request counting, latency
// recording, and uniform error rendering.
func (s *Server) instrument(kind string, fn func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	km := s.m.kinds[kind]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		km.requests.Add(1)
		ctx, cancel := contextWithTimeout(r, s.cfg.RequestTimeout)
		defer cancel()
		err := fn(w, r.WithContext(ctx))
		km.latency.Record(time.Since(start))
		if err != nil {
			km.errors.Add(1)
			writeJSONStatus(w, statusOf(err), ErrorResponse{Error: err.Error()})
		}
	}
}
